// Checked-precondition helpers for the dstee library.
//
// Following C++ Core Guidelines I.6/E.12: preconditions are expressed as
// checks that throw std::invalid_argument / std::runtime_error with enough
// context (expression + source location) to diagnose API misuse without a
// debugger. These checks guard *interfaces*; hot inner loops use plain
// assertions compiled out in release builds.
#pragma once

#include <source_location>
#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>

namespace dstee::util {

/// Exception thrown when a dstee API precondition is violated.
class CheckError : public std::runtime_error {
 public:
  explicit CheckError(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void raise_check_failure(std::string_view expr,
                                             std::string_view msg,
                                             const std::source_location& loc) {
  std::ostringstream os;
  os << "dstee check failed";
  if (!expr.empty()) os << ": (" << expr << ")";
  if (!msg.empty()) os << " — " << msg;
  os << " [" << loc.file_name() << ":" << loc.line() << " in "
     << loc.function_name() << "]";
  throw CheckError(os.str());
}
}  // namespace detail

/// Throws CheckError when `cond` is false. `msg` should say what the caller
/// did wrong, not restate the condition.
inline void check(bool cond, std::string_view msg = "",
                  const std::source_location loc =
                      std::source_location::current()) {
  if (!cond) detail::raise_check_failure("", msg, loc);
}

/// check() variant that records the failing expression text.
inline void check_expr(bool cond, std::string_view expr,
                       std::string_view msg = "",
                       const std::source_location loc =
                           std::source_location::current()) {
  if (!cond) detail::raise_check_failure(expr, msg, loc);
}

/// Unconditional failure for unreachable branches / unsupported configs.
[[noreturn]] inline void fail(std::string_view msg,
                              const std::source_location loc =
                                  std::source_location::current()) {
  detail::raise_check_failure("", msg, loc);
}

}  // namespace dstee::util
