// Deterministic random number generation for reproducible experiments.
//
// Every stochastic component (weight init, data synthesis, SET's random
// growth, DeepR's sign flips, minibatch shuffling, negative sampling) draws
// from its own named Rng stream derived from the experiment seed, so adding
// randomness to one component never perturbs another — table cells stay
// bit-reproducible across runs and across methods.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

namespace dstee::util {

/// xoshiro256** PRNG. Fast, high quality, and fully deterministic across
/// platforms (unlike std::normal_distribution, whose output is
/// implementation-defined; we implement our own transforms).
class Rng {
 public:
  /// Seeds via splitmix64 expansion of `seed`.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Derives an independent stream for a named component, e.g.
  /// `Rng child = base.fork("grow/random")`. Deterministic in (state, name).
  Rng fork(std::string_view name) const;

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform in [0, 1).
  double uniform();

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_index(std::uint64_t n);

  /// Standard normal via Box–Muller (deterministic across platforms).
  double normal();

  /// Normal with the given mean / standard deviation.
  double normal(double mean, double stddev);

  /// Bernoulli draw with probability `p` of true.
  bool bernoulli(double p);

  /// Returns a uniformly random permutation of {0, ..., n-1}.
  std::vector<std::size_t> permutation(std::size_t n);

  /// Samples `k` distinct indices uniformly from {0, ..., n-1} (k <= n).
  /// Uses Floyd's algorithm: O(k) memory, no full permutation.
  std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                      std::size_t k);

  /// Fisher–Yates shuffles `items` in place.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(uniform_index(i));
      std::swap(items[i - 1], items[j]);
    }
  }

 private:
  std::uint64_t s_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace dstee::util
