// RcuCell: an atomically-published shared_ptr<const T> — the project's
// RCU (read-copy-update) primitive for hot-swapped immutable state.
//
// Readers load() a snapshot and keep using it for as long as they hold
// the shared_ptr; writers store() a replacement built off to the side.
// Nobody blocks anybody for more than a pointer copy: in-flight work
// finishes on the version it captured, new work picks up the new one,
// and the old version is destroyed when its last reference drops. There
// is no drain, no pause, and no reader-visible lock across the swap.
//
// Where the standard library provides std::atomic<std::shared_ptr<T>>
// (libstdc++ >= 12) we use it directly; elsewhere we fall back to a
// mutex-guarded pointer, which preserves the contract (load/store are
// tiny critical sections) at the cost of readers sharing one lock.
//
// The project lint (tools/dstee_lint, rule `hot-swap-rcu`) requires
// hot-swapped CompiledNet members to live in one of these rather than in
// a bare shared_ptr, precisely so the publish/observe protocol cannot be
// bypassed with a plain (racy) pointer read.
#pragma once

#include <atomic>
#include <memory>
#include <utility>
#include <version>

#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace dstee::util {

#if defined(__cpp_lib_atomic_shared_ptr) && __cpp_lib_atomic_shared_ptr >= 201711L

template <typename T>
class RcuCell {
 public:
  RcuCell() = default;
  explicit RcuCell(std::shared_ptr<const T> initial)
      : ptr_(std::move(initial)) {}

  /// Snapshot of the current version. Never null once published; callers
  /// keep the returned pointer for the duration of their work.
  std::shared_ptr<const T> load() const { return ptr_.load(std::memory_order_acquire); }

  /// Publishes a new version. The old version retires when the last
  /// reader that captured it drops its reference.
  void store(std::shared_ptr<const T> next) {
    ptr_.store(std::move(next), std::memory_order_release);
  }

  /// store() that also hands back the displaced version.
  std::shared_ptr<const T> exchange(std::shared_ptr<const T> next) {
    return ptr_.exchange(std::move(next), std::memory_order_acq_rel);
  }

 private:
  std::atomic<std::shared_ptr<const T>> ptr_;
};

#else  // no std::atomic<std::shared_ptr>: mutex-guarded fallback

template <typename T>
class RcuCell {
 public:
  RcuCell() = default;
  explicit RcuCell(std::shared_ptr<const T> initial)
      : ptr_(std::move(initial)) {}

  std::shared_ptr<const T> load() const {
    MutexLock lock(mu_);
    return ptr_;
  }

  void store(std::shared_ptr<const T> next) {
    MutexLock lock(mu_);
    ptr_ = std::move(next);
  }

  std::shared_ptr<const T> exchange(std::shared_ptr<const T> next) {
    MutexLock lock(mu_);
    ptr_.swap(next);
    return next;  // the displaced version
  }

 private:
  mutable Mutex mu_;
  std::shared_ptr<const T> ptr_ DSTEE_GUARDED_BY(mu_);
};

#endif

/// Wraps an object the caller guarantees outlives every observer into a
/// non-owning shared_ptr (aliasing constructor with an empty control
/// block). Lets borrowed state flow through RcuCell-shaped APIs.
template <typename T>
std::shared_ptr<const T> borrow(const T& object) {
  return std::shared_ptr<const T>(std::shared_ptr<void>(), &object);
}

}  // namespace dstee::util
