#include "util/env.hpp"

#include <cstdlib>

#include "util/check.hpp"

namespace dstee::util {

std::string env_string(const std::string& name, const std::string& fallback) {
  const char* value = std::getenv(name.c_str());
  if (value == nullptr || value[0] == '\0') return fallback;
  return value;
}

std::int64_t env_int(const std::string& name, std::int64_t fallback) {
  const std::string text = env_string(name, "");
  if (text.empty()) return fallback;
  try {
    return std::stoll(text);
  } catch (const std::exception&) {
    fail("environment variable " + name + " is not an integer: " + text);
  }
}

double env_double(const std::string& name, double fallback) {
  const std::string text = env_string(name, "");
  if (text.empty()) return fallback;
  try {
    return std::stod(text);
  } catch (const std::exception&) {
    fail("environment variable " + name + " is not a number: " + text);
  }
}

double bench_scale() { return env_double("DSTEE_SCALE", 1.0); }

std::int64_t bench_epochs_override() { return env_int("DSTEE_EPOCHS", 0); }

std::int64_t bench_seeds(std::int64_t fallback) {
  return env_int("DSTEE_SEEDS", fallback);
}

}  // namespace dstee::util
