// Wall-clock timing for the training harness and benches.
#pragma once

#include <chrono>

namespace dstee::util {

/// Monotonic stopwatch; starts on construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction / last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed.
  double millis() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace dstee::util
