#include "util/args.hpp"

#include <iostream>
#include <sstream>

#include "util/check.hpp"
#include "util/string_util.hpp"

namespace dstee::util {

ArgParser::ArgParser(std::string program_description)
    : description_(std::move(program_description)) {}

ArgParser& ArgParser::add_flag(const std::string& name,
                               const std::string& help,
                               const std::string& default_value,
                               bool required) {
  check(!name.empty() && name[0] != '-',
        "flag names are declared without leading dashes");
  check(flags_.find(name) == flags_.end(), "duplicate flag: " + name);
  flags_[name] = Flag{help, default_value, required, std::nullopt};
  order_.push_back(name);
  return *this;
}

bool ArgParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string token = argv[i];
    if (token == "--help" || token == "-h") {
      std::cout << usage();
      return false;
    }
    check(starts_with(token, "--"), "expected --flag, got: " + token);
    token = token.substr(2);
    std::string value;
    if (const auto eq = token.find('='); eq != std::string::npos) {
      value = token.substr(eq + 1);
      token = token.substr(0, eq);
    } else {
      check(i + 1 < argc, "flag --" + token + " is missing a value");
      value = argv[++i];
    }
    auto it = flags_.find(token);
    check(it != flags_.end(), "unknown flag: --" + token);
    it->second.value = value;
  }
  for (const auto& [name, flag] : flags_) {
    check(!flag.required || flag.value.has_value(),
          "required flag --" + name + " was not provided");
  }
  return true;
}

const ArgParser::Flag& ArgParser::find(const std::string& name) const {
  const auto it = flags_.find(name);
  check(it != flags_.end(), "undeclared flag queried: " + name);
  return it->second;
}

std::string ArgParser::get_string(const std::string& name) const {
  const Flag& flag = find(name);
  return flag.value.value_or(flag.default_value);
}

std::int64_t ArgParser::get_int(const std::string& name) const {
  const std::string text = get_string(name);
  try {
    return std::stoll(text);
  } catch (const std::exception&) {
    fail("flag --" + name + " expects an integer, got: " + text);
  }
}

double ArgParser::get_double(const std::string& name) const {
  const std::string text = get_string(name);
  try {
    return std::stod(text);
  } catch (const std::exception&) {
    fail("flag --" + name + " expects a number, got: " + text);
  }
}

bool ArgParser::get_bool(const std::string& name) const {
  const std::string text = to_lower(get_string(name));
  if (text == "true" || text == "1" || text == "yes" || text == "on") {
    return true;
  }
  if (text == "false" || text == "0" || text == "no" || text == "off") {
    return false;
  }
  fail("flag --" + name + " expects a boolean, got: " + text);
}

bool ArgParser::was_set(const std::string& name) const {
  return find(name).value.has_value();
}

std::string ArgParser::usage() const {
  std::ostringstream os;
  os << description_ << "\n\nFlags:\n";
  for (const auto& name : order_) {
    const Flag& flag = flags_.at(name);
    os << "  --" << name;
    if (!flag.default_value.empty()) {
      os << " (default: " << flag.default_value << ")";
    } else if (flag.required) {
      os << " (required)";
    }
    os << "\n      " << flag.help << "\n";
  }
  return os.str();
}

}  // namespace dstee::util
