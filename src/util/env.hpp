// Environment-variable configuration for the bench harness.
//
// Benches run with small defaults so `for b in build/bench/*; do $b; done`
// finishes in minutes; DSTEE_SCALE / DSTEE_EPOCHS / DSTEE_SEEDS lift them
// to full-fidelity sweeps without recompiling.
#pragma once

#include <cstdint>
#include <string>

namespace dstee::util {

/// Reads an environment variable, returning `fallback` when unset/empty.
std::string env_string(const std::string& name, const std::string& fallback);

/// Integer environment variable with fallback; throws on malformed values.
std::int64_t env_int(const std::string& name, std::int64_t fallback);

/// Floating-point environment variable with fallback.
double env_double(const std::string& name, double fallback);

/// Global bench scale multiplier (DSTEE_SCALE, default 1.0). Benches apply
/// it to dataset sizes / model widths.
double bench_scale();

/// Global epoch override (DSTEE_EPOCHS); <= 0 means "use bench default".
std::int64_t bench_epochs_override();

/// Number of random seeds per table cell (DSTEE_SEEDS, default bench-specific).
std::int64_t bench_seeds(std::int64_t fallback);

}  // namespace dstee::util
