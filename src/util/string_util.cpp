#include "util/string_util.hpp"

#include <algorithm>
#include <cctype>
#include <iomanip>
#include <sstream>

namespace dstee::util {

std::string to_lower(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

std::vector<std::string> split(std::string_view text, char delim) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(delim, start);
    if (pos == std::string_view::npos) {
      parts.emplace_back(text.substr(start));
      break;
    }
    parts.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return parts;
}

std::string trim(std::string_view text) {
  const auto* first = std::find_if_not(text.begin(), text.end(), [](unsigned char c) {
    return std::isspace(c) != 0;
  });
  const auto* last = std::find_if_not(text.rbegin(), text.rend(), [](unsigned char c) {
                       return std::isspace(c) != 0;
                     }).base();
  if (first >= last) return {};
  return std::string(first, last);
}

std::string format_fixed(double value, int digits) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(digits) << value;
  return os.str();
}

std::string format_sci(double value, int digits) {
  std::ostringstream os;
  os << std::scientific << std::setprecision(digits) << value;
  return os.str();
}

std::string format_multiple(double value, int digits) {
  return format_fixed(value, digits) + "x";
}

std::string format_mean_std(double mean, double std, int digits) {
  return format_fixed(mean, digits) + " +/- " + format_fixed(std, digits);
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.substr(0, prefix.size()) == prefix;
}

}  // namespace dstee::util
