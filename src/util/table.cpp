#include "util/table.hpp"

#include <algorithm>
#include <iostream>
#include <sstream>

#include "util/check.hpp"

namespace dstee::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  check(!header_.empty(), "table requires at least one column");
}

void Table::add_row(std::vector<std::string> row) {
  check(row.size() == header_.size(), "table row width must match header");
  rows_.push_back(Row{std::move(row), pending_separator_});
  pending_separator_ = false;
}

void Table::add_separator() { pending_separator_ = true; }

std::string Table::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.cells.size(); ++c) {
      widths[c] = std::max(widths[c], row.cells[c].size());
    }
  }

  auto hline = [&] {
    std::string s = "+";
    for (const auto w : widths) s += std::string(w + 2, '-') + "+";
    return s + "\n";
  };
  auto render_cells = [&](const std::vector<std::string>& cells) {
    std::string s = "|";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      s += " " + cells[c] + std::string(widths[c] - cells[c].size(), ' ') + " |";
    }
    return s + "\n";
  };

  std::ostringstream os;
  os << hline() << render_cells(header_) << hline();
  for (const auto& row : rows_) {
    if (row.separator_before) os << hline();
    os << render_cells(row.cells);
  }
  os << hline();
  return os.str();
}

void Table::print() const { std::cout << render() << std::flush; }

}  // namespace dstee::util
