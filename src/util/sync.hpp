// Annotated synchronization primitives: zero-overhead wrappers over
// std::mutex / std::condition_variable that Clang Thread Safety Analysis
// can see.
//
// The standard types carry no capability attributes, so a std::mutex
// member is invisible to the analysis — GUARDED_BY(some_std_mutex) is
// rejected outright. Wrapping (never subclassing — the std types are not
// polymorphic) gives every lock site a capability the compiler tracks
// while compiling to exactly the std calls: Mutex is a std::mutex,
// MutexLock is a std::lock_guard, UniqueLock is a std::unique_lock, and
// CondVar is a std::condition_variable waiting on the UniqueLock's inner
// lock. tools/dstee_lint enforces that library code declares util::Mutex
// rather than std::mutex, so new synchronization is analyzable by
// construction.
//
// Condition-variable waits and the analysis: CondVar::wait releases and
// reacquires the mutex internally, but always returns with it held, so
// from the caller's (static) point of view the capability is held
// continuously across the wait — which is exactly the guarantee guarded
// data relies on. Write waits as explicit loops,
//
//   util::UniqueLock lock(mu_);
//   while (!ready_) cv_.wait(lock);
//
// not with a predicate lambda: the analysis checks lambda bodies as
// separate functions that do not inherit the caller's lock set, so a
// predicate reading guarded state would (falsely) trip the analysis.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.hpp"

namespace dstee::util {

/// std::mutex with a capability attribute. Same size, same codegen.
class DSTEE_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() DSTEE_ACQUIRE() { mu_.lock(); }
  bool try_lock() DSTEE_TRY_ACQUIRE(true) { return mu_.try_lock(); }
  void unlock() DSTEE_RELEASE() { mu_.unlock(); }

 private:
  friend class MutexLock;
  friend class UniqueLock;
  std::mutex mu_;
};

/// Scoped lock (std::lock_guard) the analysis understands.
class DSTEE_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) DSTEE_ACQUIRE(mu) : lock_(mu.mu_) {}
  ~MutexLock() DSTEE_RELEASE() {}

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  std::lock_guard<std::mutex> lock_;
};

/// Scoped lock (std::unique_lock) for condition-variable waits.
class DSTEE_SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(Mutex& mu) DSTEE_ACQUIRE(mu) : lock_(mu.mu_) {}
  ~UniqueLock() DSTEE_RELEASE() {}

  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

/// std::condition_variable over util::Mutex/UniqueLock. Waits return with
/// the lock held (see the file comment for how that interacts with the
/// analysis); notify_* never require the lock.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

  void wait(UniqueLock& lock) { cv_.wait(lock.lock_); }

  template <typename Clock, typename Duration>
  std::cv_status wait_until(
      UniqueLock& lock,
      const std::chrono::time_point<Clock, Duration>& deadline) {
    return cv_.wait_until(lock.lock_, deadline);
  }

 private:
  std::condition_variable cv_;
};

}  // namespace dstee::util
