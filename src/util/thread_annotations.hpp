// Portable Clang Thread Safety Analysis annotations.
//
// These macros expand to Clang's capability attributes when the code is
// compiled by Clang (where `-Wthread-safety` turns lock discipline into a
// compile-time proof) and to nothing everywhere else, so GCC/MSVC builds
// are byte-identical. The `clang-tsa` CMake preset and the matching CI
// job build with `-Werror=thread-safety`, which makes a violated
// annotation a build break instead of a comment that drifted.
//
// Usage conventions (see README "Correctness tooling"):
//  - Every mutex is a util::Mutex (util/sync.hpp) — the raw std::mutex is
//    invisible to the analysis, and tools/dstee_lint flags it.
//  - Every member a mutex protects carries DSTEE_GUARDED_BY(mu). Members
//    that are intentionally lock-free (atomics, immutable-after-ctor
//    pointers) carry a comment saying so instead, and the absence of an
//    annotation is a reviewed decision, not an oversight.
//  - Functions that must be called with a lock held are annotated
//    DSTEE_REQUIRES(mu); functions that must NOT hold it (because they
//    take it themselves) may add DSTEE_EXCLUDES(mu) where deadlock risk
//    is real.
//  - DSTEE_NO_THREAD_SAFETY_ANALYSIS is a last resort and is banned in
//    src/runtime/ and src/serve/ (the CI gate builds those with zero
//    suppressions).
#pragma once

#if defined(__clang__)
#define DSTEE_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define DSTEE_THREAD_ANNOTATION_(x)  // no-op outside Clang
#endif

/// Marks a type as a lockable capability, e.g. a mutex wrapper.
#define DSTEE_CAPABILITY(x) DSTEE_THREAD_ANNOTATION_(capability(x))

/// Marks an RAII type whose constructor acquires and destructor releases.
#define DSTEE_SCOPED_CAPABILITY DSTEE_THREAD_ANNOTATION_(scoped_lockable)

/// Data member readable/writable only while holding `x`.
#define DSTEE_GUARDED_BY(x) DSTEE_THREAD_ANNOTATION_(guarded_by(x))

/// Pointer member whose POINTEE is protected by `x` (the pointer itself
/// may be read freely).
#define DSTEE_PT_GUARDED_BY(x) DSTEE_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Function requires the listed capabilities to be held on entry (and
/// does not release them).
#define DSTEE_REQUIRES(...) \
  DSTEE_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// Function acquires the listed capabilities and holds them on return.
#define DSTEE_ACQUIRE(...) \
  DSTEE_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/// Function releases the listed capabilities (held on entry).
#define DSTEE_RELEASE(...) \
  DSTEE_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// Function attempts acquisition; first argument is the return value
/// meaning "acquired".
#define DSTEE_TRY_ACQUIRE(...) \
  DSTEE_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

/// Caller must NOT hold the listed capabilities (anti-deadlock).
#define DSTEE_EXCLUDES(...) DSTEE_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Asserts (at runtime, by contract) that the capability is held.
#define DSTEE_ASSERT_CAPABILITY(x) \
  DSTEE_THREAD_ANNOTATION_(assert_capability(x))

/// Function returns a reference to the capability `x`.
#define DSTEE_RETURN_CAPABILITY(x) DSTEE_THREAD_ANNOTATION_(lock_returned(x))

/// Opts a function out of the analysis. Banned in src/runtime/ and
/// src/serve/ — the CI thread-safety gate covers them suppression-free.
#define DSTEE_NO_THREAD_SAFETY_ANALYSIS \
  DSTEE_THREAD_ANNOTATION_(no_thread_safety_analysis)
