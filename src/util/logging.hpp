// Minimal leveled logger used across the library and the bench harness.
//
// Design: a single process-wide level (benches flip it from the
// DSTEE_LOG_LEVEL environment variable), streams to stderr so bench tables
// printed on stdout stay machine-parsable.
#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace dstee::util {

/// Severity levels, ordered. Messages below the global level are dropped.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Returns the current global log level (default: kInfo, overridable via the
/// DSTEE_LOG_LEVEL environment variable: debug|info|warn|error|off).
LogLevel log_level();

/// Sets the global log level for the current process.
void set_log_level(LogLevel level);

/// Parses "debug" / "info" / "warn" / "error" / "off" (case-insensitive).
LogLevel parse_log_level(std::string_view text);

/// Emits one log line ("[level] message") to stderr if `level` is enabled.
void log_message(LogLevel level, std::string_view message);

namespace detail {
template <typename... Args>
std::string concat(Args&&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}
}  // namespace detail

/// Convenience wrappers; arguments are streamed together.
template <typename... Args>
void log_debug(Args&&... args) {
  if (log_level() <= LogLevel::kDebug)
    log_message(LogLevel::kDebug, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void log_info(Args&&... args) {
  if (log_level() <= LogLevel::kInfo)
    log_message(LogLevel::kInfo, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void log_warn(Args&&... args) {
  if (log_level() <= LogLevel::kWarn)
    log_message(LogLevel::kWarn, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void log_error(Args&&... args) {
  if (log_level() <= LogLevel::kError)
    log_message(LogLevel::kError, detail::concat(std::forward<Args>(args)...));
}

}  // namespace dstee::util
