#include "util/csv.hpp"

#include <filesystem>

#include "util/check.hpp"

namespace dstee::util {

std::string csv_escape(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (const char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header) {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(p.parent_path(), ec);
  }
  out_.open(path, std::ios::trunc);
  check(out_.is_open(), "cannot open CSV file for writing: " + path);
  width_ = header.size();
  write_fields(header);
}

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  check(fields.size() == width_,
        "CSV row width does not match header width");
  write_fields(fields);
  ++rows_;
}

void CsvWriter::flush() { out_.flush(); }

void CsvWriter::write_fields(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << csv_escape(fields[i]);
  }
  out_ << '\n';
}

}  // namespace dstee::util
