// Small string helpers shared by logging, CSV output and config parsing.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace dstee::util {

/// ASCII lower-casing (config values and log levels are ASCII by contract).
std::string to_lower(std::string_view text);

/// Splits on a single-character delimiter; empty fields are preserved.
std::vector<std::string> split(std::string_view text, char delim);

/// Strips leading/trailing whitespace.
std::string trim(std::string_view text);

/// Formats a double with `digits` significant decimal places (fixed).
std::string format_fixed(double value, int digits);

/// Formats a double in compact scientific notation, e.g. "1.0e-03".
std::string format_sci(double value, int digits = 1);

/// Renders e.g. 0.23 as "0.23x" — the paper's FLOPs-multiple convention.
std::string format_multiple(double value, int digits = 2);

/// "mean ± std" with the given number of decimals, matching the paper's
/// accuracy cells (e.g. "93.84 ± 0.09").
std::string format_mean_std(double mean, double std, int digits = 2);

/// True if `text` starts with `prefix`.
bool starts_with(std::string_view text, std::string_view prefix);

}  // namespace dstee::util
