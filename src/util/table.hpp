// ASCII table rendering for paper-style result tables on stdout.
#pragma once

#include <string>
#include <vector>

namespace dstee::util {

/// Accumulates rows and renders an aligned ASCII table, e.g.
///
///   +---------+-------+-------+
///   | Method  | 90%   | 95%   |
///   +---------+-------+-------+
///   | RigL    | 93.38 | 93.06 |
///   | DST-EE  | 93.84 | 93.53 |
///   +---------+-------+-------+
class Table {
 public:
  /// Creates a table with the given column headers.
  explicit Table(std::vector<std::string> header);

  /// Appends a data row; width must match the header.
  void add_row(std::vector<std::string> row);

  /// Inserts a horizontal separator before the next row (section break).
  void add_separator();

  /// Renders the table to a string.
  std::string render() const;

  /// Renders and writes to stdout.
  void print() const;

  std::size_t num_rows() const { return rows_.size(); }

 private:
  struct Row {
    std::vector<std::string> cells;
    bool separator_before = false;
  };
  std::vector<std::string> header_;
  std::vector<Row> rows_;
  bool pending_separator_ = false;
};

}  // namespace dstee::util
