#include "util/rng.hpp"

#include <cmath>
#include <numbers>
#include <unordered_set>

#include "util/check.hpp"

namespace dstee::util {

namespace {

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

// FNV-1a over the stream name, to derive independent child seeds.
std::uint64_t hash_name(std::string_view name) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : name) {
    h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

Rng Rng::fork(std::string_view name) const {
  // Mix current state words with the name hash — forking does not advance
  // the parent stream, so fork order is irrelevant to the parent.
  const std::uint64_t h = hash_name(name);
  return Rng(s_[0] ^ rotl(s_[1], 17) ^ rotl(h, 29) ^ (s_[2] + 3 * h));
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // Top 53 bits → double in [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  check(lo <= hi, "uniform(lo, hi) requires lo <= hi");
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  check(n > 0, "uniform_index requires n > 0");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = n * (UINT64_MAX / n);
  std::uint64_t value = next_u64();
  while (value >= limit) value = next_u64();
  return value % n;
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box–Muller; u1 is kept away from exactly zero.
  double u1 = uniform();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

bool Rng::bernoulli(double p) { return uniform() < p; }

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = i;
  shuffle(perm);
  return perm;
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n,
                                                         std::size_t k) {
  check(k <= n, "cannot sample more distinct items than the population size");
  // Floyd's algorithm.
  std::unordered_set<std::size_t> chosen;
  std::vector<std::size_t> out;
  out.reserve(k);
  for (std::size_t j = n - k; j < n; ++j) {
    const std::size_t t = static_cast<std::size_t>(uniform_index(j + 1));
    if (chosen.insert(t).second) {
      out.push_back(t);
    } else {
      chosen.insert(j);
      out.push_back(j);
    }
  }
  return out;
}

}  // namespace dstee::util
