// Minimal command-line flag parser for the CLI tools.
//
// Supports --name value and --name=value forms, typed accessors with
// defaults, required flags, and an auto-generated --help text. Unknown
// flags are an error (catches typos in experiment scripts).
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace dstee::util {

/// Declarative flag set + parser.
class ArgParser {
 public:
  explicit ArgParser(std::string program_description);

  /// Declares a flag. `default_value` empty + required=true → must be set.
  ArgParser& add_flag(const std::string& name, const std::string& help,
                      const std::string& default_value = "",
                      bool required = false);

  /// Parses argv. Returns false (after printing usage) when --help was
  /// requested; throws CheckError on unknown/malformed/missing flags.
  bool parse(int argc, const char* const* argv);

  /// Typed accessors (flag must have been declared).
  std::string get_string(const std::string& name) const;
  std::int64_t get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  bool get_bool(const std::string& name) const;

  /// True when the user supplied the flag explicitly.
  bool was_set(const std::string& name) const;

  /// The generated usage text.
  std::string usage() const;

 private:
  struct Flag {
    std::string help;
    std::string default_value;
    bool required = false;
    std::optional<std::string> value;
  };
  const Flag& find(const std::string& name) const;

  std::string description_;
  std::map<std::string, Flag> flags_;
  std::vector<std::string> order_;
};

}  // namespace dstee::util
