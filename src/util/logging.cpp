#include "util/logging.hpp"

#include <atomic>
#include <cstdlib>
#include <iostream>

#include "util/string_util.hpp"
#include "util/sync.hpp"

namespace dstee::util {

namespace {

std::atomic<LogLevel>& level_storage() {
  static std::atomic<LogLevel> level = [] {
    if (const char* env = std::getenv("DSTEE_LOG_LEVEL"); env != nullptr) {
      return parse_log_level(env);
    }
    return LogLevel::kInfo;
  }();
  return level;
}

// Serializes whole log lines onto std::cerr. The guarded resource is the
// stream (external state), so there is no member to GUARDED_BY here.
Mutex& log_mutex() {
  // dstee-lint: allow(unguarded-mutex) -- protects std::cerr, not a member
  static Mutex m;
  return m;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "?";
}

}  // namespace

LogLevel log_level() { return level_storage().load(std::memory_order_relaxed); }

void set_log_level(LogLevel level) {
  level_storage().store(level, std::memory_order_relaxed);
}

LogLevel parse_log_level(std::string_view text) {
  const std::string lower = to_lower(text);
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "warn" || lower == "warning") return LogLevel::kWarn;
  if (lower == "error") return LogLevel::kError;
  if (lower == "off" || lower == "none") return LogLevel::kOff;
  return LogLevel::kInfo;
}

void log_message(LogLevel level, std::string_view message) {
  if (level < log_level()) return;
  MutexLock lock(log_mutex());
  std::cerr << "[" << level_name(level) << "] " << message << "\n";
}

}  // namespace dstee::util
