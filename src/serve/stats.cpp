#include "serve/stats.hpp"

#include <algorithm>
#include <cmath>

#include "obs/metrics.hpp"
#include "util/check.hpp"
#include "util/string_util.hpp"

namespace dstee::serve {

double percentile(const std::vector<double>& sorted_ascending, double q) {
  util::check(q >= 0.0 && q <= 1.0, "percentile rank must be in [0, 1]");
  if (sorted_ascending.empty()) return 0.0;
  const double pos =
      q * static_cast<double>(sorted_ascending.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted_ascending.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted_ascending[lo] * (1.0 - frac) + sorted_ascending[hi] * frac;
}

void ServerStats::record_batch(
    const std::vector<double>& request_latencies_ms) {
  batches_.fetch_add(1, std::memory_order_relaxed);
  requests_.fetch_add(request_latencies_ms.size(), std::memory_order_relaxed);
  util::MutexLock lock(mu_);
  for (const double latency : request_latencies_ms) {
    if (latencies_ms_.size() < kMaxLatencySamples) {
      latencies_ms_.push_back(latency);
    } else {
      latencies_ms_[next_slot_] = latency;
      next_slot_ = (next_slot_ + 1) % kMaxLatencySamples;
    }
  }
}

void ServerStats::record_queue_depth(std::size_t depth) {
  // Relaxed max-CAS: never blocks, never blocked by a snapshot.
  std::size_t seen = queue_peak_.load(std::memory_order_relaxed);
  while (depth > seen && !queue_peak_.compare_exchange_weak(
                             seen, depth, std::memory_order_relaxed)) {
  }
}

void ServerStats::record_blocked_ms(double ms) {
  blocked_us_.fetch_add(static_cast<std::int64_t>(ms * 1000.0),
                        std::memory_order_relaxed);
}

void ServerStats::record_shed() {
  shed_.fetch_add(1, std::memory_order_relaxed);
}

void ServerStats::record_swap() {
  swaps_.fetch_add(1, std::memory_order_relaxed);
}

StatsSnapshot ServerStats::finalize(std::size_t requests,
                                    std::size_t batches,
                                    double elapsed_seconds,
                                    std::vector<double> samples,
                                    std::size_t queue_peak,
                                    double blocked_ms,
                                    std::size_t shed_total,
                                    std::size_t swap_count) {
  StatsSnapshot s;
  s.requests = requests;
  s.batches = batches;
  s.elapsed_seconds = elapsed_seconds;
  s.queue_peak = queue_peak;
  s.blocked_ms = blocked_ms;
  s.shed_total = shed_total;
  s.swap_count = swap_count;
  std::sort(samples.begin(), samples.end());
  if (s.elapsed_seconds > 0.0) {
    s.throughput_rps = static_cast<double>(s.requests) / s.elapsed_seconds;
  }
  if (s.batches > 0) {
    s.mean_batch_size =
        static_cast<double>(s.requests) / static_cast<double>(s.batches);
  }
  if (!samples.empty()) {
    double sum = 0.0;
    for (const double v : samples) sum += v;
    s.latency_mean_ms = sum / static_cast<double>(samples.size());
    s.latency_p50_ms = percentile(samples, 0.50);
    s.latency_p95_ms = percentile(samples, 0.95);
    s.latency_p99_ms = percentile(samples, 0.99);
    s.latency_p999_ms = percentile(samples, 0.999);
    s.latency_max_ms = samples.back();
  }
  return s;
}

StatsSnapshot ServerStats::snapshot() const {
  std::vector<double> samples;
  double elapsed = 0.0;
  {
    // The lock covers only the sample-window copy and the clock base;
    // counter reads below are lock-free and never stall a worker.
    util::MutexLock lock(mu_);
    samples = latencies_ms_;
    elapsed = std::chrono::duration<double>(obs::now() - start_).count();
  }
  return finalize(requests_.load(std::memory_order_relaxed),
                  batches_.load(std::memory_order_relaxed), elapsed,
                  std::move(samples),
                  queue_peak_.load(std::memory_order_relaxed),
                  static_cast<double>(
                      blocked_us_.load(std::memory_order_relaxed)) /
                      1000.0,
                  shed_.load(std::memory_order_relaxed),
                  swaps_.load(std::memory_order_relaxed));
}

StatsSnapshot ServerStats::aggregate(
    const std::vector<const ServerStats*>& groups) {
  std::vector<double> samples;
  std::size_t requests = 0, batches = 0, queue_peak = 0;
  std::size_t shed = 0, swaps = 0;
  double blocked_ms = 0.0, elapsed = 0.0;
  for (const ServerStats* group : groups) {
    requests += group->requests_.load(std::memory_order_relaxed);
    batches += group->batches_.load(std::memory_order_relaxed);
    queue_peak = std::max(
        queue_peak, group->queue_peak_.load(std::memory_order_relaxed));
    shed += group->shed_.load(std::memory_order_relaxed);
    swaps += group->swaps_.load(std::memory_order_relaxed);
    blocked_ms += static_cast<double>(
                      group->blocked_us_.load(std::memory_order_relaxed)) /
                  1000.0;
    util::MutexLock lock(group->mu_);
    samples.insert(samples.end(), group->latencies_ms_.begin(),
                   group->latencies_ms_.end());
    elapsed = std::max(
        elapsed,
        std::chrono::duration<double>(obs::now() - group->start_).count());
  }
  return finalize(requests, batches, elapsed, std::move(samples), queue_peak,
                  blocked_ms, shed, swaps);
}

void ServerStats::reset() {
  // Counter stores and the ring clear are not one atomic transaction; a
  // reset concurrent with recording may keep a stray tick. reset() is a
  // bench/test convenience, not a serving-path operation.
  requests_.store(0, std::memory_order_relaxed);
  batches_.store(0, std::memory_order_relaxed);
  queue_peak_.store(0, std::memory_order_relaxed);
  blocked_us_.store(0, std::memory_order_relaxed);
  shed_.store(0, std::memory_order_relaxed);
  swaps_.store(0, std::memory_order_relaxed);
  util::MutexLock lock(mu_);
  latencies_ms_.clear();
  next_slot_ = 0;
  start_ = obs::now();
}

void export_stats_metrics(obs::MetricsRegistry& registry,
                          const std::string& label, const StatsSnapshot& s) {
  const auto set = [&](const char* name, double value, const char* help) {
    registry.gauge(name, label, help).set(value);
  };
  set("dstee_stats_requests", static_cast<double>(s.requests),
      "Completed requests");
  set("dstee_stats_batches", static_cast<double>(s.batches),
      "Forward passes executed");
  set("dstee_stats_mean_batch_size", s.mean_batch_size,
      "Requests per executed batch");
  set("dstee_stats_throughput_rps", s.throughput_rps,
      "Requests per second since start/reset");
  set("dstee_stats_latency_mean_ms", s.latency_mean_ms,
      "Mean end-to-end latency over the recent window, ms");
  set("dstee_stats_latency_p50_ms", s.latency_p50_ms,
      "p50 end-to-end latency over the recent window, ms");
  set("dstee_stats_latency_p99_ms", s.latency_p99_ms,
      "p99 end-to-end latency over the recent window, ms");
  set("dstee_stats_queue_peak", static_cast<double>(s.queue_peak),
      "Queue-depth high-water mark");
  set("dstee_stats_blocked_ms", s.blocked_ms,
      "Total submit() backpressure wait, ms");
  set("dstee_stats_shed", static_cast<double>(s.shed_total),
      "Requests rejected by admission control");
  set("dstee_stats_swaps", static_cast<double>(s.swap_count),
      "Hot-swap versions published");
}

std::string StatsSnapshot::to_string() const {
  std::string out;
  out += "requests:        " + std::to_string(requests) + "\n";
  out += "batches:         " + std::to_string(batches) + "\n";
  out += "mean batch size: " + util::format_fixed(mean_batch_size, 2) + "\n";
  out += "elapsed:         " + util::format_fixed(elapsed_seconds, 3) + " s\n";
  out += "throughput:      " + util::format_fixed(throughput_rps, 1) +
         " req/s\n";
  out += "latency mean:    " + util::format_fixed(latency_mean_ms, 3) +
         " ms\n";
  out += "latency p50:     " + util::format_fixed(latency_p50_ms, 3) + " ms\n";
  out += "latency p95:     " + util::format_fixed(latency_p95_ms, 3) + " ms\n";
  out += "latency p99:     " + util::format_fixed(latency_p99_ms, 3) + " ms\n";
  out += "latency p99.9:   " + util::format_fixed(latency_p999_ms, 3) +
         " ms\n";
  out += "latency max:     " + util::format_fixed(latency_max_ms, 3) + " ms\n";
  out += "queue peak:      " + std::to_string(queue_peak) + "\n";
  out += "blocked in submit: " + util::format_fixed(blocked_ms, 3) + " ms\n";
  out += "shed (admission):  " + std::to_string(shed_total) + "\n";
  out += "hot swaps:       " + std::to_string(swap_count) + "\n";
  return out;
}

}  // namespace dstee::serve
