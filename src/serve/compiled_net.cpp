#include "serve/compiled_net.hpp"

#include <utility>

#include "kernels/simd/backend.hpp"
#include "serve/passes.hpp"
#include "train/checkpoint.hpp"
#include "util/check.hpp"
#include "util/string_util.hpp"

namespace dstee::serve {

CompiledNet CompiledNet::compile(nn::Sequential& model,
                                 const sparse::SparseModel* state,
                                 const CompileOptions& options) {
  return Compiler(options).compile(model, state);
}

CompiledNet CompiledNet::from_checkpoint(const std::string& path,
                                         nn::Sequential& model,
                                         sparse::SparseModel* state,
                                         const CompileOptions& options) {
  train::load_checkpoint(path, model, state);
  return compile(model, state, options);
}

CompiledNet CompiledNet::bind(Plan&& plan, const CompileOptions& options) {
  CompiledNet net;
  // Counters first: Executor::bind consumes the plan's weights.
  net.sparse_ops_ = plan.sparse_ops;
  net.elided_ = plan.elided;
  net.residual_joins_ = plan.residual_joins;
  net.partitioned_ops_ = plan.partitioned_ops;
  net.fused_ops_ = plan.fused_ops;
  net.quantized_ops_ = plan.quantized_ops;
  net.total_nnz_ = plan.total_nnz;
  net.total_weights_ = plan.total_weights;
  net.total_weight_bytes_ = plan.total_weight_bytes();
  // An empty backend name defers every kernel call to the process-wide
  // active backend; a named one is resolved here, once, and pinned into
  // the bound ops (unknown/unsupported names fail loudly).
  const kernels::simd::KernelBackend* backend = nullptr;
  if (!options.kernel_backend.empty()) {
    backend = kernels::simd::find_backend(options.kernel_backend);
    util::check(backend != nullptr,
                "unknown or unsupported kernel backend '" +
                    options.kernel_backend + "'");
  }
  // Profile size must be fixed before bind() consumes the plan.
  std::shared_ptr<obs::OpProfile> profile;
  if (options.profile_ops) {
    profile = std::make_shared<obs::OpProfile>(plan.ops.size());
  }
  net.exec_ = Executor::bind(
      std::move(plan),
      runtime::IntraOp{options.intra_op_threads, options.intra_op_pool},
      backend, std::move(profile));
  return net;
}

CompiledNet CompiledNet::clone() const {
  CompiledNet copy;
  copy.exec_ = exec_.clone();
  copy.sparse_ops_ = sparse_ops_;
  copy.elided_ = elided_;
  copy.residual_joins_ = residual_joins_;
  copy.partitioned_ops_ = partitioned_ops_;
  copy.fused_ops_ = fused_ops_;
  copy.quantized_ops_ = quantized_ops_;
  copy.total_nnz_ = total_nnz_;
  copy.total_weights_ = total_weights_;
  copy.total_weight_bytes_ = total_weight_bytes_;
  return copy;
}

CompiledNet CompiledNet::clone_shared(
    const std::unordered_set<const void*>& shared) const {
  CompiledNet copy;
  copy.exec_ = exec_.clone_shared(shared);
  copy.sparse_ops_ = sparse_ops_;
  copy.elided_ = elided_;
  copy.residual_joins_ = residual_joins_;
  copy.partitioned_ops_ = partitioned_ops_;
  copy.fused_ops_ = fused_ops_;
  copy.quantized_ops_ = quantized_ops_;
  copy.total_nnz_ = total_nnz_;
  copy.total_weights_ = total_weights_;
  copy.total_weight_bytes_ = total_weight_bytes_;
  return copy;
}

double CompiledNet::density() const {
  return total_weights_ > 0
             ? static_cast<double>(total_nnz_) /
                   static_cast<double>(total_weights_)
             : 0.0;
}

double CompiledNet::flops_per_sample(
    const tensor::Shape& sample_shape) const {
  return exec_.accumulate_flops(sample_shape, /*dense=*/false);
}

double CompiledNet::dense_flops_per_sample(
    const tensor::Shape& sample_shape) const {
  return exec_.accumulate_flops(sample_shape, /*dense=*/true);
}

std::string CompiledNet::summary() const {
  std::string out = "CompiledNet: " + std::to_string(exec_.num_ops()) +
                    " ops, " + std::to_string(total_nnz_) + "/" +
                    std::to_string(total_weights_) + " weights (density " +
                    util::format_fixed(density() * 100.0, 1) + "%), " +
                    std::to_string(elided_) + " elided";
  if (residual_joins_ > 0) {
    out += ", " + std::to_string(residual_joins_) + " residual joins";
  }
  if (partitioned_ops_ > 0) {
    out += ", " + std::to_string(partitioned_ops_) + " partitioned (" +
           std::to_string(num_parallel_groups()) + " parallel groups)";
  }
  if (fused_ops_ > 0) {
    out += ", " + std::to_string(fused_ops_) + " fused";
  }
  if (quantized_ops_ > 0) {
    out += ", " + std::to_string(quantized_ops_) + " int8 (" +
           std::to_string(total_weight_bytes_) + " weight bytes)";
  }
  out += "\n";
  out += exec_.describe_ops();
  return out;
}

}  // namespace dstee::serve
