#include "serve/compiled_net.hpp"

#include <utility>

#include "serve/passes.hpp"
#include "train/checkpoint.hpp"
#include "util/string_util.hpp"

namespace dstee::serve {

CompiledNet CompiledNet::compile(nn::Sequential& model,
                                 const sparse::SparseModel* state,
                                 const CompileOptions& options) {
  return Compiler(options).compile(model, state);
}

CompiledNet CompiledNet::from_checkpoint(const std::string& path,
                                         nn::Sequential& model,
                                         sparse::SparseModel* state,
                                         const CompileOptions& options) {
  train::load_checkpoint(path, model, state);
  return compile(model, state, options);
}

CompiledNet CompiledNet::bind(Plan&& plan, const CompileOptions& options) {
  CompiledNet net;
  // Counters first: Executor::bind consumes the plan's weights.
  net.sparse_ops_ = plan.sparse_ops;
  net.elided_ = plan.elided;
  net.residual_joins_ = plan.residual_joins;
  net.partitioned_ops_ = plan.partitioned_ops;
  net.fused_ops_ = plan.fused_ops;
  net.total_nnz_ = plan.total_nnz;
  net.total_weights_ = plan.total_weights;
  net.exec_ = Executor::bind(
      std::move(plan),
      runtime::IntraOp{options.intra_op_threads, options.intra_op_pool});
  return net;
}

CompiledNet CompiledNet::clone() const {
  CompiledNet copy;
  copy.exec_ = exec_.clone();
  copy.sparse_ops_ = sparse_ops_;
  copy.elided_ = elided_;
  copy.residual_joins_ = residual_joins_;
  copy.partitioned_ops_ = partitioned_ops_;
  copy.fused_ops_ = fused_ops_;
  copy.total_nnz_ = total_nnz_;
  copy.total_weights_ = total_weights_;
  return copy;
}

CompiledNet CompiledNet::clone_shared(
    const std::unordered_set<const sparse::CsrMatrix*>& shared) const {
  CompiledNet copy;
  copy.exec_ = exec_.clone_shared(shared);
  copy.sparse_ops_ = sparse_ops_;
  copy.elided_ = elided_;
  copy.residual_joins_ = residual_joins_;
  copy.partitioned_ops_ = partitioned_ops_;
  copy.fused_ops_ = fused_ops_;
  copy.total_nnz_ = total_nnz_;
  copy.total_weights_ = total_weights_;
  return copy;
}

double CompiledNet::density() const {
  return total_weights_ > 0
             ? static_cast<double>(total_nnz_) /
                   static_cast<double>(total_weights_)
             : 0.0;
}

double CompiledNet::flops_per_sample(
    const tensor::Shape& sample_shape) const {
  return exec_.accumulate_flops(sample_shape, /*dense=*/false);
}

double CompiledNet::dense_flops_per_sample(
    const tensor::Shape& sample_shape) const {
  return exec_.accumulate_flops(sample_shape, /*dense=*/true);
}

std::string CompiledNet::summary() const {
  std::string out = "CompiledNet: " + std::to_string(exec_.num_ops()) +
                    " ops, " + std::to_string(total_nnz_) + "/" +
                    std::to_string(total_weights_) + " weights (density " +
                    util::format_fixed(density() * 100.0, 1) + "%), " +
                    std::to_string(elided_) + " elided";
  if (residual_joins_ > 0) {
    out += ", " + std::to_string(residual_joins_) + " residual joins";
  }
  if (partitioned_ops_ > 0) {
    out += ", " + std::to_string(partitioned_ops_) + " partitioned (" +
           std::to_string(num_parallel_groups()) + " parallel groups)";
  }
  if (fused_ops_ > 0) {
    out += ", " + std::to_string(fused_ops_) + " fused";
  }
  out += "\n";
  out += exec_.describe_ops();
  return out;
}

}  // namespace dstee::serve
