#include "serve/compiled_net.hpp"

#include <cmath>
#include <unordered_map>
#include <utility>

#include "kernels/activations.hpp"
#include "kernels/conv.hpp"
#include "runtime/pool.hpp"
#include "kernels/pool.hpp"
#include "models/resnet.hpp"
#include "nn/activations.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv2d.hpp"
#include "nn/dropout.hpp"
#include "nn/flatten.hpp"
#include "nn/linear.hpp"
#include "nn/pooling.hpp"
#include "sparse/flops.hpp"
#include "train/checkpoint.hpp"
#include "util/check.hpp"
#include "util/string_util.hpp"

namespace dstee::serve {

tensor::Tensor EvalOp::run(const tensor::Tensor& x) const {
  (void)x;
  util::fail("EvalOp: unary run() on an op of arity " +
             std::to_string(arity()));
}

tensor::Tensor EvalOp::run2(const tensor::Tensor& a,
                            const tensor::Tensor& b) const {
  (void)a;
  (void)b;
  util::fail("EvalOp: binary run2() on an op of arity " +
             std::to_string(arity()));
}

namespace {

/// Common state of the CSR-backed ops (Linear and Conv2d lowerings): the
/// weight matrix, the bias, and eval-BN folding into both.
class CsrOp : public EvalOp {
 public:
  CsrOp(sparse::CsrMatrix csr, tensor::Tensor bias, bool has_bias)
      : csr_(std::move(csr)), bias_(std::move(bias)), has_bias_(has_bias) {}

  /// Absorbs y ← y·scale + shift (per output row/channel) into the CSR
  /// values and bias, removing the batch-norm op entirely.
  void fold_scale_shift(const std::vector<float>& scale,
                        const std::vector<float>& shift) {
    csr_.scale_rows(scale);
    tensor::Tensor folded({csr_.rows()});
    for (std::size_t r = 0; r < csr_.rows(); ++r) {
      folded[r] = (has_bias_ ? bias_[r] * scale[r] : 0.0f) + shift[r];
    }
    bias_ = std::move(folded);
    has_bias_ = true;
    folded_bn_ = true;
  }

  const sparse::CsrMatrix& csr() const { return csr_; }

 protected:
  std::string csr_suffix() const {
    return "nnz=" + std::to_string(csr_.nnz()) + ", density=" +
           util::format_fixed(csr_.density() * 100.0, 1) + "%" +
           (folded_bn_ ? ", +bn" : "") + ")";
  }

  sparse::CsrMatrix csr_;
  tensor::Tensor bias_;
  bool has_bias_;
  bool folded_bn_ = false;
};

/// CSR Linear: y = spmm(x) + bias, with optional folded BN scale/shift.
class SpmmOp final : public CsrOp {
 public:
  SpmmOp(sparse::CsrMatrix csr, tensor::Tensor bias, bool has_bias,
         runtime::IntraOp intra)
      : CsrOp(std::move(csr), std::move(bias), has_bias), intra_(intra) {}

  std::unique_ptr<EvalOp> clone() const override {
    return std::make_unique<SpmmOp>(*this);
  }

  tensor::Tensor run(const tensor::Tensor& x) const override {
    tensor::Tensor y = csr_.spmm(x, intra_);
    if (has_bias_) {
      const std::size_t out = csr_.rows();
      for (std::size_t n = 0; n < y.dim(0); ++n) {
        float* row = y.raw() + n * out;
        for (std::size_t j = 0; j < out; ++j) row[j] += bias_[j];
      }
    }
    return y;
  }

  std::string describe() const override {
    return "spmm(" + std::to_string(csr_.rows()) + "x" +
           std::to_string(csr_.cols()) + ", " + csr_suffix();
  }

  tensor::Shape out_shape(const tensor::Shape& in) const override {
    return tensor::Shape({in.dim(0), csr_.rows()});
  }

  double flops(const tensor::Shape& in) const override {
    return sparse::linear_nnz_flops(csr_.nnz(), in.dim(0));
  }

  double dense_flops(const tensor::Shape& in) const override {
    return sparse::linear_nnz_flops(csr_.rows() * csr_.cols(), in.dim(0));
  }

 private:
  runtime::IntraOp intra_;
};

/// CSR conv: per-image im2col, then Y = W_csr · cols over the patch
/// matrix, with optional folded BN and bias. The CSR matrix holds the
/// masked weight viewed as [Cout, Cin·K·K] — the exact lowering
/// nn::Conv2d uses densely, so a masked checkpoint deploys its trained
/// topology bit-for-bit.
class ConvOp final : public CsrOp {
 public:
  ConvOp(sparse::CsrMatrix csr, std::size_t in_channels, std::size_t kernel,
         std::size_t stride, std::size_t padding, tensor::Tensor bias,
         bool has_bias, runtime::IntraOp intra)
      : CsrOp(std::move(csr), std::move(bias), has_bias),
        in_channels_(in_channels),
        kernel_(kernel),
        stride_(stride),
        padding_(padding),
        intra_(intra) {
    util::check(csr_.cols() == in_channels_ * kernel_ * kernel_,
                "conv CSR columns must equal Cin*K*K");
  }

  std::unique_ptr<EvalOp> clone() const override {
    return std::make_unique<ConvOp>(*this);
  }

  tensor::Tensor run(const tensor::Tensor& x) const override {
    const tensor::ConvGeometry g = geometry(x);
    const std::size_t batch = x.dim(0);
    const std::size_t oh = g.out_h(), ow = g.out_w();
    const std::size_t out_ch = csr_.rows();
    tensor::Tensor y({batch, out_ch, oh, ow});
    const std::size_t image_elems = in_channels_ * g.in_h * g.in_w;
    const std::size_t out_image_elems = out_ch * oh * ow;

    // Intra-op parallelism splits the batch on the persistent runtime
    // pool: images are independent, so every output element has exactly
    // one writer and the result is bit-identical for any chunk count.
    // Per-chunk im2col scratch keeps run() const and thread-safe. A
    // single image always runs inline (row-level splitting is the
    // NUMA/sharding follow-up).
    runtime::intra_chunks(intra_, batch, [&](std::size_t n0,
                                             std::size_t n1) {
      tensor::Tensor cols({g.patch_size(), oh * ow});
      for (std::size_t n = n0; n < n1; ++n) {
        tensor::im2col(x.raw() + n * image_elems, g, cols);
        csr_.spmm_cols_into(cols, y.raw() + n * out_image_elems);
      }
    });
    if (has_bias_) kernels::add_channel_bias(y, bias_.raw());
    return y;
  }

  std::string describe() const override {
    return "spconv(" + std::to_string(in_channels_) + "->" +
           std::to_string(csr_.rows()) + ", k" + std::to_string(kernel_) +
           ", s" + std::to_string(stride_) + ", p" +
           std::to_string(padding_) + ", " + csr_suffix();
  }

  tensor::Shape out_shape(const tensor::Shape& in) const override {
    const tensor::ConvGeometry g = geometry_for(in.dim(2), in.dim(3));
    return tensor::Shape({in.dim(0), csr_.rows(), g.out_h(), g.out_w()});
  }

  double flops(const tensor::Shape& in) const override {
    const tensor::ConvGeometry g = geometry_for(in.dim(2), in.dim(3));
    return sparse::conv_nnz_flops(csr_.nnz(), g.out_h(), g.out_w(),
                                  in.dim(0));
  }

  double dense_flops(const tensor::Shape& in) const override {
    const tensor::ConvGeometry g = geometry_for(in.dim(2), in.dim(3));
    return sparse::conv_nnz_flops(csr_.rows() * csr_.cols(), g.out_h(),
                                  g.out_w(), in.dim(0));
  }

 private:
  tensor::ConvGeometry geometry_for(std::size_t in_h,
                                    std::size_t in_w) const {
    // Checked here (not just in run()) so shape/FLOPs propagation through
    // out_shape()/flops() fails cleanly instead of underflowing out_h().
    util::check(in_h + 2 * padding_ >= kernel_ &&
                    in_w + 2 * padding_ >= kernel_,
                "spconv input smaller than kernel");
    tensor::ConvGeometry g;
    g.in_channels = in_channels_;
    g.in_h = in_h;
    g.in_w = in_w;
    g.kernel_h = kernel_;
    g.kernel_w = kernel_;
    g.stride = stride_;
    g.padding = padding_;
    return g;
  }

  tensor::ConvGeometry geometry(const tensor::Tensor& x) const {
    util::check(x.rank() == 4 && x.dim(1) == in_channels_,
                "spconv expects [N, " + std::to_string(in_channels_) +
                    ", H, W], got " + x.shape().to_string());
    return geometry_for(x.dim(2), x.dim(3));
  }

  std::size_t in_channels_;
  std::size_t kernel_;
  std::size_t stride_;
  std::size_t padding_;
  runtime::IntraOp intra_;
};

/// Residual join: y = a + b, optionally through ReLU — the lowering of
/// models::ResidualBlock's add-then-activate tail.
class AddOp final : public EvalOp {
 public:
  AddOp(bool relu, runtime::IntraOp intra) : relu_(relu), intra_(intra) {}

  std::unique_ptr<EvalOp> clone() const override {
    return std::make_unique<AddOp>(*this);
  }

  std::size_t arity() const override { return 2; }

  tensor::Tensor run2(const tensor::Tensor& a,
                      const tensor::Tensor& b) const override {
    if (relu_) return kernels::add_relu(a, b, nullptr, intra_);
    util::check(a.shape() == b.shape(),
                "residual add branches disagree: " + a.shape().to_string() +
                    " vs " + b.shape().to_string());
    tensor::Tensor y(a.shape());
    for (std::size_t i = 0; i < a.numel(); ++i) y[i] = a[i] + b[i];
    return y;
  }

  std::string describe() const override {
    return relu_ ? "add_relu" : "add";
  }

 private:
  bool relu_;
  runtime::IntraOp intra_;
};

/// Eval-mode batch-norm not adjacent to a Linear/Conv2d: y = x·scale +
/// shift per channel, over [N, C] or [N, C, H, W].
class ScaleShiftOp final : public EvalOp {
 public:
  ScaleShiftOp(std::vector<float> scale, std::vector<float> shift, bool rank4)
      : scale_(std::move(scale)), shift_(std::move(shift)), rank4_(rank4) {}

  std::unique_ptr<EvalOp> clone() const override {
    return std::make_unique<ScaleShiftOp>(*this);
  }

  tensor::Tensor run(const tensor::Tensor& x) const override {
    const std::size_t c = scale_.size();
    if (rank4_) {
      util::check(x.rank() == 4 && x.dim(1) == c,
                  "scale_shift expects [N, C, H, W]");
    } else {
      util::check(x.rank() == 2 && x.dim(1) == c,
                  "scale_shift expects [N, C]");
    }
    const std::size_t sp = rank4_ ? x.dim(2) * x.dim(3) : 1;
    tensor::Tensor y(x.shape());
    for (std::size_t n = 0; n < x.dim(0); ++n) {
      for (std::size_t ch = 0; ch < c; ++ch) {
        const float* src = x.raw() + (n * c + ch) * sp;
        float* dst = y.raw() + (n * c + ch) * sp;
        for (std::size_t i = 0; i < sp; ++i) {
          dst[i] = src[i] * scale_[ch] + shift_[ch];
        }
      }
    }
    return y;
  }

  std::string describe() const override {
    return "scale_shift(" + std::to_string(scale_.size()) + ")";
  }

 private:
  std::vector<float> scale_;
  std::vector<float> shift_;
  bool rank4_;
};

class ActivationOp final : public EvalOp {
 public:
  enum class Kind { kRelu, kLeakyRelu, kSigmoid, kTanh };

  explicit ActivationOp(Kind kind, runtime::IntraOp intra, float slope = 0.0f)
      : kind_(kind), slope_(slope), intra_(intra) {}

  std::unique_ptr<EvalOp> clone() const override {
    return std::make_unique<ActivationOp>(*this);
  }

  tensor::Tensor run(const tensor::Tensor& x) const override {
    switch (kind_) {
      case Kind::kRelu:
        return kernels::relu(x, nullptr, intra_);
      case Kind::kLeakyRelu:
        return kernels::leaky_relu(x, slope_, intra_);
      case Kind::kSigmoid:
        return kernels::sigmoid(x, intra_);
      case Kind::kTanh:
        return kernels::tanh(x, intra_);
    }
    util::fail("unreachable activation kind");
  }

  std::string describe() const override {
    switch (kind_) {
      case Kind::kRelu:
        return "relu";
      case Kind::kLeakyRelu:
        return "leaky_relu";
      case Kind::kSigmoid:
        return "sigmoid";
      case Kind::kTanh:
        return "tanh";
    }
    return "activation";
  }

 private:
  Kind kind_;
  float slope_;
  runtime::IntraOp intra_;
};

class FlattenOp final : public EvalOp {
 public:
  std::unique_ptr<EvalOp> clone() const override {
    return std::make_unique<FlattenOp>(*this);
  }

  tensor::Tensor run(const tensor::Tensor& x) const override {
    util::check(x.rank() >= 1, "flatten expects a batched tensor");
    const std::size_t batch = x.dim(0);
    return x.reshaped(tensor::Shape({batch, x.numel() / batch}));
  }
  std::string describe() const override { return "flatten"; }
  tensor::Shape out_shape(const tensor::Shape& in) const override {
    return tensor::Shape({in.dim(0), in.numel() / in.dim(0)});
  }
};

class MaxPoolOp final : public EvalOp {
 public:
  MaxPoolOp(std::size_t kernel, std::size_t stride, runtime::IntraOp intra)
      : kernel_(kernel), stride_(stride), intra_(intra) {}

  std::unique_ptr<EvalOp> clone() const override {
    return std::make_unique<MaxPoolOp>(*this);
  }

  tensor::Tensor run(const tensor::Tensor& x) const override {
    return kernels::maxpool2d(x, kernel_, stride_, nullptr, intra_);
  }

  std::string describe() const override {
    return "maxpool(k" + std::to_string(kernel_) + ",s" +
           std::to_string(stride_) + ")";
  }

  tensor::Shape out_shape(const tensor::Shape& in) const override {
    util::check(in.rank() == 4 && in.dim(2) >= kernel_ &&
                    in.dim(3) >= kernel_,
                "maxpool input smaller than window");
    return tensor::Shape({in.dim(0), in.dim(1),
                          (in.dim(2) - kernel_) / stride_ + 1,
                          (in.dim(3) - kernel_) / stride_ + 1});
  }

 private:
  std::size_t kernel_;
  std::size_t stride_;
  runtime::IntraOp intra_;
};

class AvgPoolOp final : public EvalOp {
 public:
  AvgPoolOp(std::size_t kernel, runtime::IntraOp intra)
      : kernel_(kernel), intra_(intra) {}

  std::unique_ptr<EvalOp> clone() const override {
    return std::make_unique<AvgPoolOp>(*this);
  }

  tensor::Tensor run(const tensor::Tensor& x) const override {
    return kernels::avgpool2d(x, kernel_, intra_);
  }

  std::string describe() const override {
    return "avgpool(k" + std::to_string(kernel_) + ")";
  }

  tensor::Shape out_shape(const tensor::Shape& in) const override {
    util::check(in.rank() == 4 && in.dim(2) >= kernel_ &&
                    in.dim(3) >= kernel_,
                "avgpool input smaller than window");
    return tensor::Shape({in.dim(0), in.dim(1), in.dim(2) / kernel_,
                          in.dim(3) / kernel_});
  }

 private:
  std::size_t kernel_;
  runtime::IntraOp intra_;
};

class GlobalAvgPoolOp final : public EvalOp {
 public:
  explicit GlobalAvgPoolOp(runtime::IntraOp intra) : intra_(intra) {}

  std::unique_ptr<EvalOp> clone() const override {
    return std::make_unique<GlobalAvgPoolOp>(*this);
  }

  tensor::Tensor run(const tensor::Tensor& x) const override {
    return kernels::global_avg_pool(x, intra_);
  }
  std::string describe() const override { return "global_avg_pool"; }
  tensor::Shape out_shape(const tensor::Shape& in) const override {
    return tensor::Shape({in.dim(0), in.dim(1)});
  }

 private:
  runtime::IntraOp intra_;
};

/// Eval-mode BN as per-channel affine constants.
void bn_scale_shift(const nn::BatchNorm& bn, std::vector<float>& scale,
                    std::vector<float>& shift) {
  const std::size_t c = bn.channels();
  scale.resize(c);
  shift.resize(c);
  for (std::size_t i = 0; i < c; ++i) {
    const double inv_std =
        1.0 / std::sqrt(static_cast<double>(bn.running_var()[i]) + bn.eps());
    const double s = static_cast<double>(bn.gamma().value[i]) * inv_std;
    scale[i] = static_cast<float>(s);
    shift[i] = static_cast<float>(
        static_cast<double>(bn.beta().value[i]) -
        static_cast<double>(bn.running_mean()[i]) * s);
  }
}

}  // namespace

CompiledNet CompiledNet::compile(nn::Sequential& model,
                                 const sparse::SparseModel* state,
                                 const CompileOptions& options) {
  // Weight → mask lookup so each Linear/Conv2d deploys its trained
  // topology.
  std::unordered_map<const nn::Parameter*, const sparse::MaskedParameter*>
      masked;
  if (state != nullptr) {
    for (std::size_t i = 0; i < state->num_layers(); ++i) {
      const sparse::MaskedParameter& layer = state->layer(i);
      masked.emplace(&layer.param(), &layer);
    }
  }

  CompiledNet net;
  // Passed through verbatim: the runtime treats 0 as "pool-wide", and
  // that contract is part of CompileOptions' docs. Every op shares the
  // one policy (chunk count + executing pool).
  const runtime::IntraOp intra{options.intra_op_threads,
                               options.intra_op_pool};

  // `cursor` is the node producing the current value (kInputId before the
  // first op). `fold_candidate` is the id of a CSR node a directly
  // following eval-BN may fold into; it is invalidated by anything that
  // could give that node a second consumer (chain boundaries of residual
  // branches) or by any intervening op.
  std::size_t cursor = kInputId;
  std::size_t fold_candidate = kInputId;

  auto emit = [&](std::unique_ptr<EvalOp> op, std::vector<std::size_t> in) {
    net.nodes_.push_back(OpNode{std::move(op), std::move(in)});
    cursor = net.nodes_.size() - 1;
    fold_candidate = kInputId;
    return cursor;
  };

  auto csr_for = [&](const nn::Parameter& weight) {
    const auto it = masked.find(&weight);
    sparse::CsrMatrix csr =
        it != masked.end()
            ? sparse::CsrMatrix::from_masked(*it->second)
            : sparse::CsrMatrix::from_dense(weight.value, options.dense_eps);
    net.total_nnz_ += csr.nnz();
    net.total_weights_ += csr.rows() * csr.cols();
    ++net.sparse_ops_;
    return csr;
  };

  auto lower = [&](auto&& self, nn::Module& module) -> void {
    if (auto* seq = dynamic_cast<nn::Sequential*>(&module)) {
      for (std::size_t i = 0; i < seq->size(); ++i) self(self, seq->child(i));
      return;
    }
    if (auto* block = dynamic_cast<models::ResidualBlock*>(&module)) {
      const std::size_t entry = cursor;
      fold_candidate = kInputId;  // entry gains a consumer: never fold into it
      self(self, block->main_path());
      const std::size_t main_tail = cursor;
      std::size_t shortcut_tail = entry;
      if (nn::Sequential* shortcut = block->shortcut_path()) {
        cursor = entry;
        fold_candidate = kInputId;
        self(self, *shortcut);
        shortcut_tail = cursor;
      }
      emit(std::make_unique<AddOp>(/*relu=*/true, intra),
           {main_tail, shortcut_tail});
      ++net.residual_joins_;
      return;
    }
    if (auto* linear = dynamic_cast<nn::Linear*>(&module)) {
      tensor::Tensor bias;
      if (linear->has_bias()) bias = linear->bias().value;
      emit(std::make_unique<SpmmOp>(csr_for(linear->weight()),
                                    std::move(bias), linear->has_bias(),
                                    intra),
           {cursor});
      fold_candidate = cursor;
      return;
    }
    if (auto* conv = dynamic_cast<nn::Conv2d*>(&module)) {
      tensor::Tensor bias;
      if (conv->has_bias()) bias = conv->bias().value;
      emit(std::make_unique<ConvOp>(csr_for(conv->weight()),
                                    conv->in_channels(), conv->kernel(),
                                    conv->stride(), conv->padding(),
                                    std::move(bias), conv->has_bias(),
                                    intra),
           {cursor});
      fold_candidate = cursor;
      return;
    }
    if (auto* bn = dynamic_cast<nn::BatchNorm*>(&module)) {
      std::vector<float> scale, shift;
      bn_scale_shift(*bn, scale, shift);
      // BN directly after a Linear/Conv2d collapses into the CSR
      // values/bias of that node — but only when the node was emitted by
      // the immediately preceding module of the SAME chain, so a residual
      // entry shared with the skip path is never mutated.
      if (fold_candidate != kInputId && fold_candidate == cursor) {
        if (auto* csr_op =
                dynamic_cast<CsrOp*>(net.nodes_[cursor].op.get());
            csr_op != nullptr && csr_op->csr().rows() == bn->channels()) {
          const bool conv_like =
              dynamic_cast<ConvOp*>(csr_op) != nullptr;
          if (conv_like == bn->is_rank4()) {
            csr_op->fold_scale_shift(scale, shift);
            return;
          }
        }
      }
      emit(std::make_unique<ScaleShiftOp>(std::move(scale), std::move(shift),
                                          bn->is_rank4()),
           {cursor});
      return;
    }
    if (dynamic_cast<nn::Dropout*>(&module) != nullptr) {
      ++net.elided_;  // inverted dropout is the identity at eval time
      return;
    }
    if (dynamic_cast<nn::ReLU*>(&module) != nullptr) {
      emit(std::make_unique<ActivationOp>(ActivationOp::Kind::kRelu, intra),
           {cursor});
      return;
    }
    if (auto* leaky = dynamic_cast<nn::LeakyReLU*>(&module)) {
      emit(std::make_unique<ActivationOp>(ActivationOp::Kind::kLeakyRelu,
                                          intra, leaky->slope()),
           {cursor});
      return;
    }
    if (dynamic_cast<nn::Sigmoid*>(&module) != nullptr) {
      emit(std::make_unique<ActivationOp>(ActivationOp::Kind::kSigmoid,
                                          intra),
           {cursor});
      return;
    }
    if (dynamic_cast<nn::Tanh*>(&module) != nullptr) {
      emit(std::make_unique<ActivationOp>(ActivationOp::Kind::kTanh, intra),
           {cursor});
      return;
    }
    if (dynamic_cast<nn::Flatten*>(&module) != nullptr) {
      emit(std::make_unique<FlattenOp>(), {cursor});
      return;
    }
    if (auto* pool = dynamic_cast<nn::MaxPool2d*>(&module)) {
      emit(std::make_unique<MaxPoolOp>(pool->kernel(), pool->stride(),
                                       intra),
           {cursor});
      return;
    }
    if (auto* pool = dynamic_cast<nn::AvgPool2d*>(&module)) {
      emit(std::make_unique<AvgPoolOp>(pool->kernel(), intra), {cursor});
      return;
    }
    if (dynamic_cast<nn::GlobalAvgPool*>(&module) != nullptr) {
      emit(std::make_unique<GlobalAvgPoolOp>(intra), {cursor});
      return;
    }
    util::fail("CompiledNet: unsupported layer '" + module.name() + "'");
  };
  lower(lower, model);

  util::check(!net.nodes_.empty(),
              "CompiledNet: model lowered to an empty op graph");
  net.use_counts_.assign(net.nodes_.size(), 0);
  for (const OpNode& node : net.nodes_) {
    for (const std::size_t in : node.inputs) {
      if (in != kInputId) ++net.use_counts_[in];
    }
  }
  if (auto* first = dynamic_cast<SpmmOp*>(net.nodes_.front().op.get());
      first != nullptr && net.nodes_.front().inputs.front() == kInputId) {
    net.input_features_ = first->csr().cols();
  }
  return net;
}

CompiledNet CompiledNet::from_checkpoint(const std::string& path,
                                         nn::Sequential& model,
                                         sparse::SparseModel* state,
                                         const CompileOptions& options) {
  train::load_checkpoint(path, model, state);
  return compile(model, state, options);
}

tensor::Tensor CompiledNet::forward(const tensor::Tensor& x) const {
  // nodes_ is non-empty (checked at compile). Intermediates are released
  // as soon as their last consumer has run, so peak memory tracks the
  // graph's width (2 live tensors on a residual chain), not its depth.
  std::vector<tensor::Tensor> values(nodes_.size());
  std::vector<std::size_t> remaining = use_counts_;
  auto value_of = [&](std::size_t id) -> const tensor::Tensor& {
    return id == kInputId ? x : values[id];
  };
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const OpNode& node = nodes_[i];
    values[i] =
        node.inputs.size() == 2
            ? node.op->run2(value_of(node.inputs[0]), value_of(node.inputs[1]))
            : node.op->run(value_of(node.inputs[0]));
    for (const std::size_t in : node.inputs) {
      if (in != kInputId && --remaining[in] == 0) {
        values[in] = tensor::Tensor();
      }
    }
  }
  return std::move(values.back());
}

CompiledNet CompiledNet::clone() const {
  CompiledNet copy;
  copy.nodes_.reserve(nodes_.size());
  for (const OpNode& node : nodes_) {
    copy.nodes_.push_back(OpNode{node.op->clone(), node.inputs});
  }
  copy.use_counts_ = use_counts_;
  copy.sparse_ops_ = sparse_ops_;
  copy.elided_ = elided_;
  copy.residual_joins_ = residual_joins_;
  copy.total_nnz_ = total_nnz_;
  copy.total_weights_ = total_weights_;
  copy.input_features_ = input_features_;
  return copy;
}

double CompiledNet::density() const {
  return total_weights_ > 0
             ? static_cast<double>(total_nnz_) /
                   static_cast<double>(total_weights_)
             : 0.0;
}

double CompiledNet::accumulate_flops(const tensor::Shape& sample_shape,
                                     bool dense) const {
  // Propagate a batch-1 shape through the graph, summing each node's cost.
  std::vector<std::size_t> dims;
  dims.reserve(sample_shape.rank() + 1);
  dims.push_back(1);
  for (std::size_t i = 0; i < sample_shape.rank(); ++i) {
    dims.push_back(sample_shape.dim(i));
  }
  const tensor::Shape input(dims);
  std::vector<tensor::Shape> shapes(nodes_.size());
  double total = 0.0;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const OpNode& node = nodes_[i];
    const std::size_t src = node.inputs.front();
    const tensor::Shape& in = src == kInputId ? input : shapes[src];
    total += dense ? node.op->dense_flops(in) : node.op->flops(in);
    shapes[i] = node.op->out_shape(in);
  }
  return total;
}

double CompiledNet::flops_per_sample(
    const tensor::Shape& sample_shape) const {
  return accumulate_flops(sample_shape, /*dense=*/false);
}

double CompiledNet::dense_flops_per_sample(
    const tensor::Shape& sample_shape) const {
  return accumulate_flops(sample_shape, /*dense=*/true);
}

std::string CompiledNet::summary() const {
  std::string out = "CompiledNet: " + std::to_string(nodes_.size()) +
                    " ops, " + std::to_string(total_nnz_) + "/" +
                    std::to_string(total_weights_) + " weights (density " +
                    util::format_fixed(density() * 100.0, 1) + "%), " +
                    std::to_string(elided_) + " elided";
  if (residual_joins_ > 0) {
    out += ", " + std::to_string(residual_joins_) + " residual joins";
  }
  out += "\n";
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    out += "  [" + std::to_string(i) + "] " + nodes_[i].op->describe();
    // Annotate producers whenever they are not just "the previous node" —
    // that is where the graph deviates from a straight line.
    const std::vector<std::size_t>& in = nodes_[i].inputs;
    const bool straight =
        in.size() == 1 && ((i == 0 && in[0] == kInputId) || in[0] + 1 == i);
    if (!straight) {
      out += " <- ";
      for (std::size_t j = 0; j < in.size(); ++j) {
        if (j > 0) out += ", ";
        if (in[j] == kInputId) {
          out += "in";
        } else {
          out += "[";
          out += std::to_string(in[j]);
          out += "]";
        }
      }
    }
    out += "\n";
  }
  return out;
}

}  // namespace dstee::serve
