#include "serve/compiled_net.hpp"

#include <cmath>
#include <limits>
#include <unordered_map>
#include <utility>

#include "nn/activations.hpp"
#include "nn/batchnorm.hpp"
#include "nn/dropout.hpp"
#include "nn/flatten.hpp"
#include "nn/linear.hpp"
#include "nn/pooling.hpp"
#include "train/checkpoint.hpp"
#include "util/check.hpp"
#include "util/string_util.hpp"

namespace dstee::serve {

namespace {

/// CSR Linear: y = spmm(x) + bias, with optional folded BN scale/shift.
class SpmmOp final : public EvalOp {
 public:
  SpmmOp(sparse::CsrMatrix csr, tensor::Tensor bias, bool has_bias,
         std::size_t threads)
      : csr_(std::move(csr)),
        bias_(std::move(bias)),
        has_bias_(has_bias),
        threads_(threads) {}

  tensor::Tensor run(const tensor::Tensor& x) const override {
    tensor::Tensor y = csr_.spmm(x, threads_);
    if (has_bias_) {
      const std::size_t out = csr_.rows();
      for (std::size_t n = 0; n < y.dim(0); ++n) {
        float* row = y.raw() + n * out;
        for (std::size_t j = 0; j < out; ++j) row[j] += bias_[j];
      }
    }
    return y;
  }

  /// Absorbs y ← y·scale + shift (per output row) into the CSR values and
  /// bias, removing the batch-norm op entirely.
  void fold_scale_shift(const std::vector<float>& scale,
                        const std::vector<float>& shift) {
    csr_.scale_rows(scale);
    tensor::Tensor folded({csr_.rows()});
    for (std::size_t r = 0; r < csr_.rows(); ++r) {
      folded[r] = (has_bias_ ? bias_[r] * scale[r] : 0.0f) + shift[r];
    }
    bias_ = std::move(folded);
    has_bias_ = true;
    folded_bn_ = true;
  }

  std::string describe() const override {
    return "spmm(" + std::to_string(csr_.rows()) + "x" +
           std::to_string(csr_.cols()) +
           ", nnz=" + std::to_string(csr_.nnz()) + ", density=" +
           util::format_fixed(csr_.density() * 100.0, 1) + "%" +
           (folded_bn_ ? ", +bn" : "") + ")";
  }

  const sparse::CsrMatrix& csr() const { return csr_; }

 private:
  sparse::CsrMatrix csr_;
  tensor::Tensor bias_;
  bool has_bias_;
  std::size_t threads_;
  bool folded_bn_ = false;
};

/// Eval-mode batch-norm not adjacent to a Linear: y = x·scale + shift per
/// channel, over [N, C] or [N, C, H, W].
class ScaleShiftOp final : public EvalOp {
 public:
  ScaleShiftOp(std::vector<float> scale, std::vector<float> shift, bool rank4)
      : scale_(std::move(scale)), shift_(std::move(shift)), rank4_(rank4) {}

  tensor::Tensor run(const tensor::Tensor& x) const override {
    const std::size_t c = scale_.size();
    if (rank4_) {
      util::check(x.rank() == 4 && x.dim(1) == c,
                  "scale_shift expects [N, C, H, W]");
    } else {
      util::check(x.rank() == 2 && x.dim(1) == c,
                  "scale_shift expects [N, C]");
    }
    const std::size_t sp = rank4_ ? x.dim(2) * x.dim(3) : 1;
    tensor::Tensor y(x.shape());
    for (std::size_t n = 0; n < x.dim(0); ++n) {
      for (std::size_t ch = 0; ch < c; ++ch) {
        const float* src = x.raw() + (n * c + ch) * sp;
        float* dst = y.raw() + (n * c + ch) * sp;
        for (std::size_t i = 0; i < sp; ++i) {
          dst[i] = src[i] * scale_[ch] + shift_[ch];
        }
      }
    }
    return y;
  }

  std::string describe() const override {
    return "scale_shift(" + std::to_string(scale_.size()) + ")";
  }

 private:
  std::vector<float> scale_;
  std::vector<float> shift_;
  bool rank4_;
};

class ActivationOp final : public EvalOp {
 public:
  enum class Kind { kRelu, kLeakyRelu, kSigmoid, kTanh };

  explicit ActivationOp(Kind kind, float slope = 0.0f)
      : kind_(kind), slope_(slope) {}

  tensor::Tensor run(const tensor::Tensor& x) const override {
    tensor::Tensor y(x.shape());
    for (std::size_t i = 0; i < x.numel(); ++i) {
      const float v = x[i];
      switch (kind_) {
        case Kind::kRelu:
          y[i] = v > 0.0f ? v : 0.0f;
          break;
        case Kind::kLeakyRelu:
          y[i] = v > 0.0f ? v : slope_ * v;
          break;
        case Kind::kSigmoid:
          y[i] = 1.0f / (1.0f + std::exp(-v));
          break;
        case Kind::kTanh:
          y[i] = std::tanh(v);
          break;
      }
    }
    return y;
  }

  std::string describe() const override {
    switch (kind_) {
      case Kind::kRelu:
        return "relu";
      case Kind::kLeakyRelu:
        return "leaky_relu";
      case Kind::kSigmoid:
        return "sigmoid";
      case Kind::kTanh:
        return "tanh";
    }
    return "activation";
  }

 private:
  Kind kind_;
  float slope_;
};

class FlattenOp final : public EvalOp {
 public:
  tensor::Tensor run(const tensor::Tensor& x) const override {
    util::check(x.rank() >= 1, "flatten expects a batched tensor");
    const std::size_t batch = x.dim(0);
    return x.reshaped(tensor::Shape({batch, x.numel() / batch}));
  }
  std::string describe() const override { return "flatten"; }
};

class MaxPoolOp final : public EvalOp {
 public:
  MaxPoolOp(std::size_t kernel, std::size_t stride)
      : kernel_(kernel), stride_(stride) {}

  tensor::Tensor run(const tensor::Tensor& x) const override {
    util::check(x.rank() == 4, "maxpool expects [N, C, H, W]");
    const std::size_t batch = x.dim(0), ch = x.dim(1), ih = x.dim(2),
                      iw = x.dim(3);
    util::check(ih >= kernel_ && iw >= kernel_,
                "maxpool input smaller than window");
    const std::size_t oh = (ih - kernel_) / stride_ + 1;
    const std::size_t ow = (iw - kernel_) / stride_ + 1;
    tensor::Tensor y({batch, ch, oh, ow});
    std::size_t out_i = 0;
    for (std::size_t n = 0; n < batch; ++n) {
      for (std::size_t c = 0; c < ch; ++c) {
        const float* plane = x.raw() + (n * ch + c) * ih * iw;
        for (std::size_t y0 = 0; y0 < oh; ++y0) {
          for (std::size_t x0 = 0; x0 < ow; ++x0) {
            float best = -std::numeric_limits<float>::infinity();
            for (std::size_t ky = 0; ky < kernel_; ++ky) {
              for (std::size_t kx = 0; kx < kernel_; ++kx) {
                const float v =
                    plane[(y0 * stride_ + ky) * iw + (x0 * stride_ + kx)];
                if (v > best) best = v;
              }
            }
            y[out_i++] = best;
          }
        }
      }
    }
    return y;
  }

  std::string describe() const override {
    return "maxpool(k" + std::to_string(kernel_) + ",s" +
           std::to_string(stride_) + ")";
  }

 private:
  std::size_t kernel_;
  std::size_t stride_;
};

class AvgPoolOp final : public EvalOp {
 public:
  explicit AvgPoolOp(std::size_t kernel) : kernel_(kernel) {}

  tensor::Tensor run(const tensor::Tensor& x) const override {
    util::check(x.rank() == 4, "avgpool expects [N, C, H, W]");
    const std::size_t batch = x.dim(0), ch = x.dim(1), ih = x.dim(2),
                      iw = x.dim(3);
    util::check(ih >= kernel_ && iw >= kernel_,
                "avgpool input smaller than window");
    const std::size_t oh = (ih - kernel_) / kernel_ + 1;
    const std::size_t ow = (iw - kernel_) / kernel_ + 1;
    const float inv = 1.0f / static_cast<float>(kernel_ * kernel_);
    tensor::Tensor y({batch, ch, oh, ow});
    std::size_t out_i = 0;
    for (std::size_t n = 0; n < batch; ++n) {
      for (std::size_t c = 0; c < ch; ++c) {
        const float* plane = x.raw() + (n * ch + c) * ih * iw;
        for (std::size_t y0 = 0; y0 < oh; ++y0) {
          for (std::size_t x0 = 0; x0 < ow; ++x0) {
            float acc = 0.0f;
            for (std::size_t ky = 0; ky < kernel_; ++ky) {
              for (std::size_t kx = 0; kx < kernel_; ++kx) {
                acc += plane[(y0 * kernel_ + ky) * iw + (x0 * kernel_ + kx)];
              }
            }
            y[out_i++] = acc * inv;
          }
        }
      }
    }
    return y;
  }

  std::string describe() const override {
    return "avgpool(k" + std::to_string(kernel_) + ")";
  }

 private:
  std::size_t kernel_;
};

class GlobalAvgPoolOp final : public EvalOp {
 public:
  tensor::Tensor run(const tensor::Tensor& x) const override {
    util::check(x.rank() == 4, "global_avg_pool expects [N, C, H, W]");
    const std::size_t batch = x.dim(0), ch = x.dim(1);
    const std::size_t sp = x.dim(2) * x.dim(3);
    const float inv = 1.0f / static_cast<float>(sp);
    tensor::Tensor y({batch, ch});
    for (std::size_t n = 0; n < batch; ++n) {
      for (std::size_t c = 0; c < ch; ++c) {
        const float* plane = x.raw() + (n * ch + c) * sp;
        float acc = 0.0f;
        for (std::size_t i = 0; i < sp; ++i) acc += plane[i];
        y[n * ch + c] = acc * inv;
      }
    }
    return y;
  }
  std::string describe() const override { return "global_avg_pool"; }
};

/// Eval-mode BN as per-channel affine constants.
void bn_scale_shift(const nn::BatchNorm& bn, std::vector<float>& scale,
                    std::vector<float>& shift) {
  const std::size_t c = bn.channels();
  scale.resize(c);
  shift.resize(c);
  for (std::size_t i = 0; i < c; ++i) {
    const double inv_std =
        1.0 / std::sqrt(static_cast<double>(bn.running_var()[i]) + bn.eps());
    const double s = static_cast<double>(bn.gamma().value[i]) * inv_std;
    scale[i] = static_cast<float>(s);
    shift[i] = static_cast<float>(
        static_cast<double>(bn.beta().value[i]) -
        static_cast<double>(bn.running_mean()[i]) * s);
  }
}

}  // namespace

CompiledNet CompiledNet::compile(nn::Sequential& model,
                                 const sparse::SparseModel* state,
                                 const CompileOptions& options) {
  // Weight → mask lookup so each Linear deploys its trained topology.
  std::unordered_map<const nn::Parameter*, const sparse::MaskedParameter*>
      masked;
  if (state != nullptr) {
    for (std::size_t i = 0; i < state->num_layers(); ++i) {
      const sparse::MaskedParameter& layer = state->layer(i);
      masked.emplace(&layer.param(), &layer);
    }
  }

  CompiledNet net;
  // Passed through verbatim: CsrMatrix::spmm treats 0 as "use hardware
  // concurrency", and that contract is part of CompileOptions' docs.
  const std::size_t threads = options.intra_op_threads;

  auto lower = [&](auto&& self, nn::Module& module) -> void {
    if (auto* seq = dynamic_cast<nn::Sequential*>(&module)) {
      for (std::size_t i = 0; i < seq->size(); ++i) self(self, seq->child(i));
      return;
    }
    if (auto* linear = dynamic_cast<nn::Linear*>(&module)) {
      const auto it = masked.find(&linear->weight());
      sparse::CsrMatrix csr =
          it != masked.end()
              ? sparse::CsrMatrix::from_masked(*it->second)
              : sparse::CsrMatrix::from_dense(linear->weight().value,
                                              options.dense_eps);
      net.total_nnz_ += csr.nnz();
      net.total_weights_ += csr.rows() * csr.cols();
      ++net.sparse_ops_;
      tensor::Tensor bias;
      if (linear->has_bias()) bias = linear->bias().value;
      net.ops_.push_back(std::make_unique<SpmmOp>(
          std::move(csr), std::move(bias), linear->has_bias(), threads));
      return;
    }
    if (auto* bn = dynamic_cast<nn::BatchNorm*>(&module)) {
      std::vector<float> scale, shift;
      bn_scale_shift(*bn, scale, shift);
      // BN directly after a Linear collapses into the CSR values/bias.
      if (!bn->is_rank4() && !net.ops_.empty()) {
        if (auto* spmm = dynamic_cast<SpmmOp*>(net.ops_.back().get());
            spmm != nullptr && spmm->csr().rows() == bn->channels()) {
          spmm->fold_scale_shift(scale, shift);
          return;
        }
      }
      net.ops_.push_back(std::make_unique<ScaleShiftOp>(
          std::move(scale), std::move(shift), bn->is_rank4()));
      return;
    }
    if (dynamic_cast<nn::Dropout*>(&module) != nullptr) {
      ++net.elided_;  // inverted dropout is the identity at eval time
      return;
    }
    if (dynamic_cast<nn::ReLU*>(&module) != nullptr) {
      net.ops_.push_back(
          std::make_unique<ActivationOp>(ActivationOp::Kind::kRelu));
      return;
    }
    if (auto* leaky = dynamic_cast<nn::LeakyReLU*>(&module)) {
      net.ops_.push_back(std::make_unique<ActivationOp>(
          ActivationOp::Kind::kLeakyRelu, leaky->slope()));
      return;
    }
    if (dynamic_cast<nn::Sigmoid*>(&module) != nullptr) {
      net.ops_.push_back(
          std::make_unique<ActivationOp>(ActivationOp::Kind::kSigmoid));
      return;
    }
    if (dynamic_cast<nn::Tanh*>(&module) != nullptr) {
      net.ops_.push_back(
          std::make_unique<ActivationOp>(ActivationOp::Kind::kTanh));
      return;
    }
    if (dynamic_cast<nn::Flatten*>(&module) != nullptr) {
      net.ops_.push_back(std::make_unique<FlattenOp>());
      return;
    }
    if (auto* pool = dynamic_cast<nn::MaxPool2d*>(&module)) {
      net.ops_.push_back(
          std::make_unique<MaxPoolOp>(pool->kernel(), pool->stride()));
      return;
    }
    if (auto* pool = dynamic_cast<nn::AvgPool2d*>(&module)) {
      net.ops_.push_back(std::make_unique<AvgPoolOp>(pool->kernel()));
      return;
    }
    if (dynamic_cast<nn::GlobalAvgPool*>(&module) != nullptr) {
      net.ops_.push_back(std::make_unique<GlobalAvgPoolOp>());
      return;
    }
    util::fail("CompiledNet: unsupported layer '" + module.name() +
               "' (conv deployment lowers to CSR over im2col patches — a "
               "ROADMAP follow-up)");
  };
  lower(lower, model);

  util::check(!net.ops_.empty(),
              "CompiledNet: model lowered to an empty op list");
  if (auto* first = dynamic_cast<SpmmOp*>(net.ops_.front().get())) {
    net.input_features_ = first->csr().cols();
  }
  return net;
}

CompiledNet CompiledNet::from_checkpoint(const std::string& path,
                                         nn::Sequential& model,
                                         sparse::SparseModel* state,
                                         const CompileOptions& options) {
  train::load_checkpoint(path, model, state);
  return compile(model, state, options);
}

tensor::Tensor CompiledNet::forward(const tensor::Tensor& x) const {
  // ops_ is non-empty (checked at compile), so run the first op straight
  // off `x` — Tensor has value semantics and seeding a loop variable with
  // `h = x` would deep-copy the whole input batch on every request.
  tensor::Tensor h = ops_.front()->run(x);
  for (std::size_t i = 1; i < ops_.size(); ++i) h = ops_[i]->run(h);
  return h;
}

double CompiledNet::density() const {
  return total_weights_ > 0
             ? static_cast<double>(total_nnz_) /
                   static_cast<double>(total_weights_)
             : 0.0;
}

std::string CompiledNet::summary() const {
  std::string out = "CompiledNet: " + std::to_string(ops_.size()) + " ops, " +
                    std::to_string(total_nnz_) + "/" +
                    std::to_string(total_weights_) + " weights (density " +
                    util::format_fixed(density() * 100.0, 1) + "%), " +
                    std::to_string(elided_) + " elided\n";
  for (std::size_t i = 0; i < ops_.size(); ++i) {
    out += "  [" + std::to_string(i) + "] " + ops_[i]->describe() + "\n";
  }
  return out;
}

}  // namespace dstee::serve
