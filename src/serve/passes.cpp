#include "serve/passes.hpp"

#include <algorithm>
#include <utility>

#include "util/check.hpp"

namespace dstee::serve {

namespace {

/// Remaps node ids after erasing node `erased`: consumers of the erased
/// node are rewired to `target` (its single producer), ids above shift
/// down by one.
void rewire_after_erase(Plan& plan, std::size_t erased, std::size_t target) {
  for (PlanOp& op : plan.ops) {
    for (std::size_t& in : op.inputs) {
      if (in == Plan::kInputId) continue;
      if (in == erased) {
        in = target;
      } else if (in > erased) {
        --in;
      }
    }
  }
}

/// The FreeAfterLastUse computation, shared so structural passes can keep
/// an existing annotation fresh after inserting/erasing nodes.
void recompute_release(Plan& plan) {
  plan.release_after.assign(plan.ops.size(), {});
  std::vector<std::size_t> last(plan.ops.size(), Plan::kInputId);
  for (std::size_t i = 0; i < plan.ops.size(); ++i) {
    for (const std::size_t in : plan.ops[i].inputs) {
      if (in != Plan::kInputId) last[in] = i;
    }
  }
  for (std::size_t id = 0; id + 1 < plan.ops.size(); ++id) {
    if (last[id] != Plan::kInputId) {
      plan.release_after[last[id]].push_back(id);
    }
  }
}

void refresh_release_if_present(Plan& plan) {
  if (!plan.release_after.empty()) recompute_release(plan);
}

}  // namespace

void ElideDropout::run(Plan& plan) const {
  std::size_t i = 0;
  while (i < plan.ops.size()) {
    if (plan.ops[i].kind != PlanOpKind::kDropout) {
      ++i;
      continue;
    }
    const std::size_t target = plan.ops[i].inputs.front();
    util::check(i + 1 < plan.ops.size() || target != Plan::kInputId,
                "cannot elide a dropout that is the whole plan");
    plan.ops.erase(plan.ops.begin() + static_cast<std::ptrdiff_t>(i));
    rewire_after_erase(plan, i, target);
    ++plan.elided;
  }
  refresh_release_if_present(plan);
  plan.validate();
}

void FoldBatchNorm::run(Plan& plan) const {
  std::size_t i = 0;
  while (i < plan.ops.size()) {
    PlanOp& bn = plan.ops[i];
    if (bn.kind != PlanOpKind::kScaleShift) {
      ++i;
      continue;
    }
    const std::size_t src = bn.inputs.front();
    bool fold = src != Plan::kInputId;
    if (fold) {
      const PlanOp& producer = plan.ops[src];
      const bool conv_like = producer.kind == PlanOpKind::kConv;
      fold = (producer.kind == PlanOpKind::kSpmm || conv_like) &&
             producer.csr->rows() == bn.scale.size() &&
             conv_like == bn.rank4 && plan.use_counts()[src] == 1;
    }
    if (!fold) {
      ++i;
      continue;
    }
    // Absorb y ← y·scale + shift (per output row/channel) into the CSR
    // values and bias, removing the batch-norm node entirely. The fold
    // mutates a fresh copy of the matrix, never the shared original:
    // plans are value types (tests copy them to compare before/after a
    // pass), and an in-place scale through the shared_ptr would corrupt
    // every copy while only this plan gets the matching bias.
    PlanOp& producer = plan.ops[src];
    producer.csr = std::make_shared<sparse::CsrMatrix>(*producer.csr);
    producer.csr->scale_rows(bn.scale);
    tensor::Tensor folded({producer.csr->rows()});
    for (std::size_t r = 0; r < producer.csr->rows(); ++r) {
      folded[r] =
          (producer.has_bias ? producer.bias[r] * bn.scale[r] : 0.0f) +
          bn.shift[r];
    }
    producer.bias = std::move(folded);
    producer.has_bias = true;
    producer.folded_bn = true;
    producer.bn_ordinal = bn.bn_ordinal;  // provenance for delta re-fold
    plan.ops.erase(plan.ops.begin() + static_cast<std::ptrdiff_t>(i));
    rewire_after_erase(plan, i, src);
  }
  refresh_release_if_present(plan);
  plan.validate();
}

void FreeAfterLastUse::run(Plan& plan) const {
  recompute_release(plan);
  plan.validate();
}

PartitionRows::PartitionRows(PartitionRowsOptions options)
    : options_(std::move(options)) {
  util::check(options_.ways >= 2, "partition_rows requires ways >= 2");
  util::check(options_.min_cost_share >= 0.0 &&
                  options_.min_cost_share <= 1.0,
              "partition_rows cost share must be in [0, 1]");
}

void PartitionRows::run(Plan& plan) const {
  // Per-node cost: executed FLOPs for the configured sample shape, else
  // stored-nonzero count (exact for Linear; a faithful proxy for conv,
  // whose per-position cost also scales with nnz).
  std::vector<double> cost(plan.ops.size(), 0.0);
  if (options_.sample_shape.rank() > 0) {
    const std::vector<Plan::NodeCost> costs =
        plan.annotate(options_.sample_shape);
    for (std::size_t i = 0; i < costs.size(); ++i) cost[i] = costs[i].flops;
  } else {
    for (std::size_t i = 0; i < plan.ops.size(); ++i) {
      const PlanOp& op = plan.ops[i];
      if (op.kind == PlanOpKind::kSpmm || op.kind == PlanOpKind::kConv) {
        cost[i] = static_cast<double>(op.csr->nnz());
      }
    }
  }
  double total = 0.0;
  for (const double c : cost) total += c;

  std::size_t next_group = 0;
  for (const PlanOp& op : plan.ops) {
    if (op.partition_group != PlanOp::kNoGroup) {
      next_group = std::max(next_group, op.partition_group + 1);
    }
  }

  // Descending ids: splitting node i inserts nodes after i, so every
  // not-yet-visited candidate (id < i) and its cost stay valid.
  for (std::size_t i = plan.ops.size(); i-- > 0;) {
    const PlanOp& op = plan.ops[i];
    const bool csr_node =
        op.kind == PlanOpKind::kSpmm || op.kind == PlanOpKind::kConv;
    if (!csr_node || total <= 0.0) continue;
    if (cost[i] / total < options_.min_cost_share) continue;
    if (op.csr->rows() < options_.ways) continue;

    PlanOp original = std::move(plan.ops[i]);
    const bool is_conv = original.kind == PlanOpKind::kConv;
    const std::vector<std::size_t> bounds =
        original.csr->balanced_row_splits(options_.ways);

    std::vector<PlanOp> repl;
    repl.reserve(options_.ways + 2);
    if (is_conv) {
      // Hoist im2col out of the slices: patches are computed once into a
      // shared buffer every slice streams.
      PlanOp im;
      im.kind = PlanOpKind::kIm2col;
      im.inputs = original.inputs;
      im.in_channels = original.in_channels;
      im.kernel = original.kernel;
      im.stride = original.stride;
      im.padding = original.padding;
      repl.push_back(std::move(im));
    }
    const std::size_t patches_id = i;  // new id of the im2col node
    for (std::size_t j = 0; j < options_.ways; ++j) {
      PlanOp slice;
      slice.kind = PlanOpKind::kRowSlice;
      slice.conv_slice = is_conv;
      slice.inputs =
          is_conv ? std::vector<std::size_t>{patches_id} : original.inputs;
      slice.csr = original.csr;  // zero-copy: all slices view one matrix
      slice.row_begin = bounds[j];
      slice.row_end = bounds[j + 1];
      if (original.has_bias) {
        tensor::Tensor b({bounds[j + 1] - bounds[j]});
        for (std::size_t r = bounds[j]; r < bounds[j + 1]; ++r) {
          b[r - bounds[j]] = original.bias[r];
        }
        slice.bias = std::move(b);
      }
      slice.has_bias = original.has_bias;
      slice.folded_bn = original.folded_bn;
      slice.sparse_ordinal = original.sparse_ordinal;
      slice.bn_ordinal = original.bn_ordinal;
      if (is_conv) {
        slice.in_channels = original.in_channels;
        slice.kernel = original.kernel;
        slice.stride = original.stride;
        slice.padding = original.padding;
      }
      slice.partition_group = next_group;
      repl.push_back(std::move(slice));
    }
    PlanOp concat;
    concat.kind = PlanOpKind::kConcatChannels;
    const std::size_t first_slice = i + (is_conv ? 1 : 0);
    for (std::size_t j = 0; j < options_.ways; ++j) {
      concat.inputs.push_back(first_slice + j);
    }
    repl.push_back(std::move(concat));
    ++next_group;

    const std::size_t inserted = repl.size();
    const std::size_t concat_id = i + inserted - 1;
    // Splice the replacement sequence in place of node i and remap every
    // later node: the old node's value is now the concat's.
    plan.ops.erase(plan.ops.begin() + static_cast<std::ptrdiff_t>(i));
    plan.ops.insert(plan.ops.begin() + static_cast<std::ptrdiff_t>(i),
                    std::make_move_iterator(repl.begin()),
                    std::make_move_iterator(repl.end()));
    for (std::size_t j = concat_id + 1; j < plan.ops.size(); ++j) {
      for (std::size_t& in : plan.ops[j].inputs) {
        if (in == Plan::kInputId || in < i) continue;
        in = in == i ? concat_id : in + inserted - 1;
      }
    }
    ++plan.partitioned_ops;
  }
  refresh_release_if_present(plan);
  plan.validate();
}

Compiler::Compiler(CompileOptions options) : options_(options) {
  // The default pipeline reproduces the pre-redesign monolithic compiler
  // exactly; appended passes run after it.
  passes_.push_back(std::make_unique<ElideDropout>());
  passes_.push_back(std::make_unique<FoldBatchNorm>());
  passes_.push_back(std::make_unique<FreeAfterLastUse>());
}

Compiler& Compiler::add_pass(std::unique_ptr<Pass> pass) {
  util::check(pass != nullptr, "add_pass requires a pass");
  passes_.push_back(std::move(pass));
  return *this;
}

Compiler& Compiler::clear_passes() {
  passes_.clear();
  return *this;
}

Plan Compiler::plan(nn::Sequential& model,
                    const sparse::SparseModel* state) const {
  Plan p = lower(model, state, options_.dense_eps);
  for (const std::unique_ptr<Pass>& pass : passes_) pass->run(p);
  return p;
}

CompiledNet Compiler::compile(nn::Sequential& model,
                              const sparse::SparseModel* state) const {
  Plan p = plan(model, state);
  return bind(std::move(p));
}

CompiledNet Compiler::bind(Plan&& plan) const {
  return CompiledNet::bind(std::move(plan), options_);
}

}  // namespace dstee::serve
