#include "serve/passes.hpp"

#include <algorithm>
#include <cctype>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "serve/fusion.hpp"
#include "serve/pass_util.hpp"
#include "sparse/qcsr.hpp"
#include "util/check.hpp"

namespace dstee::serve {

using detail::refresh_release_if_present;
using detail::rewire_after_erase;

void ElideDropout::run(Plan& plan) const {
  std::size_t i = 0;
  while (i < plan.ops.size()) {
    if (plan.ops[i].kind != PlanOpKind::kDropout) {
      ++i;
      continue;
    }
    const std::size_t target = plan.ops[i].inputs.front();
    util::check(i + 1 < plan.ops.size() || target != Plan::kInputId,
                "cannot elide a dropout that is the whole plan");
    plan.ops.erase(plan.ops.begin() + static_cast<std::ptrdiff_t>(i));
    rewire_after_erase(plan, i, target);
    ++plan.elided;
  }
  refresh_release_if_present(plan);
  plan.validate();
}

void FoldBatchNorm::run(Plan& plan) const {
  std::size_t i = 0;
  while (i < plan.ops.size()) {
    PlanOp& bn = plan.ops[i];
    if (bn.kind != PlanOpKind::kScaleShift) {
      ++i;
      continue;
    }
    const std::size_t src = bn.inputs.front();
    bool fold = src != Plan::kInputId;
    if (fold) {
      const PlanOp& producer = plan.ops[src];
      const bool conv_like = producer.kind == PlanOpKind::kConv;
      // Quantized producers (csr == nullptr) are skipped: folding scales
      // into int8 values would re-round them, and re-quantizing here
      // would hide a precision change inside an unrelated pass. Run
      // fold_bn before quantize:int8 — the standalone kScaleShift stays
      // correct either way.
      fold = (producer.kind == PlanOpKind::kSpmm || conv_like) &&
             producer.csr != nullptr &&
             producer.csr->rows() == bn.scale.size() &&
             conv_like == bn.rank4 && plan.use_counts()[src] == 1;
    }
    if (!fold) {
      ++i;
      continue;
    }
    // Absorb y ← y·scale + shift (per output row/channel) into the CSR
    // values and bias, removing the batch-norm node entirely. The fold
    // mutates a fresh copy of the matrix, never the shared original:
    // plans are value types (tests copy them to compare before/after a
    // pass), and an in-place scale through the shared_ptr would corrupt
    // every copy while only this plan gets the matching bias.
    PlanOp& producer = plan.ops[src];
    producer.csr = std::make_shared<sparse::CsrMatrix>(*producer.csr);
    producer.csr->scale_rows(bn.scale);
    tensor::Tensor folded({producer.csr->rows()});
    for (std::size_t r = 0; r < producer.csr->rows(); ++r) {
      folded[r] =
          (producer.has_bias ? producer.bias[r] * bn.scale[r] : 0.0f) +
          bn.shift[r];
    }
    producer.bias = std::move(folded);
    producer.has_bias = true;
    producer.folded_bn = true;
    producer.bn_ordinal = bn.bn_ordinal;  // provenance for delta re-fold
    plan.ops.erase(plan.ops.begin() + static_cast<std::ptrdiff_t>(i));
    rewire_after_erase(plan, i, src);
  }
  refresh_release_if_present(plan);
  plan.validate();
}

void FreeAfterLastUse::run(Plan& plan) const {
  detail::recompute_release(plan);
  plan.validate();
}

PartitionRows::PartitionRows(PartitionRowsOptions options)
    : options_(std::move(options)) {
  util::check(options_.ways >= 2, "partition_rows requires ways >= 2");
  util::check(options_.min_cost_share >= 0.0 &&
                  options_.min_cost_share <= 1.0,
              "partition_rows cost share must be in [0, 1]");
  if (options_.auto_mode) {
    util::check(options_.probe_batch >= 1 && options_.probe_iters >= 1,
                "partition_rows auto probe needs batch and iters >= 1");
  }
}

namespace {

/// The partition-rows:auto probe: bind a COPY of the plan (the plan's
/// weights are shared_ptrs, so the copy is cheap and bind moving them out
/// of the copy leaves the original intact), run a few profiled forwards
/// on a deterministic input, and return each node's measured nanoseconds.
/// All-zero result (clock too coarse for a tiny model) tells the caller
/// to keep the analytic cost.
std::vector<double> probe_measured_cost(const Plan& plan,
                                        const PartitionRowsOptions& o) {
  Plan copy = plan;
  auto profile = std::make_shared<obs::OpProfile>(copy.ops.size());
  // Inline intra-op policy: the probe measures per-node cost RATIOS, and
  // sharing the runtime pool with concurrent work would skew them.
  const Executor exec = Executor::bind(std::move(copy), runtime::IntraOp{},
                                       nullptr, std::move(profile));
  std::vector<std::size_t> dims;
  dims.reserve(o.sample_shape.rank() + 1);
  dims.push_back(o.probe_batch);
  for (std::size_t i = 0; i < o.sample_shape.rank(); ++i) {
    dims.push_back(o.sample_shape.dim(i));
  }
  tensor::Tensor x{tensor::Shape(dims)};
  // Deterministic, sign-mixed fill — the probe must not depend on RNG
  // state, and an all-zero input would let value-dependent epilogues
  // (ReLU) short-circuit differently than real traffic.
  for (std::size_t i = 0; i < x.numel(); ++i) {
    x[i] = 0.0625f * static_cast<float>(i % 33) - 1.0f;
  }
  for (std::size_t it = 0; it < o.probe_iters; ++it) exec.forward(x);
  const obs::OpProfile* prof = exec.op_profile();
  std::vector<double> cost(plan.ops.size(), 0.0);
  for (std::size_t i = 0; i < cost.size(); ++i) {
    cost[i] = static_cast<double>(prof->node_ns(i));
  }
  return cost;
}

}  // namespace

void PartitionRows::run(Plan& plan) const {
  // Per-node cost: executed FLOPs for the configured sample shape, else
  // stored-nonzero count (exact for Linear; a faithful proxy for conv,
  // whose per-position cost also scales with nnz).
  std::vector<double> cost(plan.ops.size(), 0.0);
  if (options_.sample_shape.rank() > 0) {
    const std::vector<Plan::NodeCost> costs =
        plan.annotate(options_.sample_shape);
    for (std::size_t i = 0; i < costs.size(); ++i) cost[i] = costs[i].flops;
  } else {
    for (std::size_t i = 0; i < plan.ops.size(); ++i) {
      const PlanOp& op = plan.ops[i];
      if (op.kind == PlanOpKind::kSpmm || op.kind == PlanOpKind::kConv) {
        cost[i] = static_cast<double>(op.csr != nullptr ? op.csr->nnz()
                                                        : op.qcsr->nnz());
      }
    }
  }
  // Auto mode: replace the analytic cost with measured per-node wall
  // time from a short profiled probe run. A probe that measured nothing
  // (sub-tick model) silently keeps the analytic cost above.
  if (options_.auto_mode) {
    util::check(options_.sample_shape.rank() > 0,
                "partition-rows:auto requires a sample shape "
                "(CompileOptions::sample_shape / dstee_serve --sample)");
    std::vector<double> measured = probe_measured_cost(plan, options_);
    double measured_total = 0.0;
    for (const double c : measured) measured_total += c;
    if (measured_total > 0.0) cost = std::move(measured);
  }

  double total = 0.0;
  for (const double c : cost) total += c;

  std::size_t next_group = 0;
  for (const PlanOp& op : plan.ops) {
    if (op.partition_group != PlanOp::kNoGroup) {
      next_group = std::max(next_group, op.partition_group + 1);
    }
  }

  // Descending ids: splitting node i inserts nodes after i, so every
  // not-yet-visited candidate (id < i) and its cost stay valid.
  for (std::size_t i = plan.ops.size(); i-- > 0;) {
    const PlanOp& op = plan.ops[i];
    const bool csr_node =
        op.kind == PlanOpKind::kSpmm || op.kind == PlanOpKind::kConv;
    if (!csr_node || total <= 0.0) continue;
    if (cost[i] / total < options_.min_cost_share) continue;
    const std::size_t node_rows =
        op.csr != nullptr ? op.csr->rows() : op.qcsr->rows();
    if (node_rows < options_.ways) continue;

    PlanOp original = std::move(plan.ops[i]);
    const bool is_conv = original.kind == PlanOpKind::kConv;
    const std::vector<std::size_t> bounds =
        original.csr != nullptr
            ? original.csr->balanced_row_splits(options_.ways)
            : original.qcsr->balanced_row_splits(options_.ways);

    std::vector<PlanOp> repl;
    repl.reserve(options_.ways + 2);
    if (is_conv) {
      // Hoist im2col out of the slices: patches are computed once into a
      // shared buffer every slice streams. Only the primary input feeds
      // the patch buffer — a fused residual edge belongs to the slices.
      PlanOp im;
      im.kind = PlanOpKind::kIm2col;
      im.inputs = {original.inputs.front()};
      im.in_channels = original.in_channels;
      im.kernel = original.kernel;
      im.stride = original.stride;
      im.padding = original.padding;
      repl.push_back(std::move(im));
    }
    const std::size_t patches_id = i;  // new id of the im2col node
    for (std::size_t j = 0; j < options_.ways; ++j) {
      PlanOp slice;
      slice.kind = PlanOpKind::kRowSlice;
      slice.conv_slice = is_conv;
      slice.inputs = is_conv
                         ? std::vector<std::size_t>{patches_id}
                         : std::vector<std::size_t>{original.inputs.front()};
      // A fused epilogue splits with the node: every slice applies the
      // annotation to its own row range, consuming the shared residual
      // edge (its id precedes i, so it survives the remap untouched).
      slice.epilogue = original.epilogue;
      if (original.epilogue.add_residual) {
        slice.inputs.push_back(original.inputs[1]);
      }
      slice.csr = original.csr;  // zero-copy: all slices view one matrix
      slice.qcsr = original.qcsr;
      slice.row_begin = bounds[j];
      slice.row_end = bounds[j + 1];
      if (original.has_bias) {
        tensor::Tensor b({bounds[j + 1] - bounds[j]});
        for (std::size_t r = bounds[j]; r < bounds[j + 1]; ++r) {
          b[r - bounds[j]] = original.bias[r];
        }
        slice.bias = std::move(b);
      }
      slice.has_bias = original.has_bias;
      slice.folded_bn = original.folded_bn;
      slice.sparse_ordinal = original.sparse_ordinal;
      slice.bn_ordinal = original.bn_ordinal;
      if (is_conv) {
        slice.in_channels = original.in_channels;
        slice.kernel = original.kernel;
        slice.stride = original.stride;
        slice.padding = original.padding;
      }
      slice.partition_group = next_group;
      repl.push_back(std::move(slice));
    }
    PlanOp concat;
    concat.kind = PlanOpKind::kConcatChannels;
    const std::size_t first_slice = i + (is_conv ? 1 : 0);
    for (std::size_t j = 0; j < options_.ways; ++j) {
      concat.inputs.push_back(first_slice + j);
    }
    repl.push_back(std::move(concat));
    ++next_group;

    const std::size_t inserted = repl.size();
    const std::size_t concat_id = i + inserted - 1;
    // Splice the replacement sequence in place of node i and remap every
    // later node: the old node's value is now the concat's.
    plan.ops.erase(plan.ops.begin() + static_cast<std::ptrdiff_t>(i));
    plan.ops.insert(plan.ops.begin() + static_cast<std::ptrdiff_t>(i),
                    std::make_move_iterator(repl.begin()),
                    std::make_move_iterator(repl.end()));
    for (std::size_t j = concat_id + 1; j < plan.ops.size(); ++j) {
      for (std::size_t& in : plan.ops[j].inputs) {
        if (in == Plan::kInputId || in < i) continue;
        in = in == i ? concat_id : in + inserted - 1;
      }
    }
    ++plan.partitioned_ops;
  }
  refresh_release_if_present(plan);
  plan.validate();
}

void QuantizeWeights::run(Plan& plan) const {
  // Memoized per source matrix: when PartitionRows already split a node,
  // every slice's shared_ptr resolves to the SAME quantized parent, so
  // the zero-copy slice-sharing invariant survives quantization (and the
  // pass composes identically on either side of partition_rows).
  std::unordered_map<const sparse::CsrMatrix*,
                     std::shared_ptr<sparse::QCsrMatrix>>
      memo;
  for (PlanOp& op : plan.ops) {
    const bool csr_kind = op.kind == PlanOpKind::kSpmm ||
                          op.kind == PlanOpKind::kConv ||
                          op.kind == PlanOpKind::kRowSlice;
    if (!csr_kind || op.csr == nullptr) continue;
    std::shared_ptr<sparse::QCsrMatrix>& q = memo[op.csr.get()];
    if (q == nullptr) {
      q = std::make_shared<sparse::QCsrMatrix>(
          sparse::QCsrMatrix::quantize(*op.csr));
    }
    op.qcsr = q;
    op.csr.reset();
    ++plan.quantized_ops;
  }
  plan.validate();
}

namespace {

/// Registry names are lowercased with '-' folded to '_', so spec authors
/// may write either "fold-bn" or "fold_bn".
std::string normalize_pass_name(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    out.push_back(c == '-' ? '_'
                           : static_cast<char>(std::tolower(
                                 static_cast<unsigned char>(c))));
  }
  return out;
}

std::size_t parse_pass_size(const std::string& pass,
                            const std::string& token) {
  try {
    return std::stoul(token);
  } catch (const std::exception&) {
    util::fail("pass '" + pass + "': bad integer argument '" + token + "'");
  }
}

double parse_pass_double(const std::string& pass, const std::string& token) {
  try {
    return std::stod(token);
  } catch (const std::exception&) {
    util::fail("pass '" + pass + "': bad numeric argument '" + token + "'");
  }
}

void check_no_args(const std::string& pass,
                   const std::vector<std::string>& args) {
  util::check(args.empty(), "pass '" + pass + "' takes no arguments");
}

/// The process-wide pass registry, seeded with every built-in pass.
/// Unsynchronized by design: registration happens at start-up (or from
/// the static initializer below), after which the map is only read —
/// the same publish-then-read-only discipline as the bound Executor.
std::unordered_map<std::string, Compiler::PassFactory>& pass_registry() {
  static std::unordered_map<std::string, Compiler::PassFactory> registry =
      [] {
        std::unordered_map<std::string, Compiler::PassFactory> reg;
        reg["elide_dropout"] = [](const std::vector<std::string>& args,
                                  const CompileOptions&) {
          check_no_args("elide_dropout", args);
          return std::make_unique<ElideDropout>();
        };
        const auto fold_bn = [](const std::vector<std::string>& args,
                                const CompileOptions&) {
          check_no_args("fold_batch_norm", args);
          return std::make_unique<FoldBatchNorm>();
        };
        reg["fold_batch_norm"] = fold_bn;
        reg["fold_bn"] = fold_bn;  // spec alias
        reg["free_after_last_use"] = [](const std::vector<std::string>& args,
                                        const CompileOptions&) {
          check_no_args("free_after_last_use", args);
          return std::make_unique<FreeAfterLastUse>();
        };
        reg["fuse_epilogue"] = [](const std::vector<std::string>& args,
                                  const CompileOptions&) {
          check_no_args("fuse_epilogue", args);
          return std::make_unique<FuseEpilogue>();
        };
        const auto quantize = [](const std::vector<std::string>& args,
                                 const CompileOptions&) {
          util::check(args.empty() || (args.size() == 1 && args[0] == "int8"),
                      "quantize spec is quantize[:int8] — int8 is the only "
                      "supported mode");
          return std::make_unique<QuantizeWeights>();
        };
        reg["quantize_weights"] = quantize;
        reg["quantize"] = quantize;  // spec alias
        reg["partition_rows"] = [](const std::vector<std::string>& args,
                                   const CompileOptions& options) {
          PartitionRowsOptions popts;
          std::size_t a = 0;
          if (!args.empty() && args[0] == "auto") {
            popts.auto_mode = true;
            a = 1;
          }
          util::check(args.size() - a <= 2,
                      "partition_rows spec is [auto:]ways[:min_cost_share]");
          if (args.size() > a) {
            popts.ways = parse_pass_size("partition_rows", args[a]);
          }
          if (args.size() > a + 1) {
            popts.min_cost_share =
                parse_pass_double("partition_rows", args[a + 1]);
          }
          popts.sample_shape = options.sample_shape;
          return std::make_unique<PartitionRows>(popts);
        };
        return reg;
      }();
  return registry;
}

}  // namespace

Compiler::Compiler(CompileOptions options) : options_(std::move(options)) {
  // The default pipeline reproduces the pre-redesign monolithic compiler
  // exactly; appended passes run after it.
  passes_.push_back(std::make_unique<ElideDropout>());
  passes_.push_back(std::make_unique<FoldBatchNorm>());
  passes_.push_back(std::make_unique<FreeAfterLastUse>());
}

void Compiler::register_pass(const std::string& name, PassFactory factory) {
  util::check(!name.empty(), "register_pass requires a name");
  util::check(factory != nullptr, "register_pass requires a factory");
  pass_registry()[normalize_pass_name(name)] = std::move(factory);
}

Compiler& Compiler::pipeline_from_spec(const std::string& spec) {
  std::vector<std::unique_ptr<Pass>> pipeline;
  std::size_t start = 0;
  while (start <= spec.size()) {
    std::size_t end = spec.find(',', start);
    if (end == std::string::npos) end = spec.size();
    const std::string token = spec.substr(start, end - start);
    start = end + 1;
    util::check(!token.empty(), "empty pass name in pipeline spec '" +
                                    spec + "'");
    // name[:arg[:arg...]]
    std::vector<std::string> parts;
    std::size_t p = 0;
    while (p <= token.size()) {
      std::size_t q = token.find(':', p);
      if (q == std::string::npos) q = token.size();
      parts.push_back(token.substr(p, q - p));
      p = q + 1;
    }
    const std::string name = normalize_pass_name(parts.front());
    const std::vector<std::string> args(parts.begin() + 1, parts.end());
    const auto& registry = pass_registry();
    const auto it = registry.find(name);
    util::check(it != registry.end(),
                "unknown pass '" + parts.front() + "' in pipeline spec");
    std::unique_ptr<Pass> pass = it->second(args, options_);
    util::check(pass != nullptr,
                "pass factory for '" + name + "' returned null");
    pipeline.push_back(std::move(pass));
  }
  passes_ = std::move(pipeline);
  return *this;
}

std::string Compiler::pipeline_spec() const {
  std::string out;
  for (const std::unique_ptr<Pass>& pass : passes_) {
    if (!out.empty()) out += ",";
    out += pass->name();
  }
  return out;
}

Compiler& Compiler::add_pass(std::unique_ptr<Pass> pass) {
  util::check(pass != nullptr, "add_pass requires a pass");
  passes_.push_back(std::move(pass));
  return *this;
}

Compiler& Compiler::clear_passes() {
  passes_.clear();
  return *this;
}

Plan Compiler::plan(nn::Sequential& model,
                    const sparse::SparseModel* state) const {
  Plan p = lower(model, state, options_.dense_eps);
  for (const std::unique_ptr<Pass>& pass : passes_) pass->run(p);
  return p;
}

CompiledNet Compiler::compile(nn::Sequential& model,
                              const sparse::SparseModel* state) const {
  Plan p = plan(model, state);
  return bind(std::move(p));
}

CompiledNet Compiler::bind(Plan&& plan) const {
  return CompiledNet::bind(std::move(plan), options_);
}

}  // namespace dstee::serve
