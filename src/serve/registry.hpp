// ModelRegistry: multi-tenant serving over the shared runtime pool.
//
// One process serves N named models, each behind its own InferenceServer
// (M shard worker groups, micro-batching queues) while every compiled
// net's intra-op work lands on the one process-wide runtime::Pool — the
// paper's deployment story scaled from "a model" to "a fleet".
//
// The registry owns, per model: the training-side module + SparseModel
// (the mutable source of truth deltas apply to), the Compiler pipeline
// it was compiled with, the retained base Plan (the PR 5 seam: it shares
// CsrMatrix instances with the currently-bound version), and the server.
//
// ZERO-DOWNTIME UPDATES
//   apply_delta(name, delta)  checks the delta's base hash against the
//       model, applies it, patches ONLY the touched plan nodes
//       (apply_delta_to_plan), binds the patched plan and RCU-publishes
//       it into the model's server. Replicas for shards 1.. are built
//       with clone_shared: delta-touched matrices fresh, everything else
//       shared — a patch swap does O(touched weights) work, not O(model).
//   swap_model(name, checkpoint)  the full-recompile path for when no
//       delta is available (or a delta declared needs_full_recompile).
// Both run under the slot's swap lock; serving never pauses (workers
// capture a version per micro-batch, see server.hpp).
//
// AUTOSCALING: an optional background thread polls each model's queue
// depth and p99 and grows/shrinks the server's active shard count
// between min/max bounds (autoscale_target is the pure, unit-testable
// policy). Scaling only moves the routing bound — shard slots and their
// warm replicas are pre-built, so reaction time is one poll interval.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "nn/sequential.hpp"
#include "obs/metrics.hpp"
#include "serve/delta.hpp"
#include "serve/passes.hpp"
#include "serve/server.hpp"
#include "sparse/sparse_model.hpp"
#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace dstee::serve {

/// Queue-depth / p99-driven shard scaling policy knobs.
struct AutoscalerConfig {
  bool enabled = false;
  double interval_ms = 50.0;  ///< poll period
  std::size_t min_shards = 1;
  std::size_t max_shards = 0;  ///< 0 = the server's max_shards
  /// Grow when mean queued requests per active shard reaches this.
  double queue_high = 8.0;
  /// Shrink candidate when mean queue per shard is at or below this.
  double queue_low = 1.0;
  /// Also grow when the aggregate p99 reaches this (0 disables the
  /// latency signal).
  double p99_high_ms = 0.0;
  /// Consecutive cold polls required before shrinking by one — scaling
  /// down is cheap to undo but thrashing wastes warm queues.
  std::size_t shrink_patience = 3;
};

/// The pure scaling decision: returns the target active shard count for
/// one poll. `low_streak` is the caller-kept consecutive-cold counter
/// (reset on any hot or neutral poll). Grows by one on a hot signal,
/// shrinks by one after `shrink_patience` cold polls, else holds.
/// `max_shards` must already be resolved (non-zero).
std::size_t autoscale_target(const AutoscalerConfig& config,
                             std::size_t active,
                             double mean_queue_per_shard, double p99_ms,
                             std::size_t& low_streak);

/// What a hot swap did, for logs and tests.
struct SwapReport {
  bool full_recompile = false;  ///< delta fell back to a fresh plan()
  std::size_t patched_weight_nodes = 0;
  std::size_t total_weight_nodes = 0;
  std::size_t patched_scale_shifts = 0;
  std::size_t swap_epoch = 0;  ///< server swap count after this swap
};

/// Per-model serving + compilation options for ModelRegistry::add_model.
struct ModelOptions {
  ServerConfig server;
  CompileOptions compile;
  /// >= 2 appends a PartitionRows pass with this many ways.
  std::size_t partition_ways = 0;
  double partition_min_cost_share = 0.25;
  AutoscalerConfig autoscaler;
};

/// Multi-tenant model registry with zero-downtime hot swap.
///
/// Thread-safety: add_model/apply_delta/swap_model/scale_model/
/// remove_model may be called concurrently with each other and with
/// submit/try_submit from any number of threads. Slot STORAGE lives until
/// shutdown() (references handed out internally stay valid), but
/// remove_model() decommissions a slot: its server drains in-flight
/// requests on the version they captured, warm replicas and model state
/// are released, and later lookups of the name fail until it is re-added.
class ModelRegistry {
 public:
  /// Evictions (and per-model serving metrics, when ModelOptions wires
  /// them) are counted in `metrics`; the default is the process-wide
  /// obs registry. Must outlive the registry.
  explicit ModelRegistry(obs::MetricsRegistry* metrics = &obs::metrics());
  ~ModelRegistry();

  ModelRegistry(const ModelRegistry&) = delete;
  ModelRegistry& operator=(const ModelRegistry&) = delete;

  /// Registers `name`, taking ownership of the module and its sparse
  /// state (`state` may be null for dense models; when non-null it must
  /// be built over `*module`). Compiles, retains the plan, starts the
  /// model's server. Throws on duplicate or empty name.
  void add_model(const std::string& name,
                 std::unique_ptr<nn::Sequential> module,
                 std::unique_ptr<sparse::SparseModel> state,
                 ModelOptions options = {});

  /// Blocking submit to `name`'s server (see InferenceServer::submit).
  std::future<tensor::Tensor> submit(const std::string& name,
                                     tensor::Tensor input);

  /// Admission-controlled submit: nullopt when the model sheds the
  /// request (per-model queue quota, counted in its shed_total).
  std::optional<std::future<tensor::Tensor>> try_submit(
      const std::string& name, tensor::Tensor input);

  /// Applies a sparse delta to `name` in place and hot-swaps the served
  /// version, rebuilding only the delta-touched plan nodes. Fails (and
  /// changes nothing) when the delta's base hash does not match the
  /// model's current state.
  SwapReport apply_delta(const std::string& name,
                         const CheckpointDelta& delta);

  /// Full-recompile hot swap from a full (v1/v2) checkpoint file.
  void swap_model(const std::string& name,
                  const std::string& checkpoint_path);

  /// Manual scaling (also what the autoscaler calls); returns the new
  /// active count.
  std::size_t scale_model(const std::string& name, std::size_t shards);

  /// Evicts `name`: in-flight and already-queued requests finish on the
  /// version they captured, then the server's warm replicas and the
  /// slot's module/state/plan are released. Later submits (and every
  /// other by-name operation) throw a "removed" error; the name may be
  /// re-added. Counted in the `dstee_model_evictions_total` obs metric.
  void remove_model(const std::string& name);

  StatsSnapshot stats(const std::string& name) const;
  std::size_t num_active_shards(const std::string& name) const;
  std::size_t queue_depth(const std::string& name) const;
  /// The model's current state hash (what a delta's base_hash must be).
  std::uint64_t state_hash(const std::string& name) const;

  std::vector<std::string> model_names() const;
  std::size_t num_models() const;
  bool has_model(const std::string& name) const;

  /// Stops the autoscaler and shuts every model's server down.
  /// Idempotent; also run by the destructor.
  void shutdown();

 private:
  struct Slot {
    explicit Slot(ModelOptions opts)
        : options(std::move(opts)), compiler(options.compile) {}

    std::string name;  ///< immutable after add_model publishes the slot
    const ModelOptions options;
    std::unique_ptr<nn::Sequential> module;
    std::unique_ptr<sparse::SparseModel> state;
    Compiler compiler;  ///< pipeline the model was (re)compiled with

    /// Guards the mutable model state + retained plan + hash during
    /// swaps; submits never take it.
    mutable util::Mutex mu;
    /// The PR 5 seam: shares CsrMatrix instances with the bound version.
    Plan base_plan DSTEE_GUARDED_BY(mu);
    std::uint64_t hash DSTEE_GUARDED_BY(mu) = 0;

    std::unique_ptr<InferenceServer> server;  ///< set once in add_model
    std::size_t low_streak = 0;  ///< autoscaler thread only

    /// Set (release) by remove_model before it decommissions the slot;
    /// find() refuses removed slots, so no new work reaches a slot whose
    /// replicas are being released. Storage stays until shutdown().
    std::atomic<bool> removed{false};
  };

  /// Name lookup; throws CheckError on unknown and on removed names. The
  /// returned slot is pointer-stable (slot storage is never freed before
  /// shutdown()).
  Slot& find(const std::string& name) const;

  /// Compiles the slot's current model state, retains the plan under
  /// slot.mu and returns the bound net.
  std::shared_ptr<const CompiledNet> recompile(Slot& slot)
      DSTEE_REQUIRES(slot.mu);

  void autoscale_loop();
  void start_autoscaler();

  obs::MetricsRegistry* metrics_;       ///< never null
  obs::Counter* evictions_;             ///< dstee_model_evictions_total

  mutable util::Mutex mu_;  ///< guards the slot vector (append-only)
  std::vector<std::unique_ptr<Slot>> slots_ DSTEE_GUARDED_BY(mu_);

  util::Mutex as_mu_;
  bool as_stop_ DSTEE_GUARDED_BY(as_mu_) = false;
  util::CondVar as_cv_;  ///< wakes the autoscaler for prompt shutdown
  // The autoscaler is a long-lived poller owned by the registry,
  // started at most once and joined in shutdown().
  // dstee-lint: allow(raw-thread) -- registry-owned poller, joined in shutdown
  std::thread autoscaler_;
};

}  // namespace dstee::serve
