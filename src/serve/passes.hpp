// Plan passes + the pass-manager Compiler.
//
// Every optimization the old monolithic CompiledNet::compile() hard-coded
// is now a named, individually-testable rewrite over the Plan IR:
//
//   ElideDropout      removes kDropout nodes (inverted dropout is the
//                     identity at eval time)
//   FoldBatchNorm     absorbs a kScaleShift into the CSR values/bias of
//                     the single CSR producer feeding it
//   FreeAfterLastUse  annotates each node with the intermediates that die
//                     after it, so the executor releases tensors eagerly
//   PartitionRows     splits the row range of any CSR node whose cost
//                     share exceeds a threshold into cost-balanced
//                     RowSlice sub-ops joined by a concat node — the
//                     row-range sharding step: one sample's heaviest
//                     layers execute in parallel across the runtime pool
//
//   FuseEpilogue      absorbs activation / residual-add consumers into
//                     the producing CSR node as a fused kernel epilogue
//                     (serve/fusion.hpp)
//   QuantizeWeights   rewrites fp32 CSR weight nodes to int8 values with
//                     per-row fp32 scales ("quantize:int8" in specs)
//
// Compiler runs the default pipeline (the first three, preserving the
// monolith's behavior bit-for-bit) and lets callers append passes — or
// build the whole pipeline from a named spec string:
//
//   serve::Compiler compiler(options);
//   compiler.add_pass(std::make_unique<serve::PartitionRows>(popts));
//   serve::Plan plan = compiler.plan(model, &smodel);   // inspect / dump
//   serve::CompiledNet net = compiler.bind(std::move(plan));
//
//   compiler.pipeline_from_spec(
//       "elide-dropout,fold-bn,fuse-epilogue,partition-rows:4");
//
// Every built-in pass is in the registry under its name() (plus the
// spec aliases "fold-bn"/"fold_bn"); Compiler::register_pass adds custom
// passes to the same namespace. Structural passes keep the
// FreeAfterLastUse annotation fresh: any pass that inserts or erases
// nodes recomputes existing release lists.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "serve/compiled_net.hpp"
#include "serve/plan.hpp"

namespace dstee::serve {

/// One named rewrite over a Plan. Passes are stateless beyond their
/// construction-time options; run() may assume and must preserve
/// Plan::validate().
class Pass {
 public:
  virtual ~Pass() = default;
  virtual std::string name() const = 0;
  virtual void run(Plan& plan) const = 0;
};

/// Removes kDropout nodes (identity at eval) and counts them as elided.
class ElideDropout final : public Pass {
 public:
  std::string name() const override { return "elide_dropout"; }
  void run(Plan& plan) const override;
};

/// Folds a kScaleShift whose single-consumer producer is a matching CSR
/// node into that node's values/bias. A producer shared with a residual
/// skip path has two consumers and is never mutated — the same guard the
/// monolithic compiler enforced through its emission cursor.
class FoldBatchNorm final : public Pass {
 public:
  std::string name() const override { return "fold_batch_norm"; }
  void run(Plan& plan) const override;
};

/// Computes Plan::release_after: each intermediate is freed right after
/// its last consumer, so forward-pass peak memory tracks the graph's
/// width (2 live tensors on a residual chain), not its depth.
class FreeAfterLastUse final : public Pass {
 public:
  std::string name() const override { return "free_after_last_use"; }
  void run(Plan& plan) const override;
};

/// Knobs for PartitionRows.
struct PartitionRowsOptions {
  /// Number of row-range slices per split node (k >= 2).
  std::size_t ways = 2;
  /// Split a CSR node when its share of the plan's executed FLOPs (or of
  /// total nnz when no sample_shape is given) reaches this fraction.
  double min_cost_share = 0.25;
  /// Sample shape (no batch axis) used to compute per-node FLOPs shares;
  /// rank 0 falls back to nnz shares (exact for Linear, a proxy for conv
  /// whose per-position cost still scales with nnz).
  tensor::Shape sample_shape{};
  /// Measure instead of model ("partition-rows:auto" in specs): bind a
  /// probe executor off a COPY of the plan, run a few deterministic
  /// forwards with per-op profiling, and pick the nodes to split from the
  /// OBSERVED wall-time shares — cache effects, fused epilogues and
  /// kernel dispatch included, which the analytic nnz/FLOPs model cannot
  /// see. Requires sample_shape (the probe needs an input); a probe that
  /// measures nothing falls back to the analytic cost. Slice BOUNDARIES
  /// still come from balanced_row_splits, so the partitioned program
  /// stays bit-identical to the unpartitioned one either way — auto only
  /// changes WHICH nodes split.
  bool auto_mode = false;
  std::size_t probe_batch = 4;  ///< rows in the probe input
  std::size_t probe_iters = 3;  ///< timed forwards to accumulate
};

/// Splits the heaviest CSR nodes into `ways` cost-balanced row-range
/// slices (CsrMatrix::balanced_row_splits — equal stored-nonzero work per
/// slice, per Parger et al.'s cost-proportional balancing) joined by a
/// concat node. A split conv additionally hoists its im2col into a shared
/// patch-buffer node so the patches are computed once, not once per
/// slice. The executor runs each slice group as one fan-out on the
/// runtime pool; results match the unpartitioned program bit-for-bit
/// because row slicing preserves every per-row reduction order.
class PartitionRows final : public Pass {
 public:
  explicit PartitionRows(PartitionRowsOptions options = {});
  std::string name() const override { return "partition_rows"; }
  void run(Plan& plan) const override;

 private:
  PartitionRowsOptions options_;
};

/// Rewrites every fp32 CSR weight node (kSpmm / kConv / kRowSlice) to
/// int8 weights with per-row fp32 scales (sparse::QCsrMatrix — symmetric
/// round-to-nearest, fp32 accumulation). Registered as "quantize" with an
/// optional mode argument ("quantize:int8", the only supported mode).
/// Composes on either side of PartitionRows: quantization is memoized per
/// source matrix, so the slices of a split node keep sharing ONE
/// quantized parent, and PartitionRows can split quantized nodes. Weight
/// bytes drop to ~5/8 of fp32 storage per nonzero (int8 value + uint32
/// index vs fp32 + uint32) plus one fp32 scale per row — annotate() and
/// Plan::total_weight_bytes() report the reduction.
class QuantizeWeights final : public Pass {
 public:
  std::string name() const override { return "quantize_weights"; }
  void run(Plan& plan) const override;
};

/// The serve pass manager: lowering + an ordered pass pipeline + binding.
/// Default-constructed pipelines reproduce the pre-redesign compiler
/// exactly (elide_dropout, fold_batch_norm, free_after_last_use).
class Compiler {
 public:
  /// Builds a Pass from spec arguments (the ":"-separated tokens after
  /// the pass name, may be empty) under the compiler's options.
  using PassFactory = std::function<std::unique_ptr<Pass>(
      const std::vector<std::string>& args, const CompileOptions& options)>;

  explicit Compiler(CompileOptions options = {});

  /// Registers `factory` under `name` in the process-wide pass registry
  /// (names are normalized: lowercased, '-' → '_'). Re-registering a name
  /// replaces it. NOT thread-safe: register passes during start-up,
  /// before compilers run concurrently — the registry is read-only after
  /// that, like every other bind-then-serve structure here.
  static void register_pass(const std::string& name, PassFactory factory);

  /// Replaces the pipeline with the passes named in `spec`: a
  /// comma-separated list of registry names, each optionally followed by
  /// ":"-separated arguments — e.g.
  /// "elide-dropout,fold-bn,fuse-epilogue,partition-rows:4:0.25".
  /// Unknown names fail loudly. Returns *this for chaining.
  Compiler& pipeline_from_spec(const std::string& spec);

  /// The active pipeline as a comma-separated list of pass names (what
  /// `dstee_serve --dump-plan` prints).
  std::string pipeline_spec() const;

  /// Appends a pass; returns *this for chaining.
  Compiler& add_pass(std::unique_ptr<Pass> pass);

  /// Drops every pass (a raw lowering pipeline, for tests/debugging).
  Compiler& clear_passes();

  const std::vector<std::unique_ptr<Pass>>& passes() const {
    return passes_;
  }

  const CompileOptions& options() const { return options_; }

  /// Lowers `model` and runs the pipeline; the returned plan is final and
  /// inspectable (Plan::dump) and can be handed to bind().
  Plan plan(nn::Sequential& model,
            const sparse::SparseModel* state = nullptr) const;

  /// plan() + bind(): the one-call compile.
  CompiledNet compile(nn::Sequential& model,
                      const sparse::SparseModel* state = nullptr) const;

  /// Binds an already-finished plan under this compiler's options.
  CompiledNet bind(Plan&& plan) const;

 private:
  CompileOptions options_;
  std::vector<std::unique_ptr<Pass>> passes_;
};

}  // namespace dstee::serve
