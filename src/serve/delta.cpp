#include "serve/delta.hpp"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <unordered_map>
#include <unordered_set>

#include "nn/batchnorm.hpp"
#include "nn/conv2d.hpp"
#include "nn/linear.hpp"
#include "sparse/qcsr.hpp"
#include "util/check.hpp"

namespace dstee::serve {

namespace {

// Same magic as train/checkpoint.cpp: a delta is version 3 of the one
// dstee checkpoint family, so both loaders can recognize — and cleanly
// reject — each other's files.
constexpr char kMagic[4] = {'D', 'S', 'T', 'E'};

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void fnv_mix(std::uint64_t& h, std::uint64_t v) {
  for (std::size_t byte = 0; byte < sizeof(v); ++byte) {
    h ^= (v >> (8 * byte)) & 0xffu;
    h *= kFnvPrime;
  }
}

void fnv_mix_float(std::uint64_t& h, float v) {
  std::uint32_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  fnv_mix(h, bits);
}

void fnv_mix_tensor(std::uint64_t& h, const tensor::Tensor& t) {
  fnv_mix(h, t.numel());
  for (std::size_t i = 0; i < t.numel(); ++i) fnv_mix_float(h, t[i]);
}

bool tensors_differ(const tensor::Tensor& a, const tensor::Tensor& b) {
  if (a.numel() != b.numel()) return true;
  return std::memcmp(a.raw(), b.raw(), a.numel() * sizeof(float)) != 0;
}

// --- binary helpers (little-endian on every platform we build for, the
// same assumption train/checkpoint.cpp makes) --------------------------

void write_u32(std::ofstream& out, std::uint32_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void write_u64(std::ofstream& out, std::uint64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void write_f32(std::ofstream& out, float v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

std::uint64_t read_u64(std::ifstream& in) {
  std::uint64_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  util::check(in.good(), "delta file truncated");
  return v;
}

float read_f32(std::ifstream& in) {
  float v = 0.0f;
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  util::check(in.good(), "delta file truncated");
  return v;
}

void write_pairs(std::ofstream& out,
                 const std::vector<std::pair<std::size_t, float>>& pairs) {
  write_u64(out, pairs.size());
  for (const auto& [idx, value] : pairs) {
    write_u64(out, idx);
    write_f32(out, value);
  }
}

std::vector<std::pair<std::size_t, float>> read_pairs(std::ifstream& in) {
  std::vector<std::pair<std::size_t, float>> pairs(read_u64(in));
  for (auto& [idx, value] : pairs) {
    idx = read_u64(in);
    value = read_f32(in);
  }
  return pairs;
}

void write_dense(std::ofstream& out,
                 const std::vector<DenseTensorDelta>& tensors) {
  write_u64(out, tensors.size());
  for (const DenseTensorDelta& d : tensors) {
    write_u64(out, d.index);
    write_u64(out, d.values.size());
    for (const float v : d.values) write_f32(out, v);
  }
}

std::vector<DenseTensorDelta> read_dense(std::ifstream& in) {
  std::vector<DenseTensorDelta> tensors(read_u64(in));
  for (DenseTensorDelta& d : tensors) {
    d.index = read_u64(in);
    d.values.resize(read_u64(in));
    for (float& v : d.values) v = read_f32(in);
  }
  return tensors;
}

/// param pointer → masked-layer index, the lookup both the diff and the
/// patch side key sparse updates on.
std::unordered_map<const nn::Parameter*, std::size_t> masked_layers(
    const sparse::SparseModel* state) {
  std::unordered_map<const nn::Parameter*, std::size_t> map;
  if (state != nullptr) {
    for (std::size_t i = 0; i < state->num_layers(); ++i) {
      map.emplace(&state->layer(i).param(), i);
    }
  }
  return map;
}

}  // namespace

std::uint64_t model_state_hash(nn::Module& model,
                               const sparse::SparseModel* state) {
  std::uint64_t h = kFnvOffset;
  for (const nn::Parameter* p : model.parameters()) {
    fnv_mix_tensor(h, p->value);
  }
  for (const tensor::Tensor* b : model.state_buffers()) {
    fnv_mix_tensor(h, *b);
  }
  if (state != nullptr) {
    for (std::size_t i = 0; i < state->num_layers(); ++i) {
      const std::vector<std::size_t> active =
          state->layer(i).mask().active_indices();
      fnv_mix(h, active.size());
      for (const std::size_t idx : active) fnv_mix(h, idx);
    }
  }
  return h;
}

CheckpointDelta make_delta(nn::Module& base,
                           const sparse::SparseModel* base_state,
                           nn::Module& next,
                           const sparse::SparseModel* next_state) {
  const std::vector<nn::Parameter*> bp = base.parameters();
  const std::vector<nn::Parameter*> np = next.parameters();
  util::check(bp.size() == np.size(),
              "make_delta: models differ in parameter count");
  const std::vector<tensor::Tensor*> bb = base.state_buffers();
  const std::vector<tensor::Tensor*> nb = next.state_buffers();
  util::check(bb.size() == nb.size(),
              "make_delta: models differ in state-buffer count");
  util::check((base_state == nullptr) == (next_state == nullptr),
              "make_delta: both or neither model must carry sparse state");
  if (base_state != nullptr) {
    util::check(base_state->num_layers() == next_state->num_layers(),
                "make_delta: sparse layer count mismatch");
  }

  const auto base_masked = masked_layers(base_state);
  const auto next_masked = masked_layers(next_state);

  CheckpointDelta delta;
  delta.base_hash = model_state_hash(base, base_state);
  delta.result_hash = model_state_hash(next, next_state);

  for (std::size_t p = 0; p < bp.size(); ++p) {
    util::check(bp[p]->value.shape() == np[p]->value.shape(),
                "make_delta: parameter " + std::to_string(p) +
                    " changed shape — not an incremental update");
    const auto bit = base_masked.find(bp[p]);
    const auto nit = next_masked.find(np[p]);
    util::check((bit == base_masked.end()) == (nit == next_masked.end()),
                "make_delta: parameter " + std::to_string(p) +
                    " is masked in only one model");
    if (bit != base_masked.end()) {
      util::check(bit->second == nit->second,
                  "make_delta: masked layer order differs between models");
      const sparse::MaskedParameter& bl = base_state->layer(bit->second);
      const sparse::MaskedParameter& nl = next_state->layer(nit->second);
      SparseLayerDelta section;
      section.layer = bit->second;
      const std::size_t n = bl.numel();
      for (std::size_t j = 0; j < n; ++j) {
        const bool was = bl.mask().is_active(j);
        const bool is = nl.mask().is_active(j);
        if (was && !is) {
          section.removed.push_back(j);
        } else if (!was && is) {
          section.added.emplace_back(j, nl.param().value[j]);
        } else if (was && is &&
                   bl.param().value[j] != nl.param().value[j]) {
          section.changed.emplace_back(j, nl.param().value[j]);
        }
      }
      if (!section.removed.empty() || !section.added.empty() ||
          !section.changed.empty()) {
        delta.sparse_layers.push_back(std::move(section));
      }
    } else if (tensors_differ(bp[p]->value, np[p]->value)) {
      DenseTensorDelta d;
      d.index = p;
      d.values.assign(np[p]->value.raw(),
                      np[p]->value.raw() + np[p]->value.numel());
      delta.dense_params.push_back(std::move(d));
    }
  }

  for (std::size_t b = 0; b < bb.size(); ++b) {
    util::check(bb[b]->numel() == nb[b]->numel(),
                "make_delta: state buffer " + std::to_string(b) +
                    " changed shape");
    if (tensors_differ(*bb[b], *nb[b])) {
      DenseTensorDelta d;
      d.index = b;
      d.values.assign(nb[b]->raw(), nb[b]->raw() + nb[b]->numel());
      delta.state_buffers.push_back(std::move(d));
    }
  }
  return delta;
}

void save_delta(const std::string& path, const CheckpointDelta& delta) {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(p.parent_path(), ec);
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  util::check(out.is_open(), "cannot open delta for writing: " + path);
  out.write(kMagic, sizeof(kMagic));
  write_u32(out, CheckpointDelta::kVersion);
  write_u64(out, delta.base_hash);
  write_u64(out, delta.result_hash);
  write_u64(out, delta.sparse_layers.size());
  for (const SparseLayerDelta& section : delta.sparse_layers) {
    write_u64(out, section.layer);
    write_u64(out, section.removed.size());
    for (const std::size_t idx : section.removed) write_u64(out, idx);
    write_pairs(out, section.added);
    write_pairs(out, section.changed);
  }
  write_dense(out, delta.dense_params);
  write_dense(out, delta.state_buffers);
  out.flush();
  util::check(out.good(), "delta write failed: " + path);
}

CheckpointDelta load_delta(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  util::check(in.is_open(), "cannot open delta for reading: " + path);
  char magic[4] = {};
  in.read(magic, sizeof(magic));
  util::check(in.good() && std::equal(magic, magic + 4, kMagic),
              "not a dstee checkpoint/delta file: " + path);
  std::uint32_t version = 0;
  in.read(reinterpret_cast<char*>(&version), sizeof(version));
  util::check(in.good(), "delta file truncated");
  util::check(version != 1 && version != 2,
              "checkpoint " + path + " is a FULL checkpoint (v" +
                  std::to_string(version) +
                  "), not a sparse delta; load it with "
                  "train::load_checkpoint");
  util::check(version == CheckpointDelta::kVersion,
              "unsupported delta version " + std::to_string(version));

  CheckpointDelta delta;
  delta.base_hash = read_u64(in);
  delta.result_hash = read_u64(in);
  delta.sparse_layers.resize(read_u64(in));
  for (SparseLayerDelta& section : delta.sparse_layers) {
    section.layer = read_u64(in);
    section.removed.resize(read_u64(in));
    for (std::size_t& idx : section.removed) idx = read_u64(in);
    section.added = read_pairs(in);
    section.changed = read_pairs(in);
  }
  delta.dense_params = read_dense(in);
  delta.state_buffers = read_dense(in);
  return delta;
}

void apply_delta(const CheckpointDelta& delta, nn::Module& model,
                 sparse::SparseModel* state) {
  const std::uint64_t have = model_state_hash(model, state);
  util::check(
      have == delta.base_hash,
      "delta base mismatch: this delta was built against base state " +
          std::to_string(delta.base_hash) + " but the model hashes to " +
          std::to_string(have) +
          " — apply the delta to the exact checkpoint it was made from");

  for (const SparseLayerDelta& section : delta.sparse_layers) {
    util::check(state != nullptr,
                "delta carries sparse layer updates but the model has no "
                "SparseModel state");
    util::check(section.layer < state->num_layers(),
                "delta sparse layer index out of range");
    sparse::MaskedParameter& layer = state->layer(section.layer);
    const std::size_t n = layer.numel();
    for (const std::size_t idx : section.removed) {
      util::check(idx < n && layer.mask().is_active(idx),
                  "delta removes an inactive position (corrupt delta?)");
      layer.mask().deactivate(idx);
    }
    for (const auto& [idx, value] : section.added) {
      util::check(idx < n && !layer.mask().is_active(idx),
                  "delta grows an already-active position (corrupt delta?)");
      layer.mask().activate(idx);
      layer.param().value[idx] = value;
    }
    for (const auto& [idx, value] : section.changed) {
      util::check(idx < n && layer.mask().is_active(idx),
                  "delta changes an inactive position (corrupt delta?)");
      layer.param().value[idx] = value;
    }
    layer.apply_mask_to_value();
  }

  const std::vector<nn::Parameter*> params = model.parameters();
  for (const DenseTensorDelta& d : delta.dense_params) {
    util::check(d.index < params.size(), "delta parameter index out of range");
    tensor::Tensor& value = params[d.index]->value;
    util::check(d.values.size() == value.numel(),
                "delta parameter size mismatch");
    std::copy(d.values.begin(), d.values.end(), value.raw());
  }
  const std::vector<tensor::Tensor*> buffers = model.state_buffers();
  for (const DenseTensorDelta& d : delta.state_buffers) {
    util::check(d.index < buffers.size(), "delta buffer index out of range");
    util::check(d.values.size() == buffers[d.index]->numel(),
                "delta buffer size mismatch");
    std::copy(d.values.begin(), d.values.end(), buffers[d.index]->raw());
  }

  const std::uint64_t got = model_state_hash(model, state);
  util::check(got == delta.result_hash,
              "delta application did not reproduce the expected result "
              "state (corrupt delta file?)");
}

namespace {

/// Rebuilt weight node: the CSR matrix and bias exactly as a full
/// recompile (lower + FoldBatchNorm) would produce them.
struct RebuiltWeights {
  std::shared_ptr<sparse::CsrMatrix> csr;
  tensor::Tensor bias;
  bool has_bias = false;
};

}  // namespace

PlanPatch apply_delta_to_plan(const Plan& base_plan,
                              const CheckpointDelta& delta,
                              nn::Sequential& model,
                              const sparse::SparseModel* state,
                              float dense_eps) {
  PlanPatch out;
  out.plan = base_plan;

  LoweredModules mods = collect_lowered_modules(model);
  const std::vector<nn::Parameter*> params = model.parameters();
  const std::vector<tensor::Tensor*> buffers = model.state_buffers();
  std::unordered_map<const nn::Parameter*, std::size_t> param_index;
  for (std::size_t i = 0; i < params.size(); ++i) param_index[params[i]] = i;
  std::unordered_map<const tensor::Tensor*, std::size_t> buffer_index;
  for (std::size_t i = 0; i < buffers.size(); ++i) buffer_index[buffers[i]] = i;
  const auto masked = masked_layers(state);

  std::unordered_set<std::size_t> touched_layers;
  for (const SparseLayerDelta& s : delta.sparse_layers) {
    touched_layers.insert(s.layer);
  }
  std::unordered_set<std::size_t> touched_params;
  for (const DenseTensorDelta& d : delta.dense_params) {
    touched_params.insert(d.index);
  }
  std::unordered_set<std::size_t> touched_buffers;
  for (const DenseTensorDelta& d : delta.state_buffers) {
    touched_buffers.insert(d.index);
  }

  // Attribute every touched tensor to a lowered module; anything left
  // over has no plan node to patch and forces a full recompile.
  std::unordered_set<std::size_t> accounted_params, accounted_buffers;
  std::unordered_set<std::size_t> covered_layers;

  struct SparseSite {
    const nn::Parameter* weight = nullptr;
    bool touched = false;
  };
  std::vector<SparseSite> sites(mods.sparse.size());
  for (std::size_t s = 0; s < mods.sparse.size(); ++s) {
    nn::Parameter* weight = nullptr;
    nn::Parameter* bias = nullptr;
    if (auto* linear = dynamic_cast<nn::Linear*>(mods.sparse[s])) {
      weight = &linear->weight();
      if (linear->has_bias()) bias = &linear->bias();
    } else if (auto* conv = dynamic_cast<nn::Conv2d*>(mods.sparse[s])) {
      weight = &conv->weight();
      if (conv->has_bias()) bias = &conv->bias();
    }
    util::check(weight != nullptr, "collect_lowered_modules inconsistency");
    sites[s].weight = weight;
    bool touched = false;
    const std::size_t wi = param_index.at(weight);
    accounted_params.insert(wi);
    if (touched_params.count(wi) > 0) touched = true;
    const auto mit = masked.find(weight);
    if (mit != masked.end()) {
      covered_layers.insert(mit->second);
      if (touched_layers.count(mit->second) > 0) touched = true;
    }
    if (bias != nullptr) {
      const std::size_t bi = param_index.at(bias);
      accounted_params.insert(bi);
      if (touched_params.count(bi) > 0) touched = true;
    }
    sites[s].touched = touched;
  }

  std::vector<char> bn_touched(mods.bns.size(), 0);
  for (std::size_t b = 0; b < mods.bns.size(); ++b) {
    const nn::BatchNorm& bn = *mods.bns[b];
    bool touched = false;
    for (const nn::Parameter* p : {&bn.gamma(), &bn.beta()}) {
      const std::size_t pi = param_index.at(p);
      accounted_params.insert(pi);
      if (touched_params.count(pi) > 0) touched = true;
    }
    for (const tensor::Tensor* buf : {&bn.running_mean(), &bn.running_var()}) {
      const auto it = buffer_index.find(buf);
      if (it != buffer_index.end()) {
        accounted_buffers.insert(it->second);
        if (touched_buffers.count(it->second) > 0) touched = true;
      }
    }
    bn_touched[b] = touched ? 1 : 0;
  }

  for (const std::size_t p : touched_params) {
    if (accounted_params.count(p) == 0) out.needs_full_recompile = true;
  }
  for (const std::size_t b : touched_buffers) {
    if (accounted_buffers.count(b) == 0) out.needs_full_recompile = true;
  }
  for (const std::size_t l : touched_layers) {
    if (covered_layers.count(l) == 0) out.needs_full_recompile = true;
  }
  if (out.needs_full_recompile) return out;

  // Rebuilds ordinal `s`'s weights exactly as lower() (+ FoldBatchNorm
  // when `folded`) would: fresh from_masked/from_dense, then the fold
  // arithmetic on the fresh copy.
  auto rebuild = [&](std::size_t s, bool folded,
                     std::size_t bn_ordinal) -> RebuiltWeights {
    RebuiltWeights r;
    const nn::Parameter& weight = *sites[s].weight;
    const auto mit = masked.find(&weight);
    r.csr = std::make_shared<sparse::CsrMatrix>(
        mit != masked.end()
            ? sparse::CsrMatrix::from_masked(state->layer(mit->second))
            : sparse::CsrMatrix::from_dense(weight.value, dense_eps));
    if (auto* linear = dynamic_cast<nn::Linear*>(mods.sparse[s])) {
      r.has_bias = linear->has_bias();
      if (r.has_bias) r.bias = linear->bias().value;
    } else if (auto* conv = dynamic_cast<nn::Conv2d*>(mods.sparse[s])) {
      r.has_bias = conv->has_bias();
      if (r.has_bias) r.bias = conv->bias().value;
    }
    if (folded) {
      util::check(bn_ordinal < mods.bns.size(),
                  "folded node lost its batch-norm provenance");
      std::vector<float> scale, shift;
      bn_scale_shift(*mods.bns[bn_ordinal], scale, shift);
      util::check(r.csr->rows() == scale.size(),
                  "delta re-fold: BN channel count mismatch");
      r.csr->scale_rows(scale);
      tensor::Tensor folded_bias({r.csr->rows()});
      for (std::size_t row = 0; row < r.csr->rows(); ++row) {
        folded_bias[row] =
            (r.has_bias ? r.bias[row] * scale[row] : 0.0f) + shift[row];
      }
      r.bias = std::move(folded_bias);
      r.has_bias = true;
    }
    return r;
  };

  Plan& plan = out.plan;
  std::size_t i = 0;
  while (i < plan.ops.size()) {
    PlanOp& op = plan.ops[i];
    if (op.kind == PlanOpKind::kSpmm || op.kind == PlanOpKind::kConv) {
      ++out.total_weight_nodes;
      const std::size_t s = op.sparse_ordinal;
      if (s == PlanOp::kNoOrdinal || s >= sites.size()) {
        out.needs_full_recompile = true;
        break;
      }
      const bool refold =
          op.folded_bn &&
          (op.bn_ordinal >= mods.bns.size() || bn_touched[op.bn_ordinal] != 0);
      if (sites[s].touched || refold) {
        RebuiltWeights r = rebuild(s, op.folded_bn, op.bn_ordinal);
        if (op.qcsr != nullptr) {
          // A quantized node stays quantized across a patch: re-quantize
          // the rebuilt fp32 weights, exactly what a full recompile with
          // the same pipeline (… , quantize:int8) would produce.
          op.qcsr = std::make_shared<sparse::QCsrMatrix>(
              sparse::QCsrMatrix::quantize(*r.csr));
        } else {
          op.csr = std::move(r.csr);
        }
        op.bias = std::move(r.bias);
        op.has_bias = r.has_bias;
        ++out.patched_weight_nodes;
      }
      ++i;
      continue;
    }
    if (op.kind == PlanOpKind::kRowSlice) {
      // One PartitionRows group = one weight unit: consecutive slices
      // sharing a partition_group (and their common source matrix).
      std::size_t j = i;
      while (j < plan.ops.size() &&
             plan.ops[j].kind == PlanOpKind::kRowSlice &&
             plan.ops[j].partition_group == op.partition_group) {
        ++j;
      }
      const std::size_t count = j - i;
      ++out.total_weight_nodes;
      const std::size_t s = op.sparse_ordinal;
      if (s == PlanOp::kNoOrdinal || s >= sites.size()) {
        out.needs_full_recompile = true;
        break;
      }
      const bool refold =
          op.folded_bn &&
          (op.bn_ordinal >= mods.bns.size() || bn_touched[op.bn_ordinal] != 0);
      if (sites[s].touched || refold) {
        RebuiltWeights r = rebuild(s, op.folded_bn, op.bn_ordinal);
        // Re-split against the rebuilt matrix, exactly as PartitionRows
        // would on a full recompile with the same `ways` (the quantized
        // split is identical — quantization preserves the sparsity
        // pattern, and the splits balance stored-nonzero counts).
        const std::vector<std::size_t> bounds =
            r.csr->balanced_row_splits(count);
        // A quantized group re-quantizes the rebuilt parent ONCE and
        // every slice shares it, mirroring QuantizeWeights' memoization.
        std::shared_ptr<sparse::QCsrMatrix> q;
        if (op.qcsr != nullptr) {
          q = std::make_shared<sparse::QCsrMatrix>(
              sparse::QCsrMatrix::quantize(*r.csr));
        }
        for (std::size_t k = 0; k < count; ++k) {
          PlanOp& slice = plan.ops[i + k];
          if (q != nullptr) {
            slice.qcsr = q;  // all slices view the one rebuilt matrix
          } else {
            slice.csr = r.csr;
          }
          slice.row_begin = bounds[k];
          slice.row_end = bounds[k + 1];
          slice.has_bias = r.has_bias;
          if (r.has_bias) {
            tensor::Tensor b({bounds[k + 1] - bounds[k]});
            for (std::size_t row = bounds[k]; row < bounds[k + 1]; ++row) {
              b[row - bounds[k]] = r.bias[row];
            }
            slice.bias = std::move(b);
          }
        }
        ++out.patched_weight_nodes;
      }
      i = j;
      continue;
    }
    if (op.kind == PlanOpKind::kScaleShift &&
        op.bn_ordinal != PlanOp::kNoOrdinal &&
        op.bn_ordinal < mods.bns.size() && bn_touched[op.bn_ordinal] != 0) {
      bn_scale_shift(*mods.bns[op.bn_ordinal], op.scale, op.shift);
      ++out.patched_scale_shifts;
    }
    ++i;
  }

  if (out.needs_full_recompile) {
    out.plan = base_plan;  // hand back the pristine base
    out.patched_weight_nodes = 0;
    out.patched_scale_shifts = 0;
    return out;
  }

  if (out.patched_weight_nodes > 0) {
    // Refresh the model-wide nnz counter: distinct matrices only (a
    // partition group shares one), fp32 and quantized alike.
    std::unordered_set<const void*> seen;
    std::size_t nnz = 0;
    for (const PlanOp& op : plan.ops) {
      if (op.csr != nullptr && seen.insert(op.csr.get()).second) {
        nnz += op.csr->nnz();
      }
      if (op.qcsr != nullptr && seen.insert(op.qcsr.get()).second) {
        nnz += op.qcsr->nnz();
      }
    }
    plan.total_nnz = nnz;
  }
  return out;
}

}  // namespace dstee::serve
