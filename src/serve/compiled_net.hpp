// CompiledNet: lowers a trained model to an immutable eval-only op graph.
//
// Training modules (nn::Module) cache activations, mutate running stats and
// are therefore neither const nor thread-safe. Deployment needs the
// opposite: a fixed topology executed concurrently by many worker threads.
// compile() walks a module tree once and emits one graph node per layer:
//
//   Linear (+ mask)  → CSR SpMM (CsrMatrix::spmm) + dense bias
//   Conv2d (+ mask)  → per-image im2col + CSR SpMM over the patch matrix
//                      (CsrMatrix::spmm_cols) with the masked
//                      [Cout, Cin·K·K] weight matrix
//   BatchNorm (eval) → per-channel scale/shift; folded INTO the preceding
//                      CSR linear/conv op when one directly precedes it
//   Dropout          → elided (inverted dropout is identity at eval)
//   ResidualBlock    → main/shortcut chains joined by a fused add+ReLU
//                      node (the graph's only fan-out/fan-in)
//   ReLU/LeakyReLU/Sigmoid/Tanh, Flatten, Max/Avg/GlobalAvgPool
//                    → stateless eval ops over the shared src/kernels/
//
// The result is a small DAG rather than a straight-line op list: each node
// names its producer(s), residual adds have two, and execution releases an
// intermediate as soon as its last consumer has run.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/sequential.hpp"
#include "runtime/pool.hpp"
#include "sparse/csr.hpp"
#include "sparse/sparse_model.hpp"
#include "tensor/tensor.hpp"

namespace dstee::serve {

/// One compiled inference operation. run()/run2() are const and touch no
/// shared mutable state, so a single op instance may execute on many
/// threads. Ops are unary unless arity() says otherwise.
class EvalOp {
 public:
  virtual ~EvalOp() = default;

  /// Deep copy — the basis of CompiledNet::clone(), which replica shards
  /// use to own their weights (a NUMA prerequisite: each group touches
  /// only its own CSR arrays).
  virtual std::unique_ptr<EvalOp> clone() const = 0;

  /// Number of producer tensors this op consumes (1 or 2).
  virtual std::size_t arity() const { return 1; }

  /// Unary execution; default fails (binary ops don't implement it).
  virtual tensor::Tensor run(const tensor::Tensor& x) const;

  /// Binary execution; default fails (unary ops don't implement it).
  virtual tensor::Tensor run2(const tensor::Tensor& a,
                              const tensor::Tensor& b) const;

  /// Short description for CompiledNet::summary(), e.g. "spmm(128x32, ...)".
  virtual std::string describe() const = 0;

  /// Output batch shape for input batch shape `in` (binary ops receive
  /// their first producer's shape; both sides must agree anyway).
  virtual tensor::Shape out_shape(const tensor::Shape& in) const {
    return in;
  }

  /// FLOPs actually executed for a batch of shape `in` (CSR kernels count
  /// stored nonzeros; stateless ops count 0, matching the analytic
  /// FlopsModel convention).
  virtual double flops(const tensor::Shape& in) const {
    (void)in;
    return 0.0;
  }

  /// FLOPs a dense execution of the same layer would need.
  virtual double dense_flops(const tensor::Shape& in) const {
    return flops(in);
  }
};

/// Knobs for compile().
struct CompileOptions {
  /// |w| threshold when no mask is available: entries with |w| <= eps are
  /// not stored. 0 keeps every nonzero, which exactly reproduces a masked
  /// model saved by dstee_run (masked weights are stored as 0).
  float dense_eps = 0.0f;
  /// Intra-op chunk count (0 means pool-wide): row-parallel inside each
  /// Linear SpMM (see CsrMatrix::spmm), image-parallel across the batch
  /// inside each conv op (a batch-1 conv always runs inline), and
  /// plane-/element-parallel inside the pooling and activation ops. Work
  /// executes on the persistent runtime pool — no per-call thread spawns
  /// — so >1 pays off even at small batches. Keep at 1 when an
  /// InferenceServer with many worker threads already saturates the
  /// machine with request-level parallelism.
  std::size_t intra_op_threads = 1;
  /// Pool executing the intra-op chunks; nullptr = the process-wide
  /// runtime::default_pool(). Tests inject their own Pool here.
  runtime::Pool* intra_op_pool = nullptr;
};

/// An immutable, thread-safe inference program compiled from a model.
class CompiledNet {
 public:
  /// Producer id meaning "the network input" in a node's input list.
  static constexpr std::size_t kInputId = static_cast<std::size_t>(-1);

  /// One graph node: an op plus the ids of the nodes feeding it.
  struct OpNode {
    std::unique_ptr<EvalOp> op;
    std::vector<std::size_t> inputs;
  };

  /// Lowers `model` (recursing through nested Sequentials and residual
  /// blocks). When `state` is non-null, each Linear/Conv2d weight that has
  /// a mask in `state` is converted with from_masked (faithful topology
  /// deployment); other weights fall back to from_dense(options.dense_eps).
  static CompiledNet compile(nn::Sequential& model,
                             const sparse::SparseModel* state = nullptr,
                             const CompileOptions& options = {});

  /// load_checkpoint into `model` (and `state` when non-null), then
  /// compile. The one-call path from a training artifact to a servable
  /// engine.
  static CompiledNet from_checkpoint(const std::string& path,
                                     nn::Sequential& model,
                                     sparse::SparseModel* state = nullptr,
                                     const CompileOptions& options = {});

  /// Executes the graph in topological (emission) order. `x` is
  /// [batch, ...] matching the model's training-time input layout.
  /// Thread-safe: may be called concurrently.
  tensor::Tensor forward(const tensor::Tensor& x) const;

  /// Deep copy: every op (CSR arrays, biases, folded constants) is
  /// duplicated, so the replica shares no memory with the source.
  /// InferenceServer builds one replica per shard from this.
  CompiledNet clone() const;

  std::size_t num_ops() const { return nodes_.size(); }
  std::size_t num_sparse_ops() const { return sparse_ops_; }
  std::size_t num_elided() const { return elided_; }
  /// Residual add+ReLU joins in the graph (0 for chain models).
  std::size_t num_residual_joins() const { return residual_joins_; }

  /// Stored nonzeros / total weight slots across all CSR ops (Linear AND
  /// Conv2d — compression reporting covers the whole model).
  std::size_t total_nnz() const { return total_nnz_; }
  std::size_t total_weights() const { return total_weights_; }
  double density() const;

  /// FLOPs per single sample of the given shape (no batch axis), counting
  /// exactly what the CSR kernels execute / what dense eval would execute.
  double flops_per_sample(const tensor::Shape& sample_shape) const;
  double dense_flops_per_sample(const tensor::Shape& sample_shape) const;

  /// Input feature count when the first op determines it (CSR linear
  /// first), else 0 (conv- or Flatten-first nets accept any shape the
  /// first op validates at run time).
  std::size_t input_features() const { return input_features_; }

  /// One line per node, for logs and the serve CLI.
  std::string summary() const;

 private:
  CompiledNet() = default;

  double accumulate_flops(const tensor::Shape& sample_shape,
                          bool dense) const;

  std::vector<OpNode> nodes_;
  std::vector<std::size_t> use_counts_;  ///< consumers per node (output: 0)
  std::size_t sparse_ops_ = 0;
  std::size_t elided_ = 0;
  std::size_t residual_joins_ = 0;
  std::size_t total_nnz_ = 0;
  std::size_t total_weights_ = 0;
  std::size_t input_features_ = 0;
};

}  // namespace dstee::serve
