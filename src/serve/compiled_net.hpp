// CompiledNet: lowers a trained model to an immutable eval-only op list.
//
// Training modules (nn::Module) cache activations, mutate running stats and
// are therefore neither const nor thread-safe. Deployment needs the
// opposite: a fixed topology executed concurrently by many worker threads.
// compile() walks a Sequential tree once and emits one EvalOp per layer:
//
//   Linear (+ mask)  → CSR SpMM (CsrMatrix::spmm) + dense bias
//   BatchNorm (eval) → per-channel scale/shift; folded INTO the preceding
//                      CSR op when one directly precedes it
//   Dropout          → elided (inverted dropout is identity at eval)
//   ReLU/LeakyReLU/Sigmoid/Tanh, Flatten, Max/Avg/GlobalAvgPool
//                    → stateless eval ops
//
// Conv2d is intentionally unsupported (CSR-over-im2col deployment is a
// ROADMAP follow-up); compile() fails loudly rather than silently falling
// back to dense.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/sequential.hpp"
#include "sparse/csr.hpp"
#include "sparse/sparse_model.hpp"
#include "tensor/tensor.hpp"

namespace dstee::serve {

/// One compiled inference operation. run() is const and touches no shared
/// mutable state, so a single op instance may execute on many threads.
class EvalOp {
 public:
  virtual ~EvalOp() = default;
  virtual tensor::Tensor run(const tensor::Tensor& x) const = 0;
  /// Short description for CompiledNet::summary(), e.g. "spmm(128x32, ...)".
  virtual std::string describe() const = 0;
};

/// Knobs for compile().
struct CompileOptions {
  /// |w| threshold when no mask is available: entries with |w| <= eps are
  /// not stored. 0 keeps every nonzero, which exactly reproduces a masked
  /// model saved by dstee_run (masked weights are stored as 0).
  float dense_eps = 0.0f;
  /// Row-parallel threads inside each SpMM (see CsrMatrix::spmm; 0 means
  /// hardware concurrency). Keep at 1 when an InferenceServer provides
  /// request-level parallelism. Workers are spawned per spmm call, so >1
  /// only pays off for large layers / big batches where the kernel
  /// dominates thread-start cost (a persistent intra-op pool is a ROADMAP
  /// follow-up).
  std::size_t intra_op_threads = 1;
};

/// An immutable, thread-safe inference program compiled from a model.
class CompiledNet {
 public:
  /// Lowers `model` (recursing through nested Sequentials). When `state`
  /// is non-null, each Linear weight that has a mask in `state` is
  /// converted with from_masked (faithful topology deployment); other
  /// weights fall back to from_dense(options.dense_eps).
  static CompiledNet compile(nn::Sequential& model,
                             const sparse::SparseModel* state = nullptr,
                             const CompileOptions& options = {});

  /// load_checkpoint into `model` (and `state` when non-null), then
  /// compile. The one-call path from a training artifact to a servable
  /// engine.
  static CompiledNet from_checkpoint(const std::string& path,
                                     nn::Sequential& model,
                                     sparse::SparseModel* state = nullptr,
                                     const CompileOptions& options = {});

  /// Runs the op list in order. `x` is [batch, ...] matching the model's
  /// training-time input layout. Thread-safe: may be called concurrently.
  tensor::Tensor forward(const tensor::Tensor& x) const;

  std::size_t num_ops() const { return ops_.size(); }
  std::size_t num_sparse_ops() const { return sparse_ops_; }
  std::size_t num_elided() const { return elided_; }

  /// Stored nonzeros / total weight slots across all CSR ops.
  std::size_t total_nnz() const { return total_nnz_; }
  std::size_t total_weights() const { return total_weights_; }
  double density() const;

  /// Input feature count when the first op determines it (CSR first), else
  /// 0 (e.g. Flatten-first nets accept any shape that flattens correctly).
  std::size_t input_features() const { return input_features_; }

  /// One line per op, for logs and the serve CLI.
  std::string summary() const;

 private:
  CompiledNet() = default;

  std::vector<std::unique_ptr<EvalOp>> ops_;
  std::size_t sparse_ops_ = 0;
  std::size_t elided_ = 0;
  std::size_t total_nnz_ = 0;
  std::size_t total_weights_ = 0;
  std::size_t input_features_ = 0;
};

}  // namespace dstee::serve
