// CompiledNet: the thin serving facade over the staged serve compiler.
//
// Training modules (nn::Module) cache activations, mutate running stats
// and are therefore neither const nor thread-safe. Deployment needs the
// opposite: a fixed topology executed concurrently by many worker
// threads. Compilation is three explicit stages (see plan.hpp):
//
//   lower()    nn::Sequential + SparseModel → Plan IR (one node per
//              module; Linear → CSR SpMM, Conv2d → CSR over im2col,
//              eval-BN → scale/shift, residual blocks → add+ReLU joins)
//   passes     serve::Compiler's pipeline — ElideDropout, FoldBatchNorm,
//              FreeAfterLastUse by default; PartitionRows on request
//   bind()     Executor fixes weights + the runtime::IntraOp policy
//
// CompiledNet wraps the bound Executor with model-level bookkeeping
// (nnz/FLOPs/density, input validation data) so InferenceServer,
// dstee_serve and the checkpoint path keep their one-call workflow:
// CompiledNet::compile() runs the default Compiler pipeline and is
// bit-identical to the pre-redesign monolithic compiler.
#pragma once

#include <cstddef>
#include <string>
#include <unordered_set>

#include "nn/sequential.hpp"
#include "runtime/pool.hpp"
#include "serve/executor.hpp"
#include "serve/plan.hpp"
#include "sparse/sparse_model.hpp"
#include "tensor/tensor.hpp"

namespace dstee::serve {

/// Knobs for compile()/Compiler.
struct CompileOptions {
  /// |w| threshold when no mask is available: entries with |w| <= eps are
  /// not stored. 0 keeps every nonzero, which exactly reproduces a masked
  /// model saved by dstee_run (masked weights are stored as 0).
  float dense_eps = 0.0f;
  /// Intra-op chunk count (0 means pool-wide): row-parallel inside each
  /// Linear SpMM (see CsrMatrix::spmm), image-parallel across the batch
  /// inside each conv op (a batch-1 conv always runs inline), and
  /// plane-/element-parallel inside the pooling and activation ops. Work
  /// executes on the persistent runtime pool — no per-call thread spawns
  /// — so >1 pays off even at small batches. Keep at 1 when an
  /// InferenceServer with many worker threads already saturates the
  /// machine with request-level parallelism. PartitionRows slice groups
  /// fan out on the pool regardless of this count.
  std::size_t intra_op_threads = 1;
  /// Pool executing the intra-op chunks and partition-group fan-outs;
  /// nullptr = the process-wide runtime::default_pool(). Tests inject
  /// their own Pool here.
  runtime::Pool* intra_op_pool = nullptr;
  /// Sample shape (no batch axis) handed to shape-aware passes built
  /// from a pipeline spec — partition_rows uses it for per-node FLOPs
  /// shares; rank 0 falls back to nnz shares.
  tensor::Shape sample_shape{};
  /// Kernel backend name for every bound op ("scalar", "avx2"); empty
  /// defers each kernel call to kernels::simd::active_backend() (CPUID
  /// pick, overridable via DSTEE_KERNEL_BACKEND). Unknown or unsupported
  /// names fail loudly at bind time.
  std::string kernel_backend;
  /// Attach an obs::OpProfile to the bound executor: every forward times
  /// each node and accumulates wall time per op (shared across replica
  /// clones, so a sharded server aggregates into one profile). Read it
  /// back via CompiledNet::op_profile(). Off by default — the untimed
  /// forward stays the fast path.
  bool profile_ops = false;
};

/// An immutable, thread-safe inference program compiled from a model.
class CompiledNet {
 public:
  /// Producer id meaning "the network input" in a node's input list.
  static constexpr std::size_t kInputId = Plan::kInputId;

  /// Lowers `model` and runs the DEFAULT pass pipeline (use
  /// serve::Compiler directly to customize passes — e.g. PartitionRows).
  /// When `state` is non-null, each Linear/Conv2d weight that has a mask
  /// in `state` is converted with from_masked (faithful topology
  /// deployment); other weights fall back to from_dense(options.dense_eps).
  static CompiledNet compile(nn::Sequential& model,
                             const sparse::SparseModel* state = nullptr,
                             const CompileOptions& options = {});

  /// load_checkpoint into `model` (and `state` when non-null), then
  /// compile. The one-call path from a training artifact to a servable
  /// engine.
  static CompiledNet from_checkpoint(const std::string& path,
                                     nn::Sequential& model,
                                     sparse::SparseModel* state = nullptr,
                                     const CompileOptions& options = {});

  /// Binds an already-finished plan (weights move out of it) under the
  /// given options. serve::Compiler::bind() is the usual entry point.
  static CompiledNet bind(Plan&& plan, const CompileOptions& options);

  /// Executes the graph in topological (emission) order. `x` is
  /// [batch, ...] matching the model's training-time input layout.
  /// Thread-safe: may be called concurrently.
  tensor::Tensor forward(const tensor::Tensor& x) const {
    return exec_.forward(x);
  }

  /// Deep copy: every op (CSR arrays, biases, folded constants) is
  /// duplicated — a matrix shared by a partition group is copied once —
  /// so the replica shares no memory with the source. InferenceServer
  /// builds one replica per shard from this.
  CompiledNet clone() const;

  /// clone() that keeps the matrices in `shared` by reference instead of
  /// copying. The delta hot-swap path builds each shard's new replica
  /// with the delta-touched matrices fresh and everything else shared
  /// with the version it replaces — a deliberate, bounded relaxation of
  /// full replica isolation that makes patch swaps O(touched weights).
  CompiledNet clone_shared(
      const std::unordered_set<const void*>& shared) const;

  const Executor& executor() const { return exec_; }

  /// Per-op wall-time profile (null unless compiled with
  /// CompileOptions::profile_ops). Shared with every clone of this net.
  const obs::OpProfile* op_profile() const { return exec_.op_profile(); }

  std::size_t num_ops() const { return exec_.num_ops(); }
  std::size_t num_sparse_ops() const { return sparse_ops_; }
  std::size_t num_elided() const { return elided_; }
  /// Residual add+ReLU joins in the graph (0 for chain models).
  std::size_t num_residual_joins() const { return residual_joins_; }
  /// CSR nodes PartitionRows split into row-range slice groups.
  std::size_t num_partitioned_ops() const { return partitioned_ops_; }
  /// CSR nodes FuseEpilogue annotated with a fused activation/residual.
  std::size_t num_fused_ops() const { return fused_ops_; }
  /// CSR nodes QuantizeWeights rewrote to int8 weights.
  std::size_t num_quantized_ops() const { return quantized_ops_; }
  /// Weight bytes a replica streams (distinct matrices; see
  /// Plan::total_weight_bytes) — the memory lever int8 quantization moves.
  std::size_t total_weight_bytes() const { return total_weight_bytes_; }
  /// Slice groups the executor fans out in parallel.
  std::size_t num_parallel_groups() const {
    return exec_.num_parallel_groups();
  }

  /// Stored nonzeros / total weight slots across all CSR ops (Linear AND
  /// Conv2d — compression reporting covers the whole model).
  std::size_t total_nnz() const { return total_nnz_; }
  std::size_t total_weights() const { return total_weights_; }
  double density() const;

  /// FLOPs per single sample of the given shape (no batch axis), counting
  /// exactly what the CSR kernels execute / what dense eval would execute.
  double flops_per_sample(const tensor::Shape& sample_shape) const;
  double dense_flops_per_sample(const tensor::Shape& sample_shape) const;

  /// Input feature count when the first op determines it (CSR linear
  /// first), else 0 (conv- or Flatten-first nets accept any shape the
  /// first op validates at run time).
  std::size_t input_features() const { return exec_.input_features(); }

  /// One line per node, for logs and the serve CLI.
  std::string summary() const;

 private:
  CompiledNet() = default;

  Executor exec_;
  std::size_t sparse_ops_ = 0;
  std::size_t elided_ = 0;
  std::size_t residual_joins_ = 0;
  std::size_t partitioned_ops_ = 0;
  std::size_t fused_ops_ = 0;
  std::size_t quantized_ops_ = 0;
  std::size_t total_nnz_ = 0;
  std::size_t total_weights_ = 0;
  std::size_t total_weight_bytes_ = 0;
};

}  // namespace dstee::serve
