// Executor: binds a finished Plan to runnable EvalOps.
//
// The third stage of the serve compiler (see plan.hpp for the overview):
// Executor::bind() consumes a Plan — weights move out of the plan nodes
// into ops — and fixes the execution policy (runtime::IntraOp). The
// result is the immutable, thread-safe program CompiledNet serves:
// forward() walks the ops in topological order, releases intermediates
// according to the plan's FreeAfterLastUse annotation, and runs every
// PartitionRows slice group as one fan-out on the runtime pool so a
// single sample's heaviest layers execute on several workers at once.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "obs/profile.hpp"
#include "runtime/pool.hpp"
#include "serve/plan.hpp"
#include "sparse/csr.hpp"
#include "sparse/qcsr.hpp"
#include "tensor/tensor.hpp"

namespace dstee::kernels::simd {
struct KernelBackend;
}  // namespace dstee::kernels::simd

namespace dstee::serve {

/// Weight-duplication memo for Executor::clone(): a CSR matrix shared by
/// several ops (a PartitionRows group viewing one parent) is deep-copied
/// exactly once per replica, so clones share no memory with the source
/// (the NUMA prerequisite) but keep intra-replica sharing intact.
///
/// A context may carry a SHARE SET: matrices in it are handed through
/// untouched instead of copied. Keys are type-erased (const void*) so one
/// set can name fp32 and int8-quantized matrices alike. The delta
/// hot-swap path uses this to build a new version's replica that shares
/// every weight the delta did not touch with the outgoing version — a
/// deliberate, bounded exception to full replica isolation (see
/// CompiledNet::clone_shared).
///
/// Concurrency: NOT thread-safe, and deliberately unannotated — a
/// CloneContext lives on one thread's stack for the duration of a single
/// clone() walk and is never shared. Cloning different replicas
/// concurrently is safe because each walk owns its own context; the
/// source ops are only read.
struct CloneContext {
  CloneContext() = default;
  explicit CloneContext(const std::unordered_set<const void*>* share)
      : share_(share) {}

  std::shared_ptr<const sparse::CsrMatrix> dup(
      const std::shared_ptr<const sparse::CsrMatrix>& csr);
  std::shared_ptr<const sparse::QCsrMatrix> dup(
      const std::shared_ptr<const sparse::QCsrMatrix>& qcsr);

 private:
  std::unordered_map<const void*, std::shared_ptr<const sparse::CsrMatrix>>
      copies_;
  std::unordered_map<const void*, std::shared_ptr<const sparse::QCsrMatrix>>
      qcopies_;
  const std::unordered_set<const void*>* share_ = nullptr;
};

/// One compiled inference operation. run()/run2()/run_many() are const
/// and touch no shared mutable state, so a single op instance may execute
/// on many threads. Ops are unary unless arity() says otherwise.
class EvalOp {
 public:
  virtual ~EvalOp() = default;

  /// Deep copy through `ctx` — the basis of Executor::clone(), which
  /// replica shards use to own their weights.
  virtual std::unique_ptr<EvalOp> clone(CloneContext& ctx) const = 0;

  /// Number of producer tensors this op consumes (1, 2, or more for the
  /// concat join of a partition group).
  virtual std::size_t arity() const { return 1; }

  /// Unary execution; default fails (non-unary ops don't implement it).
  virtual tensor::Tensor run(const tensor::Tensor& x) const;

  /// Binary execution; default fails (non-binary ops don't implement it).
  virtual tensor::Tensor run2(const tensor::Tensor& a,
                              const tensor::Tensor& b) const;

  /// N-ary execution; default fails (only concat joins implement it).
  virtual tensor::Tensor run_many(
      const std::vector<const tensor::Tensor*>& xs) const;

  /// Short description for summaries, e.g. "spmm(128x32, ...)".
  virtual std::string describe() const = 0;

  /// Output batch shape for input batch shape `in` (non-unary ops receive
  /// their first producer's shape).
  virtual tensor::Shape out_shape(const tensor::Shape& in) const {
    return in;
  }

  /// FLOPs actually executed for a batch of shape `in` (CSR kernels count
  /// stored nonzeros; stateless ops count 0, matching the analytic
  /// FlopsModel convention).
  virtual double flops(const tensor::Shape& in) const {
    (void)in;
    return 0.0;
  }

  /// FLOPs a dense execution of the same layer would need.
  virtual double dense_flops(const tensor::Shape& in) const {
    return flops(in);
  }
};

/// An immutable, thread-safe bound program: the op graph plus the
/// execution policy. CompiledNet wraps one of these with model-level
/// bookkeeping; tests may also drive an Executor directly.
///
/// Concurrency: every member is written exactly once, inside bind() (or
/// clone(), which builds a fresh instance) BEFORE the executor is
/// published to serving threads; forward()/run_node() only read them.
/// That lock-free-by-construction discipline is why no member carries a
/// DSTEE_GUARDED_BY: there is no mutex because there is no mutation. Any
/// future mutable state (op-level caches, hot-swapped weights) must add
/// a util::Mutex + annotations, or an atomic with a comment, so the
/// clang -Werror=thread-safety CI gate keeps proving the invariant.
class Executor {
 public:
  /// Producer id meaning "the network input" in a node's input list.
  static constexpr std::size_t kInputId = Plan::kInputId;

  /// Empty executor — a placeholder until bind() assigns a real one
  /// (CompiledNet's member lives through this state during construction).
  Executor() = default;

  /// One graph node: an op plus the ids of the nodes feeding it.
  struct OpNode {
    std::unique_ptr<EvalOp> op;
    std::vector<std::size_t> inputs;
  };

  /// Binds `plan` (consumed: weights move into the ops) under the given
  /// intra-op policy. Partition slice groups always fan out on the
  /// policy's pool; the slices themselves run their kernels inline.
  /// `backend` pins every op's kernel backend; nullptr defers each kernel
  /// call to kernels::simd::active_backend() (the process-wide dispatch).
  /// `profile`, when non-null, turns on per-op wall-time accumulation:
  /// every forward times each node and adds into the shared profile
  /// (replica clones keep sharing it, so a sharded server aggregates into
  /// one place). Null keeps forward() on the untimed fast path.
  static Executor bind(Plan&& plan, const runtime::IntraOp& intra,
                       const kernels::simd::KernelBackend* backend = nullptr,
                       std::shared_ptr<obs::OpProfile> profile = nullptr);

  /// Executes the graph in topological (emission) order. `x` is
  /// [batch, ...]; thread-safe, may be called concurrently.
  tensor::Tensor forward(const tensor::Tensor& x) const;

  /// Deep copy: every op (CSR arrays, biases, folded constants) is
  /// duplicated (shared partition weights once per replica), so the
  /// replica shares no memory with the source.
  Executor clone() const;

  /// clone() that hands matrices in `shared` (fp32 or quantized, keyed by
  /// type-erased pointer) through by reference instead of copying — the
  /// delta hot-swap replica path.
  Executor clone_shared(const std::unordered_set<const void*>& shared) const;

  std::size_t num_ops() const { return nodes_.size(); }
  const OpNode& node(std::size_t i) const;

  /// PartitionRows slice groups the executor fans out in parallel.
  std::size_t num_parallel_groups() const { return groups_.size(); }

  /// Per-op wall-time profile (null unless bind() received one). Shared
  /// across replica clones, so it aggregates every shard's forwards.
  const obs::OpProfile* op_profile() const { return profile_.get(); }

  /// Static name of node i's plan-op kind ("spmm", "relu", ...) — the
  /// label its trace spans and profile rows carry.
  const char* op_name(std::size_t i) const { return op_names_[i]; }

  /// Feature count demanded by a leading input-consuming CSR linear op
  /// (0 when the first op accepts any shape it can validate at run time).
  std::size_t input_features() const { return input_features_; }

  /// Sums per-node (dense_)flops for a batch-1 sample of `sample_shape`.
  double accumulate_flops(const tensor::Shape& sample_shape,
                          bool dense) const;

  /// One "  [i] describe()" line per node, annotated with non-straight
  /// producers — the body of CompiledNet::summary().
  std::string describe_ops() const;

 private:
  /// A run of consecutive sibling row-slice nodes executed as one pool
  /// fan-out.
  struct Group {
    std::size_t first = 0;
    std::size_t count = 0;
  };

  void run_node(std::size_t i, std::vector<tensor::Tensor>& values,
                const tensor::Tensor& x) const;

  /// Shared body of clone()/clone_shared().
  Executor clone_with(CloneContext& ctx) const;

  std::vector<OpNode> nodes_;
  /// release_after_[i]: values to free once node i (or its group) ran.
  /// Empty when FreeAfterLastUse did not run — keep everything live.
  std::vector<std::vector<std::size_t>> release_after_;
  std::vector<Group> groups_;
  /// group_start_[i] is 1 + index into groups_ when node i opens a group,
  /// else 0.
  std::vector<std::size_t> group_start_;
  runtime::IntraOp intra_{};
  std::size_t input_features_ = 0;
  /// Shared per-op wall-time accumulator; null = untimed fast path.
  std::shared_ptr<obs::OpProfile> profile_;
  /// op_names_[i]: static-storage kind name for node i (trace span label).
  std::vector<const char*> op_names_;
};

}  // namespace dstee::serve
