// InferenceServer: fixed-size thread pool + micro-batching request queue.
//
// Clients submit single samples — rank-1 [features] rows for MLPs, rank-3
// [C, H, W] images for conv nets — and get a future for the result row.
// Worker threads coalesce queued requests of equal sample shape into
// [batch, ...] tensors — a batch flushes when it reaches `max_batch` OR
// when the oldest queued request has waited `max_delay_ms` — and run them
// through a shared CompiledNet (whose forward is const and thread-safe).
// Batching amortizes the CSR traversal across requests; the delay bound
// keeps tail latency under control at low load. The queue applies
// backpressure: submit() blocks while `queue_capacity` requests are
// already waiting.
#pragma once

#include <condition_variable>
#include <deque>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "serve/compiled_net.hpp"
#include "serve/stats.hpp"
#include "tensor/tensor.hpp"

namespace dstee::serve {

struct ServerConfig {
  std::size_t num_threads = 2;     ///< worker (batch-executing) threads
  std::size_t max_batch = 16;      ///< flush when this many requests queue
  double max_delay_ms = 2.0;       ///< flush when the head waits this long
  std::size_t queue_capacity = 4096;  ///< submit() blocks beyond this
};

/// Multi-threaded micro-batching front-end over one CompiledNet.
class InferenceServer {
 public:
  /// `net` must outlive the server. Workers start immediately.
  InferenceServer(const CompiledNet& net, ServerConfig config);

  /// Stops accepting work, drains the queue, joins workers.
  ~InferenceServer();

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  /// Enqueues one sample (rank >= 1, WITHOUT a batch axis: [features] or
  /// [C, H, W]) and returns a future for its output row (rank-1). Blocks
  /// while the queue is full; throws CheckError after shutdown() or on a
  /// shape mismatch the net can detect up front.
  std::future<tensor::Tensor> submit(tensor::Tensor input);

  /// Idempotent: rejects new submissions, lets workers drain what is
  /// already queued, then joins them.
  void shutdown();

  /// Aggregate latency/throughput counters since construction.
  StatsSnapshot stats() const { return stats_.snapshot(); }

  const ServerConfig& config() const { return config_; }

 private:
  struct Request {
    tensor::Tensor input;
    std::promise<tensor::Tensor> result;
    std::chrono::steady_clock::time_point enqueued;
  };

  void worker_loop();
  /// Pops the next micro-batch (requests of equal sample shape, up to
  /// max_batch, honoring the delay window). Empty result means shutdown.
  std::vector<Request> next_batch();

  const CompiledNet* net_;
  ServerConfig config_;

  mutable std::mutex mu_;
  std::condition_variable queue_cv_;  ///< signals work / shutdown
  std::condition_variable space_cv_;  ///< signals queue room
  std::deque<Request> queue_;
  bool stopping_ = false;

  ServerStats stats_;
  std::vector<std::thread> workers_;
};

}  // namespace dstee::serve
