// InferenceServer: sharded worker groups + micro-batching request queues,
// with RCU-style zero-downtime hot swap of the served network.
//
// Clients submit single samples — rank-1 [features] rows for MLPs, rank-3
// [C, H, W] images for conv nets — and get a future for the result row.
// The server runs up to `max_shards` independent worker GROUPS. Each
// group holds a versioned replica of the compiled network in a
// util::RcuCell (shard 0 serves the published net itself, shards 1..
// serve clones built at construction/swap time), its own request queue,
// and `num_threads` worker threads. Requests route to the first
// `active_shards` groups round-robin PER SAMPLE SHAPE, so heterogeneous
// traffic spreads every shape across the active groups instead of
// pinning one shape to one queue.
//
// HOT SWAP: swap() publishes a new CompiledNet version into every
// shard's RcuCell. A worker captures the version pointer once per
// micro-batch, so in-flight batches finish on the version they captured,
// the next batch picks up the new one, and the old version is destroyed
// when its last reference drops — no drain, no pause, no dropped
// requests. The optional replica factory lets a delta-patched swap build
// each shard's replica off to the side (sharing untouched weights)
// instead of full-cloning.
//
// ADMISSION CONTROL: submit() applies backpressure — it blocks while
// `queue_capacity` requests are already waiting on the routed shard, and
// the stall is recorded in that shard's stats. try_submit() never
// blocks: beyond the per-shard `queue_quota` (capacity when 0) the
// request is shed and counted in `shed_total`.
//
// SCALING: shard slots are pre-built up to `max_shards`; scale_to()
// changes only how many of them receive new traffic (an atomic routing
// bound), so growing or shrinking a model's serving capacity is
// wait-free and parked shards simply drain and idle until re-activated.
//
// Within a group, workers coalesce queued requests of equal sample shape
// into [batch, ...] tensors — a batch flushes when it reaches `max_batch`
// OR when the oldest queued request has waited `max_delay_ms` — and run
// them through the group's CompiledNet (whose forward is const and
// thread-safe). Batching amortizes the CSR traversal across requests; the
// delay bound keeps tail latency under control at low load.
#pragma once

#include <array>
#include <atomic>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "obs/clock.hpp"
#include "serve/compiled_net.hpp"
#include "serve/stats.hpp"
#include "tensor/tensor.hpp"
#include "util/rcu.hpp"
#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace dstee::obs {
class Counter;
class Histogram;
class MetricsRegistry;
}  // namespace dstee::obs

namespace dstee::serve {

struct ServerConfig {
  std::size_t num_threads = 2;   ///< batch-executing threads PER shard
  std::size_t num_shards = 1;    ///< initially ACTIVE replica worker groups
  std::size_t max_batch = 16;    ///< flush when this many requests queue
  double max_delay_ms = 2.0;     ///< flush when the head waits this long
  std::size_t queue_capacity = 4096;  ///< per-shard; submit() blocks beyond
  std::size_t max_shards = 0;    ///< scaling headroom; 0 = num_shards
  std::size_t queue_quota = 0;   ///< try_submit() sheds beyond this; 0 =
                                 ///< shed only at queue_capacity
  /// When set, workers record per-request latency and request/batch
  /// counts into this registry (labeled `metrics_label`), in addition to
  /// the internal ServerStats. Must outlive the server.
  obs::MetricsRegistry* metrics = nullptr;
  std::string metrics_label;  ///< `model` label on exported metrics
};

/// Multi-threaded micro-batching front-end over replicated CompiledNets.
class InferenceServer {
 public:
  /// Builds each shard's replica for a new version being swapped in;
  /// called once per shard (including shard 0). Lets ApplyDelta-style
  /// swaps share untouched weights with the outgoing version instead of
  /// full-cloning. Must return a non-null net of identical architecture.
  using ReplicaFactory =
      std::function<std::shared_ptr<const CompiledNet>(std::size_t shard)>;

  /// `net` must outlive the server (it is borrowed, not owned; shard 0
  /// serves it directly and shards 1.. serve clones built here). Workers
  /// start immediately.
  InferenceServer(const CompiledNet& net, ServerConfig config);

  /// Shared-ownership variant: the server keeps the net alive for as
  /// long as any shard or in-flight batch references it — required for
  /// hot swap, where the caller may drop its reference after swap().
  InferenceServer(std::shared_ptr<const CompiledNet> net,
                  ServerConfig config);

  /// Stops accepting work, drains the queues, joins workers.
  ~InferenceServer();

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  /// Enqueues one sample (rank >= 1, WITHOUT a batch axis: [features] or
  /// [C, H, W]) and returns a future for its output row (rank-1). Blocks
  /// while the routed shard's queue is full; throws CheckError after
  /// shutdown() or on a shape mismatch the net can detect up front.
  std::future<tensor::Tensor> submit(tensor::Tensor input);

  /// Admission-controlled submit: never blocks. Returns nullopt — and
  /// counts one shed on the routed shard — when that shard already has
  /// `queue_quota` (or queue_capacity, whichever bounds first) requests
  /// waiting. Throws after shutdown(), like submit().
  std::optional<std::future<tensor::Tensor>> try_submit(tensor::Tensor input);

  /// Publishes `net` as the serving version on every shard slot (active
  /// and parked). In-flight batches finish on the version they captured;
  /// requests already queued and all later submits run on the new one.
  /// `factory`, when set, builds each shard's replica (otherwise shard 0
  /// serves `net` itself and shards 1.. full clones of it). The new net
  /// must report the same input_features() as the one served so far.
  void swap(std::shared_ptr<const CompiledNet> net,
            const ReplicaFactory& factory = nullptr);

  /// Sets how many shard slots receive new traffic, clamped to
  /// [1, max_shards]. Returns the resulting active count. Shrinking
  /// parks the tail shards: they drain their queues and idle, keeping
  /// their replica warm for a later grow.
  std::size_t scale_to(std::size_t shards);

  std::size_t num_active_shards() const {
    return active_shards_.load(std::memory_order_acquire);
  }

  /// Total queued (not yet batched) requests across all shard slots.
  std::size_t queue_depth() const;

  /// Number of swap() publications so far.
  std::size_t swap_epoch() const;

  /// Idempotent: rejects new submissions, lets workers drain what is
  /// already queued, then joins them.
  void shutdown();

  /// shutdown() + releases every shard's warm replica (the RcuCells are
  /// cleared once the workers are joined, so nothing loads them). The
  /// eviction path: a decommissioned server keeps answering stats() but
  /// holds no weight memory. submit()/try_submit() throw, like after
  /// shutdown().
  void decommission();

  /// Server-wide counters aggregated across all shards.
  StatsSnapshot stats() const;

  /// One shard's counters (routing balance, per-group tails).
  StatsSnapshot shard_stats(std::size_t shard) const;

  /// Shard SLOTS (the scaling ceiling); see num_active_shards() for how
  /// many currently receive traffic.
  std::size_t num_shards() const { return shards_.size(); }

  const ServerConfig& config() const { return config_; }

 private:
  struct Request {
    tensor::Tensor input;
    std::promise<tensor::Tensor> result;
    obs::Clock::time_point enqueued;
    /// Nonzero when this request was picked by the trace sampler; its
    /// queue/batch/compute spans are recorded under this id.
    std::uint64_t trace_id = 0;
  };

  /// One worker group: a versioned replica, a queue, workers and stats.
  /// Lock discipline: `mu` guards the queue and the stopping flag; `net`
  /// is an RcuCell (workers capture a version per batch, swap publishes
  /// new ones); `stats` is internally synchronized; `workers` is touched
  /// only by the constructing/joining thread (never by the workers
  /// themselves).
  struct Shard {
    util::RcuCell<CompiledNet> net;  ///< current version for this shard

    util::Mutex mu;
    util::CondVar queue_cv;  ///< signals work / shutdown
    util::CondVar space_cv;  ///< signals queue room
    std::deque<Request> queue DSTEE_GUARDED_BY(mu);
    bool stopping DSTEE_GUARDED_BY(mu) = false;

    ServerStats stats;
    // Shard workers ARE the serving inter-op layer (long-lived batchers,
    // not pool tasks): constructed in the InferenceServer ctor, joined in
    // shutdown(), never touched in between.
    // dstee-lint: allow(raw-thread) -- the one sanctioned spawn site
    std::vector<std::thread> workers;
  };

  /// Round-robin-by-shape routing target for the next request, over the
  /// currently active shards.
  Shard& route(const tensor::Shape& sample_shape);

  /// Shared tail of submit()/try_submit(): enqueue (caller holds
  /// shard.mu) and hand back the future.
  std::future<tensor::Tensor> enqueue(Shard& shard, tensor::Tensor input)
      DSTEE_REQUIRES(shard.mu);

  void validate_sample(const tensor::Tensor& input) const;

  void worker_loop(Shard& shard);
  /// Pops the next micro-batch from `shard` (requests of equal sample
  /// shape, up to max_batch, honoring the delay window). Empty result
  /// means shutdown.
  std::vector<Request> next_batch(Shard& shard);

  ServerConfig config_;
  std::size_t input_features_ = 0;  ///< from the source net, for validation
  std::vector<std::unique_ptr<Shard>> shards_;

  // Optional obs export, resolved once in the constructor (metric
  // objects are pointer-stable for the registry's lifetime); null when
  // config_.metrics is null. The update path is lock-free either way.
  obs::Histogram* latency_hist_ = nullptr;
  obs::Counter* requests_ctr_ = nullptr;
  obs::Counter* batches_ctr_ = nullptr;

  /// Routing bound: shards_[0 .. active) receive new traffic. Release
  /// store in scale_to(), acquire load in route().
  std::atomic<std::size_t> active_shards_{1};

  /// Serializes swap() publications so every shard observes versions in
  /// the same order (workers only ever load).
  mutable util::Mutex swap_mu_;
  std::size_t swap_epoch_ DSTEE_GUARDED_BY(swap_mu_) = 0;

  /// Round-robin cursors, one per shape hash bucket: routing costs one
  /// relaxed fetch_add — no global lock, no allocation — so concurrent
  /// submitters never serialize before reaching their shard queue. Two
  /// shapes landing in one bucket share a cursor, which still rotates
  /// fairly; it just coarsens "per shape" to "per bucket".
  static constexpr std::size_t kRouteBuckets = 64;
  std::array<std::atomic<std::size_t>, kRouteBuckets> route_cursors_{};
};

}  // namespace dstee::serve
