// InferenceServer: sharded worker groups + micro-batching request queues.
//
// Clients submit single samples — rank-1 [features] rows for MLPs, rank-3
// [C, H, W] images for conv nets — and get a future for the result row.
// The server runs `num_shards` independent worker GROUPS. Each group owns
// a full replica of the compiled network (cloned once at construction, so
// groups share no weight memory — the first step toward NUMA-pinned
// shards), its own request queue, and `num_threads` worker threads.
// Requests route to groups round-robin PER SAMPLE SHAPE, so heterogeneous
// traffic spreads every shape across all groups instead of pinning one
// shape to one queue.
//
// Within a group, workers coalesce queued requests of equal sample shape
// into [batch, ...] tensors — a batch flushes when it reaches `max_batch`
// OR when the oldest queued request has waited `max_delay_ms` — and run
// them through the group's CompiledNet (whose forward is const and
// thread-safe). Batching amortizes the CSR traversal across requests; the
// delay bound keeps tail latency under control at low load. Each group
// queue applies backpressure: submit() blocks while `queue_capacity`
// requests are already waiting there, and the stall time is recorded in
// that group's stats.
#pragma once

#include <array>
#include <atomic>
#include <deque>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "serve/compiled_net.hpp"
#include "serve/stats.hpp"
#include "tensor/tensor.hpp"
#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace dstee::serve {

struct ServerConfig {
  std::size_t num_threads = 2;   ///< batch-executing threads PER shard
  std::size_t num_shards = 1;    ///< replica worker groups
  std::size_t max_batch = 16;    ///< flush when this many requests queue
  double max_delay_ms = 2.0;     ///< flush when the head waits this long
  std::size_t queue_capacity = 4096;  ///< per-shard; submit() blocks beyond
};

/// Multi-threaded micro-batching front-end over replicated CompiledNets.
class InferenceServer {
 public:
  /// `net` must outlive the server (shard 0 serves it directly; shards
  /// 1.. serve clones built here). Workers start immediately.
  InferenceServer(const CompiledNet& net, ServerConfig config);

  /// Stops accepting work, drains the queues, joins workers.
  ~InferenceServer();

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  /// Enqueues one sample (rank >= 1, WITHOUT a batch axis: [features] or
  /// [C, H, W]) and returns a future for its output row (rank-1). Blocks
  /// while the routed shard's queue is full; throws CheckError after
  /// shutdown() or on a shape mismatch the net can detect up front.
  std::future<tensor::Tensor> submit(tensor::Tensor input);

  /// Idempotent: rejects new submissions, lets workers drain what is
  /// already queued, then joins them.
  void shutdown();

  /// Server-wide counters aggregated across all shards.
  StatsSnapshot stats() const;

  /// One shard's counters (routing balance, per-group tails).
  StatsSnapshot shard_stats(std::size_t shard) const;

  std::size_t num_shards() const { return shards_.size(); }

  const ServerConfig& config() const { return config_; }

 private:
  struct Request {
    tensor::Tensor input;
    std::promise<tensor::Tensor> result;
    std::chrono::steady_clock::time_point enqueued;
  };

  /// One worker group: a replica, a queue, its workers and stats.
  /// Lock discipline: `mu` guards the queue and the stopping flag; the
  /// net/replica pointers are immutable after construction; `stats` is
  /// internally synchronized; `workers` is touched only by the
  /// constructing/joining thread (never by the workers themselves).
  struct Shard {
    const CompiledNet* net = nullptr;      ///< executes batches
    std::unique_ptr<CompiledNet> replica;  ///< owned clone (null on shard 0)

    util::Mutex mu;
    util::CondVar queue_cv;  ///< signals work / shutdown
    util::CondVar space_cv;  ///< signals queue room
    std::deque<Request> queue DSTEE_GUARDED_BY(mu);
    bool stopping DSTEE_GUARDED_BY(mu) = false;

    ServerStats stats;
    // Shard workers ARE the serving inter-op layer (long-lived batchers,
    // not pool tasks): constructed in the InferenceServer ctor, joined in
    // shutdown(), never touched in between.
    // dstee-lint: allow(raw-thread) -- the one sanctioned spawn site
    std::vector<std::thread> workers;
  };

  /// Round-robin-by-shape routing target for the next request.
  Shard& route(const tensor::Shape& sample_shape);

  void worker_loop(Shard& shard);
  /// Pops the next micro-batch from `shard` (requests of equal sample
  /// shape, up to max_batch, honoring the delay window). Empty result
  /// means shutdown.
  std::vector<Request> next_batch(Shard& shard);

  ServerConfig config_;
  std::size_t input_features_ = 0;  ///< from the source net, for validation
  std::vector<std::unique_ptr<Shard>> shards_;

  /// Round-robin cursors, one per shape hash bucket: routing costs one
  /// relaxed fetch_add — no global lock, no allocation — so concurrent
  /// submitters never serialize before reaching their shard queue. Two
  /// shapes landing in one bucket share a cursor, which still rotates
  /// fairly; it just coarsens "per shape" to "per bucket".
  static constexpr std::size_t kRouteBuckets = 64;
  std::array<std::atomic<std::size_t>, kRouteBuckets> route_cursors_{};
};

}  // namespace dstee::serve
