#include "serve/plan.hpp"

#include <cmath>
#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "models/resnet.hpp"
#include "nn/activations.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv2d.hpp"
#include "nn/dropout.hpp"
#include "nn/flatten.hpp"
#include "nn/linear.hpp"
#include "nn/pooling.hpp"
#include "sparse/flops.hpp"
#include "tensor/im2col.hpp"
#include "util/check.hpp"
#include "util/string_util.hpp"

namespace dstee::serve {

const char* to_string(PlanOpKind kind) {
  switch (kind) {
    case PlanOpKind::kSpmm:
      return "spmm";
    case PlanOpKind::kConv:
      return "spconv";
    case PlanOpKind::kIm2col:
      return "im2col";
    case PlanOpKind::kScaleShift:
      return "scale_shift";
    case PlanOpKind::kActivation:
      return "activation";
    case PlanOpKind::kDropout:
      return "dropout";
    case PlanOpKind::kFlatten:
      return "flatten";
    case PlanOpKind::kMaxPool:
      return "maxpool";
    case PlanOpKind::kAvgPool:
      return "avgpool";
    case PlanOpKind::kGlobalAvgPool:
      return "global_avg_pool";
    case PlanOpKind::kAdd:
      return "add";
    case PlanOpKind::kRowSlice:
      return "row_slice";
    case PlanOpKind::kConcatChannels:
      return "concat";
  }
  return "?";
}

namespace {

const char* to_string(ActKind act) {
  switch (act) {
    case ActKind::kRelu:
      return "relu";
    case ActKind::kLeakyRelu:
      return "leaky_relu";
    case ActKind::kSigmoid:
      return "sigmoid";
    case ActKind::kTanh:
      return "tanh";
  }
  return "?";
}

tensor::ConvGeometry conv_geometry(const PlanOp& op, std::size_t in_h,
                                   std::size_t in_w) {
  util::check(in_h + 2 * op.padding >= op.kernel &&
                  in_w + 2 * op.padding >= op.kernel,
              "plan conv input smaller than kernel");
  tensor::ConvGeometry g;
  g.in_channels = op.in_channels;
  g.in_h = in_h;
  g.in_w = in_w;
  g.kernel_h = op.kernel;
  g.kernel_w = op.kernel;
  g.stride = op.stride;
  g.padding = op.padding;
  return g;
}

// A CSR node carries exactly one of csr (fp32) / qcsr (int8); these
// helpers let annotate/dump/validate read the weight geometry without
// branching at every use site.
std::size_t weights_rows(const PlanOp& op) {
  return op.csr != nullptr ? op.csr->rows() : op.qcsr->rows();
}

std::size_t weights_cols(const PlanOp& op) {
  return op.csr != nullptr ? op.csr->cols() : op.qcsr->cols();
}

std::size_t weights_nnz(const PlanOp& op) {
  return op.csr != nullptr ? op.csr->nnz() : op.qcsr->nnz();
}

std::size_t slice_nnz(const PlanOp& op) {
  return op.csr != nullptr
             ? op.csr->row_slice(op.row_begin, op.row_end).nnz()
             : op.qcsr->row_slice(op.row_begin, op.row_end).nnz();
}

// Weight bytes this node streams at run time. Row slices count their own
// row range (the parent's bytes split across the group); fp32 CSR is
// 4-byte values + 4-byte column indices, int8 QCsr is 1-byte values +
// 4-byte indices + one fp32 scale per row; both stream size_t row_ptr.
std::size_t node_weight_bytes(const PlanOp& op) {
  const bool slice = op.kind == PlanOpKind::kRowSlice;
  const std::size_t rows =
      slice ? op.row_end - op.row_begin : weights_rows(op);
  const std::size_t nnz = slice ? slice_nnz(op) : weights_nnz(op);
  if (op.qcsr != nullptr) {
    return nnz * (sizeof(std::int8_t) + sizeof(std::uint32_t)) +
           rows * sizeof(float) + (rows + 1) * sizeof(std::size_t);
  }
  return nnz * (sizeof(float) + sizeof(std::uint32_t)) +
         (rows + 1) * sizeof(std::size_t);
}

// FLOPs the fused epilogue adds per node: one add for the residual and
// one op for the activation, per output element. Counted in annotate()
// (and mirrored by the executor's accounting) so a fused plan reports
// the epilogue work the separate kActivation/kAdd nodes used to carry.
double epilogue_flops(const PlanOp& op, double out_elems) {
  double per_elem = 0.0;
  if (op.epilogue.add_residual) per_elem += 1.0;
  if (op.epilogue.has_act) per_elem += 1.0;
  return per_elem * out_elems;
}

// Appends ", fused(relu)" / ", fused(add+relu)" / ", fused(add)" for a
// CSR node carrying a FuseEpilogue annotation.
void append_fused(std::string& out, const PlanOp& op) {
  if (op.epilogue.empty()) return;
  out += ", fused(";
  if (op.epilogue.add_residual) out += "add";
  if (op.epilogue.has_act) {
    if (op.epilogue.add_residual) out += "+";
    out += to_string(op.epilogue.act);
  }
  out += ")";
}

}  // namespace

// The same arithmetic the monolithic compiler used, so folding — and the
// delta re-fold path, which must be bit-identical to a full recompile —
// never drifts from standalone kScaleShift evaluation.
void bn_scale_shift(const nn::BatchNorm& bn, std::vector<float>& scale,
                    std::vector<float>& shift) {
  const std::size_t c = bn.channels();
  scale.resize(c);
  shift.resize(c);
  for (std::size_t i = 0; i < c; ++i) {
    const double inv_std =
        1.0 / std::sqrt(static_cast<double>(bn.running_var()[i]) + bn.eps());
    const double s = static_cast<double>(bn.gamma().value[i]) * inv_std;
    scale[i] = static_cast<float>(s);
    shift[i] = static_cast<float>(
        static_cast<double>(bn.beta().value[i]) -
        static_cast<double>(bn.running_mean()[i]) * s);
  }
}

std::size_t Plan::total_weight_bytes() const {
  // Sum over distinct matrices, not nodes: every kRowSlice in a partition
  // group shares its parent's storage, so counting per node would
  // multiply the parent by the partition factor.
  std::unordered_set<const void*> seen;
  std::size_t bytes = 0;
  for (const PlanOp& op : ops) {
    if (op.csr != nullptr && seen.insert(op.csr.get()).second) {
      bytes += op.csr->nnz() * (sizeof(float) + sizeof(std::uint32_t)) +
               op.csr->row_ptr().size() * sizeof(std::size_t);
    }
    if (op.qcsr != nullptr && seen.insert(op.qcsr.get()).second) {
      bytes += op.qcsr->weight_bytes();
    }
  }
  return bytes;
}

std::vector<std::size_t> Plan::use_counts() const {
  std::vector<std::size_t> counts(ops.size(), 0);
  for (const PlanOp& op : ops) {
    for (const std::size_t in : op.inputs) {
      if (in != kInputId) ++counts[in];
    }
  }
  return counts;
}

std::vector<Plan::NodeCost> Plan::annotate(
    const tensor::Shape& sample_shape,
    const obs::OpProfile* measured) const {
  std::vector<std::size_t> dims;
  dims.reserve(sample_shape.rank() + 1);
  dims.push_back(1);
  for (std::size_t i = 0; i < sample_shape.rank(); ++i) {
    dims.push_back(sample_shape.dim(i));
  }
  const tensor::Shape input(dims);

  std::vector<NodeCost> costs(ops.size());
  auto shape_of = [&](std::size_t id) -> const tensor::Shape& {
    return id == kInputId ? input : costs[id].out_shape;
  };

  double total = 0.0;
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const PlanOp& op = ops[i];
    const tensor::Shape& in = shape_of(op.inputs.front());
    const std::size_t batch = in.dim(0);
    NodeCost& c = costs[i];
    switch (op.kind) {
      case PlanOpKind::kSpmm: {
        c.out_shape = tensor::Shape({batch, weights_rows(op)});
        c.flops = sparse::linear_nnz_flops(weights_nnz(op), batch);
        c.dense_flops = sparse::linear_nnz_flops(
            weights_rows(op) * weights_cols(op), batch);
        const double ep = epilogue_flops(op, c.out_shape.numel());
        c.flops += ep;
        c.dense_flops += ep;
        c.weight_bytes = node_weight_bytes(op);
        break;
      }
      case PlanOpKind::kConv: {
        const tensor::ConvGeometry g = conv_geometry(op, in.dim(2), in.dim(3));
        c.out_shape =
            tensor::Shape({batch, weights_rows(op), g.out_h(), g.out_w()});
        c.flops = sparse::conv_nnz_flops(weights_nnz(op), g.out_h(), g.out_w(),
                                         batch);
        c.dense_flops = sparse::conv_nnz_flops(
            weights_rows(op) * weights_cols(op), g.out_h(), g.out_w(), batch);
        const double ep = epilogue_flops(op, c.out_shape.numel());
        c.flops += ep;
        c.dense_flops += ep;
        c.weight_bytes = node_weight_bytes(op);
        break;
      }
      case PlanOpKind::kIm2col: {
        const tensor::ConvGeometry g = conv_geometry(op, in.dim(2), in.dim(3));
        c.out_shape =
            tensor::Shape({batch, g.patch_size(), g.out_h(), g.out_w()});
        break;
      }
      case PlanOpKind::kRowSlice: {
        const std::size_t rows = op.row_end - op.row_begin;
        const std::size_t nnz = slice_nnz(op);
        if (op.conv_slice) {
          // Input is the patch buffer [N, P, OH, OW].
          c.out_shape = tensor::Shape({batch, rows, in.dim(2), in.dim(3)});
          c.flops = sparse::conv_nnz_flops(nnz, in.dim(2), in.dim(3), batch);
          c.dense_flops = sparse::conv_nnz_flops(rows * weights_cols(op),
                                                 in.dim(2), in.dim(3), batch);
        } else {
          c.out_shape = tensor::Shape({batch, rows});
          c.flops = sparse::linear_nnz_flops(nnz, batch);
          c.dense_flops =
              sparse::linear_nnz_flops(rows * weights_cols(op), batch);
        }
        const double ep = epilogue_flops(op, c.out_shape.numel());
        c.flops += ep;
        c.dense_flops += ep;
        c.weight_bytes = node_weight_bytes(op);
        break;
      }
      case PlanOpKind::kConcatChannels: {
        std::size_t channels = 0;
        for (const std::size_t in_id : op.inputs) {
          channels += shape_of(in_id).dim(1);
        }
        std::vector<std::size_t> out = in.dims();
        out[1] = channels;
        c.out_shape = tensor::Shape(out);
        break;
      }
      case PlanOpKind::kFlatten:
        c.out_shape = tensor::Shape({batch, in.numel() / batch});
        break;
      case PlanOpKind::kMaxPool:
        util::check(in.rank() == 4 && in.dim(2) >= op.pool_kernel &&
                        in.dim(3) >= op.pool_kernel,
                    "plan maxpool input smaller than window");
        c.out_shape = tensor::Shape(
            {batch, in.dim(1),
             (in.dim(2) - op.pool_kernel) / op.pool_stride + 1,
             (in.dim(3) - op.pool_kernel) / op.pool_stride + 1});
        break;
      case PlanOpKind::kAvgPool:
        util::check(in.rank() == 4 && in.dim(2) >= op.pool_kernel &&
                        in.dim(3) >= op.pool_kernel,
                    "plan avgpool input smaller than window");
        c.out_shape = tensor::Shape({batch, in.dim(1),
                                     in.dim(2) / op.pool_kernel,
                                     in.dim(3) / op.pool_kernel});
        break;
      case PlanOpKind::kGlobalAvgPool:
        c.out_shape = tensor::Shape({batch, in.dim(1)});
        break;
      case PlanOpKind::kScaleShift:
      case PlanOpKind::kActivation:
      case PlanOpKind::kDropout:
      case PlanOpKind::kAdd:
        c.out_shape = in;
        break;
    }
    total += c.flops;
  }
  if (total > 0.0) {
    for (NodeCost& c : costs) c.share = c.flops / total;
  }
  // A measured profile (recorded off an executor bound from this plan)
  // overrides the analytic shares with observed wall-time shares. A
  // profile of the wrong size (plan rewritten since it was recorded) or
  // with no samples yet is ignored — the analytic shares stand.
  if (measured != nullptr && measured->size() == ops.size()) {
    const std::int64_t measured_total = measured->total_ns();
    if (measured_total > 0) {
      for (std::size_t i = 0; i < costs.size(); ++i) {
        const std::int64_t ns = measured->node_ns(i);
        costs[i].measured_ms = static_cast<double>(ns) / 1e6;
        costs[i].share = static_cast<double>(ns) /
                         static_cast<double>(measured_total);
      }
    }
  }
  return costs;
}

// GCC 12 emits -Wrestrict false positives on std::string operator+ chains
// (GCC bug 105651); the dump formatting trips it regardless of how the
// appends are arranged, so silence exactly this diagnostic here.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wrestrict"
#endif

std::string Plan::dump(const tensor::Shape* sample_shape) const {
  std::vector<NodeCost> costs;
  if (sample_shape != nullptr) costs = annotate(*sample_shape);

  std::string out = "plan: " + std::to_string(ops.size()) + " ops, " +
                    std::to_string(total_nnz) + "/" +
                    std::to_string(total_weights) + " weights, " +
                    std::to_string(elided) + " elided";
  if (residual_joins > 0) {
    out += ", " + std::to_string(residual_joins) + " residual joins";
  }
  if (partitioned_ops > 0) {
    out += ", " + std::to_string(partitioned_ops) + " partitioned";
  }
  if (fused_ops > 0) {
    out += ", " + std::to_string(fused_ops) + " fused";
  }
  if (quantized_ops > 0) {
    out += ", " + std::to_string(quantized_ops) + " int8 (" +
           std::to_string(total_weight_bytes()) + " weight bytes)";
  }
  out += "\n";

  for (std::size_t i = 0; i < ops.size(); ++i) {
    const PlanOp& op = ops[i];
    out += "  [" + std::to_string(i) + "] ";
    out += to_string(op.kind);
    switch (op.kind) {
      // Trailing annotations use separate appends: GCC 12's -Wrestrict
      // misfires on long operator+ chains ending in a ternary char*.
      case PlanOpKind::kSpmm:
        out += "(" + std::to_string(weights_rows(op)) + "x" +
               std::to_string(weights_cols(op)) +
               ", nnz=" + std::to_string(weights_nnz(op));
        if (op.folded_bn) out += ", +bn";
        if (op.qcsr != nullptr) out += ", int8";
        append_fused(out, op);
        out += ")";
        break;
      case PlanOpKind::kConv:
        out += "(" + std::to_string(op.in_channels) + "->" +
               std::to_string(weights_rows(op)) + ", k" +
               std::to_string(op.kernel) + " s" + std::to_string(op.stride) +
               " p" + std::to_string(op.padding) +
               ", nnz=" + std::to_string(weights_nnz(op));
        if (op.folded_bn) out += ", +bn";
        if (op.qcsr != nullptr) out += ", int8";
        append_fused(out, op);
        out += ")";
        break;
      case PlanOpKind::kIm2col:
        out += "(" + std::to_string(op.in_channels) + "ch, k" +
               std::to_string(op.kernel) + " s" + std::to_string(op.stride) +
               " p" + std::to_string(op.padding) + ")";
        break;
      case PlanOpKind::kRowSlice:
        out += "(rows " + std::to_string(op.row_begin) + ":" +
               std::to_string(op.row_end) + " of " +
               std::to_string(weights_rows(op)) +
               ", nnz=" + std::to_string(slice_nnz(op)) + ", group " +
               std::to_string(op.partition_group);
        if (op.conv_slice) out += ", conv";
        if (op.qcsr != nullptr) out += ", int8";
        append_fused(out, op);
        out += ")";
        break;
      case PlanOpKind::kScaleShift:
        out += "(" + std::to_string(op.scale.size()) + ")";
        break;
      case PlanOpKind::kActivation:
        out += "(";
        out += to_string(op.act);
        out += ")";
        break;
      case PlanOpKind::kDropout:
        out += "(p=" + util::format_fixed(op.rate, 2) + ", eval identity)";
        break;
      case PlanOpKind::kMaxPool:
      case PlanOpKind::kAvgPool:
        out += "(k" + std::to_string(op.pool_kernel) + " s" +
               std::to_string(op.pool_stride) + ")";
        break;
      case PlanOpKind::kAdd:
        out += op.relu_after_add ? "(+relu)" : "";
        break;
      case PlanOpKind::kFlatten:
      case PlanOpKind::kGlobalAvgPool:
      case PlanOpKind::kConcatChannels:
        break;
    }
    if (!costs.empty()) {
      out += "  out=" + costs[i].out_shape.to_string();
      if (costs[i].flops > 0.0) {
        out += "  flops=" + util::format_fixed(costs[i].flops, 0) + " (" +
               util::format_fixed(costs[i].share * 100.0, 1) + "%)";
      }
    }
    append_producers(out, i, op.inputs);
    out += "\n";
  }
  return out;
}

void append_producers(std::string& out, std::size_t index,
                      const std::vector<std::size_t>& inputs) {
  // Annotate producers whenever they are not just "the previous node" —
  // that is where the graph deviates from a straight line.
  const bool straight =
      inputs.size() == 1 && ((index == 0 && inputs[0] == Plan::kInputId) ||
                             inputs[0] + 1 == index);
  if (straight) return;
  out += "  <- ";
  for (std::size_t j = 0; j < inputs.size(); ++j) {
    if (j > 0) out += ", ";
    // Separate appends: GCC 12's -Wrestrict misfires on the nested
    // operator+ chain here.
    if (inputs[j] == Plan::kInputId) {
      out += "in";
    } else {
      out += "[";
      out += std::to_string(inputs[j]);
      out += "]";
    }
  }
}

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

void Plan::validate() const {
  util::check(!ops.empty(), "plan has no ops");
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const PlanOp& op = ops[i];
    util::check(!op.inputs.empty(),
                "plan op " + std::to_string(i) + " has no inputs");
    // CSR nodes gain a second input (the residual edge) when FuseEpilogue
    // absorbed a residual add into them.
    const bool csr_kind = op.kind == PlanOpKind::kSpmm ||
                          op.kind == PlanOpKind::kConv ||
                          op.kind == PlanOpKind::kRowSlice;
    const std::size_t want =
        op.kind == PlanOpKind::kAdd
            ? 2
            : op.kind == PlanOpKind::kConcatChannels
                  ? op.inputs.size()
                  : csr_kind && op.epilogue.add_residual ? 2 : 1;
    util::check(op.inputs.size() == want && want >= 1,
                "plan op " + std::to_string(i) + " has wrong arity");
    util::check(csr_kind || op.epilogue.empty(),
                "plan op " + std::to_string(i) +
                    " carries an epilogue on a non-CSR kind");
    if (op.kind == PlanOpKind::kConcatChannels) {
      util::check(op.inputs.size() >= 2, "concat needs >= 2 inputs");
    }
    for (const std::size_t in : op.inputs) {
      util::check(in == kInputId || in < i,
                  "plan op " + std::to_string(i) +
                      " consumes a later node (not topological)");
    }
    if (csr_kind) {
      util::check((op.csr != nullptr) != (op.qcsr != nullptr),
                  "CSR plan op " + std::to_string(i) +
                      " must carry exactly one of fp32/int8 weights");
    } else {
      util::check(op.csr == nullptr && op.qcsr == nullptr,
                  "non-CSR plan op " + std::to_string(i) +
                      " carries weights");
    }
    if (op.kind == PlanOpKind::kRowSlice) {
      util::check(op.row_begin < op.row_end &&
                      op.row_end <= weights_rows(op),
                  "row_slice range invalid at op " + std::to_string(i));
    }
  }
  if (!release_after.empty()) {
    util::check(release_after.size() == ops.size(),
                "release_after size mismatch");
    std::vector<bool> released(ops.size(), false);
    for (std::size_t i = 0; i < release_after.size(); ++i) {
      for (const std::size_t id : release_after[i]) {
        util::check(id <= i, "release of a node that has not run yet");
        util::check(id + 1 != ops.size(), "release of the output node");
        util::check(!released[id], "node released twice");
        released[id] = true;
      }
    }
  }
}

Plan lower(nn::Sequential& model, const sparse::SparseModel* state,
           float dense_eps) {
  // Weight → mask lookup so each Linear/Conv2d deploys its trained
  // topology.
  std::unordered_map<const nn::Parameter*, const sparse::MaskedParameter*>
      masked;
  if (state != nullptr) {
    for (std::size_t i = 0; i < state->num_layers(); ++i) {
      const sparse::MaskedParameter& layer = state->layer(i);
      masked.emplace(&layer.param(), &layer);
    }
  }

  Plan plan;
  std::size_t cursor = Plan::kInputId;
  std::size_t bn_count = 0;  // bn_ordinal source (see collect_lowered_modules)

  auto emit = [&](PlanOp op) {
    plan.ops.push_back(std::move(op));
    cursor = plan.ops.size() - 1;
    return cursor;
  };

  auto csr_for = [&](const nn::Parameter& weight) {
    const auto it = masked.find(&weight);
    auto csr = std::make_shared<sparse::CsrMatrix>(
        it != masked.end()
            ? sparse::CsrMatrix::from_masked(*it->second)
            : sparse::CsrMatrix::from_dense(weight.value, dense_eps));
    plan.total_nnz += csr->nnz();
    plan.total_weights += csr->rows() * csr->cols();
    ++plan.sparse_ops;
    return csr;
  };

  auto lower_module = [&](auto&& self, nn::Module& module) -> void {
    if (auto* seq = dynamic_cast<nn::Sequential*>(&module)) {
      for (std::size_t i = 0; i < seq->size(); ++i) self(self, seq->child(i));
      return;
    }
    if (auto* block = dynamic_cast<models::ResidualBlock*>(&module)) {
      const std::size_t entry = cursor;
      self(self, block->main_path());
      const std::size_t main_tail = cursor;
      std::size_t shortcut_tail = entry;
      if (nn::Sequential* shortcut = block->shortcut_path()) {
        cursor = entry;
        self(self, *shortcut);
        shortcut_tail = cursor;
      }
      PlanOp join;
      join.kind = PlanOpKind::kAdd;
      join.relu_after_add = true;
      join.inputs = {main_tail, shortcut_tail};
      emit(std::move(join));
      ++plan.residual_joins;
      return;
    }
    if (auto* linear = dynamic_cast<nn::Linear*>(&module)) {
      PlanOp op;
      op.kind = PlanOpKind::kSpmm;
      op.inputs = {cursor};
      op.csr = csr_for(linear->weight());
      op.sparse_ordinal = plan.sparse_ops - 1;
      if (linear->has_bias()) op.bias = linear->bias().value;
      op.has_bias = linear->has_bias();
      emit(std::move(op));
      return;
    }
    if (auto* conv = dynamic_cast<nn::Conv2d*>(&module)) {
      PlanOp op;
      op.kind = PlanOpKind::kConv;
      op.inputs = {cursor};
      op.csr = csr_for(conv->weight());
      op.sparse_ordinal = plan.sparse_ops - 1;
      util::check(op.csr->cols() ==
                      conv->in_channels() * conv->kernel() * conv->kernel(),
                  "conv CSR columns must equal Cin*K*K");
      op.in_channels = conv->in_channels();
      op.kernel = conv->kernel();
      op.stride = conv->stride();
      op.padding = conv->padding();
      if (conv->has_bias()) op.bias = conv->bias().value;
      op.has_bias = conv->has_bias();
      emit(std::move(op));
      return;
    }
    if (auto* bn = dynamic_cast<nn::BatchNorm*>(&module)) {
      PlanOp op;
      op.kind = PlanOpKind::kScaleShift;
      op.inputs = {cursor};
      bn_scale_shift(*bn, op.scale, op.shift);
      op.rank4 = bn->is_rank4();
      op.bn_ordinal = bn_count++;
      emit(std::move(op));
      return;
    }
    if (auto* dropout = dynamic_cast<nn::Dropout*>(&module)) {
      PlanOp op;
      op.kind = PlanOpKind::kDropout;
      op.inputs = {cursor};
      op.rate = dropout->drop_probability();
      emit(std::move(op));
      return;
    }
    if (dynamic_cast<nn::ReLU*>(&module) != nullptr ||
        dynamic_cast<nn::LeakyReLU*>(&module) != nullptr ||
        dynamic_cast<nn::Sigmoid*>(&module) != nullptr ||
        dynamic_cast<nn::Tanh*>(&module) != nullptr) {
      PlanOp op;
      op.kind = PlanOpKind::kActivation;
      op.inputs = {cursor};
      if (auto* leaky = dynamic_cast<nn::LeakyReLU*>(&module)) {
        op.act = ActKind::kLeakyRelu;
        op.slope = leaky->slope();
      } else if (dynamic_cast<nn::Sigmoid*>(&module) != nullptr) {
        op.act = ActKind::kSigmoid;
      } else if (dynamic_cast<nn::Tanh*>(&module) != nullptr) {
        op.act = ActKind::kTanh;
      } else {
        op.act = ActKind::kRelu;
      }
      emit(std::move(op));
      return;
    }
    if (dynamic_cast<nn::Flatten*>(&module) != nullptr) {
      PlanOp op;
      op.kind = PlanOpKind::kFlatten;
      op.inputs = {cursor};
      emit(std::move(op));
      return;
    }
    if (auto* pool = dynamic_cast<nn::MaxPool2d*>(&module)) {
      PlanOp op;
      op.kind = PlanOpKind::kMaxPool;
      op.inputs = {cursor};
      op.pool_kernel = pool->kernel();
      op.pool_stride = pool->stride();
      emit(std::move(op));
      return;
    }
    if (auto* pool = dynamic_cast<nn::AvgPool2d*>(&module)) {
      PlanOp op;
      op.kind = PlanOpKind::kAvgPool;
      op.inputs = {cursor};
      op.pool_kernel = pool->kernel();
      op.pool_stride = pool->kernel();
      emit(std::move(op));
      return;
    }
    if (dynamic_cast<nn::GlobalAvgPool*>(&module) != nullptr) {
      PlanOp op;
      op.kind = PlanOpKind::kGlobalAvgPool;
      op.inputs = {cursor};
      emit(std::move(op));
      return;
    }
    util::fail("serve::lower: unsupported layer '" + module.name() + "'");
  };
  lower_module(lower_module, model);

  util::check(!plan.ops.empty(), "model lowered to an empty plan");
  plan.validate();
  return plan;
}

LoweredModules collect_lowered_modules(nn::Sequential& model) {
  // MUST mirror lower_module's recursion order exactly: the ordinals it
  // hands out are the provenance keys stored in PlanOps. Pinned by the
  // delta round-trip tests (bit-identical patch vs full recompile).
  LoweredModules out;
  auto walk = [&](auto&& self, nn::Module& module) -> void {
    if (auto* seq = dynamic_cast<nn::Sequential*>(&module)) {
      for (std::size_t i = 0; i < seq->size(); ++i) self(self, seq->child(i));
      return;
    }
    if (auto* block = dynamic_cast<models::ResidualBlock*>(&module)) {
      self(self, block->main_path());
      if (nn::Sequential* shortcut = block->shortcut_path()) {
        self(self, *shortcut);
      }
      return;
    }
    if (dynamic_cast<nn::Linear*>(&module) != nullptr ||
        dynamic_cast<nn::Conv2d*>(&module) != nullptr) {
      out.sparse.push_back(&module);
      return;
    }
    if (auto* bn = dynamic_cast<nn::BatchNorm*>(&module)) {
      out.bns.push_back(bn);
      return;
    }
  };
  walk(walk, model);
  return out;
}

}  // namespace dstee::serve
