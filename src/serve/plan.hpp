// Plan IR: the typed, inspectable middle stage of the serve compiler.
//
// The serve stack used to lower, optimize and bind in one monolithic
// CompiledNet::compile(): BN folding, dropout elision and the
// free-after-last-use policy were hard-coded into the module walk, so
// there was no seam where a new graph optimization (row-range
// partitioning, NUMA placement) could be inserted or tested on its own.
// The redesign splits compilation into three explicit stages:
//
//   Lowering (this file)  nn::Sequential + SparseModel → Plan, one PlanOp
//                         per module, weights converted to CSR, no
//                         optimization decisions at all
//   Passes (passes.hpp)   named rewrites over the Plan — FoldBatchNorm,
//                         ElideDropout, FreeAfterLastUse, PartitionRows —
//                         composed by serve::Compiler
//   Executor              binds a finished Plan to EvalOps + a
//   (executor.hpp)        runtime::IntraOp policy; CompiledNet stays the
//                         thin serving facade over the bound program
//
// A PlanOp is a plain tagged struct, not a virtual hierarchy: passes
// pattern-match on `kind` and rewrite vectors in place, the way graph IRs
// do it (compare the MXNet executor's node-attribute graph). Each node
// names its producers by id; Plan::annotate() propagates a sample shape
// through the DAG to attach per-node shapes, executed FLOPs and cost
// shares — the signal PartitionRows balances against, and what
// `dstee_serve --dump-plan` prints.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "kernels/epilogue.hpp"
#include "nn/sequential.hpp"
#include "obs/profile.hpp"
#include "sparse/csr.hpp"
#include "sparse/qcsr.hpp"
#include "sparse/sparse_model.hpp"
#include "tensor/shape.hpp"
#include "tensor/tensor.hpp"

namespace dstee::nn {
class BatchNorm;
}  // namespace dstee::nn

namespace dstee::serve {

/// Node kinds a Plan can hold. Lowering emits the module-shaped subset;
/// kIm2col / kRowSlice / kConcatChannels only appear once PartitionRows
/// has rewritten a CSR node into cost-balanced row-range sub-ops.
enum class PlanOpKind {
  kSpmm,            ///< CSR Linear: Y = X·Wᵀ + b
  kConv,            ///< CSR conv: per-image im2col + SpMM over patches
  kIm2col,          ///< materialized patch matrix [N, Cin·K·K, OH, OW]
  kScaleShift,      ///< eval-mode batch-norm as per-channel affine
  kActivation,      ///< ReLU / LeakyReLU / Sigmoid / Tanh
  kDropout,         ///< identity at eval; removed by ElideDropout
  kFlatten,         ///< [N, ...] → [N, features]
  kMaxPool,         ///< 2-d max pooling
  kAvgPool,         ///< 2-d average pooling
  kGlobalAvgPool,   ///< [N, C, H, W] → [N, C]
  kAdd,             ///< residual join: a + b, optionally through ReLU
  kRowSlice,        ///< rows [row_begin, row_end) of a partitioned CSR op
  kConcatChannels,  ///< joins row slices along axis 1 (features/channels)
};

/// Short lowercase name for dumps ("spmm", "row_slice", ...).
const char* to_string(PlanOpKind kind);

/// Activation kinds are the kernel layer's: the plan annotation and the
/// fused kernels::Epilogue a bound op builds from it can never disagree.
using ActKind = kernels::ActKind;

/// Fused-epilogue annotation on a producing CSR node (kSpmm / kConv and
/// the kRowSlice sub-ops PartitionRows derives from them). FuseEpilogue
/// absorbs a downstream kActivation and/or residual kAdd into the node;
/// the executor lowers this to a kernels::Epilogue applied in the
/// kernel's output loop. Empty (the default) means the node computes the
/// plain affine product, exactly as before fusion existed.
struct PlanEpilogue {
  bool add_residual = false;  ///< inputs[1] is added before activation
  bool has_act = false;
  ActKind act = ActKind::kRelu;
  float slope = 0.01f;  ///< LeakyReLU negative slope

  bool empty() const { return !add_residual && !has_act; }
};

/// One plan node. Which fields are meaningful depends on `kind` (see the
/// member comments); everything else stays at its default. Weights are
/// held through shared_ptr so a kRowSlice node views its source matrix
/// zero-copy instead of duplicating nonzeros per partition.
struct PlanOp {
  static constexpr std::size_t kNoGroup = static_cast<std::size_t>(-1);

  PlanOpKind kind = PlanOpKind::kSpmm;
  /// Producer node ids (Plan::kInputId = the network input). Unary ops
  /// have one entry, kAdd has two, kConcatChannels one per slice.
  std::vector<std::size_t> inputs;

  // kSpmm / kConv / kRowSlice ------------------------------------------
  std::shared_ptr<sparse::CsrMatrix> csr;  ///< weights (shared with slices)
  /// Int8-quantized weights (QuantizeWeights pass). A CSR node carries
  /// exactly one of csr / qcsr — validate() enforces it; slices of a
  /// quantized node share the parent's QCsrMatrix like csr slices do.
  std::shared_ptr<sparse::QCsrMatrix> qcsr;
  tensor::Tensor bias;                     ///< per output row/channel
  bool has_bias = false;
  bool folded_bn = false;  ///< FoldBatchNorm absorbed a BN into this node
  /// FuseEpilogue annotation. When `epilogue.add_residual` is set the node
  /// gains a second input (the residual edge) — validate() accounts for
  /// the extra arity on CSR kinds.
  PlanEpilogue epilogue;

  // kConv / kIm2col / conv-sliced kRowSlice ----------------------------
  std::size_t in_channels = 0;
  std::size_t kernel = 0;
  std::size_t stride = 1;
  std::size_t padding = 0;

  // kScaleShift --------------------------------------------------------
  std::vector<float> scale;
  std::vector<float> shift;
  bool rank4 = false;  ///< BatchNorm2d ([N,C,H,W]) vs BatchNorm1d ([N,C])

  // kActivation --------------------------------------------------------
  ActKind act = ActKind::kRelu;
  float slope = 0.0f;  ///< LeakyReLU negative slope

  // kDropout -----------------------------------------------------------
  double rate = 0.0;  ///< training-time drop probability (dump only)

  // kMaxPool / kAvgPool ------------------------------------------------
  std::size_t pool_kernel = 0;
  std::size_t pool_stride = 0;

  // kAdd ---------------------------------------------------------------
  bool relu_after_add = false;

  // kRowSlice ----------------------------------------------------------
  std::size_t row_begin = 0;
  std::size_t row_end = 0;
  bool conv_slice = false;  ///< input is a kIm2col patch buffer
  /// Slices created by one PartitionRows split share a group id; the
  /// executor runs each group as one fan-out on the runtime pool.
  std::size_t partition_group = kNoGroup;

  // Provenance (delta patching) ----------------------------------------
  static constexpr std::size_t kNoOrdinal = static_cast<std::size_t>(-1);
  /// For kSpmm/kConv (and the kRowSlice sub-ops PartitionRows derives
  /// from them): index of the originating Linear/Conv2d in lowering
  /// order — the key serve::ApplyDelta uses to rebuild only the nodes a
  /// checkpoint delta touched. Matches collect_lowered_modules().
  std::size_t sparse_ordinal = kNoOrdinal;
  /// For kScaleShift (and, after FoldBatchNorm, the CSR node that
  /// absorbed it): index of the originating BatchNorm in lowering order.
  std::size_t bn_ordinal = kNoOrdinal;
};

/// The compile-time program: a DAG of PlanOps in topological (emission)
/// order, plus the model-wide counters lowering gathered and the
/// annotations passes attach. Value-semantic: tests copy plans freely to
/// compare before/after a pass.
struct Plan {
  /// Producer id meaning "the network input".
  static constexpr std::size_t kInputId = static_cast<std::size_t>(-1);

  std::vector<PlanOp> ops;

  /// release_after[i] lists node ids whose intermediate may be freed once
  /// op i has run — the FreeAfterLastUse annotation. Empty (no pass run)
  /// means the executor keeps every intermediate until the forward ends.
  std::vector<std::vector<std::size_t>> release_after;

  // Model-wide counters (lowering fills them; passes update elided /
  // partitioned).
  std::size_t sparse_ops = 0;
  std::size_t elided = 0;
  std::size_t residual_joins = 0;
  std::size_t total_nnz = 0;
  std::size_t total_weights = 0;
  std::size_t partitioned_ops = 0;
  std::size_t fused_ops = 0;  ///< CSR nodes carrying a FuseEpilogue annotation
  std::size_t quantized_ops = 0;  ///< CSR nodes rewritten to int8 weights

  /// Weight bytes a replica streams, summed over DISTINCT weight matrices
  /// (row slices share their parent): fp32 CSR counts values + uint32
  /// col_idx + row_ptr; int8 QCsr counts values + col_idx + row scales +
  /// row_ptr. The memory lever QuantizeWeights moves.
  std::size_t total_weight_bytes() const;

  std::size_t size() const { return ops.size(); }

  /// Consumer count per node (the network output has none).
  std::vector<std::size_t> use_counts() const;

  /// Per-node cost annotation for a batch-1 sample of the given shape
  /// (no batch axis): output shape, executed FLOPs, dense-equivalent
  /// FLOPs, and this node's share of the plan's total executed FLOPs.
  struct NodeCost {
    tensor::Shape out_shape;
    double flops = 0.0;
    double dense_flops = 0.0;
    double share = 0.0;
    /// Weight bytes THIS node streams (slices report their own row
    /// range's share of the parent). 0 for non-weight ops.
    std::size_t weight_bytes = 0;
    /// Measured wall milliseconds per node (summed over the profile's
    /// forwards), 0 when annotate ran without a measured profile.
    double measured_ms = 0.0;
  };
  /// `measured` (optional) replaces the analytic FLOPs-based `share` with
  /// the profile's observed wall-time shares — an OpProfile recorded off
  /// an executor bound from THIS plan (node indices must line up; a
  /// size-mismatched or all-zero profile is ignored and the analytic
  /// shares stand). Shapes/flops columns are analytic either way.
  std::vector<NodeCost> annotate(const tensor::Shape& sample_shape,
                                 const obs::OpProfile* measured =
                                     nullptr) const;

  /// Human-readable plan listing: one line per node with kind, config,
  /// nnz, and — when `sample_shape` is given — output shape, FLOPs and
  /// cost share. Partitioned nodes show their row range and group.
  std::string dump(const tensor::Shape* sample_shape = nullptr) const;

  /// Structural invariants: producer ids precede consumers, arities match
  /// kinds, release lists (when present) reference valid ids. Throws
  /// util::CheckError on violation; passes call this after rewriting.
  void validate() const;
};

/// Appends "  <- in, [3]" to `out` when node `index`'s producers deviate
/// from "the previous node" — the edge-annotation format shared by
/// Plan::dump and Executor::describe_ops.
void append_producers(std::string& out, std::size_t index,
                      const std::vector<std::size_t>& inputs);

/// Lowering: walks the module tree (recursing through nested Sequentials
/// and residual blocks) and emits one PlanOp per module — including
/// dropout and standalone batch-norm nodes; folding and elision are
/// passes, not lowering decisions. When `state` is non-null, weights with
/// a mask deploy via CsrMatrix::from_masked (faithful topology); others
/// fall back to from_dense(dense_eps).
Plan lower(nn::Sequential& model, const sparse::SparseModel* state = nullptr,
           float dense_eps = 0.0f);

/// The modules lowering draws serve-relevant state from, in lowering
/// order: `sparse[i]` is the Linear/Conv2d whose weights became the
/// PlanOp(s) with sparse_ordinal i, `bns[i]` the BatchNorm behind
/// bn_ordinal i. Delta patching (serve/delta.*) re-reads weights through
/// this index instead of re-walking the whole tree.
struct LoweredModules {
  std::vector<nn::Module*> sparse;  ///< nn::Linear or nn::Conv2d
  std::vector<nn::BatchNorm*> bns;
};

/// Walks `model` in exactly lower()'s order (nested Sequentials in
/// child order; residual blocks main path, then shortcut) and collects
/// the ordinal-indexed modules.
LoweredModules collect_lowered_modules(nn::Sequential& model);

/// Eval-mode batch-norm as a per-channel affine: scale = γ/√(σ²+ε),
/// shift = β − μ·scale (double-precision intermediates). Shared by
/// lowering, FoldBatchNorm and the delta re-fold path.
void bn_scale_shift(const nn::BatchNorm& bn, std::vector<float>& scale,
                    std::vector<float>& shift);

}  // namespace dstee::serve
