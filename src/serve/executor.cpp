#include "serve/executor.hpp"

#include <type_traits>
#include <utility>

#include "kernels/epilogue.hpp"
#include "kernels/pool.hpp"
#include "obs/clock.hpp"
#include "obs/trace.hpp"
#include "sparse/flops.hpp"
#include "tensor/im2col.hpp"
#include "util/check.hpp"
#include "util/string_util.hpp"

namespace dstee::serve {

std::shared_ptr<const sparse::CsrMatrix> CloneContext::dup(
    const std::shared_ptr<const sparse::CsrMatrix>& csr) {
  if (share_ != nullptr && share_->count(csr.get()) > 0) return csr;
  auto it = copies_.find(csr.get());
  if (it == copies_.end()) {
    it = copies_.emplace(csr.get(),
                         std::make_shared<const sparse::CsrMatrix>(*csr))
             .first;
  }
  return it->second;
}

std::shared_ptr<const sparse::QCsrMatrix> CloneContext::dup(
    const std::shared_ptr<const sparse::QCsrMatrix>& qcsr) {
  if (share_ != nullptr && share_->count(qcsr.get()) > 0) return qcsr;
  auto it = qcopies_.find(qcsr.get());
  if (it == qcopies_.end()) {
    it = qcopies_.emplace(qcsr.get(),
                          std::make_shared<const sparse::QCsrMatrix>(*qcsr))
             .first;
  }
  return it->second;
}

tensor::Tensor EvalOp::run(const tensor::Tensor& x) const {
  (void)x;
  util::fail("EvalOp: unary run() on an op of arity " +
             std::to_string(arity()));
}

tensor::Tensor EvalOp::run2(const tensor::Tensor& a,
                            const tensor::Tensor& b) const {
  (void)a;
  (void)b;
  util::fail("EvalOp: binary run2() on an op of arity " +
             std::to_string(arity()));
}

tensor::Tensor EvalOp::run_many(
    const std::vector<const tensor::Tensor*>& xs) const {
  (void)xs;
  util::fail("EvalOp: run_many() on an op of arity " +
             std::to_string(arity()));
}

namespace {

const char* act_name(ActKind act) {
  switch (act) {
    case ActKind::kRelu:
      return "relu";
    case ActKind::kLeakyRelu:
      return "leaky_relu";
    case ActKind::kSigmoid:
      return "sigmoid";
    case ActKind::kTanh:
      return "tanh";
  }
  return "?";
}

/// Common state of the CSR-backed ops: shared weights, bias, the
/// folded-BN marker, and the FuseEpilogue annotation the op lowers into
/// a kernels::Epilogue (folding and fusion both happen at the plan
/// level, before binding — see serve::FoldBatchNorm / serve::FuseEpilogue).
///
/// Templated over the weight type: M is sparse::CsrMatrix (fp32) or
/// sparse::QCsrMatrix (int8 + per-row scales, from QuantizeWeights). The
/// two expose the same kernel surface, so one op body serves both; FLOPs
/// stay nnz-based either way (an int8 multiply-accumulate counts like an
/// fp32 one — quantization moves bytes, not operation counts). The op
/// also pins the kernel backend chosen at bind time (nullptr = defer
/// each call to the process-wide active backend).
template <typename M>
class CsrOp : public EvalOp {
 public:
  static constexpr bool kQuantized =
      std::is_same_v<M, sparse::QCsrMatrix>;

  CsrOp(std::shared_ptr<const M> csr, tensor::Tensor bias, bool has_bias,
        bool folded_bn, PlanEpilogue pe,
        const kernels::simd::KernelBackend* backend)
      : csr_(std::move(csr)),
        bias_(std::move(bias)),
        has_bias_(has_bias),
        folded_bn_(folded_bn),
        pe_(pe),
        backend_(backend) {}

  const M& csr() const { return *csr_; }

  /// A residual-fused CSR op consumes the residual as its second input.
  std::size_t arity() const override { return pe_.add_residual ? 2 : 1; }

 protected:
  /// The kernels::Epilogue for this op: bias plus the fused annotation,
  /// with the residual pointer/stride supplied per call (layout is
  /// kernel-specific — see the kernel doc comments).
  kernels::Epilogue make_ep(const float* residual,
                            std::size_t residual_stride) const {
    kernels::Epilogue ep;
    if (has_bias_) ep.bias = bias_.raw();
    ep.residual = residual;
    ep.residual_stride = residual_stride;
    ep.has_act = pe_.has_act;
    ep.act = pe_.act;
    ep.slope = pe_.slope;
    return ep;
  }

  /// FLOPs the fused epilogue adds on top of the sparse product — one op
  /// per output element per fused stage, mirroring Plan::annotate.
  double ep_flops(double out_elems) const {
    double per_elem = 0.0;
    if (pe_.add_residual) per_elem += 1.0;
    if (pe_.has_act) per_elem += 1.0;
    return per_elem * out_elems;
  }

  std::string fused_suffix() const {
    if (pe_.empty()) return "";
    std::string out = ", fused(";
    if (pe_.add_residual) out += "add";
    if (pe_.has_act) {
      if (pe_.add_residual) out += "+";
      out += act_name(pe_.act);
    }
    return out + ")";
  }

  std::string csr_suffix() const {
    return "nnz=" + std::to_string(csr_->nnz()) + ", density=" +
           util::format_fixed(csr_->density() * 100.0, 1) + "%" +
           (kQuantized ? ", int8" : "") + (folded_bn_ ? ", +bn" : "") +
           fused_suffix() + ")";
  }

  std::shared_ptr<const M> csr_;
  tensor::Tensor bias_;
  bool has_bias_;
  bool folded_bn_;
  PlanEpilogue pe_;
  const kernels::simd::KernelBackend* backend_;
};

/// CSR Linear: y = act(spmm(x) + bias + residual) — bias and the fused
/// epilogue are applied inside the SpMM output loop.
template <typename M>
class SpmmOp final : public CsrOp<M> {
  using Base = CsrOp<M>;
  using Base::backend_;
  using Base::csr_;

 public:
  SpmmOp(std::shared_ptr<const M> csr, tensor::Tensor bias, bool has_bias,
         bool folded_bn, PlanEpilogue pe, runtime::IntraOp intra,
         const kernels::simd::KernelBackend* backend)
      : Base(std::move(csr), std::move(bias), has_bias, folded_bn, pe,
             backend),
        intra_(intra) {}

  std::unique_ptr<EvalOp> clone(CloneContext& ctx) const override {
    auto copy = std::make_unique<SpmmOp>(*this);
    copy->csr_ = ctx.dup(csr_);
    return copy;
  }

  tensor::Tensor run(const tensor::Tensor& x) const override {
    return csr_->spmm(x, intra_, this->make_ep(nullptr, 0), backend_);
  }

  tensor::Tensor run2(const tensor::Tensor& x,
                      const tensor::Tensor& residual) const override {
    util::check(residual.rank() == 2 && residual.dim(0) == x.dim(0) &&
                    residual.dim(1) == csr_->rows(),
                "fused spmm residual shape mismatch");
    return csr_->spmm(x, intra_,
                      this->make_ep(residual.raw(), csr_->rows()), backend_);
  }

  std::string describe() const override {
    return "spmm(" + std::to_string(csr_->rows()) + "x" +
           std::to_string(csr_->cols()) + ", " + this->csr_suffix();
  }

  tensor::Shape out_shape(const tensor::Shape& in) const override {
    return tensor::Shape({in.dim(0), csr_->rows()});
  }

  double flops(const tensor::Shape& in) const override {
    return sparse::linear_nnz_flops(csr_->nnz(), in.dim(0)) +
           this->ep_flops(static_cast<double>(in.dim(0) * csr_->rows()));
  }

  double dense_flops(const tensor::Shape& in) const override {
    return sparse::linear_nnz_flops(csr_->rows() * csr_->cols(), in.dim(0)) +
           this->ep_flops(static_cast<double>(in.dim(0) * csr_->rows()));
  }

 private:
  runtime::IntraOp intra_;
};

/// Conv geometry shared by the conv-shaped ops.
tensor::ConvGeometry conv_geometry_for(std::size_t in_channels,
                                       std::size_t kernel, std::size_t stride,
                                       std::size_t padding, std::size_t in_h,
                                       std::size_t in_w) {
  // Checked here (not just in run()) so shape/FLOPs propagation through
  // out_shape()/flops() fails cleanly instead of underflowing out_h().
  util::check(in_h + 2 * padding >= kernel && in_w + 2 * padding >= kernel,
              "spconv input smaller than kernel");
  tensor::ConvGeometry g;
  g.in_channels = in_channels;
  g.in_h = in_h;
  g.in_w = in_w;
  g.kernel_h = kernel;
  g.kernel_w = kernel;
  g.stride = stride;
  g.padding = padding;
  return g;
}

/// CSR conv: per-image im2col, then Y = W_csr · cols over the patch
/// matrix, with optional folded BN and bias. The CSR matrix holds the
/// masked weight viewed as [Cout, Cin·K·K] — the exact lowering
/// nn::Conv2d uses densely, so a masked checkpoint deploys its trained
/// topology bit-for-bit.
template <typename M>
class ConvOp final : public CsrOp<M> {
  using Base = CsrOp<M>;
  using Base::backend_;
  using Base::csr_;

 public:
  ConvOp(std::shared_ptr<const M> csr, std::size_t in_channels,
         std::size_t kernel, std::size_t stride, std::size_t padding,
         tensor::Tensor bias, bool has_bias, bool folded_bn, PlanEpilogue pe,
         runtime::IntraOp intra, const kernels::simd::KernelBackend* backend)
      : Base(std::move(csr), std::move(bias), has_bias, folded_bn, pe,
             backend),
        in_channels_(in_channels),
        kernel_(kernel),
        stride_(stride),
        padding_(padding),
        intra_(intra) {}

  std::unique_ptr<EvalOp> clone(CloneContext& ctx) const override {
    auto copy = std::make_unique<ConvOp>(*this);
    copy->csr_ = ctx.dup(csr_);
    return copy;
  }

  tensor::Tensor run(const tensor::Tensor& x) const override {
    return run_impl(x, nullptr);
  }

  tensor::Tensor run2(const tensor::Tensor& x,
                      const tensor::Tensor& residual) const override {
    util::check(residual.rank() == 4 && residual.dim(0) == x.dim(0) &&
                    residual.dim(1) == csr_->rows(),
                "fused spconv residual shape mismatch");
    return run_impl(x, residual.raw());
  }

  std::string describe() const override {
    return "spconv(" + std::to_string(in_channels_) + "->" +
           std::to_string(csr_->rows()) + ", k" + std::to_string(kernel_) +
           ", s" + std::to_string(stride_) + ", p" +
           std::to_string(padding_) + ", " + this->csr_suffix();
  }

  tensor::Shape out_shape(const tensor::Shape& in) const override {
    const tensor::ConvGeometry g = conv_geometry_for(
        in_channels_, kernel_, stride_, padding_, in.dim(2), in.dim(3));
    return tensor::Shape({in.dim(0), csr_->rows(), g.out_h(), g.out_w()});
  }

  double flops(const tensor::Shape& in) const override {
    const tensor::ConvGeometry g = conv_geometry_for(
        in_channels_, kernel_, stride_, padding_, in.dim(2), in.dim(3));
    return sparse::conv_nnz_flops(csr_->nnz(), g.out_h(), g.out_w(),
                                  in.dim(0)) +
           this->ep_flops(static_cast<double>(in.dim(0) * csr_->rows() *
                                              g.out_h() * g.out_w()));
  }

  double dense_flops(const tensor::Shape& in) const override {
    const tensor::ConvGeometry g = conv_geometry_for(
        in_channels_, kernel_, stride_, padding_, in.dim(2), in.dim(3));
    return sparse::conv_nnz_flops(csr_->rows() * csr_->cols(), g.out_h(),
                                  g.out_w(), in.dim(0)) +
           this->ep_flops(static_cast<double>(in.dim(0) * csr_->rows() *
                                              g.out_h() * g.out_w()));
  }

 private:
  tensor::Tensor run_impl(const tensor::Tensor& x,
                          const float* res_base) const {
    const tensor::ConvGeometry g = geometry(x);
    const std::size_t batch = x.dim(0);
    const std::size_t oh = g.out_h(), ow = g.out_w();
    const std::size_t out_ch = csr_->rows();
    tensor::Tensor y({batch, out_ch, oh, ow});
    const std::size_t image_elems = in_channels_ * g.in_h * g.in_w;
    const std::size_t out_image_elems = out_ch * oh * ow;

    // Intra-op parallelism splits the batch on the persistent runtime
    // pool: images are independent, so every output element has exactly
    // one writer and the result is bit-identical for any chunk count.
    // Per-chunk im2col scratch keeps run() const and thread-safe. A
    // single image always runs inline (PartitionRows is the row-level
    // alternative for batch-1 latency). Bias and the fused epilogue are
    // applied by the kernel's per-row finish pass; the residual (laid
    // out like y) advances per image.
    runtime::intra_chunks(intra_, batch, [&](std::size_t n0,
                                             std::size_t n1) {
      tensor::Tensor cols({g.patch_size(), oh * ow});
      for (std::size_t n = n0; n < n1; ++n) {
        tensor::im2col(x.raw() + n * image_elems, g, cols);
        const float* res =
            res_base != nullptr ? res_base + n * out_image_elems : nullptr;
        csr_->spmm_cols_into(cols, y.raw() + n * out_image_elems,
                             this->make_ep(res, 0), backend_);
      }
    });
    return y;
  }

  tensor::ConvGeometry geometry(const tensor::Tensor& x) const {
    util::check(x.rank() == 4 && x.dim(1) == in_channels_,
                "spconv expects [N, " + std::to_string(in_channels_) +
                    ", H, W], got " + x.shape().to_string());
    return conv_geometry_for(in_channels_, kernel_, stride_, padding_,
                             x.dim(2), x.dim(3));
  }

  std::size_t in_channels_;
  std::size_t kernel_;
  std::size_t stride_;
  std::size_t padding_;
  runtime::IntraOp intra_;
};

/// Materialized im2col: [N, C, H, W] → the patch buffer [N, Cin·K·K,
/// OH, OW] every row slice of a partitioned conv reads. Emitted only by
/// PartitionRows, so the patches are computed once per batch instead of
/// once per slice.
class Im2colOp final : public EvalOp {
 public:
  Im2colOp(std::size_t in_channels, std::size_t kernel, std::size_t stride,
           std::size_t padding, runtime::IntraOp intra)
      : in_channels_(in_channels),
        kernel_(kernel),
        stride_(stride),
        padding_(padding),
        intra_(intra) {}

  std::unique_ptr<EvalOp> clone(CloneContext& ctx) const override {
    (void)ctx;
    return std::make_unique<Im2colOp>(*this);
  }

  tensor::Tensor run(const tensor::Tensor& x) const override {
    util::check(x.rank() == 4 && x.dim(1) == in_channels_,
                "im2col expects [N, " + std::to_string(in_channels_) +
                    ", H, W], got " + x.shape().to_string());
    const tensor::ConvGeometry g = conv_geometry_for(
        in_channels_, kernel_, stride_, padding_, x.dim(2), x.dim(3));
    const std::size_t batch = x.dim(0);
    const std::size_t oh = g.out_h(), ow = g.out_w();
    const std::size_t patch = g.patch_size();
    tensor::Tensor cols({batch, patch, oh, ow});
    const std::size_t image_elems = in_channels_ * g.in_h * g.in_w;
    const std::size_t cols_elems = patch * oh * ow;
    runtime::intra_chunks(intra_, batch, [&](std::size_t n0,
                                             std::size_t n1) {
      for (std::size_t n = n0; n < n1; ++n) {
        // Straight into the shared batch buffer — no per-image scratch.
        tensor::im2col(x.raw() + n * image_elems, g,
                       cols.raw() + n * cols_elems);
      }
    });
    return cols;
  }

  std::string describe() const override {
    return "im2col(" + std::to_string(in_channels_) + "ch, k" +
           std::to_string(kernel_) + ", s" + std::to_string(stride_) +
           ", p" + std::to_string(padding_) + ")";
  }

  tensor::Shape out_shape(const tensor::Shape& in) const override {
    const tensor::ConvGeometry g = conv_geometry_for(
        in_channels_, kernel_, stride_, padding_, in.dim(2), in.dim(3));
    return tensor::Shape(
        {in.dim(0), g.patch_size(), g.out_h(), g.out_w()});
  }

 private:
  std::size_t in_channels_;
  std::size_t kernel_;
  std::size_t stride_;
  std::size_t padding_;
  runtime::IntraOp intra_;
};

/// Rows [row_begin, row_end) of a partitioned CSR linear: the slice view
/// is zero-copy over the shared parent matrix; the bias was sliced at the
/// plan level. Slice kernels run inline — the partition group fan-out IS
/// the parallelism.
template <typename M>
class RowSliceSpmmOp final : public CsrOp<M> {
  using Base = CsrOp<M>;
  using Base::backend_;
  using Base::csr_;
  using Base::folded_bn_;

 public:
  RowSliceSpmmOp(std::shared_ptr<const M> csr, std::size_t row_begin,
                 std::size_t row_end, tensor::Tensor bias, bool has_bias,
                 bool folded_bn, PlanEpilogue pe,
                 const kernels::simd::KernelBackend* backend)
      : Base(std::move(csr), std::move(bias), has_bias, folded_bn, pe,
             backend),
        row_begin_(row_begin),
        row_end_(row_end) {}

  std::unique_ptr<EvalOp> clone(CloneContext& ctx) const override {
    auto copy = std::make_unique<RowSliceSpmmOp>(*this);
    copy->csr_ = ctx.dup(csr_);
    return copy;
  }

  tensor::Tensor run(const tensor::Tensor& x) const override {
    return csr_->row_slice(row_begin_, row_end_)
        .spmm(x, {}, this->make_ep(nullptr, 0), backend_);
  }

  tensor::Tensor run2(const tensor::Tensor& x,
                      const tensor::Tensor& residual) const override {
    // The residual edge produces the FULL output width; this slice adds
    // its own row range — pre-offset the pointer by row_begin and keep
    // the per-sample stride at the parent's row count.
    util::check(residual.rank() == 2 && residual.dim(0) == x.dim(0) &&
                    residual.dim(1) == csr_->rows(),
                "fused row_slice residual shape mismatch");
    return csr_->row_slice(row_begin_, row_end_)
        .spmm(x, {},
              this->make_ep(residual.raw() + row_begin_, csr_->rows()),
              backend_);
  }

  std::string describe() const override {
    return "row_slice(" + std::to_string(row_begin_) + ":" +
           std::to_string(row_end_) + " of " + std::to_string(csr_->rows()) +
           ", " +
           "nnz=" +
           std::to_string(csr_->row_slice(row_begin_, row_end_).nnz()) +
           (Base::kQuantized ? ", int8" : "") + (folded_bn_ ? ", +bn" : "") +
           this->fused_suffix() + ")";
  }

  tensor::Shape out_shape(const tensor::Shape& in) const override {
    return tensor::Shape({in.dim(0), row_end_ - row_begin_});
  }

  double flops(const tensor::Shape& in) const override {
    return sparse::linear_nnz_flops(
               csr_->row_slice(row_begin_, row_end_).nnz(), in.dim(0)) +
           this->ep_flops(static_cast<double>(in.dim(0) *
                                              (row_end_ - row_begin_)));
  }

  double dense_flops(const tensor::Shape& in) const override {
    return sparse::linear_nnz_flops(
               (row_end_ - row_begin_) * csr_->cols(), in.dim(0)) +
           this->ep_flops(static_cast<double>(in.dim(0) *
                                              (row_end_ - row_begin_)));
  }

 private:
  std::size_t row_begin_;
  std::size_t row_end_;
};

/// Output channels [row_begin, row_end) of a partitioned conv, reading
/// the shared Im2colOp patch buffer [N, P, OH, OW] — the patches are
/// computed once and every slice streams them.
template <typename M>
class RowSliceConvOp final : public CsrOp<M> {
  using Base = CsrOp<M>;
  using Base::backend_;
  using Base::csr_;
  using Base::folded_bn_;

 public:
  RowSliceConvOp(std::shared_ptr<const M> csr, std::size_t row_begin,
                 std::size_t row_end, tensor::Tensor bias, bool has_bias,
                 bool folded_bn, PlanEpilogue pe,
                 const kernels::simd::KernelBackend* backend)
      : Base(std::move(csr), std::move(bias), has_bias, folded_bn, pe,
             backend),
        row_begin_(row_begin),
        row_end_(row_end) {}

  std::unique_ptr<EvalOp> clone(CloneContext& ctx) const override {
    auto copy = std::make_unique<RowSliceConvOp>(*this);
    copy->csr_ = ctx.dup(csr_);
    return copy;
  }

  tensor::Tensor run(const tensor::Tensor& x) const override {
    return run_impl(x, nullptr, 0);
  }

  tensor::Tensor run2(const tensor::Tensor& x,
                      const tensor::Tensor& residual) const override {
    // The residual edge produces the full [N, Cout, OH, OW] map; this
    // slice adds channels [row_begin, row_end) of it.
    util::check(residual.rank() == 4 && residual.dim(0) == x.dim(0) &&
                    residual.dim(1) == csr_->rows() &&
                    residual.dim(2) == x.dim(2) &&
                    residual.dim(3) == x.dim(3),
                "fused conv row_slice residual shape mismatch");
    return run_impl(x, residual.raw(), csr_->rows());
  }

  std::string describe() const override {
    return "row_slice(" + std::to_string(row_begin_) + ":" +
           std::to_string(row_end_) + " of " + std::to_string(csr_->rows()) +
           ", conv, nnz=" +
           std::to_string(csr_->row_slice(row_begin_, row_end_).nnz()) +
           (Base::kQuantized ? ", int8" : "") + (folded_bn_ ? ", +bn" : "") +
           this->fused_suffix() + ")";
  }

  tensor::Shape out_shape(const tensor::Shape& in) const override {
    return tensor::Shape(
        {in.dim(0), row_end_ - row_begin_, in.dim(2), in.dim(3)});
  }

  double flops(const tensor::Shape& in) const override {
    return sparse::conv_nnz_flops(
               csr_->row_slice(row_begin_, row_end_).nnz(), in.dim(2),
               in.dim(3), in.dim(0)) +
           this->ep_flops(static_cast<double>(in.dim(0) *
                                              (row_end_ - row_begin_) *
                                              in.dim(2) * in.dim(3)));
  }

  double dense_flops(const tensor::Shape& in) const override {
    return sparse::conv_nnz_flops((row_end_ - row_begin_) * csr_->cols(),
                                  in.dim(2), in.dim(3), in.dim(0)) +
           this->ep_flops(static_cast<double>(in.dim(0) *
                                              (row_end_ - row_begin_) *
                                              in.dim(2) * in.dim(3)));
  }

 private:
  tensor::Tensor run_impl(const tensor::Tensor& x, const float* res_base,
                          std::size_t ch_total) const {
    util::check(x.rank() == 4 && x.dim(1) == csr_->cols(),
                "conv row_slice expects the [N, Cin*K*K, OH, OW] patch "
                "buffer, got " +
                    x.shape().to_string());
    const auto slice = csr_->row_slice(row_begin_, row_end_);
    const std::size_t batch = x.dim(0);
    const std::size_t oh = x.dim(2), ow = x.dim(3);
    const std::size_t positions = oh * ow;
    const std::size_t patch = csr_->cols();
    tensor::Tensor y({batch, slice.rows(), oh, ow});
    for (std::size_t n = 0; n < batch; ++n) {
      // The per-sample residual pointer addresses this slice's channel
      // block of the full residual map.
      const float* res =
          res_base != nullptr
              ? res_base + (n * ch_total + row_begin_) * positions
              : nullptr;
      slice.spmm_cols_into(x.raw() + n * patch * positions, positions,
                           y.raw() + n * slice.rows() * positions,
                           this->make_ep(res, 0), backend_);
    }
    return y;
  }

  std::size_t row_begin_;
  std::size_t row_end_;
};

/// Joins partition slices along axis 1 (features / channels): the slices
/// of one group produce contiguous row ranges, so the join is a straight
/// block copy per sample.
class ConcatChannelsOp final : public EvalOp {
 public:
  explicit ConcatChannelsOp(std::size_t total_channels)
      : total_channels_(total_channels) {}

  std::unique_ptr<EvalOp> clone(CloneContext& ctx) const override {
    (void)ctx;
    return std::make_unique<ConcatChannelsOp>(*this);
  }

  std::size_t arity() const override { return 0; }  // variadic

  tensor::Tensor run2(const tensor::Tensor& a,
                      const tensor::Tensor& b) const override {
    return run_many({&a, &b});
  }

  tensor::Tensor run_many(
      const std::vector<const tensor::Tensor*>& xs) const override {
    util::check(xs.size() >= 2, "concat needs >= 2 inputs");
    const tensor::Tensor& first = *xs.front();
    const std::size_t batch = first.dim(0);
    const std::size_t spatial =
        first.rank() == 4 ? first.dim(2) * first.dim(3) : 1;
    std::size_t channels = 0;
    for (const tensor::Tensor* x : xs) {
      util::check(x->rank() == first.rank() && x->dim(0) == batch,
                  "concat inputs disagree on batch/rank");
      channels += x->dim(1);
    }
    util::check(channels == total_channels_,
                "concat produced " + std::to_string(channels) +
                    " channels, expected " +
                    std::to_string(total_channels_));
    tensor::Tensor y(first.rank() == 4
                         ? tensor::Shape({batch, channels, first.dim(2),
                                          first.dim(3)})
                         : tensor::Shape({batch, channels}));
    for (std::size_t n = 0; n < batch; ++n) {
      float* dst = y.raw() + n * channels * spatial;
      for (const tensor::Tensor* x : xs) {
        const std::size_t block = x->dim(1) * spatial;
        const float* src = x->raw() + n * block;
        for (std::size_t i = 0; i < block; ++i) dst[i] = src[i];
        dst += block;
      }
    }
    return y;
  }

  std::string describe() const override {
    return "concat(" + std::to_string(total_channels_) + ")";
  }

  tensor::Shape out_shape(const tensor::Shape& in) const override {
    std::vector<std::size_t> dims = in.dims();
    dims[1] = total_channels_;
    return tensor::Shape(dims);
  }

 private:
  std::size_t total_channels_;
};

/// Residual join: y = a + b, optionally through ReLU — the lowering of
/// models::ResidualBlock's add-then-activate tail.
class AddOp final : public EvalOp {
 public:
  AddOp(bool relu, runtime::IntraOp intra,
        const kernels::simd::KernelBackend* backend)
      : relu_(relu), intra_(intra), backend_(backend) {}

  std::unique_ptr<EvalOp> clone(CloneContext& ctx) const override {
    (void)ctx;
    return std::make_unique<AddOp>(*this);
  }

  std::size_t arity() const override { return 2; }

  tensor::Tensor run2(const tensor::Tensor& a,
                      const tensor::Tensor& b) const override {
    util::check(a.shape() == b.shape(),
                "residual add branches disagree: " + a.shape().to_string() +
                    " vs " + b.shape().to_string());
    kernels::Epilogue ep;
    ep.residual = b.raw();
    ep.has_act = relu_;
    return kernels::apply_epilogue(a, ep, intra_, backend_);
  }

  std::string describe() const override {
    return relu_ ? "add_relu" : "add";
  }

 private:
  bool relu_;
  runtime::IntraOp intra_;
  const kernels::simd::KernelBackend* backend_;
};

/// Eval-mode batch-norm not folded into a CSR op: y = x·scale + shift per
/// channel, over [N, C] or [N, C, H, W].
class ScaleShiftOp final : public EvalOp {
 public:
  ScaleShiftOp(std::vector<float> scale, std::vector<float> shift, bool rank4)
      : scale_(std::move(scale)), shift_(std::move(shift)), rank4_(rank4) {}

  std::unique_ptr<EvalOp> clone(CloneContext& ctx) const override {
    (void)ctx;
    return std::make_unique<ScaleShiftOp>(*this);
  }

  tensor::Tensor run(const tensor::Tensor& x) const override {
    const std::size_t c = scale_.size();
    if (rank4_) {
      util::check(x.rank() == 4 && x.dim(1) == c,
                  "scale_shift expects [N, C, H, W]");
    } else {
      util::check(x.rank() == 2 && x.dim(1) == c,
                  "scale_shift expects [N, C]");
    }
    const std::size_t sp = rank4_ ? x.dim(2) * x.dim(3) : 1;
    tensor::Tensor y(x.shape());
    for (std::size_t n = 0; n < x.dim(0); ++n) {
      for (std::size_t ch = 0; ch < c; ++ch) {
        const float* src = x.raw() + (n * c + ch) * sp;
        float* dst = y.raw() + (n * c + ch) * sp;
        for (std::size_t i = 0; i < sp; ++i) {
          dst[i] = src[i] * scale_[ch] + shift_[ch];
        }
      }
    }
    return y;
  }

  std::string describe() const override {
    return "scale_shift(" + std::to_string(scale_.size()) + ")";
  }

 private:
  std::vector<float> scale_;
  std::vector<float> shift_;
  bool rank4_;
};

class ActivationOp final : public EvalOp {
 public:
  ActivationOp(ActKind kind, runtime::IntraOp intra, float slope,
               const kernels::simd::KernelBackend* backend)
      : kind_(kind), slope_(slope), intra_(intra), backend_(backend) {}

  std::unique_ptr<EvalOp> clone(CloneContext& ctx) const override {
    (void)ctx;
    return std::make_unique<ActivationOp>(*this);
  }

  tensor::Tensor run(const tensor::Tensor& x) const override {
    kernels::Epilogue ep;
    ep.has_act = true;
    ep.act = kind_;
    ep.slope = slope_;
    return kernels::apply_epilogue(x, ep, intra_, backend_);
  }

  std::string describe() const override { return act_name(kind_); }

 private:
  ActKind kind_;
  float slope_;
  runtime::IntraOp intra_;
  const kernels::simd::KernelBackend* backend_;
};

/// Eval-time dropout when ElideDropout was disabled: inverted dropout is
/// the identity at inference, but the node stays visible in summaries.
class IdentityDropoutOp final : public EvalOp {
 public:
  std::unique_ptr<EvalOp> clone(CloneContext& ctx) const override {
    (void)ctx;
    return std::make_unique<IdentityDropoutOp>(*this);
  }

  tensor::Tensor run(const tensor::Tensor& x) const override { return x; }
  std::string describe() const override { return "dropout(identity)"; }
};

class FlattenOp final : public EvalOp {
 public:
  std::unique_ptr<EvalOp> clone(CloneContext& ctx) const override {
    (void)ctx;
    return std::make_unique<FlattenOp>(*this);
  }

  tensor::Tensor run(const tensor::Tensor& x) const override {
    util::check(x.rank() >= 1, "flatten expects a batched tensor");
    const std::size_t batch = x.dim(0);
    return x.reshaped(tensor::Shape({batch, x.numel() / batch}));
  }
  std::string describe() const override { return "flatten"; }
  tensor::Shape out_shape(const tensor::Shape& in) const override {
    return tensor::Shape({in.dim(0), in.numel() / in.dim(0)});
  }
};

class MaxPoolOp final : public EvalOp {
 public:
  MaxPoolOp(std::size_t kernel, std::size_t stride, runtime::IntraOp intra)
      : kernel_(kernel), stride_(stride), intra_(intra) {}

  std::unique_ptr<EvalOp> clone(CloneContext& ctx) const override {
    (void)ctx;
    return std::make_unique<MaxPoolOp>(*this);
  }

  tensor::Tensor run(const tensor::Tensor& x) const override {
    return kernels::maxpool2d(x, kernel_, stride_, nullptr, intra_);
  }

  std::string describe() const override {
    return "maxpool(k" + std::to_string(kernel_) + ",s" +
           std::to_string(stride_) + ")";
  }

  tensor::Shape out_shape(const tensor::Shape& in) const override {
    util::check(in.rank() == 4 && in.dim(2) >= kernel_ &&
                    in.dim(3) >= kernel_,
                "maxpool input smaller than window");
    return tensor::Shape({in.dim(0), in.dim(1),
                          (in.dim(2) - kernel_) / stride_ + 1,
                          (in.dim(3) - kernel_) / stride_ + 1});
  }

 private:
  std::size_t kernel_;
  std::size_t stride_;
  runtime::IntraOp intra_;
};

class AvgPoolOp final : public EvalOp {
 public:
  AvgPoolOp(std::size_t kernel, runtime::IntraOp intra)
      : kernel_(kernel), intra_(intra) {}

  std::unique_ptr<EvalOp> clone(CloneContext& ctx) const override {
    (void)ctx;
    return std::make_unique<AvgPoolOp>(*this);
  }

  tensor::Tensor run(const tensor::Tensor& x) const override {
    return kernels::avgpool2d(x, kernel_, intra_);
  }

  std::string describe() const override {
    return "avgpool(k" + std::to_string(kernel_) + ")";
  }

  tensor::Shape out_shape(const tensor::Shape& in) const override {
    util::check(in.rank() == 4 && in.dim(2) >= kernel_ &&
                    in.dim(3) >= kernel_,
                "avgpool input smaller than window");
    return tensor::Shape({in.dim(0), in.dim(1), in.dim(2) / kernel_,
                          in.dim(3) / kernel_});
  }

 private:
  std::size_t kernel_;
  runtime::IntraOp intra_;
};

class GlobalAvgPoolOp final : public EvalOp {
 public:
  explicit GlobalAvgPoolOp(runtime::IntraOp intra) : intra_(intra) {}

  std::unique_ptr<EvalOp> clone(CloneContext& ctx) const override {
    (void)ctx;
    return std::make_unique<GlobalAvgPoolOp>(*this);
  }

  tensor::Tensor run(const tensor::Tensor& x) const override {
    return kernels::global_avg_pool(x, intra_);
  }
  std::string describe() const override { return "global_avg_pool"; }
  tensor::Shape out_shape(const tensor::Shape& in) const override {
    return tensor::Shape({in.dim(0), in.dim(1)});
  }

 private:
  runtime::IntraOp intra_;
};

std::unique_ptr<EvalOp> bind_op(PlanOp& op, const runtime::IntraOp& intra,
                                const kernels::simd::KernelBackend* backend) {
  switch (op.kind) {
    case PlanOpKind::kSpmm:
      if (op.qcsr != nullptr) {
        return std::make_unique<SpmmOp<sparse::QCsrMatrix>>(
            std::move(op.qcsr), std::move(op.bias), op.has_bias,
            op.folded_bn, op.epilogue, intra, backend);
      }
      return std::make_unique<SpmmOp<sparse::CsrMatrix>>(
          std::move(op.csr), std::move(op.bias), op.has_bias, op.folded_bn,
          op.epilogue, intra, backend);
    case PlanOpKind::kConv:
      if (op.qcsr != nullptr) {
        return std::make_unique<ConvOp<sparse::QCsrMatrix>>(
            std::move(op.qcsr), op.in_channels, op.kernel, op.stride,
            op.padding, std::move(op.bias), op.has_bias, op.folded_bn,
            op.epilogue, intra, backend);
      }
      return std::make_unique<ConvOp<sparse::CsrMatrix>>(
          std::move(op.csr), op.in_channels, op.kernel, op.stride,
          op.padding, std::move(op.bias), op.has_bias, op.folded_bn,
          op.epilogue, intra, backend);
    case PlanOpKind::kIm2col:
      return std::make_unique<Im2colOp>(op.in_channels, op.kernel, op.stride,
                                        op.padding, intra);
    case PlanOpKind::kRowSlice:
      if (op.conv_slice) {
        if (op.qcsr != nullptr) {
          return std::make_unique<RowSliceConvOp<sparse::QCsrMatrix>>(
              std::move(op.qcsr), op.row_begin, op.row_end,
              std::move(op.bias), op.has_bias, op.folded_bn, op.epilogue,
              backend);
        }
        return std::make_unique<RowSliceConvOp<sparse::CsrMatrix>>(
            std::move(op.csr), op.row_begin, op.row_end, std::move(op.bias),
            op.has_bias, op.folded_bn, op.epilogue, backend);
      }
      if (op.qcsr != nullptr) {
        return std::make_unique<RowSliceSpmmOp<sparse::QCsrMatrix>>(
            std::move(op.qcsr), op.row_begin, op.row_end, std::move(op.bias),
            op.has_bias, op.folded_bn, op.epilogue, backend);
      }
      return std::make_unique<RowSliceSpmmOp<sparse::CsrMatrix>>(
          std::move(op.csr), op.row_begin, op.row_end, std::move(op.bias),
          op.has_bias, op.folded_bn, op.epilogue, backend);
    case PlanOpKind::kConcatChannels: {
      // Total channels = sum of slice row counts, known statically.
      return std::make_unique<ConcatChannelsOp>(op.row_end - op.row_begin);
    }
    case PlanOpKind::kScaleShift:
      return std::make_unique<ScaleShiftOp>(std::move(op.scale),
                                            std::move(op.shift), op.rank4);
    case PlanOpKind::kActivation:
      return std::make_unique<ActivationOp>(op.act, intra, op.slope,
                                            backend);
    case PlanOpKind::kDropout:
      return std::make_unique<IdentityDropoutOp>();
    case PlanOpKind::kFlatten:
      return std::make_unique<FlattenOp>();
    case PlanOpKind::kMaxPool:
      return std::make_unique<MaxPoolOp>(op.pool_kernel, op.pool_stride,
                                         intra);
    case PlanOpKind::kAvgPool:
      return std::make_unique<AvgPoolOp>(op.pool_kernel, intra);
    case PlanOpKind::kGlobalAvgPool:
      return std::make_unique<GlobalAvgPoolOp>(intra);
    case PlanOpKind::kAdd:
      return std::make_unique<AddOp>(op.relu_after_add, intra, backend);
  }
  util::fail("unreachable plan op kind");
}

}  // namespace

Executor Executor::bind(Plan&& plan, const runtime::IntraOp& intra,
                        const kernels::simd::KernelBackend* backend,
                        std::shared_ptr<obs::OpProfile> profile) {
  plan.validate();
  Executor exec;
  exec.intra_ = intra;
  exec.profile_ = std::move(profile);
  exec.nodes_.reserve(plan.ops.size());
  exec.op_names_.reserve(plan.ops.size());
  exec.group_start_.assign(plan.ops.size(), 0);

  // Input validation data, read off the plan before binding moves the
  // weights: a CSR linear head fixes the feature count whether it is
  // whole (kSpmm) or the first slice of a partitioned linear.
  {
    const PlanOp& head = plan.ops.front();
    const bool linear_head =
        head.kind == PlanOpKind::kSpmm ||
        (head.kind == PlanOpKind::kRowSlice && !head.conv_slice);
    if (linear_head && head.inputs.front() == Plan::kInputId) {
      exec.input_features_ =
          head.csr != nullptr ? head.csr->cols() : head.qcsr->cols();
    }
  }

  for (std::size_t i = 0; i < plan.ops.size(); ++i) {
    PlanOp& op = plan.ops[i];
    // A concat node carries its total channel count through row_begin/
    // row_end of its sources; compute it before the csr pointers move.
    if (op.kind == PlanOpKind::kConcatChannels) {
      std::size_t total = 0;
      for (const std::size_t in : op.inputs) {
        total += plan.ops[in].row_end - plan.ops[in].row_begin;
      }
      op.row_begin = 0;
      op.row_end = total;
    }
    // Record parallel slice groups before binding (bind moves fields).
    if (op.kind == PlanOpKind::kRowSlice &&
        op.partition_group != PlanOp::kNoGroup &&
        (i == 0 || plan.ops[i - 1].kind != PlanOpKind::kRowSlice ||
         plan.ops[i - 1].partition_group != op.partition_group)) {
      Group g;
      g.first = i;
      g.count = 1;
      for (std::size_t j = i + 1;
           j < plan.ops.size() &&
           plan.ops[j].kind == PlanOpKind::kRowSlice &&
           plan.ops[j].partition_group == op.partition_group;
           ++j) {
        ++g.count;
      }
      if (g.count > 1) {
        exec.groups_.push_back(g);
        exec.group_start_[i] = exec.groups_.size();
      }
    }
  }
  for (std::size_t i = 0; i < plan.ops.size(); ++i) {
    PlanOp& op = plan.ops[i];
    exec.op_names_.push_back(to_string(op.kind));
    std::vector<std::size_t> inputs = op.inputs;
    exec.nodes_.push_back(
        OpNode{bind_op(op, intra, backend), std::move(inputs)});
  }
  exec.release_after_ = std::move(plan.release_after);
  return exec;
}

const Executor::OpNode& Executor::node(std::size_t i) const {
  util::check(i < nodes_.size(), "executor node index out of range");
  return nodes_[i];
}

void Executor::run_node(std::size_t i, std::vector<tensor::Tensor>& values,
                        const tensor::Tensor& x) const {
  const OpNode& node = nodes_[i];
  auto value_of = [&](std::size_t id) -> const tensor::Tensor& {
    return id == kInputId ? x : values[id];
  };
  if (node.inputs.size() == 1) {
    values[i] = node.op->run(value_of(node.inputs[0]));
  } else if (node.inputs.size() == 2) {
    values[i] = node.op->run2(value_of(node.inputs[0]),
                              value_of(node.inputs[1]));
  } else {
    std::vector<const tensor::Tensor*> xs;
    xs.reserve(node.inputs.size());
    for (const std::size_t in : node.inputs) xs.push_back(&value_of(in));
    values[i] = node.op->run_many(xs);
  }
}

tensor::Tensor Executor::forward(const tensor::Tensor& x) const {
  // nodes_ is non-empty (checked at bind). Intermediates are released per
  // the FreeAfterLastUse annotation, so peak memory tracks the graph's
  // width; without the pass everything stays live until return.
  std::vector<tensor::Tensor> values(nodes_.size());
  auto release = [&](std::size_t i) {
    if (release_after_.empty()) return;
    for (const std::size_t id : release_after_[i]) {
      values[id] = tensor::Tensor();
    }
  };
  // Per-op instrumentation is armed only when someone can observe it: a
  // bound profile, or an active trace id on this thread (the server's
  // worker loop opens a ThreadTraceScope around sampled batches). The
  // common case — neither — pays two loads up front and nothing per op.
  obs::OpProfile* const prof = profile_.get();
  const std::uint64_t tid = obs::current_trace_id();
  const bool instrument = prof != nullptr || tid != 0;
  auto timed_run = [&](std::size_t i, std::vector<tensor::Tensor>& vals) {
    const std::int64_t t0 = obs::now_ns();
    run_node(i, vals, x);
    const std::int64_t dt = obs::now_ns() - t0;
    if (prof != nullptr) prof->add(i, dt);
    obs::trace().record(tid, obs::SpanKind::kOp, op_names_[i], t0, dt, i);
  };
  for (std::size_t i = 0; i < nodes_.size();) {
    if (group_start_[i] != 0) {
      // A partition group: sibling row slices of one split, each writing
      // its own values[] slot — one fan-out on the pool executes them
      // concurrently, the point of PartitionRows. Releases wait until the
      // whole group is done (a shared patch buffer must outlive every
      // slice).
      const Group& g = groups_[group_start_[i] - 1];
      runtime::pool_of(intra_).run_chunks(
          g.count, g.count, [&](std::size_t b0, std::size_t b1) {
            for (std::size_t j = b0; j < b1; ++j) {
              if (instrument) {
                timed_run(g.first + j, values);
              } else {
                run_node(g.first + j, values, x);
              }
            }
          });
      for (std::size_t j = 0; j < g.count; ++j) release(g.first + j);
      i += g.count;
      continue;
    }
    if (instrument) {
      timed_run(i, values);
    } else {
      run_node(i, values, x);
    }
    release(i);
    ++i;
  }
  return std::move(values.back());
}

Executor Executor::clone() const {
  CloneContext ctx;
  return clone_with(ctx);
}

Executor Executor::clone_shared(
    const std::unordered_set<const void*>& shared) const {
  CloneContext ctx(&shared);
  return clone_with(ctx);
}

Executor Executor::clone_with(CloneContext& ctx) const {
  Executor copy;
  copy.nodes_.reserve(nodes_.size());
  for (const OpNode& node : nodes_) {
    copy.nodes_.push_back(OpNode{node.op->clone(ctx), node.inputs});
  }
  copy.release_after_ = release_after_;
  copy.groups_ = groups_;
  copy.group_start_ = group_start_;
  copy.intra_ = intra_;
  copy.input_features_ = input_features_;
  // The profile is shared ON PURPOSE: every replica of a model adds into
  // the same accumulator, so per-op times aggregate across shards.
  copy.profile_ = profile_;
  copy.op_names_ = op_names_;
  return copy;
}

double Executor::accumulate_flops(const tensor::Shape& sample_shape,
                                  bool dense) const {
  // Propagate a batch-1 shape through the graph, summing each node's cost.
  std::vector<std::size_t> dims;
  dims.reserve(sample_shape.rank() + 1);
  dims.push_back(1);
  for (std::size_t i = 0; i < sample_shape.rank(); ++i) {
    dims.push_back(sample_shape.dim(i));
  }
  const tensor::Shape input(dims);
  std::vector<tensor::Shape> shapes(nodes_.size());
  double total = 0.0;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const OpNode& node = nodes_[i];
    const std::size_t src = node.inputs.front();
    const tensor::Shape& in = src == kInputId ? input : shapes[src];
    total += dense ? node.op->dense_flops(in) : node.op->flops(in);
    shapes[i] = node.op->out_shape(in);
  }
  return total;
}

std::string Executor::describe_ops() const {
  std::string out;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    out += "  [" + std::to_string(i) + "] " + nodes_[i].op->describe();
    append_producers(out, i, nodes_[i].inputs);
    out += "\n";
  }
  return out;
}

}  // namespace dstee::serve
