#include "serve/fusion.hpp"

#include <algorithm>

#include "serve/pass_util.hpp"
#include "util/check.hpp"

namespace dstee::serve {

namespace {

bool is_csr_producer(const PlanOp& op) {
  // Only whole CSR nodes fuse — kRowSlice never appears before
  // PartitionRows, which runs after fusion and propagates epilogues onto
  // the slices itself.
  return op.kind == PlanOpKind::kSpmm || op.kind == PlanOpKind::kConv;
}

/// Absorbs the kActivation at `i` into its producer when the producer is
/// a single-consumer CSR node without an activation yet (a residual
/// already fused below it is fine — the epilogue activates after the
/// residual add, exactly the unfused order). Returns true when fused.
bool fuse_activation(Plan& plan, std::size_t i,
                     const std::vector<std::size_t>& uses) {
  const PlanOp& act = plan.ops[i];
  const std::size_t src = act.inputs.front();
  if (src == Plan::kInputId) return false;
  PlanOp& p = plan.ops[src];
  if (!is_csr_producer(p) || uses[src] != 1 || p.epilogue.has_act) {
    return false;
  }
  p.epilogue.has_act = true;
  p.epilogue.act = act.act;
  p.epilogue.slope = act.slope;
  plan.ops.erase(plan.ops.begin() + static_cast<std::ptrdiff_t>(i));
  detail::rewire_after_erase(plan, i, src);
  return true;
}

/// Absorbs the kAdd at `i` (and its optional trailing ReLU) into the
/// topologically later input when that input is a single-consumer CSR
/// node with an empty epilogue; the other edge becomes the fused
/// residual input. An activation already fused into the candidate blocks
/// the rewrite — act-then-add is not expressible as an epilogue.
bool fuse_residual_add(Plan& plan, std::size_t i,
                       const std::vector<std::size_t>& uses) {
  const PlanOp& add = plan.ops[i];
  const std::size_t a = add.inputs[0], b = add.inputs[1];
  if (a == b) return false;  // degenerate self-add: keep the node
  // kInputId is size_t(-1); treat it as "earliest", never the candidate.
  std::size_t main_id, res_id;
  if (a == Plan::kInputId) {
    main_id = b;
    res_id = a;
  } else if (b == Plan::kInputId) {
    main_id = a;
    res_id = b;
  } else {
    main_id = std::max(a, b);
    res_id = std::min(a, b);
  }
  if (main_id == Plan::kInputId) return false;
  PlanOp& p = plan.ops[main_id];
  if (!is_csr_producer(p) || uses[main_id] != 1 || !p.epilogue.empty()) {
    return false;
  }
  p.epilogue.add_residual = true;
  p.inputs.push_back(res_id);  // primary stays inputs[0]
  if (add.relu_after_add) {
    p.epilogue.has_act = true;
    p.epilogue.act = ActKind::kRelu;
  }
  plan.ops.erase(plan.ops.begin() + static_cast<std::ptrdiff_t>(i));
  detail::rewire_after_erase(plan, i, main_id);
  return true;
}

}  // namespace

void FuseEpilogue::run(Plan& plan) const {
  std::size_t i = 0;
  while (i < plan.ops.size()) {
    // Recomputed per step: each fusion rewires edges, and the guards are
    // all about consumer counts. Plans are small; the sweep matches
    // FoldBatchNorm's cost profile.
    const std::vector<std::size_t> uses = plan.use_counts();
    const PlanOpKind kind = plan.ops[i].kind;
    if (kind == PlanOpKind::kActivation && fuse_activation(plan, i, uses)) {
      continue;  // i now names the next op
    }
    if (kind == PlanOpKind::kAdd && fuse_residual_add(plan, i, uses)) {
      continue;
    }
    ++i;
  }
  plan.fused_ops = 0;
  for (const PlanOp& op : plan.ops) {
    if (!op.epilogue.empty()) ++plan.fused_ops;
  }
  detail::refresh_release_if_present(plan);
  plan.validate();
}

}  // namespace dstee::serve
