#include "serve/registry.hpp"

#include <algorithm>
#include <chrono>
#include <future>
#include <thread>
#include <unordered_set>
#include <utility>

#include "obs/clock.hpp"
#include "train/checkpoint.hpp"
#include "util/check.hpp"

namespace dstee::serve {

std::size_t autoscale_target(const AutoscalerConfig& config,
                             std::size_t active,
                             double mean_queue_per_shard, double p99_ms,
                             std::size_t& low_streak) {
  const std::size_t min_shards = std::max<std::size_t>(1, config.min_shards);
  const std::size_t max_shards = std::max(config.max_shards, min_shards);
  const auto clamped = [&](std::size_t n) {
    return std::clamp(n, min_shards, max_shards);
  };
  const bool hot =
      mean_queue_per_shard >= config.queue_high ||
      (config.p99_high_ms > 0.0 && p99_ms >= config.p99_high_ms);
  if (hot) {
    low_streak = 0;
    return clamped(active + 1);
  }
  const bool cold = mean_queue_per_shard <= config.queue_low &&
                    (config.p99_high_ms <= 0.0 || p99_ms < config.p99_high_ms);
  if (!cold) {
    low_streak = 0;
    return clamped(active);
  }
  if (++low_streak < std::max<std::size_t>(1, config.shrink_patience)) {
    return clamped(active);
  }
  low_streak = 0;
  return clamped(active > 1 ? active - 1 : 1);
}

ModelRegistry::ModelRegistry(obs::MetricsRegistry* metrics)
    : metrics_(metrics),
      evictions_(&metrics->counter("dstee_model_evictions_total", "",
                                   "Models removed from the registry")) {
  util::check(metrics != nullptr,
              "ModelRegistry requires a metrics registry");
}

ModelRegistry::~ModelRegistry() { shutdown(); }

void ModelRegistry::add_model(const std::string& name,
                              std::unique_ptr<nn::Sequential> module,
                              std::unique_ptr<sparse::SparseModel> state,
                              ModelOptions options) {
  util::check(!name.empty(), "ModelRegistry: model name must not be empty");
  util::check(module != nullptr,
              "ModelRegistry: model '" + name + "' has no module");

  // Wire the model's server into the registry's metrics registry under
  // the model name, unless the caller already routed it elsewhere.
  if (options.server.metrics == nullptr) options.server.metrics = metrics_;
  if (options.server.metrics_label.empty()) {
    options.server.metrics_label = name;
  }

  auto slot = std::make_unique<Slot>(std::move(options));
  if (slot->options.partition_ways >= 2) {
    PartitionRowsOptions popts;
    popts.ways = slot->options.partition_ways;
    popts.min_cost_share = slot->options.partition_min_cost_share;
    slot->compiler.add_pass(std::make_unique<PartitionRows>(popts));
  }
  slot->module = std::move(module);
  slot->state = std::move(state);

  std::shared_ptr<const CompiledNet> net;
  {
    util::MutexLock lock(slot->mu);
    net = recompile(*slot);
  }
  slot->server =
      std::make_unique<InferenceServer>(net, slot->options.server);

  util::MutexLock lock(mu_);
  for (const auto& existing : slots_) {
    // A removed slot's name is free for re-use: re-adding a model after
    // remove_model is part of the eviction contract.
    util::check(existing->name != name ||
                    existing->removed.load(std::memory_order_acquire),
                "ModelRegistry: duplicate model name '" + name + "'");
  }
  slot->name = name;
  slots_.push_back(std::move(slot));
  if (slots_.back()->options.autoscaler.enabled) start_autoscaler();
}

std::future<tensor::Tensor> ModelRegistry::submit(const std::string& name,
                                                  tensor::Tensor input) {
  return find(name).server->submit(std::move(input));
}

std::optional<std::future<tensor::Tensor>> ModelRegistry::try_submit(
    const std::string& name, tensor::Tensor input) {
  return find(name).server->try_submit(std::move(input));
}

SwapReport ModelRegistry::apply_delta(const std::string& name,
                                      const CheckpointDelta& delta) {
  Slot& slot = find(name);
  util::MutexLock lock(slot.mu);
  // find() raced a concurrent remove_model: the slot was decommissioned
  // (module/state freed) while we waited for the swap lock.
  util::check(!slot.removed.load(std::memory_order_acquire),
              "ModelRegistry: model '" + name + "' was removed");

  // Mutate the source-of-truth model first; this throws (mutating
  // nothing) when the delta's base hash does not match.
  serve::apply_delta(delta, *slot.module, slot.state.get());

  PlanPatch patch =
      apply_delta_to_plan(slot.base_plan, delta, *slot.module,
                          slot.state.get(), slot.options.compile.dense_eps);

  SwapReport report;
  report.total_weight_nodes = patch.total_weight_nodes;
  std::shared_ptr<const CompiledNet> net;
  std::unordered_set<const void*> untouched;
  if (patch.needs_full_recompile) {
    report.full_recompile = true;
    net = recompile(slot);
  } else {
    report.patched_weight_nodes = patch.patched_weight_nodes;
    report.patched_scale_shifts = patch.patched_scale_shifts;
    // Matrices present in BOTH the old and the patched plan were not
    // rebuilt: shard replicas may keep sharing them with the outgoing
    // version (see CompiledNet::clone_shared). Quantized matrices are
    // tracked by the same type-erased pointers.
    std::unordered_set<const void*> old_matrices;
    for (const PlanOp& op : slot.base_plan.ops) {
      if (op.csr != nullptr) old_matrices.insert(op.csr.get());
      if (op.qcsr != nullptr) old_matrices.insert(op.qcsr.get());
    }
    for (const PlanOp& op : patch.plan.ops) {
      if (op.csr != nullptr && old_matrices.count(op.csr.get()) > 0) {
        untouched.insert(op.csr.get());
      }
      if (op.qcsr != nullptr && old_matrices.count(op.qcsr.get()) > 0) {
        untouched.insert(op.qcsr.get());
      }
    }
    slot.base_plan = std::move(patch.plan);
    Plan bound = slot.base_plan;  // the copy keeps the seam alive
    net = std::make_shared<const CompiledNet>(
        slot.compiler.bind(std::move(bound)));
    slot.hash = delta.result_hash;
  }

  if (!untouched.empty()) {
    slot.server->swap(net, [&net, &untouched](std::size_t shard) {
      if (shard == 0) return net;
      return std::make_shared<const CompiledNet>(
          net->clone_shared(untouched));
    });
  } else {
    slot.server->swap(net);
  }
  report.swap_epoch = slot.server->swap_epoch();
  return report;
}

void ModelRegistry::swap_model(const std::string& name,
                               const std::string& checkpoint_path) {
  Slot& slot = find(name);
  util::MutexLock lock(slot.mu);
  util::check(!slot.removed.load(std::memory_order_acquire),
              "ModelRegistry: model '" + name + "' was removed");
  train::load_checkpoint(checkpoint_path, *slot.module, slot.state.get());
  slot.server->swap(recompile(slot));
}

void ModelRegistry::remove_model(const std::string& name) {
  Slot& slot = find(name);  // throws when unknown or already removed
  // Publish the removal first: find() stops handing the slot out, so no
  // new submits/swaps reach it. A submit that already routed wins or
  // loses the race against shutdown exactly like it does today — queued
  // requests drain, post-shutdown submits throw.
  slot.removed.store(true, std::memory_order_release);
  util::MutexLock lock(slot.mu);  // serialize with in-flight swaps
  slot.server->decommission();    // drain, join, release warm replicas
  // Release the training-side source of truth; the slot shell (stats,
  // config) stays for the lifetime of the registry.
  slot.module.reset();
  slot.state.reset();
  slot.base_plan = Plan{};
  slot.hash = 0;
  evictions_->add(1);
}

std::size_t ModelRegistry::scale_model(const std::string& name,
                                       std::size_t shards) {
  return find(name).server->scale_to(shards);
}

StatsSnapshot ModelRegistry::stats(const std::string& name) const {
  return find(name).server->stats();
}

std::size_t ModelRegistry::num_active_shards(const std::string& name) const {
  return find(name).server->num_active_shards();
}

std::size_t ModelRegistry::queue_depth(const std::string& name) const {
  return find(name).server->queue_depth();
}

std::uint64_t ModelRegistry::state_hash(const std::string& name) const {
  Slot& slot = find(name);
  util::MutexLock lock(slot.mu);
  return slot.hash;
}

std::vector<std::string> ModelRegistry::model_names() const {
  util::MutexLock lock(mu_);
  std::vector<std::string> names;
  names.reserve(slots_.size());
  for (const auto& slot : slots_) {
    if (!slot->removed.load(std::memory_order_acquire)) {
      names.push_back(slot->name);
    }
  }
  return names;
}

std::size_t ModelRegistry::num_models() const {
  util::MutexLock lock(mu_);
  std::size_t count = 0;
  for (const auto& slot : slots_) {
    if (!slot->removed.load(std::memory_order_acquire)) ++count;
  }
  return count;
}

bool ModelRegistry::has_model(const std::string& name) const {
  util::MutexLock lock(mu_);
  for (const auto& slot : slots_) {
    if (slot->name == name &&
        !slot->removed.load(std::memory_order_acquire)) {
      return true;
    }
  }
  return false;
}

void ModelRegistry::shutdown() {
  {
    util::MutexLock lock(as_mu_);
    as_stop_ = true;
  }
  as_cv_.notify_all();
  if (autoscaler_.joinable()) autoscaler_.join();
  util::MutexLock lock(mu_);
  for (const auto& slot : slots_) {
    if (slot->server != nullptr) slot->server->shutdown();
  }
}

ModelRegistry::Slot& ModelRegistry::find(const std::string& name) const {
  util::MutexLock lock(mu_);
  bool saw_removed = false;
  for (const auto& slot : slots_) {
    if (slot->name != name) continue;
    if (!slot->removed.load(std::memory_order_acquire)) return *slot;
    saw_removed = true;  // a re-added live slot may still follow
  }
  if (saw_removed) {
    util::fail("ModelRegistry: model '" + name + "' was removed");
  }
  util::fail("ModelRegistry: unknown model '" + name + "'");
}

std::shared_ptr<const CompiledNet> ModelRegistry::recompile(Slot& slot) {
  slot.base_plan = slot.compiler.plan(*slot.module, slot.state.get());
  slot.hash = model_state_hash(*slot.module, slot.state.get());
  Plan bound = slot.base_plan;  // the copy keeps the seam alive
  return std::make_shared<const CompiledNet>(
      slot.compiler.bind(std::move(bound)));
}

void ModelRegistry::start_autoscaler() {
  if (autoscaler_.joinable()) return;
  // dstee-lint: allow(raw-thread) -- registry-owned poller, joined in shutdown
  autoscaler_ = std::thread([this] { autoscale_loop(); });
}

void ModelRegistry::autoscale_loop() {
  for (;;) {
    double interval_ms = 50.0;
    std::vector<Slot*> scaled;
    {
      util::MutexLock lock(mu_);
      for (const auto& slot : slots_) {
        if (slot->options.autoscaler.enabled &&
            !slot->removed.load(std::memory_order_acquire)) {
          scaled.push_back(slot.get());
          interval_ms =
              std::min(interval_ms, slot->options.autoscaler.interval_ms);
        }
      }
    }
    const obs::Clock::time_point deadline =
        obs::now() +
        std::chrono::duration_cast<obs::Clock::duration>(
            std::chrono::duration<double, std::milli>(
                std::max(1.0, interval_ms)));
    {
      util::UniqueLock lock(as_mu_);
      while (!as_stop_ && obs::now() < deadline) {
        as_cv_.wait_until(lock, deadline);
      }
      if (as_stop_) return;
    }
    for (Slot* slot : scaled) {
      AutoscalerConfig cfg = slot->options.autoscaler;
      if (cfg.max_shards == 0) cfg.max_shards = slot->server->num_shards();
      const std::size_t active = slot->server->num_active_shards();
      const double mean_queue =
          static_cast<double>(slot->server->queue_depth()) /
          static_cast<double>(std::max<std::size_t>(1, active));
      const double p99 = cfg.p99_high_ms > 0.0
                             ? slot->server->stats().latency_p99_ms
                             : 0.0;
      const std::size_t target =
          autoscale_target(cfg, active, mean_queue, p99, slot->low_streak);
      if (target != active) slot->server->scale_to(target);
    }
  }
}

}  // namespace dstee::serve
