// FuseEpilogue: graph fusion over the Plan IR.
//
// Serving a sparse network spends most of its time in the CSR product
// kernels, but the unfused plan still walks every output tensor twice
// more for the elementwise tail — once for the activation, once for the
// residual join. FuseEpilogue absorbs those consumers into the producing
// CSR node as a PlanEpilogue annotation, which the executor lowers to a
// kernels::Epilogue applied inside the kernel's output loop while the
// value is still in register. Two patterns are matched, both under a
// single-consumer dataflow guard:
//
//   kSpmm/kConv → kActivation            producer gains the activation
//   {main, shortcut} → kAdd(+ReLU)       the topologically later CSR
//                                        input absorbs the add (the other
//                                        edge becomes the fused residual
//                                        input) and the optional ReLU
//
// Fusion is bit-identical to the unfused sequence: the epilogue applies
// bias → residual → activation in the producer's op order, activate()
// reproduces the standalone kernels op-for-op, and IEEE float addition is
// commutative bitwise so either kAdd operand order yields the same bits.
//
// Composition: run FuseEpilogue BEFORE PartitionRows — a split fused node
// propagates its epilogue (and residual edge) onto every row slice, each
// adding its own row range of the shared residual. Delta patching
// composes for free: apply_delta_to_plan rewrites csr/bias through the
// provenance ordinals and never touches the epilogue annotation.
#pragma once

#include "serve/passes.hpp"

namespace dstee::serve {

/// The epilogue-fusion pass. Stateless; safe to run on any valid plan
/// (plans with nothing to fuse are returned unchanged). Re-running is
/// idempotent — fused producers no longer match either pattern.
class FuseEpilogue final : public Pass {
 public:
  std::string name() const override { return "fuse_epilogue"; }
  void run(Plan& plan) const override;
};

}  // namespace dstee::serve
