#include "serve/server.hpp"

#include <chrono>

#include "util/check.hpp"

namespace dstee::serve {

namespace {

using Clock = std::chrono::steady_clock;

Clock::duration millis_duration(double ms) {
  return std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double, std::milli>(ms));
}

double millis_between(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

}  // namespace

InferenceServer::InferenceServer(const CompiledNet& net, ServerConfig config)
    : net_(&net), config_(config) {
  util::check(config_.num_threads >= 1, "server requires >= 1 worker thread");
  util::check(config_.max_batch >= 1, "server requires max_batch >= 1");
  util::check(config_.max_delay_ms >= 0.0,
              "server max_delay_ms must be non-negative");
  util::check(config_.queue_capacity >= config_.max_batch,
              "queue_capacity must be >= max_batch");
  workers_.reserve(config_.num_threads);
  for (std::size_t t = 0; t < config_.num_threads; ++t) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

InferenceServer::~InferenceServer() { shutdown(); }

std::future<tensor::Tensor> InferenceServer::submit(tensor::Tensor input) {
  util::check(input.rank() >= 1,
              "submit expects a sample without a batch axis, e.g. "
              "[features] or [C, H, W]");
  if (net_->input_features() != 0) {
    // A CSR-linear-first net pins the flat feature count; conv-first nets
    // validate [C, H, W] inside the first op instead.
    util::check(input.rank() == 1 &&
                    input.numel() == net_->input_features(),
                "sample has shape " + input.shape().to_string() +
                    ", net expects [" +
                    std::to_string(net_->input_features()) + "]");
  }
  std::unique_lock<std::mutex> lock(mu_);
  space_cv_.wait(lock, [&] {
    return stopping_ || queue_.size() < config_.queue_capacity;
  });
  util::check(!stopping_, "submit on a shut-down server");
  Request req;
  req.input = std::move(input);
  req.enqueued = Clock::now();
  std::future<tensor::Tensor> result = req.result.get_future();
  queue_.push_back(std::move(req));
  queue_cv_.notify_one();
  return result;
}

std::vector<InferenceServer::Request> InferenceServer::next_batch() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    queue_cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
    if (queue_.empty()) return {};  // stopping and fully drained

    // Micro-batch window: fill up to max_batch, but never keep the head
    // request waiting past its delay budget. The deadline is recomputed
    // from the CURRENT head each pass — another worker may have drained
    // the queue and a newer request become head, with a fresh window.
    // During shutdown flush at once.
    while (!stopping_ && !queue_.empty() &&
           queue_.size() < config_.max_batch) {
      const Clock::time_point deadline =
          queue_.front().enqueued + millis_duration(config_.max_delay_ms);
      if (Clock::now() >= deadline) break;  // head's window expired: flush
      queue_cv_.wait_until(lock, deadline);
    }
    if (queue_.empty()) continue;

    // Requests in one tensor must agree on sample shape; heterogeneous
    // traffic simply splits into per-shape batches.
    std::vector<Request> batch;
    const tensor::Shape sample_shape = queue_.front().input.shape();
    while (!queue_.empty() && batch.size() < config_.max_batch &&
           queue_.front().input.shape() == sample_shape) {
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    space_cv_.notify_all();
    return batch;
  }
}

void InferenceServer::worker_loop() {
  for (;;) {
    std::vector<Request> batch = next_batch();
    if (batch.empty()) return;

    const std::size_t b = batch.size();
    const std::size_t sample_elems = batch[0].input.numel();
    tensor::Tensor x{batch[0].input.shape().prepended(b)};
    for (std::size_t i = 0; i < b; ++i) {
      float* dst = x.raw() + i * sample_elems;
      const float* src = batch[i].input.raw();
      for (std::size_t j = 0; j < sample_elems; ++j) dst[j] = src[j];
    }

    std::vector<double> latencies_ms;
    latencies_ms.reserve(b);
    std::size_t fulfilled = 0;  // promises already satisfied by set_value
    try {
      const tensor::Tensor y = net_->forward(x);
      util::check(y.rank() >= 1 && y.dim(0) == b && y.numel() % b == 0,
                  "compiled forward returned a non-batched result");
      const std::size_t out = y.numel() / b;
      const Clock::time_point done = Clock::now();
      for (std::size_t i = 0; i < b; ++i) {
        tensor::Tensor row({out});
        const float* src = y.raw() + i * out;
        for (std::size_t j = 0; j < out; ++j) row[j] = src[j];
        batch[i].result.set_value(std::move(row));
        ++fulfilled;
        latencies_ms.push_back(millis_between(batch[i].enqueued, done));
      }
    } catch (...) {
      // Settle only the promises that have not been fulfilled yet —
      // set_exception on a satisfied promise would itself throw and take
      // the whole worker (and process) down.
      const std::exception_ptr error = std::current_exception();
      for (std::size_t i = fulfilled; i < b; ++i) {
        batch[i].result.set_exception(error);
      }
      continue;  // failed batches do not pollute latency stats
    }
    stats_.record_batch(latencies_ms);
  }
}

void InferenceServer::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  space_cv_.notify_all();
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
}

}  // namespace dstee::serve
