#include "serve/server.hpp"

#include <atomic>
#include <chrono>
#include <future>
#include <string>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"

namespace dstee::serve {

namespace {

// The obs clock is the one sanctioned serve-path timing surface (lint
// rule serve-timing); millis helpers below are pure duration arithmetic.
using Clock = obs::Clock;

Clock::duration millis_duration(double ms) {
  return std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double, std::milli>(ms));
}

double millis_between(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

}  // namespace

InferenceServer::InferenceServer(const CompiledNet& net, ServerConfig config)
    : InferenceServer(util::borrow(net), config) {}

InferenceServer::InferenceServer(std::shared_ptr<const CompiledNet> net,
                                 ServerConfig config)
    : config_(config) {
  util::check(net != nullptr, "server requires a non-null net");
  input_features_ = net->input_features();
  util::check(config_.num_threads >= 1, "server requires >= 1 worker thread");
  util::check(config_.num_shards >= 1, "server requires >= 1 shard");
  util::check(config_.max_batch >= 1, "server requires max_batch >= 1");
  util::check(config_.max_delay_ms >= 0.0,
              "server max_delay_ms must be non-negative");
  util::check(config_.queue_capacity >= config_.max_batch,
              "queue_capacity must be >= max_batch");
  if (config_.max_shards == 0) config_.max_shards = config_.num_shards;
  util::check(config_.max_shards >= config_.num_shards,
              "max_shards must be >= num_shards");
  util::check(config_.queue_quota <= config_.queue_capacity,
              "queue_quota must be <= queue_capacity");
  shards_.reserve(config_.max_shards);
  for (std::size_t s = 0; s < config_.max_shards; ++s) {
    auto shard = std::make_unique<Shard>();
    if (s == 0) {
      shard->net.store(net);  // the source net serves shard 0 directly
    } else {
      shard->net.store(std::make_shared<const CompiledNet>(net->clone()));
    }
    shards_.push_back(std::move(shard));
  }
  active_shards_.store(config_.num_shards, std::memory_order_release);
  if (config_.metrics != nullptr) {
    latency_hist_ = &config_.metrics->histogram(
        "dstee_request_latency_ms", config_.metrics_label,
        "End-to-end request latency (queue wait + compute), milliseconds");
    requests_ctr_ = &config_.metrics->counter(
        "dstee_requests_total", config_.metrics_label, "Completed requests");
    batches_ctr_ = &config_.metrics->counter(
        "dstee_batches_total", config_.metrics_label,
        "Micro-batches executed");
  }
  // Workers start only after every shard exists: a worker never observes a
  // half-built shards_ vector.
  for (std::size_t si = 0; si < shards_.size(); ++si) {
    Shard* s = shards_[si].get();
    s->workers.reserve(config_.num_threads);
    for (std::size_t t = 0; t < config_.num_threads; ++t) {
      s->workers.emplace_back([this, s, si, t] {
        // Named at thread start, before the first trace record registers
        // this thread's ring (see obs::set_thread_name).
        obs::set_thread_name("serve-s" + std::to_string(si) + "-w" +
                             std::to_string(t));
        worker_loop(*s);
      });
    }
  }
}

InferenceServer::~InferenceServer() { shutdown(); }

InferenceServer::Shard& InferenceServer::route(
    const tensor::Shape& sample_shape) {
  const std::size_t active = active_shards_.load(std::memory_order_acquire);
  if (active == 1) return *shards_[0];
  // FNV-1a over the dims picks the shape's cursor bucket.
  std::size_t h = 1469598103934665603ull;
  for (std::size_t i = 0; i < sample_shape.rank(); ++i) {
    h ^= sample_shape.dim(i) + 1;
    h *= 1099511628211ull;
  }
  std::atomic<std::size_t>& cursor = route_cursors_[h % kRouteBuckets];
  return *shards_[cursor.fetch_add(1, std::memory_order_relaxed) % active];
}

void InferenceServer::validate_sample(const tensor::Tensor& input) const {
  util::check(input.rank() >= 1,
              "submit expects a sample without a batch axis, e.g. "
              "[features] or [C, H, W]");
  if (input_features_ != 0) {
    // A CSR-linear-first net pins the flat feature count; conv-first nets
    // validate [C, H, W] inside the first op instead.
    util::check(input.rank() == 1 && input.numel() == input_features_,
                "sample has shape " + input.shape().to_string() +
                    ", net expects [" + std::to_string(input_features_) +
                    "]");
  }
}

std::future<tensor::Tensor> InferenceServer::enqueue(Shard& shard,
                                                     tensor::Tensor input) {
  Request req;
  req.input = std::move(input);
  // One relaxed load when tracing is off; a sampled request gets a
  // nonzero id and its spans land in the trace.
  req.trace_id = obs::trace().sample();
  req.enqueued = obs::now();
  std::future<tensor::Tensor> result = req.result.get_future();
  shard.queue.push_back(std::move(req));
  shard.stats.record_queue_depth(shard.queue.size());
  shard.queue_cv.notify_one();
  return result;
}

std::future<tensor::Tensor> InferenceServer::submit(tensor::Tensor input) {
  validate_sample(input);
  Shard& shard = route(input.shape());
  util::UniqueLock lock(shard.mu);
  if (!shard.stopping && shard.queue.size() >= config_.queue_capacity) {
    // Backpressure stall: the wait itself is part of the serving story,
    // so it is measured and surfaced instead of silently absorbed.
    const Clock::time_point blocked_from = obs::now();
    while (!shard.stopping &&
           shard.queue.size() >= config_.queue_capacity) {
      shard.space_cv.wait(lock);
    }
    shard.stats.record_blocked_ms(
        millis_between(blocked_from, obs::now()));
  }
  util::check(!shard.stopping, "submit on a shut-down server");
  return enqueue(shard, std::move(input));
}

std::optional<std::future<tensor::Tensor>> InferenceServer::try_submit(
    tensor::Tensor input) {
  validate_sample(input);
  Shard& shard = route(input.shape());
  const std::size_t quota =
      config_.queue_quota > 0 ? config_.queue_quota : config_.queue_capacity;
  util::UniqueLock lock(shard.mu);
  util::check(!shard.stopping, "try_submit on a shut-down server");
  if (shard.queue.size() >= quota) {
    shard.stats.record_shed();
    return std::nullopt;
  }
  return enqueue(shard, std::move(input));
}

void InferenceServer::swap(std::shared_ptr<const CompiledNet> net,
                           const ReplicaFactory& factory) {
  util::check(net != nullptr, "swap requires a non-null net");
  util::check(net->input_features() == input_features_,
              "swap: replacement net expects a different input shape");
  util::MutexLock lock(swap_mu_);
  // Publish into every SLOT, parked ones included: a later scale_to()
  // grow must hand out the current version, not a stale one.
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    std::shared_ptr<const CompiledNet> version;
    if (factory) {
      version = factory(s);
      util::check(version != nullptr, "swap: replica factory returned null");
    } else if (s == 0) {
      version = net;
    } else {
      version = std::make_shared<const CompiledNet>(net->clone());
    }
    shards_[s]->net.store(std::move(version));
  }
  ++swap_epoch_;
  // One tick per swap (not per replica): aggregate() then reports the
  // number of version publications, see stats.hpp.
  shards_[0]->stats.record_swap();
}

std::size_t InferenceServer::scale_to(std::size_t shards) {
  std::size_t target = shards;
  if (target < 1) target = 1;
  if (target > shards_.size()) target = shards_.size();
  active_shards_.store(target, std::memory_order_release);
  return target;
}

std::size_t InferenceServer::queue_depth() const {
  std::size_t depth = 0;
  for (const auto& shard : shards_) {
    util::MutexLock lock(shard->mu);
    depth += shard->queue.size();
  }
  return depth;
}

std::size_t InferenceServer::swap_epoch() const {
  util::MutexLock lock(swap_mu_);
  return swap_epoch_;
}

std::vector<InferenceServer::Request> InferenceServer::next_batch(
    Shard& shard) {
  util::UniqueLock lock(shard.mu);
  for (;;) {
    while (!shard.stopping && shard.queue.empty()) shard.queue_cv.wait(lock);
    if (shard.queue.empty()) return {};  // stopping and fully drained

    // Micro-batch window: fill up to max_batch, but never keep the head
    // request waiting past its delay budget. The deadline is recomputed
    // from the CURRENT head each pass — another worker may have drained
    // the queue and a newer request become head, with a fresh window.
    // During shutdown flush at once.
    while (!shard.stopping && !shard.queue.empty() &&
           shard.queue.size() < config_.max_batch) {
      const Clock::time_point deadline =
          shard.queue.front().enqueued + millis_duration(config_.max_delay_ms);
      if (obs::now() >= deadline) break;  // head's window expired: flush
      shard.queue_cv.wait_until(lock, deadline);
    }
    if (shard.queue.empty()) continue;

    // Requests in one tensor must agree on sample shape; heterogeneous
    // traffic simply splits into per-shape batches.
    std::vector<Request> batch;
    const tensor::Shape sample_shape = shard.queue.front().input.shape();
    while (!shard.queue.empty() && batch.size() < config_.max_batch &&
           shard.queue.front().input.shape() == sample_shape) {
      batch.push_back(std::move(shard.queue.front()));
      shard.queue.pop_front();
    }
    shard.space_cv.notify_all();
    return batch;
  }
}

void InferenceServer::worker_loop(Shard& shard) {
  for (;;) {
    std::vector<Request> batch = next_batch(shard);
    if (batch.empty()) return;

    // Trace bookkeeping: the batch's worker-side spans (flush/assemble/
    // forward) are attributed to the first sampled request in it; with
    // tracing off every trace_id is 0 and each record() below is a
    // single predictable branch.
    const Clock::time_point popped = obs::now();
    std::uint64_t batch_tid = 0;
    for (const Request& req : batch) {
      if (req.trace_id != 0) {
        batch_tid = req.trace_id;
        break;
      }
    }

    const std::size_t b = batch.size();
    const std::size_t sample_elems = batch[0].input.numel();
    const std::int64_t assemble_ns = obs::to_ns(popped);
    tensor::Tensor x{batch[0].input.shape().prepended(b)};
    for (std::size_t i = 0; i < b; ++i) {
      float* dst = x.raw() + i * sample_elems;
      const float* src = batch[i].input.raw();
      for (std::size_t j = 0; j < sample_elems; ++j) dst[j] = src[j];
    }
    obs::trace().record(batch_tid, obs::SpanKind::kAssemble, "assemble",
                        assemble_ns, obs::now_ns() - assemble_ns, b);

    std::vector<double> latencies_ms;
    latencies_ms.reserve(b);
    std::size_t fulfilled = 0;  // promises already satisfied by set_value
    try {
      // RCU read side: capture the shard's current version once for the
      // whole micro-batch. A concurrent swap() retargets the NEXT batch;
      // this one finishes on the version it captured, and the captured
      // shared_ptr keeps that version alive until the batch is done.
      const std::shared_ptr<const CompiledNet> net = shard.net.load();
      const std::int64_t fwd_ns = obs::now_ns();
      tensor::Tensor y;
      {
        // Per-op spans inside this forward attach to the batch's trace id
        // through the thread-local scope (see Executor::forward).
        obs::ThreadTraceScope scope(batch_tid);
        y = net->forward(x);
      }
      obs::trace().record(batch_tid, obs::SpanKind::kForward, "forward",
                          fwd_ns, obs::now_ns() - fwd_ns, b);
      util::check(y.rank() >= 1 && y.dim(0) == b && y.numel() % b == 0,
                  "compiled forward returned a non-batched result");
      const std::size_t out = y.numel() / b;
      const Clock::time_point done = obs::now();
      const std::int64_t popped_ns = obs::to_ns(popped);
      const std::int64_t done_ns = obs::to_ns(done);
      for (std::size_t i = 0; i < b; ++i) {
        tensor::Tensor row({out});
        const float* src = y.raw() + i * out;
        for (std::size_t j = 0; j < out; ++j) row[j] = src[j];
        batch[i].result.set_value(std::move(row));
        ++fulfilled;
        latencies_ms.push_back(millis_between(batch[i].enqueued, done));
        // Per-request spans: queue [enqueued, popped) + batch [popped,
        // done) tile the request [enqueued, done) exactly, so a trace
        // consumer can check dur(queue) + dur(batch) == dur(request).
        const std::uint64_t tid = batch[i].trace_id;
        if (tid != 0) {
          const std::int64_t enq_ns = obs::to_ns(batch[i].enqueued);
          obs::trace().record(tid, obs::SpanKind::kRequest, "request",
                              enq_ns, done_ns - enq_ns, i);
          obs::trace().record(tid, obs::SpanKind::kQueue, "queue", enq_ns,
                              popped_ns - enq_ns, i);
          obs::trace().record(tid, obs::SpanKind::kBatch, "batch",
                              popped_ns, done_ns - popped_ns, i);
        }
        if (latency_hist_ != nullptr) {
          latency_hist_->observe(latencies_ms.back());
        }
      }
      obs::trace().record(batch_tid, obs::SpanKind::kFlush, "flush",
                          popped_ns, done_ns - popped_ns, b);
      if (requests_ctr_ != nullptr) {
        requests_ctr_->add(b);
        batches_ctr_->add(1);
      }
    } catch (...) {
      // Settle only the promises that have not been fulfilled yet —
      // set_exception on a satisfied promise would itself throw and take
      // the whole worker (and process) down.
      const std::exception_ptr error = std::current_exception();
      for (std::size_t i = fulfilled; i < b; ++i) {
        batch[i].result.set_exception(error);
      }
      continue;  // failed batches do not pollute latency stats
    }
    shard.stats.record_batch(latencies_ms);
  }
}

void InferenceServer::shutdown() {
  for (auto& shard : shards_) {
    {
      util::MutexLock lock(shard->mu);
      shard->stopping = true;
    }
    shard->queue_cv.notify_all();
    shard->space_cv.notify_all();
  }
  for (auto& shard : shards_) {
    for (auto& worker : shard->workers) {
      if (worker.joinable()) worker.join();
    }
    shard->workers.clear();
  }
}

void InferenceServer::decommission() {
  shutdown();
  // Workers are joined, so nothing loads the cells anymore; clearing them
  // drops the last owning references to the warm replicas (and, for shard
  // 0, to the borrowed/shared source net). Stats stay readable.
  for (auto& shard : shards_) {
    shard->net.store(nullptr);
  }
}

StatsSnapshot InferenceServer::stats() const {
  std::vector<const ServerStats*> groups;
  groups.reserve(shards_.size());
  for (const auto& shard : shards_) groups.push_back(&shard->stats);
  return ServerStats::aggregate(groups);
}

StatsSnapshot InferenceServer::shard_stats(std::size_t shard) const {
  util::check(shard < shards_.size(), "shard index out of range");
  return shards_[shard]->stats.snapshot();
}

}  // namespace dstee::serve
