// Serving metrics: per-request latency and aggregate throughput.
//
// Worker threads record one entry per completed request under a mutex; a
// snapshot() sorts a copy of the latency samples and derives percentiles,
// so recording stays O(1) on the hot path and readers never block workers
// for long.
#pragma once

#include <chrono>
#include <cstddef>
#include <mutex>
#include <string>
#include <vector>

namespace dstee::serve {

/// Point-in-time aggregate view of a server's traffic.
struct StatsSnapshot {
  std::size_t requests = 0;       ///< completed requests
  std::size_t batches = 0;        ///< forward passes executed
  double elapsed_seconds = 0.0;   ///< since construction / reset
  double throughput_rps = 0.0;    ///< requests / elapsed
  double mean_batch_size = 0.0;   ///< requests / batches
  double latency_mean_ms = 0.0;
  double latency_p50_ms = 0.0;
  double latency_p95_ms = 0.0;
  double latency_p99_ms = 0.0;
  double latency_max_ms = 0.0;

  /// Multi-line human-readable report.
  std::string to_string() const;
};

/// Linear-interpolated percentile of an ASCENDING-sorted sample set;
/// `q` in [0, 1]. Returns 0 for an empty sample. Exposed for tests.
double percentile(const std::vector<double>& sorted_ascending, double q);

/// Thread-safe latency/throughput recorder shared by server workers.
///
/// Request/batch counters are exact. Latency samples live in a bounded
/// ring holding the most recent `kMaxLatencySamples` requests, so a
/// long-running server neither grows without bound nor pays ever-larger
/// percentile sorts — latency stats are over the recent window, counts
/// and throughput over the full lifetime.
class ServerStats {
 public:
  static constexpr std::size_t kMaxLatencySamples = 1u << 16;

  ServerStats() : start_(Clock::now()) {}

  /// Records one executed micro-batch and the end-to-end latency (queue
  /// wait + compute) of each request it contained.
  void record_batch(const std::vector<double>& request_latencies_ms);

  /// Aggregates everything recorded so far.
  StatsSnapshot snapshot() const;

  /// Clears samples and restarts the throughput clock.
  void reset();

 private:
  using Clock = std::chrono::steady_clock;

  mutable std::mutex mu_;
  std::vector<double> latencies_ms_;  ///< ring, capped at kMaxLatencySamples
  std::size_t next_slot_ = 0;         ///< ring write position once full
  std::size_t requests_ = 0;
  std::size_t batches_ = 0;
  Clock::time_point start_;
};

}  // namespace dstee::serve
