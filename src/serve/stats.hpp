// Serving metrics: per-request latency and aggregate throughput.
//
// Worker threads record one entry per completed request under a mutex; a
// snapshot() sorts a copy of the latency samples and derives percentiles,
// so recording stays O(1) on the hot path and readers never block workers
// for long. A sharded server keeps one ServerStats per worker group and
// derives the server-wide view with aggregate().
#pragma once

#include <chrono>
#include <cstddef>
#include <mutex>
#include <string>
#include <vector>

namespace dstee::serve {

/// Point-in-time aggregate view of a server's (or one shard's) traffic.
struct StatsSnapshot {
  std::size_t requests = 0;       ///< completed requests
  std::size_t batches = 0;        ///< forward passes executed
  double elapsed_seconds = 0.0;   ///< since construction / reset
  double throughput_rps = 0.0;    ///< requests / elapsed
  double mean_batch_size = 0.0;   ///< requests / batches
  double latency_mean_ms = 0.0;
  double latency_p50_ms = 0.0;
  double latency_p95_ms = 0.0;
  double latency_p99_ms = 0.0;
  double latency_p999_ms = 0.0;
  double latency_max_ms = 0.0;
  std::size_t queue_peak = 0;     ///< queue-depth high-water mark
  double blocked_ms = 0.0;        ///< total submit() backpressure wait

  /// Multi-line human-readable report.
  std::string to_string() const;
};

/// Linear-interpolated percentile of an ASCENDING-sorted sample set;
/// `q` in [0, 1]. Returns 0 for an empty sample. Exposed for tests.
double percentile(const std::vector<double>& sorted_ascending, double q);

/// Thread-safe latency/throughput recorder shared by server workers.
///
/// Request/batch counters are exact. Latency samples live in a bounded
/// ring holding the most recent `kMaxLatencySamples` requests, so a
/// long-running server neither grows without bound nor pays ever-larger
/// percentile sorts — latency stats are over the recent window, counts
/// and throughput over the full lifetime.
class ServerStats {
 public:
  static constexpr std::size_t kMaxLatencySamples = 1u << 16;

  ServerStats() : start_(Clock::now()) {}

  /// Records one executed micro-batch and the end-to-end latency (queue
  /// wait + compute) of each request it contained.
  void record_batch(const std::vector<double>& request_latencies_ms);

  /// Records the queue depth observed right after an enqueue; keeps the
  /// high-water mark.
  void record_queue_depth(std::size_t depth);

  /// Adds one submit() backpressure stall to the blocked-time total.
  void record_blocked_ms(double ms);

  /// Aggregates everything recorded so far.
  StatsSnapshot snapshot() const;

  /// Server-wide view over per-shard recorders: counts and blocked time
  /// sum, queue peak is the max across groups, elapsed is the longest
  /// clock, and percentiles are computed over the union of the groups'
  /// latency windows.
  static StatsSnapshot aggregate(const std::vector<const ServerStats*>& groups);

  /// Clears samples and restarts the throughput clock.
  void reset();

 private:
  using Clock = std::chrono::steady_clock;

  static StatsSnapshot finalize(std::size_t requests, std::size_t batches,
                                double elapsed_seconds,
                                std::vector<double> samples,
                                std::size_t queue_peak, double blocked_ms);

  mutable std::mutex mu_;
  std::vector<double> latencies_ms_;  ///< ring, capped at kMaxLatencySamples
  std::size_t next_slot_ = 0;         ///< ring write position once full
  std::size_t requests_ = 0;
  std::size_t batches_ = 0;
  std::size_t queue_peak_ = 0;
  double blocked_ms_ = 0.0;
  Clock::time_point start_;
};

}  // namespace dstee::serve
