// Serving metrics: per-request latency and aggregate throughput.
//
// Synchronization contract (two tiers, encoded in the annotations below):
//  - COUNTERS (requests, batches, queue peak, blocked time) are relaxed
//    atomics. Recording them is lock-free and snapshot()/aggregate()
//    readers never block a worker recording a counter — the guarantee
//    backpressure accounting relies on.
//  - LATENCY SAMPLES live in a bounded ring guarded by `mu_`. A worker
//    finishing a batch and a reader copying the window for percentile
//    sorting share that mutex briefly (the copy is O(window), the sort
//    happens outside the lock), so sample recording can block on a
//    concurrent snapshot — by design, and only for the window copy.
// Counters and samples are therefore not mutually consistent to the
// request: a snapshot may see a counter tick whose latency sample is not
// in the window yet. Percentiles are over the recent window anyway, so
// the skew is invisible in practice.
//
// A sharded server keeps one ServerStats per worker group and derives the
// server-wide view with aggregate().
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/clock.hpp"
#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace dstee::obs {
class MetricsRegistry;
}  // namespace dstee::obs

namespace dstee::serve {

/// Point-in-time aggregate view of a server's (or one shard's) traffic.
struct StatsSnapshot {
  std::size_t requests = 0;       ///< completed requests
  std::size_t batches = 0;        ///< forward passes executed
  double elapsed_seconds = 0.0;   ///< since construction / reset
  double throughput_rps = 0.0;    ///< requests / elapsed
  double mean_batch_size = 0.0;   ///< requests / batches
  double latency_mean_ms = 0.0;
  double latency_p50_ms = 0.0;
  double latency_p95_ms = 0.0;
  double latency_p99_ms = 0.0;
  double latency_p999_ms = 0.0;
  double latency_max_ms = 0.0;
  std::size_t queue_peak = 0;     ///< queue-depth high-water mark
  double blocked_ms = 0.0;        ///< total submit() backpressure wait
  std::size_t shed_total = 0;     ///< admission-control rejects (try_submit)
  std::size_t swap_count = 0;     ///< hot-swap versions published

  /// Multi-line human-readable report.
  std::string to_string() const;
};

/// Linear-interpolated percentile of an ASCENDING-sorted sample set;
/// `q` in [0, 1]. Returns 0 for an empty sample. Exposed for tests.
double percentile(const std::vector<double>& sorted_ascending, double q);

/// Thread-safe latency/throughput recorder shared by server workers.
///
/// Request/batch counters are exact. Latency samples live in a bounded
/// ring holding the most recent `kMaxLatencySamples` requests, so a
/// long-running server neither grows without bound nor pays ever-larger
/// percentile sorts — latency stats are over the recent window, counts
/// and throughput over the full lifetime.
class ServerStats {
 public:
  static constexpr std::size_t kMaxLatencySamples = 1u << 16;

  ServerStats() : start_(obs::now()) {}

  /// Records one executed micro-batch and the end-to-end latency (queue
  /// wait + compute) of each request it contained.
  void record_batch(const std::vector<double>& request_latencies_ms);

  /// Records the queue depth observed right after an enqueue; keeps the
  /// high-water mark. Lock-free (relaxed max-CAS).
  void record_queue_depth(std::size_t depth);

  /// Adds one submit() backpressure stall to the blocked-time total.
  /// Lock-free (relaxed add, microsecond resolution).
  void record_blocked_ms(double ms);

  /// Counts one request rejected by admission control (a try_submit()
  /// that found the routed queue at its quota). Lock-free (relaxed add).
  void record_shed();

  /// Counts one hot-swap publication. A sharded server records this once
  /// per swap on its first shard's recorder, so the aggregate view counts
  /// swaps, not per-replica publishes. Lock-free (relaxed add).
  void record_swap();

  /// Aggregates everything recorded so far.
  StatsSnapshot snapshot() const;

  /// Server-wide view over per-shard recorders: counts and blocked time
  /// sum, queue peak is the max across groups, elapsed is the longest
  /// clock, and percentiles are computed over the union of the groups'
  /// latency windows.
  static StatsSnapshot aggregate(const std::vector<const ServerStats*>& groups);

  /// Clears samples and restarts the throughput clock.
  void reset();

 private:
  /// All serve-path timing goes through the obs clock surface — the
  /// serve-timing lint rule keeps raw steady_clock calls out of src/serve.
  using Clock = obs::Clock;

  static StatsSnapshot finalize(std::size_t requests, std::size_t batches,
                                double elapsed_seconds,
                                std::vector<double> samples,
                                std::size_t queue_peak, double blocked_ms,
                                std::size_t shed_total,
                                std::size_t swap_count);

  // Latency ring: guarded. Copying the window is the only work readers do
  // under the lock.
  mutable util::Mutex mu_;
  std::vector<double> latencies_ms_
      DSTEE_GUARDED_BY(mu_);  ///< ring, capped at kMaxLatencySamples
  std::size_t next_slot_ DSTEE_GUARDED_BY(mu_) = 0;  ///< ring slot once full
  Clock::time_point start_ DSTEE_GUARDED_BY(mu_);    ///< reset() clock base

  // Counters: lock-free by design (see file comment). Monotonic except
  // across reset(), which is documented as racy-but-benign when called
  // concurrently with recording.
  std::atomic<std::size_t> requests_{0};
  std::atomic<std::size_t> batches_{0};
  std::atomic<std::size_t> queue_peak_{0};
  std::atomic<std::int64_t> blocked_us_{0};  ///< integral microseconds
  std::atomic<std::size_t> shed_{0};
  std::atomic<std::size_t> swaps_{0};
};

/// Surfaces one StatsSnapshot through the obs metrics registry under the
/// given model label — every snapshot field becomes a gauge named
/// dstee_stats_<field> (gauges, not counters: a snapshot is a point-in-
/// time total, and re-exporting a counter would double-count). The bridge
/// from the server's internal accounting to `dstee_serve --metrics-out`.
void export_stats_metrics(obs::MetricsRegistry& registry,
                          const std::string& label, const StatsSnapshot& s);

}  // namespace dstee::serve
