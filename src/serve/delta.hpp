// Checkpoint delta format v3 + the Plan-level ApplyDelta patch path.
//
// The source paper's DST loop only moves a small fraction of mask
// positions and values between grow/prune steps, so a freshly-trained
// topology is naturally expressible as a SPARSE DELTA against the
// checkpoint currently being served: per layer, the mask positions that
// were pruned (removed), the positions that were grown (added, with
// their values), and the surviving positions whose values changed —
// plus full replacements for the small dense tensors (biases, BN
// affine/running stats) that drift every step. A delta is keyed by a
// hash of the base model state, so applying it to the wrong base fails
// loudly instead of serving silently-corrupt weights.
//
// On disk a delta is version 3 of the dstee checkpoint family (same
// magic); train::load_checkpoint rejects delta files with a pointer
// here, and load_delta() rejects full checkpoints symmetrically.
//
// The serving half re-uses the PR 5 compiler seam: a Plan retained from
// compilation shares its CsrMatrix instances with the bound executor,
// so apply_delta_to_plan() can copy that plan, rebuild ONLY the nodes
// whose provenance ordinals (PlanOp::sparse_ordinal / bn_ordinal) the
// delta touched — re-folding BN and re-splitting PartitionRows groups
// exactly as a full recompile would — and leave every untouched node
// pointing at the very matrices the outgoing version serves. Binding
// the patched plan then yields a new version that is bit-identical to a
// full recompile (pinned by serve_test) at a fraction of the work.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "nn/module.hpp"
#include "nn/sequential.hpp"
#include "serve/plan.hpp"
#include "sparse/sparse_model.hpp"

namespace dstee::serve {

/// One sparse layer's incremental update. `layer` indexes the
/// SparseModel's masked layers; positions are flat indices into the
/// weight tensor.
struct SparseLayerDelta {
  std::size_t layer = 0;
  std::vector<std::size_t> removed;  ///< pruned: mask 1 → 0
  /// grown: mask 0 → 1, with the new value.
  std::vector<std::pair<std::size_t, float>> added;
  /// still active, value changed.
  std::vector<std::pair<std::size_t, float>> changed;
};

/// Full replacement for one small dense tensor, addressed by its
/// position in Module::parameters() / state_buffers().
struct DenseTensorDelta {
  std::size_t index = 0;
  std::vector<float> values;
};

/// An incremental checkpoint: everything that moved between a base
/// model state and its successor.
struct CheckpointDelta {
  static constexpr std::uint32_t kVersion = 3;

  std::uint64_t base_hash = 0;    ///< model_state_hash of the base
  std::uint64_t result_hash = 0;  ///< ... of the state after application
  std::vector<SparseLayerDelta> sparse_layers;
  std::vector<DenseTensorDelta> dense_params;   ///< non-sparse parameters
  std::vector<DenseTensorDelta> state_buffers;  ///< BN running stats etc.

  bool empty() const {
    return sparse_layers.empty() && dense_params.empty() &&
           state_buffers.empty();
  }
};

/// FNV-1a over parameter values, state buffers and mask topologies —
/// the identity a delta is keyed by. DST step counters are deliberately
/// excluded: they never influence serving.
std::uint64_t model_state_hash(nn::Module& model,
                               const sparse::SparseModel* state);

/// Diffs `next` against `base` (identical architectures; both walked in
/// parameters()/state_buffers() order). Masked layers diff incrementally;
/// everything else becomes a full dense replacement when any value moved.
CheckpointDelta make_delta(nn::Module& base,
                           const sparse::SparseModel* base_state,
                           nn::Module& next,
                           const sparse::SparseModel* next_state);

void save_delta(const std::string& path, const CheckpointDelta& delta);

/// Rejects full checkpoints (v1/v2) with a pointer to load_checkpoint.
CheckpointDelta load_delta(const std::string& path);

/// Applies `delta` to `model`/`state` in place. Fails with a clear
/// base-hash message when `model` is not the delta's base, and verifies
/// the resulting state hashes to `result_hash`.
void apply_delta(const CheckpointDelta& delta, nn::Module& model,
                 sparse::SparseModel* state);

/// Result of the plan-level patch.
struct PlanPatch {
  Plan plan;                     ///< base plan with touched nodes rebuilt
  std::size_t patched_weight_nodes = 0;  ///< CSR units rebuilt
  std::size_t total_weight_nodes = 0;    ///< CSR units in the plan
  std::size_t patched_scale_shifts = 0;  ///< standalone BN nodes updated
  /// Set when a touched tensor could not be attributed to a plan node
  /// (missing provenance, unsupported layout): the returned plan is the
  /// unpatched base and the caller must recompile from scratch.
  bool needs_full_recompile = false;
};

/// Rebuilds only the delta-touched nodes of `base_plan` from
/// `model`/`state`, which must ALREADY have the delta applied. A CSR
/// unit is one kSpmm/kConv node or one PartitionRows slice group (the
/// group re-splits against the rebuilt matrix); folded BN re-folds
/// through the node's bn_ordinal. Untouched nodes keep their CsrMatrix
/// pointers — the zero-copy seam the hot-swap replica path shares with
/// the outgoing version.
PlanPatch apply_delta_to_plan(const Plan& base_plan,
                              const CheckpointDelta& delta,
                              nn::Sequential& model,
                              const sparse::SparseModel* state,
                              float dense_eps = 0.0f);

}  // namespace dstee::serve
