// Shared rewrite helpers for structural plan passes (ElideDropout,
// FoldBatchNorm, FuseEpilogue): erase-and-rewire plus keeping an existing
// FreeAfterLastUse annotation fresh. Internal to serve/ — passes are the
// public surface.
#pragma once

#include "serve/plan.hpp"

namespace dstee::serve::detail {

/// Remaps node ids after erasing node `erased`: consumers of the erased
/// node are rewired to `target` (the node that now produces its value),
/// ids above shift down by one.
void rewire_after_erase(Plan& plan, std::size_t erased, std::size_t target);

/// The FreeAfterLastUse computation: each intermediate is released right
/// after its last consumer.
void recompute_release(Plan& plan);

/// recompute_release, but only when the annotation already exists —
/// structural passes call this so a pipeline that never ran
/// FreeAfterLastUse stays unannotated.
void refresh_release_if_present(Plan& plan);

}  // namespace dstee::serve::detail
