#include "serve/pass_util.hpp"

namespace dstee::serve::detail {

void rewire_after_erase(Plan& plan, std::size_t erased, std::size_t target) {
  for (PlanOp& op : plan.ops) {
    for (std::size_t& in : op.inputs) {
      if (in == Plan::kInputId) continue;
      if (in == erased) {
        in = target;
      } else if (in > erased) {
        --in;
      }
    }
  }
}

void recompute_release(Plan& plan) {
  plan.release_after.assign(plan.ops.size(), {});
  std::vector<std::size_t> last(plan.ops.size(), Plan::kInputId);
  for (std::size_t i = 0; i < plan.ops.size(); ++i) {
    for (const std::size_t in : plan.ops[i].inputs) {
      if (in != Plan::kInputId) last[in] = i;
    }
  }
  for (std::size_t id = 0; id + 1 < plan.ops.size(); ++id) {
    if (last[id] != Plan::kInputId) {
      plan.release_after[last[id]].push_back(id);
    }
  }
}

void refresh_release_if_present(Plan& plan) {
  if (!plan.release_after.empty()) recompute_release(plan);
}

}  // namespace dstee::serve::detail
