#include "kernels/epilogue.hpp"

#include "kernels/simd/backend.hpp"
#include "util/check.hpp"

namespace dstee::kernels {

namespace {

/// Elementwise chunks smaller than this run inline even when the caller
/// asked for intra-op parallelism: the fan-out wake costs more than the
/// loop itself. Shared by every elementwise kernel (activations.cpp
/// funnels through apply_epilogue), so the guard lives in one place.
constexpr std::size_t kElemGrain = 1u << 12;

}  // namespace

void apply_epilogue(const float* in, float* out, std::size_t numel,
                    const Epilogue& ep, const runtime::IntraOp& intra,
                    const simd::KernelBackend* backend) {
  util::check(ep.bias == nullptr,
              "apply_epilogue over a flat range has no row structure for "
              "a bias; fold the bias in the producing kernel instead");
  // The chunk body dispatches to the requested (or active) kernel
  // backend; backends are bit-identical, so the result still doesn't
  // depend on chunk count or dispatch choice.
  const simd::KernelBackend& be =
      backend != nullptr ? *backend : simd::active_backend();
  runtime::intra_chunks(
      intra, numel, kElemGrain, [&](std::size_t i0, std::size_t i1) {
        be.epilogue_range(in, out, i0, i1, ep);
      });
}

tensor::Tensor apply_epilogue(const tensor::Tensor& x, const Epilogue& ep,
                              const runtime::IntraOp& intra,
                              const simd::KernelBackend* backend) {
  tensor::Tensor y(x.shape());
  apply_epilogue(x.raw(), y.raw(), x.numel(), ep, intra, backend);
  return y;
}

}  // namespace dstee::kernels
