// The fused-epilogue kernel API.
//
// A kernel epilogue is the elementwise tail a producer applies to each
// output value while it is still hot in cache/register instead of in a
// separate pass over memory: out = act(acc + bias + residual). One
// `Epilogue` descriptor is consumed uniformly by the CSR SpMM kernels
// (`sparse::CsrMatrix::spmm*`), the dense conv forward
// (`kernels::conv2d_forward`), and the standalone elementwise application
// below — so there is exactly one definition of what "bias + residual +
// activation" means and fused and unfused programs cannot drift apart
// numerically. The serve/ fusion pass (`serve::FuseEpilogue`) annotates
// Plan nodes with epilogues; EvalOps translate those annotations into
// this struct at run time.
//
// Bit-identity contract: activate() reproduces the historical standalone
// activation kernels operation-for-operation (same compares, same
// multiply for the leaky slope, same std::exp/std::tanh calls), and the
// additions are applied in the producer's order (acc, then bias, then
// residual). A fused program is therefore bit-identical to the unfused
// op sequence it replaced, not merely close.
#pragma once

#include <cmath>
#include <cstddef>

#include "runtime/pool.hpp"
#include "tensor/tensor.hpp"

namespace dstee::kernels::simd {
struct KernelBackend;
}  // namespace dstee::kernels::simd

namespace dstee::kernels {

/// Activation applied by an epilogue (and by the Plan IR's activation
/// nodes — serve::ActKind is an alias of this enum).
enum class ActKind { kRelu, kLeakyRelu, kSigmoid, kTanh };

/// Elementwise epilogue descriptor: out = act(value + bias + residual).
/// All members are optional; a default-constructed Epilogue is the
/// identity. Pointer members borrow — the caller keeps them alive for
/// the duration of the kernel call.
struct Epilogue {
  /// Per-output-row bias, indexed by the kernel's local row index
  /// (nullptr = no bias). Row-structured kernels only; the flat
  /// apply_epilogue() rejects it.
  const float* bias = nullptr;

  /// Residual operand added after the bias (nullptr = none). Layout is
  /// kernel-specific: batched SpMM indexes residual[n * residual_stride
  /// + r]; per-sample kernels and apply_epilogue() index it exactly like
  /// their output.
  const float* residual = nullptr;

  /// Per-sample element stride of `residual` for batched kernels (the
  /// full output row width even when the kernel computes only a row
  /// slice of it).
  std::size_t residual_stride = 0;

  bool has_act = false;
  ActKind act = ActKind::kRelu;
  float slope = 0.01f;  ///< kLeakyRelu negative-side slope

  bool empty() const {
    return bias == nullptr && residual == nullptr && !has_act;
  }

  /// The activation alone — additions are the kernel's job because bias/
  /// residual indexing is kernel-specific.
  float activate(float v) const {
    if (!has_act) return v;
    switch (act) {
      case ActKind::kRelu:
        return v > 0.0f ? v : 0.0f;
      case ActKind::kLeakyRelu:
        return v > 0.0f ? v : slope * v;
      case ActKind::kSigmoid:
        return 1.0f / (1.0f + std::exp(-v));
      case ActKind::kTanh:
        return std::tanh(v);
    }
    return v;  // unreachable
  }
};

/// THE standalone elementwise application: out[i] = act(in[i] +
/// residual[i]) over a flat range. `in` and `out` may alias (in-place).
/// `ep.bias` must be null — a flat range has no row structure. Splits
/// across the runtime pool with the shared small-input grain; every
/// element has one writer, so results are bit-identical for any chunk
/// count. The activation kernels in activations.hpp are thin wrappers
/// over this (plus their training-only backward-mask variants); serve/
/// EvalOps call it directly rather than the per-activation entry points.
/// `backend` selects a kernel backend explicitly; nullptr uses the
/// process-wide simd::active_backend().
void apply_epilogue(const float* in, float* out, std::size_t numel,
                    const Epilogue& ep, const runtime::IntraOp& intra = {},
                    const simd::KernelBackend* backend = nullptr);

/// Tensor convenience: returns act(x + residual) as a fresh tensor.
tensor::Tensor apply_epilogue(const tensor::Tensor& x, const Epilogue& ep,
                              const runtime::IntraOp& intra = {},
                              const simd::KernelBackend* backend = nullptr);

}  // namespace dstee::kernels
