#include "kernels/conv.hpp"

#include "tensor/matmul.hpp"
#include "util/check.hpp"

namespace dstee::kernels {

tensor::Tensor conv2d_forward(const tensor::Tensor& x,
                              const tensor::Tensor& w2d, std::size_t kernel,
                              std::size_t stride, std::size_t padding,
                              const Epilogue& ep,
                              const runtime::IntraOp& intra) {
  util::check(x.rank() == 4, "conv2d_forward expects [N, C, H, W]");
  util::check(ep.residual == nullptr || ep.residual_stride > 0,
              "conv2d fused residual requires residual_stride");
  util::check(w2d.rank() == 2, "conv2d_forward expects a [Cout, Cin*K*K] "
                               "weight view");
  const std::size_t batch = x.dim(0), in_ch = x.dim(1);
  util::check(x.dim(2) + 2 * padding >= kernel &&
                  x.dim(3) + 2 * padding >= kernel,
              "conv2d input smaller than kernel");
  tensor::ConvGeometry g;
  g.in_channels = in_ch;
  g.in_h = x.dim(2);
  g.in_w = x.dim(3);
  g.kernel_h = kernel;
  g.kernel_w = kernel;
  g.stride = stride;
  g.padding = padding;
  util::check(w2d.dim(1) == g.patch_size(),
              "conv2d weight columns must equal Cin*K*K");
  const std::size_t out_ch = w2d.dim(0);
  const std::size_t oh = g.out_h(), ow = g.out_w();

  tensor::Tensor y({batch, out_ch, oh, ow});
  const std::size_t image_elems = in_ch * g.in_h * g.in_w;
  const std::size_t out_image_elems = out_ch * oh * ow;
  const std::size_t positions = oh * ow;
  // Batch-parallel: per-chunk im2col scratch, each image writes its own
  // output slab exactly once. The epilogue finishes each image block in
  // the copy loop instead of a separate pass over y.
  runtime::intra_chunks(intra, batch, [&](std::size_t n0, std::size_t n1) {
    tensor::Tensor cols({g.patch_size(), oh * ow});
    for (std::size_t n = n0; n < n1; ++n) {
      tensor::im2col(x.raw() + n * image_elems, g, cols);
      const tensor::Tensor out2d = tensor::matmul(w2d, cols);  // [Cout, ohw]
      float* dst = y.raw() + n * out_image_elems;
      if (ep.empty()) {
        for (std::size_t i = 0; i < out_image_elems; ++i) dst[i] = out2d[i];
        continue;
      }
      const float* res = ep.residual != nullptr
                             ? ep.residual + n * ep.residual_stride
                             : nullptr;
      for (std::size_t c = 0; c < out_ch; ++c) {
        const float bias_c = ep.bias != nullptr ? ep.bias[c] : 0.0f;
        for (std::size_t j = 0; j < positions; ++j) {
          const std::size_t i = c * positions + j;
          float v = out2d[i];
          if (ep.bias != nullptr) v += bias_c;
          if (res != nullptr) v += res[i];
          dst[i] = ep.activate(v);
        }
      }
    }
  });
  return y;
}

tensor::Tensor conv2d_forward(const tensor::Tensor& x,
                              const tensor::Tensor& w2d, std::size_t kernel,
                              std::size_t stride, std::size_t padding,
                              const float* bias,
                              const runtime::IntraOp& intra) {
  Epilogue ep;
  ep.bias = bias;
  return conv2d_forward(x, w2d, kernel, stride, padding, ep, intra);
}

void add_channel_bias(tensor::Tensor& y, const float* bias) {
  util::check(y.rank() == 4, "add_channel_bias expects [N, C, H, W]");
  const std::size_t batch = y.dim(0), ch = y.dim(1);
  const std::size_t sp = y.dim(2) * y.dim(3);
  for (std::size_t n = 0; n < batch; ++n) {
    for (std::size_t c = 0; c < ch; ++c) {
      float* plane = y.raw() + (n * ch + c) * sp;
      const float b = bias[c];
      for (std::size_t i = 0; i < sp; ++i) plane[i] += b;
    }
  }
}

}  // namespace dstee::kernels
