// Stateless elementwise activation kernels — thin compatibility wrappers
// for the nn/ training forwards over the one epilogue application in
// kernels/epilogue.hpp.
//
// The per-activation entry points below exist for two reasons only:
// (a) nn/ layers cache backward masks, a training-time concept the
// Epilogue descriptor deliberately does not model, and (b) their
// signatures predate the epilogue API. Every mask-less call funnels
// through kernels::apply_epilogue, so train-time and serve-time numerics
// cannot drift apart; serve/ EvalOps must NOT call these directly
// (enforced by the `serve-epilogue` dstee_lint rule) — they build a
// kernels::Epilogue instead, fused into the producing kernel where the
// plan allows it. Each kernel accepts a runtime::IntraOp chunking the
// flat element range across the persistent runtime pool; elementwise
// outputs trivially have one writer per element, so results are
// bit-identical for any chunk count. Small tensors always run inline
// regardless of the policy (fan-out would cost more than the loop).
#pragma once

#include "runtime/pool.hpp"
#include "tensor/tensor.hpp"

namespace dstee::kernels {

/// y = max(x, 0). When `mask` is non-null it is resized to x's shape and
/// filled with 1 where x > 0 (the backward mask nn::ReLU caches).
tensor::Tensor relu(const tensor::Tensor& x, tensor::Tensor* mask = nullptr,
                    const runtime::IntraOp& intra = {});

/// y = relu(a + b) — the residual join (ResidualBlock::forward at train
/// time, the compiled add+ReLU graph node at serve time). `a` and `b`
/// must agree in shape; when `mask` is non-null it receives 1 where
/// a + b > 0 (the backward mask ResidualBlock caches).
tensor::Tensor add_relu(const tensor::Tensor& a, const tensor::Tensor& b,
                        tensor::Tensor* mask = nullptr,
                        const runtime::IntraOp& intra = {});

/// y = x > 0 ? x : slope·x.
tensor::Tensor leaky_relu(const tensor::Tensor& x, float slope,
                          const runtime::IntraOp& intra = {});

/// y = 1 / (1 + e^{-x}).
tensor::Tensor sigmoid(const tensor::Tensor& x,
                       const runtime::IntraOp& intra = {});

/// y = tanh(x).
tensor::Tensor tanh(const tensor::Tensor& x,
                    const runtime::IntraOp& intra = {});

}  // namespace dstee::kernels
