// Dense conv2d forward kernel: per-image im2col followed by a lowered
// matmul. nn::Conv2d::forward delegates here; the serve/ runtime uses the
// same im2col with a CSR SpMM instead of the dense matmul, so the patch
// layout is defined in exactly one place (tensor/im2col.hpp).
#pragma once

#include <cstddef>

#include "kernels/epilogue.hpp"
#include "runtime/pool.hpp"
#include "tensor/im2col.hpp"
#include "tensor/tensor.hpp"

namespace dstee::kernels {

/// y[N, Cout, Ho, Wo] = act(conv(x[N, Cin, H, W], w2d) + bias + residual).
/// `w2d` is the weight viewed as [Cout, Cin·K·K]. The epilogue is applied
/// in the per-image output loop while the block is hot: `ep.bias` is
/// indexed by output channel, `ep.residual` is laid out like y
/// ([N, Cout, Ho, Wo] flat) with `ep.residual_stride` the per-sample
/// element count Cout·Ho·Wo. `intra` splits the batch across the runtime
/// pool (images are independent, so every output element has exactly one
/// writer and results are bit-identical for any chunk count); the default
/// runs inline.
tensor::Tensor conv2d_forward(const tensor::Tensor& x,
                              const tensor::Tensor& w2d, std::size_t kernel,
                              std::size_t stride, std::size_t padding,
                              const Epilogue& ep = {},
                              const runtime::IntraOp& intra = {});

/// Bias-pointer compatibility overload for the nn/ training forward
/// (`bias` is an optional [Cout] pointer, nullptr = none); forwards to
/// the epilogue signature with the bias as the whole epilogue.
tensor::Tensor conv2d_forward(const tensor::Tensor& x,
                              const tensor::Tensor& w2d, std::size_t kernel,
                              std::size_t stride, std::size_t padding,
                              const float* bias,
                              const runtime::IntraOp& intra = {});

/// Adds `bias[c]` to every element of channel plane c, over [N, C, H·W].
void add_channel_bias(tensor::Tensor& y, const float* bias);

}  // namespace dstee::kernels
