// Chunked data-parallel fan-out shared by the row-parallel CSR SpMM and
// the image-parallel conv op: one place owns the ceil-div partitioning,
// range clamping, main-thread-runs-first-chunk and join logic. A template
// (not std::function) so the single-threaded serving default pays no
// type-erasure cost on the kernel hot path.
#pragma once

#include <algorithm>
#include <cstddef>
#include <thread>
#include <utility>
#include <vector>

namespace dstee::kernels {

/// Splits [0, n) into contiguous chunks across `threads` workers and runs
/// `fn(begin, end)` once per non-empty chunk; the calling thread executes
/// the first chunk itself. `threads` 0 means hardware concurrency, and the
/// worker count never exceeds n (so n <= 1 always runs inline with no
/// spawn). fn is invoked once per worker, so per-worker scratch can live
/// inside it. The caller guarantees chunk independence (every output
/// element written by exactly one chunk), which makes results
/// bit-identical for any thread count.
template <typename Fn>
void parallel_chunks(std::size_t n, std::size_t threads, Fn&& fn) {
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  threads = std::min(threads, std::max<std::size_t>(1, n));
  if (threads <= 1) {
    fn(0, n);
    return;
  }
  const std::size_t chunk = (n + threads - 1) / threads;
  std::vector<std::thread> workers;
  workers.reserve(threads - 1);
  for (std::size_t t = 1; t < threads; ++t) {
    const std::size_t b0 = std::min(n, t * chunk);
    const std::size_t b1 = std::min(n, b0 + chunk);
    if (b0 < b1) workers.emplace_back([&fn, b0, b1] { fn(b0, b1); });
  }
  fn(0, std::min(n, chunk));
  for (std::thread& w : workers) w.join();
}

}  // namespace dstee::kernels
