// Chunked data-parallel fan-out shared by the row-parallel CSR SpMM and
// the image-parallel conv op. parallel_chunks is now a thin shim over the
// persistent runtime::Pool (src/runtime/pool.hpp) — workers start once
// per process instead of being spawned and joined inside every kernel
// call. The partitioning contract is unchanged: ceil-div contiguous
// chunks, the calling thread runs the first chunk, fn is invoked once per
// non-empty chunk, and chunk independence (every output element written
// by exactly one chunk) keeps results bit-identical for any thread count.
#pragma once

#include <algorithm>
#include <cstddef>
#include <thread>
#include <utility>
#include <vector>

#include "runtime/pool.hpp"

namespace dstee::kernels {

/// Splits [0, n) into contiguous chunks and runs `fn(begin, end)` once per
/// non-empty chunk on the process-wide runtime::Pool. `threads` 0 means
/// pool-wide (the pool sizes itself to hardware concurrency), and the
/// chunk count never exceeds n (so n <= 1 always runs inline). Kernels
/// that accept a runtime::IntraOp call the pool directly; this shim keeps
/// the historical entry point for callers without a policy to thread.
template <typename Fn>
void parallel_chunks(std::size_t n, std::size_t threads, Fn&& fn) {
  runtime::default_pool().run_chunks(n, threads, std::forward<Fn>(fn));
}

/// The RETIRED per-call fan-out: spawns and joins std::threads inside the
/// call, paying thread-start latency every time. Kept only as the
/// baseline the serving benches compare the persistent pool against (and
/// to document what parallel_chunks used to cost); do not use it on hot
/// paths.
template <typename Fn>
void spawn_chunks(std::size_t n, std::size_t threads, Fn&& fn) {
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  threads = std::min(threads, std::max<std::size_t>(1, n));
  if (threads <= 1) {
    fn(0, n);
    return;
  }
  const std::size_t chunk = (n + threads - 1) / threads;
  std::vector<std::thread> workers;
  workers.reserve(threads - 1);
  for (std::size_t t = 1; t < threads; ++t) {
    const std::size_t b0 = std::min(n, t * chunk);
    const std::size_t b1 = std::min(n, b0 + chunk);
    if (b0 < b1) workers.emplace_back([&fn, b0, b1] { fn(b0, b1); });
  }
  fn(0, std::min(n, chunk));
  for (std::thread& w : workers) w.join();
}

}  // namespace dstee::kernels
