#include "kernels/pool.hpp"

#include <limits>

#include "util/check.hpp"

namespace dstee::kernels {

namespace {

/// Minimum output elements one chunk should own; converted to a grain in
/// plane units per call so small feature maps run inline.
constexpr std::size_t kPlaneElemGrain = 1u << 10;

std::size_t plane_grain(std::size_t out_elems_per_plane) {
  return std::max<std::size_t>(
      1, kPlaneElemGrain / std::max<std::size_t>(1, out_elems_per_plane));
}

}  // namespace

tensor::Tensor maxpool2d(const tensor::Tensor& x, std::size_t kernel,
                         std::size_t stride,
                         std::vector<std::size_t>* argmax,
                         const runtime::IntraOp& intra) {
  util::check(kernel > 0 && stride > 0,
              "maxpool kernel and stride must be positive");
  util::check(x.rank() == 4, "maxpool expects [N, C, H, W]");
  util::check(x.dim(2) >= kernel && x.dim(3) >= kernel,
              "maxpool input smaller than window");
  const std::size_t batch = x.dim(0), ch = x.dim(1), ih = x.dim(2),
                    iw = x.dim(3);
  const std::size_t oh = (ih - kernel) / stride + 1;
  const std::size_t ow = (iw - kernel) / stride + 1;
  if (argmax != nullptr) argmax->assign(batch * ch * oh * ow, 0);

  tensor::Tensor y({batch, ch, oh, ow});
  // Plane-parallel over the flattened N·C dimension: each plane owns its
  // output (and argmax) slab exclusively.
  runtime::intra_chunks(intra, batch * ch, plane_grain(oh * ow),
                        [&](std::size_t p0, std::size_t p1) {
    for (std::size_t p = p0; p < p1; ++p) {
      const std::size_t plane_base = p * ih * iw;
      const float* plane = x.raw() + plane_base;
      std::size_t out_i = p * oh * ow;
      for (std::size_t y0 = 0; y0 < oh; ++y0) {
        for (std::size_t x0 = 0; x0 < ow; ++x0) {
          float best = -std::numeric_limits<float>::infinity();
          std::size_t best_idx = 0;
          for (std::size_t ky = 0; ky < kernel; ++ky) {
            for (std::size_t kx = 0; kx < kernel; ++kx) {
              const std::size_t iy = y0 * stride + ky;
              const std::size_t ix = x0 * stride + kx;
              const float v = plane[iy * iw + ix];
              if (v > best) {
                best = v;
                best_idx = plane_base + iy * iw + ix;
              }
            }
          }
          y[out_i] = best;
          if (argmax != nullptr) (*argmax)[out_i] = best_idx;
          ++out_i;
        }
      }
    }
  });
  return y;
}

tensor::Tensor avgpool2d(const tensor::Tensor& x, std::size_t kernel,
                         const runtime::IntraOp& intra) {
  util::check(kernel > 0, "avgpool kernel must be positive");
  util::check(x.rank() == 4, "avgpool expects [N, C, H, W]");
  const std::size_t batch = x.dim(0), ch = x.dim(1), ih = x.dim(2),
                    iw = x.dim(3);
  util::check(ih >= kernel && iw >= kernel,
              "avgpool input smaller than window");
  const std::size_t oh = ih / kernel, ow = iw / kernel;
  const float inv = 1.0f / static_cast<float>(kernel * kernel);

  tensor::Tensor y({batch, ch, oh, ow});
  runtime::intra_chunks(intra, batch * ch, plane_grain(oh * ow),
                        [&](std::size_t p0, std::size_t p1) {
    for (std::size_t p = p0; p < p1; ++p) {
      const float* plane = x.raw() + p * ih * iw;
      float* out_plane = y.raw() + p * oh * ow;
      for (std::size_t y0 = 0; y0 < oh; ++y0) {
        for (std::size_t x0 = 0; x0 < ow; ++x0) {
          float acc = 0.0f;
          for (std::size_t ky = 0; ky < kernel; ++ky) {
            for (std::size_t kx = 0; kx < kernel; ++kx) {
              acc += plane[(y0 * kernel + ky) * iw + (x0 * kernel + kx)];
            }
          }
          out_plane[y0 * ow + x0] = acc * inv;
        }
      }
    }
  });
  return y;
}

tensor::Tensor global_avg_pool(const tensor::Tensor& x,
                               const runtime::IntraOp& intra) {
  util::check(x.rank() == 4, "global_avg_pool expects [N, C, H, W]");
  const std::size_t batch = x.dim(0), ch = x.dim(1);
  const std::size_t sp = x.dim(2) * x.dim(3);
  const float inv = 1.0f / static_cast<float>(sp);
  tensor::Tensor y({batch, ch});
  // Grain in input elements: global pooling reads sp per output value.
  runtime::intra_chunks(intra, batch * ch,
                        std::max<std::size_t>(1, kPlaneElemGrain / sp),
                        [&](std::size_t p0, std::size_t p1) {
    for (std::size_t p = p0; p < p1; ++p) {
      const float* plane = x.raw() + p * sp;
      float acc = 0.0f;
      for (std::size_t i = 0; i < sp; ++i) acc += plane[i];
      y[p] = acc * inv;
    }
  });
  return y;
}

}  // namespace dstee::kernels
