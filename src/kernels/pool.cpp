#include "kernels/pool.hpp"

#include <limits>

#include "util/check.hpp"

namespace dstee::kernels {

tensor::Tensor maxpool2d(const tensor::Tensor& x, std::size_t kernel,
                         std::size_t stride,
                         std::vector<std::size_t>* argmax) {
  util::check(kernel > 0 && stride > 0,
              "maxpool kernel and stride must be positive");
  util::check(x.rank() == 4, "maxpool expects [N, C, H, W]");
  util::check(x.dim(2) >= kernel && x.dim(3) >= kernel,
              "maxpool input smaller than window");
  const std::size_t batch = x.dim(0), ch = x.dim(1), ih = x.dim(2),
                    iw = x.dim(3);
  const std::size_t oh = (ih - kernel) / stride + 1;
  const std::size_t ow = (iw - kernel) / stride + 1;
  if (argmax != nullptr) argmax->assign(batch * ch * oh * ow, 0);

  tensor::Tensor y({batch, ch, oh, ow});
  std::size_t out_i = 0;
  for (std::size_t n = 0; n < batch; ++n) {
    for (std::size_t c = 0; c < ch; ++c) {
      const std::size_t plane_base = (n * ch + c) * ih * iw;
      const float* plane = x.raw() + plane_base;
      for (std::size_t y0 = 0; y0 < oh; ++y0) {
        for (std::size_t x0 = 0; x0 < ow; ++x0) {
          float best = -std::numeric_limits<float>::infinity();
          std::size_t best_idx = 0;
          for (std::size_t ky = 0; ky < kernel; ++ky) {
            for (std::size_t kx = 0; kx < kernel; ++kx) {
              const std::size_t iy = y0 * stride + ky;
              const std::size_t ix = x0 * stride + kx;
              const float v = plane[iy * iw + ix];
              if (v > best) {
                best = v;
                best_idx = plane_base + iy * iw + ix;
              }
            }
          }
          y[out_i] = best;
          if (argmax != nullptr) (*argmax)[out_i] = best_idx;
          ++out_i;
        }
      }
    }
  }
  return y;
}

tensor::Tensor avgpool2d(const tensor::Tensor& x, std::size_t kernel) {
  util::check(kernel > 0, "avgpool kernel must be positive");
  util::check(x.rank() == 4, "avgpool expects [N, C, H, W]");
  const std::size_t batch = x.dim(0), ch = x.dim(1), ih = x.dim(2),
                    iw = x.dim(3);
  util::check(ih >= kernel && iw >= kernel,
              "avgpool input smaller than window");
  const std::size_t oh = ih / kernel, ow = iw / kernel;
  const float inv = 1.0f / static_cast<float>(kernel * kernel);

  tensor::Tensor y({batch, ch, oh, ow});
  for (std::size_t n = 0; n < batch; ++n) {
    for (std::size_t c = 0; c < ch; ++c) {
      const float* plane = x.raw() + (n * ch + c) * ih * iw;
      float* out_plane = y.raw() + (n * ch + c) * oh * ow;
      for (std::size_t y0 = 0; y0 < oh; ++y0) {
        for (std::size_t x0 = 0; x0 < ow; ++x0) {
          float acc = 0.0f;
          for (std::size_t ky = 0; ky < kernel; ++ky) {
            for (std::size_t kx = 0; kx < kernel; ++kx) {
              acc += plane[(y0 * kernel + ky) * iw + (x0 * kernel + kx)];
            }
          }
          out_plane[y0 * ow + x0] = acc * inv;
        }
      }
    }
  }
  return y;
}

tensor::Tensor global_avg_pool(const tensor::Tensor& x) {
  util::check(x.rank() == 4, "global_avg_pool expects [N, C, H, W]");
  const std::size_t batch = x.dim(0), ch = x.dim(1);
  const std::size_t sp = x.dim(2) * x.dim(3);
  const float inv = 1.0f / static_cast<float>(sp);
  tensor::Tensor y({batch, ch});
  for (std::size_t n = 0; n < batch; ++n) {
    for (std::size_t c = 0; c < ch; ++c) {
      const float* plane = x.raw() + (n * ch + c) * sp;
      float acc = 0.0f;
      for (std::size_t i = 0; i < sp; ++i) acc += plane[i];
      y[n * ch + c] = acc * inv;
    }
  }
  return y;
}

}  // namespace dstee::kernels
