// AVX2 sparse kernels — bit-identical to the scalar reference.
//
// Strategy: vectorize across a dimension where the SCALAR kernel already
// performs eight independent, identical op sequences — the batch axis for
// the row-major SpMM (eight samples share one values/col_idx stream; the
// activations are gathered with a row-stride index vector) and the
// unit-stride output axis for spmm_cols / the flat epilogue. Each SIMD
// lane then executes exactly the scalar per-element op sequence: separate
// _mm256_mul_ps + _mm256_add_ps per nonzero (never FMA — the scalar
// reference contracts nothing, and this file is built with
// -ffp-contract=off so the compiler cannot fuse them either), bias before
// residual before activation. Lanes that don't exist (batch % 8, n % 8)
// fall back to the scalar backend.
//
// ReLU uses _mm256_max_ps(v, +0.0f), which matches `v > 0 ? v : 0` bit
// for bit including v = -0.0 (max returns the second operand on equal
// compare) and v = NaN (maxps propagates the second operand). LeakyReLU
// uses an ordered-quiet greater-than compare + blend. Sigmoid/tanh call
// the scalar activate per lane — std::exp has no vector contract.
//
// _mm256_i32gather_ps indexes are 32-bit: strides beyond 2^28 elements
// could overflow lane 7, so such shapes (absent in practice — that is a
// >1 GiB activation row) take the scalar path entirely.
#ifdef DSTEE_SIMD_AVX2

#include <immintrin.h>

#include <cstdint>

#include "kernels/simd/backend.hpp"

namespace dstee::kernels::simd {

namespace {

/// Largest element stride a 32-bit gather index can address from lane 7
/// with headroom (8 * 2^28 = 2^31). Shapes beyond this run scalar.
constexpr std::size_t kMaxGatherStride = std::size_t{1} << 28;

/// Lane offsets {0, stride, ..., 7*stride} for strided gathers.
inline __m256i lane_offsets(std::size_t stride) {
  const int s = static_cast<int>(stride);
  return _mm256_setr_epi32(0, s, 2 * s, 3 * s, 4 * s, 5 * s, 6 * s, 7 * s);
}

/// ep.activate() over eight lanes, bit-identical per lane.
inline __m256 act8(__m256 v, const kernels::Epilogue& ep) {
  if (!ep.has_act) return v;
  switch (ep.act) {
    case kernels::ActKind::kRelu:
      return _mm256_max_ps(v, _mm256_setzero_ps());
    case kernels::ActKind::kLeakyRelu: {
      const __m256 gt =
          _mm256_cmp_ps(v, _mm256_setzero_ps(), _CMP_GT_OQ);
      const __m256 neg = _mm256_mul_ps(_mm256_set1_ps(ep.slope), v);
      return _mm256_blendv_ps(neg, v, gt);
    }
    case kernels::ActKind::kSigmoid:
    case kernels::ActKind::kTanh: {
      alignas(32) float tmp[8];
      _mm256_store_ps(tmp, v);
      for (int i = 0; i < 8; ++i) tmp[i] = ep.activate(tmp[i]);
      return _mm256_load_ps(tmp);
    }
  }
  return v;  // unreachable
}

// ---------------------------------------------------------------------------
// Batched SpMM over rows: eight batch samples per iteration, one nnz
// broadcast against eight gathered activations.
// ---------------------------------------------------------------------------

template <typename View, bool kQuantized>
void avx2_spmm_rows_impl(const View& a, const float* x, std::size_t batch,
                         float* out, std::size_t r0, std::size_t r1,
                         const kernels::Epilogue& ep) {
  if (a.cols > kMaxGatherStride ||
      (ep.residual != nullptr && ep.residual_stride > kMaxGatherStride)) {
    if constexpr (kQuantized) {
      scalar_backend().qspmm_rows(a, x, batch, out, r0, r1, ep);
    } else {
      scalar_backend().spmm_rows(a, x, batch, out, r0, r1, ep);
    }
    return;
  }

  const __m256i xlane = lane_offsets(a.cols);
  const __m256i rlane =
      ep.residual != nullptr ? lane_offsets(ep.residual_stride)
                             : _mm256_setzero_si256();

  std::size_t n0 = 0;
  for (; n0 + 8 <= batch; n0 += 8) {
    const float* xn = x + n0 * a.cols;
    const float* resn = ep.residual != nullptr
                            ? ep.residual + n0 * ep.residual_stride
                            : nullptr;
    for (std::size_t r = r0; r < r1; ++r) {
      __m256 acc = _mm256_setzero_ps();
      for (std::size_t k = a.row_ptr[r]; k < a.row_ptr[r + 1]; ++k) {
        const __m256i idx = _mm256_add_epi32(
            xlane, _mm256_set1_epi32(static_cast<int>(a.col_idx[k])));
        const __m256 xv = _mm256_i32gather_ps(xn, idx, 4);
        const __m256 vv = [&] {
          if constexpr (kQuantized) {
            return _mm256_set1_ps(static_cast<float>(a.values[k]));
          } else {
            return _mm256_set1_ps(a.values[k]);
          }
        }();
        acc = _mm256_add_ps(acc, _mm256_mul_ps(vv, xv));
      }
      if constexpr (kQuantized) {
        acc = _mm256_mul_ps(acc, _mm256_set1_ps(a.scales[r]));
      }
      if (ep.bias != nullptr) {
        acc = _mm256_add_ps(acc, _mm256_set1_ps(ep.bias[r]));
      }
      if (resn != nullptr) {
        acc = _mm256_add_ps(acc, _mm256_i32gather_ps(resn + r, rlane, 4));
      }
      acc = act8(acc, ep);
      alignas(32) float tmp[8];
      _mm256_store_ps(tmp, acc);
      float* yn = out + n0 * a.rows + r;
      for (std::size_t i = 0; i < 8; ++i) yn[i * a.rows] = tmp[i];
    }
  }

  if (n0 < batch) {
    kernels::Epilogue tail = ep;
    if (tail.residual != nullptr) {
      tail.residual += n0 * tail.residual_stride;
    }
    if constexpr (kQuantized) {
      scalar_backend().qspmm_rows(a, x + n0 * a.cols, batch - n0,
                                  out + n0 * a.rows, r0, r1, tail);
    } else {
      scalar_backend().spmm_rows(a, x + n0 * a.cols, batch - n0,
                                 out + n0 * a.rows, r0, r1, tail);
    }
  }
}

void avx2_spmm_rows(const CsrView& a, const float* x, std::size_t batch,
                    float* out, std::size_t r0, std::size_t r1,
                    const kernels::Epilogue& ep) {
  avx2_spmm_rows_impl<CsrView, false>(a, x, batch, out, r0, r1, ep);
}

void avx2_qspmm_rows(const QCsrView& a, const float* x, std::size_t batch,
                     float* out, std::size_t r0, std::size_t r1,
                     const kernels::Epilogue& ep) {
  avx2_spmm_rows_impl<QCsrView, true>(a, x, batch, out, r0, r1, ep);
}

// ---------------------------------------------------------------------------
// SpMM against dense columns (the conv/im2col path): vectorize the
// unit-stride j axis; each output element keeps the scalar k-order.
// ---------------------------------------------------------------------------

template <typename View, bool kQuantized>
void avx2_spmm_cols_impl(const View& a, const float* b, std::size_t n,
                         float* out, const kernels::Epilogue& ep) {
  const std::size_t nv = n & ~std::size_t{7};
  for (std::size_t r = 0; r < a.rows; ++r) {
    float* yr = out + r * n;
    const __m256 zero = _mm256_setzero_ps();
    for (std::size_t j = 0; j < nv; j += 8) _mm256_storeu_ps(yr + j, zero);
    for (std::size_t j = nv; j < n; ++j) yr[j] = 0.0f;

    for (std::size_t k = a.row_ptr[r]; k < a.row_ptr[r + 1]; ++k) {
      const float v = static_cast<float>(a.values[k]);
      const __m256 vv = _mm256_set1_ps(v);
      const float* br = b + a.col_idx[k] * n;
      for (std::size_t j = 0; j < nv; j += 8) {
        const __m256 acc = _mm256_add_ps(
            _mm256_loadu_ps(yr + j),
            _mm256_mul_ps(vv, _mm256_loadu_ps(br + j)));
        _mm256_storeu_ps(yr + j, acc);
      }
      for (std::size_t j = nv; j < n; ++j) yr[j] += v * br[j];
    }

    // Row finish: quantized rows always rescale; fp32 rows only run it
    // for a non-empty epilogue — exactly the scalar control flow.
    if (kQuantized || !ep.empty()) {
      const float scale = [&] {
        if constexpr (kQuantized) return a.scales[r];
        return 1.0f;
      }();
      const float bias = ep.bias != nullptr ? ep.bias[r] : 0.0f;
      const float* res =
          ep.residual != nullptr ? ep.residual + r * n : nullptr;
      const __m256 vscale = _mm256_set1_ps(scale);
      const __m256 vbias = _mm256_set1_ps(bias);
      for (std::size_t j = 0; j < nv; j += 8) {
        __m256 v = _mm256_loadu_ps(yr + j);
        if constexpr (kQuantized) v = _mm256_mul_ps(v, vscale);
        if (ep.bias != nullptr) v = _mm256_add_ps(v, vbias);
        if (res != nullptr) {
          v = _mm256_add_ps(v, _mm256_loadu_ps(res + j));
        }
        _mm256_storeu_ps(yr + j, act8(v, ep));
      }
      for (std::size_t j = nv; j < n; ++j) {
        float v = yr[j];
        if constexpr (kQuantized) v *= scale;
        if (ep.bias != nullptr) v += bias;
        if (res != nullptr) v += res[j];
        yr[j] = ep.activate(v);
      }
    }
  }
}

void avx2_spmm_cols(const CsrView& a, const float* b, std::size_t n,
                    float* out, const kernels::Epilogue& ep) {
  avx2_spmm_cols_impl<CsrView, false>(a, b, n, out, ep);
}

void avx2_qspmm_cols(const QCsrView& a, const float* b, std::size_t n,
                     float* out, const kernels::Epilogue& ep) {
  avx2_spmm_cols_impl<QCsrView, true>(a, b, n, out, ep);
}

// ---------------------------------------------------------------------------
// Flat elementwise epilogue: out[i] = act(in[i] + residual[i]).
// ---------------------------------------------------------------------------

void avx2_epilogue_range(const float* in, float* out, std::size_t i0,
                         std::size_t i1, const kernels::Epilogue& ep) {
  const float* res = ep.residual;
  std::size_t i = i0;
  for (; i + 8 <= i1; i += 8) {
    __m256 v = _mm256_loadu_ps(in + i);
    if (res != nullptr) v = _mm256_add_ps(v, _mm256_loadu_ps(res + i));
    _mm256_storeu_ps(out + i, act8(v, ep));
  }
  for (; i < i1; ++i) {
    float v = in[i];
    if (res != nullptr) v += res[i];
    out[i] = ep.activate(v);
  }
}

const KernelBackend kAvx2{
    "avx2",         true,
    avx2_spmm_rows,  avx2_spmm_cols,
    avx2_qspmm_rows, avx2_qspmm_cols,
    avx2_epilogue_range,
};

}  // namespace

namespace detail {
const KernelBackend& avx2_backend_impl() { return kAvx2; }
}  // namespace detail

}  // namespace dstee::kernels::simd

#endif  // DSTEE_SIMD_AVX2
