// Runtime-dispatched sparse-kernel backends.
//
// Every hot sparse kernel in the serving stack funnels through ONE of the
// function pointers below: `sparse::CsrMatrix::spmm*` and
// `sparse::QCsrMatrix::spmm*` hand their loop bodies to a KernelBackend,
// and the flat `kernels::apply_epilogue` does the same for its elementwise
// tail. Two backends exist:
//
//   scalar  the historical loop nests, unchanged — the bit-identity
//           reference every other backend is tested against
//   avx2    AVX2 variants that vectorize ACROSS THE BATCH dimension
//           (spmm: one nnz broadcast against 8 samples' activations) or
//           across the unit-stride output axis (spmm_cols, epilogue).
//           Each output element accumulates its nonzeros in exactly the
//           scalar order, with a separate multiply and add per step (no
//           FMA contraction), so results are BIT-IDENTICAL to scalar for
//           every batch size; sub-register tails run the scalar code.
//
// The active backend is resolved once at startup: CPUID feature detection
// picks the widest supported backend, and the DSTEE_KERNEL_BACKEND
// environment variable (or `dstee_serve --kernel-backend`, which calls
// set_active_backend) overrides it by name. Executor ops capture the
// backend pointer at bind time, so a bound program keeps its kernels even
// if the process-wide choice changes afterwards.
//
// Intrinsics are confined to src/kernels/simd/ (the `simd-confinement`
// lint rule enforces this); everything else talks to this header only.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "kernels/epilogue.hpp"

namespace dstee::kernels::simd {

/// Raw view of fp32 CSR arrays handed to backend kernels. `row_ptr` holds
/// rows+1 ABSOLUTE offsets into col_idx/values — the same convention as
/// sparse::CsrRowSlice, so a row-slice view passes its pointers through
/// unchanged.
struct CsrView {
  const std::size_t* row_ptr = nullptr;
  const std::uint32_t* col_idx = nullptr;
  const float* values = nullptr;
  std::size_t rows = 0;
  std::size_t cols = 0;
};

/// Raw view of int8-quantized CSR arrays: values are symmetric int8 with
/// one fp32 scale per row of the view (scales[r] corresponds to local row
/// r, i.e. a slice pre-offsets the pointer).
struct QCsrView {
  const std::size_t* row_ptr = nullptr;
  const std::uint32_t* col_idx = nullptr;
  const std::int8_t* values = nullptr;
  const float* scales = nullptr;
  std::size_t rows = 0;
  std::size_t cols = 0;
};

/// One sparse-kernel implementation set. All kernels share the epilogue
/// semantics of the scalar reference (kernels/epilogue.hpp): bias is
/// indexed by the view's LOCAL row, the batched spmm residual by
/// n * ep.residual_stride + r, the spmm_cols residual like `out`.
struct KernelBackend {
  const char* name = "?";
  bool is_simd = false;

  /// Batched SpMM body over output rows [r0, r1) for every batch sample:
  /// out[n * a.rows + r] = ep(sum_k values[k] * x[n * a.cols + col[k]]).
  /// This is the chunk body CsrRowSlice::spmm_into fans out row-wise.
  void (*spmm_rows)(const CsrView& a, const float* x, std::size_t batch,
                    float* out, std::size_t r0, std::size_t r1,
                    const kernels::Epilogue& ep) = nullptr;

  /// Y = A·B for dense row-major B[a.cols, n]: out[r * n + j], each
  /// stored entry streaming one contiguous B row (the conv/im2col path).
  void (*spmm_cols)(const CsrView& a, const float* b, std::size_t n,
                    float* out, const kernels::Epilogue& ep) = nullptr;

  /// Quantized variants: accumulate float(int8 value) · activation in
  /// fp32, multiply the row's accumulator by scales[r] once, then apply
  /// the epilogue exactly like the fp32 kernels.
  void (*qspmm_rows)(const QCsrView& a, const float* x, std::size_t batch,
                     float* out, std::size_t r0, std::size_t r1,
                     const kernels::Epilogue& ep) = nullptr;
  void (*qspmm_cols)(const QCsrView& a, const float* b, std::size_t n,
                     float* out, const kernels::Epilogue& ep) = nullptr;

  /// Flat elementwise epilogue over [i0, i1): out[i] = ep.activate(in[i]
  /// + residual[i]). No bias (no row structure) — the chunk body of
  /// kernels::apply_epilogue.
  void (*epilogue_range)(const float* in, float* out, std::size_t i0,
                         std::size_t i1, const kernels::Epilogue& ep) =
      nullptr;
};

/// The scalar reference backend. Always available.
const KernelBackend& scalar_backend();

/// The AVX2/FMA-dispatch backend, or nullptr when the build lacks AVX2
/// support or the CPU does not report AVX2 (runtime CPUID check).
const KernelBackend* avx2_backend();

/// True when the CPU reports AVX2 (independent of whether the build
/// compiled the AVX2 kernels).
bool cpu_has_avx2();

/// Backend by name ("scalar", "avx2"); nullptr when unknown or
/// unsupported on this machine/build.
const KernelBackend* find_backend(const std::string& name);

/// Names usable with find_backend on this machine, widest last.
std::vector<std::string> available_backends();

/// The process-wide active backend: the widest supported one, unless
/// DSTEE_KERNEL_BACKEND named another at startup or set_active_backend
/// overrode it since. Kernels use this when no explicit backend is given.
const KernelBackend& active_backend();

/// Overrides the active backend by name; fails loudly (util::CheckError)
/// on unknown names or backends this machine cannot run — a silent
/// fallback would invalidate every benchmark taken under the flag.
void set_active_backend(const std::string& name);

namespace detail {
/// Defined in avx2.cpp; referenced only when the build compiles the AVX2
/// kernels (DSTEE_SIMD_AVX2).
const KernelBackend& avx2_backend_impl();
}  // namespace detail

}  // namespace dstee::kernels::simd
