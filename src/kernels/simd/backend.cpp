#include "kernels/simd/backend.hpp"

#include <atomic>

#include "util/check.hpp"
#include "util/env.hpp"

namespace dstee::kernels::simd {

namespace {

// ---------------------------------------------------------------------------
// Scalar reference kernels. These are the historical loop nests from
// sparse/csr.cpp, verbatim — every other backend is defined as
// "bit-identical to these". Do not "improve" them: any change here moves
// the reference every SIMD test compares against.
// ---------------------------------------------------------------------------

void scalar_spmm_rows(const CsrView& a, const float* x, std::size_t batch,
                      float* out, std::size_t r0, std::size_t r1,
                      const kernels::Epilogue& ep) {
  for (std::size_t n = 0; n < batch; ++n) {
    const float* xn = x + n * a.cols;
    float* yn = out + n * a.rows;
    const float* res = ep.residual != nullptr
                           ? ep.residual + n * ep.residual_stride
                           : nullptr;
    for (std::size_t r = r0; r < r1; ++r) {
      float acc = 0.0f;
      for (std::size_t k = a.row_ptr[r]; k < a.row_ptr[r + 1]; ++k) {
        acc += a.values[k] * xn[a.col_idx[k]];
      }
      if (ep.bias != nullptr) acc += ep.bias[r];
      if (res != nullptr) acc += res[r];
      yn[r] = ep.activate(acc);
    }
  }
}

void scalar_spmm_cols(const CsrView& a, const float* b, std::size_t n,
                      float* out, const kernels::Epilogue& ep) {
  for (std::size_t r = 0; r < a.rows; ++r) {
    float* yr = out + r * n;
    for (std::size_t j = 0; j < n; ++j) yr[j] = 0.0f;
    for (std::size_t k = a.row_ptr[r]; k < a.row_ptr[r + 1]; ++k) {
      const float v = a.values[k];
      const float* br = b + a.col_idx[k] * n;
      for (std::size_t j = 0; j < n; ++j) yr[j] += v * br[j];
    }
    if (!ep.empty()) {
      const float bias = ep.bias != nullptr ? ep.bias[r] : 0.0f;
      const float* res =
          ep.residual != nullptr ? ep.residual + r * n : nullptr;
      for (std::size_t j = 0; j < n; ++j) {
        float v = yr[j];
        if (ep.bias != nullptr) v += bias;
        if (res != nullptr) v += res[j];
        yr[j] = ep.activate(v);
      }
    }
  }
}

// Quantized kernels: int8 values widen to float per product, accumulate
// in fp32, and the row scale multiplies the ACCUMULATOR once — before the
// epilogue, so bias/residual stay full-precision fp32 additions.
void scalar_qspmm_rows(const QCsrView& a, const float* x, std::size_t batch,
                       float* out, std::size_t r0, std::size_t r1,
                       const kernels::Epilogue& ep) {
  for (std::size_t n = 0; n < batch; ++n) {
    const float* xn = x + n * a.cols;
    float* yn = out + n * a.rows;
    const float* res = ep.residual != nullptr
                           ? ep.residual + n * ep.residual_stride
                           : nullptr;
    for (std::size_t r = r0; r < r1; ++r) {
      float acc = 0.0f;
      for (std::size_t k = a.row_ptr[r]; k < a.row_ptr[r + 1]; ++k) {
        acc += static_cast<float>(a.values[k]) * xn[a.col_idx[k]];
      }
      acc *= a.scales[r];
      if (ep.bias != nullptr) acc += ep.bias[r];
      if (res != nullptr) acc += res[r];
      yn[r] = ep.activate(acc);
    }
  }
}

void scalar_qspmm_cols(const QCsrView& a, const float* b, std::size_t n,
                       float* out, const kernels::Epilogue& ep) {
  for (std::size_t r = 0; r < a.rows; ++r) {
    float* yr = out + r * n;
    for (std::size_t j = 0; j < n; ++j) yr[j] = 0.0f;
    for (std::size_t k = a.row_ptr[r]; k < a.row_ptr[r + 1]; ++k) {
      const float v = static_cast<float>(a.values[k]);
      const float* br = b + a.col_idx[k] * n;
      for (std::size_t j = 0; j < n; ++j) yr[j] += v * br[j];
    }
    // The scale multiply is part of the row finish even for an empty
    // epilogue — unlike the fp32 kernel, a quantized row is not done
    // until its accumulators are rescaled.
    const float scale = a.scales[r];
    const float bias = ep.bias != nullptr ? ep.bias[r] : 0.0f;
    const float* res = ep.residual != nullptr ? ep.residual + r * n : nullptr;
    for (std::size_t j = 0; j < n; ++j) {
      float v = yr[j] * scale;
      if (ep.bias != nullptr) v += bias;
      if (res != nullptr) v += res[j];
      yr[j] = ep.activate(v);
    }
  }
}

void scalar_epilogue_range(const float* in, float* out, std::size_t i0,
                           std::size_t i1, const kernels::Epilogue& ep) {
  const float* res = ep.residual;
  for (std::size_t i = i0; i < i1; ++i) {
    float v = in[i];
    if (res != nullptr) v += res[i];
    out[i] = ep.activate(v);
  }
}

const KernelBackend kScalar{
    "scalar",        false,
    scalar_spmm_rows, scalar_spmm_cols,
    scalar_qspmm_rows, scalar_qspmm_cols,
    scalar_epilogue_range,
};

/// Startup resolution: widest supported backend unless the environment
/// names one. An explicit DSTEE_KERNEL_BACKEND that cannot run here is a
/// hard error — a silent scalar fallback would corrupt every measurement
/// taken under the flag.
const KernelBackend* resolve_initial_backend() {
  const std::string name = util::env_string("DSTEE_KERNEL_BACKEND", "");
  if (!name.empty()) {
    const KernelBackend* be = find_backend(name);
    util::check(be != nullptr,
                "DSTEE_KERNEL_BACKEND names an unknown or unsupported "
                "backend: " + name);
    return be;
  }
  if (const KernelBackend* be = avx2_backend()) return be;
  return &kScalar;
}

std::atomic<const KernelBackend*>& active_slot() {
  static std::atomic<const KernelBackend*> slot{resolve_initial_backend()};
  return slot;
}

}  // namespace

const KernelBackend& scalar_backend() { return kScalar; }

bool cpu_has_avx2() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

const KernelBackend* avx2_backend() {
#ifdef DSTEE_SIMD_AVX2
  return cpu_has_avx2() ? &detail::avx2_backend_impl() : nullptr;
#else
  return nullptr;
#endif
}

const KernelBackend* find_backend(const std::string& name) {
  if (name == "scalar") return &kScalar;
  if (name == "avx2") return avx2_backend();
  return nullptr;
}

std::vector<std::string> available_backends() {
  std::vector<std::string> names{"scalar"};
  if (avx2_backend() != nullptr) names.emplace_back("avx2");
  return names;
}

const KernelBackend& active_backend() { return *active_slot().load(); }

void set_active_backend(const std::string& name) {
  const KernelBackend* be = find_backend(name);
  util::check(be != nullptr,
              "unknown or unsupported kernel backend: " + name);
  active_slot().store(be);
}

}  // namespace dstee::kernels::simd
