#include "kernels/activations.hpp"

#include <cmath>

#include "kernels/epilogue.hpp"
#include "util/check.hpp"

namespace dstee::kernels {

namespace {

/// Same small-input guard as apply_epilogue (epilogue.cpp): the
/// mask-caching training variants below keep their own loops because the
/// epilogue API has no backward-mask concept.
constexpr std::size_t kElemGrain = 1u << 12;

}  // namespace

tensor::Tensor relu(const tensor::Tensor& x, tensor::Tensor* mask,
                    const runtime::IntraOp& intra) {
  if (mask == nullptr) {
    Epilogue ep;
    ep.has_act = true;
    ep.act = ActKind::kRelu;
    return apply_epilogue(x, ep, intra);
  }
  tensor::Tensor y(x.shape());
  *mask = tensor::Tensor(x.shape());
  runtime::intra_chunks(
      intra, x.numel(), kElemGrain,
      [&](std::size_t i0, std::size_t i1) {
        for (std::size_t i = i0; i < i1; ++i) {
          const bool pos = x[i] > 0.0f;
          (*mask)[i] = pos ? 1.0f : 0.0f;
          y[i] = pos ? x[i] : 0.0f;
        }
      });
  return y;
}

tensor::Tensor add_relu(const tensor::Tensor& a, const tensor::Tensor& b,
                        tensor::Tensor* mask, const runtime::IntraOp& intra) {
  util::check(a.shape() == b.shape(),
              "residual branches disagree: " + a.shape().to_string() +
                  " vs " + b.shape().to_string());
  if (mask == nullptr) {
    Epilogue ep;
    ep.residual = b.raw();
    ep.has_act = true;
    ep.act = ActKind::kRelu;
    return apply_epilogue(a, ep, intra);
  }
  tensor::Tensor y(a.shape());
  *mask = tensor::Tensor(a.shape());
  runtime::intra_chunks(
      intra, a.numel(), kElemGrain,
      [&](std::size_t i0, std::size_t i1) {
        for (std::size_t i = i0; i < i1; ++i) {
          const float s = a[i] + b[i];
          const bool pos = s > 0.0f;
          (*mask)[i] = pos ? 1.0f : 0.0f;
          y[i] = pos ? s : 0.0f;
        }
      });
  return y;
}

tensor::Tensor leaky_relu(const tensor::Tensor& x, float slope,
                          const runtime::IntraOp& intra) {
  Epilogue ep;
  ep.has_act = true;
  ep.act = ActKind::kLeakyRelu;
  ep.slope = slope;
  return apply_epilogue(x, ep, intra);
}

tensor::Tensor sigmoid(const tensor::Tensor& x,
                       const runtime::IntraOp& intra) {
  Epilogue ep;
  ep.has_act = true;
  ep.act = ActKind::kSigmoid;
  return apply_epilogue(x, ep, intra);
}

tensor::Tensor tanh(const tensor::Tensor& x, const runtime::IntraOp& intra) {
  Epilogue ep;
  ep.has_act = true;
  ep.act = ActKind::kTanh;
  return apply_epilogue(x, ep, intra);
}

}  // namespace dstee::kernels
