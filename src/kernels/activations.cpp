#include "kernels/activations.hpp"

#include <cmath>

#include "util/check.hpp"

namespace dstee::kernels {

namespace {

/// Elementwise chunks smaller than this run inline even when the caller
/// asked for intra-op parallelism: the fan-out wake costs more than the
/// loop itself.
constexpr std::size_t kElemGrain = 1u << 12;

}  // namespace

tensor::Tensor relu(const tensor::Tensor& x, tensor::Tensor* mask,
                    const runtime::IntraOp& intra) {
  tensor::Tensor y(x.shape());
  if (mask != nullptr) *mask = tensor::Tensor(x.shape());
  runtime::intra_chunks(
      intra, x.numel(), kElemGrain,
      [&](std::size_t i0, std::size_t i1) {
        for (std::size_t i = i0; i < i1; ++i) {
          const bool pos = x[i] > 0.0f;
          if (mask != nullptr) (*mask)[i] = pos ? 1.0f : 0.0f;
          y[i] = pos ? x[i] : 0.0f;
        }
      });
  return y;
}

tensor::Tensor add_relu(const tensor::Tensor& a, const tensor::Tensor& b,
                        tensor::Tensor* mask, const runtime::IntraOp& intra) {
  util::check(a.shape() == b.shape(),
              "residual branches disagree: " + a.shape().to_string() +
                  " vs " + b.shape().to_string());
  tensor::Tensor y(a.shape());
  if (mask != nullptr) *mask = tensor::Tensor(a.shape());
  runtime::intra_chunks(
      intra, a.numel(), kElemGrain,
      [&](std::size_t i0, std::size_t i1) {
        for (std::size_t i = i0; i < i1; ++i) {
          const float s = a[i] + b[i];
          const bool pos = s > 0.0f;
          if (mask != nullptr) (*mask)[i] = pos ? 1.0f : 0.0f;
          y[i] = pos ? s : 0.0f;
        }
      });
  return y;
}

tensor::Tensor leaky_relu(const tensor::Tensor& x, float slope,
                          const runtime::IntraOp& intra) {
  tensor::Tensor y(x.shape());
  runtime::intra_chunks(
      intra, x.numel(), kElemGrain,
      [&](std::size_t i0, std::size_t i1) {
        for (std::size_t i = i0; i < i1; ++i) {
          y[i] = x[i] > 0.0f ? x[i] : slope * x[i];
        }
      });
  return y;
}

tensor::Tensor sigmoid(const tensor::Tensor& x,
                       const runtime::IntraOp& intra) {
  tensor::Tensor y(x.shape());
  runtime::intra_chunks(
      intra, x.numel(), kElemGrain,
      [&](std::size_t i0, std::size_t i1) {
        for (std::size_t i = i0; i < i1; ++i) {
          y[i] = 1.0f / (1.0f + std::exp(-x[i]));
        }
      });
  return y;
}

tensor::Tensor tanh(const tensor::Tensor& x, const runtime::IntraOp& intra) {
  tensor::Tensor y(x.shape());
  runtime::intra_chunks(
      intra, x.numel(), kElemGrain,
      [&](std::size_t i0, std::size_t i1) {
        for (std::size_t i = i0; i < i1; ++i) y[i] = std::tanh(x[i]);
      });
  return y;
}

}  // namespace dstee::kernels
