#include "kernels/activations.hpp"

#include <cmath>

#include "util/check.hpp"

namespace dstee::kernels {

tensor::Tensor relu(const tensor::Tensor& x, tensor::Tensor* mask) {
  tensor::Tensor y(x.shape());
  if (mask != nullptr) {
    *mask = tensor::Tensor(x.shape());
    for (std::size_t i = 0; i < x.numel(); ++i) {
      const bool pos = x[i] > 0.0f;
      (*mask)[i] = pos ? 1.0f : 0.0f;
      y[i] = pos ? x[i] : 0.0f;
    }
    return y;
  }
  for (std::size_t i = 0; i < x.numel(); ++i) {
    y[i] = x[i] > 0.0f ? x[i] : 0.0f;
  }
  return y;
}

tensor::Tensor add_relu(const tensor::Tensor& a, const tensor::Tensor& b,
                        tensor::Tensor* mask) {
  util::check(a.shape() == b.shape(),
              "residual branches disagree: " + a.shape().to_string() +
                  " vs " + b.shape().to_string());
  tensor::Tensor y(a.shape());
  if (mask != nullptr) *mask = tensor::Tensor(a.shape());
  for (std::size_t i = 0; i < a.numel(); ++i) {
    const float s = a[i] + b[i];
    const bool pos = s > 0.0f;
    if (mask != nullptr) (*mask)[i] = pos ? 1.0f : 0.0f;
    y[i] = pos ? s : 0.0f;
  }
  return y;
}

tensor::Tensor leaky_relu(const tensor::Tensor& x, float slope) {
  tensor::Tensor y(x.shape());
  for (std::size_t i = 0; i < x.numel(); ++i) {
    y[i] = x[i] > 0.0f ? x[i] : slope * x[i];
  }
  return y;
}

tensor::Tensor sigmoid(const tensor::Tensor& x) {
  tensor::Tensor y(x.shape());
  for (std::size_t i = 0; i < x.numel(); ++i) {
    y[i] = 1.0f / (1.0f + std::exp(-x[i]));
  }
  return y;
}

tensor::Tensor tanh(const tensor::Tensor& x) {
  tensor::Tensor y(x.shape());
  for (std::size_t i = 0; i < x.numel(); ++i) y[i] = std::tanh(x[i]);
  return y;
}

}  // namespace dstee::kernels
