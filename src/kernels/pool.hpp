// Stateless spatial pooling kernels over NCHW tensors.
//
// nn/ pooling layers call these from forward() (max pooling optionally
// records the argmax indices its backward scatters into), and serve/ eval
// ops call them without any cache — the same loop nest either way.
#pragma once

#include <cstddef>
#include <vector>

#include "tensor/tensor.hpp"

namespace dstee::kernels {

/// Max pooling with a square window: [N, C, H, W] → [N, C, Ho, Wo] with
/// Ho = (H - kernel)/stride + 1. When `argmax` is non-null it receives one
/// flat input index per output element (the train-time backward cache).
tensor::Tensor maxpool2d(const tensor::Tensor& x, std::size_t kernel,
                         std::size_t stride,
                         std::vector<std::size_t>* argmax = nullptr);

/// Average pooling with a square window and stride == kernel:
/// [N, C, H, W] → [N, C, H/kernel, W/kernel].
tensor::Tensor avgpool2d(const tensor::Tensor& x, std::size_t kernel);

/// Global average pooling: [N, C, H, W] → [N, C].
tensor::Tensor global_avg_pool(const tensor::Tensor& x);

}  // namespace dstee::kernels
