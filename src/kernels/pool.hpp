// Stateless spatial pooling kernels over NCHW tensors.
//
// nn/ pooling layers call these from forward() (max pooling optionally
// records the argmax indices its backward scatters into), and serve/ eval
// ops call them without any cache — the same loop nest either way. Every
// kernel accepts a runtime::IntraOp that splits the N·C plane dimension
// across the persistent runtime pool; planes are independent, so each
// output element has exactly one writer and results are bit-identical for
// any chunk count. The default policy runs inline.
#pragma once

#include <cstddef>
#include <vector>

#include "runtime/pool.hpp"
#include "tensor/tensor.hpp"

namespace dstee::kernels {

/// Max pooling with a square window: [N, C, H, W] → [N, C, Ho, Wo] with
/// Ho = (H - kernel)/stride + 1. When `argmax` is non-null it receives one
/// flat input index per output element (the train-time backward cache).
tensor::Tensor maxpool2d(const tensor::Tensor& x, std::size_t kernel,
                         std::size_t stride,
                         std::vector<std::size_t>* argmax = nullptr,
                         const runtime::IntraOp& intra = {});

/// Average pooling with a square window and stride == kernel:
/// [N, C, H, W] → [N, C, H/kernel, W/kernel].
tensor::Tensor avgpool2d(const tensor::Tensor& x, std::size_t kernel,
                         const runtime::IntraOp& intra = {});

/// Global average pooling: [N, C, H, W] → [N, C].
tensor::Tensor global_avg_pool(const tensor::Tensor& x,
                               const runtime::IntraOp& intra = {});

}  // namespace dstee::kernels
