// DST-EE public API — the paper's contribution behind one object.
//
// Usage (see examples/quickstart.cpp):
//
//   models::Mlp model(cfg, rng);
//   optim::Sgd opt(model.parameters(), sgd_cfg);
//   core::DstEeConfig ee;
//   ee.sparsity = 0.95;
//   core::DstEeSession session(model, opt, ee, total_iterations, seed);
//   for each iteration:
//     ... forward / loss / backward ...
//     session.on_iteration_end(iter, lr);   // drop-and-grow + mask grads
//     opt.step();
//     session.after_optimizer_step();       // keep masked weights at zero
//
// The session owns the SparseModel (masks + counters), the DST-EE engine
// (acquisition scores, Algorithm 1), and the exploration tracker (ITOP R).
#pragma once

#include <memory>

#include "methods/dst_engine.hpp"
#include "nn/module.hpp"
#include "optim/optimizer.hpp"
#include "sparse/distribution.hpp"
#include "sparse/sparse_model.hpp"

namespace dstee::core {

/// All DST-EE hyperparameters with the paper's defaults.
struct DstEeConfig {
  double sparsity = 0.9;  ///< global sparsity of the sparsifiable weights
  sparse::DistributionKind distribution = sparse::DistributionKind::kErk;
  std::size_t delta_t = 50;     ///< ΔT — iterations between mask updates
  double drop_fraction = 0.3;   ///< α₀ — fraction replaced per update
  double stop_fraction = 0.75;  ///< stop topology updates after this
                                ///< fraction of training (1.0 = Algorithm 1)
  double c = 1e-3;              ///< exploration coefficient (Eq. 1)
  double eps = 1e-3;            ///< ε in the exploration denominator
};

/// Binds DST-EE sparse training to an existing model + optimizer.
class DstEeSession {
 public:
  /// Sparsifies `model` in place (ERK random masks at `config.sparsity`)
  /// and prepares the drop-and-grow engine for `total_iterations` steps.
  /// Both `model` and `optimizer` must outlive the session; the optimizer
  /// must have been constructed from this model's parameters() order.
  DstEeSession(nn::Module& model, optim::Optimizer& optimizer,
               const DstEeConfig& config, std::size_t total_iterations,
               std::uint64_t seed);

  /// Call after backward(): runs a mask update when the schedule fires,
  /// then masks gradients so the optimizer leaves inactive weights alone.
  /// Returns true when a drop-and-grow round executed.
  bool on_iteration_end(std::size_t iteration, double learning_rate);

  /// Call after optimizer.step(): re-applies masks to parameter values.
  void after_optimizer_step();

  /// Current exploration rate R (fraction of weights ever activated).
  double exploration_rate() const;

  /// Achieved global sparsity (should equal the configured target).
  double sparsity() const { return model_state_.global_sparsity(); }

  sparse::SparseModel& sparse_model() { return model_state_; }
  const sparse::SparseModel& sparse_model() const { return model_state_; }
  const methods::DstEngine& engine() const { return *engine_; }
  const DstEeConfig& config() const { return config_; }

 private:
  DstEeConfig config_;
  sparse::SparseModel model_state_;
  std::unique_ptr<methods::DstEngine> engine_;
};

}  // namespace dstee::core
