#include "core/dst_ee.hpp"

#include "methods/drop_policy.hpp"
#include "methods/grow_policy.hpp"
#include "util/check.hpp"

namespace dstee::core {

namespace {

sparse::SparseModel make_sparse_model(nn::Module& model,
                                      const DstEeConfig& config,
                                      std::uint64_t seed) {
  util::Rng rng(seed);
  return sparse::SparseModel(model, config.sparsity, config.distribution,
                             rng);
}

methods::DstEngineConfig make_engine_config(const DstEeConfig& config,
                                            std::size_t total_iterations) {
  methods::DstEngineConfig cfg;
  cfg.schedule.delta_t = config.delta_t;
  cfg.schedule.total_iterations = total_iterations;
  cfg.schedule.stop_fraction = config.stop_fraction;
  cfg.schedule.initial_drop_fraction = config.drop_fraction;
  cfg.schedule.decay = methods::DropFractionDecay::kCosine;
  cfg.drop = std::make_unique<methods::MagnitudeDrop>();
  methods::DstEeGrow::Config ee;
  ee.c = config.c;
  ee.eps = config.eps;
  cfg.grow = std::make_unique<methods::DstEeGrow>(ee);
  return cfg;
}

}  // namespace

DstEeSession::DstEeSession(nn::Module& model, optim::Optimizer& optimizer,
                           const DstEeConfig& config,
                           std::size_t total_iterations, std::uint64_t seed)
    : config_(config),
      model_state_(make_sparse_model(model, config, seed)) {
  util::check(total_iterations > 0, "total iterations must be positive");
  util::Rng rng(seed);
  engine_ = std::make_unique<methods::DstEngine>(
      model_state_, optimizer, make_engine_config(config, total_iterations),
      rng.fork("dst-ee/engine"));
}

bool DstEeSession::on_iteration_end(std::size_t iteration,
                                    double learning_rate) {
  const bool updated = engine_->maybe_update(iteration, learning_rate);
  model_state_.apply_masks_to_grads();
  return updated;
}

void DstEeSession::after_optimizer_step() {
  model_state_.apply_masks_to_values();
}

double DstEeSession::exploration_rate() const {
  return engine_->exploration().exploration_rate();
}

}  // namespace dstee::core
