// Optimizers. The paper trains with SGD + momentum under cosine annealing;
// Adam is provided for the GNN experiments and ablations.
//
// Sparse-training integration: optimizers expose `reset_state_at` so the
// DST engine can clear stale momentum when a weight is dropped or grown
// (RigL's reference implementation does the same — carrying momentum across
// topology changes lets dead weights "ghost-update").
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/parameter.hpp"

namespace dstee::optim {

/// Base optimizer over a fixed parameter set.
class Optimizer {
 public:
  explicit Optimizer(std::vector<nn::Parameter*> params);
  virtual ~Optimizer() = default;
  Optimizer(const Optimizer&) = delete;
  Optimizer& operator=(const Optimizer&) = delete;

  /// Applies one update using each parameter's accumulated gradient.
  virtual void step() = 0;

  /// Clears optimizer state (e.g. momentum) for element `flat_index` of
  /// parameter `param_idx`. No-op for stateless optimizers.
  virtual void reset_state_at(std::size_t param_idx, std::size_t flat_index);

  /// Current learning rate.
  double learning_rate() const { return lr_; }
  /// Updates the learning rate (driven by an LrSchedule each iteration).
  void set_learning_rate(double lr) { lr_ = lr; }

  std::size_t num_params() const { return params_.size(); }
  nn::Parameter& param(std::size_t i) { return *params_[i]; }

  virtual std::string name() const = 0;

 protected:
  std::vector<nn::Parameter*> params_;
  double lr_ = 0.1;
};

/// SGD with momentum, optional Nesterov, and decoupled L2 weight decay.
/// Weight decay is applied only to sparsifiable parameters' active weights
/// being updated; biases/batch-norm are exempt (standard practice).
class Sgd : public Optimizer {
 public:
  struct Config {
    double lr = 0.1;
    double momentum = 0.9;
    double weight_decay = 0.0;
    bool nesterov = false;
    bool decay_bn_and_bias = false;
  };

  Sgd(std::vector<nn::Parameter*> params, const Config& config);

  void step() override;
  void reset_state_at(std::size_t param_idx, std::size_t flat_index) override;
  std::string name() const override { return "sgd"; }

  const Config& config() const { return config_; }

 private:
  Config config_;
  std::vector<tensor::Tensor> velocity_;
};

/// Adam (Kingma & Ba) with bias correction.
class Adam : public Optimizer {
 public:
  struct Config {
    double lr = 1e-3;
    double beta1 = 0.9;
    double beta2 = 0.999;
    double eps = 1e-8;
    double weight_decay = 0.0;
  };

  Adam(std::vector<nn::Parameter*> params, const Config& config);

  void step() override;
  void reset_state_at(std::size_t param_idx, std::size_t flat_index) override;
  std::string name() const override { return "adam"; }

 private:
  Config config_;
  std::vector<tensor::Tensor> m_;
  std::vector<tensor::Tensor> v_;
  std::size_t t_ = 0;
};

}  // namespace dstee::optim
