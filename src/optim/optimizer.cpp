#include "optim/optimizer.hpp"

#include <cmath>

#include "util/check.hpp"

namespace dstee::optim {

Optimizer::Optimizer(std::vector<nn::Parameter*> params)
    : params_(std::move(params)) {
  util::check(!params_.empty(), "optimizer requires at least one parameter");
  for (const auto* p : params_) {
    util::check(p != nullptr, "optimizer received a null parameter");
  }
}

void Optimizer::reset_state_at(std::size_t param_idx, std::size_t flat_index) {
  (void)param_idx;
  (void)flat_index;
}

Sgd::Sgd(std::vector<nn::Parameter*> params, const Config& config)
    : Optimizer(std::move(params)), config_(config) {
  lr_ = config.lr;
  velocity_.reserve(params_.size());
  for (const auto* p : params_) {
    velocity_.emplace_back(p->value.shape());
  }
}

void Sgd::step() {
  const float lr = static_cast<float>(lr_);
  const float mu = static_cast<float>(config_.momentum);
  const float wd = static_cast<float>(config_.weight_decay);
  for (std::size_t pi = 0; pi < params_.size(); ++pi) {
    nn::Parameter& p = *params_[pi];
    tensor::Tensor& vel = velocity_[pi];
    const bool decay =
        wd != 0.0f && (p.sparsifiable || config_.decay_bn_and_bias);
    for (std::size_t i = 0; i < p.value.numel(); ++i) {
      float g = p.grad[i];
      if (decay) g += wd * p.value[i];
      if (mu != 0.0f) {
        vel[i] = mu * vel[i] + g;
        g = config_.nesterov ? g + mu * vel[i] : vel[i];
      }
      p.value[i] -= lr * g;
    }
  }
}

void Sgd::reset_state_at(std::size_t param_idx, std::size_t flat_index) {
  util::check(param_idx < velocity_.size(), "sgd parameter index out of range");
  velocity_[param_idx].at(flat_index) = 0.0f;
}

Adam::Adam(std::vector<nn::Parameter*> params, const Config& config)
    : Optimizer(std::move(params)), config_(config) {
  lr_ = config.lr;
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const auto* p : params_) {
    m_.emplace_back(p->value.shape());
    v_.emplace_back(p->value.shape());
  }
}

void Adam::step() {
  ++t_;
  const double b1 = config_.beta1, b2 = config_.beta2;
  const double bias1 = 1.0 - std::pow(b1, static_cast<double>(t_));
  const double bias2 = 1.0 - std::pow(b2, static_cast<double>(t_));
  const double step_size = lr_ / bias1;
  const float wd = static_cast<float>(config_.weight_decay);
  for (std::size_t pi = 0; pi < params_.size(); ++pi) {
    nn::Parameter& p = *params_[pi];
    tensor::Tensor& m = m_[pi];
    tensor::Tensor& v = v_[pi];
    for (std::size_t i = 0; i < p.value.numel(); ++i) {
      float g = p.grad[i];
      if (wd != 0.0f && p.sparsifiable) g += wd * p.value[i];
      m[i] = static_cast<float>(b1 * m[i] + (1.0 - b1) * g);
      v[i] = static_cast<float>(b2 * v[i] + (1.0 - b2) * g * g);
      const double vhat = v[i] / bias2;
      p.value[i] -= static_cast<float>(step_size * m[i] /
                                       (std::sqrt(vhat) + config_.eps));
    }
  }
}

void Adam::reset_state_at(std::size_t param_idx, std::size_t flat_index) {
  util::check(param_idx < m_.size(), "adam parameter index out of range");
  m_[param_idx].at(flat_index) = 0.0f;
  v_[param_idx].at(flat_index) = 0.0f;
}

}  // namespace dstee::optim
