// Learning-rate schedules. The paper uses cosine annealing with SGD.
#pragma once

#include <cstddef>
#include <memory>
#include <string>

namespace dstee::optim {

/// Maps a global iteration index to a learning rate.
class LrSchedule {
 public:
  virtual ~LrSchedule() = default;
  /// Learning rate at iteration `t` (0-based) of `total` iterations.
  virtual double lr_at(std::size_t t) const = 0;
  virtual std::string name() const = 0;
};

/// Constant learning rate.
class ConstantLr : public LrSchedule {
 public:
  explicit ConstantLr(double lr);
  double lr_at(std::size_t t) const override;
  std::string name() const override { return "constant"; }

 private:
  double lr_;
};

/// Step decay: lr = base · gammaᵏ where k = t / step_every.
class StepLr : public LrSchedule {
 public:
  StepLr(double base_lr, std::size_t step_every, double gamma);
  double lr_at(std::size_t t) const override;
  std::string name() const override { return "step"; }

 private:
  double base_lr_;
  std::size_t step_every_;
  double gamma_;
};

/// Cosine annealing from base_lr down to min_lr over `total_iters`
/// (paper's scheduler): lr(t) = min + 0.5(base−min)(1 + cos(πt/T)).
class CosineAnnealingLr : public LrSchedule {
 public:
  CosineAnnealingLr(double base_lr, std::size_t total_iters,
                    double min_lr = 0.0);
  double lr_at(std::size_t t) const override;
  std::string name() const override { return "cosine"; }

 private:
  double base_lr_;
  std::size_t total_iters_;
  double min_lr_;
};

/// Linear warmup for the first `warmup_iters`, then delegates to `inner`.
class WarmupLr : public LrSchedule {
 public:
  WarmupLr(std::unique_ptr<LrSchedule> inner, std::size_t warmup_iters);
  double lr_at(std::size_t t) const override;
  std::string name() const override { return "warmup+" + inner_->name(); }

 private:
  std::unique_ptr<LrSchedule> inner_;
  std::size_t warmup_iters_;
};

}  // namespace dstee::optim
