#include "optim/lr_schedule.hpp"

#include <cmath>
#include <numbers>

#include "util/check.hpp"

namespace dstee::optim {

ConstantLr::ConstantLr(double lr) : lr_(lr) {
  util::check(lr > 0.0, "learning rate must be positive");
}

double ConstantLr::lr_at(std::size_t) const { return lr_; }

StepLr::StepLr(double base_lr, std::size_t step_every, double gamma)
    : base_lr_(base_lr), step_every_(step_every), gamma_(gamma) {
  util::check(base_lr > 0.0, "learning rate must be positive");
  util::check(step_every > 0, "step interval must be positive");
  util::check(gamma > 0.0 && gamma <= 1.0, "gamma must be in (0, 1]");
}

double StepLr::lr_at(std::size_t t) const {
  const auto k = static_cast<double>(t / step_every_);
  return base_lr_ * std::pow(gamma_, k);
}

CosineAnnealingLr::CosineAnnealingLr(double base_lr, std::size_t total_iters,
                                     double min_lr)
    : base_lr_(base_lr), total_iters_(total_iters), min_lr_(min_lr) {
  util::check(base_lr > 0.0, "learning rate must be positive");
  util::check(total_iters > 0, "total iterations must be positive");
  util::check(min_lr >= 0.0 && min_lr <= base_lr,
              "min_lr must lie in [0, base_lr]");
}

double CosineAnnealingLr::lr_at(std::size_t t) const {
  const double progress =
      std::min(1.0, static_cast<double>(t) / static_cast<double>(total_iters_));
  return min_lr_ + 0.5 * (base_lr_ - min_lr_) *
                       (1.0 + std::cos(std::numbers::pi * progress));
}

WarmupLr::WarmupLr(std::unique_ptr<LrSchedule> inner,
                   std::size_t warmup_iters)
    : inner_(std::move(inner)), warmup_iters_(warmup_iters) {
  util::check(inner_ != nullptr, "warmup requires an inner schedule");
}

double WarmupLr::lr_at(std::size_t t) const {
  if (warmup_iters_ == 0 || t >= warmup_iters_) return inner_->lr_at(t);
  const double frac =
      static_cast<double>(t + 1) / static_cast<double>(warmup_iters_);
  return inner_->lr_at(warmup_iters_) * frac;
}

}  // namespace dstee::optim
