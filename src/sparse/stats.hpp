// Topology statistics: churn between mask updates, per-layer summaries.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "sparse/sparse_model.hpp"

namespace dstee::sparse {

/// Summary of one drop-and-grow round.
struct UpdateStats {
  std::size_t round = 0;          ///< mask-update round index q
  std::size_t iteration = 0;      ///< global iteration t = q·ΔT
  std::size_t dropped = 0;        ///< weights deactivated this round
  std::size_t grown = 0;          ///< weights activated this round
  std::size_t never_seen_grown = 0;  ///< grown weights with counter N == 0
  double exploration_rate = 0.0;  ///< R after this round
};

/// Rolling log of update rounds (kept by the DST engine; benches read it).
class TopologyLog {
 public:
  void record(UpdateStats stats) { rounds_.push_back(stats); }
  const std::vector<UpdateStats>& rounds() const { return rounds_; }
  std::size_t num_rounds() const { return rounds_.size(); }

  /// Total dropped/grown over all rounds.
  std::size_t total_dropped() const;
  std::size_t total_grown() const;

  /// Fraction of grown weights that had never been active before —
  /// a direct measure of how much "exploration" growth is doing.
  double never_seen_growth_fraction() const;

 private:
  std::vector<UpdateStats> rounds_;
};

/// Validates sparse-model invariants; returns a description of the first
/// violation or an empty string when everything holds. Used by tests and
/// (cheaply) by the engine in debug builds.
std::string validate_invariants(const SparseModel& model);

}  // namespace dstee::sparse
