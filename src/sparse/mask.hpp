// Binary mask over a parameter tensor.
//
// Invariant: every element is exactly 0.0f or 1.0f. The mask is the unit
// the whole paper operates on — drop-and-grow edits it, counters accumulate
// it, exploration tracks its union over time.
#pragma once

#include <cstddef>
#include <vector>

#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace dstee::sparse {

/// Binary mask with the same shape as its parameter.
class Mask {
 public:
  Mask() = default;

  /// All-ones (dense) mask of the given shape.
  explicit Mask(tensor::Shape shape);

  /// Mask with exactly `active` ones placed uniformly at random.
  static Mask random(tensor::Shape shape, std::size_t active, util::Rng& rng);

  /// Mask with ones at `indices` (flat), zeros elsewhere.
  static Mask from_indices(tensor::Shape shape,
                           const std::vector<std::size_t>& indices);

  const tensor::Shape& shape() const { return values_.shape(); }
  std::size_t numel() const { return values_.numel(); }

  /// Number of active (1) entries.
  std::size_t num_active() const;

  /// Fraction of active entries in [0, 1].
  double density() const;

  bool is_active(std::size_t flat_index) const;

  /// Activates / deactivates a single element.
  void activate(std::size_t flat_index);
  void deactivate(std::size_t flat_index);

  /// Flat indices of all active / inactive elements (ascending).
  std::vector<std::size_t> active_indices() const;
  std::vector<std::size_t> inactive_indices() const;

  /// The underlying 0/1 tensor (read-only; mutate via activate/deactivate
  /// so the invariant holds).
  const tensor::Tensor& tensor() const { return values_; }

  /// t ⊙ mask, in place.
  void apply_to(tensor::Tensor& t) const;

  /// Number of positions where this mask and `other` differ.
  std::size_t hamming_distance(const Mask& other) const;

 private:
  tensor::Tensor values_;
};

}  // namespace dstee::sparse
