// SparseModel: binds masks to every sparsifiable parameter of a module
// tree and maintains the global sparse-training invariants.
#pragma once

#include <string>
#include <vector>

#include "nn/module.hpp"
#include "sparse/distribution.hpp"
#include "sparse/masked_parameter.hpp"
#include "util/rng.hpp"

namespace dstee::sparse {

/// Per-layer density snapshot for reports and tests.
struct LayerDensity {
  std::string name;
  std::size_t numel = 0;
  std::size_t active = 0;
  double density = 0.0;
};

/// Owns the mask state for one model. Construction sparsifies the model in
/// place: per-layer active counts come from the chosen distribution, masks
/// are sampled uniformly at random (the paper's random sparse init), and
/// masked weights are zeroed.
class SparseModel {
 public:
  /// `model` must outlive this object. `global_sparsity` in [0,1);
  /// 0 builds all-dense masks (useful as the dense baseline).
  SparseModel(nn::Module& model, double global_sparsity,
              DistributionKind distribution, util::Rng& rng);

  std::size_t num_layers() const { return layers_.size(); }
  MaskedParameter& layer(std::size_t i);
  const MaskedParameter& layer(std::size_t i) const;
  std::vector<MaskedParameter>& layers() { return layers_; }

  double target_sparsity() const { return target_sparsity_; }
  DistributionKind distribution() const { return distribution_; }

  /// Total / active sparsifiable weights across layers.
  std::size_t total_weights() const;
  std::size_t total_active() const;

  /// Achieved global density over sparsifiable parameters.
  double global_density() const;

  /// Achieved global sparsity (1 − density).
  double global_sparsity() const { return 1.0 - global_density(); }

  /// Applies every mask to its parameter values (enforces the invariant
  /// "masked weights are zero").
  void apply_masks_to_values();

  /// Applies every mask to its parameter gradients (so the optimizer step
  /// leaves inactive weights untouched).
  void apply_masks_to_grads();

  /// Adds each current mask into its occurrence counter (Algorithm 1's
  /// per-round N update).
  void accumulate_counters();

  /// Resets every counter to the current mask (Algorithm 1's N ← M
  /// initialization). Static pruners call this after replacing the masks.
  void reset_counters_to_masks();

  /// Per-layer density report.
  std::vector<LayerDensity> layer_report() const;

 private:
  std::vector<MaskedParameter> layers_;
  double target_sparsity_;
  DistributionKind distribution_;
};

}  // namespace dstee::sparse
