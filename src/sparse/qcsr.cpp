#include "sparse/qcsr.hpp"

#include <algorithm>
#include <cmath>

#include "kernels/simd/backend.hpp"
#include "sparse/csr.hpp"
#include "util/check.hpp"

namespace dstee::sparse {

namespace {

kernels::simd::QCsrView view_of(const std::size_t* row_ptr,
                                const std::uint32_t* col_idx,
                                const std::int8_t* values,
                                const float* scales, std::size_t rows,
                                std::size_t cols) {
  return kernels::simd::QCsrView{row_ptr, col_idx, values, scales, rows,
                                 cols};
}

}  // namespace

QCsrMatrix QCsrMatrix::quantize(const CsrMatrix& src) {
  QCsrMatrix q(src.rows(), src.cols());
  q.row_ptr_ = src.row_ptr();
  q.col_idx_ = src.col_idx();
  q.values_.resize(src.nnz());
  q.scales_.resize(src.rows());
  const auto& values = src.values();
  for (std::size_t r = 0; r < src.rows(); ++r) {
    float amax = 0.0f;
    for (std::size_t k = q.row_ptr_[r]; k < q.row_ptr_[r + 1]; ++k) {
      amax = std::max(amax, std::fabs(values[k]));
    }
    // All-zero (or empty) rows quantize to zeros under any scale; 1.0
    // keeps dequantization well-defined without a special case.
    const float scale = amax > 0.0f ? amax / 127.0f : 1.0f;
    q.scales_[r] = scale;
    for (std::size_t k = q.row_ptr_[r]; k < q.row_ptr_[r + 1]; ++k) {
      // Round-to-nearest; |v| <= amax guarantees the quotient is in
      // [-127, 127], so no clamp is needed.
      q.values_[k] =
          static_cast<std::int8_t>(std::lround(values[k] / scale));
    }
  }
  return q;
}

double QCsrMatrix::density() const {
  const double total = static_cast<double>(rows_) * static_cast<double>(cols_);
  return total > 0.0 ? static_cast<double>(nnz()) / total : 0.0;
}

tensor::Tensor QCsrMatrix::spmm(
    const tensor::Tensor& x, const runtime::IntraOp& intra,
    const kernels::Epilogue& ep,
    const kernels::simd::KernelBackend* backend) const {
  return row_slice(0, rows_).spmm(x, intra, ep, backend);
}

void QCsrMatrix::spmm_cols_into(
    const tensor::Tensor& cols, float* out, const kernels::Epilogue& ep,
    const kernels::simd::KernelBackend* backend) const {
  util::check(cols.rank() == 2 && cols.dim(0) == cols_,
              "spmm_cols expects [cols, n]");
  row_slice(0, rows_).spmm_cols_into(cols.raw(), cols.dim(1), out, ep,
                                     backend);
}

QCsrRowSlice QCsrMatrix::row_slice(std::size_t r0, std::size_t r1) const {
  util::check(r0 <= r1 && r1 <= rows_,
              "row_slice requires 0 <= r0 <= r1 <= rows");
  return QCsrRowSlice(row_ptr_.data() + r0, col_idx_.data(), values_.data(),
                      scales_.data() + r0, r1 - r0, cols_);
}

std::vector<std::size_t> QCsrMatrix::balanced_row_splits(
    std::size_t ways) const {
  util::check(ways >= 1 && ways <= rows_,
              "balanced_row_splits requires 1 <= ways <= rows");
  std::vector<std::size_t> bounds(ways + 1, 0);
  bounds[ways] = rows_;
  const std::size_t total = nnz();
  for (std::size_t j = 1; j < ways; ++j) {
    const std::size_t target = (total * j + ways / 2) / ways;
    std::size_t b = static_cast<std::size_t>(
        std::lower_bound(row_ptr_.begin(), row_ptr_.end(), target) -
        row_ptr_.begin());
    if (b > 0 && (b > rows_ ||
                  target - row_ptr_[b - 1] <= row_ptr_[b] - target)) {
      --b;
    }
    b = std::clamp(b, j, rows_ - (ways - j));
    bounds[j] = std::max(b, bounds[j - 1] + 1);
  }
  return bounds;
}

tensor::Tensor QCsrMatrix::to_dense() const {
  return row_slice(0, rows_).to_dense();
}

std::size_t QCsrMatrix::weight_bytes() const {
  return values_.size() * sizeof(std::int8_t) +
         col_idx_.size() * sizeof(std::uint32_t) +
         scales_.size() * sizeof(float) +
         row_ptr_.size() * sizeof(std::size_t);
}

tensor::Tensor QCsrRowSlice::spmm(
    const tensor::Tensor& x, const runtime::IntraOp& intra,
    const kernels::Epilogue& ep,
    const kernels::simd::KernelBackend* backend) const {
  tensor::Tensor y({x.rank() == 2 ? x.dim(0) : 0, rows_});
  spmm_into(x, y.raw(), intra, ep, backend);
  return y;
}

void QCsrRowSlice::spmm_into(
    const tensor::Tensor& x, float* out, const runtime::IntraOp& intra,
    const kernels::Epilogue& ep,
    const kernels::simd::KernelBackend* backend) const {
  util::check(x.rank() == 2 && x.dim(1) == cols_,
              "spmm expects [batch, cols]");
  util::check(ep.residual == nullptr || ep.residual_stride > 0,
              "spmm fused residual requires residual_stride");
  const std::size_t batch = x.dim(0);
  const kernels::simd::KernelBackend& be =
      backend != nullptr ? *backend : kernels::simd::active_backend();
  const kernels::simd::QCsrView a =
      view_of(row_ptr_, col_idx_, values_, scales_, rows_, cols_);
  runtime::intra_chunks(intra, rows_, [&](std::size_t r0, std::size_t r1) {
    be.qspmm_rows(a, x.raw(), batch, out, r0, r1, ep);
  });
}

void QCsrRowSlice::spmm_cols_into(
    const float* b, std::size_t n, float* out, const kernels::Epilogue& ep,
    const kernels::simd::KernelBackend* backend) const {
  const kernels::simd::KernelBackend& be =
      backend != nullptr ? *backend : kernels::simd::active_backend();
  be.qspmm_cols(view_of(row_ptr_, col_idx_, values_, scales_, rows_, cols_),
                b, n, out, ep);
}

QCsrRowSlice QCsrRowSlice::row_slice(std::size_t r0, std::size_t r1) const {
  util::check(r0 <= r1 && r1 <= rows_,
              "row_slice requires 0 <= r0 <= r1 <= rows");
  return QCsrRowSlice(row_ptr_ + r0, col_idx_, values_, scales_ + r0,
                      r1 - r0, cols_);
}

tensor::Tensor QCsrRowSlice::to_dense() const {
  tensor::Tensor dense({rows_, cols_});
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      dense[r * cols_ + col_idx_[k]] =
          scales_[r] * static_cast<float>(values_[k]);
    }
  }
  return dense;
}

}  // namespace dstee::sparse
