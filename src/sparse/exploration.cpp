#include "sparse/exploration.hpp"

#include "util/check.hpp"

namespace dstee::sparse {

ExplorationTracker::ExplorationTracker(const SparseModel& model) {
  ever_active_.reserve(model.num_layers());
  for (std::size_t i = 0; i < model.num_layers(); ++i) {
    const auto& layer = model.layer(i);
    ever_active_.emplace_back(layer.numel(), false);
    total_ += layer.numel();
  }
  observe(model);
}

void ExplorationTracker::observe(const SparseModel& model) {
  util::check(model.num_layers() == ever_active_.size(),
              "tracker was built for a different model");
  for (std::size_t i = 0; i < model.num_layers(); ++i) {
    const tensor::Tensor& m = model.layer(i).mask().tensor();
    auto& seen = ever_active_[i];
    util::check(m.numel() == seen.size(),
                "layer size changed under the tracker");
    for (std::size_t j = 0; j < m.numel(); ++j) {
      if (m[j] != 0.0f) seen[j] = true;
    }
  }
}

double ExplorationTracker::exploration_rate() const {
  util::check(total_ > 0, "tracker has no weights");
  return static_cast<double>(explored_count()) / static_cast<double>(total_);
}

std::vector<double> ExplorationTracker::per_layer_rates() const {
  std::vector<double> rates;
  rates.reserve(ever_active_.size());
  for (const auto& seen : ever_active_) {
    std::size_t n = 0;
    for (const bool b : seen) {
      if (b) ++n;
    }
    rates.push_back(seen.empty()
                        ? 0.0
                        : static_cast<double>(n) /
                              static_cast<double>(seen.size()));
  }
  return rates;
}

std::size_t ExplorationTracker::explored_count() const {
  std::size_t n = 0;
  for (const auto& seen : ever_active_) {
    for (const bool b : seen) {
      if (b) ++n;
    }
  }
  return n;
}

}  // namespace dstee::sparse
