// Layer-wise sparsity distributions.
//
// The paper initializes with ERK (Erdős–Rényi-Kernel, from SET/RigL):
// layer density ∝ (fan_in + fan_out + kernel terms) / numel, rescaled so
// the GLOBAL density hits the target. Uniform and ER are provided for
// ablations and the GNN experiments (paper §V-B uses uniform for the GNN).
#pragma once

#include <string>
#include <vector>

#include "tensor/shape.hpp"

namespace dstee::sparse {

/// How the global sparsity budget is spread across layers.
enum class DistributionKind {
  kUniform,  ///< every layer gets the global density
  kEr,       ///< Erdős–Rényi: scale ∝ (n_in + n_out) / (n_in·n_out)
  kErk,      ///< Erdős–Rényi-Kernel: ER extended with kernel dims (RigL)
};

DistributionKind parse_distribution(const std::string& name);
std::string to_string(DistributionKind kind);

/// Computes per-layer densities for parameter shapes `shapes` so that the
/// total active count is (1 - global_sparsity) · Σ numel (up to rounding).
///
/// ERK/ER scale factors can push small layers above density 1; those layers
/// are clamped dense and the remainder is redistributed (same fixed-point
/// loop as the RigL reference implementation).
std::vector<double> layer_densities(const std::vector<tensor::Shape>& shapes,
                                    double global_sparsity,
                                    DistributionKind kind);

/// Per-layer active-weight counts implied by `layer_densities`, with
/// largest-remainder rounding so the GLOBAL count is hit exactly (each
/// layer keeps at least 1 active weight).
std::vector<std::size_t> layer_active_counts(
    const std::vector<tensor::Shape>& shapes, double global_sparsity,
    DistributionKind kind);

}  // namespace dstee::sparse
