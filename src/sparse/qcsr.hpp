// Int8-quantized CSR weights for serving.
//
// QCsrMatrix stores a CsrMatrix's values as symmetric int8 with one fp32
// scale per row (scale = rowwise amax / 127, values rounded to nearest):
// dequant(r, k) = scale[r] * int8[k]. Kernels accumulate the int8
// products in fp32 and multiply by the row scale once per output element,
// so precision loss is bounded by the value rounding alone — per stored
// value the dequantization error is at most scale[r]/2, i.e. amax/254 of
// the row's largest weight.
//
// Together with the uint32 column indices this stores a nonzero in
// 1 + 4 = 5 bytes of streamed payload versus the fp32 layout's 8 — and
// versus 12 before the index narrowing — which is the memory lever for
// packing more replicas per box (ROADMAP "SIMD + quantized CSR kernels").
//
// The class mirrors the CsrMatrix / CsrRowSlice API surface that the
// serve executor touches (spmm/spmm_into, spmm_cols_into, row_slice,
// balanced_row_splits, to_dense), so executor ops template over either
// matrix type. Quantization happens at plan-compile time via the
// serve::QuantizeWeights pass; training never sees this type.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "kernels/epilogue.hpp"
#include "runtime/pool.hpp"
#include "tensor/tensor.hpp"

namespace dstee::kernels::simd {
struct KernelBackend;
}  // namespace dstee::kernels::simd

namespace dstee::sparse {

class CsrMatrix;
class QCsrMatrix;

/// Zero-copy view over a contiguous row range of a QCsrMatrix — the
/// quantized counterpart of CsrRowSlice (row_ptr entries stay absolute,
/// scales is pre-offset so scales[r] is the view's local row r).
class QCsrRowSlice {
 public:
  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t nnz() const { return row_ptr_[rows_] - row_ptr_[0]; }

  /// Batched SpMM with the CsrRowSlice::spmm contract (epilogue layout,
  /// row-parallel chunking, backend dispatch); accumulation is fp32.
  tensor::Tensor spmm(const tensor::Tensor& x,
                      const runtime::IntraOp& intra = {},
                      const kernels::Epilogue& ep = {},
                      const kernels::simd::KernelBackend* backend =
                          nullptr) const;

  void spmm_into(const tensor::Tensor& x, float* out,
                 const runtime::IntraOp& intra = {},
                 const kernels::Epilogue& ep = {},
                 const kernels::simd::KernelBackend* backend = nullptr) const;

  /// Quantized CsrRowSlice::spmm_cols_into (the conv/im2col path).
  void spmm_cols_into(const float* b, std::size_t n, float* out,
                      const kernels::Epilogue& ep = {},
                      const kernels::simd::KernelBackend* backend =
                          nullptr) const;

  /// Slice of a slice (still zero-copy into the original parent).
  QCsrRowSlice row_slice(std::size_t r0, std::size_t r1) const;

  /// Dequantized dense materialization (tests / debugging).
  tensor::Tensor to_dense() const;

 private:
  friend class QCsrMatrix;
  QCsrRowSlice(const std::size_t* row_ptr, const std::uint32_t* col_idx,
               const std::int8_t* values, const float* scales,
               std::size_t rows, std::size_t cols)
      : row_ptr_(row_ptr), col_idx_(col_idx), values_(values),
        scales_(scales), rows_(rows), cols_(cols) {}

  const std::size_t* row_ptr_;    ///< rows_+1 absolute offsets
  const std::uint32_t* col_idx_;  ///< parent base pointer
  const std::int8_t* values_;     ///< parent base pointer
  const float* scales_;           ///< pre-offset: scales_[local row]
  std::size_t rows_;
  std::size_t cols_;
};

/// Compressed sparse row matrix with int8 values + per-row fp32 scales.
class QCsrMatrix {
 public:
  /// Symmetric per-row int8 quantization of an fp32 CSR matrix:
  /// scale[r] = max|row values| / 127 (1.0 for all-zero rows so
  /// dequantization stays well-defined), q = round-to-nearest(v / scale).
  /// The sparsity pattern is preserved exactly — only values change.
  static QCsrMatrix quantize(const CsrMatrix& src);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t nnz() const { return values_.size(); }
  double density() const;

  /// See QCsrRowSlice::spmm (this is the full-range slice).
  tensor::Tensor spmm(const tensor::Tensor& x,
                      const runtime::IntraOp& intra = {},
                      const kernels::Epilogue& ep = {},
                      const kernels::simd::KernelBackend* backend =
                          nullptr) const;

  void spmm_cols_into(const tensor::Tensor& cols, float* out,
                      const kernels::Epilogue& ep = {},
                      const kernels::simd::KernelBackend* backend =
                          nullptr) const;

  /// Zero-copy view over rows [r0, r1); this matrix must outlive it.
  QCsrRowSlice row_slice(std::size_t r0, std::size_t r1) const;

  /// Cost-balanced row partition with the CsrMatrix contract (equal
  /// stored-nonzero shares, every range non-empty).
  std::vector<std::size_t> balanced_row_splits(std::size_t ways) const;

  /// Dequantized dense reconstruction (tests / round-trips).
  tensor::Tensor to_dense() const;

  /// Bytes of weight payload a serving replica streams for this matrix:
  /// int8 values + uint32 column indices + fp32 row scales + row_ptr.
  std::size_t weight_bytes() const;

  /// Raw arrays (read-only).
  const std::vector<std::size_t>& row_ptr() const { return row_ptr_; }
  const std::vector<std::uint32_t>& col_idx() const { return col_idx_; }
  const std::vector<std::int8_t>& values() const { return values_; }
  const std::vector<float>& scales() const { return scales_; }

 private:
  QCsrMatrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), row_ptr_(rows + 1, 0) {}

  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::size_t> row_ptr_;
  std::vector<std::uint32_t> col_idx_;
  std::vector<std::int8_t> values_;
  std::vector<float> scales_;  ///< one dequantization factor per row
};

}  // namespace dstee::sparse
