#include "sparse/sparse_model.hpp"

#include "util/check.hpp"

namespace dstee::sparse {

SparseModel::SparseModel(nn::Module& model, double global_sparsity,
                         DistributionKind distribution, util::Rng& rng)
    : target_sparsity_(global_sparsity), distribution_(distribution) {
  util::check(global_sparsity >= 0.0 && global_sparsity < 1.0,
              "global sparsity must be in [0, 1)");

  // Gather sparsifiable parameters and remember their optimizer slots
  // (the optimizer is constructed from the same parameters() order).
  const std::vector<nn::Parameter*> all = model.parameters();
  std::vector<nn::Parameter*> sparsifiable;
  std::vector<std::size_t> opt_index;
  for (std::size_t i = 0; i < all.size(); ++i) {
    if (all[i]->sparsifiable) {
      sparsifiable.push_back(all[i]);
      opt_index.push_back(i);
    }
  }
  util::check(!sparsifiable.empty(),
              "model has no sparsifiable parameters");

  std::vector<tensor::Shape> shapes;
  shapes.reserve(sparsifiable.size());
  for (const auto* p : sparsifiable) shapes.push_back(p->value.shape());

  const auto counts =
      layer_active_counts(shapes, global_sparsity, distribution);

  layers_.reserve(sparsifiable.size());
  util::Rng mask_rng = rng.fork("sparse/mask-init");
  for (std::size_t i = 0; i < sparsifiable.size(); ++i) {
    Mask mask = (global_sparsity == 0.0)
                    ? Mask(shapes[i])
                    : Mask::random(shapes[i], counts[i], mask_rng);
    layers_.emplace_back(*sparsifiable[i], std::move(mask), opt_index[i]);
  }
  apply_masks_to_values();
  accumulate_counters();  // Algorithm 1: N ← M at initialization
}

MaskedParameter& SparseModel::layer(std::size_t i) {
  util::check(i < layers_.size(), "layer index out of range");
  return layers_[i];
}

const MaskedParameter& SparseModel::layer(std::size_t i) const {
  util::check(i < layers_.size(), "layer index out of range");
  return layers_[i];
}

std::size_t SparseModel::total_weights() const {
  std::size_t n = 0;
  for (const auto& l : layers_) n += l.numel();
  return n;
}

std::size_t SparseModel::total_active() const {
  std::size_t n = 0;
  for (const auto& l : layers_) n += l.num_active();
  return n;
}

double SparseModel::global_density() const {
  return static_cast<double>(total_active()) /
         static_cast<double>(total_weights());
}

void SparseModel::apply_masks_to_values() {
  for (auto& l : layers_) l.apply_mask_to_value();
}

void SparseModel::apply_masks_to_grads() {
  for (auto& l : layers_) l.apply_mask_to_grad();
}

void SparseModel::accumulate_counters() {
  for (auto& l : layers_) l.accumulate_counter();
}

void SparseModel::reset_counters_to_masks() {
  for (auto& l : layers_) {
    l.counter().fill(0.0f);
    l.accumulate_counter();
  }
}

std::vector<LayerDensity> SparseModel::layer_report() const {
  std::vector<LayerDensity> out;
  out.reserve(layers_.size());
  for (const auto& l : layers_) {
    out.push_back({l.name(), l.numel(), l.num_active(), l.density()});
  }
  return out;
}

}  // namespace dstee::sparse
