#include "sparse/csr.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "kernels/simd/backend.hpp"
#include "util/check.hpp"

namespace dstee::sparse {

// The SIMD gather kernels consume 32-bit column indices directly; keep the
// storage type pinned so a well-meaning widening doesn't silently halve
// their throughput (and break the CsrView ABI).
static_assert(sizeof(std::uint32_t) == 4);

namespace {

kernels::simd::CsrView view_of(const std::size_t* row_ptr,
                               const std::uint32_t* col_idx,
                               const float* values, std::size_t rows,
                               std::size_t cols) {
  return kernels::simd::CsrView{row_ptr, col_idx, values, rows, cols};
}

}  // namespace

double CsrRowSlice::density() const {
  const double total = static_cast<double>(rows_) * static_cast<double>(cols_);
  return total > 0.0 ? static_cast<double>(nnz()) / total : 0.0;
}

tensor::Tensor CsrRowSlice::spmm(const tensor::Tensor& x,
                                 const runtime::IntraOp& intra,
                                 const kernels::Epilogue& ep,
                                 const kernels::simd::KernelBackend* backend)
    const {
  tensor::Tensor y({x.rank() == 2 ? x.dim(0) : 0, rows_});
  spmm_into(x, y.raw(), intra, ep, backend);
  return y;
}

void CsrRowSlice::spmm_into(const tensor::Tensor& x, float* out,
                            const runtime::IntraOp& intra,
                            const kernels::Epilogue& ep,
                            const kernels::simd::KernelBackend* backend)
    const {
  util::check(x.rank() == 2 && x.dim(1) == cols_,
              "spmm expects [batch, cols]");
  util::check(ep.residual == nullptr || ep.residual_stride > 0,
              "spmm fused residual requires residual_stride");
  const std::size_t batch = x.dim(0);
  const kernels::simd::KernelBackend& be =
      backend != nullptr ? *backend : kernels::simd::active_backend();
  const kernels::simd::CsrView a =
      view_of(row_ptr_, col_idx_, values_, rows_, cols_);

  // One worker computes output rows [r0, r1) for every batch sample: the
  // chunk's values/col_idx stream stays hot across samples and each
  // output element has exactly one writer. Backends finish each value
  // before the store — bias, then residual, then activation, the exact
  // op order of the unfused node sequence it replaces — and are
  // bit-identical to each other, so results don't depend on dispatch.
  runtime::intra_chunks(intra, rows_, [&](std::size_t r0, std::size_t r1) {
    be.spmm_rows(a, x.raw(), batch, out, r0, r1, ep);
  });
}

void CsrRowSlice::spmm_cols_into(const float* b, std::size_t n, float* out,
                                 const kernels::Epilogue& ep,
                                 const kernels::simd::KernelBackend* backend)
    const {
  const kernels::simd::KernelBackend& be =
      backend != nullptr ? *backend : kernels::simd::active_backend();
  be.spmm_cols(view_of(row_ptr_, col_idx_, values_, rows_, cols_), b, n, out,
               ep);
}

CsrRowSlice CsrRowSlice::row_slice(std::size_t r0, std::size_t r1) const {
  util::check(r0 <= r1 && r1 <= rows_,
              "row_slice requires 0 <= r0 <= r1 <= rows");
  return CsrRowSlice(row_ptr_ + r0, col_idx_, values_, r1 - r0, cols_);
}

tensor::Tensor CsrRowSlice::to_dense() const {
  tensor::Tensor dense({rows_, cols_});
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      dense[r * cols_ + col_idx_[k]] = values_[k];
    }
  }
  return dense;
}

CsrMatrix::CsrMatrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), row_ptr_(rows + 1, 0) {
  // Column indices are stored in 32 bits; a wider matrix would wrap
  // silently in the kernels, so reject it at construction.
  util::check(cols <= std::numeric_limits<std::uint32_t>::max(),
              "CsrMatrix column count exceeds 32-bit index range");
}

CsrMatrix CsrMatrix::from_dense(const tensor::Tensor& dense, float eps) {
  util::check(dense.rank() >= 2,
              "CSR conversion requires a tensor of rank >= 2");
  CsrMatrix m(dense.dim(0), dense.numel() / dense.dim(0));
  std::size_t nnz = 0;
  for (std::size_t i = 0; i < dense.numel(); ++i) {
    if (std::fabs(dense[i]) > eps) ++nnz;
  }
  m.col_idx_.reserve(nnz);
  m.values_.reserve(nnz);
  for (std::size_t r = 0; r < m.rows_; ++r) {
    for (std::size_t c = 0; c < m.cols_; ++c) {
      const float v = dense[r * m.cols_ + c];
      if (std::fabs(v) > eps) {
        m.col_idx_.push_back(static_cast<std::uint32_t>(c));
        m.values_.push_back(v);
      }
    }
    m.row_ptr_[r + 1] = m.values_.size();
  }
  return m;
}

CsrMatrix CsrMatrix::from_masked(const MaskedParameter& param) {
  const tensor::Tensor& dense = param.param().value;
  util::check(dense.rank() >= 2,
              "CSR conversion requires a parameter of rank >= 2");
  const tensor::Tensor& mask = param.mask().tensor();
  CsrMatrix m(dense.dim(0), dense.numel() / dense.dim(0));
  const std::size_t nnz = param.mask().num_active();
  m.col_idx_.reserve(nnz);
  m.values_.reserve(nnz);
  for (std::size_t r = 0; r < m.rows_; ++r) {
    for (std::size_t c = 0; c < m.cols_; ++c) {
      const std::size_t i = r * m.cols_ + c;
      if (mask[i] != 0.0f) {
        m.col_idx_.push_back(static_cast<std::uint32_t>(c));
        m.values_.push_back(dense[i]);
      }
    }
    m.row_ptr_[r + 1] = m.values_.size();
  }
  return m;
}

double CsrMatrix::density() const {
  const double total = static_cast<double>(rows_) * static_cast<double>(cols_);
  return total > 0.0 ? static_cast<double>(nnz()) / total : 0.0;
}

tensor::Tensor CsrMatrix::matvec(const tensor::Tensor& x) const {
  util::check(x.numel() == cols_, "matvec input size must equal cols");
  tensor::Tensor y({rows_});
  for (std::size_t r = 0; r < rows_; ++r) {
    float acc = 0.0f;
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      acc += values_[k] * x[col_idx_[k]];
    }
    y[r] = acc;
  }
  return y;
}

tensor::Tensor CsrMatrix::matmul_nt(const tensor::Tensor& x) const {
  return spmm(x, 1);
}

tensor::Tensor CsrMatrix::spmm(const tensor::Tensor& x,
                               const runtime::IntraOp& intra,
                               const kernels::Epilogue& ep,
                               const kernels::simd::KernelBackend* backend)
    const {
  // The batched SpMM *is* the full-range slice: one loop nest serves the
  // whole matrix and every PartitionRows sub-range bit-identically.
  return row_slice(0, rows_).spmm(x, intra, ep, backend);
}

tensor::Tensor CsrMatrix::spmm(const tensor::Tensor& x,
                               std::size_t num_threads) const {
  return spmm(x, runtime::IntraOp{num_threads, nullptr});
}

tensor::Tensor CsrMatrix::spmm_cols(const tensor::Tensor& cols) const {
  tensor::Tensor y({rows_, cols.rank() == 2 ? cols.dim(1) : 0});
  spmm_cols_into(cols, y.raw());
  return y;
}

void CsrMatrix::spmm_cols_into(const tensor::Tensor& cols, float* out,
                               const kernels::Epilogue& ep,
                               const kernels::simd::KernelBackend* backend)
    const {
  util::check(cols.rank() == 2 && cols.dim(0) == cols_,
              "spmm_cols expects [cols, n]");
  row_slice(0, rows_).spmm_cols_into(cols.raw(), cols.dim(1), out, ep,
                                     backend);
}

CsrRowSlice CsrMatrix::row_slice(std::size_t r0, std::size_t r1) const {
  util::check(r0 <= r1 && r1 <= rows_,
              "row_slice requires 0 <= r0 <= r1 <= rows");
  return CsrRowSlice(row_ptr_.data() + r0, col_idx_.data(), values_.data(),
                     r1 - r0, cols_);
}

std::vector<std::size_t> CsrMatrix::balanced_row_splits(
    std::size_t ways) const {
  util::check(ways >= 1 && ways <= rows_,
              "balanced_row_splits requires 1 <= ways <= rows");
  std::vector<std::size_t> bounds(ways + 1, 0);
  bounds[ways] = rows_;
  const std::size_t total = nnz();
  for (std::size_t j = 1; j < ways; ++j) {
    // Boundary whose prefix nnz lands nearest the j-th equal share
    // (lower_bound alone can overshoot badly past a heavy row).
    const std::size_t target = (total * j + ways / 2) / ways;
    std::size_t b = static_cast<std::size_t>(
        std::lower_bound(row_ptr_.begin(), row_ptr_.end(), target) -
        row_ptr_.begin());
    if (b > 0 && (b > rows_ ||
                  target - row_ptr_[b - 1] <= row_ptr_[b] - target)) {
      --b;
    }
    // Every range keeps at least one row, even when all nonzeros pile
    // into a few rows (a range may then own zero nonzeros, never zero
    // rows — the slice kernels handle empty rows already).
    b = std::clamp(b, j, rows_ - (ways - j));
    bounds[j] = std::max(b, bounds[j - 1] + 1);
  }
  return bounds;
}

void CsrMatrix::scale_rows(std::span<const float> scale) {
  util::check(scale.size() == rows_,
              "scale_rows requires one factor per row");
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      values_[k] *= scale[r];
    }
  }
}

tensor::Tensor CsrMatrix::to_dense() const {
  tensor::Tensor dense({rows_, cols_});
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      dense[r * cols_ + col_idx_[k]] = values_[k];
    }
  }
  return dense;
}

SparseLinearStack::SparseLinearStack(std::vector<CsrMatrix> layers,
                                     std::vector<tensor::Tensor> biases)
    : layers_(std::move(layers)), biases_(std::move(biases)) {
  util::check(!layers_.empty(), "sparse stack requires at least one layer");
  util::check(biases_.size() == layers_.size(),
              "one bias entry (possibly empty) per layer required");
  for (std::size_t i = 1; i < layers_.size(); ++i) {
    util::check(layers_[i].cols() == layers_[i - 1].rows(),
                "layer dimensions do not chain");
  }
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    util::check(biases_[i].numel() == 0 ||
                    biases_[i].numel() == layers_[i].rows(),
                "bias size must match layer output");
  }
}

const CsrMatrix& SparseLinearStack::layer(std::size_t i) const {
  util::check(i < layers_.size(), "layer index out of range");
  return layers_[i];
}

std::size_t SparseLinearStack::total_nnz() const {
  std::size_t n = 0;
  for (const auto& l : layers_) n += l.nnz();
  return n;
}

tensor::Tensor SparseLinearStack::forward(const tensor::Tensor& x) const {
  util::check(x.rank() == 2, "forward expects [batch, features]");
  tensor::Tensor h = x;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    h = layers_[i].matmul_nt(h);
    const std::size_t out = layers_[i].rows();
    if (biases_[i].numel() == out) {
      for (std::size_t n = 0; n < h.dim(0); ++n) {
        float* row = h.raw() + n * out;
        for (std::size_t j = 0; j < out; ++j) row[j] += biases_[i][j];
      }
    }
    if (i + 1 < layers_.size()) {  // ReLU between layers, none at the head
      for (std::size_t j = 0; j < h.numel(); ++j) {
        if (h[j] < 0.0f) h[j] = 0.0f;
      }
    }
  }
  return h;
}

}  // namespace dstee::sparse
