// CSR sparse-matrix inference path.
//
// Training keeps weights dense-with-masks (the standard DST formulation),
// but the *deployment* story of the paper — inference FLOPs proportional to
// density — is only real if sparse kernels exist. This module converts a
// trained masked weight matrix into CSR form and provides the sparse
// matrix-vector / matrix-matrix products a deployment runtime would use.
// The micro_kernels bench measures the dense→CSR crossover empirically.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "kernels/epilogue.hpp"
#include "runtime/pool.hpp"
#include "sparse/masked_parameter.hpp"
#include "tensor/tensor.hpp"

namespace dstee::kernels::simd {
struct KernelBackend;
}  // namespace dstee::kernels::simd

namespace dstee::sparse {

class CsrMatrix;

/// Zero-copy view over a contiguous row range [r0, r1) of a CsrMatrix.
///
/// The view borrows the parent's arrays (row_ptr entries stay absolute
/// offsets into the parent's col_idx/values), so constructing one costs
/// three pointers and slicing never touches the nonzeros. The parent must
/// outlive every view; serve::PartitionRows keeps the parent alive through
/// shared ownership. Row-parallel kernels on a slice follow the same
/// one-writer-per-output contract as the parent's, so results are
/// bit-identical to running the parent over the same rows.
class CsrRowSlice {
 public:
  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t nnz() const { return row_ptr_[rows_] - row_ptr_[0]; }

  /// Density of the slice in [0, 1].
  double density() const;

  /// Batched SpMM over the slice: Y = X·A[r0:r1)ᵀ for X[batch, cols] →
  /// Y[batch, rows()]. Same row-parallel chunking contract as
  /// CsrMatrix::spmm (which is implemented as the full-range slice).
  /// `ep` is applied to each output value while it is still in register:
  /// Y[n, r] = act(acc + ep.bias[r] + ep.residual[n·stride + r]) — the
  /// fused-epilogue path. ep.bias/ep.residual are indexed by the SLICE's
  /// local row r; a slice of a wider output pre-offsets both pointers by
  /// its row_begin and sets ep.residual_stride to the FULL output width.
  /// `backend` picks the kernel implementation (nullptr = the process
  /// active backend, see kernels::simd::active_backend()); all backends
  /// are bit-identical, so this only affects speed.
  tensor::Tensor spmm(const tensor::Tensor& x,
                      const runtime::IntraOp& intra = {},
                      const kernels::Epilogue& ep = {},
                      const kernels::simd::KernelBackend* backend =
                          nullptr) const;

  /// spmm writing into caller storage of batch·rows() floats.
  void spmm_into(const tensor::Tensor& x, float* out,
                 const runtime::IntraOp& intra = {},
                 const kernels::Epilogue& ep = {},
                 const kernels::simd::KernelBackend* backend = nullptr) const;

  /// Y = A[r0:r1)·B for a dense patch matrix B[cols, n] given as a raw
  /// row-major pointer, writing rows()·n floats to `out` — the partitioned
  /// conv path over a shared im2col buffer. `ep` finishes each output row
  /// while it is hot: Y[r, j] = act(acc + ep.bias[r] + ep.residual[r·n +
  /// j]) — ep.residual (when set) is laid out exactly like `out`, i.e.
  /// already offset to this slice's block of the sample.
  void spmm_cols_into(const float* b, std::size_t n, float* out,
                      const kernels::Epilogue& ep = {},
                      const kernels::simd::KernelBackend* backend =
                          nullptr) const;

  /// Slice of a slice: rows [r0, r1) of THIS view (still zero-copy into
  /// the original parent).
  CsrRowSlice row_slice(std::size_t r0, std::size_t r1) const;

  /// Materializes the slice densely (tests / debugging).
  tensor::Tensor to_dense() const;

 private:
  friend class CsrMatrix;
  CsrRowSlice(const std::size_t* row_ptr, const std::uint32_t* col_idx,
              const float* values, std::size_t rows, std::size_t cols)
      : row_ptr_(row_ptr), col_idx_(col_idx), values_(values), rows_(rows),
        cols_(cols) {}

  const std::size_t* row_ptr_;    ///< rows_+1 absolute offsets (parent-based)
  const std::uint32_t* col_idx_;  ///< parent base pointer
  const float* values_;           ///< parent base pointer
  std::size_t rows_;
  std::size_t cols_;
};

/// Compressed sparse row matrix (float values, row-major logical shape).
class CsrMatrix {
 public:
  /// Builds from a dense tensor of rank >= 2, keeping entries with
  /// |v| > eps. dim(0) becomes the row count and the remaining axes are
  /// flattened into columns — exactly the [Cout, Cin·K·K] view a conv
  /// weight deploys under (rank-2 linear weights are unchanged).
  static CsrMatrix from_dense(const tensor::Tensor& dense, float eps = 0.0f);

  /// Builds from a masked parameter (only mask-active entries are stored,
  /// regardless of value — the faithful deployment of a sparse topology).
  /// Accepts rank >= 2 with the same row/column flattening as from_dense.
  static CsrMatrix from_masked(const MaskedParameter& param);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t nnz() const { return values_.size(); }

  /// Density in [0, 1].
  double density() const;

  /// y = A·x for x[cols] → y[rows].
  tensor::Tensor matvec(const tensor::Tensor& x) const;

  /// Y = X·Aᵀ for X[batch, cols] → Y[batch, rows] — the sparse Linear
  /// forward (weights stored [out, in] as in nn::Linear). Equivalent to
  /// spmm(x, 1); kept for call sites that predate the batched kernel.
  tensor::Tensor matmul_nt(const tensor::Tensor& x) const;

  /// Batched SpMM: Y = X·Aᵀ for X[batch, cols] → Y[batch, rows].
  ///
  /// The loop nest is row-parallel: output rows are split into contiguous
  /// chunks, each owned by one worker, so every element of Y is written by
  /// exactly one thread and the result is bit-identical for any thread
  /// count. `intra` picks the chunk count and the executing
  /// runtime::Pool; the default ({1, nullptr}) runs inline and never
  /// touches a pool. `ep` is the fused epilogue applied in the output
  /// loop (Y[n, r] = act(acc + bias[r] + residual[n·stride + r]); the
  /// default is the identity).
  tensor::Tensor spmm(const tensor::Tensor& x,
                      const runtime::IntraOp& intra = {},
                      const kernels::Epilogue& ep = {},
                      const kernels::simd::KernelBackend* backend =
                          nullptr) const;

  /// Chunk-count-only overload (threads 0 = pool-wide on the process
  /// default pool) for call sites without a pool to inject.
  tensor::Tensor spmm(const tensor::Tensor& x, std::size_t num_threads) const;

  /// Y = A·B for dense B[cols, n] (row-major) → Y[rows, n]: the CSR kernel
  /// over an im2col patch matrix, whose columns are output positions. Each
  /// stored entry streams one contiguous B row, so the inner loop stays
  /// unit-stride for any sparsity pattern.
  tensor::Tensor spmm_cols(const tensor::Tensor& cols) const;

  /// spmm_cols writing into caller-owned storage of rows()·cols.dim(1)
  /// floats — the per-image conv path, which writes straight into the
  /// [N, Cout, Ho, Wo] output tensor without an intermediate. `ep`
  /// follows the CsrRowSlice::spmm_cols_into layout (bias per row,
  /// residual laid out like `out`).
  void spmm_cols_into(const tensor::Tensor& cols, float* out,
                      const kernels::Epilogue& ep = {},
                      const kernels::simd::KernelBackend* backend =
                          nullptr) const;

  /// Zero-copy view over rows [r0, r1) (r0 <= r1 <= rows()); this matrix
  /// must outlive the view. The row-range unit of serve::PartitionRows.
  CsrRowSlice row_slice(std::size_t r0, std::size_t r1) const;

  /// Cost-balanced row partition: `ways`+1 non-decreasing boundaries
  /// (first 0, last rows()) splitting the rows into `ways` contiguous
  /// ranges of roughly equal stored-nonzero count — equal *work*, not
  /// equal row count, since every CSR kernel's per-row cost is its nnz.
  /// Each range keeps at least one row (requires ways <= rows()).
  std::vector<std::size_t> balanced_row_splits(std::size_t ways) const;

  /// Multiplies every stored value in row r by scale[r] (and bias folding
  /// callers adjust their bias separately). Used to fold an eval-mode
  /// batch-norm into the preceding sparse Linear at compile time.
  void scale_rows(std::span<const float> scale);

  /// Reconstructs the dense matrix (tests / round-trips).
  tensor::Tensor to_dense() const;

  /// Raw CSR arrays (read-only). Column indices are stored as uint32 —
  /// half the index bandwidth of the original size_t layout, and the type
  /// the SIMD gather kernels consume directly. The private constructor
  /// rejects matrices whose column count cannot be indexed in 32 bits.
  const std::vector<std::size_t>& row_ptr() const { return row_ptr_; }
  const std::vector<std::uint32_t>& col_idx() const { return col_idx_; }
  const std::vector<float>& values() const { return values_; }

 private:
  CsrMatrix(std::size_t rows, std::size_t cols);

  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::size_t> row_ptr_;
  std::vector<std::uint32_t> col_idx_;
  std::vector<float> values_;
};

/// Sparse-deployed MLP inference: converts every sparsifiable rank-2 layer
/// of a SparseModel into CSR once, then serves forward passes without
/// touching dense weights. Only Linear-chain models are supported (conv
/// deployment would lower to CSR over im2col patches; out of scope here).
class SparseLinearStack {
 public:
  /// Captures CSR weights + dense biases from an MLP-shaped module whose
  /// sparsifiable parameters are rank-2 [out, in] matrices, in order.
  /// `biases[i]` may be empty when the layer has none.
  SparseLinearStack(std::vector<CsrMatrix> layers,
                    std::vector<tensor::Tensor> biases);

  /// Forward with ReLU between layers (matching models::Mlp without
  /// batch-norm/dropout, in eval mode).
  tensor::Tensor forward(const tensor::Tensor& x) const;

  std::size_t num_layers() const { return layers_.size(); }
  const CsrMatrix& layer(std::size_t i) const;

  /// Total stored nonzeros across layers.
  std::size_t total_nnz() const;

 private:
  std::vector<CsrMatrix> layers_;
  std::vector<tensor::Tensor> biases_;
};

}  // namespace dstee::sparse
