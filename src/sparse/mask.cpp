#include "sparse/mask.hpp"

#include "util/check.hpp"

namespace dstee::sparse {

Mask::Mask(tensor::Shape shape) : values_(std::move(shape)) {
  values_.fill(1.0f);
}

Mask Mask::random(tensor::Shape shape, std::size_t active, util::Rng& rng) {
  Mask m(shape);  // starts dense
  m.values_.fill(0.0f);
  util::check(active <= m.numel(),
              "cannot activate more elements than the mask holds");
  for (const std::size_t idx :
       rng.sample_without_replacement(m.numel(), active)) {
    m.values_[idx] = 1.0f;
  }
  return m;
}

Mask Mask::from_indices(tensor::Shape shape,
                        const std::vector<std::size_t>& indices) {
  Mask m(std::move(shape));
  m.values_.fill(0.0f);
  for (const std::size_t idx : indices) {
    util::check(idx < m.numel(), "mask index out of range");
    m.values_[idx] = 1.0f;
  }
  return m;
}

std::size_t Mask::num_active() const {
  std::size_t n = 0;
  for (std::size_t i = 0; i < values_.numel(); ++i) {
    if (values_[i] != 0.0f) ++n;
  }
  return n;
}

double Mask::density() const {
  util::check(numel() > 0, "density of an empty mask");
  return static_cast<double>(num_active()) / static_cast<double>(numel());
}

bool Mask::is_active(std::size_t flat_index) const {
  return values_.at(flat_index) != 0.0f;
}

void Mask::activate(std::size_t flat_index) {
  values_.at(flat_index) = 1.0f;
}

void Mask::deactivate(std::size_t flat_index) {
  values_.at(flat_index) = 0.0f;
}

std::vector<std::size_t> Mask::active_indices() const {
  std::vector<std::size_t> idx;
  idx.reserve(num_active());
  for (std::size_t i = 0; i < values_.numel(); ++i) {
    if (values_[i] != 0.0f) idx.push_back(i);
  }
  return idx;
}

std::vector<std::size_t> Mask::inactive_indices() const {
  std::vector<std::size_t> idx;
  for (std::size_t i = 0; i < values_.numel(); ++i) {
    if (values_[i] == 0.0f) idx.push_back(i);
  }
  return idx;
}

void Mask::apply_to(tensor::Tensor& t) const {
  util::check(t.shape() == values_.shape(),
              "mask shape does not match target tensor");
  for (std::size_t i = 0; i < t.numel(); ++i) {
    if (values_[i] == 0.0f) t[i] = 0.0f;
  }
}

std::size_t Mask::hamming_distance(const Mask& other) const {
  util::check(shape() == other.shape(),
              "hamming distance requires equal shapes");
  std::size_t d = 0;
  for (std::size_t i = 0; i < values_.numel(); ++i) {
    if ((values_[i] != 0.0f) != (other.values_[i] != 0.0f)) ++d;
  }
  return d;
}

}  // namespace dstee::sparse
