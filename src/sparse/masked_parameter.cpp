#include "sparse/masked_parameter.hpp"

#include "util/check.hpp"

namespace dstee::sparse {

MaskedParameter::MaskedParameter(nn::Parameter& param, Mask mask,
                                 std::size_t optimizer_index)
    : param_(&param),
      mask_(std::move(mask)),
      counter_(param.value.shape()),
      optimizer_index_(optimizer_index) {
  util::check(mask_.shape() == param.value.shape(),
              "mask shape must match parameter shape");
  util::check(param.sparsifiable,
              "MaskedParameter requires a sparsifiable parameter");
}

void MaskedParameter::accumulate_counter() {
  const tensor::Tensor& m = mask_.tensor();
  for (std::size_t i = 0; i < counter_.numel(); ++i) {
    counter_[i] += m[i];
  }
}

}  // namespace dstee::sparse
