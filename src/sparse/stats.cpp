#include "sparse/stats.hpp"

#include <cmath>
#include <sstream>

namespace dstee::sparse {

std::size_t TopologyLog::total_dropped() const {
  std::size_t n = 0;
  for (const auto& r : rounds_) n += r.dropped;
  return n;
}

std::size_t TopologyLog::total_grown() const {
  std::size_t n = 0;
  for (const auto& r : rounds_) n += r.grown;
  return n;
}

double TopologyLog::never_seen_growth_fraction() const {
  std::size_t grown = 0, fresh = 0;
  for (const auto& r : rounds_) {
    grown += r.grown;
    fresh += r.never_seen_grown;
  }
  if (grown == 0) return 0.0;
  return static_cast<double>(fresh) / static_cast<double>(grown);
}

std::string validate_invariants(const SparseModel& model) {
  std::ostringstream os;
  for (std::size_t i = 0; i < model.num_layers(); ++i) {
    const auto& layer = model.layer(i);
    const auto& mask = layer.mask().tensor();
    const auto& value = layer.param().value;
    for (std::size_t j = 0; j < mask.numel(); ++j) {
      const float m = mask[j];
      if (m != 0.0f && m != 1.0f) {
        os << "layer " << i << " (" << layer.name() << "): mask[" << j
           << "] = " << m << " is not binary";
        return os.str();
      }
      if (m == 0.0f && value[j] != 0.0f) {
        os << "layer " << i << " (" << layer.name() << "): masked weight ["
           << j << "] = " << value[j] << " is nonzero";
        return os.str();
      }
    }
    const auto& counter = layer.counter();
    for (std::size_t j = 0; j < counter.numel(); ++j) {
      if (counter[j] < 0.0f || std::floor(counter[j]) != counter[j]) {
        os << "layer " << i << ": counter[" << j << "] = " << counter[j]
           << " is not a non-negative integer";
        return os.str();
      }
    }
  }
  return {};
}

}  // namespace dstee::sparse
