#include "sparse/flops.hpp"

#include "util/check.hpp"

namespace dstee::sparse {

void FlopsModel::add_conv(const std::string& name, std::size_t in_channels,
                          std::size_t out_channels, std::size_t kernel,
                          std::size_t stride, std::size_t padding,
                          std::size_t in_h, std::size_t in_w) {
  util::check(stride > 0, "conv stride must be positive");
  util::check(in_h + 2 * padding >= kernel && in_w + 2 * padding >= kernel,
              "conv input smaller than kernel");
  const std::size_t out_h = (in_h + 2 * padding - kernel) / stride + 1;
  const std::size_t out_w = (in_w + 2 * padding - kernel) / stride + 1;
  LayerCost c;
  c.name = name;
  c.params = out_channels * in_channels * kernel * kernel;
  // 2 FLOPs per MAC; MACs = out positions × kernel volume.
  c.dense_flops = 2.0 * static_cast<double>(out_h * out_w) *
                  static_cast<double>(c.params);
  c.sparsifiable = true;
  layers_.push_back(std::move(c));
}

void FlopsModel::add_linear(const std::string& name, std::size_t in_features,
                            std::size_t out_features) {
  LayerCost c;
  c.name = name;
  c.params = in_features * out_features;
  c.dense_flops = 2.0 * static_cast<double>(c.params);
  c.sparsifiable = true;
  layers_.push_back(std::move(c));
}

void FlopsModel::add_fixed(const std::string& name, double flops) {
  LayerCost c;
  c.name = name;
  c.params = 0;
  c.dense_flops = flops;
  c.sparsifiable = false;
  layers_.push_back(std::move(c));
}

const LayerCost& FlopsModel::layer(std::size_t i) const {
  util::check(i < layers_.size(), "flops layer index out of range");
  return layers_[i];
}

double FlopsModel::dense_forward_flops() const {
  double total = 0.0;
  for (const auto& l : layers_) total += l.dense_flops;
  return total;
}

std::size_t FlopsModel::num_sparsifiable() const {
  std::size_t n = 0;
  for (const auto& l : layers_) {
    if (l.sparsifiable) ++n;
  }
  return n;
}

double FlopsModel::sparse_forward_flops(
    const std::vector<double>& densities) const {
  util::check(densities.size() == num_sparsifiable(),
              "density count must match sparsifiable layer count");
  double total = 0.0;
  std::size_t di = 0;
  for (const auto& l : layers_) {
    if (l.sparsifiable) {
      util::check(densities[di] >= 0.0 && densities[di] <= 1.0,
                  "density out of range");
      total += l.dense_flops * densities[di++];
    } else {
      total += l.dense_flops;
    }
  }
  return total;
}

double FlopsModel::sparse_training_flops(
    const std::vector<double>& densities) const {
  return 3.0 * sparse_forward_flops(densities);
}

double FlopsModel::training_flops_with_dense_grad(
    const std::vector<double>& densities, std::size_t dense_grad_every) const {
  const double sparse_step = sparse_training_flops(densities);
  if (dense_grad_every == 0) return sparse_step;
  // On growth steps the weight-gradient half of the backward pass is dense:
  // step cost = 2× sparse forward (forward + input grads) + 1× dense forward
  // equivalent (weight grads). Amortized over ΔT steps.
  const double dense_grad_step =
      2.0 * sparse_forward_flops(densities) + dense_forward_flops();
  const double every = static_cast<double>(dense_grad_every);
  return sparse_step * (every - 1.0) / every + dense_grad_step / every;
}

double linear_nnz_flops(std::size_t nnz, std::size_t batch) {
  return 2.0 * static_cast<double>(nnz) * static_cast<double>(batch);
}

double conv_nnz_flops(std::size_t nnz, std::size_t out_h, std::size_t out_w,
                      std::size_t batch) {
  return 2.0 * static_cast<double>(nnz) *
         static_cast<double>(out_h * out_w) * static_cast<double>(batch);
}

}  // namespace dstee::sparse
