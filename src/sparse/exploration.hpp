// Exploration-rate accounting (ITOP's R metric, paper §III-C).
//
// R = (# weights that have EVER been active during training)
//     / (total # sparsifiable weights).
// Figure 3's left panels plot R against mask-update rounds for several
// trade-off coefficients c.
#pragma once

#include <cstddef>
#include <vector>

#include "sparse/sparse_model.hpp"

namespace dstee::sparse {

/// Tracks the union of all masks seen so far ("b" in the paper).
class ExplorationTracker {
 public:
  /// Initializes the explored-set with the model's initial masks.
  explicit ExplorationTracker(const SparseModel& model);

  /// ORs the model's current masks into the explored set. Call after every
  /// mask update round.
  void observe(const SparseModel& model);

  /// Exploration rate R ∈ [0, 1].
  double exploration_rate() const;

  /// Per-layer exploration rates.
  std::vector<double> per_layer_rates() const;

  /// Number of weights explored so far.
  std::size_t explored_count() const;
  std::size_t total_count() const { return total_; }

 private:
  std::vector<std::vector<bool>> ever_active_;  // one bitset per layer
  std::size_t total_ = 0;
};

}  // namespace dstee::sparse
