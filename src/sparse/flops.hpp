// Analytic FLOPs accounting, mirroring RigL's convention (which Table II
// follows): inference FLOPs = Σ layer dense-FLOPs × layer density;
// training FLOPs ≈ 3 × inference (forward + input-grad + weight-grad),
// plus method-specific corrections for phases that touch dense gradients.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace dstee::sparse {

/// One compute layer's cost entry.
struct LayerCost {
  std::string name;
  std::size_t params = 0;        ///< weight element count
  double dense_flops = 0.0;      ///< multiply-adds × 2, one forward pass
  bool sparsifiable = true;      ///< dense layers (BN, bias) keep density 1
};

/// Builder + evaluator for a model's FLOPs profile.
class FlopsModel {
 public:
  /// Registers a conv layer applied at input resolution in_h × in_w.
  void add_conv(const std::string& name, std::size_t in_channels,
                std::size_t out_channels, std::size_t kernel,
                std::size_t stride, std::size_t padding, std::size_t in_h,
                std::size_t in_w);

  /// Registers a linear layer.
  void add_linear(const std::string& name, std::size_t in_features,
                  std::size_t out_features);

  /// Registers a non-sparsifiable cost (batch-norm, pooling, activation).
  void add_fixed(const std::string& name, double flops);

  std::size_t num_layers() const { return layers_.size(); }
  const LayerCost& layer(std::size_t i) const;

  /// Dense forward FLOPs for one example.
  double dense_forward_flops() const;

  /// Forward FLOPs for one example at per-layer densities (order must match
  /// the registration order of *sparsifiable* layers).
  double sparse_forward_flops(const std::vector<double>& densities) const;

  /// Training FLOPs per example per step ≈ 3× forward under RigL's
  /// convention: 1× forward + 2× backward (both sparse).
  double sparse_training_flops(const std::vector<double>& densities) const;

  /// Training FLOPs when the backward pass computes DENSE weight gradients
  /// every `dense_grad_every` steps (RigL's ΔT amortization: the growth
  /// step needs dense gradients). dense_grad_every == 0 means never.
  double training_flops_with_dense_grad(const std::vector<double>& densities,
                                        std::size_t dense_grad_every) const;

  /// Count of sparsifiable layers (the length densities must have).
  std::size_t num_sparsifiable() const;

 private:
  std::vector<LayerCost> layers_;
};

/// nnz-aware kernel costs for the *deployed* (CSR) execution path, used by
/// serve::CompiledNet to report honest per-model FLOPs. Unlike FlopsModel
/// — which scales analytic dense costs by a density — these count exactly
/// the multiply-adds the CSR kernels perform for the stored nonzeros.

/// One sparse Linear forward: 2·nnz FLOPs per sample.
double linear_nnz_flops(std::size_t nnz, std::size_t batch = 1);

/// One CSR-over-im2col conv forward: every stored weight participates in
/// one MAC per output position, so 2·nnz·Ho·Wo FLOPs per sample.
double conv_nnz_flops(std::size_t nnz, std::size_t out_h, std::size_t out_w,
                      std::size_t batch = 1);

}  // namespace dstee::sparse
