// MaskedParameter: a sparsifiable parameter together with its mask and its
// activation-occurrence counter N (the tensor the DST-EE exploration term
// reads). One of these exists per conv/linear weight tensor in the model.
#pragma once

#include <cstddef>
#include <string>

#include "nn/parameter.hpp"
#include "sparse/mask.hpp"

namespace dstee::sparse {

/// Couples a model parameter with its sparse-training state.
class MaskedParameter {
 public:
  /// `optimizer_index` is the parameter's position in the optimizer's list,
  /// used to clear momentum entries on topology changes.
  MaskedParameter(nn::Parameter& param, Mask mask,
                  std::size_t optimizer_index);

  const std::string& name() const { return param_->name; }
  nn::Parameter& param() { return *param_; }
  const nn::Parameter& param() const { return *param_; }

  Mask& mask() { return mask_; }
  const Mask& mask() const { return mask_; }

  /// Occurrence counter Nᵗ: accumulated per mask-update round by += mask
  /// (Algorithm 1). Same shape as the parameter.
  tensor::Tensor& counter() { return counter_; }
  const tensor::Tensor& counter() const { return counter_; }

  std::size_t optimizer_index() const { return optimizer_index_; }

  std::size_t numel() const { return param_->value.numel(); }
  std::size_t num_active() const { return mask_.num_active(); }
  double density() const { return mask_.density(); }

  /// Zeros parameter values at masked positions (invariant after any
  /// topology edit or optimizer step).
  void apply_mask_to_value() { mask_.apply_to(param_->value); }

  /// Zeros gradients at masked positions (before the optimizer step, so
  /// inactive weights do not move).
  void apply_mask_to_grad() { mask_.apply_to(param_->grad); }

  /// Adds the current mask into the counter (one mask-update round).
  void accumulate_counter();

 private:
  nn::Parameter* param_;  // non-owning; the model outlives this object
  Mask mask_;
  tensor::Tensor counter_;
  std::size_t optimizer_index_;
};

}  // namespace dstee::sparse
