#include "sparse/distribution.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/check.hpp"
#include "util/string_util.hpp"

namespace dstee::sparse {

DistributionKind parse_distribution(const std::string& name) {
  const std::string lower = util::to_lower(name);
  if (lower == "uniform") return DistributionKind::kUniform;
  if (lower == "er") return DistributionKind::kEr;
  if (lower == "erk") return DistributionKind::kErk;
  util::fail("unknown sparsity distribution: " + name);
}

std::string to_string(DistributionKind kind) {
  switch (kind) {
    case DistributionKind::kUniform: return "uniform";
    case DistributionKind::kEr: return "er";
    case DistributionKind::kErk: return "erk";
  }
  return "?";
}

namespace {

// ER/ERK raw scale factor for one parameter shape.
double raw_scale(const tensor::Shape& shape, DistributionKind kind) {
  if (kind == DistributionKind::kUniform) return 1.0;
  double sum_dims = 0.0;
  double numel = 1.0;
  if (shape.rank() == 2) {
    sum_dims = static_cast<double>(shape.dim(0) + shape.dim(1));
    numel = static_cast<double>(shape.dim(0)) * static_cast<double>(shape.dim(1));
  } else if (shape.rank() == 4) {
    if (kind == DistributionKind::kErk) {
      sum_dims = static_cast<double>(shape.dim(0) + shape.dim(1) +
                                     shape.dim(2) + shape.dim(3));
    } else {
      sum_dims = static_cast<double>(shape.dim(0) + shape.dim(1));
    }
    numel = static_cast<double>(shape.numel());
  } else {
    util::fail("sparsity distribution supports rank-2/4 parameters only");
  }
  return sum_dims / numel;
}

}  // namespace

std::vector<double> layer_densities(const std::vector<tensor::Shape>& shapes,
                                    double global_sparsity,
                                    DistributionKind kind) {
  util::check(!shapes.empty(), "no parameter shapes given");
  util::check(global_sparsity >= 0.0 && global_sparsity < 1.0,
              "global sparsity must be in [0, 1)");
  const double global_density = 1.0 - global_sparsity;
  const std::size_t L = shapes.size();

  if (kind == DistributionKind::kUniform) {
    return std::vector<double>(L, global_density);
  }

  // Fixed point: dense-clamped layers keep density 1; remaining budget is
  // spread over the rest proportionally to their raw ER(K) scales.
  std::vector<bool> dense(L, false);
  std::vector<double> densities(L, 0.0);
  std::vector<double> scales(L);
  std::vector<double> numels(L);
  for (std::size_t i = 0; i < L; ++i) {
    scales[i] = raw_scale(shapes[i], kind);
    numels[i] = static_cast<double>(shapes[i].numel());
  }
  const double total = std::accumulate(numels.begin(), numels.end(), 0.0);

  for (std::size_t iteration = 0; iteration <= L; ++iteration) {
    double budget = global_density * total;
    double weighted = 0.0;
    for (std::size_t i = 0; i < L; ++i) {
      if (dense[i]) budget -= numels[i];
      else weighted += scales[i] * numels[i];
    }
    util::check(weighted > 0.0,
                "ERK distribution degenerate: all layers clamped dense");
    const double eps = budget / weighted;  // global multiplier

    bool clamped_new = false;
    for (std::size_t i = 0; i < L; ++i) {
      if (dense[i]) {
        densities[i] = 1.0;
        continue;
      }
      densities[i] = eps * scales[i];
      if (densities[i] > 1.0) {
        dense[i] = true;
        clamped_new = true;
      }
    }
    if (!clamped_new) break;
  }
  for (auto& d : densities) d = std::clamp(d, 0.0, 1.0);
  return densities;
}

std::vector<std::size_t> layer_active_counts(
    const std::vector<tensor::Shape>& shapes, double global_sparsity,
    DistributionKind kind) {
  const auto densities = layer_densities(shapes, global_sparsity, kind);
  const std::size_t L = shapes.size();
  double total = 0.0;
  for (const auto& s : shapes) total += static_cast<double>(s.numel());
  const auto target_global = static_cast<std::size_t>(
      std::llround((1.0 - global_sparsity) * total));

  // Floor per layer, then distribute the remainder by largest fraction.
  std::vector<std::size_t> counts(L);
  std::vector<std::pair<double, std::size_t>> fractions(L);
  std::size_t assigned = 0;
  for (std::size_t i = 0; i < L; ++i) {
    const double exact = densities[i] * static_cast<double>(shapes[i].numel());
    counts[i] = static_cast<std::size_t>(std::floor(exact));
    counts[i] = std::max<std::size_t>(counts[i], 1);  // never empty a layer
    counts[i] = std::min(counts[i], shapes[i].numel());
    fractions[i] = {exact - std::floor(exact), i};
    assigned += counts[i];
  }
  std::sort(fractions.begin(), fractions.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  std::size_t cursor = 0;
  while (assigned < target_global && cursor < L) {
    const std::size_t i = fractions[cursor++].second;
    if (counts[i] < shapes[i].numel()) {
      ++counts[i];
      ++assigned;
    }
  }
  // If rounding overshot (floors + min-1 clamps), trim from the densest
  // layers — keeping ≥1 active weight per layer.
  cursor = L;
  while (assigned > target_global && cursor-- > 0) {
    const std::size_t i = fractions[cursor].second;
    if (counts[i] > 1) {
      --counts[i];
      --assigned;
    }
    if (cursor == 0 && assigned > target_global) cursor = L;
  }
  return counts;
}

}  // namespace dstee::sparse
