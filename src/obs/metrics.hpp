// Metrics: named counters / gauges / log-bucketed histograms with an
// optional per-model label, exported as Prometheus text exposition and
// as flat (name, label, value) samples for CSV trending.
//
// Update paths are lock-free (relaxed atomics; the histogram sum is a
// CAS loop over the double's bit pattern), so servers can record into a
// metric from every worker without a shared lock. The registry itself
// locks only on get-or-create and on export — both cold. Metric objects
// are pointer-stable for the registry's lifetime: call counter()/gauge()/
// histogram() once at setup, keep the reference, and update it forever.
//
// Histogram buckets are powers of two from 2^-10 (~0.001) up — log
// bucketing matches latency distributions (constant relative error) and
// makes bucket selection a shift-free compare loop over 40 boundaries.
// Exposition follows the Prometheus convention: cumulative `le` buckets,
// a `+Inf` bucket equal to `_count`, and a `_sum` sample.
#pragma once

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace dstee::obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  double value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Log-bucketed (powers of two) histogram of non-negative samples.
class Histogram {
 public:
  /// First finite bucket upper bound is 2^kMinExp; each next doubles.
  static constexpr int kMinExp = -10;
  /// Finite buckets; one implicit +Inf bucket follows.
  static constexpr std::size_t kNumBuckets = 40;

  void observe(double v) {
    buckets_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    // Accumulate the double sum via CAS on its bit pattern — atomic
    // fetch_add on doubles is C++20 but spotty across libstdc++ versions.
    std::uint64_t old_bits = sum_bits_.load(std::memory_order_relaxed);
    while (!sum_bits_.compare_exchange_weak(
        old_bits, std::bit_cast<std::uint64_t>(
                      std::bit_cast<double>(old_bits) + v),
        std::memory_order_relaxed)) {
    }
  }

  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const {
    return std::bit_cast<double>(sum_bits_.load(std::memory_order_relaxed));
  }

  /// Per-bucket (non-cumulative) count; index kNumBuckets is +Inf.
  std::uint64_t bucket_count(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  /// Upper bound of finite bucket i (exclusive above, inclusive at).
  static double bucket_le(std::size_t i);

  /// Index of the bucket `v` lands in (kNumBuckets = +Inf overflow).
  static std::size_t bucket_index(double v);

 private:
  std::atomic<std::uint64_t> buckets_[kNumBuckets + 1]{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_bits_{0};
};

/// Get-or-create registry of named metrics with an optional `model`
/// label. Same (name, label) always returns the same object; the same
/// name with two different metric kinds fails loudly.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(const std::string& name, const std::string& label = "",
                   const std::string& help = "");
  Gauge& gauge(const std::string& name, const std::string& label = "",
               const std::string& help = "");
  Histogram& histogram(const std::string& name, const std::string& label = "",
                       const std::string& help = "");

  /// One flat sample for CSV trending. Histograms flatten to `_count`
  /// and `_sum` rows.
  struct Sample {
    std::string name;
    std::string label;
    double value = 0.0;
  };
  std::vector<Sample> snapshot() const;

  /// Prometheus text exposition (# HELP / # TYPE / samples; histograms
  /// with cumulative le buckets, +Inf, _sum and _count).
  std::string prometheus_text() const;

  std::size_t num_metrics() const;

 private:
  enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram };

  struct Entry {
    std::string name;
    std::string label;
    std::string help;
    Kind kind = Kind::kCounter;
    // Exactly one is set, matching `kind`. unique_ptr keeps the metric
    // heap-stable while the deque reallocates nothing anyway.
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry& get_or_create(const std::string& name, const std::string& label,
                       const std::string& help, Kind kind)
      DSTEE_REQUIRES(mu_);

  mutable util::Mutex mu_;
  std::deque<Entry> entries_ DSTEE_GUARDED_BY(mu_);
};

/// The process-wide registry serve-path metrics land in.
MetricsRegistry& metrics();

}  // namespace dstee::obs
