#include "obs/trace.hpp"

#include <algorithm>
#include <atomic>
#include <ostream>

#include "util/check.hpp"

namespace dstee::obs {

namespace {

/// Thread name staged before any ring exists (set_thread_name may run at
/// thread start, before the first record() registers a ring).
thread_local std::string tls_thread_name;  // NOLINT(runtime/string)

/// Trace id of the request currently executing on this thread.
thread_local std::uint64_t tls_trace_id = 0;

/// Per-recorder-instance serial, so a thread-local ring cache can tell a
/// destroyed-and-reallocated recorder from the one it registered with.
std::atomic<std::uint64_t> g_recorder_serial{0};

struct TlsRingCache {
  std::uint64_t recorder_serial = 0;
  void* ring = nullptr;
};
thread_local TlsRingCache tls_ring_cache;

void json_escape(std::ostream& os, const std::string& s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      os << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      os << ' ';
    } else {
      os << c;
    }
  }
}

}  // namespace

const char* to_string(SpanKind kind) {
  switch (kind) {
    case SpanKind::kRequest:
      return "request";
    case SpanKind::kQueue:
      return "queue";
    case SpanKind::kBatch:
      return "batch";
    case SpanKind::kFlush:
      return "flush";
    case SpanKind::kAssemble:
      return "assemble";
    case SpanKind::kForward:
      return "forward";
    case SpanKind::kOp:
      return "op";
  }
  return "?";
}

TraceRecorder::TraceRecorder(std::size_t ring_capacity)
    : capacity_(ring_capacity) {
  util::check(ring_capacity > 0, "TraceRecorder ring capacity must be > 0");
  serial_ = g_recorder_serial.fetch_add(1, std::memory_order_relaxed) + 1;
}

TraceRecorder::~TraceRecorder() = default;

void TraceRecorder::enable(std::uint32_t sample_every) {
  sample_every_.store(sample_every == 0 ? 1 : sample_every,
                      std::memory_order_relaxed);
  enabled_.store(true, std::memory_order_relaxed);
}

void TraceRecorder::disable() {
  enabled_.store(false, std::memory_order_relaxed);
}

std::uint64_t TraceRecorder::sample() {
  if (!enabled_.load(std::memory_order_relaxed)) return 0;
  const std::uint32_t every = sample_every_.load(std::memory_order_relaxed);
  const std::uint64_t n = submit_seq_.fetch_add(1, std::memory_order_relaxed);
  if (every > 1 && n % every != 0) return 0;
  return next_trace_id_.fetch_add(1, std::memory_order_relaxed) + 1;
}

TraceRecorder::Ring& TraceRecorder::local_ring() {
  if (tls_ring_cache.ring != nullptr &&
      tls_ring_cache.recorder_serial == serial_) {
    return *static_cast<Ring*>(tls_ring_cache.ring);
  }
  util::MutexLock lock(rings_mu_);
  auto ring = std::make_unique<Ring>(
      static_cast<std::uint32_t>(rings_.size()), capacity_);
  ring->label = tls_thread_name.empty()
                    ? "thread-" + std::to_string(ring->id)
                    : tls_thread_name;
  Ring* raw = ring.get();
  rings_.push_back(std::move(ring));
  tls_ring_cache = {serial_, raw};
  return *raw;
}

void TraceRecorder::record(std::uint64_t trace_id, SpanKind kind,
                           const char* name, std::int64_t ts_ns,
                           std::int64_t dur_ns, std::uint64_t arg) {
  if (trace_id == 0) return;
  Ring& ring = local_ring();
  Slot& slot = ring.slots[ring.next_write % capacity_];
  // Seqlock writer: invalidate, publish the invalidation BEFORE any new
  // field value becomes visible (release fence), write fields, then
  // publish the new sequence with release so a reader that sees it also
  // sees every field.
  slot.seq.store(0, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  slot.trace_id.store(trace_id, std::memory_order_relaxed);
  slot.name.store(name, std::memory_order_relaxed);
  slot.ts_ns.store(ts_ns, std::memory_order_relaxed);
  slot.dur_ns.store(dur_ns, std::memory_order_relaxed);
  slot.arg.store(arg, std::memory_order_relaxed);
  slot.kind.store(static_cast<std::uint8_t>(kind), std::memory_order_relaxed);
  slot.seq.store(ring.next_write + 1, std::memory_order_release);
  ++ring.next_write;
}

std::vector<TraceEvent> TraceRecorder::drain() const {
  std::vector<TraceEvent> events;
  util::MutexLock lock(rings_mu_);
  for (const std::unique_ptr<Ring>& ring : rings_) {
    for (std::size_t i = 0; i < capacity_; ++i) {
      const Slot& slot = ring->slots[i];
      // Seqlock reader: a slot is valid iff the sequence word is nonzero
      // and unchanged across the field reads (sequence values never
      // repeat, so an intervening overwrite cannot go unnoticed).
      const std::uint64_t seq1 = slot.seq.load(std::memory_order_acquire);
      if (seq1 == 0) continue;
      TraceEvent ev;
      ev.trace_id = slot.trace_id.load(std::memory_order_relaxed);
      ev.name = slot.name.load(std::memory_order_relaxed);
      ev.ts_ns = slot.ts_ns.load(std::memory_order_relaxed);
      ev.dur_ns = slot.dur_ns.load(std::memory_order_relaxed);
      ev.arg = slot.arg.load(std::memory_order_relaxed);
      ev.kind =
          static_cast<SpanKind>(slot.kind.load(std::memory_order_relaxed));
      ev.ring = ring->id;
      std::atomic_thread_fence(std::memory_order_acquire);
      const std::uint64_t seq2 = slot.seq.load(std::memory_order_relaxed);
      if (seq1 != seq2 || ev.name == nullptr) continue;
      events.push_back(ev);
    }
  }
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.ts_ns != b.ts_ns) return a.ts_ns < b.ts_ns;
              return a.dur_ns > b.dur_ns;  // parents before children
            });
  return events;
}

std::vector<std::string> TraceRecorder::ring_labels() const {
  util::MutexLock lock(rings_mu_);
  std::vector<std::string> labels;
  labels.reserve(rings_.size());
  for (const std::unique_ptr<Ring>& ring : rings_) {
    labels.push_back(ring->label);
  }
  return labels;
}

std::size_t TraceRecorder::num_rings() const {
  util::MutexLock lock(rings_mu_);
  return rings_.size();
}

void TraceRecorder::write_chrome_trace(std::ostream& os) const {
  const std::vector<TraceEvent> events = drain();
  const std::vector<std::string> labels = ring_labels();
  std::int64_t base_ns = 0;
  for (const TraceEvent& ev : events) {
    if (base_ns == 0 || ev.ts_ns < base_ns) base_ns = ev.ts_ns;
  }
  os << "{\"traceEvents\":[";
  bool first = true;
  const auto comma = [&] {
    if (!first) os << ",";
    first = false;
    os << "\n";
  };
  comma();
  os << R"({"ph":"M","pid":1,"name":"process_name",)"
     << R"("args":{"name":"dstee workers"}})";
  comma();
  os << R"({"ph":"M","pid":2,"name":"process_name",)"
     << R"("args":{"name":"sampled requests"}})";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    comma();
    os << R"({"ph":"M","pid":1,"tid":)" << i
       << R"(,"name":"thread_name","args":{"name":")";
    json_escape(os, labels[i]);
    os << "\"}}";
  }
  for (const TraceEvent& ev : events) {
    const bool request_lane = is_request_scoped(ev.kind);
    const std::uint64_t tid = request_lane ? ev.trace_id : ev.ring;
    // Chrome trace ts/dur are microseconds; keep nanosecond precision
    // with three decimals.
    const auto us = [](std::int64_t ns) {
      const std::int64_t whole = ns / 1000;
      const std::int64_t frac = ns % 1000;
      return std::to_string(whole) + "." +
             std::string(frac < 100 ? (frac < 10 ? "00" : "0") : "") +
             std::to_string(frac);
    };
    comma();
    os << R"({"name":")" << ev.name << R"(","cat":")" << to_string(ev.kind)
       << R"(","ph":"X","pid":)" << (request_lane ? 2 : 1) << ",\"tid\":" << tid
       << ",\"ts\":" << us(ev.ts_ns - base_ns) << ",\"dur\":" << us(ev.dur_ns)
       << R"(,"args":{"trace_id":)" << ev.trace_id << ",\"arg\":" << ev.arg
       << "}}";
  }
  os << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

TraceRecorder& trace() {
  static TraceRecorder recorder;
  return recorder;
}

void set_thread_name(const std::string& name) {
  tls_thread_name = name;
  // Re-label rings this thread already registered (cache hit path): the
  // cached ring, if any, belongs to whichever recorder registered it;
  // its label is guarded by that recorder's mutex, which we cannot name
  // here — so names set AFTER first record only affect future recorders.
  // Call set_thread_name at thread start (all call sites do).
}

std::uint64_t current_trace_id() { return tls_trace_id; }

ThreadTraceScope::ThreadTraceScope(std::uint64_t trace_id)
    : prev_(tls_trace_id) {
  tls_trace_id = trace_id;
}

ThreadTraceScope::~ThreadTraceScope() { tls_trace_id = prev_; }

}  // namespace dstee::obs
