// Per-PlanOp wall-time accumulation for the executor.
//
// One cell per plan node: total nanoseconds and call count, both relaxed
// atomics, so every replica clone of an Executor can share ONE profile
// and their concurrent forwards aggregate into the same cells. The
// measured totals feed Plan::annotate's measured cost shares and the
// PartitionRows `auto` mode (re-split heavy ops from observed cost
// instead of the static nnz model).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace dstee::obs {

class OpProfile {
 public:
  explicit OpProfile(std::size_t num_nodes)
      : cells_(new Cell[num_nodes]), size_(num_nodes) {}

  OpProfile(const OpProfile&) = delete;
  OpProfile& operator=(const OpProfile&) = delete;

  std::size_t size() const { return size_; }

  /// Accumulates one timed execution of node `i`. Lock-free; safe from
  /// any number of replica threads at once.
  void add(std::size_t i, std::int64_t ns) {
    cells_[i].ns.fetch_add(ns, std::memory_order_relaxed);
    cells_[i].calls.fetch_add(1, std::memory_order_relaxed);
  }

  std::int64_t node_ns(std::size_t i) const {
    return cells_[i].ns.load(std::memory_order_relaxed);
  }
  std::uint64_t node_calls(std::size_t i) const {
    return cells_[i].calls.load(std::memory_order_relaxed);
  }

  std::int64_t total_ns() const {
    std::int64_t total = 0;
    for (std::size_t i = 0; i < size_; ++i) total += node_ns(i);
    return total;
  }

  /// Per-node share of the measured total (all zeros when nothing was
  /// measured — callers fall back to the static cost model).
  std::vector<double> cost_shares() const {
    std::vector<double> shares(size_, 0.0);
    const double total = static_cast<double>(total_ns());
    if (total <= 0.0) return shares;
    for (std::size_t i = 0; i < size_; ++i) {
      shares[i] = static_cast<double>(node_ns(i)) / total;
    }
    return shares;
  }

 private:
  struct Cell {
    std::atomic<std::int64_t> ns{0};
    std::atomic<std::uint64_t> calls{0};
  };

  std::unique_ptr<Cell[]> cells_;
  std::size_t size_;
};

}  // namespace dstee::obs
