// Request tracing: per-request spans recorded into lock-free
// thread-local ring buffers, drained to Chrome trace-event JSON.
//
// Design constraints, in order:
//
//   1. Zero measurable cost when off. The serve hot path pays exactly one
//      predictable branch per request (TraceRecorder::sample() reads one
//      relaxed atomic flag) and per-op instrumentation is skipped
//      entirely unless the current request was sampled.
//   2. No locks, no allocation on the record path. Each recording thread
//      owns a fixed-capacity ring of slots; record() is a handful of
//      relaxed atomic stores bracketed by a per-slot sequence word
//      (seqlock protocol, single writer per ring). A full ring overwrites
//      its oldest events — tracing is a diagnostic window, not a log.
//   3. Race-free draining from any thread, concurrent with writers.
//      Every slot field is a std::atomic, so a torn read is impossible at
//      the memory-model level (TSan-clean by construction); a LOGICALLY
//      torn event — writer overwrote the slot mid-read — is rejected by
//      re-validating the sequence word. Drain may miss the event being
//      written this instant; it never fabricates one.
//
// Span vocabulary (see serve/server.cpp for the recording sites): a
// sampled request records `request` = [enqueued, done], `queue` =
// [enqueued, popped] and `batch` = [popped, done] on its own request
// lane — the three share endpoints, so queue + batch sums EXACTLY to the
// request duration. The worker that ran the micro-batch records `flush`
// (whole batch) ⊃ `assemble` + `forward` ⊃ per-PlanOp `op` spans on its
// own thread lane. write_chrome_trace() emits both lane families as
// Chrome trace-event JSON ("X" complete events) loadable in Perfetto.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace dstee::obs {

/// What stage of the serve path a span covers. Drives the Chrome-trace
/// lane mapping: request-scoped kinds render on a per-request lane,
/// execution-scoped kinds on the recording thread's lane.
enum class SpanKind : std::uint8_t {
  kRequest = 0,  ///< enqueued -> promise fulfilled (the reported latency)
  kQueue,        ///< enqueued -> popped into a micro-batch
  kBatch,        ///< popped -> done, from this request's point of view
  kFlush,        ///< one whole micro-batch on the worker that ran it
  kAssemble,     ///< gathering batch rows into the input tensor
  kForward,      ///< the compiled-net forward for the batch
  kOp,           ///< one PlanOp node inside the executor
};

const char* to_string(SpanKind kind);

/// True for kinds that render on the per-request lane (tid = trace id)
/// rather than the recording thread's lane.
inline bool is_request_scoped(SpanKind kind) {
  return kind == SpanKind::kRequest || kind == SpanKind::kQueue ||
         kind == SpanKind::kBatch;
}

/// One drained span. `name` points at a static string (PlanOp kind names,
/// span-kind literals) — recording never copies or allocates.
struct TraceEvent {
  std::uint64_t trace_id = 0;
  const char* name = nullptr;
  std::int64_t ts_ns = 0;   ///< obs::now_ns() at span start
  std::int64_t dur_ns = 0;  ///< span duration
  std::uint64_t arg = 0;    ///< kind-specific (batch size, node id, ...)
  SpanKind kind = SpanKind::kOp;
  std::uint32_t ring = 0;  ///< id of the ring (thread) that recorded it
};

/// Process-wide span recorder. One instance normally lives behind
/// obs::trace(); tests construct their own to isolate ring state.
class TraceRecorder {
 public:
  static constexpr std::size_t kDefaultRingCapacity = 4096;

  explicit TraceRecorder(std::size_t ring_capacity = kDefaultRingCapacity);
  ~TraceRecorder();

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Arms the recorder: every `sample_every`-th sample() call returns a
  /// fresh nonzero trace id (1 = trace every request).
  void enable(std::uint32_t sample_every = 1);

  /// Disarms: sample() returns 0. Already-recorded events stay drainable.
  void disable();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  std::uint32_t sample_every() const {
    return sample_every_.load(std::memory_order_relaxed);
  }

  /// The admission decision, called once per request on the submit path:
  /// returns a fresh nonzero trace id for every Nth request while
  /// enabled, else 0. When disabled this is ONE relaxed load + branch.
  std::uint64_t sample();

  /// Records a completed span on the calling thread's ring. No-op when
  /// `trace_id` is 0, so call sites need no enabled-check of their own.
  /// `name` must have static storage duration.
  void record(std::uint64_t trace_id, SpanKind kind, const char* name,
              std::int64_t ts_ns, std::int64_t dur_ns, std::uint64_t arg = 0);

  /// Snapshot of every valid slot across all rings, sorted by start time.
  /// Safe concurrently with writers (see file comment); does not clear.
  std::vector<TraceEvent> drain() const;

  /// Labels of all rings, indexed by TraceEvent::ring.
  std::vector<std::string> ring_labels() const;

  /// Drains and writes Chrome trace-event JSON (Perfetto-loadable):
  /// pid 1 = recording threads (tid = ring id), pid 2 = sampled requests
  /// (tid = trace id). Timestamps are rebased to the earliest event.
  void write_chrome_trace(std::ostream& os) const;

  std::size_t ring_capacity() const { return capacity_; }

  /// Number of rings registered so far (threads that recorded).
  std::size_t num_rings() const;

 private:
  /// One slot, seqlock-protected. seq == 0 means empty/being-written;
  /// otherwise seq is the 1-based monotonic write index, so a reader that
  /// sees the same nonzero seq before and after reading the fields knows
  /// no overwrite intervened (write indices never repeat).
  struct Slot {
    std::atomic<std::uint64_t> seq{0};
    std::atomic<std::uint64_t> trace_id{0};
    std::atomic<const char*> name{nullptr};
    std::atomic<std::int64_t> ts_ns{0};
    std::atomic<std::int64_t> dur_ns{0};
    std::atomic<std::uint64_t> arg{0};
    std::atomic<std::uint8_t> kind{0};
  };

  struct Ring {
    Ring(std::uint32_t id_in, std::size_t capacity)
        : slots(new Slot[capacity]), id(id_in) {}
    const std::unique_ptr<Slot[]> slots;
    // Monotonic write index. Written ONLY by the owning thread; drain
    // never reads it (it scans every slot and validates seq), so a plain
    // field is race-free.
    std::uint64_t next_write = 0;
    const std::uint32_t id;
    std::string label;  ///< guarded by the recorder's rings_mu_
  };

  /// The calling thread's ring, created (under rings_mu_) on first use
  /// and cached thread-locally afterwards.
  Ring& local_ring();

  const std::size_t capacity_;
  /// Process-unique instance serial: lets the thread-local ring cache
  /// tell this recorder from a destroyed one reallocated at the same
  /// address (tests construct short-lived recorders).
  std::uint64_t serial_ = 0;
  std::atomic<bool> enabled_{false};
  std::atomic<std::uint32_t> sample_every_{1};
  std::atomic<std::uint64_t> submit_seq_{0};
  std::atomic<std::uint64_t> next_trace_id_{0};

  mutable util::Mutex rings_mu_;
  // Ring objects are heap-stable (unique_ptr) and live until the recorder
  // dies: threads keep raw Ring pointers cached, so entries are never
  // removed. Only the vector itself (and each ring's label) is guarded.
  std::vector<std::unique_ptr<Ring>> rings_ DSTEE_GUARDED_BY(rings_mu_);
};

/// The process-wide recorder the serving stack records into.
TraceRecorder& trace();

/// Labels the calling thread's lane in trace output ("serve-s0-w1",
/// "pool-3", ...). Cheap and callable before any recorder exists; the
/// name sticks to rings the thread registers later.
void set_thread_name(const std::string& name);

/// The trace id of the request the calling thread is currently executing
/// (0 = none/unsampled). Set via ThreadTraceScope; read by the executor
/// to decide whether to record per-op spans.
std::uint64_t current_trace_id();

/// RAII: marks the calling thread as executing a sampled request for the
/// scope's lifetime (restores the previous id on exit, so nesting works).
class ThreadTraceScope {
 public:
  explicit ThreadTraceScope(std::uint64_t trace_id);
  ~ThreadTraceScope();

  ThreadTraceScope(const ThreadTraceScope&) = delete;
  ThreadTraceScope& operator=(const ThreadTraceScope&) = delete;

 private:
  std::uint64_t prev_;
};

}  // namespace dstee::obs
