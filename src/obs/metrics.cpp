#include "obs/metrics.hpp"

#include <cmath>
#include <map>
#include <sstream>

#include "util/check.hpp"

namespace dstee::obs {

namespace {

bool valid_metric_name(const std::string& name) {
  if (name.empty()) return false;
  const auto head_ok = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
           c == ':';
  };
  if (!head_ok(name[0])) return false;
  for (const char c : name) {
    if (!head_ok(c) && !(c >= '0' && c <= '9')) return false;
  }
  return true;
}

std::string escape_label_value(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (const char c : v) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out.push_back(c);
  }
  return out;
}

/// `name{model="label"}` (or bare name when unlabeled).
std::string sample_key(const std::string& name, const std::string& label,
                       const std::string& extra = "") {
  std::string out = name;
  if (!label.empty() || !extra.empty()) {
    out += "{";
    if (!label.empty()) {
      out += "model=\"" + escape_label_value(label) + "\"";
      if (!extra.empty()) out += ",";
    }
    out += extra + "}";
  }
  return out;
}

std::string format_double(double v) {
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  std::ostringstream os;
  os.precision(12);
  os << v;
  return os.str();
}

}  // namespace

double Histogram::bucket_le(std::size_t i) {
  return std::ldexp(1.0, kMinExp + static_cast<int>(i));
}

std::size_t Histogram::bucket_index(double v) {
  if (std::isnan(v)) return kNumBuckets;  // NaN counts only toward +Inf
  std::size_t i = 0;
  double le = bucket_le(0);
  while (i < kNumBuckets && v > le) {
    le *= 2.0;
    ++i;
  }
  return i;
}

MetricsRegistry::Entry& MetricsRegistry::get_or_create(
    const std::string& name, const std::string& label,
    const std::string& help, Kind kind) {
  util::check(valid_metric_name(name),
              "invalid metric name '" + name +
                  "' (want [a-zA-Z_:][a-zA-Z0-9_:]*)");
  for (Entry& e : entries_) {
    if (e.name != name) continue;
    util::check(e.kind == kind,
                "metric '" + name + "' already registered with another kind");
    if (e.label == label) {
      if (e.help.empty() && !help.empty()) e.help = help;
      return e;
    }
  }
  Entry e;
  e.name = name;
  e.label = label;
  e.help = help;
  e.kind = kind;
  switch (kind) {
    case Kind::kCounter:
      e.counter = std::make_unique<Counter>();
      break;
    case Kind::kGauge:
      e.gauge = std::make_unique<Gauge>();
      break;
    case Kind::kHistogram:
      e.histogram = std::make_unique<Histogram>();
      break;
  }
  entries_.push_back(std::move(e));
  return entries_.back();
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const std::string& label,
                                  const std::string& help) {
  util::MutexLock lock(mu_);
  return *get_or_create(name, label, help, Kind::kCounter).counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name,
                              const std::string& label,
                              const std::string& help) {
  util::MutexLock lock(mu_);
  return *get_or_create(name, label, help, Kind::kGauge).gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const std::string& label,
                                      const std::string& help) {
  util::MutexLock lock(mu_);
  return *get_or_create(name, label, help, Kind::kHistogram).histogram;
}

std::vector<MetricsRegistry::Sample> MetricsRegistry::snapshot() const {
  util::MutexLock lock(mu_);
  std::vector<Sample> out;
  out.reserve(entries_.size());
  for (const Entry& e : entries_) {
    switch (e.kind) {
      case Kind::kCounter:
        out.push_back(
            {e.name, e.label, static_cast<double>(e.counter->value())});
        break;
      case Kind::kGauge:
        out.push_back({e.name, e.label, e.gauge->value()});
        break;
      case Kind::kHistogram:
        out.push_back({e.name + "_count", e.label,
                       static_cast<double>(e.histogram->count())});
        out.push_back({e.name + "_sum", e.label, e.histogram->sum()});
        break;
    }
  }
  return out;
}

std::string MetricsRegistry::prometheus_text() const {
  util::MutexLock lock(mu_);
  // Group by family: Prometheus wants one # TYPE line per metric name,
  // followed by every labeled sample of that family.
  std::map<std::string, std::vector<const Entry*>> families;
  std::vector<std::string> order;  // first-registration order
  for (const Entry& e : entries_) {
    if (families.find(e.name) == families.end()) order.push_back(e.name);
    families[e.name].push_back(&e);
  }
  std::ostringstream os;
  for (const std::string& name : order) {
    const std::vector<const Entry*>& fam = families[name];
    for (const Entry* e : fam) {
      if (!e->help.empty()) {
        os << "# HELP " << name << " " << e->help << "\n";
        break;
      }
    }
    const char* type = fam.front()->kind == Kind::kCounter    ? "counter"
                       : fam.front()->kind == Kind::kGauge    ? "gauge"
                                                              : "histogram";
    os << "# TYPE " << name << " " << type << "\n";
    for (const Entry* e : fam) {
      switch (e->kind) {
        case Kind::kCounter:
          os << sample_key(name, e->label) << " " << e->counter->value()
             << "\n";
          break;
        case Kind::kGauge:
          os << sample_key(name, e->label) << " "
             << format_double(e->gauge->value()) << "\n";
          break;
        case Kind::kHistogram: {
          const Histogram& h = *e->histogram;
          std::uint64_t cumulative = 0;
          for (std::size_t i = 0; i < Histogram::kNumBuckets; ++i) {
            const std::uint64_t c = h.bucket_count(i);
            cumulative += c;
            // Skip still-empty leading buckets to keep the exposition
            // small, but always emit from the first hit onwards so the
            // cumulative series stays monotone and gap-free.
            if (cumulative == 0 && c == 0) continue;
            os << sample_key(name + "_bucket", e->label,
                             "le=\"" + format_double(Histogram::bucket_le(i)) +
                                 "\"")
               << " " << cumulative << "\n";
          }
          os << sample_key(name + "_bucket", e->label, "le=\"+Inf\"") << " "
             << h.count() << "\n";
          os << sample_key(name + "_sum", e->label) << " "
             << format_double(h.sum()) << "\n";
          os << sample_key(name + "_count", e->label) << " " << h.count()
             << "\n";
          break;
        }
      }
    }
  }
  return os.str();
}

std::size_t MetricsRegistry::num_metrics() const {
  util::MutexLock lock(mu_);
  return entries_.size();
}

MetricsRegistry& metrics() {
  static MetricsRegistry registry;
  return registry;
}

}  // namespace dstee::obs
