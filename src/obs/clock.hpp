// The one sanctioned timing surface for the serving stack.
//
// Every serve-path timestamp — micro-batch deadlines, latency samples,
// autoscaler polls, trace spans — reads obs::now(), so spans recorded by
// the TraceRecorder and latencies reported by ServerStats are measured on
// the SAME monotonic clock and can be cross-checked exactly (a request
// span's duration equals the latency the stats ring recorded for it).
// tools/dstee_lint's `serve-timing` rule bars src/serve/ from naming
// std::chrono::steady_clock directly, which keeps this the single
// definition site.
//
// obs::Clock is std::chrono::steady_clock: monotonic (never jumps on NTP
// adjustments), cheap (a vDSO read on Linux), and the clock the rest of
// the standard library's waiting primitives use, so wait_until deadlines
// built from obs::now() need no conversion.
#pragma once

#include <chrono>
#include <cstdint>

namespace dstee::obs {

using Clock = std::chrono::steady_clock;

/// The current monotonic time. THE timing call for serve hot paths.
inline Clock::time_point now() { return Clock::now(); }

/// Nanoseconds since the (arbitrary, boot-relative) clock epoch. Spans
/// store these: 64-bit signed covers ~292 years of uptime.
inline std::int64_t to_ns(Clock::time_point tp) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             tp.time_since_epoch())
      .count();
}

/// to_ns(now()) — the span-recording fast path.
inline std::int64_t now_ns() { return to_ns(now()); }

/// Fractional milliseconds from `from` to `to` (negative if reversed).
inline double ms_between(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

}  // namespace dstee::obs
