// Undirected graph in CSR form with symmetric-normalized adjacency —
// the substrate for the GNN link-prediction experiments (Tables III/IV).
#pragma once

#include <cstddef>
#include <vector>

#include "tensor/tensor.hpp"

namespace dstee::graph {

/// An undirected edge (u < v canonical order).
struct Edge {
  std::size_t u = 0;
  std::size_t v = 0;
  bool operator==(const Edge&) const = default;
};

/// CSR-stored undirected graph. Self-loops are added for GCN normalization
/// at propagation time, not stored here.
class Graph {
 public:
  /// Builds from an edge list (duplicates and self-loops are dropped).
  Graph(std::size_t num_nodes, const std::vector<Edge>& edges);

  std::size_t num_nodes() const { return num_nodes_; }
  std::size_t num_edges() const { return num_edges_; }

  /// Neighbor list of node `u` (sorted ascending).
  const std::size_t* neighbors_begin(std::size_t u) const;
  const std::size_t* neighbors_end(std::size_t u) const;
  std::size_t degree(std::size_t u) const;

  bool has_edge(std::size_t u, std::size_t v) const;

  /// All edges in canonical (u < v) order.
  std::vector<Edge> edge_list() const;

  /// GCN propagation: Y = Â·X where Â = D̃^{-1/2}(A + I)D̃^{-1/2},
  /// X is [num_nodes, features]. This is the adjoint of itself (Â is
  /// symmetric), which the GCN layer's backward uses.
  tensor::Tensor propagate(const tensor::Tensor& x) const;

 private:
  std::size_t num_nodes_;
  std::size_t num_edges_ = 0;
  std::vector<std::size_t> row_ptr_;
  std::vector<std::size_t> col_idx_;
  std::vector<float> norm_;        ///< per-edge normalization weight
  std::vector<float> self_norm_;   ///< per-node self-loop weight
};

}  // namespace dstee::graph
