#include "graph/graph.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include "util/check.hpp"

namespace dstee::graph {

Graph::Graph(std::size_t num_nodes, const std::vector<Edge>& edges)
    : num_nodes_(num_nodes) {
  util::check(num_nodes > 0, "graph requires at least one node");

  // Deduplicate into canonical adjacency sets.
  std::vector<std::set<std::size_t>> adj(num_nodes);
  for (const auto& e : edges) {
    util::check(e.u < num_nodes && e.v < num_nodes,
                "edge endpoint out of range");
    if (e.u == e.v) continue;
    adj[e.u].insert(e.v);
    adj[e.v].insert(e.u);
  }

  row_ptr_.assign(num_nodes + 1, 0);
  for (std::size_t u = 0; u < num_nodes; ++u) {
    row_ptr_[u + 1] = row_ptr_[u] + adj[u].size();
  }
  col_idx_.reserve(row_ptr_[num_nodes]);
  for (std::size_t u = 0; u < num_nodes; ++u) {
    for (const std::size_t v : adj[u]) col_idx_.push_back(v);
  }
  num_edges_ = col_idx_.size() / 2;

  // GCN normalization with self-loops: deg̃(u) = deg(u) + 1.
  norm_.resize(col_idx_.size());
  self_norm_.resize(num_nodes);
  std::vector<double> inv_sqrt(num_nodes);
  for (std::size_t u = 0; u < num_nodes; ++u) {
    inv_sqrt[u] = 1.0 / std::sqrt(static_cast<double>(degree(u) + 1));
    self_norm_[u] = static_cast<float>(inv_sqrt[u] * inv_sqrt[u]);
  }
  for (std::size_t u = 0; u < num_nodes; ++u) {
    for (std::size_t k = row_ptr_[u]; k < row_ptr_[u + 1]; ++k) {
      norm_[k] = static_cast<float>(inv_sqrt[u] * inv_sqrt[col_idx_[k]]);
    }
  }
}

const std::size_t* Graph::neighbors_begin(std::size_t u) const {
  util::check(u < num_nodes_, "node index out of range");
  return col_idx_.data() + row_ptr_[u];
}

const std::size_t* Graph::neighbors_end(std::size_t u) const {
  util::check(u < num_nodes_, "node index out of range");
  return col_idx_.data() + row_ptr_[u + 1];
}

std::size_t Graph::degree(std::size_t u) const {
  util::check(u < num_nodes_, "node index out of range");
  return row_ptr_[u + 1] - row_ptr_[u];
}

bool Graph::has_edge(std::size_t u, std::size_t v) const {
  util::check(u < num_nodes_ && v < num_nodes_, "node index out of range");
  const auto* begin = neighbors_begin(u);
  const auto* end = neighbors_end(u);
  return std::binary_search(begin, end, v);
}

std::vector<Edge> Graph::edge_list() const {
  std::vector<Edge> edges;
  edges.reserve(num_edges_);
  for (std::size_t u = 0; u < num_nodes_; ++u) {
    for (std::size_t k = row_ptr_[u]; k < row_ptr_[u + 1]; ++k) {
      if (u < col_idx_[k]) edges.push_back({u, col_idx_[k]});
    }
  }
  return edges;
}

tensor::Tensor Graph::propagate(const tensor::Tensor& x) const {
  util::check(x.rank() == 2 && x.dim(0) == num_nodes_,
              "propagate expects [num_nodes, features]");
  const std::size_t f = x.dim(1);
  tensor::Tensor y({num_nodes_, f});
  for (std::size_t u = 0; u < num_nodes_; ++u) {
    float* dst = y.raw() + u * f;
    const float self = self_norm_[u];
    const float* src_u = x.raw() + u * f;
    for (std::size_t j = 0; j < f; ++j) dst[j] = self * src_u[j];
    for (std::size_t k = row_ptr_[u]; k < row_ptr_[u + 1]; ++k) {
      const float w = norm_[k];
      const float* src = x.raw() + col_idx_[k] * f;
      for (std::size_t j = 0; j < f; ++j) dst[j] += w * src[j];
    }
  }
  return y;
}

}  // namespace dstee::graph
