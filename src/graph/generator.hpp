// Synthetic graph generation — power-law graphs standing in for the paper's
// ia-email and wiki-talk datasets (see DESIGN.md substitution table).
#pragma once

#include <cstdint>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace dstee::graph {

/// Barabási–Albert-style preferential attachment.
struct PowerLawConfig {
  std::size_t num_nodes = 1000;
  std::size_t edges_per_node = 4;  ///< attachment count m
  std::uint64_t seed = 11;
};

/// Generates a connected power-law graph.
Graph generate_power_law(const PowerLawConfig& config);

/// Presets mirroring the published scale *ratios* of the two paper
/// datasets, downscaled for CPU runs (`scale` multiplies node count):
///  - ia-email-univ: 1.1k nodes, avg degree ≈ 9.6
///  - wiki-talk:     2.4M nodes, avg degree ≈ 3.9 (downscaled)
PowerLawConfig ia_email_config(double scale = 1.0, std::uint64_t seed = 11);
PowerLawConfig wiki_talk_config(double scale = 1.0, std::uint64_t seed = 13);

/// Node features for GNN input: degree statistics + random projections of
/// the neighborhood structure (deterministic in the seed). Returns
/// [num_nodes, feature_dim].
tensor::Tensor structural_features(const Graph& graph,
                                   std::size_t feature_dim,
                                   std::uint64_t seed);

}  // namespace dstee::graph
