#include "graph/generator.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace dstee::graph {

Graph generate_power_law(const PowerLawConfig& config) {
  util::check(config.num_nodes > config.edges_per_node + 1,
              "graph too small for the attachment count");
  util::check(config.edges_per_node >= 1, "edges_per_node must be >= 1");
  util::Rng rng(config.seed);

  std::vector<Edge> edges;
  // `targets` holds one entry per edge endpoint → sampling from it is
  // degree-proportional (classic BA construction).
  std::vector<std::size_t> endpoint_pool;

  // Seed clique over the first m+1 nodes keeps the graph connected.
  const std::size_t m = config.edges_per_node;
  for (std::size_t u = 0; u <= m; ++u) {
    for (std::size_t v = u + 1; v <= m; ++v) {
      edges.push_back({u, v});
      endpoint_pool.push_back(u);
      endpoint_pool.push_back(v);
    }
  }
  for (std::size_t u = m + 1; u < config.num_nodes; ++u) {
    std::vector<std::size_t> chosen;
    while (chosen.size() < m) {
      const std::size_t pick =
          endpoint_pool[rng.uniform_index(endpoint_pool.size())];
      if (pick != u &&
          std::find(chosen.begin(), chosen.end(), pick) == chosen.end()) {
        chosen.push_back(pick);
      }
    }
    for (const std::size_t v : chosen) {
      edges.push_back({std::min(u, v), std::max(u, v)});
      endpoint_pool.push_back(u);
      endpoint_pool.push_back(v);
    }
  }
  return Graph(config.num_nodes, edges);
}

PowerLawConfig ia_email_config(double scale, std::uint64_t seed) {
  PowerLawConfig cfg;
  // ia-email-univ: 1133 nodes, 5451 edges → avg degree ≈ 9.6 → m ≈ 5.
  cfg.num_nodes = std::max<std::size_t>(
      64, static_cast<std::size_t>(std::llround(1133 * scale)));
  cfg.edges_per_node = 5;
  cfg.seed = seed;
  return cfg;
}

PowerLawConfig wiki_talk_config(double scale, std::uint64_t seed) {
  PowerLawConfig cfg;
  // wiki-talk is ~2.4M nodes with avg degree ≈ 3.9; we keep the sparser
  // degree profile (m = 2) and downscale node count for CPU runs.
  cfg.num_nodes = std::max<std::size_t>(
      64, static_cast<std::size_t>(std::llround(2400 * scale)));
  cfg.edges_per_node = 2;
  cfg.seed = seed;
  return cfg;
}

tensor::Tensor structural_features(const Graph& graph,
                                   std::size_t feature_dim,
                                   std::uint64_t seed) {
  util::check(feature_dim >= 4, "feature dim must be >= 4");
  const std::size_t n = graph.num_nodes();
  tensor::Tensor features({n, feature_dim});
  util::Rng rng(seed);

  // Random per-node base vectors...
  for (std::size_t i = 0; i < features.numel(); ++i) {
    features[i] = static_cast<float>(rng.normal(0.0, 1.0));
  }
  // ...smoothed over the graph twice so features encode neighborhoods
  // (like a fixed, untrained 2-hop propagation)...
  tensor::Tensor smoothed = graph.propagate(graph.propagate(features));
  // ...plus explicit degree channels in the first two columns.
  double max_deg = 1.0;
  for (std::size_t u = 0; u < n; ++u) {
    max_deg = std::max(max_deg, static_cast<double>(graph.degree(u)));
  }
  for (std::size_t u = 0; u < n; ++u) {
    const double d = static_cast<double>(graph.degree(u));
    smoothed.raw()[u * feature_dim + 0] = static_cast<float>(d / max_deg);
    smoothed.raw()[u * feature_dim + 1] =
        static_cast<float>(std::log1p(d) / std::log1p(max_deg));
  }
  return smoothed;
}

}  // namespace dstee::graph
