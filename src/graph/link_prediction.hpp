// Link-prediction dataset machinery: edge splitting and negative sampling.
#pragma once

#include <cstdint>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace dstee::graph {

/// A labeled node pair for link prediction (label 1 = edge exists).
struct LabeledPair {
  std::size_t u = 0;
  std::size_t v = 0;
  float label = 0.0f;
};

/// Train/test split for link prediction:
///  - `train_graph` keeps (1 − holdout) of the edges (message passing +
///    positive training examples);
///  - test positives are the held-out edges;
///  - negatives are uniformly sampled non-edges, one per positive.
struct LinkSplit {
  std::vector<Edge> train_edges;
  std::vector<LabeledPair> train_pairs;  ///< positives + negatives
  std::vector<LabeledPair> test_pairs;   ///< positives + negatives
};

/// Builds the split. `holdout` is the fraction of edges moved to test.
LinkSplit split_links(const Graph& graph, double holdout, std::uint64_t seed);

/// Samples `count` node pairs without an edge in `graph` (and not in
/// `exclude`), uniformly at random.
std::vector<Edge> sample_negative_edges(const Graph& graph,
                                        std::size_t count, util::Rng& rng);

}  // namespace dstee::graph
