#include "graph/link_prediction.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace dstee::graph {

std::vector<Edge> sample_negative_edges(const Graph& graph,
                                        std::size_t count, util::Rng& rng) {
  const std::size_t n = graph.num_nodes();
  const double density = static_cast<double>(2 * graph.num_edges()) /
                         (static_cast<double>(n) * static_cast<double>(n - 1));
  util::check(density < 0.5,
              "graph too dense for rejection-sampled negatives");
  std::vector<Edge> negatives;
  negatives.reserve(count);
  std::size_t attempts = 0;
  const std::size_t max_attempts = 100 * (count + 1);
  while (negatives.size() < count) {
    util::check(++attempts <= max_attempts,
                "negative sampling failed to converge");
    const auto u = static_cast<std::size_t>(rng.uniform_index(n));
    const auto v = static_cast<std::size_t>(rng.uniform_index(n));
    if (u == v || graph.has_edge(u, v)) continue;
    negatives.push_back({std::min(u, v), std::max(u, v)});
  }
  return negatives;
}

LinkSplit split_links(const Graph& graph, double holdout,
                      std::uint64_t seed) {
  util::check(holdout > 0.0 && holdout < 1.0, "holdout must be in (0, 1)");
  util::Rng rng(seed);

  std::vector<Edge> edges = graph.edge_list();
  util::Rng shuffle_rng = rng.fork("link/shuffle");
  shuffle_rng.shuffle(edges);

  const std::size_t test_count = std::max<std::size_t>(
      1, static_cast<std::size_t>(holdout * static_cast<double>(edges.size())));
  util::check(test_count < edges.size(), "holdout leaves no training edges");

  LinkSplit split;
  split.train_edges.assign(edges.begin() + test_count, edges.end());
  std::vector<Edge> test_pos(edges.begin(), edges.begin() + test_count);

  // Negatives are sampled against the FULL graph so no negative is secretly
  // a held-out positive.
  util::Rng neg_rng = rng.fork("link/negatives");
  const std::vector<Edge> train_neg =
      sample_negative_edges(graph, split.train_edges.size(), neg_rng);
  const std::vector<Edge> test_neg =
      sample_negative_edges(graph, test_pos.size(), neg_rng);

  split.train_pairs.reserve(2 * split.train_edges.size());
  for (const auto& e : split.train_edges) {
    split.train_pairs.push_back({e.u, e.v, 1.0f});
  }
  for (const auto& e : train_neg) {
    split.train_pairs.push_back({e.u, e.v, 0.0f});
  }
  split.test_pairs.reserve(2 * test_pos.size());
  for (const auto& e : test_pos) split.test_pairs.push_back({e.u, e.v, 1.0f});
  for (const auto& e : test_neg) split.test_pairs.push_back({e.u, e.v, 0.0f});
  return split;
}

}  // namespace dstee::graph
