// Loss functions. Losses are not Modules: they take (prediction, target)
// and produce (scalar loss, gradient w.r.t. prediction).
#pragma once

#include <span>
#include <vector>

#include "tensor/tensor.hpp"

namespace dstee::nn {

/// Softmax + cross-entropy over logits [batch, classes] with integer labels.
/// The fused formulation is numerically stable (max-subtraction) and gives
/// the textbook gradient (softmax − one_hot) / batch.
class SoftmaxCrossEntropy {
 public:
  /// Returns mean loss over the batch and caches what backward needs.
  double forward(const tensor::Tensor& logits,
                 std::span<const std::size_t> labels);

  /// Gradient w.r.t. the logits of the last forward call.
  tensor::Tensor backward() const;

  /// Row-wise class probabilities of the last forward call.
  const tensor::Tensor& probabilities() const { return probs_; }

 private:
  tensor::Tensor probs_;
  std::vector<std::size_t> labels_;
};

/// Binary cross-entropy on logits [batch] (or [batch, 1]) with float
/// targets in {0, 1} — the link-prediction objective.
class BCEWithLogits {
 public:
  double forward(const tensor::Tensor& logits,
                 std::span<const float> targets);
  tensor::Tensor backward() const;

  /// σ(logit) of the last forward call.
  const tensor::Tensor& probabilities() const { return probs_; }

 private:
  tensor::Tensor probs_;
  std::vector<float> targets_;
  tensor::Shape logits_shape_;
};

/// Mean squared error between prediction and target tensors of equal shape.
class MeanSquaredError {
 public:
  double forward(const tensor::Tensor& prediction,
                 const tensor::Tensor& target);
  tensor::Tensor backward() const;

 private:
  tensor::Tensor diff_;
};

}  // namespace dstee::nn
