// Flatten: [N, C, H, W] → [N, C·H·W].
#pragma once

#include "nn/module.hpp"

namespace dstee::nn {

/// Flattens all trailing dimensions into one feature axis.
class Flatten : public Module {
 public:
  tensor::Tensor forward(const tensor::Tensor& x) override;
  tensor::Tensor backward(const tensor::Tensor& grad_out) override;
  std::string name() const override { return "flatten"; }

 private:
  tensor::Shape cached_in_shape_;
};

}  // namespace dstee::nn
