#include "nn/pooling.hpp"

#include <limits>

#include "util/check.hpp"

namespace dstee::nn {

MaxPool2d::MaxPool2d(std::size_t kernel, std::size_t stride)
    : kernel_(kernel), stride_(stride == 0 ? kernel : stride) {
  util::check(kernel_ > 0, "maxpool kernel must be positive");
}

tensor::Tensor MaxPool2d::forward(const tensor::Tensor& x) {
  util::check(x.rank() == 4, "maxpool2d expects [N, C, H, W]");
  util::check(x.dim(2) >= kernel_ && x.dim(3) >= kernel_,
              "maxpool2d input smaller than window");
  const std::size_t batch = x.dim(0), ch = x.dim(1), ih = x.dim(2),
                    iw = x.dim(3);
  const std::size_t oh = (ih - kernel_) / stride_ + 1;
  const std::size_t ow = (iw - kernel_) / stride_ + 1;
  cached_in_shape_ = x.shape();
  cached_argmax_.assign(batch * ch * oh * ow, 0);

  tensor::Tensor y({batch, ch, oh, ow});
  std::size_t out_i = 0;
  for (std::size_t n = 0; n < batch; ++n) {
    for (std::size_t c = 0; c < ch; ++c) {
      const float* plane = x.raw() + (n * ch + c) * ih * iw;
      const std::size_t plane_base = (n * ch + c) * ih * iw;
      for (std::size_t y0 = 0; y0 < oh; ++y0) {
        for (std::size_t x0 = 0; x0 < ow; ++x0) {
          float best = -std::numeric_limits<float>::infinity();
          std::size_t best_idx = 0;
          for (std::size_t ky = 0; ky < kernel_; ++ky) {
            for (std::size_t kx = 0; kx < kernel_; ++kx) {
              const std::size_t iy = y0 * stride_ + ky;
              const std::size_t ix = x0 * stride_ + kx;
              const float v = plane[iy * iw + ix];
              if (v > best) {
                best = v;
                best_idx = plane_base + iy * iw + ix;
              }
            }
          }
          y[out_i] = best;
          cached_argmax_[out_i] = best_idx;
          ++out_i;
        }
      }
    }
  }
  return y;
}

tensor::Tensor MaxPool2d::backward(const tensor::Tensor& grad_out) {
  util::check(grad_out.numel() == cached_argmax_.size(),
              "maxpool backward gradient size mismatch");
  tensor::Tensor grad_x(cached_in_shape_);
  for (std::size_t i = 0; i < grad_out.numel(); ++i) {
    grad_x[cached_argmax_[i]] += grad_out[i];
  }
  return grad_x;
}

std::string MaxPool2d::name() const {
  return "maxpool2d(k" + std::to_string(kernel_) + ", s" +
         std::to_string(stride_) + ")";
}

AvgPool2d::AvgPool2d(std::size_t kernel) : kernel_(kernel) {
  util::check(kernel_ > 0, "avgpool kernel must be positive");
}

tensor::Tensor AvgPool2d::forward(const tensor::Tensor& x) {
  util::check(x.rank() == 4, "avgpool2d expects [N, C, H, W]");
  const std::size_t batch = x.dim(0), ch = x.dim(1), ih = x.dim(2),
                    iw = x.dim(3);
  util::check(ih >= kernel_ && iw >= kernel_,
              "avgpool2d input smaller than window");
  const std::size_t oh = ih / kernel_, ow = iw / kernel_;
  cached_in_shape_ = x.shape();
  const float inv = 1.0f / static_cast<float>(kernel_ * kernel_);

  tensor::Tensor y({batch, ch, oh, ow});
  for (std::size_t n = 0; n < batch; ++n) {
    for (std::size_t c = 0; c < ch; ++c) {
      const float* plane = x.raw() + (n * ch + c) * ih * iw;
      float* out_plane = y.raw() + (n * ch + c) * oh * ow;
      for (std::size_t y0 = 0; y0 < oh; ++y0) {
        for (std::size_t x0 = 0; x0 < ow; ++x0) {
          float acc = 0.0f;
          for (std::size_t ky = 0; ky < kernel_; ++ky) {
            for (std::size_t kx = 0; kx < kernel_; ++kx) {
              acc += plane[(y0 * kernel_ + ky) * iw + (x0 * kernel_ + kx)];
            }
          }
          out_plane[y0 * ow + x0] = acc * inv;
        }
      }
    }
  }
  return y;
}

tensor::Tensor AvgPool2d::backward(const tensor::Tensor& grad_out) {
  const std::size_t batch = cached_in_shape_.dim(0),
                    ch = cached_in_shape_.dim(1), ih = cached_in_shape_.dim(2),
                    iw = cached_in_shape_.dim(3);
  const std::size_t oh = ih / kernel_, ow = iw / kernel_;
  util::check(grad_out.rank() == 4 && grad_out.dim(2) == oh &&
                  grad_out.dim(3) == ow,
              "avgpool backward gradient shape mismatch");
  const float inv = 1.0f / static_cast<float>(kernel_ * kernel_);
  tensor::Tensor grad_x(cached_in_shape_);
  for (std::size_t n = 0; n < batch; ++n) {
    for (std::size_t c = 0; c < ch; ++c) {
      const float* go = grad_out.raw() + (n * ch + c) * oh * ow;
      float* gx = grad_x.raw() + (n * ch + c) * ih * iw;
      for (std::size_t y0 = 0; y0 < oh; ++y0) {
        for (std::size_t x0 = 0; x0 < ow; ++x0) {
          const float g = go[y0 * ow + x0] * inv;
          for (std::size_t ky = 0; ky < kernel_; ++ky) {
            for (std::size_t kx = 0; kx < kernel_; ++kx) {
              gx[(y0 * kernel_ + ky) * iw + (x0 * kernel_ + kx)] += g;
            }
          }
        }
      }
    }
  }
  return grad_x;
}

std::string AvgPool2d::name() const {
  return "avgpool2d(k" + std::to_string(kernel_) + ")";
}

tensor::Tensor GlobalAvgPool::forward(const tensor::Tensor& x) {
  util::check(x.rank() == 4, "global_avg_pool expects [N, C, H, W]");
  const std::size_t batch = x.dim(0), ch = x.dim(1);
  const std::size_t sp = x.dim(2) * x.dim(3);
  cached_in_shape_ = x.shape();
  tensor::Tensor y({batch, ch});
  const float inv = 1.0f / static_cast<float>(sp);
  for (std::size_t n = 0; n < batch; ++n) {
    for (std::size_t c = 0; c < ch; ++c) {
      const float* plane = x.raw() + (n * ch + c) * sp;
      float acc = 0.0f;
      for (std::size_t i = 0; i < sp; ++i) acc += plane[i];
      y[n * ch + c] = acc * inv;
    }
  }
  return y;
}

tensor::Tensor GlobalAvgPool::backward(const tensor::Tensor& grad_out) {
  const std::size_t batch = cached_in_shape_.dim(0),
                    ch = cached_in_shape_.dim(1);
  const std::size_t sp = cached_in_shape_.dim(2) * cached_in_shape_.dim(3);
  util::check(grad_out.rank() == 2 && grad_out.dim(0) == batch &&
                  grad_out.dim(1) == ch,
              "global_avg_pool backward gradient shape mismatch");
  const float inv = 1.0f / static_cast<float>(sp);
  tensor::Tensor grad_x(cached_in_shape_);
  for (std::size_t n = 0; n < batch; ++n) {
    for (std::size_t c = 0; c < ch; ++c) {
      const float g = grad_out[n * ch + c] * inv;
      float* plane = grad_x.raw() + (n * ch + c) * sp;
      for (std::size_t i = 0; i < sp; ++i) plane[i] = g;
    }
  }
  return grad_x;
}

}  // namespace dstee::nn
