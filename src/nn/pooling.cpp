#include "nn/pooling.hpp"

#include "kernels/pool.hpp"
#include "util/check.hpp"

namespace dstee::nn {

MaxPool2d::MaxPool2d(std::size_t kernel, std::size_t stride)
    : kernel_(kernel), stride_(stride == 0 ? kernel : stride) {
  util::check(kernel_ > 0, "maxpool kernel must be positive");
}

tensor::Tensor MaxPool2d::forward(const tensor::Tensor& x) {
  cached_in_shape_ = x.shape();
  return kernels::maxpool2d(x, kernel_, stride_, &cached_argmax_,
                            runtime::training_intra());
}

tensor::Tensor MaxPool2d::backward(const tensor::Tensor& grad_out) {
  util::check(grad_out.numel() == cached_argmax_.size(),
              "maxpool backward gradient size mismatch");
  tensor::Tensor grad_x(cached_in_shape_);
  for (std::size_t i = 0; i < grad_out.numel(); ++i) {
    grad_x[cached_argmax_[i]] += grad_out[i];
  }
  return grad_x;
}

std::string MaxPool2d::name() const {
  return "maxpool2d(k" + std::to_string(kernel_) + ", s" +
         std::to_string(stride_) + ")";
}

AvgPool2d::AvgPool2d(std::size_t kernel) : kernel_(kernel) {
  util::check(kernel_ > 0, "avgpool kernel must be positive");
}

tensor::Tensor AvgPool2d::forward(const tensor::Tensor& x) {
  cached_in_shape_ = x.shape();
  return kernels::avgpool2d(x, kernel_,
                            runtime::training_intra());
}

tensor::Tensor AvgPool2d::backward(const tensor::Tensor& grad_out) {
  const std::size_t batch = cached_in_shape_.dim(0),
                    ch = cached_in_shape_.dim(1), ih = cached_in_shape_.dim(2),
                    iw = cached_in_shape_.dim(3);
  const std::size_t oh = ih / kernel_, ow = iw / kernel_;
  util::check(grad_out.rank() == 4 && grad_out.dim(2) == oh &&
                  grad_out.dim(3) == ow,
              "avgpool backward gradient shape mismatch");
  const float inv = 1.0f / static_cast<float>(kernel_ * kernel_);
  tensor::Tensor grad_x(cached_in_shape_);
  for (std::size_t n = 0; n < batch; ++n) {
    for (std::size_t c = 0; c < ch; ++c) {
      const float* go = grad_out.raw() + (n * ch + c) * oh * ow;
      float* gx = grad_x.raw() + (n * ch + c) * ih * iw;
      for (std::size_t y0 = 0; y0 < oh; ++y0) {
        for (std::size_t x0 = 0; x0 < ow; ++x0) {
          const float g = go[y0 * ow + x0] * inv;
          for (std::size_t ky = 0; ky < kernel_; ++ky) {
            for (std::size_t kx = 0; kx < kernel_; ++kx) {
              gx[(y0 * kernel_ + ky) * iw + (x0 * kernel_ + kx)] += g;
            }
          }
        }
      }
    }
  }
  return grad_x;
}

std::string AvgPool2d::name() const {
  return "avgpool2d(k" + std::to_string(kernel_) + ")";
}

tensor::Tensor GlobalAvgPool::forward(const tensor::Tensor& x) {
  cached_in_shape_ = x.shape();
  return kernels::global_avg_pool(
      x, runtime::training_intra());
}

tensor::Tensor GlobalAvgPool::backward(const tensor::Tensor& grad_out) {
  const std::size_t batch = cached_in_shape_.dim(0),
                    ch = cached_in_shape_.dim(1);
  const std::size_t sp = cached_in_shape_.dim(2) * cached_in_shape_.dim(3);
  util::check(grad_out.rank() == 2 && grad_out.dim(0) == batch &&
                  grad_out.dim(1) == ch,
              "global_avg_pool backward gradient shape mismatch");
  const float inv = 1.0f / static_cast<float>(sp);
  tensor::Tensor grad_x(cached_in_shape_);
  for (std::size_t n = 0; n < batch; ++n) {
    for (std::size_t c = 0; c < ch; ++c) {
      const float g = grad_out[n * ch + c] * inv;
      float* plane = grad_x.raw() + (n * ch + c) * sp;
      for (std::size_t i = 0; i < sp; ++i) plane[i] = g;
    }
  }
  return grad_x;
}

}  // namespace dstee::nn
