// Sequential container: composes modules front-to-back.
#pragma once

#include <memory>
#include <vector>

#include "nn/module.hpp"

namespace dstee::nn {

/// Runs children in order on forward; reverses them on backward.
class Sequential : public Module {
 public:
  Sequential() = default;

  /// Appends a child; returns a reference for chaining/config access.
  template <typename M, typename... Args>
  M& emplace(Args&&... args) {
    auto child = std::make_unique<M>(std::forward<Args>(args)...);
    M& ref = *child;
    children_.push_back(std::move(child));
    return ref;
  }

  /// Appends an already-built module.
  void append(std::unique_ptr<Module> module);

  tensor::Tensor forward(const tensor::Tensor& x) override;
  tensor::Tensor backward(const tensor::Tensor& grad_out) override;
  void collect_parameters(std::vector<Parameter*>& out) override;
  void collect_state_buffers(std::vector<tensor::Tensor*>& out) override;
  void set_training(bool training) override;
  std::string name() const override;

  std::size_t size() const { return children_.size(); }
  Module& child(std::size_t i);

 private:
  std::vector<std::unique_ptr<Module>> children_;
};

}  // namespace dstee::nn
