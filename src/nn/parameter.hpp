// Trainable parameter: value + gradient + sparsification eligibility.
#pragma once

#include <string>

#include "tensor/tensor.hpp"

namespace dstee::nn {

/// A named trainable tensor with its gradient accumulator.
///
/// `sparsifiable` marks the parameters DST operates on. Following the paper
/// (and RigL/SET convention), conv and linear *weights* are sparsified;
/// biases and batch-norm affine parameters stay dense — they are a
/// negligible fraction of the model and pruning them destabilizes training.
struct Parameter {
  Parameter(std::string param_name, tensor::Shape shape, bool can_sparsify)
      : name(std::move(param_name)),
        value(shape),
        grad(shape),
        sparsifiable(can_sparsify) {}

  std::string name;
  tensor::Tensor value;
  tensor::Tensor grad;
  bool sparsifiable;

  /// Clears the gradient accumulator.
  void zero_grad() { grad.fill(0.0f); }
};

}  // namespace dstee::nn
