// 2-d convolution over NCHW tensors via im2col lowering.
#pragma once

#include <optional>

#include "nn/module.hpp"
#include "tensor/im2col.hpp"
#include "util/rng.hpp"

namespace dstee::nn {

/// Conv2d with square kernels, symmetric padding and uniform stride.
/// Weight shape: [out_channels, in_channels, k, k] (sparsifiable).
class Conv2d : public Module {
 public:
  Conv2d(std::size_t in_channels, std::size_t out_channels,
         std::size_t kernel, std::size_t stride, std::size_t padding,
         util::Rng& rng, bool with_bias = false);

  tensor::Tensor forward(const tensor::Tensor& x) override;
  tensor::Tensor backward(const tensor::Tensor& grad_out) override;
  void collect_parameters(std::vector<Parameter*>& out) override;
  std::string name() const override;

  std::size_t in_channels() const { return in_channels_; }
  std::size_t out_channels() const { return out_channels_; }
  std::size_t kernel() const { return kernel_; }
  std::size_t stride() const { return stride_; }
  std::size_t padding() const { return padding_; }

  Parameter& weight() { return weight_; }
  const Parameter& weight() const { return weight_; }
  bool has_bias() const { return bias_.has_value(); }
  /// Requires with_bias = true at construction.
  Parameter& bias();

 private:
  tensor::ConvGeometry geometry(std::size_t in_h, std::size_t in_w) const;

  std::size_t in_channels_;
  std::size_t out_channels_;
  std::size_t kernel_;
  std::size_t stride_;
  std::size_t padding_;
  Parameter weight_;
  std::optional<Parameter> bias_;
  tensor::Tensor cached_input_;
};

}  // namespace dstee::nn
