#include "nn/batchnorm.hpp"

#include <cmath>

#include "util/check.hpp"

namespace dstee::nn {

BatchNorm::BatchNorm(std::size_t channels, bool rank4, double momentum,
                     double eps)
    : channels_(channels),
      rank4_(rank4),
      momentum_(momentum),
      eps_(eps),
      gamma_("bn.gamma", tensor::Shape({channels}), /*can_sparsify=*/false),
      beta_("bn.beta", tensor::Shape({channels}), /*can_sparsify=*/false),
      running_mean_(tensor::Shape({channels})),
      running_var_(tensor::Shape({channels})) {
  util::check(channels > 0, "batchnorm requires positive channel count");
  gamma_.value.fill(1.0f);
  running_var_.fill(1.0f);
}

std::size_t BatchNorm::spatial(const tensor::Shape& s) const {
  return rank4_ ? s.dim(2) * s.dim(3) : 1;
}

tensor::Tensor BatchNorm::forward(const tensor::Tensor& x) {
  if (rank4_) {
    util::check(x.rank() == 4 && x.dim(1) == channels_,
                "batchnorm2d expects [N, C, H, W] with C=" +
                    std::to_string(channels_));
  } else {
    util::check(x.rank() == 2 && x.dim(1) == channels_,
                "batchnorm1d expects [N, C] with C=" +
                    std::to_string(channels_));
  }
  const std::size_t batch = x.dim(0);
  const std::size_t sp = spatial(x.shape());
  const std::size_t per_channel = batch * sp;
  util::check(per_channel > 0, "batchnorm on empty batch");

  cached_shape_ = x.shape();
  tensor::Tensor y(x.shape());

  if (is_training()) {
    cached_mean_.assign(channels_, 0.0);
    cached_inv_std_.assign(channels_, 0.0);
    cached_xhat_ = tensor::Tensor(x.shape());
    backward_through_batch_stats_ = true;
    for (std::size_t c = 0; c < channels_; ++c) {
      double mean = 0.0;
      for (std::size_t n = 0; n < batch; ++n) {
        const float* src = x.raw() + (n * channels_ + c) * sp;
        for (std::size_t i = 0; i < sp; ++i) mean += src[i];
      }
      mean /= static_cast<double>(per_channel);
      double var = 0.0;
      for (std::size_t n = 0; n < batch; ++n) {
        const float* src = x.raw() + (n * channels_ + c) * sp;
        for (std::size_t i = 0; i < sp; ++i) {
          const double d = src[i] - mean;
          var += d * d;
        }
      }
      var /= static_cast<double>(per_channel);
      const double inv_std = 1.0 / std::sqrt(var + eps_);
      cached_mean_[c] = mean;
      cached_inv_std_[c] = inv_std;
      running_mean_[c] = static_cast<float>(
          (1.0 - momentum_) * running_mean_[c] + momentum_ * mean);
      running_var_[c] = static_cast<float>(
          (1.0 - momentum_) * running_var_[c] + momentum_ * var);
      const float g = gamma_.value[c], b = beta_.value[c];
      for (std::size_t n = 0; n < batch; ++n) {
        const float* src = x.raw() + (n * channels_ + c) * sp;
        float* xh = cached_xhat_.raw() + (n * channels_ + c) * sp;
        float* dst = y.raw() + (n * channels_ + c) * sp;
        for (std::size_t i = 0; i < sp; ++i) {
          const float xhat = static_cast<float>((src[i] - mean) * inv_std);
          xh[i] = xhat;
          dst[i] = g * xhat + b;
        }
      }
    }
  } else {
    // Eval mode: an affine map with constant statistics. Cache x̂ and the
    // inverse stds so backward works here too (SynFlow's data-free scoring
    // backpropagates through eval-mode batch-norm).
    cached_mean_.assign(channels_, 0.0);
    cached_inv_std_.assign(channels_, 0.0);
    cached_xhat_ = tensor::Tensor(x.shape());
    backward_through_batch_stats_ = false;
    for (std::size_t c = 0; c < channels_; ++c) {
      const double inv_std = 1.0 / std::sqrt(running_var_[c] + eps_);
      const double mean = running_mean_[c];
      cached_mean_[c] = mean;
      cached_inv_std_[c] = inv_std;
      const float g = gamma_.value[c], b = beta_.value[c];
      for (std::size_t n = 0; n < batch; ++n) {
        const float* src = x.raw() + (n * channels_ + c) * sp;
        float* xh = cached_xhat_.raw() + (n * channels_ + c) * sp;
        float* dst = y.raw() + (n * channels_ + c) * sp;
        for (std::size_t i = 0; i < sp; ++i) {
          const float xhat = static_cast<float>((src[i] - mean) * inv_std);
          xh[i] = xhat;
          dst[i] = g * xhat + b;
        }
      }
    }
  }
  return y;
}

tensor::Tensor BatchNorm::backward(const tensor::Tensor& grad_out) {
  util::check(grad_out.shape() == cached_shape_,
              "batchnorm backward gradient shape mismatch");
  const std::size_t batch = grad_out.dim(0);
  const std::size_t sp = spatial(cached_shape_);
  const double m = static_cast<double>(batch * sp);

  if (!backward_through_batch_stats_) {
    // Eval-mode statistics are constants: dx = γ·inv_std·dy.
    tensor::Tensor grad_x(cached_shape_);
    for (std::size_t c = 0; c < channels_; ++c) {
      double sum_dy = 0.0, sum_dy_xhat = 0.0;
      const float scale =
          static_cast<float>(gamma_.value[c] * cached_inv_std_[c]);
      for (std::size_t n = 0; n < batch; ++n) {
        const float* dy = grad_out.raw() + (n * channels_ + c) * sp;
        const float* xh = cached_xhat_.raw() + (n * channels_ + c) * sp;
        float* dx = grad_x.raw() + (n * channels_ + c) * sp;
        for (std::size_t i = 0; i < sp; ++i) {
          sum_dy += dy[i];
          sum_dy_xhat += static_cast<double>(dy[i]) * xh[i];
          dx[i] = scale * dy[i];
        }
      }
      gamma_.grad[c] += static_cast<float>(sum_dy_xhat);
      beta_.grad[c] += static_cast<float>(sum_dy);
    }
    return grad_x;
  }

  tensor::Tensor grad_x(cached_shape_);
  for (std::size_t c = 0; c < channels_; ++c) {
    // Gather per-channel reductions.
    double sum_dy = 0.0, sum_dy_xhat = 0.0;
    for (std::size_t n = 0; n < batch; ++n) {
      const float* dy = grad_out.raw() + (n * channels_ + c) * sp;
      const float* xh = cached_xhat_.raw() + (n * channels_ + c) * sp;
      for (std::size_t i = 0; i < sp; ++i) {
        sum_dy += dy[i];
        sum_dy_xhat += static_cast<double>(dy[i]) * xh[i];
      }
    }
    gamma_.grad[c] += static_cast<float>(sum_dy_xhat);
    beta_.grad[c] += static_cast<float>(sum_dy);

    // dx = (gamma · inv_std / m) · (m·dy − Σdy − x̂·Σ(dy·x̂))
    const double scale = gamma_.value[c] * cached_inv_std_[c] / m;
    for (std::size_t n = 0; n < batch; ++n) {
      const float* dy = grad_out.raw() + (n * channels_ + c) * sp;
      const float* xh = cached_xhat_.raw() + (n * channels_ + c) * sp;
      float* dx = grad_x.raw() + (n * channels_ + c) * sp;
      for (std::size_t i = 0; i < sp; ++i) {
        dx[i] = static_cast<float>(
            scale * (m * dy[i] - sum_dy - xh[i] * sum_dy_xhat));
      }
    }
  }
  return grad_x;
}

void BatchNorm::collect_parameters(std::vector<Parameter*>& out) {
  out.push_back(&gamma_);
  out.push_back(&beta_);
}

void BatchNorm::collect_state_buffers(std::vector<tensor::Tensor*>& out) {
  // Running statistics are what eval mode (and any compiled deployment)
  // actually uses — a checkpoint without them loses the trained model.
  out.push_back(&running_mean_);
  out.push_back(&running_var_);
}

std::string BatchNorm::name() const {
  return (rank4_ ? "batchnorm2d(" : "batchnorm1d(") +
         std::to_string(channels_) + ")";
}

}  // namespace dstee::nn
