// Fully-connected layer: y = x·Wᵀ + b.
#pragma once

#include <optional>

#include "nn/module.hpp"
#include "util/rng.hpp"

namespace dstee::nn {

/// Linear layer over rank-2 inputs [batch, in_features].
/// Weight shape: [out_features, in_features] (sparsifiable);
/// bias shape: [out_features] (dense).
class Linear : public Module {
 public:
  /// Kaiming-normal weight init, zero bias.
  Linear(std::size_t in_features, std::size_t out_features, util::Rng& rng,
         bool with_bias = true);

  tensor::Tensor forward(const tensor::Tensor& x) override;
  tensor::Tensor backward(const tensor::Tensor& grad_out) override;
  void collect_parameters(std::vector<Parameter*>& out) override;
  std::string name() const override;

  std::size_t in_features() const { return in_features_; }
  std::size_t out_features() const { return out_features_; }

  Parameter& weight() { return weight_; }
  const Parameter& weight() const { return weight_; }
  bool has_bias() const { return bias_.has_value(); }
  /// Requires with_bias = true at construction.
  Parameter& bias();

 private:
  std::size_t in_features_;
  std::size_t out_features_;
  Parameter weight_;
  std::optional<Parameter> bias_;
  tensor::Tensor cached_input_;
};

}  // namespace dstee::nn
