// Spatial pooling layers for NCHW tensors.
#pragma once

#include "nn/module.hpp"

namespace dstee::nn {

/// Max pooling with square window. Default 2×2/stride-2 (the VGG config).
class MaxPool2d : public Module {
 public:
  explicit MaxPool2d(std::size_t kernel = 2, std::size_t stride = 0);

  tensor::Tensor forward(const tensor::Tensor& x) override;
  tensor::Tensor backward(const tensor::Tensor& grad_out) override;
  std::string name() const override;

  std::size_t kernel() const { return kernel_; }
  std::size_t stride() const { return stride_; }

 private:
  std::size_t kernel_;
  std::size_t stride_;
  tensor::Shape cached_in_shape_;
  std::vector<std::size_t> cached_argmax_;  // flat input index per output
};

/// Average pooling with square window and stride == kernel.
class AvgPool2d : public Module {
 public:
  explicit AvgPool2d(std::size_t kernel = 2);

  tensor::Tensor forward(const tensor::Tensor& x) override;
  tensor::Tensor backward(const tensor::Tensor& grad_out) override;
  std::string name() const override;

  std::size_t kernel() const { return kernel_; }

 private:
  std::size_t kernel_;
  tensor::Shape cached_in_shape_;
};

/// Global average pooling: [N, C, H, W] → [N, C].
class GlobalAvgPool : public Module {
 public:
  tensor::Tensor forward(const tensor::Tensor& x) override;
  tensor::Tensor backward(const tensor::Tensor& grad_out) override;
  std::string name() const override { return "global_avg_pool"; }

 private:
  tensor::Shape cached_in_shape_;
};

}  // namespace dstee::nn
