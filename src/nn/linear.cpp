#include "nn/linear.hpp"

#include "tensor/init.hpp"
#include "tensor/matmul.hpp"
#include "tensor/ops.hpp"
#include "util/check.hpp"

namespace dstee::nn {

Linear::Linear(std::size_t in_features, std::size_t out_features,
               util::Rng& rng, bool with_bias)
    : in_features_(in_features),
      out_features_(out_features),
      weight_("linear.weight", tensor::Shape({out_features, in_features}),
              /*can_sparsify=*/true) {
  util::check(in_features > 0 && out_features > 0,
              "linear layer dimensions must be positive");
  tensor::fill_kaiming_normal(weight_.value, rng);
  if (with_bias) {
    bias_.emplace("linear.bias", tensor::Shape({out_features}),
                  /*can_sparsify=*/false);
  }
}

Parameter& Linear::bias() {
  util::check(bias_.has_value(), "linear layer was built without bias");
  return *bias_;
}

tensor::Tensor Linear::forward(const tensor::Tensor& x) {
  util::check(x.rank() == 2 && x.dim(1) == in_features_,
              "linear forward expects [batch, " +
                  std::to_string(in_features_) + "], got " +
                  x.shape().to_string());
  cached_input_ = x;
  tensor::Tensor y = tensor::matmul_nt(x, weight_.value);
  if (bias_) {
    const std::size_t batch = y.dim(0);
    for (std::size_t n = 0; n < batch; ++n) {
      float* row = y.raw() + n * out_features_;
      for (std::size_t j = 0; j < out_features_; ++j) {
        row[j] += bias_->value[j];
      }
    }
  }
  return y;
}

tensor::Tensor Linear::backward(const tensor::Tensor& grad_out) {
  util::check(grad_out.rank() == 2 && grad_out.dim(1) == out_features_ &&
                  grad_out.dim(0) == cached_input_.dim(0),
              "linear backward gradient shape mismatch");
  // grad_W[out,in] += grad_outᵀ[out,batch] · x[batch,in]
  tensor::Tensor grad_w = tensor::matmul_tn(grad_out, cached_input_);
  tensor::add_inplace(weight_.grad, grad_w);
  if (bias_) {
    const std::size_t batch = grad_out.dim(0);
    for (std::size_t n = 0; n < batch; ++n) {
      const float* row = grad_out.raw() + n * out_features_;
      for (std::size_t j = 0; j < out_features_; ++j) {
        bias_->grad[j] += row[j];
      }
    }
  }
  // grad_x[batch,in] = grad_out[batch,out] · W[out,in]
  return tensor::matmul(grad_out, weight_.value);
}

void Linear::collect_parameters(std::vector<Parameter*>& out) {
  out.push_back(&weight_);
  if (bias_) out.push_back(&*bias_);
}

std::string Linear::name() const {
  return "linear(" + std::to_string(in_features_) + "->" +
         std::to_string(out_features_) + ")";
}

}  // namespace dstee::nn
