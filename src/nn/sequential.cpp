#include "nn/sequential.hpp"

#include "util/check.hpp"

namespace dstee::nn {

void Sequential::append(std::unique_ptr<Module> module) {
  util::check(module != nullptr, "cannot append a null module");
  children_.push_back(std::move(module));
}

tensor::Tensor Sequential::forward(const tensor::Tensor& x) {
  tensor::Tensor h = x;
  for (auto& child : children_) h = child->forward(h);
  return h;
}

tensor::Tensor Sequential::backward(const tensor::Tensor& grad_out) {
  tensor::Tensor g = grad_out;
  for (auto it = children_.rbegin(); it != children_.rend(); ++it) {
    g = (*it)->backward(g);
  }
  return g;
}

void Sequential::collect_parameters(std::vector<Parameter*>& out) {
  for (auto& child : children_) child->collect_parameters(out);
}

void Sequential::collect_state_buffers(std::vector<tensor::Tensor*>& out) {
  for (auto& child : children_) child->collect_state_buffers(out);
}

void Sequential::set_training(bool training) {
  Module::set_training(training);
  for (auto& child : children_) child->set_training(training);
}

std::string Sequential::name() const {
  return "sequential(" + std::to_string(children_.size()) + " modules)";
}

Module& Sequential::child(std::size_t i) {
  util::check(i < children_.size(), "sequential child index out of range");
  return *children_[i];
}

}  // namespace dstee::nn
