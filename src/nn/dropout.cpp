#include "nn/dropout.hpp"

#include "util/check.hpp"

namespace dstee::nn {

Dropout::Dropout(double p, util::Rng rng) : p_(p), rng_(rng) {
  util::check(p >= 0.0 && p < 1.0, "dropout probability must be in [0, 1)");
}

tensor::Tensor Dropout::forward(const tensor::Tensor& x) {
  if (!is_training() || p_ == 0.0) {
    cached_scale_ = tensor::Tensor();  // marks pass-through for backward
    return x;
  }
  const float keep_scale = static_cast<float>(1.0 / (1.0 - p_));
  cached_scale_ = tensor::Tensor(x.shape());
  tensor::Tensor y(x.shape());
  for (std::size_t i = 0; i < x.numel(); ++i) {
    const float s = rng_.bernoulli(p_) ? 0.0f : keep_scale;
    cached_scale_[i] = s;
    y[i] = x[i] * s;
  }
  return y;
}

tensor::Tensor Dropout::backward(const tensor::Tensor& grad_out) {
  if (cached_scale_.rank() == 0) return grad_out;  // was a pass-through
  util::check(grad_out.shape() == cached_scale_.shape(),
              "dropout backward shape mismatch");
  tensor::Tensor grad_x(grad_out.shape());
  for (std::size_t i = 0; i < grad_out.numel(); ++i) {
    grad_x[i] = grad_out[i] * cached_scale_[i];
  }
  return grad_x;
}

std::string Dropout::name() const {
  return "dropout(p=" + std::to_string(p_) + ")";
}

}  // namespace dstee::nn
