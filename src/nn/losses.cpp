#include "nn/losses.hpp"

#include <cmath>

#include "util/check.hpp"

namespace dstee::nn {

double SoftmaxCrossEntropy::forward(const tensor::Tensor& logits,
                                    std::span<const std::size_t> labels) {
  util::check(logits.rank() == 2, "cross-entropy expects [batch, classes]");
  const std::size_t batch = logits.dim(0), classes = logits.dim(1);
  util::check(labels.size() == batch,
              "label count must equal the batch size");

  probs_ = tensor::Tensor(logits.shape());
  labels_.assign(labels.begin(), labels.end());
  double loss = 0.0;
  for (std::size_t n = 0; n < batch; ++n) {
    util::check(labels[n] < classes, "label out of class range");
    const float* row = logits.raw() + n * classes;
    float* prow = probs_.raw() + n * classes;
    float maxv = row[0];
    for (std::size_t c = 1; c < classes; ++c) maxv = std::max(maxv, row[c]);
    double denom = 0.0;
    for (std::size_t c = 0; c < classes; ++c) {
      const double e = std::exp(static_cast<double>(row[c] - maxv));
      prow[c] = static_cast<float>(e);
      denom += e;
    }
    const double inv = 1.0 / denom;
    for (std::size_t c = 0; c < classes; ++c) {
      prow[c] = static_cast<float>(prow[c] * inv);
    }
    // -log p[label]; clamp avoids -inf on underflow
    const double p = std::max(static_cast<double>(prow[labels[n]]), 1e-12);
    loss -= std::log(p);
  }
  return loss / static_cast<double>(batch);
}

tensor::Tensor SoftmaxCrossEntropy::backward() const {
  util::check(probs_.rank() == 2, "backward called before forward");
  const std::size_t batch = probs_.dim(0), classes = probs_.dim(1);
  tensor::Tensor grad = probs_;
  const float inv_batch = 1.0f / static_cast<float>(batch);
  for (std::size_t n = 0; n < batch; ++n) {
    grad[n * classes + labels_[n]] -= 1.0f;
  }
  for (std::size_t i = 0; i < grad.numel(); ++i) grad[i] *= inv_batch;
  return grad;
}

double BCEWithLogits::forward(const tensor::Tensor& logits,
                              std::span<const float> targets) {
  util::check(logits.rank() == 1 ||
                  (logits.rank() == 2 && logits.dim(1) == 1),
              "bce-with-logits expects [batch] or [batch, 1] logits");
  const std::size_t batch = logits.dim(0);
  util::check(targets.size() == batch,
              "target count must equal the batch size");
  logits_shape_ = logits.shape();
  probs_ = tensor::Tensor(tensor::Shape({batch}));
  targets_.assign(targets.begin(), targets.end());

  double loss = 0.0;
  for (std::size_t n = 0; n < batch; ++n) {
    const double z = logits[n];
    const double t = targets[n];
    util::check(t == 0.0f || t == 1.0f, "bce targets must be 0 or 1");
    // log(1 + e^{-|z|}) formulation avoids overflow for large |z|.
    const double log1p_term = std::log1p(std::exp(-std::fabs(z)));
    loss += std::max(z, 0.0) - z * t + log1p_term;
    probs_[n] = static_cast<float>(1.0 / (1.0 + std::exp(-z)));
  }
  return loss / static_cast<double>(batch);
}

tensor::Tensor BCEWithLogits::backward() const {
  util::check(probs_.numel() == targets_.size(),
              "backward called before forward");
  const std::size_t batch = probs_.numel();
  tensor::Tensor grad(logits_shape_);
  const float inv_batch = 1.0f / static_cast<float>(batch);
  for (std::size_t n = 0; n < batch; ++n) {
    grad[n] = (probs_[n] - targets_[n]) * inv_batch;
  }
  return grad;
}

double MeanSquaredError::forward(const tensor::Tensor& prediction,
                                 const tensor::Tensor& target) {
  util::check(prediction.shape() == target.shape(),
              "mse requires matching shapes");
  diff_ = tensor::Tensor(prediction.shape());
  double acc = 0.0;
  for (std::size_t i = 0; i < prediction.numel(); ++i) {
    const double d = static_cast<double>(prediction[i]) - target[i];
    diff_[i] = static_cast<float>(d);
    acc += d * d;
  }
  return acc / static_cast<double>(prediction.numel());
}

tensor::Tensor MeanSquaredError::backward() const {
  util::check(diff_.numel() > 0, "backward called before forward");
  tensor::Tensor grad = diff_;
  const float scale = 2.0f / static_cast<float>(diff_.numel());
  for (std::size_t i = 0; i < grad.numel(); ++i) grad[i] *= scale;
  return grad;
}

}  // namespace dstee::nn
