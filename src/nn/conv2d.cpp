#include "nn/conv2d.hpp"

#include "kernels/conv.hpp"
#include "tensor/init.hpp"
#include "tensor/matmul.hpp"
#include "tensor/ops.hpp"
#include "util/check.hpp"

namespace dstee::nn {

Conv2d::Conv2d(std::size_t in_channels, std::size_t out_channels,
               std::size_t kernel, std::size_t stride, std::size_t padding,
               util::Rng& rng, bool with_bias)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      stride_(stride),
      padding_(padding),
      weight_("conv2d.weight",
              tensor::Shape({out_channels, in_channels, kernel, kernel}),
              /*can_sparsify=*/true) {
  util::check(in_channels > 0 && out_channels > 0 && kernel > 0 && stride > 0,
              "conv2d dimensions must be positive");
  tensor::fill_kaiming_normal(weight_.value, rng);
  if (with_bias) {
    bias_.emplace("conv2d.bias", tensor::Shape({out_channels}),
                  /*can_sparsify=*/false);
  }
}

tensor::ConvGeometry Conv2d::geometry(std::size_t in_h,
                                      std::size_t in_w) const {
  tensor::ConvGeometry g;
  g.in_channels = in_channels_;
  g.in_h = in_h;
  g.in_w = in_w;
  g.kernel_h = kernel_;
  g.kernel_w = kernel_;
  g.stride = stride_;
  g.padding = padding_;
  return g;
}

tensor::Tensor Conv2d::forward(const tensor::Tensor& x) {
  util::check(x.rank() == 4 && x.dim(1) == in_channels_,
              "conv2d forward expects [N, " + std::to_string(in_channels_) +
                  ", H, W], got " + x.shape().to_string());
  cached_input_ = x;
  // Weight viewed as [Cout, Cin·K·K] for the lowered matmul. Training
  // forwards share the process runtime pool; the chunk count comes from
  // runtime::intra_op_default() (serial unless configured).
  const tensor::Tensor w2d = weight_.value.reshaped(
      tensor::Shape({out_channels_, in_channels_ * kernel_ * kernel_}));
  return kernels::conv2d_forward(
      x, w2d, kernel_, stride_, padding_,
      bias_ ? bias_->value.raw() : nullptr,
      runtime::training_intra());
}

tensor::Tensor Conv2d::backward(const tensor::Tensor& grad_out) {
  const auto g = geometry(cached_input_.dim(2), cached_input_.dim(3));
  const std::size_t oh = g.out_h(), ow = g.out_w();
  const std::size_t batch = cached_input_.dim(0);
  util::check(grad_out.rank() == 4 && grad_out.dim(0) == batch &&
                  grad_out.dim(1) == out_channels_ && grad_out.dim(2) == oh &&
                  grad_out.dim(3) == ow,
              "conv2d backward gradient shape mismatch");

  const tensor::Tensor w2d =
      weight_.value.reshaped(tensor::Shape({out_channels_, g.patch_size()}));
  tensor::Tensor grad_w2d({out_channels_, g.patch_size()});
  tensor::Tensor grad_x(cached_input_.shape());

  tensor::Tensor cols({g.patch_size(), oh * ow});
  tensor::Tensor grad_out2d({out_channels_, oh * ow});
  const std::size_t image_elems =
      in_channels_ * cached_input_.dim(2) * cached_input_.dim(3);
  const std::size_t out_image_elems = out_channels_ * oh * ow;

  for (std::size_t n = 0; n < batch; ++n) {
    const float* go = grad_out.raw() + n * out_image_elems;
    for (std::size_t i = 0; i < out_image_elems; ++i) grad_out2d[i] = go[i];

    // grad_W2d += grad_out2d[Cout, ohw] · colsᵀ[ohw, patch]
    tensor::im2col(cached_input_.raw() + n * image_elems, g, cols);
    tensor::Tensor gw = tensor::matmul_nt(grad_out2d, cols);
    tensor::add_inplace(grad_w2d, gw);

    // grad_cols = w2dᵀ[patch, Cout] · grad_out2d[Cout, ohw]
    tensor::Tensor grad_cols = tensor::matmul_tn(w2d, grad_out2d);
    tensor::col2im(grad_cols, g, grad_x.raw() + n * image_elems);

    if (bias_) {
      for (std::size_t c = 0; c < out_channels_; ++c) {
        const float* plane = go + c * oh * ow;
        float acc = 0.0f;
        for (std::size_t i = 0; i < oh * ow; ++i) acc += plane[i];
        bias_->grad[c] += acc;
      }
    }
  }
  tensor::add_inplace(
      weight_.grad, grad_w2d.reshaped(weight_.value.shape()));
  return grad_x;
}

Parameter& Conv2d::bias() {
  util::check(bias_.has_value(), "conv2d built without bias");
  return *bias_;
}

void Conv2d::collect_parameters(std::vector<Parameter*>& out) {
  out.push_back(&weight_);
  if (bias_) out.push_back(&*bias_);
}

std::string Conv2d::name() const {
  return "conv2d(" + std::to_string(in_channels_) + "->" +
         std::to_string(out_channels_) + ", k" + std::to_string(kernel_) +
         ", s" + std::to_string(stride_) + ", p" + std::to_string(padding_) +
         ")";
}

}  // namespace dstee::nn
