// Batch normalization (2-d feature maps and 1-d feature vectors).
#pragma once

#include "nn/module.hpp"

namespace dstee::nn {

/// BatchNorm over [N, C, H, W] (per-channel statistics) or [N, C]
/// (per-feature). Training mode normalizes with batch statistics and
/// maintains running estimates; eval mode uses the running estimates.
/// Affine parameters gamma/beta are trainable but never sparsified.
class BatchNorm : public Module {
 public:
  /// `channels` = C; `momentum` is the running-stat update rate;
  /// `rank4` selects [N,C,H,W] (true) vs [N,C] (false) input layout.
  BatchNorm(std::size_t channels, bool rank4, double momentum = 0.1,
            double eps = 1e-5);

  tensor::Tensor forward(const tensor::Tensor& x) override;
  tensor::Tensor backward(const tensor::Tensor& grad_out) override;
  void collect_parameters(std::vector<Parameter*>& out) override;
  void collect_state_buffers(std::vector<tensor::Tensor*>& out) override;
  std::string name() const override;

  std::size_t channels() const { return channels_; }
  const tensor::Tensor& running_mean() const { return running_mean_; }
  const tensor::Tensor& running_var() const { return running_var_; }

  /// Read-only affine/epsilon access for eval-mode compilation (the serve
  /// compiler folds eval BN into a per-channel scale/shift).
  const Parameter& gamma() const { return gamma_; }
  const Parameter& beta() const { return beta_; }
  double eps() const { return eps_; }
  bool is_rank4() const { return rank4_; }

 private:
  std::size_t channels_;
  bool rank4_;
  double momentum_;
  double eps_;
  Parameter gamma_;
  Parameter beta_;
  tensor::Tensor running_mean_;
  tensor::Tensor running_var_;

  // forward caches (training AND eval mode; eval backward treats the
  // statistics as constants)
  tensor::Tensor cached_xhat_;
  std::vector<double> cached_mean_;
  std::vector<double> cached_inv_std_;
  tensor::Shape cached_shape_;
  bool backward_through_batch_stats_ = true;

  std::size_t spatial(const tensor::Shape& s) const;
};

/// Convenience aliases matching torch naming.
class BatchNorm2d : public BatchNorm {
 public:
  explicit BatchNorm2d(std::size_t channels, double momentum = 0.1,
                       double eps = 1e-5)
      : BatchNorm(channels, /*rank4=*/true, momentum, eps) {}
};

class BatchNorm1d : public BatchNorm {
 public:
  explicit BatchNorm1d(std::size_t channels, double momentum = 0.1,
                       double eps = 1e-5)
      : BatchNorm(channels, /*rank4=*/false, momentum, eps) {}
};

}  // namespace dstee::nn
