// Module: the layer interface for the manual reverse-mode framework.
//
// Each module owns its parameters and caches whatever it needs from
// forward() to implement backward(). Composition (Sequential, residual
// blocks) follows the same interface, so models are plain module trees.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/parameter.hpp"
#include "tensor/tensor.hpp"

namespace dstee::nn {

/// Base class for all layers and containers.
///
/// Contract:
///  - forward(x) caches activations needed by backward;
///  - backward(grad_out) ACCUMULATES into each parameter's `grad` and
///    returns the gradient w.r.t. the forward input;
///  - backward must be called after forward with a matching batch;
///  - parameter gradients are DENSE: a masked (zero) weight still receives
///    its true gradient — the optimizer applies masks. This is what lets
///    RigL/DST-EE score inactive weights at topology updates.
class Module {
 public:
  Module() = default;
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;
  virtual ~Module() = default;

  /// Computes the layer output for input `x`.
  virtual tensor::Tensor forward(const tensor::Tensor& x) = 0;

  /// Propagates `grad_out` (gradient w.r.t. the last forward output) and
  /// returns the gradient w.r.t. the last forward input.
  virtual tensor::Tensor backward(const tensor::Tensor& grad_out) = 0;

  /// Appends raw pointers to this module's parameters (and its children's)
  /// to `out`. Pointers remain valid for the module's lifetime.
  virtual void collect_parameters(std::vector<Parameter*>& out);

  /// Appends non-trainable state tensors that checkpoints must persist
  /// (batch-norm running statistics today). Containers recurse like
  /// collect_parameters; stateless layers keep the no-op default.
  virtual void collect_state_buffers(std::vector<tensor::Tensor*>& out);

  /// Switches between training and inference behaviour (batch-norm,
  /// dropout). Containers forward the flag to children.
  virtual void set_training(bool training) { training_ = training; }
  bool is_training() const { return training_; }

  /// Layer name for diagnostics, e.g. "conv2d(64->128, k3)".
  virtual std::string name() const = 0;

  /// Convenience: all parameters of this subtree.
  std::vector<Parameter*> parameters();

  /// Convenience: all persistent state buffers of this subtree.
  std::vector<tensor::Tensor*> state_buffers();

  /// Zeroes every parameter gradient in this subtree.
  void zero_grad();

  /// Total trainable element count of this subtree.
  std::size_t num_parameters();

 private:
  bool training_ = true;
};

}  // namespace dstee::nn
