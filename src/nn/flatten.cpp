#include "nn/flatten.hpp"

#include "util/check.hpp"

namespace dstee::nn {

tensor::Tensor Flatten::forward(const tensor::Tensor& x) {
  util::check(x.rank() >= 2, "flatten expects at least rank-2 input");
  cached_in_shape_ = x.shape();
  const std::size_t batch = x.dim(0);
  const std::size_t features = x.numel() / batch;
  return x.reshaped(tensor::Shape({batch, features}));
}

tensor::Tensor Flatten::backward(const tensor::Tensor& grad_out) {
  util::check(grad_out.numel() == cached_in_shape_.numel(),
              "flatten backward gradient size mismatch");
  return grad_out.reshaped(cached_in_shape_);
}

}  // namespace dstee::nn
