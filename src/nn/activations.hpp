// Elementwise activation layers.
#pragma once

#include "nn/module.hpp"

namespace dstee::nn {

/// Rectified linear unit.
class ReLU : public Module {
 public:
  tensor::Tensor forward(const tensor::Tensor& x) override;
  tensor::Tensor backward(const tensor::Tensor& grad_out) override;
  std::string name() const override { return "relu"; }

 private:
  tensor::Tensor cached_mask_;  // 1 where x > 0
};

/// Logistic sigmoid (used by the GNN link-prediction head).
class Sigmoid : public Module {
 public:
  tensor::Tensor forward(const tensor::Tensor& x) override;
  tensor::Tensor backward(const tensor::Tensor& grad_out) override;
  std::string name() const override { return "sigmoid"; }

 private:
  tensor::Tensor cached_output_;
};

/// Hyperbolic tangent.
class Tanh : public Module {
 public:
  tensor::Tensor forward(const tensor::Tensor& x) override;
  tensor::Tensor backward(const tensor::Tensor& grad_out) override;
  std::string name() const override { return "tanh"; }

 private:
  tensor::Tensor cached_output_;
};

/// LeakyReLU with fixed negative slope.
class LeakyReLU : public Module {
 public:
  explicit LeakyReLU(float negative_slope = 0.01f)
      : slope_(negative_slope) {}
  tensor::Tensor forward(const tensor::Tensor& x) override;
  tensor::Tensor backward(const tensor::Tensor& grad_out) override;
  std::string name() const override { return "leaky_relu"; }

  float slope() const { return slope_; }

 private:
  float slope_;
  tensor::Tensor cached_input_;
};

}  // namespace dstee::nn
