#include "nn/activations.hpp"

#include "kernels/activations.hpp"
#include "util/check.hpp"

namespace dstee::nn {

tensor::Tensor ReLU::forward(const tensor::Tensor& x) {
  return kernels::relu(x, &cached_mask_,
                       runtime::training_intra());
}

tensor::Tensor ReLU::backward(const tensor::Tensor& grad_out) {
  util::check(grad_out.shape() == cached_mask_.shape(),
              "relu backward shape mismatch");
  tensor::Tensor grad_x(grad_out.shape());
  for (std::size_t i = 0; i < grad_out.numel(); ++i) {
    grad_x[i] = grad_out[i] * cached_mask_[i];
  }
  return grad_x;
}

tensor::Tensor Sigmoid::forward(const tensor::Tensor& x) {
  tensor::Tensor y = kernels::sigmoid(
      x, runtime::training_intra());
  cached_output_ = y;
  return y;
}

tensor::Tensor Sigmoid::backward(const tensor::Tensor& grad_out) {
  util::check(grad_out.shape() == cached_output_.shape(),
              "sigmoid backward shape mismatch");
  tensor::Tensor grad_x(grad_out.shape());
  for (std::size_t i = 0; i < grad_out.numel(); ++i) {
    const float s = cached_output_[i];
    grad_x[i] = grad_out[i] * s * (1.0f - s);
  }
  return grad_x;
}

tensor::Tensor Tanh::forward(const tensor::Tensor& x) {
  tensor::Tensor y = kernels::tanh(
      x, runtime::training_intra());
  cached_output_ = y;
  return y;
}

tensor::Tensor Tanh::backward(const tensor::Tensor& grad_out) {
  util::check(grad_out.shape() == cached_output_.shape(),
              "tanh backward shape mismatch");
  tensor::Tensor grad_x(grad_out.shape());
  for (std::size_t i = 0; i < grad_out.numel(); ++i) {
    const float t = cached_output_[i];
    grad_x[i] = grad_out[i] * (1.0f - t * t);
  }
  return grad_x;
}

tensor::Tensor LeakyReLU::forward(const tensor::Tensor& x) {
  cached_input_ = x;
  return kernels::leaky_relu(
      x, slope_, runtime::training_intra());
}

tensor::Tensor LeakyReLU::backward(const tensor::Tensor& grad_out) {
  util::check(grad_out.shape() == cached_input_.shape(),
              "leaky_relu backward shape mismatch");
  tensor::Tensor grad_x(grad_out.shape());
  for (std::size_t i = 0; i < grad_out.numel(); ++i) {
    grad_x[i] = grad_out[i] * (cached_input_[i] > 0.0f ? 1.0f : slope_);
  }
  return grad_x;
}

}  // namespace dstee::nn
