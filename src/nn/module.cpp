#include "nn/module.hpp"

namespace dstee::nn {

void Module::collect_parameters(std::vector<Parameter*>& out) {
  (void)out;  // leaf modules without parameters add nothing
}

void Module::collect_state_buffers(std::vector<tensor::Tensor*>& out) {
  (void)out;  // most layers carry no persistent non-parameter state
}

std::vector<Parameter*> Module::parameters() {
  std::vector<Parameter*> out;
  collect_parameters(out);
  return out;
}

std::vector<tensor::Tensor*> Module::state_buffers() {
  std::vector<tensor::Tensor*> out;
  collect_state_buffers(out);
  return out;
}

void Module::zero_grad() {
  for (Parameter* p : parameters()) p->zero_grad();
}

std::size_t Module::num_parameters() {
  std::size_t n = 0;
  for (Parameter* p : parameters()) n += p->value.numel();
  return n;
}

}  // namespace dstee::nn
