// Inverted dropout.
#pragma once

#include "nn/module.hpp"
#include "util/rng.hpp"

namespace dstee::nn {

/// Inverted dropout: active only in training mode; outputs are scaled by
/// 1/(1-p) so inference needs no correction. Owns a deterministic RNG
/// stream so runs stay reproducible.
class Dropout : public Module {
 public:
  Dropout(double p, util::Rng rng);

  tensor::Tensor forward(const tensor::Tensor& x) override;
  tensor::Tensor backward(const tensor::Tensor& grad_out) override;
  std::string name() const override;

  double drop_probability() const { return p_; }

 private:
  double p_;
  util::Rng rng_;
  tensor::Tensor cached_scale_;  // 0 or 1/(1-p) per element
};

}  // namespace dstee::nn
