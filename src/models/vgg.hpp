// VGG family (VGG-11/13/16/19) in the CIFAR configuration the paper uses:
// 3×3 convs + batch-norm + ReLU, max-pool stage breaks, global average
// pool, single linear classifier.
//
// `width_multiplier` scales channel counts so the same topology runs at
// laptop scale; 1.0 recovers the full architecture. Pools that would
// reduce the spatial size below 1×1 are skipped, letting the same config
// accept small synthetic resolutions.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "nn/sequential.hpp"
#include "sparse/flops.hpp"
#include "util/rng.hpp"

namespace dstee::models {

/// Architecture hyperparameters.
struct VggConfig {
  int depth = 19;                 ///< 11, 13, 16 or 19
  std::size_t in_channels = 3;
  std::size_t image_size = 32;    ///< square input resolution
  std::size_t num_classes = 100;
  double width_multiplier = 1.0;  ///< scales every conv stage
  double classifier_dropout = 0.0;
};

/// Builds the VGG module tree. The returned Sequential owns all layers.
class Vgg : public nn::Sequential {
 public:
  Vgg(const VggConfig& config, util::Rng& rng);

  const VggConfig& config() const { return config_; }

  /// Number of conv layers in this configuration.
  std::size_t num_conv_layers() const { return num_convs_; }

  /// Analytic FLOPs profile matching this instance's geometry.
  sparse::FlopsModel flops_model() const;

 private:
  VggConfig config_;
  std::size_t num_convs_ = 0;
  // (in_ch, out_ch, input resolution) per conv, for the FLOPs model.
  struct ConvRecord {
    std::size_t in_ch, out_ch, res;
  };
  std::vector<ConvRecord> conv_records_;
  std::size_t final_features_ = 0;
};

/// Per-depth stage plan: channel counts with 0 denoting a max-pool.
std::vector<std::size_t> vgg_plan(int depth);

}  // namespace dstee::models
