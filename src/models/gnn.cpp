#include "models/gnn.hpp"

#include "tensor/init.hpp"
#include "tensor/matmul.hpp"
#include "tensor/ops.hpp"
#include "util/check.hpp"

namespace dstee::models {

GcnLayer::GcnLayer(const graph::Graph& g, std::size_t in_features,
                   std::size_t out_features, util::Rng& rng)
    : graph_(&g),
      in_features_(in_features),
      out_features_(out_features),
      weight_("gcn.weight", tensor::Shape({out_features, in_features}),
              /*can_sparsify=*/true) {
  util::check(in_features > 0 && out_features > 0,
              "gcn layer dimensions must be positive");
  tensor::fill_xavier_uniform(weight_.value, rng);
}

tensor::Tensor GcnLayer::forward(const tensor::Tensor& x) {
  util::check(x.rank() == 2 && x.dim(0) == graph_->num_nodes() &&
                  x.dim(1) == in_features_,
              "gcn forward expects [num_nodes, in_features]");
  cached_input_ = x;
  const tensor::Tensor xw = tensor::matmul_nt(x, weight_.value);
  return graph_->propagate(xw);
}

tensor::Tensor GcnLayer::backward(const tensor::Tensor& grad_out) {
  util::check(grad_out.rank() == 2 && grad_out.dim(0) == graph_->num_nodes() &&
                  grad_out.dim(1) == out_features_,
              "gcn backward gradient shape mismatch");
  // Y = Â(XWᵀ); Â symmetric ⇒ d(XWᵀ) = Â·grad_out.
  const tensor::Tensor grad_xw = graph_->propagate(grad_out);
  tensor::Tensor grad_w = tensor::matmul_tn(grad_xw, cached_input_);
  tensor::add_inplace(weight_.grad, grad_w);
  return tensor::matmul(grad_xw, weight_.value);
}

void GcnLayer::collect_parameters(std::vector<nn::Parameter*>& out) {
  out.push_back(&weight_);
}

std::string GcnLayer::name() const {
  return "gcn(" + std::to_string(in_features_) + "->" +
         std::to_string(out_features_) + ")";
}

GnnLinkPredictor::GnnLinkPredictor(const graph::Graph& g,
                                   const GnnConfig& config, util::Rng& rng)
    : config_(config),
      layer1_(g, config.in_features, config.hidden, rng),
      layer2_(g, config.hidden, config.embedding, rng),
      decoder_bias_("gnn.decoder_bias", tensor::Shape({1}),
                    /*can_sparsify=*/false) {}

tensor::Tensor GnnLinkPredictor::forward(const tensor::Tensor& features) {
  tensor::Tensor h = layer1_.forward(features);
  h = relu_.forward(h);
  cached_embeddings_ = layer2_.forward(h);
  return cached_embeddings_;
}

tensor::Tensor GnnLinkPredictor::backward(const tensor::Tensor& grad_out) {
  tensor::Tensor g = layer2_.backward(grad_out);
  g = relu_.backward(g);
  return layer1_.backward(g);
}

tensor::Tensor GnnLinkPredictor::score_pairs(
    const std::vector<graph::LabeledPair>& pairs) const {
  util::check(cached_embeddings_.rank() == 2,
              "score_pairs requires forward() first");
  const std::size_t d = cached_embeddings_.dim(1);
  tensor::Tensor logits({pairs.size()});
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    const float* zu = cached_embeddings_.raw() + pairs[i].u * d;
    const float* zv = cached_embeddings_.raw() + pairs[i].v * d;
    float acc = decoder_bias_.value[0];
    for (std::size_t j = 0; j < d; ++j) acc += zu[j] * zv[j];
    logits[i] = acc;
  }
  return logits;
}

tensor::Tensor GnnLinkPredictor::pair_grad_to_embedding_grad(
    const tensor::Tensor& grad_logits,
    const std::vector<graph::LabeledPair>& pairs) {
  util::check(grad_logits.numel() == pairs.size(),
              "one logit gradient per pair required");
  const std::size_t d = cached_embeddings_.dim(1);
  tensor::Tensor grad_z(cached_embeddings_.shape());
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    const float g = grad_logits[i];
    decoder_bias_.grad[0] += g;
    const float* zu = cached_embeddings_.raw() + pairs[i].u * d;
    const float* zv = cached_embeddings_.raw() + pairs[i].v * d;
    float* gu = grad_z.raw() + pairs[i].u * d;
    float* gv = grad_z.raw() + pairs[i].v * d;
    for (std::size_t j = 0; j < d; ++j) {
      gu[j] += g * zv[j];
      gv[j] += g * zu[j];
    }
  }
  return grad_z;
}

void GnnLinkPredictor::collect_parameters(std::vector<nn::Parameter*>& out) {
  layer1_.collect_parameters(out);
  layer2_.collect_parameters(out);
  out.push_back(&decoder_bias_);
}

void GnnLinkPredictor::collect_state_buffers(
    std::vector<tensor::Tensor*>& out) {
  layer1_.collect_state_buffers(out);
  layer2_.collect_state_buffers(out);
}

void GnnLinkPredictor::set_training(bool training) {
  Module::set_training(training);
  layer1_.set_training(training);
  relu_.set_training(training);
  layer2_.set_training(training);
}

}  // namespace dstee::models
