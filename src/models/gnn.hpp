// GNN link predictor (Tables III/IV): a two-layer GCN encoder whose two
// fully-connected weight matrices are the sparsification targets (the paper
// applies DST to "the two fully connected layers" with uniform sparsity),
// plus a dot-product edge decoder.
#pragma once

#include "graph/graph.hpp"
#include "graph/link_prediction.hpp"
#include "nn/activations.hpp"
#include "nn/linear.hpp"
#include "nn/module.hpp"
#include "util/rng.hpp"

namespace dstee::models {

/// One GCN layer: Y = Â · (X · Wᵀ). The weight is an ordinary Linear-style
/// sparsifiable parameter; Â is the graph's fixed normalized adjacency.
class GcnLayer : public nn::Module {
 public:
  GcnLayer(const graph::Graph& g, std::size_t in_features,
           std::size_t out_features, util::Rng& rng);

  tensor::Tensor forward(const tensor::Tensor& x) override;
  tensor::Tensor backward(const tensor::Tensor& grad_out) override;
  void collect_parameters(std::vector<nn::Parameter*>& out) override;
  std::string name() const override;

  nn::Parameter& weight() { return weight_; }

 private:
  const graph::Graph* graph_;
  std::size_t in_features_;
  std::size_t out_features_;
  nn::Parameter weight_;
  tensor::Tensor cached_input_;
};

struct GnnConfig {
  std::size_t in_features = 32;
  std::size_t hidden = 64;
  std::size_t embedding = 32;
};

/// Encoder (GCN → ReLU → GCN) + dot-product decoder with a learnable
/// scalar bias (the bias calibrates the 0.5 decision threshold; it is a
/// dense parameter, never sparsified). Not a Sequential: the decoder
/// consumes node-pair lists, not tensors.
class GnnLinkPredictor : public nn::Module {
 public:
  GnnLinkPredictor(const graph::Graph& g, const GnnConfig& config,
                   util::Rng& rng);

  /// Node embeddings Z = encoder(X), cached for pair scoring/backprop.
  tensor::Tensor forward(const tensor::Tensor& features) override;

  /// Backward from dL/dZ.
  tensor::Tensor backward(const tensor::Tensor& grad_out) override;

  /// Logit per pair: z_u · z_v + b (uses the cached embeddings).
  tensor::Tensor score_pairs(const std::vector<graph::LabeledPair>& pairs) const;

  /// Converts pair-logit gradients into dL/dZ for backward() and
  /// accumulates the decoder-bias gradient.
  tensor::Tensor pair_grad_to_embedding_grad(
      const tensor::Tensor& grad_logits,
      const std::vector<graph::LabeledPair>& pairs);

  void collect_parameters(std::vector<nn::Parameter*>& out) override;
  void collect_state_buffers(std::vector<tensor::Tensor*>& out) override;
  void set_training(bool training) override;
  std::string name() const override { return "gnn_link_predictor"; }

  const GnnConfig& config() const { return config_; }

 private:
  GnnConfig config_;
  GcnLayer layer1_;
  nn::ReLU relu_;
  GcnLayer layer2_;
  nn::Parameter decoder_bias_;
  tensor::Tensor cached_embeddings_;
};

}  // namespace dstee::models
