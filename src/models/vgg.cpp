#include "models/vgg.hpp"

#include <algorithm>
#include <cmath>

#include "nn/activations.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv2d.hpp"
#include "nn/dropout.hpp"
#include "nn/flatten.hpp"
#include "nn/linear.hpp"
#include "nn/pooling.hpp"
#include "util/check.hpp"

namespace dstee::models {

std::vector<std::size_t> vgg_plan(int depth) {
  // 0 = max-pool stage break (standard torchvision configs A/B/D/E).
  switch (depth) {
    case 11:
      return {64, 0, 128, 0, 256, 256, 0, 512, 512, 0, 512, 512, 0};
    case 13:
      return {64, 64, 0, 128, 128, 0, 256, 256, 0, 512, 512, 0, 512, 512, 0};
    case 16:
      return {64, 64, 0, 128, 128, 0, 256, 256, 256, 0,
              512, 512, 512, 0, 512, 512, 512, 0};
    case 19:
      return {64, 64, 0, 128, 128, 0, 256, 256, 256, 256, 0,
              512, 512, 512, 512, 0, 512, 512, 512, 512, 0};
    default:
      util::fail("unsupported VGG depth: " + std::to_string(depth));
  }
}

namespace {
std::size_t scaled(std::size_t channels, double multiplier) {
  return std::max<std::size_t>(
      4, static_cast<std::size_t>(std::llround(channels * multiplier)));
}
}  // namespace

Vgg::Vgg(const VggConfig& config, util::Rng& rng) : config_(config) {
  util::check(config.image_size >= 2, "vgg requires image size >= 2");
  util::check(config.num_classes >= 2, "vgg requires >= 2 classes");
  util::check(config.width_multiplier > 0.0,
              "width multiplier must be positive");

  std::size_t channels = config.in_channels;
  std::size_t res = config.image_size;
  util::Rng init_rng = rng.fork("vgg/init");
  for (const std::size_t entry : vgg_plan(config.depth)) {
    if (entry == 0) {
      if (res >= 2) {
        emplace<nn::MaxPool2d>(2, 2);
        res /= 2;
      }
      continue;
    }
    const std::size_t out_ch = scaled(entry, config.width_multiplier);
    emplace<nn::Conv2d>(channels, out_ch, 3, 1, 1, init_rng);
    emplace<nn::BatchNorm2d>(out_ch);
    emplace<nn::ReLU>();
    conv_records_.push_back({channels, out_ch, res});
    ++num_convs_;
    channels = out_ch;
  }
  emplace<nn::GlobalAvgPool>();
  final_features_ = channels;
  if (config.classifier_dropout > 0.0) {
    emplace<nn::Dropout>(config.classifier_dropout, rng.fork("vgg/dropout"));
  }
  emplace<nn::Linear>(channels, config.num_classes, init_rng);
}

sparse::FlopsModel Vgg::flops_model() const {
  sparse::FlopsModel fm;
  for (std::size_t i = 0; i < conv_records_.size(); ++i) {
    const auto& r = conv_records_[i];
    fm.add_conv("conv" + std::to_string(i), r.in_ch, r.out_ch, 3, 1, 1,
                r.res, r.res);
  }
  fm.add_linear("classifier", final_features_, config_.num_classes);
  return fm;
}

}  // namespace dstee::models
