// ResNet family with basic (18/34) and bottleneck (50) blocks, in the
// CIFAR-style stem configuration (3×3 stem, no initial max-pool) that the
// paper's CIFAR experiments use; the ImageNet bench raises the input
// resolution instead.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "nn/activations.hpp"
#include "nn/sequential.hpp"
#include "sparse/flops.hpp"
#include "util/rng.hpp"

namespace dstee::models {

/// Conv geometry record used to assemble the analytic FLOPs model.
struct ConvGeomRecord {
  std::size_t in_ch, out_ch, kernel, stride, padding, res;
};

/// Residual block with a bottleneck (1×1 → 3×3 → 1×1) or basic (3×3 → 3×3)
/// main path and an optional projection shortcut.
class ResidualBlock : public nn::Module {
 public:
  ResidualBlock(std::size_t in_ch, std::size_t mid_ch, std::size_t out_ch,
                std::size_t stride, bool bottleneck, util::Rng& rng,
                std::size_t input_res, std::vector<ConvGeomRecord>& records);

  tensor::Tensor forward(const tensor::Tensor& x) override;
  tensor::Tensor backward(const tensor::Tensor& grad_out) override;
  void collect_parameters(std::vector<nn::Parameter*>& out) override;
  void collect_state_buffers(std::vector<tensor::Tensor*>& out) override;
  void set_training(bool training) override;
  std::string name() const override;

  /// Branch access for eval-time compilation (serve::CompiledNet lowers a
  /// block into main/shortcut op chains joined by a fused add+ReLU node).
  nn::Sequential& main_path() { return main_; }
  /// nullptr when the block uses the identity shortcut.
  nn::Sequential* shortcut_path() {
    return shortcut_ ? &*shortcut_ : nullptr;
  }

 private:
  nn::Sequential main_;
  std::optional<nn::Sequential> shortcut_;
  tensor::Tensor cached_relu_mask_;
};

/// Architecture hyperparameters.
struct ResNetConfig {
  int depth = 50;                 ///< 18, 34 or 50
  std::size_t in_channels = 3;
  std::size_t image_size = 32;
  std::size_t num_classes = 10;
  double width_multiplier = 1.0;  ///< scales the 64/128/256/512 stage widths
};

/// Full ResNet classifier.
class ResNet : public nn::Sequential {
 public:
  ResNet(const ResNetConfig& config, util::Rng& rng);

  const ResNetConfig& config() const { return config_; }
  sparse::FlopsModel flops_model() const;

 private:
  ResNetConfig config_;
  std::vector<ConvGeomRecord> conv_records_;
  std::size_t final_features_ = 0;
};

}  // namespace dstee::models
