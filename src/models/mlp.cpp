#include "models/mlp.hpp"

#include "nn/activations.hpp"
#include "nn/batchnorm.hpp"
#include "nn/dropout.hpp"
#include "nn/linear.hpp"
#include "util/check.hpp"

namespace dstee::models {

Mlp::Mlp(const MlpConfig& config, util::Rng& rng) : config_(config) {
  util::check(config.in_features > 0 && config.out_features > 0,
              "mlp feature sizes must be positive");
  util::Rng init_rng = rng.fork("mlp/init");
  std::size_t in = config.in_features;
  for (std::size_t i = 0; i < config.hidden.size(); ++i) {
    const std::size_t out = config.hidden[i];
    emplace<nn::Linear>(in, out, init_rng);
    if (config.batch_norm) emplace<nn::BatchNorm1d>(out);
    emplace<nn::ReLU>();
    if (config.dropout > 0.0) {
      emplace<nn::Dropout>(config.dropout,
                           rng.fork("mlp/dropout/" + std::to_string(i)));
    }
    in = out;
  }
  emplace<nn::Linear>(in, config.out_features, init_rng);
}

sparse::FlopsModel Mlp::flops_model() const {
  sparse::FlopsModel fm;
  std::size_t in = config_.in_features;
  for (std::size_t i = 0; i < config_.hidden.size(); ++i) {
    fm.add_linear("fc" + std::to_string(i), in, config_.hidden[i]);
    in = config_.hidden[i];
  }
  fm.add_linear("fc_out", in, config_.out_features);
  return fm;
}

}  // namespace dstee::models
