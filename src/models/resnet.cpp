#include "models/resnet.hpp"

#include <algorithm>
#include <cmath>

#include "kernels/activations.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv2d.hpp"
#include "nn/flatten.hpp"
#include "nn/linear.hpp"
#include "nn/pooling.hpp"
#include "tensor/ops.hpp"
#include "util/check.hpp"

namespace dstee::models {

namespace {
std::size_t scaled(std::size_t channels, double multiplier) {
  return std::max<std::size_t>(
      4, static_cast<std::size_t>(std::llround(channels * multiplier)));
}
}  // namespace

ResidualBlock::ResidualBlock(std::size_t in_ch, std::size_t mid_ch,
                             std::size_t out_ch, std::size_t stride,
                             bool bottleneck, util::Rng& rng,
                             std::size_t input_res,
                             std::vector<ConvGeomRecord>& records) {
  const std::size_t out_res = (input_res + stride - 1) / stride;
  if (bottleneck) {
    main_.emplace<nn::Conv2d>(in_ch, mid_ch, 1, 1, 0, rng);
    records.push_back({in_ch, mid_ch, 1, 1, 0, input_res});
    main_.emplace<nn::BatchNorm2d>(mid_ch);
    main_.emplace<nn::ReLU>();
    main_.emplace<nn::Conv2d>(mid_ch, mid_ch, 3, stride, 1, rng);
    records.push_back({mid_ch, mid_ch, 3, stride, 1, input_res});
    main_.emplace<nn::BatchNorm2d>(mid_ch);
    main_.emplace<nn::ReLU>();
    main_.emplace<nn::Conv2d>(mid_ch, out_ch, 1, 1, 0, rng);
    records.push_back({mid_ch, out_ch, 1, 1, 0, out_res});
    main_.emplace<nn::BatchNorm2d>(out_ch);
  } else {
    main_.emplace<nn::Conv2d>(in_ch, mid_ch, 3, stride, 1, rng);
    records.push_back({in_ch, mid_ch, 3, stride, 1, input_res});
    main_.emplace<nn::BatchNorm2d>(mid_ch);
    main_.emplace<nn::ReLU>();
    main_.emplace<nn::Conv2d>(mid_ch, out_ch, 3, 1, 1, rng);
    records.push_back({mid_ch, out_ch, 3, 1, 1, out_res});
    main_.emplace<nn::BatchNorm2d>(out_ch);
  }
  if (stride != 1 || in_ch != out_ch) {
    shortcut_.emplace();
    shortcut_->emplace<nn::Conv2d>(in_ch, out_ch, 1, stride, 0, rng);
    records.push_back({in_ch, out_ch, 1, stride, 0, input_res});
    shortcut_->emplace<nn::BatchNorm2d>(out_ch);
  }
}

tensor::Tensor ResidualBlock::forward(const tensor::Tensor& x) {
  const tensor::Tensor a = main_.forward(x);
  return kernels::add_relu(a, shortcut_ ? shortcut_->forward(x) : x,
                           &cached_relu_mask_,
                           runtime::training_intra());
}

tensor::Tensor ResidualBlock::backward(const tensor::Tensor& grad_out) {
  util::check(grad_out.shape() == cached_relu_mask_.shape(),
              "residual backward shape mismatch");
  tensor::Tensor g(grad_out.shape());
  for (std::size_t i = 0; i < g.numel(); ++i) {
    g[i] = grad_out[i] * cached_relu_mask_[i];
  }
  tensor::Tensor gx = main_.backward(g);
  if (shortcut_) {
    tensor::add_inplace(gx, shortcut_->backward(g));
  } else {
    tensor::add_inplace(gx, g);
  }
  return gx;
}

void ResidualBlock::collect_parameters(std::vector<nn::Parameter*>& out) {
  main_.collect_parameters(out);
  if (shortcut_) shortcut_->collect_parameters(out);
}

void ResidualBlock::collect_state_buffers(std::vector<tensor::Tensor*>& out) {
  main_.collect_state_buffers(out);
  if (shortcut_) shortcut_->collect_state_buffers(out);
}

void ResidualBlock::set_training(bool training) {
  Module::set_training(training);
  main_.set_training(training);
  if (shortcut_) shortcut_->set_training(training);
}

std::string ResidualBlock::name() const { return "residual_block"; }

ResNet::ResNet(const ResNetConfig& config, util::Rng& rng) : config_(config) {
  util::check(config.num_classes >= 2, "resnet requires >= 2 classes");
  const bool bottleneck = config.depth >= 50;
  std::vector<std::size_t> blocks;
  switch (config.depth) {
    case 18: blocks = {2, 2, 2, 2}; break;
    case 34: blocks = {3, 4, 6, 3}; break;
    case 50: blocks = {3, 4, 6, 3}; break;
    default: util::fail("unsupported ResNet depth: " +
                        std::to_string(config.depth));
  }
  const std::size_t expansion = bottleneck ? 4 : 1;
  util::Rng init_rng = rng.fork("resnet/init");

  std::size_t res = config.image_size;
  const std::size_t stem = scaled(64, config.width_multiplier);
  emplace<nn::Conv2d>(config.in_channels, stem, 3, 1, 1, init_rng);
  conv_records_.push_back({config.in_channels, stem, 3, 1, 1, res});
  emplace<nn::BatchNorm2d>(stem);
  emplace<nn::ReLU>();

  std::size_t in_ch = stem;
  const std::size_t stage_widths[4] = {64, 128, 256, 512};
  for (std::size_t stage = 0; stage < 4; ++stage) {
    const std::size_t mid = scaled(stage_widths[stage], config.width_multiplier);
    const std::size_t out = mid * expansion;
    for (std::size_t b = 0; b < blocks[stage]; ++b) {
      // Never stride below 1×1 feature maps.
      std::size_t stride = (b == 0 && stage > 0) ? 2 : 1;
      if (res < 2) stride = 1;
      emplace<ResidualBlock>(in_ch, mid, out, stride, bottleneck, init_rng,
                             res, conv_records_);
      if (stride == 2) res = (res + 1) / 2;
      in_ch = out;
    }
  }
  emplace<nn::GlobalAvgPool>();
  final_features_ = in_ch;
  emplace<nn::Linear>(in_ch, config.num_classes, init_rng);
}

sparse::FlopsModel ResNet::flops_model() const {
  sparse::FlopsModel fm;
  for (std::size_t i = 0; i < conv_records_.size(); ++i) {
    const auto& r = conv_records_[i];
    fm.add_conv("conv" + std::to_string(i), r.in_ch, r.out_ch, r.kernel,
                r.stride, r.padding, r.res, r.res);
  }
  fm.add_linear("classifier", final_features_, config_.num_classes);
  return fm;
}

}  // namespace dstee::models
