// Multi-layer perceptron — used by unit tests, the quickstart example and
// the tabular ablations.
#pragma once

#include <vector>

#include "nn/sequential.hpp"
#include "sparse/flops.hpp"
#include "util/rng.hpp"

namespace dstee::models {

struct MlpConfig {
  std::size_t in_features = 32;
  std::vector<std::size_t> hidden = {128, 128};
  std::size_t out_features = 10;
  bool batch_norm = false;
  double dropout = 0.0;
};

/// Plain feed-forward ReLU network.
class Mlp : public nn::Sequential {
 public:
  Mlp(const MlpConfig& config, util::Rng& rng);

  const MlpConfig& config() const { return config_; }
  sparse::FlopsModel flops_model() const;

 private:
  MlpConfig config_;
};

}  // namespace dstee::models
