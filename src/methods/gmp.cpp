#include "methods/gmp.hpp"

#include <cmath>

#include "tensor/ops.hpp"
#include "tensor/topk.hpp"
#include "util/check.hpp"

namespace dstee::methods {

GradualMagnitudePruner::GradualMagnitudePruner(const GmpConfig& config)
    : config_(config) {
  util::check(config.final_sparsity > 0.0 && config.final_sparsity < 1.0,
              "final sparsity must be in (0, 1)");
  util::check(config.end_iteration > config.start_iteration,
              "pruning window must be non-empty");
  util::check(config.frequency > 0, "pruning frequency must be positive");
}

double GradualMagnitudePruner::sparsity_at(std::size_t t) const {
  if (t <= config_.start_iteration) return 0.0;
  if (t >= config_.end_iteration) return config_.final_sparsity;
  const double progress =
      static_cast<double>(t - config_.start_iteration) /
      static_cast<double>(config_.end_iteration - config_.start_iteration);
  const double ramp = 1.0 - std::pow(1.0 - progress, 3.0);
  return config_.final_sparsity * ramp;
}

bool GradualMagnitudePruner::maybe_prune(sparse::SparseModel& model,
                                         std::size_t t) {
  if (t < config_.start_iteration || t > config_.end_iteration) return false;
  if ((t - config_.start_iteration) % config_.frequency != 0) return false;

  const double sparsity = sparsity_at(t);
  if (sparsity <= 0.0) return false;

  std::vector<tensor::Shape> shapes;
  shapes.reserve(model.num_layers());
  for (std::size_t i = 0; i < model.num_layers(); ++i) {
    shapes.push_back(model.layer(i).param().value.shape());
  }
  const auto counts =
      sparse::layer_active_counts(shapes, sparsity, config_.distribution);

  for (std::size_t i = 0; i < model.num_layers(); ++i) {
    auto& layer = model.layer(i);
    const tensor::Tensor magnitudes = tensor::abs(layer.param().value);
    const auto keep = tensor::topk_indices(magnitudes, counts[i]);
    layer.mask() = sparse::Mask::from_indices(magnitudes.shape(), keep);
    layer.apply_mask_to_value();
  }
  model.accumulate_counters();
  return true;
}

}  // namespace dstee::methods
