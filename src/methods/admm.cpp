#include "methods/admm.hpp"

#include "tensor/ops.hpp"
#include "tensor/topk.hpp"
#include "util/check.hpp"

namespace dstee::methods {

AdmmPruner::AdmmPruner(sparse::SparseModel& model, const AdmmConfig& config)
    : config_(config) {
  util::check(config.rho > 0.0, "ADMM rho must be positive");
  util::check(config.sparsity > 0.0 && config.sparsity < 1.0,
              "ADMM sparsity must be in (0, 1)");
  util::check(config.projection_interval > 0,
              "projection interval must be positive");
  const std::size_t L = model.num_layers();
  std::vector<tensor::Tensor> weights;
  weights.reserve(L);
  for (std::size_t i = 0; i < L; ++i) {
    weights.push_back(model.layer(i).param().value);
    u_.emplace_back(model.layer(i).param().value.shape());
  }
  z_.resize(L);
  project(model, weights, z_);
}

std::vector<std::size_t> AdmmPruner::projection_counts(
    const sparse::SparseModel& model) const {
  std::vector<tensor::Shape> shapes;
  shapes.reserve(model.num_layers());
  for (std::size_t i = 0; i < model.num_layers(); ++i) {
    shapes.push_back(model.layer(i).param().value.shape());
  }
  return sparse::layer_active_counts(shapes, config_.sparsity,
                                     config_.distribution);
}

void AdmmPruner::project(const sparse::SparseModel& model,
                         const std::vector<tensor::Tensor>& source,
                         std::vector<tensor::Tensor>& dest) const {
  const auto counts = projection_counts(model);
  for (std::size_t i = 0; i < source.size(); ++i) {
    const tensor::Tensor magnitudes = tensor::abs(source[i]);
    const auto keep = tensor::topk_indices(magnitudes, counts[i]);
    tensor::Tensor projected(source[i].shape());
    for (const std::size_t j : keep) projected[j] = source[i][j];
    dest[i] = std::move(projected);
  }
}

void AdmmPruner::add_penalty_gradients(sparse::SparseModel& model) const {
  util::check(z_.size() == model.num_layers(),
              "ADMM state does not match the model");
  const float rho = static_cast<float>(config_.rho);
  for (std::size_t i = 0; i < model.num_layers(); ++i) {
    auto& p = model.layer(i).param();
    const tensor::Tensor& z = z_[i];
    const tensor::Tensor& u = u_[i];
    for (std::size_t j = 0; j < p.grad.numel(); ++j) {
      p.grad[j] += rho * (p.value[j] - z[j] + u[j]);
    }
  }
}

bool AdmmPruner::maybe_update_duals(sparse::SparseModel& model,
                                    std::size_t t) {
  if (t % config_.projection_interval != 0) return false;
  const std::size_t L = model.num_layers();
  std::vector<tensor::Tensor> w_plus_u;
  w_plus_u.reserve(L);
  for (std::size_t i = 0; i < L; ++i) {
    w_plus_u.push_back(tensor::add(model.layer(i).param().value, u_[i]));
  }
  project(model, w_plus_u, z_);
  for (std::size_t i = 0; i < L; ++i) {
    // U ← U + W − Z
    const auto& w = model.layer(i).param().value;
    for (std::size_t j = 0; j < u_[i].numel(); ++j) {
      u_[i][j] += w[j] - z_[i][j];
    }
  }
  return true;
}

void AdmmPruner::finalize_mask(sparse::SparseModel& model) const {
  const auto counts = projection_counts(model);
  for (std::size_t i = 0; i < model.num_layers(); ++i) {
    auto& layer = model.layer(i);
    const tensor::Tensor magnitudes = tensor::abs(layer.param().value);
    const auto keep = tensor::topk_indices(magnitudes, counts[i]);
    layer.mask() = sparse::Mask::from_indices(magnitudes.shape(), keep);
    layer.apply_mask_to_value();
  }
  model.reset_counters_to_masks();
}

double AdmmPruner::constraint_violation(
    const sparse::SparseModel& model) const {
  double total = 0.0;
  for (std::size_t i = 0; i < model.num_layers(); ++i) {
    const auto& w = model.layer(i).param().value;
    const auto& z = z_[i];
    for (std::size_t j = 0; j < w.numel(); ++j) {
      const double d = static_cast<double>(w[j]) - z[j];
      total += d * d;
    }
  }
  return total;
}

}  // namespace dstee::methods
