#include "methods/schedule.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/check.hpp"

namespace dstee::methods {

UpdateSchedule::UpdateSchedule(const UpdateScheduleConfig& config)
    : config_(config) {
  util::check(config.delta_t > 0, "ΔT must be positive");
  util::check(config.total_iterations > 0, "total iterations must be set");
  util::check(config.stop_fraction > 0.0 && config.stop_fraction <= 1.0,
              "stop fraction must be in (0, 1]");
  util::check(config.initial_drop_fraction > 0.0 &&
                  config.initial_drop_fraction < 1.0,
              "initial drop fraction must be in (0, 1)");
}

std::size_t UpdateSchedule::stop_iteration() const {
  return static_cast<std::size_t>(
      config_.stop_fraction * static_cast<double>(config_.total_iterations));
}

bool UpdateSchedule::is_update_step(std::size_t t) const {
  if (t == 0 || t >= config_.total_iterations) return false;
  if (t > stop_iteration()) return false;
  return t % config_.delta_t == 0;
}

double UpdateSchedule::drop_fraction(std::size_t t) const {
  const double alpha0 = config_.initial_drop_fraction;
  const double stop = static_cast<double>(stop_iteration());
  const double progress =
      stop > 0.0 ? std::min(1.0, static_cast<double>(t) / stop) : 1.0;
  switch (config_.decay) {
    case DropFractionDecay::kConstant:
      return alpha0;
    case DropFractionDecay::kCosine:
      return alpha0 / 2.0 * (1.0 + std::cos(std::numbers::pi * progress));
    case DropFractionDecay::kLinear:
      return alpha0 * (1.0 - progress);
  }
  return alpha0;
}

std::size_t UpdateSchedule::num_rounds() const {
  std::size_t rounds = 0;
  for (std::size_t t = config_.delta_t; t <= stop_iteration() &&
                                        t < config_.total_iterations;
       t += config_.delta_t) {
    ++rounds;
  }
  return rounds;
}

std::string to_string(DropFractionDecay decay) {
  switch (decay) {
    case DropFractionDecay::kConstant: return "constant";
    case DropFractionDecay::kCosine: return "cosine";
    case DropFractionDecay::kLinear: return "linear";
  }
  return "?";
}

}  // namespace dstee::methods
