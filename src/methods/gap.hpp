// GaP (grow-and-prune) — the scheduled partition-wise baseline the paper's
// related-work section discusses (Ma et al., "Effective model
// sparsification by scheduled grow-and-prune", ICLR 2022).
//
// The model's layers are divided into P partitions. Training proceeds in
// phases: in phase p, partition (p mod P) is grown DENSE while every other
// partition stays sparse; at the phase boundary the previously-dense
// partition is magnitude-pruned back to the target sparsity. Over P·k
// phases every weight gets dense training time (full coverage — the
// property DST-EE achieves with its exploration bonus instead), at the
// cost of a much higher training-FLOPs budget, which is the drawback the
// paper cites.
#pragma once

#include <cstddef>
#include <vector>

#include "sparse/distribution.hpp"
#include "sparse/sparse_model.hpp"

namespace dstee::methods {

struct GapConfig {
  std::size_t num_partitions = 4;
  std::size_t phase_iterations = 200;  ///< iterations per dense phase
  double sparsity = 0.9;               ///< target sparsity between phases
  sparse::DistributionKind distribution = sparse::DistributionKind::kErk;
};

/// Drives the grow-and-prune phase schedule over a SparseModel.
class GapScheduler {
 public:
  /// Partitions the model's layers round-robin and densifies partition 0.
  GapScheduler(sparse::SparseModel& model, const GapConfig& config);

  /// Call once per iteration BEFORE gradient masking. At phase boundaries
  /// prunes the outgoing dense partition and densifies the next one.
  /// Returns true when the phase rotated.
  bool maybe_rotate(sparse::SparseModel& model, std::size_t iteration);

  /// Partition index a layer belongs to.
  std::size_t partition_of(std::size_t layer_index) const;

  /// Currently-dense partition.
  std::size_t active_partition() const { return active_partition_; }

  /// Number of completed phase rotations.
  std::size_t rotations() const { return rotations_; }

  const GapConfig& config() const { return config_; }

 private:
  void densify_partition(sparse::SparseModel& model, std::size_t partition);
  void prune_partition(sparse::SparseModel& model, std::size_t partition);

  GapConfig config_;
  std::size_t num_layers_ = 0;
  std::size_t active_partition_ = 0;
  std::size_t rotations_ = 0;
};

}  // namespace dstee::methods
