// ADMM-based prune-from-dense — the GNN baseline in Tables III/IV.
//
// Three-phase pipeline exactly as the paper describes (20 pretrain +
// 20 reweighted/ADMM + 20 retrain epochs, scaled):
//   1. pretrain dense;
//   2. ADMM phase — the loss gains ρ/2·‖W − Z + U‖² per layer, where Z is
//      the top-k projection of W + U and U the scaled dual; Z and U are
//      refreshed every `projection_interval` iterations;
//   3. hard-prune to the target sparsity (mask = top-k |W|) and retrain.
#pragma once

#include <cstddef>
#include <vector>

#include "sparse/distribution.hpp"
#include "sparse/sparse_model.hpp"

namespace dstee::methods {

struct AdmmConfig {
  double rho = 1e-2;                  ///< augmented-Lagrangian strength
  double sparsity = 0.9;              ///< target sparsity of the projection
  std::size_t projection_interval = 50;  ///< iterations between Z/U updates
  sparse::DistributionKind distribution = sparse::DistributionKind::kUniform;
};

/// Stateful helper for phase 2 and 3. The caller owns the phase structure
/// (train loops); this class owns Z, U and the projections.
class AdmmPruner {
 public:
  /// Captures Z = Π(W), U = 0 from the (pretrained) model.
  AdmmPruner(sparse::SparseModel& model, const AdmmConfig& config);

  /// Adds ρ·(W − Z + U) to every sparsifiable parameter's gradient.
  /// Call after backward, before the optimizer step, each ADMM iteration.
  void add_penalty_gradients(sparse::SparseModel& model) const;

  /// Refreshes Z ← Π(W + U), U ← U + W − Z when `t` hits the interval.
  /// Returns true when a refresh happened.
  bool maybe_update_duals(sparse::SparseModel& model, std::size_t t);

  /// Phase 3 entry: installs the final hard mask (top-k |W| per layer at
  /// the target sparsity), zeroes pruned weights, resets counters.
  void finalize_mask(sparse::SparseModel& model) const;

  /// ‖W − Z‖² summed over layers — convergence diagnostic; → 0 as ADMM
  /// pulls weights onto the sparse constraint set.
  double constraint_violation(const sparse::SparseModel& model) const;

  const AdmmConfig& config() const { return config_; }

 private:
  std::vector<std::size_t> projection_counts(
      const sparse::SparseModel& model) const;
  void project(const sparse::SparseModel& model,
               const std::vector<tensor::Tensor>& source,
               std::vector<tensor::Tensor>& dest) const;

  AdmmConfig config_;
  std::vector<tensor::Tensor> z_;  // auxiliary sparse targets
  std::vector<tensor::Tensor> u_;  // scaled duals
};

}  // namespace dstee::methods
