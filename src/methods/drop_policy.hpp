// Drop policies: select k ACTIVE weights to deactivate at a mask update.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "sparse/masked_parameter.hpp"
#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace dstee::methods {

/// Inputs available to a drop policy for one layer.
struct DropContext {
  const sparse::MaskedParameter& layer;
  const tensor::Tensor& dense_grad;
  double learning_rate = 0.0;  ///< current lr (DeepR's sign-flip test)
  util::Rng& rng;
};

/// Selects `k` flat indices among the layer's ACTIVE weights to drop.
class DropPolicy {
 public:
  virtual ~DropPolicy() = default;
  virtual std::vector<std::size_t> select(const DropContext& ctx,
                                          std::size_t k) = 0;
  virtual std::string name() const = 0;
};

/// Magnitude drop (the paper, SET, RigL): drop the k weights closest to
/// zero — smallest |w| among active positions.
class MagnitudeDrop : public DropPolicy {
 public:
  std::vector<std::size_t> select(const DropContext& ctx,
                                  std::size_t k) override;
  std::string name() const override { return "magnitude"; }
};

/// Random drop (ablation only — shows magnitude drop matters).
class RandomDrop : public DropPolicy {
 public:
  std::vector<std::size_t> select(const DropContext& ctx,
                                  std::size_t k) override;
  std::string name() const override { return "random"; }
};

/// MEST-style importance drop: smallest |w| + γ·|g| — "a more relaxed range
/// of parameters" because a small weight with a large gradient survives.
class MagnitudeGradientDrop : public DropPolicy {
 public:
  explicit MagnitudeGradientDrop(double gamma = 1.0);
  std::vector<std::size_t> select(const DropContext& ctx,
                                  std::size_t k) override;
  std::string name() const override { return "magnitude+gradient"; }

 private:
  double gamma_;
};

/// DeepR-style drop: prefer active weights whose next SGD step would flip
/// their sign (w and w − lr·g disagree in sign); remaining slots are filled
/// by smallest magnitude.
class SignFlipDrop : public DropPolicy {
 public:
  std::vector<std::size_t> select(const DropContext& ctx,
                                  std::size_t k) override;
  std::string name() const override { return "sign-flip"; }
};

}  // namespace dstee::methods
