// Pruning-at-initialization baselines (Table I/II's static-mask rows).
//
// Workflow: build the model dense, wrap it in a SparseModel with sparsity 0,
// then call one of these to install the static mask. No topology updates
// happen afterwards.
//
// Faithfulness notes (documented substitutions):
//  * SNIP uses the exact published score |w ⊙ g|.
//  * GraSP's score is -w ⊙ Hg; we use the first-order H ≈ I approximation
//    (keep large w ⊙ g, i.e. preserve gradient flow) since the framework is
//    first-order only. The qualitative behaviour — static masks degrade
//    sharply at 98% sparsity — is preserved.
//  * SynFlow is implemented exactly (data-free, iterative, abs-weight
//    linearization), as in the published algorithm.
#pragma once

#include <functional>

#include "nn/module.hpp"
#include "sparse/sparse_model.hpp"
#include "util/rng.hpp"

namespace dstee::methods {

/// Options shared by the static pruners.
struct StaticPruneConfig {
  double sparsity = 0.9;
  sparse::DistributionKind distribution = sparse::DistributionKind::kErk;
  /// true → single global top-k over all layers (each layer keeps ≥1
  /// weight); false → per-layer counts from `distribution`.
  bool global_topk = false;
};

/// Runs one forward+backward on a scoring minibatch, leaving gradients in
/// the model parameters. Provided by the caller (it owns data and loss).
using GradEvalFn = std::function<void()>;

/// Keeps the largest-|w| weights.
void prune_magnitude(sparse::SparseModel& model,
                     const StaticPruneConfig& config);

/// Keeps a uniformly random subset (the "random ticket" control).
void prune_random(sparse::SparseModel& model, const StaticPruneConfig& config,
                  util::Rng& rng);

/// SNIP: connection sensitivity |w ⊙ g| from one scoring batch.
void prune_snip(nn::Module& module, sparse::SparseModel& model,
                const GradEvalFn& eval_grads, const StaticPruneConfig& config);

/// GraSP (first-order): keeps large w ⊙ g to preserve gradient flow.
void prune_grasp(nn::Module& module, sparse::SparseModel& model,
                 const GradEvalFn& eval_grads,
                 const StaticPruneConfig& config);

/// SynFlow: data-free iterative synaptic-flow pruning. `input_shape` is a
/// single-example input shape (batch dim added internally); `rounds` is the
/// published exponential pruning schedule length (100 in the paper; smaller
/// values work at our scales).
void prune_synflow(nn::Module& module, sparse::SparseModel& model,
                   const tensor::Shape& input_shape,
                   const StaticPruneConfig& config, std::size_t rounds = 20);

/// Shared helper: installs masks keeping top-k of `scores` per the config
/// (per-layer counts or global top-k), zeroes masked weights and resets
/// occurrence counters. Exposed for tests and custom pruners.
void install_masks_from_scores(sparse::SparseModel& model,
                               const std::vector<tensor::Tensor>& scores,
                               const StaticPruneConfig& config);

}  // namespace dstee::methods
