#include "methods/static_pruners.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "tensor/ops.hpp"
#include "tensor/topk.hpp"
#include "util/check.hpp"

namespace dstee::methods {

namespace {

// Global top-k over concatenated scores, guaranteeing each layer keeps at
// least one weight.
std::vector<std::vector<std::size_t>> global_topk_selection(
    const sparse::SparseModel& model, const std::vector<tensor::Tensor>& scores,
    double sparsity) {
  const std::size_t L = model.num_layers();
  std::size_t total = 0;
  for (std::size_t i = 0; i < L; ++i) total += scores[i].numel();
  const auto keep_total = std::max<std::size_t>(
      L, static_cast<std::size_t>(
             std::llround((1.0 - sparsity) * static_cast<double>(total))));

  // (score, layer, flat index) triples; nth_element on keep_total.
  struct Entry {
    float score;
    std::uint32_t layer;
    std::uint32_t index;
  };
  std::vector<Entry> entries;
  entries.reserve(total);
  for (std::size_t i = 0; i < L; ++i) {
    for (std::size_t j = 0; j < scores[i].numel(); ++j) {
      entries.push_back({scores[i][j], static_cast<std::uint32_t>(i),
                         static_cast<std::uint32_t>(j)});
    }
  }
  auto better = [](const Entry& a, const Entry& b) {
    if (a.score != b.score) return a.score > b.score;
    if (a.layer != b.layer) return a.layer < b.layer;
    return a.index < b.index;
  };
  std::nth_element(entries.begin(), entries.begin() + (keep_total - 1),
                   entries.end(), better);
  entries.resize(keep_total);

  std::vector<std::vector<std::size_t>> keep(L);
  for (const auto& e : entries) keep[e.layer].push_back(e.index);

  // Guarantee ≥1 per layer: steal the globally-worst kept entries if needed.
  for (std::size_t i = 0; i < L; ++i) {
    if (!keep[i].empty()) continue;
    const std::size_t best = tensor::topk_indices(scores[i], 1).front();
    keep[i].push_back(best);
  }
  return keep;
}

}  // namespace

void install_masks_from_scores(sparse::SparseModel& model,
                               const std::vector<tensor::Tensor>& scores,
                               const StaticPruneConfig& config) {
  const std::size_t L = model.num_layers();
  util::check(scores.size() == L, "one score tensor per layer required");
  for (std::size_t i = 0; i < L; ++i) {
    util::check(scores[i].shape() == model.layer(i).param().value.shape(),
                "score shape must match parameter shape");
  }

  std::vector<std::vector<std::size_t>> keep(L);
  if (config.global_topk) {
    keep = global_topk_selection(model, scores, config.sparsity);
  } else {
    std::vector<tensor::Shape> shapes;
    shapes.reserve(L);
    for (std::size_t i = 0; i < L; ++i) {
      shapes.push_back(model.layer(i).param().value.shape());
    }
    const auto counts = sparse::layer_active_counts(shapes, config.sparsity,
                                                    config.distribution);
    for (std::size_t i = 0; i < L; ++i) {
      keep[i] = tensor::topk_indices(scores[i], counts[i]);
    }
  }

  for (std::size_t i = 0; i < L; ++i) {
    auto& layer = model.layer(i);
    layer.mask() = sparse::Mask::from_indices(
        layer.param().value.shape(), keep[i]);
    layer.apply_mask_to_value();
  }
  model.reset_counters_to_masks();
}

void prune_magnitude(sparse::SparseModel& model,
                     const StaticPruneConfig& config) {
  std::vector<tensor::Tensor> scores;
  scores.reserve(model.num_layers());
  for (std::size_t i = 0; i < model.num_layers(); ++i) {
    scores.push_back(tensor::abs(model.layer(i).param().value));
  }
  install_masks_from_scores(model, scores, config);
}

void prune_random(sparse::SparseModel& model, const StaticPruneConfig& config,
                  util::Rng& rng) {
  util::Rng stream = rng.fork("prune/random");
  std::vector<tensor::Tensor> scores;
  scores.reserve(model.num_layers());
  for (std::size_t i = 0; i < model.num_layers(); ++i) {
    tensor::Tensor s(model.layer(i).param().value.shape());
    for (std::size_t j = 0; j < s.numel(); ++j) {
      s[j] = static_cast<float>(stream.uniform());
    }
    scores.push_back(std::move(s));
  }
  install_masks_from_scores(model, scores, config);
}

void prune_snip(nn::Module& module, sparse::SparseModel& model,
                const GradEvalFn& eval_grads,
                const StaticPruneConfig& config) {
  module.zero_grad();
  eval_grads();
  std::vector<tensor::Tensor> scores;
  scores.reserve(model.num_layers());
  for (std::size_t i = 0; i < model.num_layers(); ++i) {
    const auto& p = model.layer(i).param();
    tensor::Tensor s(p.value.shape());
    for (std::size_t j = 0; j < s.numel(); ++j) {
      s[j] = std::fabs(p.value[j] * p.grad[j]);
    }
    scores.push_back(std::move(s));
  }
  module.zero_grad();
  install_masks_from_scores(model, scores, config);
}

void prune_grasp(nn::Module& module, sparse::SparseModel& model,
                 const GradEvalFn& eval_grads,
                 const StaticPruneConfig& config) {
  module.zero_grad();
  eval_grads();
  // First-order GraSP: keep weights whose w·g is largest — removing them
  // would reduce gradient flow the most.
  std::vector<tensor::Tensor> scores;
  scores.reserve(model.num_layers());
  for (std::size_t i = 0; i < model.num_layers(); ++i) {
    const auto& p = model.layer(i).param();
    tensor::Tensor s(p.value.shape());
    for (std::size_t j = 0; j < s.numel(); ++j) {
      s[j] = p.value[j] * p.grad[j];
    }
    scores.push_back(std::move(s));
  }
  module.zero_grad();
  install_masks_from_scores(model, scores, config);
}

void prune_synflow(nn::Module& module, sparse::SparseModel& model,
                   const tensor::Shape& input_shape,
                   const StaticPruneConfig& config, std::size_t rounds) {
  util::check(rounds >= 1, "synflow needs at least one round");
  const std::size_t L = model.num_layers();

  // Save signed weights; linearize the network with |w|.
  std::vector<tensor::Tensor> saved;
  saved.reserve(L);
  for (std::size_t i = 0; i < L; ++i) {
    saved.push_back(model.layer(i).param().value);
    auto& v = model.layer(i).param().value;
    for (std::size_t j = 0; j < v.numel(); ++j) v[j] = std::fabs(v[j]);
  }

  // Batch of one all-ones example.
  std::vector<std::size_t> dims{1};
  for (const auto d : input_shape.dims()) dims.push_back(d);
  tensor::Tensor ones{tensor::Shape(dims)};
  ones.fill(1.0f);

  const bool was_training = module.is_training();
  module.set_training(false);  // BN must not update running stats

  StaticPruneConfig round_config = config;
  for (std::size_t r = 1; r <= rounds; ++r) {
    // Exponential schedule: sparsity_r = 1 − (1 − s_f)^(r/R).
    const double density_r =
        std::pow(1.0 - config.sparsity,
                 static_cast<double>(r) / static_cast<double>(rounds));
    round_config.sparsity = 1.0 - density_r;

    module.zero_grad();
    const tensor::Tensor out = module.forward(ones);
    tensor::Tensor grad(out.shape());
    grad.fill(1.0f);  // d(Σ outputs)/d(out) = 1
    module.backward(grad);

    std::vector<tensor::Tensor> scores;
    scores.reserve(L);
    for (std::size_t i = 0; i < L; ++i) {
      const auto& p = model.layer(i).param();
      tensor::Tensor s(p.value.shape());
      for (std::size_t j = 0; j < s.numel(); ++j) {
        s[j] = std::fabs(p.value[j] * p.grad[j]);
      }
      scores.push_back(std::move(s));
    }
    install_masks_from_scores(model, scores, round_config);
  }
  module.set_training(was_training);
  module.zero_grad();

  // Restore signed weights under the final mask.
  for (std::size_t i = 0; i < L; ++i) {
    model.layer(i).param().value = saved[i];
    model.layer(i).apply_mask_to_value();
  }
  model.reset_counters_to_masks();
}

}  // namespace dstee::methods
