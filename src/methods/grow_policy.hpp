// Growth policies: given a layer's state and its dense gradient, score every
// weight position; the engine grows the top-k among INACTIVE positions.
//
// The strategy pattern keeps the comparison honest: every method in
// Tables I/II shares the same engine, drop policy and training loop and
// differs only in this scoring function (plus scheduling noted in the
// registry).
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "sparse/masked_parameter.hpp"
#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace dstee::methods {

/// Everything a growth policy may look at when scoring one layer.
struct GrowContext {
  const sparse::MaskedParameter& layer;  ///< mask, counter N, weights
  std::size_t layer_index = 0;           ///< stable index within the model
  const tensor::Tensor& dense_grad;      ///< full ∂l/∂W (masked entries too)
  std::size_t iteration = 0;             ///< global iteration t
  util::Rng& rng;                        ///< per-call deterministic stream
};

/// Scores candidate positions for growth (higher = grown first).
class GrowPolicy {
 public:
  virtual ~GrowPolicy() = default;
  virtual tensor::Tensor scores(const GrowContext& ctx) = 0;
  virtual std::string name() const = 0;
};

/// SET: uniform random scores — growth is pure exploration, but memoryless.
class RandomGrow : public GrowPolicy {
 public:
  tensor::Tensor scores(const GrowContext& ctx) override;
  std::string name() const override { return "random"; }
};

/// RigL: |gradient| — pure exploitation of the current loss landscape.
class GradientGrow : public GrowPolicy {
 public:
  tensor::Tensor scores(const GrowContext& ctx) override;
  std::string name() const override { return "gradient"; }
};

/// DST-EE (the paper): S = |∂l/∂W| + c · ln(t) / (N + ε).
/// The first term exploits the current gradient; the second is a UCB-style
/// exploration bonus that decays for frequently-active positions and grows
/// (logarithmically) with training time, so never-tried weights are
/// eventually grown even if their instantaneous gradient is small.
class DstEeGrow : public GrowPolicy {
 public:
  struct Config {
    double c = 1e-3;    ///< exploration/exploitation trade-off coefficient
    double eps = 1e-3;  ///< keeps the denominator positive for N == 0
  };
  explicit DstEeGrow(const Config& config);

  tensor::Tensor scores(const GrowContext& ctx) override;
  std::string name() const override { return "dst-ee"; }

  const Config& config() const { return config_; }

  /// The exploration term alone — used by Fig. 3's instrumentation.
  tensor::Tensor exploration_term(const GrowContext& ctx) const;

 private:
  Config config_;
};

/// SNFS: exponentially-smoothed gradient momentum as the growth score.
/// State (one EMA tensor per layer) lives inside the policy.
class MomentumGrow : public GrowPolicy {
 public:
  explicit MomentumGrow(double smoothing = 0.9);
  tensor::Tensor scores(const GrowContext& ctx) override;
  std::string name() const override { return "momentum"; }

 private:
  double smoothing_;
  std::vector<tensor::Tensor> ema_;  // indexed by layer_index
};

/// Hybrid used in ablations: λ·|grad| + (1−λ)·uniform-random. λ=1 is RigL,
/// λ=0 is SET; sweeping λ isolates the value of the DST-EE *structured*
/// exploration bonus versus unstructured randomness.
class BlendedGrow : public GrowPolicy {
 public:
  explicit BlendedGrow(double lambda);
  tensor::Tensor scores(const GrowContext& ctx) override;
  std::string name() const override { return "blended"; }

 private:
  double lambda_;
};

}  // namespace dstee::methods
