#include "methods/grow_policy.hpp"

#include <cmath>

#include "tensor/ops.hpp"
#include "util/check.hpp"

namespace dstee::methods {

tensor::Tensor RandomGrow::scores(const GrowContext& ctx) {
  tensor::Tensor s(ctx.dense_grad.shape());
  for (std::size_t i = 0; i < s.numel(); ++i) {
    s[i] = static_cast<float>(ctx.rng.uniform());
  }
  return s;
}

tensor::Tensor GradientGrow::scores(const GrowContext& ctx) {
  return tensor::abs(ctx.dense_grad);
}

DstEeGrow::DstEeGrow(const Config& config) : config_(config) {
  util::check(config.c >= 0.0, "DST-EE coefficient c must be non-negative");
  util::check(config.eps > 0.0, "DST-EE epsilon must be positive");
}

tensor::Tensor DstEeGrow::exploration_term(const GrowContext& ctx) const {
  util::check(ctx.iteration >= 1, "DST-EE requires iteration >= 1");
  const double ln_t = std::log(static_cast<double>(ctx.iteration));
  const tensor::Tensor& counter = ctx.layer.counter();
  tensor::Tensor s(counter.shape());
  for (std::size_t i = 0; i < s.numel(); ++i) {
    s[i] = static_cast<float>(config_.c * ln_t /
                              (static_cast<double>(counter[i]) + config_.eps));
  }
  return s;
}

tensor::Tensor DstEeGrow::scores(const GrowContext& ctx) {
  tensor::Tensor s = tensor::abs(ctx.dense_grad);  // exploitation
  const tensor::Tensor bonus = exploration_term(ctx);
  tensor::add_inplace(s, bonus);
  return s;
}

MomentumGrow::MomentumGrow(double smoothing) : smoothing_(smoothing) {
  util::check(smoothing >= 0.0 && smoothing < 1.0,
              "momentum smoothing must be in [0, 1)");
}

tensor::Tensor MomentumGrow::scores(const GrowContext& ctx) {
  if (ema_.size() <= ctx.layer_index) ema_.resize(ctx.layer_index + 1);
  tensor::Tensor& ema = ema_[ctx.layer_index];
  if (ema.numel() != ctx.dense_grad.numel()) {
    ema = tensor::Tensor(ctx.dense_grad.shape());  // lazily created, zeroed
  }
  const float mu = static_cast<float>(smoothing_);
  for (std::size_t i = 0; i < ema.numel(); ++i) {
    ema[i] = mu * ema[i] + (1.0f - mu) * std::fabs(ctx.dense_grad[i]);
  }
  return ema;
}

BlendedGrow::BlendedGrow(double lambda) : lambda_(lambda) {
  util::check(lambda >= 0.0 && lambda <= 1.0, "lambda must be in [0, 1]");
}

tensor::Tensor BlendedGrow::scores(const GrowContext& ctx) {
  // Normalize |grad| to [0,1] so the blend is scale-free.
  tensor::Tensor g = tensor::abs(ctx.dense_grad);
  const float gmax = tensor::max_value(g);
  const float inv = gmax > 0.0f ? 1.0f / gmax : 0.0f;
  tensor::Tensor s(g.shape());
  for (std::size_t i = 0; i < s.numel(); ++i) {
    s[i] = static_cast<float>(lambda_) * g[i] * inv +
           static_cast<float>((1.0 - lambda_) * ctx.rng.uniform());
  }
  return s;
}

}  // namespace dstee::methods
