#include "methods/dst_engine.hpp"

#include <algorithm>
#include <cmath>

#include "tensor/ops.hpp"
#include "tensor/topk.hpp"
#include "util/check.hpp"

namespace dstee::methods {

DstEngine::DstEngine(sparse::SparseModel& model, optim::Optimizer& optimizer,
                     DstEngineConfig config, util::Rng rng)
    : model_(&model),
      optimizer_(&optimizer),
      config_(std::move(config)),
      schedule_(config_.schedule),
      rng_(rng),
      tracker_(model) {
  util::check(config_.drop != nullptr, "engine requires a drop policy");
  util::check(config_.grow != nullptr, "engine requires a grow policy");
}

bool DstEngine::maybe_update(std::size_t iteration, double learning_rate) {
  if (!schedule_.is_update_step(iteration)) return false;
  run_update(iteration, learning_rate);
  return true;
}

void DstEngine::force_update(std::size_t iteration, double learning_rate) {
  run_update(iteration, learning_rate);
}

std::vector<std::size_t> DstEngine::grow_budgets(
    const std::vector<std::size_t>& drop_counts) const {
  const std::size_t L = model_->num_layers();
  if (!config_.redistribute_across_layers) return drop_counts;

  // Redistribute the global budget ∝ mean |grad| per layer (DSR/SNFS),
  // capped by each layer's inactive capacity; leftover returns to layers
  // proportionally to their drop counts.
  std::size_t budget = 0;
  for (const auto k : drop_counts) budget += k;
  std::vector<double> weight(L, 0.0);
  double weight_sum = 0.0;
  for (std::size_t i = 0; i < L; ++i) {
    const auto& g = model_->layer(i).param().grad;
    weight[i] = tensor::mean(tensor::abs(g));
    weight_sum += weight[i];
  }
  std::vector<std::size_t> grow(L, 0);
  if (weight_sum <= 0.0) return drop_counts;

  std::size_t assigned = 0;
  std::vector<std::size_t> capacity(L);
  for (std::size_t i = 0; i < L; ++i) {
    const auto& layer = model_->layer(i);
    // Growth candidates are the PRE-drop inactive positions (just-dropped
    // weights are excluded from regrowth within the same round), so the
    // per-layer capacity is the current inactive count. Σ capacity ≥ Σ
    // drops holds because each layer's drop count is capped by its own
    // inactive count, so the full budget is always placeable.
    capacity[i] = layer.numel() - layer.num_active();
    grow[i] = std::min<std::size_t>(
        capacity[i], static_cast<std::size_t>(std::floor(
                         static_cast<double>(budget) * weight[i] / weight_sum)));
    assigned += grow[i];
  }
  // Hand the rounding remainder to layers with spare capacity, largest
  // gradient first.
  std::vector<std::size_t> order(L);
  for (std::size_t i = 0; i < L; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return weight[a] > weight[b];
  });
  std::size_t cursor = 0;
  while (assigned < budget) {
    const std::size_t i = order[cursor % L];
    if (grow[i] < capacity[i]) {
      ++grow[i];
      ++assigned;
    }
    ++cursor;
    if (cursor > 4 * L * (budget + 1)) break;  // all layers saturated
  }
  return grow;
}

void DstEngine::run_update(std::size_t iteration, double learning_rate) {
  const double alpha = schedule_.drop_fraction(iteration);
  const std::size_t L = model_->num_layers();

  // Pass 1: per-layer drop counts from the CURRENT topology.
  std::vector<std::size_t> drop_counts(L, 0);
  for (std::size_t i = 0; i < L; ++i) {
    const auto& layer = model_->layer(i);
    const std::size_t active = layer.num_active();
    const std::size_t inactive = layer.numel() - active;
    std::size_t k = static_cast<std::size_t>(
        std::llround(alpha * static_cast<double>(active)));
    // Keep at least one active weight, and never drop more than can be
    // regrown: growth candidates are the PRE-update inactive positions, so
    // k must not exceed them (an ERK-clamped dense layer has none and is
    // left untouched, as in RigL).
    k = std::min(k, active > 0 ? active - 1 : 0);
    k = std::min(k, inactive);
    drop_counts[i] = k;
  }
  const std::vector<std::size_t> grow_counts = grow_budgets(drop_counts);

  sparse::UpdateStats stats;
  stats.round = ++round_;
  stats.iteration = iteration;

  for (std::size_t i = 0; i < L; ++i) {
    auto& layer = model_->layer(i);
    const tensor::Tensor& dense_grad = layer.param().grad;

    // ---- select (on the pre-update mask; sets are disjoint) -------------
    util::Rng drop_rng = rng_.fork("drop/" + std::to_string(round_) + "/" +
                                   std::to_string(i));
    DropContext drop_ctx{layer, dense_grad, learning_rate, drop_rng};
    const std::vector<std::size_t> drops =
        config_.drop->select(drop_ctx, drop_counts[i]);

    util::Rng grow_rng = rng_.fork("grow/" + std::to_string(round_) + "/" +
                                   std::to_string(i));
    GrowContext grow_ctx{layer, i, dense_grad, iteration, grow_rng};
    const tensor::Tensor scores = config_.grow->scores(grow_ctx);

    // Eligible = inactive under the pre-update mask.
    tensor::Tensor eligible(layer.mask().tensor().shape());
    const tensor::Tensor& mask_t = layer.mask().tensor();
    std::size_t inactive = 0;
    for (std::size_t j = 0; j < mask_t.numel(); ++j) {
      const float e = (mask_t[j] == 0.0f) ? 1.0f : 0.0f;
      eligible[j] = e;
      inactive += static_cast<std::size_t>(e);
    }
    const std::size_t k_grow = std::min(grow_counts[i], inactive);
    const std::vector<std::size_t> grows =
        tensor::topk_indices_where(scores, eligible, k_grow);

    if (observer_) {
      // round_ was already advanced for this update above.
      observer_(UpdateObservation{i, round_, iteration, drops, grows,
                                  dense_grad, scores});
    }

    // ---- apply -----------------------------------------------------------
    auto& param = layer.param();
    for (const std::size_t j : drops) {
      layer.mask().deactivate(j);
      param.value[j] = 0.0f;
      if (config_.reset_momentum) {
        optimizer_->reset_state_at(layer.optimizer_index(), j);
      }
    }
    for (const std::size_t j : grows) {
      if (layer.counter()[j] == 0.0f) ++stats.never_seen_grown;
      layer.mask().activate(j);
      param.value[j] = 0.0f;  // grown weights start at zero (RigL/paper)
      if (config_.reset_momentum) {
        optimizer_->reset_state_at(layer.optimizer_index(), j);
      }
    }
    stats.dropped += drops.size();
    stats.grown += grows.size();
  }

  // Counter update N ← N + M with the NEW mask (Algorithm 1), then record
  // exploration on the new topology.
  model_->accumulate_counters();
  tracker_.observe(*model_);
  stats.exploration_rate = tracker_.exploration_rate();
  log_.record(stats);
}

}  // namespace dstee::methods
