#include "methods/drop_policy.hpp"

#include <algorithm>
#include <cmath>

#include "tensor/ops.hpp"
#include "tensor/topk.hpp"
#include "util/check.hpp"

namespace dstee::methods {

std::vector<std::size_t> MagnitudeDrop::select(const DropContext& ctx,
                                               std::size_t k) {
  const tensor::Tensor magnitudes = tensor::abs(ctx.layer.param().value);
  return tensor::bottomk_indices_where(magnitudes, ctx.layer.mask().tensor(),
                                       k);
}

std::vector<std::size_t> RandomDrop::select(const DropContext& ctx,
                                            std::size_t k) {
  const std::vector<std::size_t> active = ctx.layer.mask().active_indices();
  util::check(k <= active.size(), "cannot drop more weights than are active");
  const auto picks = ctx.rng.sample_without_replacement(active.size(), k);
  std::vector<std::size_t> out;
  out.reserve(k);
  for (const std::size_t p : picks) out.push_back(active[p]);
  std::sort(out.begin(), out.end());
  return out;
}

MagnitudeGradientDrop::MagnitudeGradientDrop(double gamma) : gamma_(gamma) {
  util::check(gamma >= 0.0, "gamma must be non-negative");
}

std::vector<std::size_t> MagnitudeGradientDrop::select(const DropContext& ctx,
                                                       std::size_t k) {
  const tensor::Tensor& w = ctx.layer.param().value;
  const tensor::Tensor& g = ctx.dense_grad;
  tensor::Tensor importance(w.shape());
  for (std::size_t i = 0; i < w.numel(); ++i) {
    importance[i] =
        std::fabs(w[i]) + static_cast<float>(gamma_) * std::fabs(g[i]);
  }
  return tensor::bottomk_indices_where(importance, ctx.layer.mask().tensor(),
                                       k);
}

std::vector<std::size_t> SignFlipDrop::select(const DropContext& ctx,
                                              std::size_t k) {
  const tensor::Tensor& w = ctx.layer.param().value;
  const tensor::Tensor& g = ctx.dense_grad;
  const float lr = static_cast<float>(ctx.learning_rate);
  // Score: post-step signed distance from a sign flip. Negative values mean
  // the step flips (or zeroes) the weight — most eligible to drop.
  tensor::Tensor score(w.shape());
  for (std::size_t i = 0; i < w.numel(); ++i) {
    const float next = w[i] - lr * g[i];
    const float same_sign = (w[i] > 0.0f) == (next > 0.0f) ? 1.0f : -1.0f;
    score[i] = same_sign * std::fabs(next);
  }
  return tensor::bottomk_indices_where(score, ctx.layer.mask().tensor(), k);
}

}  // namespace dstee::methods
