// DstEngine: executes Algorithm 1's drop-and-grow skeleton.
//
// Per mask-update step (t mod ΔT == 0, t < T_stop), for every layer i:
//   1. k_i = round(α_t · active_i)   — weights to replace
//   2. drop k_i active weights via the DropPolicy (magnitude by default)
//   3. grow k_i inactive weights with the top-k GrowPolicy scores
//      (candidates exclude this round's drops — the sets are computed on
//      the pre-update mask, where drop candidates are active and grow
//      candidates inactive, hence disjoint)
//   4. grown weights start at 0; dropped weights are zeroed
//   5. optimizer momentum at both sets is reset
//   6. counters N += new mask; exploration tracker observes the new mask
//
// Optional layer redistribution (DSR/SNFS): the global grow budget Σk_i is
// re-split across layers proportionally to mean |grad| instead of returned
// to the layer it came from.
#pragma once

#include <functional>
#include <memory>
#include <optional>

#include "methods/drop_policy.hpp"
#include "methods/grow_policy.hpp"
#include "methods/schedule.hpp"
#include "optim/optimizer.hpp"
#include "sparse/exploration.hpp"
#include "sparse/sparse_model.hpp"
#include "sparse/stats.hpp"

namespace dstee::methods {

/// Engine configuration; policies are owned by the engine.
struct DstEngineConfig {
  UpdateScheduleConfig schedule;
  std::unique_ptr<DropPolicy> drop;
  std::unique_ptr<GrowPolicy> grow;
  bool redistribute_across_layers = false;  ///< DSR/SNFS-style
  bool reset_momentum = true;               ///< clear optimizer state on edits
};

/// Everything observable about one layer's drop-and-grow decision.
/// References stay valid only for the duration of the observer call.
struct UpdateObservation {
  std::size_t layer_index = 0;
  std::size_t round = 0;
  std::size_t iteration = 0;
  const std::vector<std::size_t>& drops;   ///< deactivated flat indices
  const std::vector<std::size_t>& grows;   ///< activated flat indices
  const tensor::Tensor& dense_grad;        ///< gradient used for scoring
  const tensor::Tensor& scores;            ///< the grow policy's scores
};

/// Per-layer callback fired at every topology update (Fig. 1's
/// instrumentation hooks in here; it is not needed for training itself).
using UpdateObserver = std::function<void(const UpdateObservation&)>;

/// Drives topology updates for one SparseModel during training.
class DstEngine {
 public:
  /// `model` and `optimizer` must outlive the engine.
  DstEngine(sparse::SparseModel& model, optim::Optimizer& optimizer,
            DstEngineConfig config, util::Rng rng);

  /// Registers a per-layer update observer (replaces any previous one).
  void set_observer(UpdateObserver observer) {
    observer_ = std::move(observer);
  }

  /// Call once per training iteration AFTER backward (dense gradients
  /// populated) and BEFORE masking gradients / stepping the optimizer.
  /// Returns true when a topology update fired.
  bool maybe_update(std::size_t iteration, double learning_rate);

  /// Forces an update at `iteration` regardless of the schedule (tests,
  /// Fig. 1 instrumentation).
  void force_update(std::size_t iteration, double learning_rate);

  const UpdateSchedule& schedule() const { return schedule_; }
  const sparse::TopologyLog& log() const { return log_; }
  const sparse::ExplorationTracker& exploration() const { return tracker_; }
  GrowPolicy& grow_policy() { return *config_.grow; }
  DropPolicy& drop_policy() { return *config_.drop; }

 private:
  void run_update(std::size_t iteration, double learning_rate);
  std::vector<std::size_t> grow_budgets(
      const std::vector<std::size_t>& drop_counts) const;

  sparse::SparseModel* model_;
  optim::Optimizer* optimizer_;
  DstEngineConfig config_;
  UpdateSchedule schedule_;
  util::Rng rng_;
  sparse::TopologyLog log_;
  sparse::ExplorationTracker tracker_;
  UpdateObserver observer_;
  std::size_t round_ = 0;
};

}  // namespace dstee::methods
