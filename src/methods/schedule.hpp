// Update scheduling for drop-and-grow: when topology updates happen and
// what fraction of active weights each round replaces.
#pragma once

#include <cstddef>
#include <string>

namespace dstee::methods {

/// How the drop fraction α_t decays over training.
enum class DropFractionDecay {
  kConstant,  ///< α_t = α₀ (SET)
  kCosine,    ///< α_t = α₀/2 · (1 + cos(πt/T_stop)) (RigL)
  kLinear,    ///< α_t = α₀ · (1 − t/T_stop) (MEST's decreasing rate)
};

/// Drop-and-grow scheduling parameters.
struct UpdateScheduleConfig {
  std::size_t delta_t = 100;        ///< iterations between mask updates (ΔT)
  std::size_t total_iterations = 0; ///< T_end; must be set
  double stop_fraction = 0.75;      ///< updates stop after this fraction of
                                    ///< training (RigL convention); 1.0 = run
                                    ///< to the end as in Algorithm 1
  double initial_drop_fraction = 0.3;  ///< α₀
  DropFractionDecay decay = DropFractionDecay::kCosine;
};

/// Evaluates the schedule. Iterations are 0-based; following Algorithm 1,
/// updates fire when t mod ΔT == 0 (skipping t == 0, where no gradient
/// information exists yet).
class UpdateSchedule {
 public:
  explicit UpdateSchedule(const UpdateScheduleConfig& config);

  /// True when iteration `t` is a mask-update step.
  bool is_update_step(std::size_t t) const;

  /// Drop fraction α_t at iteration `t`.
  double drop_fraction(std::size_t t) const;

  /// Number of update rounds that will fire over the whole run.
  std::size_t num_rounds() const;

  /// Last iteration at which updates may fire.
  std::size_t stop_iteration() const;

  const UpdateScheduleConfig& config() const { return config_; }

 private:
  UpdateScheduleConfig config_;
};

std::string to_string(DropFractionDecay decay);

}  // namespace dstee::methods
