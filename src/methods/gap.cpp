#include "methods/gap.hpp"

#include "tensor/ops.hpp"
#include "tensor/topk.hpp"
#include "util/check.hpp"

namespace dstee::methods {

GapScheduler::GapScheduler(sparse::SparseModel& model, const GapConfig& config)
    : config_(config), num_layers_(model.num_layers()) {
  util::check(config.num_partitions >= 2,
              "GaP requires at least two partitions");
  util::check(config.num_partitions <= model.num_layers(),
              "more partitions than layers");
  util::check(config.phase_iterations > 0,
              "phase length must be positive");
  util::check(config.sparsity > 0.0 && config.sparsity < 1.0,
              "sparsity must be in (0, 1)");
  // Phase 0 starts with partition 0 dense; the rest keep their (sparse)
  // masks from SparseModel construction.
  densify_partition(model, 0);
}

std::size_t GapScheduler::partition_of(std::size_t layer_index) const {
  util::check(layer_index < num_layers_, "layer index out of range");
  return layer_index % config_.num_partitions;
}

bool GapScheduler::maybe_rotate(sparse::SparseModel& model,
                                std::size_t iteration) {
  if (iteration == 0 || iteration % config_.phase_iterations != 0) {
    return false;
  }
  prune_partition(model, active_partition_);
  active_partition_ = (active_partition_ + 1) % config_.num_partitions;
  densify_partition(model, active_partition_);
  model.accumulate_counters();
  ++rotations_;
  return true;
}

void GapScheduler::densify_partition(sparse::SparseModel& model,
                                     std::size_t partition) {
  for (std::size_t i = 0; i < model.num_layers(); ++i) {
    if (partition_of(i) != partition) continue;
    auto& layer = model.layer(i);
    layer.mask() = sparse::Mask(layer.param().value.shape());  // all ones
    // Weights stay as they are: previously-masked entries are zero and can
    // now train; surviving entries keep their values.
  }
}

void GapScheduler::prune_partition(sparse::SparseModel& model,
                                   std::size_t partition) {
  // Per-layer counts are recomputed at the target sparsity over the whole
  // model so the layer budget matches the configured distribution.
  std::vector<tensor::Shape> shapes;
  shapes.reserve(model.num_layers());
  for (std::size_t i = 0; i < model.num_layers(); ++i) {
    shapes.push_back(model.layer(i).param().value.shape());
  }
  const auto counts = sparse::layer_active_counts(shapes, config_.sparsity,
                                                  config_.distribution);
  for (std::size_t i = 0; i < model.num_layers(); ++i) {
    if (partition_of(i) != partition) continue;
    auto& layer = model.layer(i);
    const tensor::Tensor magnitudes = tensor::abs(layer.param().value);
    const auto keep = tensor::topk_indices(magnitudes, counts[i]);
    layer.mask() = sparse::Mask::from_indices(magnitudes.shape(), keep);
    layer.apply_mask_to_value();
  }
}

}  // namespace dstee::methods
