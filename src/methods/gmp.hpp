// Gradual magnitude pruning (Zhu & Gupta): dense-to-sparse over training.
//
// Stands in for the paper's dense-to-sparse baselines STR and SIS, which
// learn per-layer thresholds. GMP reproduces their *envelope*: a dense
// early phase (high training FLOPs), gradually increasing sparsity, and a
// magnitude-selected final mask. The Table I/II qualitative behaviour —
// dense-to-sparse beating static masks but losing to good DST at high
// sparsity with a far larger training-FLOPs budget — is what matters here,
// and it is schedule-driven, not threshold-driven.
#pragma once

#include <cstddef>

#include "sparse/distribution.hpp"
#include "sparse/sparse_model.hpp"

namespace dstee::methods {

/// Cubic sparsity ramp: s(t) = s_f · (1 − (1 − p)³), p = progress in the
/// pruning window.
struct GmpConfig {
  double final_sparsity = 0.9;
  std::size_t start_iteration = 0;   ///< pruning window start
  std::size_t end_iteration = 0;     ///< pruning window end (must be set)
  std::size_t frequency = 100;       ///< prune every this many iterations
  sparse::DistributionKind distribution = sparse::DistributionKind::kErk;
};

/// Drives the dense→sparse schedule during training.
class GradualMagnitudePruner {
 public:
  explicit GradualMagnitudePruner(const GmpConfig& config);

  /// Target sparsity at iteration `t`.
  double sparsity_at(std::size_t t) const;

  /// Call once per iteration (before the optimizer step). When a pruning
  /// step fires, masks are recomputed by per-layer magnitude at the
  /// scheduled sparsity. Returns true when masks changed.
  bool maybe_prune(sparse::SparseModel& model, std::size_t t);

  const GmpConfig& config() const { return config_; }

 private:
  GmpConfig config_;
};

}  // namespace dstee::methods
