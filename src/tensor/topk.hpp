// Top-k / bottom-k index selection — the primitive behind both halves of
// drop-and-grow: ArgTopK over |weights| (drop) and over scores (grow).
#pragma once

#include <cstddef>
#include <vector>

#include "tensor/tensor.hpp"

namespace dstee::tensor {

/// Indices of the `k` largest values (descending by value; ties broken by
/// ascending index so results are deterministic). k may be 0; k <= numel.
std::vector<std::size_t> topk_indices(const Tensor& values, std::size_t k);

/// Indices of the `k` smallest values (ascending by value, ties by index).
std::vector<std::size_t> bottomk_indices(const Tensor& values, std::size_t k);

/// topk over a subset: only indices with `eligible[i] != 0` participate.
/// This is ArgTopK(S · (M == 0), k) from Algorithm 1 — growth considers
/// inactive positions only. Requires at least k eligible entries.
std::vector<std::size_t> topk_indices_where(const Tensor& values,
                                            const Tensor& eligible,
                                            std::size_t k);

/// bottomk over active positions only (used for magnitude drop, where masked
/// weights are already zero and must not be "dropped" again).
std::vector<std::size_t> bottomk_indices_where(const Tensor& values,
                                               const Tensor& eligible,
                                               std::size_t k);

}  // namespace dstee::tensor
