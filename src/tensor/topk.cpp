#include "tensor/topk.hpp"

#include <algorithm>
#include <numeric>

#include "util/check.hpp"

namespace dstee::tensor {

namespace {

// Shared implementation: selects k indices out of `candidates` ordered by
// `better` (strict weak ordering over indices).
template <typename Compare>
std::vector<std::size_t> select_k(std::vector<std::size_t> candidates,
                                  std::size_t k, Compare better) {
  util::check(k <= candidates.size(),
              "top-k: k exceeds number of eligible elements");
  if (k == 0) return {};
  std::nth_element(candidates.begin(), candidates.begin() + (k - 1),
                   candidates.end(), better);
  candidates.resize(k);
  std::sort(candidates.begin(), candidates.end(), better);
  return candidates;
}

std::vector<std::size_t> all_indices(std::size_t n) {
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  return idx;
}

std::vector<std::size_t> where_indices(const Tensor& eligible) {
  std::vector<std::size_t> idx;
  idx.reserve(eligible.numel());
  for (std::size_t i = 0; i < eligible.numel(); ++i) {
    if (eligible[i] != 0.0f) idx.push_back(i);
  }
  return idx;
}

}  // namespace

std::vector<std::size_t> topk_indices(const Tensor& values, std::size_t k) {
  return select_k(all_indices(values.numel()), k,
                  [&](std::size_t a, std::size_t b) {
                    if (values[a] != values[b]) return values[a] > values[b];
                    return a < b;
                  });
}

std::vector<std::size_t> bottomk_indices(const Tensor& values, std::size_t k) {
  return select_k(all_indices(values.numel()), k,
                  [&](std::size_t a, std::size_t b) {
                    if (values[a] != values[b]) return values[a] < values[b];
                    return a < b;
                  });
}

std::vector<std::size_t> topk_indices_where(const Tensor& values,
                                            const Tensor& eligible,
                                            std::size_t k) {
  util::check(values.shape() == eligible.shape(),
              "top-k eligibility mask must match value shape");
  return select_k(where_indices(eligible), k,
                  [&](std::size_t a, std::size_t b) {
                    if (values[a] != values[b]) return values[a] > values[b];
                    return a < b;
                  });
}

std::vector<std::size_t> bottomk_indices_where(const Tensor& values,
                                               const Tensor& eligible,
                                               std::size_t k) {
  util::check(values.shape() == eligible.shape(),
              "bottom-k eligibility mask must match value shape");
  return select_k(where_indices(eligible), k,
                  [&](std::size_t a, std::size_t b) {
                    if (values[a] != values[b]) return values[a] < values[b];
                    return a < b;
                  });
}

}  // namespace dstee::tensor
