#include "tensor/im2col.hpp"

#include "util/check.hpp"

namespace dstee::tensor {

void im2col(const float* image, const ConvGeometry& g, Tensor& cols) {
  const std::size_t oh = g.out_h(), ow = g.out_w();
  util::check(cols.rank() == 2 && cols.dim(0) == g.patch_size() &&
                  cols.dim(1) == oh * ow,
              "im2col output tensor has wrong shape");
  im2col(image, g, cols.raw());
}

void im2col(const float* image, const ConvGeometry& g, float* out) {
  const std::size_t oh = g.out_h(), ow = g.out_w();
  const std::size_t out_cols = oh * ow;
  for (std::size_t c = 0; c < g.in_channels; ++c) {
    const float* img_c = image + c * g.in_h * g.in_w;
    for (std::size_t kh = 0; kh < g.kernel_h; ++kh) {
      for (std::size_t kw = 0; kw < g.kernel_w; ++kw) {
        const std::size_t row = (c * g.kernel_h + kh) * g.kernel_w + kw;
        float* out_row = out + row * out_cols;
        for (std::size_t y = 0; y < oh; ++y) {
          // input row index, may be in the padding band
          const std::ptrdiff_t iy =
              static_cast<std::ptrdiff_t>(y * g.stride + kh) -
              static_cast<std::ptrdiff_t>(g.padding);
          if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(g.in_h)) {
            for (std::size_t x = 0; x < ow; ++x) out_row[y * ow + x] = 0.0f;
            continue;
          }
          const float* img_row = img_c + static_cast<std::size_t>(iy) * g.in_w;
          for (std::size_t x = 0; x < ow; ++x) {
            const std::ptrdiff_t ix =
                static_cast<std::ptrdiff_t>(x * g.stride + kw) -
                static_cast<std::ptrdiff_t>(g.padding);
            out_row[y * ow + x] =
                (ix < 0 || ix >= static_cast<std::ptrdiff_t>(g.in_w))
                    ? 0.0f
                    : img_row[static_cast<std::size_t>(ix)];
          }
        }
      }
    }
  }
}

void col2im(const Tensor& cols, const ConvGeometry& g, float* image_grad) {
  const std::size_t oh = g.out_h(), ow = g.out_w();
  util::check(cols.rank() == 2 && cols.dim(0) == g.patch_size() &&
                  cols.dim(1) == oh * ow,
              "col2im input tensor has wrong shape");
  const float* in = cols.raw();
  const std::size_t in_cols = oh * ow;
  for (std::size_t c = 0; c < g.in_channels; ++c) {
    float* img_c = image_grad + c * g.in_h * g.in_w;
    for (std::size_t kh = 0; kh < g.kernel_h; ++kh) {
      for (std::size_t kw = 0; kw < g.kernel_w; ++kw) {
        const std::size_t row = (c * g.kernel_h + kh) * g.kernel_w + kw;
        const float* in_row = in + row * in_cols;
        for (std::size_t y = 0; y < oh; ++y) {
          const std::ptrdiff_t iy =
              static_cast<std::ptrdiff_t>(y * g.stride + kh) -
              static_cast<std::ptrdiff_t>(g.padding);
          if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(g.in_h)) continue;
          float* img_row = img_c + static_cast<std::size_t>(iy) * g.in_w;
          for (std::size_t x = 0; x < ow; ++x) {
            const std::ptrdiff_t ix =
                static_cast<std::ptrdiff_t>(x * g.stride + kw) -
                static_cast<std::ptrdiff_t>(g.padding);
            if (ix < 0 || ix >= static_cast<std::ptrdiff_t>(g.in_w)) continue;
            img_row[static_cast<std::size_t>(ix)] += in_row[y * ow + x];
          }
        }
      }
    }
  }
}

}  // namespace dstee::tensor
