// Dense row-major float32 tensor — the storage type for activations,
// weights, gradients, masks and counters throughout the library.
//
// Deliberately simple (contiguous, CPU, float): dynamic sparse training
// research frameworks (RigL's public code included) keep weights dense and
// apply binary masks; sparsity is a *training-algorithm* property, modeled
// in sparse::, while FLOPs savings are computed analytically in
// sparse::FlopsModel, mirroring the paper's accounting.
#pragma once

// std::span below is C++20; failing here turns ~30 cascading template
// errors on older-standard builds into one actionable diagnostic.
#if (defined(_MSVC_LANG) && _MSVC_LANG < 202002L) || \
    (!defined(_MSVC_LANG) && __cplusplus < 202002L)
#error "dstee requires C++20 (std::span): compile with -std=c++20 or newer"
#endif

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "tensor/shape.hpp"

namespace dstee::tensor {

/// Contiguous row-major float tensor with value semantics.
class Tensor {
 public:
  /// Rank-0 scalar containing 0.
  Tensor() : shape_({}), data_(1, 0.0f) {}

  /// Zero-initialized tensor of the given shape.
  explicit Tensor(Shape shape)
      : shape_(std::move(shape)), data_(shape_.numel(), 0.0f) {}

  /// Convenience: Tensor({2, 3}).
  Tensor(std::initializer_list<std::size_t> dims) : Tensor(Shape(dims)) {}

  /// Tensor with explicit contents; `values.size()` must equal numel.
  Tensor(Shape shape, std::vector<float> values);

  /// Builds a rank-1 tensor from values.
  static Tensor from_vector(std::vector<float> values);

  /// Tensor of the given shape filled with `value`.
  static Tensor full(Shape shape, float value);

  /// Shorthand for full(shape, 0) / full(shape, 1).
  static Tensor zeros(Shape shape) { return full(std::move(shape), 0.0f); }
  static Tensor ones(Shape shape) { return full(std::move(shape), 1.0f); }

  /// Zeros with the same shape as `other`.
  static Tensor zeros_like(const Tensor& other) { return Tensor(other.shape()); }

  const Shape& shape() const { return shape_; }
  std::size_t numel() const { return data_.size(); }
  std::size_t rank() const { return shape_.rank(); }
  std::size_t dim(std::size_t axis) const { return shape_.dim(axis); }

  /// Flat element access (checked in debug via vector::operator[] contract).
  float& operator[](std::size_t i) { return data_[i]; }
  float operator[](std::size_t i) const { return data_[i]; }

  /// Checked flat access.
  float& at(std::size_t i);
  float at(std::size_t i) const;

  /// Multi-index access for rank 2 / 4 (the ranks used by layers).
  float& at2(std::size_t i, std::size_t j);
  float at2(std::size_t i, std::size_t j) const;
  float& at4(std::size_t n, std::size_t c, std::size_t h, std::size_t w);
  float at4(std::size_t n, std::size_t c, std::size_t h, std::size_t w) const;

  std::span<float> data() { return data_; }
  std::span<const float> data() const { return data_; }
  float* raw() { return data_.data(); }
  const float* raw() const { return data_.data(); }

  /// Fills every element with `value`.
  void fill(float value);

  /// Reinterprets the contiguous buffer under a new shape with equal numel.
  /// Returns a copy (value semantics keep aliasing out of the API).
  Tensor reshaped(Shape new_shape) const;

  /// In-place reshape (no data movement); numel must match.
  void reshape_in_place(Shape new_shape);

  /// True when shapes and all elements match exactly.
  bool equals(const Tensor& other) const;

  /// True when shapes match and elements are within `tol` of each other.
  bool allclose(const Tensor& other, float tol = 1e-5f) const;

  /// Short debug description: shape + first few values.
  std::string to_string(std::size_t max_values = 8) const;

 private:
  Shape shape_;
  std::vector<float> data_;
};

}  // namespace dstee::tensor
