#include "tensor/init.hpp"

#include <cmath>

#include "util/check.hpp"

namespace dstee::tensor {

void fill_uniform(Tensor& t, util::Rng& rng, float lo, float hi) {
  for (std::size_t i = 0; i < t.numel(); ++i) {
    t[i] = static_cast<float>(rng.uniform(lo, hi));
  }
}

void fill_normal(Tensor& t, util::Rng& rng, float mean, float stddev) {
  for (std::size_t i = 0; i < t.numel(); ++i) {
    t[i] = static_cast<float>(rng.normal(mean, stddev));
  }
}

std::size_t fan_in_of(const Shape& shape) {
  switch (shape.rank()) {
    case 2: return shape.dim(1);
    case 4: return shape.dim(1) * shape.dim(2) * shape.dim(3);
    default:
      util::fail("fan_in is defined for rank-2/4 parameters, got rank " +
                 std::to_string(shape.rank()));
  }
}

std::size_t fan_out_of(const Shape& shape) {
  switch (shape.rank()) {
    case 2: return shape.dim(0);
    case 4: return shape.dim(0) * shape.dim(2) * shape.dim(3);
    default:
      util::fail("fan_out is defined for rank-2/4 parameters, got rank " +
                 std::to_string(shape.rank()));
  }
}

void fill_kaiming_normal(Tensor& t, util::Rng& rng) {
  const auto fan_in = fan_in_of(t.shape());
  util::check(fan_in > 0, "kaiming init requires positive fan-in");
  const float stddev = std::sqrt(2.0f / static_cast<float>(fan_in));
  fill_normal(t, rng, 0.0f, stddev);
}

void fill_xavier_uniform(Tensor& t, util::Rng& rng) {
  const auto fan_in = fan_in_of(t.shape());
  const auto fan_out = fan_out_of(t.shape());
  util::check(fan_in + fan_out > 0, "xavier init requires positive fans");
  const float bound = std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  fill_uniform(t, rng, -bound, bound);
}

}  // namespace dstee::tensor
