// im2col / col2im: lowering 2-d convolution to matrix multiplication.
//
// Forward conv:  weight[Cout, Cin·Kh·Kw] · im2col(x)[Cin·Kh·Kw, Ho·Wo]
// Backward data: col2im(weightᵀ · grad_out)
// Backward weight: grad_out · im2col(x)ᵀ   (gives the FULL dense weight
// gradient, which is exactly what RigL/DST-EE need for growth scoring).
#pragma once

#include <cstddef>

#include "tensor/tensor.hpp"

namespace dstee::tensor {

/// Geometry of a conv2d application to one image.
struct ConvGeometry {
  std::size_t in_channels = 0;
  std::size_t in_h = 0;
  std::size_t in_w = 0;
  std::size_t kernel_h = 0;
  std::size_t kernel_w = 0;
  std::size_t stride = 1;
  std::size_t padding = 0;

  std::size_t out_h() const {
    return (in_h + 2 * padding - kernel_h) / stride + 1;
  }
  std::size_t out_w() const {
    return (in_w + 2 * padding - kernel_w) / stride + 1;
  }
  /// Rows of the lowered matrix: Cin · Kh · Kw.
  std::size_t patch_size() const { return in_channels * kernel_h * kernel_w; }
};

/// Lowers one image `x[C, H, W]` (given as a flat span base pointer) into
/// `cols[patch_size, out_h*out_w]`. `cols` must be pre-shaped; zero padding
/// is materialized as zeros.
void im2col(const float* image, const ConvGeometry& g, Tensor& cols);

/// im2col writing into caller-owned storage of patch_size·out_h·out_w
/// floats — the batched patch-buffer path (serve Im2colOp writes each
/// image's patches straight into the shared [N, P, OH, OW] tensor, no
/// per-image scratch or relocation copy).
void im2col(const float* image, const ConvGeometry& g, float* cols);

/// Adjoint of im2col: scatters `cols[patch_size, out_h*out_w]` back into the
/// image gradient buffer (accumulating).
void col2im(const Tensor& cols, const ConvGeometry& g, float* image_grad);

}  // namespace dstee::tensor
