#include "tensor/matmul.hpp"

#include "util/check.hpp"

namespace dstee::tensor {

namespace {

// i-k-j loop order: the inner loop runs contiguously over B's and C's rows,
// which vectorizes well and is cache-friendly for row-major storage.
void gemm(const float* a, const float* b, float* c, std::size_t m,
          std::size_t k, std::size_t n) {
  for (std::size_t i = 0; i < m; ++i) {
    float* c_row = c + i * n;
    for (std::size_t p = 0; p < k; ++p) {
      const float a_ip = a[i * k + p];
      if (a_ip == 0.0f) continue;  // masked-weight rows stay cheap
      const float* b_row = b + p * n;
      for (std::size_t j = 0; j < n; ++j) c_row[j] += a_ip * b_row[j];
    }
  }
}

}  // namespace

Tensor matmul(const Tensor& a, const Tensor& b) {
  util::check(a.rank() == 2 && b.rank() == 2, "matmul requires rank-2 inputs");
  util::check(a.dim(1) == b.dim(0),
              "matmul inner dimensions must agree: " + a.shape().to_string() +
                  " x " + b.shape().to_string());
  Tensor c({a.dim(0), b.dim(1)});
  gemm(a.raw(), b.raw(), c.raw(), a.dim(0), a.dim(1), b.dim(1));
  return c;
}

void matmul_accumulate(const Tensor& a, const Tensor& b, Tensor& c) {
  util::check(a.rank() == 2 && b.rank() == 2, "matmul requires rank-2 inputs");
  util::check(a.dim(1) == b.dim(0), "matmul inner dimensions must agree");
  util::check(c.rank() == 2 && c.dim(0) == a.dim(0) && c.dim(1) == b.dim(1),
              "accumulator shape mismatch");
  gemm(a.raw(), b.raw(), c.raw(), a.dim(0), a.dim(1), b.dim(1));
}

Tensor matmul_nt(const Tensor& a, const Tensor& b) {
  util::check(a.rank() == 2 && b.rank() == 2, "matmul_nt requires rank-2 inputs");
  util::check(a.dim(1) == b.dim(1), "matmul_nt inner dimensions must agree");
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  Tensor c({m, n});
  for (std::size_t i = 0; i < m; ++i) {
    const float* a_row = a.raw() + i * k;
    float* c_row = c.raw() + i * n;
    for (std::size_t j = 0; j < n; ++j) {
      const float* b_row = b.raw() + j * k;
      float acc = 0.0f;
      for (std::size_t p = 0; p < k; ++p) acc += a_row[p] * b_row[p];
      c_row[j] = acc;
    }
  }
  return c;
}

Tensor matmul_tn(const Tensor& a, const Tensor& b) {
  util::check(a.rank() == 2 && b.rank() == 2, "matmul_tn requires rank-2 inputs");
  util::check(a.dim(0) == b.dim(0), "matmul_tn inner dimensions must agree");
  const std::size_t k = a.dim(0), m = a.dim(1), n = b.dim(1);
  Tensor c({m, n});
  // Accumulate rank-1 updates; inner loop contiguous over b and c rows.
  for (std::size_t p = 0; p < k; ++p) {
    const float* a_row = a.raw() + p * m;
    const float* b_row = b.raw() + p * n;
    for (std::size_t i = 0; i < m; ++i) {
      const float a_pi = a_row[i];
      if (a_pi == 0.0f) continue;
      float* c_row = c.raw() + i * n;
      for (std::size_t j = 0; j < n; ++j) c_row[j] += a_pi * b_row[j];
    }
  }
  return c;
}

Tensor transpose(const Tensor& a) {
  util::check(a.rank() == 2, "transpose requires a rank-2 tensor");
  const std::size_t m = a.dim(0), n = a.dim(1);
  Tensor out({n, m});
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) out[j * m + i] = a[i * n + j];
  }
  return out;
}

}  // namespace dstee::tensor
