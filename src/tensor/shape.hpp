// Tensor shape: a small value type describing row-major extents.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

namespace dstee::tensor {

/// Row-major tensor shape. Rank 0 denotes a scalar (numel == 1).
class Shape {
 public:
  Shape() = default;
  Shape(std::initializer_list<std::size_t> dims) : dims_(dims) {}
  explicit Shape(std::vector<std::size_t> dims) : dims_(std::move(dims)) {}

  std::size_t rank() const { return dims_.size(); }

  /// Extent of dimension `axis`; checked.
  std::size_t dim(std::size_t axis) const;

  /// Total element count (product of extents; 1 for rank 0).
  std::size_t numel() const;

  const std::vector<std::size_t>& dims() const { return dims_; }

  /// This shape with `extent` prepended as a new leading axis — the
  /// "[batch] + sample dims" construction used wherever single samples
  /// are stacked into a batch tensor.
  Shape prepended(std::size_t extent) const;

  /// Row-major strides (in elements) for this shape.
  std::vector<std::size_t> strides() const;

  bool operator==(const Shape& other) const { return dims_ == other.dims_; }
  bool operator!=(const Shape& other) const { return !(*this == other); }

  /// Human-readable form, e.g. "[64, 3, 3, 3]".
  std::string to_string() const;

 private:
  std::vector<std::size_t> dims_;
};

}  // namespace dstee::tensor
