// Weight initialization schemes.
#pragma once

#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace dstee::tensor {

/// Fills with U(lo, hi).
void fill_uniform(Tensor& t, util::Rng& rng, float lo, float hi);

/// Fills with N(mean, stddev).
void fill_normal(Tensor& t, util::Rng& rng, float mean, float stddev);

/// Kaiming-He normal for ReLU networks: N(0, sqrt(2 / fan_in)).
/// `fan_in` is taken from the tensor shape: rank-2 [out,in] → in;
/// rank-4 [out,in,kh,kw] → in·kh·kw.
void fill_kaiming_normal(Tensor& t, util::Rng& rng);

/// Xavier/Glorot uniform: U(±sqrt(6 / (fan_in + fan_out))).
void fill_xavier_uniform(Tensor& t, util::Rng& rng);

/// fan_in/fan_out for rank-2 and rank-4 parameter tensors.
std::size_t fan_in_of(const Shape& shape);
std::size_t fan_out_of(const Shape& shape);

}  // namespace dstee::tensor
