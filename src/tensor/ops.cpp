#include "tensor/ops.hpp"

#include <cmath>

#include "util/check.hpp"

namespace dstee::tensor {

namespace {
void check_same_shape(const Tensor& a, const Tensor& b) {
  util::check(a.shape() == b.shape(),
              "elementwise op requires identical shapes: " +
                  a.shape().to_string() + " vs " + b.shape().to_string());
}
}  // namespace

Tensor add(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b);
  Tensor out(a.shape());
  for (std::size_t i = 0; i < a.numel(); ++i) out[i] = a[i] + b[i];
  return out;
}

Tensor sub(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b);
  Tensor out(a.shape());
  for (std::size_t i = 0; i < a.numel(); ++i) out[i] = a[i] - b[i];
  return out;
}

Tensor mul(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b);
  Tensor out(a.shape());
  for (std::size_t i = 0; i < a.numel(); ++i) out[i] = a[i] * b[i];
  return out;
}

Tensor div(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b);
  Tensor out(a.shape());
  for (std::size_t i = 0; i < a.numel(); ++i) out[i] = a[i] / b[i];
  return out;
}

void add_inplace(Tensor& a, const Tensor& b) {
  check_same_shape(a, b);
  for (std::size_t i = 0; i < a.numel(); ++i) a[i] += b[i];
}

void sub_inplace(Tensor& a, const Tensor& b) {
  check_same_shape(a, b);
  for (std::size_t i = 0; i < a.numel(); ++i) a[i] -= b[i];
}

void mul_inplace(Tensor& a, const Tensor& b) {
  check_same_shape(a, b);
  for (std::size_t i = 0; i < a.numel(); ++i) a[i] *= b[i];
}

void axpy_inplace(Tensor& a, float alpha, const Tensor& b) {
  check_same_shape(a, b);
  for (std::size_t i = 0; i < a.numel(); ++i) a[i] += alpha * b[i];
}

Tensor add_scalar(const Tensor& a, float s) {
  Tensor out = a;
  for (std::size_t i = 0; i < out.numel(); ++i) out[i] += s;
  return out;
}

Tensor mul_scalar(const Tensor& a, float s) {
  Tensor out = a;
  mul_scalar_inplace(out, s);
  return out;
}

void mul_scalar_inplace(Tensor& a, float s) {
  for (std::size_t i = 0; i < a.numel(); ++i) a[i] *= s;
}

Tensor abs(const Tensor& a) {
  Tensor out(a.shape());
  for (std::size_t i = 0; i < a.numel(); ++i) out[i] = std::fabs(a[i]);
  return out;
}

Tensor sign(const Tensor& a) {
  Tensor out(a.shape());
  for (std::size_t i = 0; i < a.numel(); ++i) {
    out[i] = (a[i] > 0.0f) ? 1.0f : (a[i] < 0.0f ? -1.0f : 0.0f);
  }
  return out;
}

Tensor map(const Tensor& a, const std::function<float(float)>& f) {
  Tensor out(a.shape());
  for (std::size_t i = 0; i < a.numel(); ++i) out[i] = f(a[i]);
  return out;
}

void map_inplace(Tensor& a, const std::function<float(float)>& f) {
  for (std::size_t i = 0; i < a.numel(); ++i) a[i] = f(a[i]);
}

double sum(const Tensor& a) {
  double acc = 0.0;
  for (std::size_t i = 0; i < a.numel(); ++i) acc += a[i];
  return acc;
}

double mean(const Tensor& a) {
  util::check(a.numel() > 0, "mean of empty tensor");
  return sum(a) / static_cast<double>(a.numel());
}

float max_value(const Tensor& a) {
  util::check(a.numel() > 0, "max of empty tensor");
  float best = a[0];
  for (std::size_t i = 1; i < a.numel(); ++i) best = std::max(best, a[i]);
  return best;
}

float min_value(const Tensor& a) {
  util::check(a.numel() > 0, "min of empty tensor");
  float best = a[0];
  for (std::size_t i = 1; i < a.numel(); ++i) best = std::min(best, a[i]);
  return best;
}

std::size_t argmax(const Tensor& a) {
  util::check(a.numel() > 0, "argmax of empty tensor");
  std::size_t best = 0;
  for (std::size_t i = 1; i < a.numel(); ++i) {
    if (a[i] > a[best]) best = i;
  }
  return best;
}

double squared_norm(const Tensor& a) {
  double acc = 0.0;
  for (std::size_t i = 0; i < a.numel(); ++i) {
    acc += static_cast<double>(a[i]) * static_cast<double>(a[i]);
  }
  return acc;
}

double norm(const Tensor& a) { return std::sqrt(squared_norm(a)); }

std::size_t count_nonzero(const Tensor& a, float eps) {
  std::size_t n = 0;
  for (std::size_t i = 0; i < a.numel(); ++i) {
    if (std::fabs(a[i]) > eps) ++n;
  }
  return n;
}

std::vector<std::size_t> argmax_rows(const Tensor& a) {
  util::check(a.rank() == 2, "argmax_rows requires a rank-2 tensor");
  const std::size_t rows = a.dim(0);
  const std::size_t cols = a.dim(1);
  std::vector<std::size_t> out(rows);
  for (std::size_t r = 0; r < rows; ++r) {
    std::size_t best = 0;
    for (std::size_t c = 1; c < cols; ++c) {
      if (a[r * cols + c] > a[r * cols + best]) best = c;
    }
    out[r] = best;
  }
  return out;
}

bool has_nonfinite(const Tensor& a) {
  for (std::size_t i = 0; i < a.numel(); ++i) {
    if (!std::isfinite(a[i])) return true;
  }
  return false;
}

}  // namespace dstee::tensor
