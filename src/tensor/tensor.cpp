#include "tensor/tensor.hpp"

#include <cmath>
#include <sstream>

#include "util/check.hpp"

namespace dstee::tensor {

Tensor::Tensor(Shape shape, std::vector<float> values)
    : shape_(std::move(shape)), data_(std::move(values)) {
  util::check(data_.size() == shape_.numel(),
              "value count does not match shape numel");
}

Tensor Tensor::from_vector(std::vector<float> values) {
  const std::size_t n = values.size();
  return Tensor(Shape({n}), std::move(values));
}

Tensor Tensor::full(Shape shape, float value) {
  Tensor t(std::move(shape));
  t.fill(value);
  return t;
}

float& Tensor::at(std::size_t i) {
  util::check(i < data_.size(), "flat index out of range");
  return data_[i];
}

float Tensor::at(std::size_t i) const {
  util::check(i < data_.size(), "flat index out of range");
  return data_[i];
}

float& Tensor::at2(std::size_t i, std::size_t j) {
  util::check(rank() == 2, "at2 requires a rank-2 tensor");
  util::check(i < dim(0) && j < dim(1), "2-d index out of range");
  return data_[i * dim(1) + j];
}

float Tensor::at2(std::size_t i, std::size_t j) const {
  return const_cast<Tensor*>(this)->at2(i, j);
}

float& Tensor::at4(std::size_t n, std::size_t c, std::size_t h, std::size_t w) {
  util::check(rank() == 4, "at4 requires a rank-4 tensor");
  util::check(n < dim(0) && c < dim(1) && h < dim(2) && w < dim(3),
              "4-d index out of range");
  return data_[((n * dim(1) + c) * dim(2) + h) * dim(3) + w];
}

float Tensor::at4(std::size_t n, std::size_t c, std::size_t h,
                  std::size_t w) const {
  return const_cast<Tensor*>(this)->at4(n, c, h, w);
}

void Tensor::fill(float value) {
  for (auto& x : data_) x = value;
}

Tensor Tensor::reshaped(Shape new_shape) const {
  util::check(new_shape.numel() == numel(),
              "reshape must preserve element count");
  Tensor out = *this;
  out.shape_ = std::move(new_shape);
  return out;
}

void Tensor::reshape_in_place(Shape new_shape) {
  util::check(new_shape.numel() == numel(),
              "reshape must preserve element count");
  shape_ = std::move(new_shape);
}

bool Tensor::equals(const Tensor& other) const {
  return shape_ == other.shape_ && data_ == other.data_;
}

bool Tensor::allclose(const Tensor& other, float tol) const {
  if (shape_ != other.shape_) return false;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    if (std::fabs(data_[i] - other.data_[i]) > tol) return false;
  }
  return true;
}

std::string Tensor::to_string(std::size_t max_values) const {
  std::ostringstream os;
  os << "Tensor" << shape_.to_string() << " {";
  const std::size_t n = std::min(max_values, data_.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (i > 0) os << ", ";
    os << data_[i];
  }
  if (data_.size() > n) os << ", ...";
  os << "}";
  return os.str();
}

}  // namespace dstee::tensor
