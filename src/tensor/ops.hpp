// Elementwise operations and reductions over Tensor.
//
// Free functions keep Tensor itself minimal (Core Guidelines C.4: make a
// function a member only if it needs access to the representation).
#pragma once

#include <functional>

#include "tensor/tensor.hpp"

namespace dstee::tensor {

// ---- elementwise binary (shapes must match exactly; no broadcasting) -----

/// out = a + b
Tensor add(const Tensor& a, const Tensor& b);
/// out = a - b
Tensor sub(const Tensor& a, const Tensor& b);
/// out = a ⊙ b (Hadamard)
Tensor mul(const Tensor& a, const Tensor& b);
/// out = a / b (caller guarantees no zero divisors)
Tensor div(const Tensor& a, const Tensor& b);

/// a += b, a -= b, a ⊙= b — in-place variants used in training loops.
void add_inplace(Tensor& a, const Tensor& b);
void sub_inplace(Tensor& a, const Tensor& b);
void mul_inplace(Tensor& a, const Tensor& b);

/// a += alpha * b (axpy).
void axpy_inplace(Tensor& a, float alpha, const Tensor& b);

// ---- elementwise scalar ---------------------------------------------------

Tensor add_scalar(const Tensor& a, float s);
Tensor mul_scalar(const Tensor& a, float s);
void mul_scalar_inplace(Tensor& a, float s);

// ---- elementwise unary ----------------------------------------------------

/// |a| elementwise — the exploitation score uses the absolute gradient.
Tensor abs(const Tensor& a);
/// sign(a) ∈ {-1, 0, +1} elementwise.
Tensor sign(const Tensor& a);
/// Applies `f` to each element.
Tensor map(const Tensor& a, const std::function<float(float)>& f);
void map_inplace(Tensor& a, const std::function<float(float)>& f);

// ---- reductions -------------------------------------------------------------

/// Sum of all elements (double accumulator for stability).
double sum(const Tensor& a);
/// Mean of all elements.
double mean(const Tensor& a);
/// Maximum element value; requires numel > 0.
float max_value(const Tensor& a);
/// Minimum element value; requires numel > 0.
float min_value(const Tensor& a);
/// Index of the maximum element (first on ties).
std::size_t argmax(const Tensor& a);
/// Squared L2 norm Σ aᵢ².
double squared_norm(const Tensor& a);
/// L2 norm.
double norm(const Tensor& a);
/// Number of nonzero elements (|a| > eps).
std::size_t count_nonzero(const Tensor& a, float eps = 0.0f);

/// Row-wise argmax for a rank-2 tensor — used for classification accuracy.
std::vector<std::size_t> argmax_rows(const Tensor& a);

/// True if any element is NaN or infinite (training-divergence guard).
bool has_nonfinite(const Tensor& a);

}  // namespace dstee::tensor
