// Dense matrix multiplication kernels. These back Linear layers and the
// im2col convolution path, so they are the hot spot of the whole library.
#pragma once

#include "tensor/tensor.hpp"

namespace dstee::tensor {

/// C = A·B for rank-2 tensors A[m,k], B[k,n] → C[m,n].
Tensor matmul(const Tensor& a, const Tensor& b);

/// C = A·Bᵀ for A[m,k], B[n,k] → C[m,n]. Avoids materializing transposes in
/// backward passes.
Tensor matmul_nt(const Tensor& a, const Tensor& b);

/// C = Aᵀ·B for A[k,m], B[k,n] → C[m,n].
Tensor matmul_tn(const Tensor& a, const Tensor& b);

/// C += A·B (accumulating variant; shapes as in matmul).
void matmul_accumulate(const Tensor& a, const Tensor& b, Tensor& c);

/// Bᵀ for a rank-2 tensor.
Tensor transpose(const Tensor& a);

}  // namespace dstee::tensor
