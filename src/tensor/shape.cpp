#include "tensor/shape.hpp"

#include <sstream>

#include "util/check.hpp"

namespace dstee::tensor {

std::size_t Shape::dim(std::size_t axis) const {
  util::check(axis < dims_.size(), "shape axis out of range");
  return dims_[axis];
}

std::size_t Shape::numel() const {
  std::size_t n = 1;
  for (const auto d : dims_) n *= d;
  return n;
}

Shape Shape::prepended(std::size_t extent) const {
  std::vector<std::size_t> dims;
  dims.reserve(dims_.size() + 1);
  dims.push_back(extent);
  dims.insert(dims.end(), dims_.begin(), dims_.end());
  return Shape(std::move(dims));
}

std::vector<std::size_t> Shape::strides() const {
  std::vector<std::size_t> s(dims_.size(), 1);
  for (std::size_t i = dims_.size(); i-- > 1;) {
    s[i - 1] = s[i] * dims_[i];
  }
  return s;
}

std::string Shape::to_string() const {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    if (i > 0) os << ", ";
    os << dims_[i];
  }
  os << "]";
  return os.str();
}

}  // namespace dstee::tensor
