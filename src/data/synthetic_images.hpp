// Synthetic class-conditional image dataset — the stand-in for CIFAR-10,
// CIFAR-100 and ImageNet (see DESIGN.md, substitution table).
//
// Generation model: each class k has a prototype image P_k built from
// low-frequency random structure (sums of random 2-d cosine bumps, so
// nearby pixels correlate like natural images); an example is
//   x = signal · P_k + spatial_noise + pixel_noise,
// normalized per channel. Difficulty is controlled by the signal-to-noise
// knob, chosen so that (a) a dense model reaches high-but-not-saturated
// accuracy in a few epochs and (b) model capacity still matters — which is
// what the paper's accuracy-vs-sparsity comparisons require.
#pragma once

#include "data/dataset.hpp"
#include "util/rng.hpp"

namespace dstee::data {

struct SyntheticImageConfig {
  std::size_t num_classes = 10;
  std::size_t channels = 3;
  std::size_t image_size = 16;
  std::size_t train_per_class = 64;
  std::size_t test_per_class = 16;
  double signal = 1.0;           ///< prototype strength
  double spatial_noise = 0.6;    ///< correlated noise strength
  double pixel_noise = 0.4;      ///< iid noise strength
  std::size_t prototype_waves = 6;  ///< cosine bumps per prototype
  std::uint64_t seed = 1;
};

/// Train or test split of the synthetic image distribution. Both splits
/// built from the same config share prototypes (same underlying
/// distribution, disjoint sample streams).
class SyntheticImageDataset : public Dataset {
 public:
  enum class Split { kTrain, kTest };

  SyntheticImageDataset(const SyntheticImageConfig& config, Split split);

  const SyntheticImageConfig& config() const { return config_; }

 private:
  SyntheticImageConfig config_;
};

}  // namespace dstee::data
