#include "data/dataloader.hpp"

#include "util/check.hpp"

namespace dstee::data {

DataLoader::DataLoader(const Dataset& dataset, std::size_t batch_size,
                       util::Rng rng)
    : dataset_(&dataset), batch_size_(batch_size), rng_(rng) {
  util::check(batch_size > 0, "batch size must be positive");
  util::check(dataset.size() > 0, "dataset is empty");
  start_epoch();
}

void DataLoader::start_epoch() {
  order_ = rng_.permutation(dataset_->size());
  cursor_ = 0;
}

bool DataLoader::has_next() const { return cursor_ < order_.size(); }

std::vector<std::size_t> DataLoader::next_indices() {
  util::check(has_next(), "epoch exhausted; call start_epoch()");
  const std::size_t end = std::min(cursor_ + batch_size_, order_.size());
  std::vector<std::size_t> indices(order_.begin() + cursor_,
                                   order_.begin() + end);
  cursor_ = end;
  return indices;
}

DataLoader::Batch DataLoader::next_batch() {
  const auto indices = next_indices();
  return Batch{dataset_->batch(indices), dataset_->batch_labels(indices)};
}

std::size_t DataLoader::batches_per_epoch() const {
  return (dataset_->size() + batch_size_ - 1) / batch_size_;
}

}  // namespace dstee::data
