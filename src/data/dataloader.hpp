// Minibatch iteration with per-epoch shuffling.
#pragma once

#include "data/dataset.hpp"
#include "util/rng.hpp"

namespace dstee::data {

/// Yields shuffled minibatches over a dataset. The final short batch is
/// kept (not dropped) so every example is seen each epoch.
class DataLoader {
 public:
  DataLoader(const Dataset& dataset, std::size_t batch_size, util::Rng rng);

  /// Reshuffles and rewinds. Called automatically when an epoch completes.
  void start_epoch();

  /// True while the current epoch has batches left.
  bool has_next() const;

  /// Index list of the next batch (advances the cursor).
  std::vector<std::size_t> next_indices();

  /// Convenience: materializes the next batch.
  struct Batch {
    tensor::Tensor examples;
    std::vector<std::size_t> labels;
  };
  Batch next_batch();

  std::size_t batches_per_epoch() const;
  std::size_t batch_size() const { return batch_size_; }
  const Dataset& dataset() const { return *dataset_; }

 private:
  const Dataset* dataset_;
  std::size_t batch_size_;
  util::Rng rng_;
  std::vector<std::size_t> order_;
  std::size_t cursor_ = 0;
};

}  // namespace dstee::data
