// Dataset abstraction: indexed (example, label) pairs held in memory.
#pragma once

#include <cstddef>
#include <vector>

#include "tensor/shape.hpp"
#include "tensor/tensor.hpp"

namespace dstee::data {

/// In-memory labeled dataset. Examples share one shape; labels are class
/// indices. Implementations fill `examples_` / `labels_` at construction.
class Dataset {
 public:
  virtual ~Dataset() = default;

  std::size_t size() const { return labels_.size(); }
  const tensor::Shape& example_shape() const { return example_shape_; }
  std::size_t num_classes() const { return num_classes_; }

  /// Copies example `i` into a tensor of `example_shape()`.
  tensor::Tensor example(std::size_t i) const;
  std::size_t label(std::size_t i) const;

  /// Assembles a batch tensor [indices.size(), ...example dims] plus its
  /// label vector.
  tensor::Tensor batch(const std::vector<std::size_t>& indices) const;
  std::vector<std::size_t> batch_labels(
      const std::vector<std::size_t>& indices) const;

 protected:
  Dataset(tensor::Shape example_shape, std::size_t num_classes)
      : example_shape_(std::move(example_shape)), num_classes_(num_classes) {}

  tensor::Shape example_shape_;
  std::size_t num_classes_;
  std::vector<float> examples_;  // size() * example numel, contiguous
  std::vector<std::size_t> labels_;
};

}  // namespace dstee::data
