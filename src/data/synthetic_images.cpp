#include "data/synthetic_images.hpp"

#include <cmath>
#include <numbers>

#include "util/check.hpp"

namespace dstee::data {

namespace {

// Prototype: sum of random-frequency, random-phase 2-d cosines per channel.
// Low frequencies dominate, giving natural-image-like local correlation.
std::vector<float> make_prototype(const SyntheticImageConfig& cfg,
                                  util::Rng& rng) {
  const std::size_t hw = cfg.image_size;
  std::vector<float> proto(cfg.channels * hw * hw, 0.0f);
  for (std::size_t c = 0; c < cfg.channels; ++c) {
    for (std::size_t w = 0; w < cfg.prototype_waves; ++w) {
      const double fx = rng.uniform(0.5, 3.0);
      const double fy = rng.uniform(0.5, 3.0);
      const double px = rng.uniform(0.0, 2.0 * std::numbers::pi);
      const double py = rng.uniform(0.0, 2.0 * std::numbers::pi);
      const double amp = rng.uniform(0.4, 1.0);
      for (std::size_t y = 0; y < hw; ++y) {
        for (std::size_t x = 0; x < hw; ++x) {
          const double v =
              amp *
              std::cos(fx * 2.0 * std::numbers::pi * x / hw + px) *
              std::cos(fy * 2.0 * std::numbers::pi * y / hw + py);
          proto[(c * hw + y) * hw + x] += static_cast<float>(v);
        }
      }
    }
  }
  // Normalize prototype to unit RMS so `signal` is meaningful.
  double rms = 0.0;
  for (const float v : proto) rms += static_cast<double>(v) * v;
  rms = std::sqrt(rms / static_cast<double>(proto.size()));
  if (rms > 0.0) {
    for (auto& v : proto) v = static_cast<float>(v / rms);
  }
  return proto;
}

// Correlated (smoothed) noise field: one low-frequency cosine per draw.
void add_spatial_noise(std::vector<float>& img,
                       const SyntheticImageConfig& cfg, util::Rng& rng) {
  const std::size_t hw = cfg.image_size;
  for (std::size_t c = 0; c < cfg.channels; ++c) {
    const double fx = rng.uniform(0.5, 2.0);
    const double fy = rng.uniform(0.5, 2.0);
    const double px = rng.uniform(0.0, 2.0 * std::numbers::pi);
    const double py = rng.uniform(0.0, 2.0 * std::numbers::pi);
    const double amp = cfg.spatial_noise * rng.normal(0.0, 1.0);
    for (std::size_t y = 0; y < hw; ++y) {
      for (std::size_t x = 0; x < hw; ++x) {
        const double v =
            amp * std::cos(fx * 2.0 * std::numbers::pi * x / hw + px) *
            std::cos(fy * 2.0 * std::numbers::pi * y / hw + py);
        img[(c * hw + y) * hw + x] += static_cast<float>(v);
      }
    }
  }
}

}  // namespace

SyntheticImageDataset::SyntheticImageDataset(
    const SyntheticImageConfig& config, Split split)
    : Dataset(tensor::Shape({config.channels, config.image_size,
                             config.image_size}),
              config.num_classes),
      config_(config) {
  util::check(config.num_classes >= 2, "need at least two classes");
  util::check(config.image_size >= 4, "image size must be >= 4");

  util::Rng base(config.seed);
  // Prototypes are shared between splits (same distribution).
  util::Rng proto_rng = base.fork("images/prototypes");
  std::vector<std::vector<float>> prototypes;
  prototypes.reserve(config.num_classes);
  for (std::size_t k = 0; k < config.num_classes; ++k) {
    prototypes.push_back(make_prototype(config, proto_rng));
  }

  const std::size_t per_class = split == Split::kTrain
                                    ? config.train_per_class
                                    : config.test_per_class;
  util::Rng sample_rng =
      base.fork(split == Split::kTrain ? "images/train" : "images/test");

  const std::size_t numel = example_shape_.numel();
  examples_.reserve(config.num_classes * per_class * numel);
  labels_.reserve(config.num_classes * per_class);

  for (std::size_t k = 0; k < config.num_classes; ++k) {
    for (std::size_t s = 0; s < per_class; ++s) {
      std::vector<float> img(numel);
      for (std::size_t i = 0; i < numel; ++i) {
        img[i] = static_cast<float>(config.signal) * prototypes[k][i];
      }
      add_spatial_noise(img, config, sample_rng);
      for (std::size_t i = 0; i < numel; ++i) {
        img[i] += static_cast<float>(
            config.pixel_noise * sample_rng.normal(0.0, 1.0));
      }
      examples_.insert(examples_.end(), img.begin(), img.end());
      labels_.push_back(k);
    }
  }
}

}  // namespace dstee::data
