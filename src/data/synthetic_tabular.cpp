#include "data/synthetic_tabular.hpp"

#include <cmath>

#include "util/check.hpp"

namespace dstee::data {

SyntheticTabularDataset::SyntheticTabularDataset(
    const SyntheticTabularConfig& config, Split split)
    : Dataset(tensor::Shape({config.features}), config.num_classes),
      config_(config) {
  util::check(config.num_classes >= 2, "need at least two classes");
  util::check(config.features >= 2, "need at least two features");

  util::Rng base(config.seed);
  util::Rng center_rng = base.fork("tabular/centers");
  std::vector<std::vector<float>> centers;
  centers.reserve(config.num_classes);
  for (std::size_t k = 0; k < config.num_classes; ++k) {
    // Random direction scaled to the separation radius.
    std::vector<float> c(config.features);
    double norm = 0.0;
    for (auto& v : c) {
      v = static_cast<float>(center_rng.normal());
      norm += static_cast<double>(v) * v;
    }
    norm = std::sqrt(norm);
    for (auto& v : c) {
      v = static_cast<float>(v / norm * config.class_separation);
    }
    centers.push_back(std::move(c));
  }

  const std::size_t per_class = split == Split::kTrain
                                    ? config.train_per_class
                                    : config.test_per_class;
  util::Rng sample_rng =
      base.fork(split == Split::kTrain ? "tabular/train" : "tabular/test");
  examples_.reserve(config.num_classes * per_class * config.features);
  labels_.reserve(config.num_classes * per_class);
  for (std::size_t k = 0; k < config.num_classes; ++k) {
    for (std::size_t s = 0; s < per_class; ++s) {
      for (std::size_t f = 0; f < config.features; ++f) {
        examples_.push_back(
            centers[k][f] +
            static_cast<float>(sample_rng.normal(0.0, config.noise)));
      }
      labels_.push_back(k);
    }
  }
}

}  // namespace dstee::data
