#include "data/dataset.hpp"

#include "util/check.hpp"

namespace dstee::data {

tensor::Tensor Dataset::example(std::size_t i) const {
  util::check(i < size(), "example index out of range");
  const std::size_t n = example_shape_.numel();
  std::vector<float> values(examples_.begin() + i * n,
                            examples_.begin() + (i + 1) * n);
  return tensor::Tensor(example_shape_, std::move(values));
}

std::size_t Dataset::label(std::size_t i) const {
  util::check(i < size(), "label index out of range");
  return labels_[i];
}

tensor::Tensor Dataset::batch(const std::vector<std::size_t>& indices) const {
  util::check(!indices.empty(), "batch of zero examples");
  const std::size_t n = example_shape_.numel();
  std::vector<std::size_t> dims{indices.size()};
  for (const auto d : example_shape_.dims()) dims.push_back(d);
  tensor::Tensor out{tensor::Shape(dims)};
  for (std::size_t b = 0; b < indices.size(); ++b) {
    util::check(indices[b] < size(), "batch index out of range");
    const float* src = examples_.data() + indices[b] * n;
    float* dst = out.raw() + b * n;
    for (std::size_t j = 0; j < n; ++j) dst[j] = src[j];
  }
  return out;
}

std::vector<std::size_t> Dataset::batch_labels(
    const std::vector<std::size_t>& indices) const {
  std::vector<std::size_t> out;
  out.reserve(indices.size());
  for (const auto i : indices) {
    util::check(i < size(), "batch label index out of range");
    out.push_back(labels_[i]);
  }
  return out;
}

}  // namespace dstee::data
