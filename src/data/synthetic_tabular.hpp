// Synthetic tabular classification (Gaussian clusters on a hypersphere) —
// a fast workload for MLP unit/integration tests and the quickstart.
#pragma once

#include "data/dataset.hpp"
#include "util/rng.hpp"

namespace dstee::data {

struct SyntheticTabularConfig {
  std::size_t num_classes = 4;
  std::size_t features = 32;
  std::size_t train_per_class = 128;
  std::size_t test_per_class = 32;
  double class_separation = 2.5;  ///< distance between cluster centers
  double noise = 1.0;             ///< within-cluster std
  std::uint64_t seed = 7;
};

/// Gaussian-cluster classification dataset.
class SyntheticTabularDataset : public Dataset {
 public:
  enum class Split { kTrain, kTest };

  SyntheticTabularDataset(const SyntheticTabularConfig& config, Split split);

  const SyntheticTabularConfig& config() const { return config_; }

 private:
  SyntheticTabularConfig config_;
};

}  // namespace dstee::data
