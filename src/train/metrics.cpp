#include "train/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "tensor/ops.hpp"
#include "util/check.hpp"

namespace dstee::train {

double accuracy(const tensor::Tensor& logits,
                std::span<const std::size_t> labels) {
  util::check(logits.rank() == 2, "accuracy expects [batch, classes]");
  util::check(labels.size() == logits.dim(0),
              "label count must equal the batch size");
  const auto predictions = tensor::argmax_rows(logits);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (predictions[i] == labels[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(labels.size());
}

double binary_accuracy(const tensor::Tensor& logits,
                       std::span<const float> targets) {
  util::check(logits.numel() == targets.size(),
              "one logit per target required");
  util::check(!targets.empty(), "binary accuracy of empty batch");
  std::size_t correct = 0;
  for (std::size_t i = 0; i < targets.size(); ++i) {
    const bool predicted_positive = logits[i] > 0.0f;  // σ(z) > 0.5 ⟺ z > 0
    if (predicted_positive == (targets[i] > 0.5f)) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(targets.size());
}

double auc(const tensor::Tensor& scores, std::span<const float> targets) {
  util::check(scores.numel() == targets.size(),
              "one score per target required");
  // Rank-based (Mann–Whitney U) with midrank tie handling.
  const std::size_t n = targets.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return scores[a] < scores[b];
  });
  std::vector<double> rank(n);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && scores[order[j + 1]] == scores[order[i]]) ++j;
    const double midrank = (static_cast<double>(i) + static_cast<double>(j)) /
                               2.0 + 1.0;
    for (std::size_t k = i; k <= j; ++k) rank[order[k]] = midrank;
    i = j + 1;
  }
  double pos_rank_sum = 0.0;
  std::size_t pos = 0;
  for (std::size_t k = 0; k < n; ++k) {
    if (targets[k] > 0.5f) {
      pos_rank_sum += rank[k];
      ++pos;
    }
  }
  const std::size_t neg = n - pos;
  util::check(pos > 0 && neg > 0, "auc requires both classes present");
  const double u = pos_rank_sum - static_cast<double>(pos) *
                                      (static_cast<double>(pos) + 1.0) / 2.0;
  return u / (static_cast<double>(pos) * static_cast<double>(neg));
}

void MeanStd::add(double value) {
  ++n_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (value - mean_);
}

double MeanStd::mean() const { return n_ > 0 ? mean_ : 0.0; }

double MeanStd::stddev() const {
  if (n_ < 2) return 0.0;
  return std::sqrt(m2_ / static_cast<double>(n_ - 1));
}

}  // namespace dstee::train
