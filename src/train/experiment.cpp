#include "train/experiment.hpp"

#include <algorithm>
#include <memory>

#include "data/dataloader.hpp"
#include "methods/admm.hpp"
#include "methods/drop_policy.hpp"
#include "methods/dst_engine.hpp"
#include "methods/gap.hpp"
#include "methods/gmp.hpp"
#include "methods/grow_policy.hpp"
#include "methods/static_pruners.hpp"
#include "nn/losses.hpp"
#include "optim/lr_schedule.hpp"
#include "optim/optimizer.hpp"
#include "sparse/exploration.hpp"
#include "sparse/sparse_model.hpp"
#include "util/check.hpp"
#include "util/string_util.hpp"

namespace dstee::train {

MethodKind parse_method(const std::string& name) {
  const std::string n = util::to_lower(name);
  if (n == "dense") return MethodKind::kDense;
  if (n == "snip") return MethodKind::kSnip;
  if (n == "grasp") return MethodKind::kGrasp;
  if (n == "synflow") return MethodKind::kSynFlow;
  if (n == "magnitude") return MethodKind::kStaticMagnitude;
  if (n == "random") return MethodKind::kStaticRandom;
  if (n == "str") return MethodKind::kStr;
  if (n == "sis") return MethodKind::kSis;
  if (n == "deepr") return MethodKind::kDeepR;
  if (n == "set") return MethodKind::kSet;
  if (n == "rigl") return MethodKind::kRigl;
  if (n == "rigl-itop" || n == "riglitop") return MethodKind::kRiglItop;
  if (n == "mest") return MethodKind::kMest;
  if (n == "snfs") return MethodKind::kSnfs;
  if (n == "dsr") return MethodKind::kDsr;
  if (n == "dst-ee" || n == "dstee") return MethodKind::kDstEe;
  if (n == "gap") return MethodKind::kGap;
  util::fail("unknown method: " + name);
}

std::string to_string(MethodKind kind) {
  switch (kind) {
    case MethodKind::kDense: return "Dense";
    case MethodKind::kSnip: return "SNIP";
    case MethodKind::kGrasp: return "GraSP";
    case MethodKind::kSynFlow: return "SynFlow";
    case MethodKind::kStaticMagnitude: return "Magnitude";
    case MethodKind::kStaticRandom: return "Random";
    case MethodKind::kStr: return "STR";
    case MethodKind::kSis: return "SIS";
    case MethodKind::kDeepR: return "DeepR";
    case MethodKind::kSet: return "SET";
    case MethodKind::kRigl: return "RigL";
    case MethodKind::kRiglItop: return "RigL-ITOP";
    case MethodKind::kMest: return "MEST";
    case MethodKind::kSnfs: return "SNFS";
    case MethodKind::kDsr: return "DSR";
    case MethodKind::kDstEe: return "DST-EE";
    case MethodKind::kGap: return "GaP";
  }
  return "?";
}

bool is_dynamic(MethodKind kind) {
  switch (kind) {
    case MethodKind::kDeepR:
    case MethodKind::kSet:
    case MethodKind::kRigl:
    case MethodKind::kRiglItop:
    case MethodKind::kMest:
    case MethodKind::kSnfs:
    case MethodKind::kDsr:
    case MethodKind::kDstEe:
      return true;
    default:
      return false;
  }
}

bool is_dense_to_sparse(MethodKind kind) {
  // GaP is grouped here: like STR/SIS it trains dense regions on a
  // schedule and ends at the target sparsity.
  return kind == MethodKind::kStr || kind == MethodKind::kSis ||
         kind == MethodKind::kGap;
}

bool is_static(MethodKind kind) {
  switch (kind) {
    case MethodKind::kSnip:
    case MethodKind::kGrasp:
    case MethodKind::kSynFlow:
    case MethodKind::kStaticMagnitude:
    case MethodKind::kStaticRandom:
      return true;
    default:
      return false;
  }
}

namespace {

// Assembles the DstEngineConfig for each dynamic method. This is where the
// methods differ — everything else in the run is shared.
methods::DstEngineConfig make_engine_config(MethodKind kind,
                                            const DstParams& dst,
                                            std::size_t total_iterations) {
  methods::DstEngineConfig cfg;
  cfg.schedule.delta_t = dst.delta_t;
  cfg.schedule.total_iterations = total_iterations;
  cfg.schedule.stop_fraction = dst.stop_fraction;
  cfg.schedule.initial_drop_fraction = dst.drop_fraction;
  cfg.schedule.decay = methods::DropFractionDecay::kCosine;
  cfg.drop = std::make_unique<methods::MagnitudeDrop>();

  switch (kind) {
    case MethodKind::kDeepR:
      cfg.drop = std::make_unique<methods::SignFlipDrop>();
      cfg.grow = std::make_unique<methods::RandomGrow>();
      cfg.schedule.decay = methods::DropFractionDecay::kConstant;
      break;
    case MethodKind::kSet:
      cfg.grow = std::make_unique<methods::RandomGrow>();
      cfg.schedule.decay = methods::DropFractionDecay::kConstant;
      break;
    case MethodKind::kRigl:
      cfg.grow = std::make_unique<methods::GradientGrow>();
      break;
    case MethodKind::kRiglItop:
      // ITOP regime: larger replacement budget, updates never stop early.
      cfg.grow = std::make_unique<methods::GradientGrow>();
      cfg.schedule.initial_drop_fraction =
          std::min(0.8, 2.0 * dst.drop_fraction);
      cfg.schedule.stop_fraction = 1.0;
      break;
    case MethodKind::kMest:
      cfg.drop = std::make_unique<methods::MagnitudeGradientDrop>(1.0);
      cfg.grow = std::make_unique<methods::RandomGrow>();
      cfg.schedule.decay = methods::DropFractionDecay::kLinear;
      break;
    case MethodKind::kSnfs:
      cfg.grow = std::make_unique<methods::MomentumGrow>(0.9);
      cfg.redistribute_across_layers = true;
      break;
    case MethodKind::kDsr:
      cfg.grow = std::make_unique<methods::RandomGrow>();
      cfg.redistribute_across_layers = true;
      break;
    case MethodKind::kDstEe: {
      methods::DstEeGrow::Config ee;
      ee.c = dst.c;
      ee.eps = dst.eps;
      cfg.grow = std::make_unique<methods::DstEeGrow>(ee);
      break;
    }
    default:
      util::fail("make_engine_config called for a non-dynamic method");
  }
  return cfg;
}

// Mean density over the GMP ramp (used for dense-to-sparse training FLOPs).
double gmp_mean_density(const methods::GradualMagnitudePruner& gmp,
                        std::size_t total_iterations) {
  double acc = 0.0;
  const std::size_t samples = 100;
  for (std::size_t i = 0; i < samples; ++i) {
    const std::size_t t = i * total_iterations / samples;
    acc += 1.0 - gmp.sparsity_at(t);
  }
  return acc / static_cast<double>(samples);
}

std::vector<double> layer_density_vector(const sparse::SparseModel& model) {
  std::vector<double> d;
  d.reserve(model.num_layers());
  for (std::size_t i = 0; i < model.num_layers(); ++i) {
    d.push_back(model.layer(i).density());
  }
  return d;
}

}  // namespace

ClassificationResult run_classification(nn::Module& model,
                                        const sparse::FlopsModel* flops,
                                        const data::Dataset& train_set,
                                        const data::Dataset& test_set,
                                        const ClassificationConfig& config) {
  util::Rng rng(config.seed);
  const MethodKind method = config.method;

  // Dynamic methods start sparse; dense/static/GMP start dense.
  const double initial_sparsity = is_dynamic(method) ? config.sparsity : 0.0;
  sparse::SparseModel smodel(model, initial_sparsity, config.distribution,
                             rng);

  data::DataLoader loader(train_set, config.batch_size, rng.fork("loader"));
  const std::size_t total_iterations =
      config.epochs * loader.batches_per_epoch();

  optim::Sgd::Config sgd_cfg;
  sgd_cfg.lr = config.lr;
  sgd_cfg.momentum = config.momentum;
  sgd_cfg.weight_decay = config.weight_decay;
  optim::Sgd optimizer(model.parameters(), sgd_cfg);
  optim::CosineAnnealingLr schedule(config.lr, total_iterations);

  // ---- static pruning at initialization --------------------------------
  if (is_static(method)) {
    methods::StaticPruneConfig prune_cfg;
    prune_cfg.sparsity = config.sparsity;
    prune_cfg.distribution = config.distribution;
    // SNIP and GraSP as published use a single global saliency threshold —
    // the source of their collapse at extreme sparsity (whole layers are
    // starved). SynFlow and the magnitude/random controls keep layer-wise
    // budgets (SynFlow's iterative schedule exists precisely to avoid
    // layer collapse).
    prune_cfg.global_topk =
        method == MethodKind::kSnip || method == MethodKind::kGrasp;

    if (method == MethodKind::kStaticRandom) {
      methods::prune_random(smodel, prune_cfg, rng);
    } else if (method == MethodKind::kStaticMagnitude) {
      prune_magnitude(smodel, prune_cfg);
    } else if (method == MethodKind::kSynFlow) {
      prune_synflow(model, smodel, train_set.example_shape(), prune_cfg);
    } else {
      // SNIP / GraSP score on one held batch.
      util::Rng score_rng = rng.fork("static/score-batch");
      const std::size_t score_batch =
          std::min<std::size_t>(train_set.size(), 2 * config.batch_size);
      const auto idx =
          score_rng.sample_without_replacement(train_set.size(), score_batch);
      std::vector<std::size_t> indices(idx.begin(), idx.end());
      const tensor::Tensor examples = train_set.batch(indices);
      const auto labels = train_set.batch_labels(indices);
      nn::SoftmaxCrossEntropy score_loss;
      const auto eval_grads = [&] {
        const tensor::Tensor logits = model.forward(examples);
        score_loss.forward(logits, labels);
        model.backward(score_loss.backward());
      };
      if (method == MethodKind::kSnip) {
        prune_snip(model, smodel, eval_grads, prune_cfg);
      } else {
        prune_grasp(model, smodel, eval_grads, prune_cfg);
      }
    }
  }

  // ---- dense-to-sparse schedules -----------------------------------------
  std::unique_ptr<methods::GapScheduler> gap;
  if (method == MethodKind::kGap) {
    methods::GapConfig gap_cfg;
    gap_cfg.sparsity = config.sparsity;
    gap_cfg.distribution = config.distribution;
    // Choose partitions/phases so every partition gets at least two dense
    // phases within the run.
    gap_cfg.num_partitions = 4;
    std::size_t layers = smodel.num_layers();
    if (layers < gap_cfg.num_partitions) gap_cfg.num_partitions = std::max<std::size_t>(2, layers);
    gap_cfg.phase_iterations = std::max<std::size_t>(
        1, total_iterations / (2 * gap_cfg.num_partitions + 1));
    // GaP starts from the sparse topology, then densifies one partition at
    // a time; give it the target-sparsity masks first.
    methods::StaticPruneConfig seed_cfg;
    seed_cfg.sparsity = config.sparsity;
    seed_cfg.distribution = config.distribution;
    prune_magnitude(smodel, seed_cfg);
    gap = std::make_unique<methods::GapScheduler>(smodel, gap_cfg);
  }

  std::unique_ptr<methods::GradualMagnitudePruner> gmp;
  if (is_dense_to_sparse(method) && method != MethodKind::kGap) {
    methods::GmpConfig gmp_cfg;
    gmp_cfg.final_sparsity = config.sparsity;
    gmp_cfg.distribution = config.distribution;
    // STR ramps late and slowly (thresholds grow over training); SIS
    // reaches the target sparsity sooner.
    if (method == MethodKind::kStr) {
      gmp_cfg.start_iteration = total_iterations / 10;
      gmp_cfg.end_iteration = (3 * total_iterations) / 4;
    } else {
      gmp_cfg.start_iteration = total_iterations / 20;
      gmp_cfg.end_iteration = total_iterations / 2;
    }
    gmp_cfg.frequency = std::max<std::size_t>(1, config.dst.delta_t / 2);
    gmp = std::make_unique<methods::GradualMagnitudePruner>(gmp_cfg);
  }

  // ---- dynamic drop-and-grow engine ------------------------------------
  std::unique_ptr<methods::DstEngine> engine;
  if (is_dynamic(method)) {
    engine = std::make_unique<methods::DstEngine>(
        smodel, optimizer,
        make_engine_config(method, config.dst, total_iterations),
        rng.fork("engine"));
  }

  Trainer trainer(model, optimizer, schedule, loader, test_set,
                  config.epochs);
  TrainHooks hooks;
  hooks.after_backward = [&](std::size_t iteration, double lr) {
    if (engine) engine->maybe_update(iteration, lr);
    if (gmp) gmp->maybe_prune(smodel, iteration);
    if (gap) gap->maybe_rotate(smodel, iteration);
  };
  hooks.before_step = [&] { smodel.apply_masks_to_grads(); };
  hooks.after_step = [&] { smodel.apply_masks_to_values(); };
  trainer.set_hooks(hooks);

  std::vector<EpochStats> history = trainer.run();
  if (gap) {
    // Final hard prune back to the target sparsity (last partition may
    // still be dense), then measure accuracy of the deployable model.
    methods::StaticPruneConfig final_cfg;
    final_cfg.sparsity = config.sparsity;
    final_cfg.distribution = config.distribution;
    prune_magnitude(smodel, final_cfg);
    history.back().test_accuracy = trainer.evaluate(test_set);
  }

  ClassificationResult result;
  result.history = history;
  result.final_test_accuracy = history.back().test_accuracy;
  result.final_train_loss = history.back().train_loss;
  for (const auto& e : history) {
    result.best_test_accuracy =
        std::max(result.best_test_accuracy, e.test_accuracy);
  }
  result.achieved_sparsity = smodel.global_sparsity();
  if (engine) {
    result.topology_rounds = engine->log().rounds();
    result.exploration_rate = engine->exploration().exploration_rate();
  } else if (is_static(method)) {
    // A static mask only ever exposes its initial active set.
    result.exploration_rate = 1.0 - config.sparsity;
  } else {
    // Dense and dense-to-sparse runs touch every weight at least once.
    result.exploration_rate = 1.0;
  }

  // ---- analytic FLOPs (Table II columns) --------------------------------
  if (flops != nullptr) {
    const double dense_fwd = flops->dense_forward_flops();
    const double dense_train = 3.0 * dense_fwd;
    const std::vector<double> final_densities = layer_density_vector(smodel);
    result.inference_flops_multiple =
        flops->sparse_forward_flops(final_densities) / dense_fwd;
    double train_flops = 0.0;
    if (method == MethodKind::kDense) {
      train_flops = dense_train;
    } else if (is_static(method)) {
      train_flops = flops->sparse_training_flops(final_densities);
    } else if (method == MethodKind::kGap) {
      // One of P partitions is dense at any time: mean density ≈
      // (P-1)/P · sparse + 1/P · 1.
      const double p = 4.0;
      std::vector<double> d(final_densities.size());
      for (std::size_t i = 0; i < d.size(); ++i) {
        d[i] = final_densities[i] * (p - 1.0) / p + 1.0 / p;
      }
      train_flops = flops->sparse_training_flops(d);
    } else if (is_dense_to_sparse(method)) {
      // Approximate with the schedule's mean density applied uniformly.
      const double mean_density = gmp_mean_density(*gmp, total_iterations);
      std::vector<double> d(final_densities.size(), mean_density);
      train_flops = flops->sparse_training_flops(d);
    } else {
      // Dynamic: amortized dense weight-gradient every ΔT for methods that
      // score growth with gradients; pure sparse steps otherwise.
      const bool needs_dense_grads =
          method == MethodKind::kRigl || method == MethodKind::kRiglItop ||
          method == MethodKind::kSnfs || method == MethodKind::kDstEe;
      train_flops = needs_dense_grads
                        ? flops->training_flops_with_dense_grad(
                              final_densities, config.dst.delta_t)
                        : flops->sparse_training_flops(final_densities);
    }
    result.train_flops_multiple = train_flops / dense_train;
  }
  return result;
}

LinkResult run_link_prediction(models::GnnLinkPredictor& model,
                               const tensor::Tensor& features,
                               const graph::LinkSplit& split,
                               const LinkConfig& config) {
  util::Rng rng(config.seed);

  const bool is_dst = config.method == LinkMethod::kDstEe;
  const double initial_sparsity = is_dst ? config.sparsity : 0.0;
  // Paper §V-B: uniform sparsity over the two FC layers.
  sparse::SparseModel smodel(model, initial_sparsity,
                             sparse::DistributionKind::kUniform, rng);

  optim::Adam::Config adam_cfg;
  adam_cfg.lr = config.lr;
  optim::Adam optimizer(model.parameters(), adam_cfg);

  LinkResult result;
  auto track = [&](const std::vector<LinkEpochStats>& history) {
    for (const auto& e : history) {
      result.history.push_back(e);
      result.best_test_accuracy =
          std::max(result.best_test_accuracy, e.test_accuracy);
      result.best_test_auc = std::max(result.best_test_auc, e.test_auc);
    }
    if (!history.empty()) {
      result.final_test_accuracy = history.back().test_accuracy;
    }
  };

  if (config.method == LinkMethod::kDense) {
    optim::ConstantLr schedule(config.lr);
    LinkPredictionTrainer trainer(model, features, split, optimizer, schedule,
                                  config.epochs);
    track(trainer.run());
  } else if (config.method == LinkMethod::kPruneFromDense) {
    // Phase 1: dense pretraining.
    optim::ConstantLr schedule(config.lr);
    {
      LinkPredictionTrainer trainer(model, features, split, optimizer,
                                    schedule, config.admm_epochs_each);
      trainer.run();  // best accuracy from the dense phase does not count —
                      // the paper reports the pruned model's accuracy
    }
    // Phase 2: reweighted training with the ADMM penalty.
    methods::AdmmConfig admm_cfg;
    admm_cfg.rho = config.admm_rho;
    admm_cfg.sparsity = config.sparsity;
    admm_cfg.projection_interval = 2;  // epochs are iterations here
    methods::AdmmPruner admm(smodel, admm_cfg);
    {
      LinkPredictionTrainer trainer(model, features, split, optimizer,
                                    schedule, config.admm_epochs_each);
      TrainHooks hooks;
      hooks.after_backward = [&](std::size_t iteration, double) {
        admm.add_penalty_gradients(smodel);
        admm.maybe_update_duals(smodel, iteration + 1);
      };
      trainer.set_hooks(hooks);
      trainer.run();
    }
    // Phase 3: hard prune, then retrain under the fixed mask.
    admm.finalize_mask(smodel);
    {
      LinkPredictionTrainer trainer(model, features, split, optimizer,
                                    schedule, config.admm_epochs_each);
      TrainHooks hooks;
      hooks.before_step = [&] { smodel.apply_masks_to_grads(); };
      hooks.after_step = [&] { smodel.apply_masks_to_values(); };
      trainer.set_hooks(hooks);
      track(trainer.run());
    }
  } else {
    // DST-EE sparse training from scratch.
    optim::ConstantLr schedule(config.lr);
    methods::DstEngineConfig engine_cfg;
    engine_cfg.schedule.delta_t =
        std::max<std::size_t>(1, config.dst.delta_t);
    engine_cfg.schedule.total_iterations = config.epochs;
    engine_cfg.schedule.stop_fraction = config.dst.stop_fraction;
    engine_cfg.schedule.initial_drop_fraction = config.dst.drop_fraction;
    engine_cfg.drop = std::make_unique<methods::MagnitudeDrop>();
    methods::DstEeGrow::Config ee{config.dst.c, config.dst.eps};
    engine_cfg.grow = std::make_unique<methods::DstEeGrow>(ee);
    methods::DstEngine engine(smodel, optimizer, std::move(engine_cfg),
                              rng.fork("engine"));

    LinkPredictionTrainer trainer(model, features, split, optimizer, schedule,
                                  config.epochs);
    TrainHooks hooks;
    hooks.after_backward = [&](std::size_t iteration, double lr) {
      engine.maybe_update(iteration, lr);
    };
    hooks.before_step = [&] { smodel.apply_masks_to_grads(); };
    hooks.after_step = [&] { smodel.apply_masks_to_values(); };
    trainer.set_hooks(hooks);
    track(trainer.run());
  }
  result.achieved_sparsity = smodel.global_sparsity();
  return result;
}

}  // namespace dstee::train
