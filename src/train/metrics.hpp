// Evaluation metrics and running statistics.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "tensor/tensor.hpp"

namespace dstee::train {

/// Top-1 classification accuracy from logits [batch, classes].
double accuracy(const tensor::Tensor& logits,
                std::span<const std::size_t> labels);

/// Binary accuracy at threshold 0.5 from logits [n] and {0,1} targets.
double binary_accuracy(const tensor::Tensor& logits,
                       std::span<const float> targets);

/// Area under the ROC curve from scores and {0,1} targets (Mann–Whitney).
double auc(const tensor::Tensor& scores, std::span<const float> targets);

/// Welford running mean/std — used for the paper's "mean ± std over three
/// seeds" cells.
class MeanStd {
 public:
  void add(double value);
  std::size_t count() const { return n_; }
  double mean() const;
  /// Sample standard deviation (n−1 denominator); 0 for n < 2.
  double stddev() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

}  // namespace dstee::train
