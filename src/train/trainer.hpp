// Classification training loop with sparse-training hooks.
//
// Iteration order (matters — see nn::Module contract and Algorithm 1):
//   zero_grad → forward → loss → backward          (dense grads ready)
//   hooks.after_backward(iter, lr)                  (DST engine / GMP / ADMM)
//   hooks.before_step()                             (mask gradients)
//   optimizer.step() at the scheduled lr
//   hooks.after_step()                              (re-apply masks to values)
#pragma once

#include <functional>
#include <vector>

#include "data/dataloader.hpp"
#include "nn/losses.hpp"
#include "nn/module.hpp"
#include "optim/lr_schedule.hpp"
#include "optim/optimizer.hpp"

namespace dstee::train {

/// Optional callbacks threaded through the loop. Absent hooks are skipped.
struct TrainHooks {
  std::function<void(std::size_t iteration, double lr)> after_backward;
  std::function<void()> before_step;
  std::function<void()> after_step;
  std::function<void(std::size_t epoch)> on_epoch_end;
};

/// Per-epoch training record.
struct EpochStats {
  std::size_t epoch = 0;
  double train_loss = 0.0;
  double test_accuracy = 0.0;
  double lr = 0.0;
};

/// Reusable epoch/iteration loop for softmax-classification models.
class Trainer {
 public:
  Trainer(nn::Module& model, optim::Optimizer& optimizer,
          const optim::LrSchedule& schedule, data::DataLoader& train_loader,
          const data::Dataset& test_set, std::size_t epochs);

  void set_hooks(TrainHooks hooks) { hooks_ = std::move(hooks); }

  /// Runs the full schedule; returns one record per epoch.
  std::vector<EpochStats> run();

  /// Accuracy of the current model on `dataset` (eval mode, batched).
  double evaluate(const data::Dataset& dataset, std::size_t batch_size = 64);

  /// Iterations executed so far (across epochs).
  std::size_t iteration() const { return iteration_; }

  /// Total iterations the configured run will execute.
  std::size_t total_iterations() const;

 private:
  nn::Module* model_;
  optim::Optimizer* optimizer_;
  const optim::LrSchedule* schedule_;
  data::DataLoader* train_loader_;
  const data::Dataset* test_set_;
  std::size_t epochs_;
  std::size_t iteration_ = 0;
  TrainHooks hooks_;
  nn::SoftmaxCrossEntropy loss_;
};

}  // namespace dstee::train
