#include "train/link_trainer.hpp"

#include "train/metrics.hpp"
#include "util/check.hpp"

namespace dstee::train {

namespace {
std::vector<float> pair_targets(const std::vector<graph::LabeledPair>& pairs) {
  std::vector<float> t;
  t.reserve(pairs.size());
  for (const auto& p : pairs) t.push_back(p.label);
  return t;
}
}  // namespace

LinkPredictionTrainer::LinkPredictionTrainer(
    models::GnnLinkPredictor& model, const tensor::Tensor& features,
    const graph::LinkSplit& split, optim::Optimizer& optimizer,
    const optim::LrSchedule& schedule, std::size_t epochs)
    : model_(&model),
      features_(&features),
      split_(&split),
      optimizer_(&optimizer),
      schedule_(&schedule),
      epochs_(epochs) {
  util::check(epochs > 0, "link trainer requires at least one epoch");
  util::check(!split.train_pairs.empty() && !split.test_pairs.empty(),
              "link split has empty pair sets");
}

std::vector<LinkEpochStats> LinkPredictionTrainer::run() {
  std::vector<LinkEpochStats> history;
  history.reserve(epochs_);
  const std::vector<float> train_targets = pair_targets(split_->train_pairs);

  for (std::size_t epoch = 0; epoch < epochs_; ++epoch) {
    model_->set_training(true);
    model_->zero_grad();
    model_->forward(*features_);
    const tensor::Tensor logits = model_->score_pairs(split_->train_pairs);
    const double loss = loss_.forward(logits, train_targets);
    const tensor::Tensor grad_logits = loss_.backward();
    const tensor::Tensor grad_z =
        model_->pair_grad_to_embedding_grad(grad_logits, split_->train_pairs);
    model_->backward(grad_z);

    const double lr = schedule_->lr_at(iteration_);
    if (hooks_.after_backward) hooks_.after_backward(iteration_, lr);
    if (hooks_.before_step) hooks_.before_step();
    optimizer_->set_learning_rate(lr);
    optimizer_->step();
    if (hooks_.after_step) hooks_.after_step();
    ++iteration_;

    LinkEpochStats stats = evaluate();
    stats.epoch = epoch;
    stats.train_loss = loss;
    history.push_back(stats);
    if (hooks_.on_epoch_end) hooks_.on_epoch_end(epoch);
  }
  return history;
}

LinkEpochStats LinkPredictionTrainer::evaluate() {
  model_->set_training(false);
  model_->forward(*features_);
  const tensor::Tensor logits = model_->score_pairs(split_->test_pairs);
  const std::vector<float> targets = pair_targets(split_->test_pairs);
  LinkEpochStats stats;
  stats.test_accuracy = binary_accuracy(logits, targets);
  stats.test_auc = auc(logits, targets);
  model_->set_training(true);
  return stats;
}

}  // namespace dstee::train
