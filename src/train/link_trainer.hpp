// Link-prediction training loop (full-batch GCN encoder + BCE over pairs).
#pragma once

#include <functional>
#include <vector>

#include "graph/link_prediction.hpp"
#include "models/gnn.hpp"
#include "nn/losses.hpp"
#include "optim/lr_schedule.hpp"
#include "optim/optimizer.hpp"
#include "train/trainer.hpp"

namespace dstee::train {

/// Per-epoch link-prediction record.
struct LinkEpochStats {
  std::size_t epoch = 0;
  double train_loss = 0.0;
  double test_accuracy = 0.0;
  double test_auc = 0.0;
};

/// Full-batch trainer for GnnLinkPredictor. Hooks fire exactly as in
/// Trainer (after_backward → before_step → step → after_step).
class LinkPredictionTrainer {
 public:
  LinkPredictionTrainer(models::GnnLinkPredictor& model,
                        const tensor::Tensor& features,
                        const graph::LinkSplit& split,
                        optim::Optimizer& optimizer,
                        const optim::LrSchedule& schedule,
                        std::size_t epochs);

  void set_hooks(TrainHooks hooks) { hooks_ = std::move(hooks); }

  std::vector<LinkEpochStats> run();

  /// Accuracy / AUC on the held-out pairs with the current weights.
  LinkEpochStats evaluate();

  std::size_t iteration() const { return iteration_; }
  std::size_t total_iterations() const { return epochs_; }

 private:
  models::GnnLinkPredictor* model_;
  const tensor::Tensor* features_;
  const graph::LinkSplit* split_;
  optim::Optimizer* optimizer_;
  const optim::LrSchedule* schedule_;
  std::size_t epochs_;
  std::size_t iteration_ = 0;
  TrainHooks hooks_;
  nn::BCEWithLogits loss_;
};

}  // namespace dstee::train
