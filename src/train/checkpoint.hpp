// Checkpointing: serialize model parameters plus sparse-training state
// (masks + occurrence counters) to a single binary file, so a sparse
// training run can pause/resume or ship its final topology for deployment.
//
// Format (little-endian, versioned; v2 = current):
//   magic "DSTE" | u32 version | u64 num_tensors
//   per tensor: u64 name_len | name bytes | u64 rank | u64 dims[rank]
//               | float data[numel]
// Tensor names carry "#value" / "#state" / "#mask" / "#counter" suffixes
// keyed by parameter/buffer order, so loading validates shapes AND
// ordering. "#state" records (v2+) persist Module::state_buffers() —
// batch-norm running statistics — which eval-mode inference depends on.
#pragma once

#include <string>

#include "nn/module.hpp"
#include "sparse/sparse_model.hpp"

namespace dstee::train {

/// Writes every parameter value of `model` (and, if `state` is non-null,
/// every mask and counter) to `path`. Throws CheckError on I/O failure.
void save_checkpoint(const std::string& path, nn::Module& model,
                     const sparse::SparseModel* state = nullptr);

/// Restores a checkpoint written by save_checkpoint into a model with the
/// SAME architecture (parameter count/shapes are validated). When `state`
/// is non-null, masks and counters are restored too and masks are
/// re-applied to the values.
void load_checkpoint(const std::string& path, nn::Module& model,
                     sparse::SparseModel* state = nullptr);

}  // namespace dstee::train
