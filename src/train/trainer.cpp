#include "train/trainer.hpp"

#include "tensor/ops.hpp"
#include "train/metrics.hpp"
#include "util/check.hpp"
#include "util/logging.hpp"

namespace dstee::train {

Trainer::Trainer(nn::Module& model, optim::Optimizer& optimizer,
                 const optim::LrSchedule& schedule,
                 data::DataLoader& train_loader, const data::Dataset& test_set,
                 std::size_t epochs)
    : model_(&model),
      optimizer_(&optimizer),
      schedule_(&schedule),
      train_loader_(&train_loader),
      test_set_(&test_set),
      epochs_(epochs) {
  util::check(epochs > 0, "trainer requires at least one epoch");
}

std::size_t Trainer::total_iterations() const {
  return epochs_ * train_loader_->batches_per_epoch();
}

std::vector<EpochStats> Trainer::run() {
  std::vector<EpochStats> history;
  history.reserve(epochs_);
  for (std::size_t epoch = 0; epoch < epochs_; ++epoch) {
    model_->set_training(true);
    train_loader_->start_epoch();
    double loss_sum = 0.0;
    std::size_t batches = 0;
    double lr = optimizer_->learning_rate();
    while (train_loader_->has_next()) {
      const auto batch = train_loader_->next_batch();
      model_->zero_grad();
      const tensor::Tensor logits = model_->forward(batch.examples);
      const double loss = loss_.forward(logits, batch.labels);
      model_->backward(loss_.backward());

      lr = schedule_->lr_at(iteration_);
      if (hooks_.after_backward) hooks_.after_backward(iteration_, lr);
      if (hooks_.before_step) hooks_.before_step();
      optimizer_->set_learning_rate(lr);
      optimizer_->step();
      if (hooks_.after_step) hooks_.after_step();

      loss_sum += loss;
      ++batches;
      ++iteration_;
    }
    EpochStats stats;
    stats.epoch = epoch;
    stats.train_loss = batches > 0 ? loss_sum / static_cast<double>(batches)
                                   : 0.0;
    stats.test_accuracy = evaluate(*test_set_);
    stats.lr = lr;
    history.push_back(stats);
    if (hooks_.on_epoch_end) hooks_.on_epoch_end(epoch);
    util::log_debug("epoch ", epoch, ": loss=", stats.train_loss,
                    " acc=", stats.test_accuracy, " lr=", stats.lr);
  }
  return history;
}

double Trainer::evaluate(const data::Dataset& dataset,
                         std::size_t batch_size) {
  model_->set_training(false);
  std::size_t correct = 0;
  for (std::size_t start = 0; start < dataset.size(); start += batch_size) {
    const std::size_t end = std::min(start + batch_size, dataset.size());
    std::vector<std::size_t> indices;
    indices.reserve(end - start);
    for (std::size_t i = start; i < end; ++i) indices.push_back(i);
    const tensor::Tensor logits = model_->forward(dataset.batch(indices));
    const auto labels = dataset.batch_labels(indices);
    const auto predictions = tensor::argmax_rows(logits);
    for (std::size_t i = 0; i < labels.size(); ++i) {
      if (predictions[i] == labels[i]) ++correct;
    }
  }
  model_->set_training(true);
  return static_cast<double>(correct) / static_cast<double>(dataset.size());
}

}  // namespace dstee::train
