#include "train/checkpoint.hpp"

#include <cstdint>
#include <filesystem>
#include <fstream>

#include "sparse/mask.hpp"
#include "util/check.hpp"

namespace dstee::train {

namespace {

constexpr char kMagic[4] = {'D', 'S', 'T', 'E'};
// v2 appends Module::state_buffers() (batch-norm running statistics) after
// the parameter values — v1 files silently lost them, so a reloaded BN
// model served its init statistics in eval mode.
constexpr std::uint32_t kVersion = 2;

void write_u64(std::ofstream& out, std::uint64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

std::uint64_t read_u64(std::ifstream& in) {
  std::uint64_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  util::check(in.good(), "checkpoint truncated");
  return v;
}

void write_tensor(std::ofstream& out, const std::string& name,
                  const tensor::Tensor& t) {
  write_u64(out, name.size());
  out.write(name.data(), static_cast<std::streamsize>(name.size()));
  write_u64(out, t.rank());
  for (std::size_t d = 0; d < t.rank(); ++d) write_u64(out, t.dim(d));
  out.write(reinterpret_cast<const char*>(t.raw()),
            static_cast<std::streamsize>(t.numel() * sizeof(float)));
}

// Reads one record and validates it against the expected name/shape,
// writing the payload into `dest`.
void read_tensor_into(std::ifstream& in, const std::string& expected_name,
                      tensor::Tensor& dest) {
  const std::uint64_t name_len = read_u64(in);
  std::string name(name_len, '\0');
  in.read(name.data(), static_cast<std::streamsize>(name_len));
  util::check(in.good(), "checkpoint truncated in tensor name");
  util::check(name == expected_name,
              "checkpoint tensor order mismatch: expected '" + expected_name +
                  "', found '" + name + "'");
  const std::uint64_t rank = read_u64(in);
  std::vector<std::size_t> dims(rank);
  for (auto& d : dims) d = read_u64(in);
  const tensor::Shape shape{std::vector<std::size_t>(dims)};
  util::check(shape == dest.shape(),
              "checkpoint shape mismatch for '" + name + "': file has " +
                  shape.to_string() + ", model has " +
                  dest.shape().to_string());
  in.read(reinterpret_cast<char*>(dest.raw()),
          static_cast<std::streamsize>(dest.numel() * sizeof(float)));
  util::check(in.good(), "checkpoint truncated in tensor data");
}

}  // namespace

void save_checkpoint(const std::string& path, nn::Module& model,
                     const sparse::SparseModel* state) {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(p.parent_path(), ec);
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  util::check(out.is_open(), "cannot open checkpoint for writing: " + path);

  const auto params = model.parameters();
  const auto buffers = model.state_buffers();
  std::uint64_t num_tensors = params.size() + buffers.size();
  if (state != nullptr) num_tensors += 2 * state->num_layers();

  out.write(kMagic, sizeof(kMagic));
  out.write(reinterpret_cast<const char*>(&kVersion), sizeof(kVersion));
  write_u64(out, num_tensors);

  for (std::size_t i = 0; i < params.size(); ++i) {
    write_tensor(out, "param" + std::to_string(i) + "#value",
                 params[i]->value);
  }
  for (std::size_t i = 0; i < buffers.size(); ++i) {
    write_tensor(out, "buffer" + std::to_string(i) + "#state", *buffers[i]);
  }
  if (state != nullptr) {
    for (std::size_t i = 0; i < state->num_layers(); ++i) {
      write_tensor(out, "layer" + std::to_string(i) + "#mask",
                   state->layer(i).mask().tensor());
      write_tensor(out, "layer" + std::to_string(i) + "#counter",
                   state->layer(i).counter());
    }
  }
  out.flush();
  util::check(out.good(), "checkpoint write failed: " + path);
}

void load_checkpoint(const std::string& path, nn::Module& model,
                     sparse::SparseModel* state) {
  std::ifstream in(path, std::ios::binary);
  util::check(in.is_open(), "cannot open checkpoint for reading: " + path);

  char magic[4] = {};
  in.read(magic, sizeof(magic));
  util::check(in.good() && std::equal(magic, magic + 4, kMagic),
              "not a dstee checkpoint: " + path);
  std::uint32_t version = 0;
  in.read(reinterpret_cast<char*>(&version), sizeof(version));

  const auto params = model.parameters();
  auto buffers = model.state_buffers();
  // v1 lacked "#state" records. For models without state buffers the v1
  // payload is byte-identical to v2, so those artifacts stay loadable;
  // models WITH buffers (batch-norm) would come back silently wrong and
  // are rejected.
  if (version == 1) {
    util::check(buffers.empty(),
                "checkpoint version 1 predates batch-norm running-stat "
                "persistence and cannot restore this model faithfully; "
                "re-save with this build");
  } else if (version == 3) {
    // Version 3 of the family is a sparse DELTA (serve/delta.*): it only
    // carries the entries that moved since a base checkpoint, so it
    // cannot restore a model on its own.
    util::fail("checkpoint " + path +
               " is a sparse delta (v3); apply it to its base model with "
               "serve::load_delta + serve::apply_delta instead of loading "
               "it as a full checkpoint");
  } else {
    util::check(version == kVersion, "unsupported checkpoint version " +
                                         std::to_string(version));
  }

  std::uint64_t expected = params.size() + buffers.size();
  if (state != nullptr) expected += 2 * state->num_layers();
  const std::uint64_t num_tensors = read_u64(in);
  util::check(num_tensors == expected,
              "checkpoint tensor count mismatch (file has " +
                  std::to_string(num_tensors) + ", model expects " +
                  std::to_string(expected) +
                  " — was it saved with/without sparse state?)");

  for (std::size_t i = 0; i < params.size(); ++i) {
    read_tensor_into(in, "param" + std::to_string(i) + "#value",
                     params[i]->value);
  }
  for (std::size_t i = 0; i < buffers.size(); ++i) {
    read_tensor_into(in, "buffer" + std::to_string(i) + "#state",
                     *buffers[i]);
  }
  if (state != nullptr) {
    for (std::size_t i = 0; i < state->num_layers(); ++i) {
      auto& layer = state->layer(i);
      tensor::Tensor mask_values(layer.param().value.shape());
      read_tensor_into(in, "layer" + std::to_string(i) + "#mask",
                       mask_values);
      std::vector<std::size_t> active;
      for (std::size_t j = 0; j < mask_values.numel(); ++j) {
        const float v = mask_values[j];
        util::check(v == 0.0f || v == 1.0f,
                    "checkpoint mask is not binary");
        if (v == 1.0f) active.push_back(j);
      }
      layer.mask() = sparse::Mask::from_indices(mask_values.shape(), active);
      read_tensor_into(in, "layer" + std::to_string(i) + "#counter",
                       layer.counter());
    }
    state->apply_masks_to_values();
  }
}

}  // namespace dstee::train
