// Experiment harness shared by all bench binaries: maps each method name
// appearing in the paper's tables to its engine/pruner configuration, runs
// the training, and reports accuracy + topology + FLOPs results.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "data/dataset.hpp"
#include "nn/module.hpp"
#include "sparse/distribution.hpp"
#include "sparse/flops.hpp"
#include "sparse/stats.hpp"
#include "train/link_trainer.hpp"
#include "train/trainer.hpp"

namespace dstee::train {

/// Every method the paper's tables mention (plus ablation controls).
enum class MethodKind {
  kDense,       ///< no sparsity
  kSnip,        ///< static, |w·g| at init
  kGrasp,       ///< static, gradient-flow at init (1st-order)
  kSynFlow,     ///< static, data-free iterative
  kStaticMagnitude,  ///< static, |w| at init (control)
  kStaticRandom,     ///< static, random at init (control)
  kStr,         ///< dense-to-sparse (GMP schedule stand-in)
  kSis,         ///< dense-to-sparse (GMP, earlier/faster ramp)
  kDeepR,       ///< dynamic: sign-flip drop + random grow
  kSet,         ///< dynamic: magnitude drop + random grow
  kRigl,        ///< dynamic: magnitude drop + gradient grow
  kRiglItop,    ///< RigL under the ITOP regime (higher α, no early stop)
  kMest,        ///< dynamic: |w|+γ|g| drop + random grow, decaying rate
  kSnfs,        ///< dynamic: momentum grow + layer redistribution
  kDsr,         ///< dynamic: random grow + layer redistribution
  kDstEe,       ///< the paper's method
  kGap,         ///< scheduled grow-and-prune partitions (related work)
};

MethodKind parse_method(const std::string& name);
std::string to_string(MethodKind kind);

/// True for drop-and-grow methods driven by the DstEngine.
bool is_dynamic(MethodKind kind);
/// True for dense-to-sparse schedules (GMP family).
bool is_dense_to_sparse(MethodKind kind);
/// True for pruning-at-initialization methods.
bool is_static(MethodKind kind);

/// DST hyperparameters (Algorithm 1's ΔT, α, c, ε).
struct DstParams {
  std::size_t delta_t = 50;        ///< iterations between mask updates
  double drop_fraction = 0.3;      ///< α₀
  double stop_fraction = 0.75;     ///< RigL-style early stop (1.0 = never)
  double c = 1e-3;                 ///< DST-EE exploration coefficient
  double eps = 1e-3;               ///< DST-EE ε
};

/// One classification table cell.
struct ClassificationConfig {
  MethodKind method = MethodKind::kDstEe;
  double sparsity = 0.9;
  sparse::DistributionKind distribution = sparse::DistributionKind::kErk;
  std::size_t epochs = 8;
  std::size_t batch_size = 32;
  double lr = 0.1;
  double momentum = 0.9;
  double weight_decay = 5e-4;
  DstParams dst;
  std::uint64_t seed = 1;
};

/// Everything a bench needs to print its table row.
struct ClassificationResult {
  double final_test_accuracy = 0.0;
  double best_test_accuracy = 0.0;
  double final_train_loss = 0.0;
  double achieved_sparsity = 0.0;   ///< over sparsifiable weights
  double exploration_rate = 0.0;    ///< ITOP R (1.0 for dense)
  std::vector<EpochStats> history;
  std::vector<sparse::UpdateStats> topology_rounds;
  /// ×dense multiples (Table II); filled when a FlopsModel is provided.
  double train_flops_multiple = 1.0;
  double inference_flops_multiple = 1.0;
};

/// Runs one classification experiment. The model is trained IN PLACE
/// (build a fresh model per cell). `flops` may be null.
ClassificationResult run_classification(nn::Module& model,
                                        const sparse::FlopsModel* flops,
                                        const data::Dataset& train_set,
                                        const data::Dataset& test_set,
                                        const ClassificationConfig& config);

/// GNN link-prediction methods of Tables III/IV.
enum class LinkMethod {
  kDense,
  kPruneFromDense,  ///< ADMM three-phase pipeline
  kDstEe,
};

struct LinkConfig {
  LinkMethod method = LinkMethod::kDstEe;
  double sparsity = 0.9;
  std::size_t epochs = 50;          ///< DST-EE/dense budget (paper: 50)
  std::size_t admm_epochs_each = 20;  ///< per ADMM phase (paper: 20+20+20)
  double lr = 0.05;
  double admm_rho = 1e-2;
  DstParams dst;
  std::uint64_t seed = 1;
};

struct LinkResult {
  double best_test_accuracy = 0.0;  ///< paper reports best over epochs
  double final_test_accuracy = 0.0;
  double best_test_auc = 0.0;
  double achieved_sparsity = 0.0;
  std::vector<LinkEpochStats> history;
};

/// Runs one link-prediction experiment on the given graph/features/split.
LinkResult run_link_prediction(models::GnnLinkPredictor& model,
                               const tensor::Tensor& features,
                               const graph::LinkSplit& split,
                               const LinkConfig& config);

}  // namespace dstee::train
