#include "runtime/pool.hpp"

#include <atomic>
#include <string>
#include <thread>

#include "obs/trace.hpp"
#include "util/env.hpp"

namespace dstee::runtime {

namespace {

/// The pool whose worker_loop owns this thread (nullptr on non-pool
/// threads). run_chunks consults it to run nested regions inline.
thread_local const Pool* tl_worker_pool = nullptr;

}  // namespace

Pool::Pool(std::size_t num_workers) {
  queues_.reserve(num_workers);
  threads_.reserve(num_workers);
  for (std::size_t i = 0; i < num_workers; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  for (std::size_t i = 0; i < num_workers; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

Pool::~Pool() {
  {
    util::MutexLock lock(idle_mu_);
    stop_ = true;
  }
  idle_cv_.notify_all();
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
}

bool Pool::on_worker_thread() const { return tl_worker_pool == this; }

void Pool::submit(std::function<void()> task) {
  if (workers() == 0) {
    task();
    return;
  }
  enqueue(std::move(task));
}

void Pool::enqueue(std::function<void()> task) {
  const std::size_t w =
      next_queue_.fetch_add(1, std::memory_order_relaxed) % queues_.size();
  // pending_ is bumped BEFORE the push: a worker that pops the task and
  // decrements is then guaranteed a matching increment already happened.
  // The tiny window where pending_ > 0 but the queue push is still in
  // flight only costs a woken worker one yield-and-retry.
  {
    util::MutexLock lock(idle_mu_);
    ++pending_;
  }
  {
    WorkerQueue& q = *queues_[w];
    util::MutexLock lock(q.mu);
    q.tasks.push_back(std::move(task));
  }
  idle_cv_.notify_one();
}

bool Pool::try_pop(std::size_t home, std::function<void()>& out) {
  // Own queue first, then steal round-robin from the peers — submissions
  // spread across queues, so an idle worker finds displaced work fast.
  const std::size_t count = queues_.size();
  for (std::size_t i = 0; i < count; ++i) {
    WorkerQueue& q = *queues_[(home + i) % count];
    util::MutexLock lock(q.mu);
    if (!q.tasks.empty()) {
      out = std::move(q.tasks.front());
      q.tasks.pop_front();
      return true;
    }
  }
  return false;
}

void Pool::worker_loop(std::size_t index) {
  tl_worker_pool = this;
  // Label this worker's trace ring so drained spans (partition-group
  // slices, intra-op chunks) carry a readable lane name in the viewer.
  obs::set_thread_name("pool-" + std::to_string(index));
  for (;;) {
    {
      util::UniqueLock lock(idle_mu_);
      while (!stop_ && pending_ == 0) idle_cv_.wait(lock);
      if (pending_ == 0) return;  // stop_ set and everything drained
    }
    std::function<void()> task;
    if (!try_pop(index, task)) {
      // pending_ was bumped but the push has not landed yet (or a peer
      // won the race); retry.
      std::this_thread::yield();
      continue;
    }
    {
      util::MutexLock lock(idle_mu_);
      --pending_;
    }
    task();
  }
}

std::size_t default_parallelism() {
  static const std::size_t value = [] {
    const std::int64_t env = util::env_int("DSTEE_RUNTIME_THREADS", 0);
    if (env > 0) return static_cast<std::size_t>(env);
    return static_cast<std::size_t>(
        std::max(1u, std::thread::hardware_concurrency()));
  }();
  return value;
}

Pool& default_pool() {
  // Workers = budget - 1: the thread entering a parallel region runs the
  // first chunk itself, so total active threads equal the budget.
  static Pool pool(default_parallelism() - 1);
  return pool;
}

namespace {

std::atomic<std::size_t>& intra_op_slot() {
  static std::atomic<std::size_t> value{[] {
    const std::int64_t env = util::env_int("DSTEE_INTRA_OP_THREADS", 1);
    return env >= 0 ? static_cast<std::size_t>(env) : std::size_t{1};
  }()};
  return value;
}

}  // namespace

std::size_t intra_op_default() {
  return intra_op_slot().load(std::memory_order_relaxed);
}

void set_intra_op_default(std::size_t threads) {
  intra_op_slot().store(threads, std::memory_order_relaxed);
}

}  // namespace dstee::runtime
