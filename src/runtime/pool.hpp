// Persistent intra-op thread pool shared by every parallel kernel.
//
// The retired execution model spawned std::threads inside each SpMM/conv
// call (see bench/spawn_chunks.hpp), paying thread-start latency per call —
// fine for huge batches, ruinous for the serving hot path where a batch-8
// SpMM finishes in tens of microseconds. This pool starts its workers
// once; a parallel region only pays a queue push and a condition-variable
// wake.
//
// Structure: fixed workers, one task deque per worker (submissions
// round-robin across them; an idle worker steals from its peers), and a
// single idle mutex/cv pair workers sleep on. Fan-out happens through
// run_chunks(), which keeps the historical parallel_chunks contract:
// [0, n) splits into ceil-div contiguous chunks, the calling thread runs
// the first chunk itself, fn is invoked once per non-empty chunk (so
// per-chunk scratch lives inside it), and the caller guarantees chunk
// independence — every output element written by exactly one chunk —
// which makes results bit-identical for ANY chunk/worker count.
//
// Re-entrancy: a worker that calls run_chunks()/parallel_for() on its own
// pool runs the region inline (no task submission), so nested parallel
// regions can never deadlock the pool. Exceptions thrown by fn inside a
// parallel region are captured and rethrown on the calling thread (first
// error wins); the pool stays usable afterwards.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace dstee::runtime {

namespace detail {

/// Completion latch for one fan-out: lives on the caller's stack, counts
/// submitted chunk tasks, and carries the first exception across threads.
/// All state is guarded by `mu`, so the error is visible to the waiter the
/// moment `remaining` hits zero.
struct FanLatch {
  /// `tasks` = chunk tasks that will call finish() exactly once each.
  explicit FanLatch(std::size_t tasks) : remaining(tasks) {}

  util::Mutex mu;
  util::CondVar cv;
  std::size_t remaining DSTEE_GUARDED_BY(mu);
  std::exception_ptr error DSTEE_GUARDED_BY(mu);

  void finish(std::exception_ptr e) {
    util::MutexLock lock(mu);
    if (e && !error) error = std::move(e);
    if (--remaining == 0) cv.notify_one();
  }

  /// Blocks until every task finished; returns the first error (null if
  /// all tasks succeeded).
  std::exception_ptr wait() {
    util::UniqueLock lock(mu);
    while (remaining != 0) cv.wait(lock);
    return error;
  }
};

}  // namespace detail

/// Fixed-size worker pool with per-worker task queues. A Pool with zero
/// workers is valid: every region and submitted task runs inline on the
/// calling thread (the degenerate single-core configuration).
class Pool {
 public:
  /// Starts exactly `num_workers` threads (0 = fully inline pool).
  explicit Pool(std::size_t num_workers);

  /// Joins all workers after draining queued tasks. The caller must ensure
  /// no thread is inside run_chunks()/parallel_for() on this pool.
  ~Pool();

  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;

  std::size_t workers() const { return threads_.size(); }

  /// Detached task submission (round-robin across worker queues). Tasks
  /// must not throw — a throwing task terminates the process, exactly as
  /// an escaped exception on a raw std::thread would. With zero workers
  /// the task runs inline before submit() returns.
  void submit(std::function<void()> task);

  /// The chunked fan-out contract on pool workers: splits [0, n) into
  /// `chunks` ceil-div contiguous chunks (0 = workers()+1, never more
  /// than n), runs fn(begin, end) once per non-empty chunk with the
  /// calling thread taking the first chunk, and returns when every chunk
  /// has finished. chunks <= 1, a zero-worker pool, and calls from inside
  /// one of this pool's workers all run inline.
  template <typename Fn>
  void run_chunks(std::size_t n, std::size_t chunks, Fn&& fn) {
    if (chunks == 0) chunks = workers() + 1;
    chunks = std::min(chunks, std::max<std::size_t>(1, n));
    if (chunks <= 1 || workers() == 0 || on_worker_thread()) {
      fn(0, n);
      return;
    }
    const std::size_t chunk = (n + chunks - 1) / chunks;
    // Chunks 1.. go to the pool; count first so the latch never hits zero
    // before every submission is in flight.
    std::size_t tasks = 0;
    for (std::size_t t = 1; t < chunks; ++t) {
      if (std::min(n, t * chunk) < n) ++tasks;
    }
    detail::FanLatch latch(tasks);
    for (std::size_t t = 1; t < chunks; ++t) {
      const std::size_t b0 = std::min(n, t * chunk);
      const std::size_t b1 = std::min(n, b0 + chunk);
      if (b0 >= b1) break;
      enqueue([&fn, &latch, b0, b1] {
        std::exception_ptr error;
        try {
          fn(b0, b1);
        } catch (...) {
          error = std::current_exception();
        }
        latch.finish(std::move(error));
      });
    }
    std::exception_ptr caller_error;
    try {
      fn(0, std::min(n, chunk));
    } catch (...) {
      caller_error = std::current_exception();
    }
    // Always drain before rethrowing: the tasks reference fn and latch on
    // this stack frame.
    const std::exception_ptr task_error = latch.wait();
    if (caller_error) std::rethrow_exception(caller_error);
    if (task_error) std::rethrow_exception(task_error);
  }

  /// Pool-wide data-parallel loop with a minimum grain: uses at most
  /// workers()+1 chunks and never hands a chunk fewer than `grain` items
  /// (grain 0 = 1), so tiny loops stay inline instead of paying fan-out
  /// overhead. Same chunk-independence/bit-identical contract as
  /// run_chunks.
  template <typename Fn>
  void parallel_for(std::size_t n, std::size_t grain, Fn&& fn) {
    if (grain == 0) grain = 1;
    const std::size_t chunks =
        std::min(workers() + 1, std::max<std::size_t>(1, n / grain));
    run_chunks(n, chunks, std::forward<Fn>(fn));
  }

 private:
  struct WorkerQueue {
    util::Mutex mu;
    std::deque<std::function<void()>> tasks DSTEE_GUARDED_BY(mu);
  };

  /// True when the calling thread is one of THIS pool's workers.
  bool on_worker_thread() const;
  void enqueue(std::function<void()> task);
  bool try_pop(std::size_t home, std::function<void()>& out);
  void worker_loop(std::size_t index);

  // queues_/threads_ are sized in the constructor and structurally
  // immutable afterwards (only each queue's guarded deque mutates), so
  // the vectors themselves need no lock.
  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> threads_;
  std::atomic<std::size_t> next_queue_{0};  ///< lock-free round-robin cursor

  // Workers sleep here; pending_/stop_ are guarded by idle_mu_ so wakeups
  // are never lost.
  util::Mutex idle_mu_;
  util::CondVar idle_cv_;
  std::size_t pending_ DSTEE_GUARDED_BY(idle_mu_) = 0;
  bool stop_ DSTEE_GUARDED_BY(idle_mu_) = false;
};

/// Process-wide parallelism budget: DSTEE_RUNTIME_THREADS when set, else
/// hardware concurrency (always >= 1). The default pool keeps this many
/// threads busy counting the caller: it runs budget-1 workers.
std::size_t default_parallelism();

/// The process-wide pool, constructed on first use with
/// default_parallelism()-1 workers. Kernels fall back to it whenever no
/// explicit pool is injected; tests inject their own Pool instead.
Pool& default_pool();

/// Process default chunk count for training-path forwards (nn/ conv and
/// pooling), resolved once from DSTEE_INTRA_OP_THREADS (default 1 =
/// serial, matching the pre-pool behavior). Serving configures intra-op
/// parallelism explicitly through serve::CompileOptions instead.
std::size_t intra_op_default();

/// Overrides intra_op_default() at run time (tests, embedders).
void set_intra_op_default(std::size_t threads);

/// Intra-op execution policy threaded through the kernels: how many
/// chunks to split a parallel loop into, and which pool executes them.
/// The default {1, nullptr} is serial and never touches any pool, so
/// kernels with a defaulted IntraOp parameter cost nothing extra.
struct IntraOp {
  std::size_t threads = 1;  ///< chunk count; 0 = pool-wide, 1 = inline
  Pool* pool = nullptr;     ///< executing pool; nullptr = default_pool()
};

inline Pool& pool_of(const IntraOp& intra) {
  return intra.pool != nullptr ? *intra.pool : default_pool();
}

/// Runs fn(begin, end) over [0, n) split into intra.threads chunks on
/// intra's pool. threads == 1 (the default) and n <= 1 run inline without
/// resolving the pool at all — the serving fast path.
template <typename Fn>
void intra_chunks(const IntraOp& intra, std::size_t n, Fn&& fn) {
  if (intra.threads == 1 || n <= 1) {
    fn(0, n);
    return;
  }
  pool_of(intra).run_chunks(n, intra.threads, std::forward<Fn>(fn));
}

/// intra_chunks with a minimum grain: never hands a chunk fewer than
/// `grain` items, so a loop too small to amortize the fan-out wake runs
/// inline no matter what the caller's policy says. THE one place every
/// kernel gets its small-input guard from — kernels pick the grain in
/// their own unit (elements, planes, rows).
template <typename Fn>
void intra_chunks(const IntraOp& intra, std::size_t n, std::size_t grain,
                  Fn&& fn) {
  if (intra.threads == 1 || n <= 1) {
    fn(0, n);
    return;
  }
  std::size_t chunks = intra.threads;
  Pool& pool = pool_of(intra);
  if (chunks == 0) chunks = pool.workers() + 1;
  if (grain > 1) {
    chunks = std::min(chunks, std::max<std::size_t>(1, n / grain));
  }
  if (chunks <= 1) {
    fn(0, n);
    return;
  }
  pool.run_chunks(n, chunks, std::forward<Fn>(fn));
}

/// The intra-op policy nn/ training forwards share: the process default
/// chunk count on the process default pool. One definition so a future
/// pool override or grain knob touches exactly one place.
inline IntraOp training_intra() {
  return IntraOp{intra_op_default(), nullptr};
}

}  // namespace dstee::runtime
