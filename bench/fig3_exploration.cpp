// Figure 3 reproduction: exploration degree (ITOP R) per mask-update round
// and test accuracy for different trade-off coefficients c, at sparsity
// 0.95 on both CIFAR-like datasets.
//
// Paper's claims: (a) larger c → higher exploration degree at every round;
// (b) within the swept range, higher exploration degree → higher accuracy.
#include "bench_common.hpp"

namespace dstee {
namespace {

struct Sweep {
  std::string dataset;
  double c = 0.0;
  std::vector<double> r_per_round;  // exploration after each update round
  train::MeanStd acc;
};

int run() {
  const bench::BenchEnv env = bench::BenchEnv::resolve(2);
  const std::size_t epochs = env.epochs_or(16);
  // Paper: c ∈ {1e-4, 1e-3, 5e-3} on CIFAR-100 and {5e-4, 1e-3, 5e-3} on
  // CIFAR-10 (sparsity 0.95).
  const std::vector<double> c10_sweep{5e-4, 1e-3, 5e-3};
  const std::vector<double> c100_sweep{1e-4, 1e-3, 5e-3};

  std::cout << "=== Figure 3: exploration degree and accuracy vs trade-off "
               "coefficient c (sparsity 0.95) ===\n"
            << "(epochs=" << epochs << ", seeds=" << env.seeds << ")\n\n";
  util::Timer timer;

  std::vector<Sweep> sweeps;
  for (const double c : c10_sweep) sweeps.push_back({"cifar10", c, {}, {}});
  for (const double c : c100_sweep) sweeps.push_back({"cifar100", c, {}, {}});

  std::vector<std::function<void()>> jobs;
  for (auto& sweep : sweeps) {
    jobs.emplace_back([&sweep, &env, epochs] {
      for (std::int64_t seed = 1; seed <= env.seeds; ++seed) {
        const auto data_cfg = sweep.dataset == "cifar10"
                                  ? bench::cifar10_like(env, 5)
                                  : bench::cifar100_like(env, 7);
        const data::SyntheticImageDataset train_set(
            data_cfg, data::SyntheticImageDataset::Split::kTrain);
        const data::SyntheticImageDataset test_set(
            data_cfg, data::SyntheticImageDataset::Split::kTest);

        train::ClassificationConfig cfg;
        cfg.method = train::MethodKind::kDstEe;
        cfg.sparsity = 0.95;
        cfg.epochs = epochs;
        cfg.batch_size = 32;
        cfg.lr = 0.08;
        cfg.dst = bench::bench_dst_params();
        cfg.dst.c = sweep.c;
        cfg.seed = static_cast<std::uint64_t>(seed) * 53 + 11;

        util::Rng rng(cfg.seed);
        models::Vgg model(bench::vgg19_preset(data_cfg, 0.10), rng);
        const auto result = train::run_classification(model, nullptr,
                                                      train_set, test_set,
                                                      cfg);
        sweep.acc.add(result.best_test_accuracy);
        if (seed == 1) {
          sweep.r_per_round.clear();
          for (const auto& round : result.topology_rounds) {
            sweep.r_per_round.push_back(round.exploration_rate);
          }
        }
      }
    });
  }
  bench::run_parallel(jobs);

  util::CsvWriter csv("bench_results/fig3_exploration.csv",
                      {"dataset", "c", "round", "exploration_rate",
                       "final_accuracy_mean"});
  for (const std::string ds : {"cifar10", "cifar100"}) {
    std::cout << "--- " << (ds == "cifar10" ? "CIFAR-10-like"
                                            : "CIFAR-100-like")
              << " / sparsity 0.95 ---\n";
    std::cout << "Exploration degree R per mask-update round:\n";
    for (const auto& sweep : sweeps) {
      if (sweep.dataset != ds) continue;
      std::cout << "  c=" << util::format_sci(sweep.c, 0) << ": ";
      for (std::size_t r = 0; r < sweep.r_per_round.size(); ++r) {
        std::cout << util::format_fixed(sweep.r_per_round[r], 3) << " ";
        csv.write_row({ds, util::format_sci(sweep.c, 1), std::to_string(r + 1),
                       util::format_fixed(sweep.r_per_round[r], 5),
                       util::format_fixed(sweep.acc.mean(), 4)});
      }
      std::cout << "\n";
    }
    util::Table table({"c", "final exploration R", "test accuracy"});
    for (const auto& sweep : sweeps) {
      if (sweep.dataset != ds) continue;
      table.add_row({util::format_sci(sweep.c, 0),
                     sweep.r_per_round.empty()
                         ? "-"
                         : util::format_fixed(sweep.r_per_round.back(), 3),
                     bench::cell(sweep.acc)});
    }
    table.print();
    std::cout << "\n";
  }
  csv.flush();

  std::cout << "Shape checks (paper's qualitative claims):\n";
  int holds = 0, total = 0;
  auto check = [&](const std::string& what, bool ok) {
    ++total;
    holds += bench::shape_check(what, ok) ? 1 : 0;
  };
  for (const std::string ds : {"cifar10", "cifar100"}) {
    std::vector<const Sweep*> ordered;
    for (const auto& sweep : sweeps) {
      if (sweep.dataset == ds) ordered.push_back(&sweep);
    }
    // (a) R is non-decreasing over rounds for every c.
    for (const auto* sweep : ordered) {
      bool monotone = true;
      for (std::size_t r = 1; r < sweep->r_per_round.size(); ++r) {
        if (sweep->r_per_round[r] < sweep->r_per_round[r - 1] - 1e-9) {
          monotone = false;
        }
      }
      check(ds + ": R non-decreasing over rounds (c=" +
                util::format_sci(sweep->c, 0) + ")",
            monotone);
    }
    // (b) larger c → larger final exploration degree.
    bool r_ordered = true;
    for (std::size_t i = 1; i < ordered.size(); ++i) {
      if (ordered[i]->r_per_round.empty() ||
          ordered[i - 1]->r_per_round.empty() ||
          ordered[i]->r_per_round.back() <
              ordered[i - 1]->r_per_round.back() - 1e-6) {
        r_ordered = false;
      }
    }
    check(ds + ": final R increases with c", r_ordered);
    // (c) the largest-c run is at least as accurate as the smallest-c run.
    check(ds + ": accuracy(largest c) >= accuracy(smallest c) - 1%",
          ordered.back()->acc.mean() >= ordered.front()->acc.mean() - 0.01);
  }
  std::cout << "\n" << holds << "/" << total
            << " shape checks hold (bench wall time "
            << util::format_fixed(timer.seconds(), 1) << "s)\n"
            << "CSV: bench_results/fig3_exploration.csv\n";
  return 0;
}

}  // namespace
}  // namespace dstee

int main() { return dstee::run(); }
