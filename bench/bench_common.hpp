// Shared infrastructure for the table/figure reproduction benches.
//
// Every bench prints (a) a paper-style ASCII table on stdout, (b) a list of
// qualitative shape checks (the orderings the paper claims), and (c) a CSV
// under bench_results/ for scripted analysis. Sizes are small by default so
// `for b in build/bench/*; do $b; done` completes on a laptop CPU; set
// DSTEE_SCALE / DSTEE_EPOCHS / DSTEE_SEEDS for higher-fidelity runs.
#pragma once

#include <atomic>
#include <cstdio>
#include <functional>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "data/synthetic_images.hpp"
#include "models/resnet.hpp"
#include "models/vgg.hpp"
#include "train/experiment.hpp"
#include "train/metrics.hpp"
#include "util/check.hpp"
#include "util/csv.hpp"
#include "util/env.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace dstee::bench {

/// Global bench knobs resolved from the environment.
struct BenchEnv {
  double scale = 1.0;
  std::int64_t epochs_override = 0;
  std::int64_t seeds = 1;

  static BenchEnv resolve(std::int64_t default_seeds = 1) {
    BenchEnv env;
    env.scale = util::bench_scale();
    env.epochs_override = util::bench_epochs_override();
    env.seeds = util::bench_seeds(default_seeds);
    return env;
  }

  std::size_t epochs_or(std::size_t fallback) const {
    return epochs_override > 0 ? static_cast<std::size_t>(epochs_override)
                               : fallback;
  }
  std::size_t scaled(std::size_t n, std::size_t min_value = 1) const {
    const auto v = static_cast<std::size_t>(n * scale);
    return v < min_value ? min_value : v;
  }
};

/// Runs independent jobs across DSTEE_THREADS worker threads (default:
/// min(8, hardware)). Each job owns its model/dataset/RNG, so results are
/// bit-identical to a serial run; only wall time changes.
inline void run_parallel(std::vector<std::function<void()>>& jobs) {
  const std::size_t hw = std::max(1u, std::thread::hardware_concurrency());
  const auto threads = static_cast<std::size_t>(
      util::env_int("DSTEE_THREADS",
                    static_cast<std::int64_t>(std::min<std::size_t>(16, hw))));
  std::atomic<std::size_t> next{0};
  auto worker = [&] {
    while (true) {
      const std::size_t i = next.fetch_add(1);
      if (i >= jobs.size()) return;
      jobs[i]();
    }
  };
  std::vector<std::thread> pool;
  for (std::size_t t = 1; t < threads; ++t) pool.emplace_back(worker);
  worker();
  for (auto& t : pool) t.join();
}

/// Accumulated accuracy over seeds → "mean +/- std" cell text.
inline std::string cell(const train::MeanStd& stats, int digits = 2) {
  if (stats.count() <= 1) {
    return util::format_fixed(stats.mean() * 100.0, digits);
  }
  return util::format_mean_std(stats.mean() * 100.0, stats.stddev() * 100.0,
                               digits);
}

/// Prints a PASS/note line for a qualitative shape check.
inline bool shape_check(const std::string& description, bool holds) {
  std::cout << (holds ? "  [ok]   " : "  [note] ") << description << "\n";
  return holds;
}

/// The CIFAR-like / ImageNet-like dataset presets used by the CNN benches.
// Preset calibration (see EXPERIMENTS.md): chosen so that (a) a dense model
// reaches high-but-unsaturated accuracy within the default epoch budget,
// (b) the 90/95/98% sparsity grid spans the learnable-to-starved range on
// the width-scaled models, and (c) the data/parameter ratio is rich enough
// that sparsity is a capacity constraint rather than a regularizer (the
// regime the paper operates in).
inline data::SyntheticImageConfig cifar10_like(const BenchEnv& env,
                                               std::uint64_t seed) {
  data::SyntheticImageConfig cfg;
  cfg.num_classes = 8;
  cfg.image_size = 12;
  cfg.train_per_class = env.scaled(60, 16);
  cfg.test_per_class = env.scaled(25, 8);
  cfg.signal = 0.9;
  cfg.spatial_noise = 1.0;
  cfg.pixel_noise = 0.8;
  cfg.seed = seed;
  return cfg;
}

inline data::SyntheticImageConfig cifar100_like(const BenchEnv& env,
                                                std::uint64_t seed) {
  data::SyntheticImageConfig cfg = cifar10_like(env, seed);
  cfg.num_classes = 16;          // more classes, fewer samples per class
  cfg.train_per_class = env.scaled(36, 10);
  cfg.test_per_class = env.scaled(15, 5);
  cfg.signal = 0.85;
  return cfg;
}

inline data::SyntheticImageConfig imagenet_like(const BenchEnv& env,
                                                std::uint64_t seed) {
  data::SyntheticImageConfig cfg;
  cfg.num_classes = 20;
  cfg.image_size = 16;
  cfg.train_per_class = env.scaled(30, 8);
  cfg.test_per_class = env.scaled(10, 4);
  cfg.signal = 0.9;
  cfg.spatial_noise = 1.0;
  cfg.pixel_noise = 0.8;
  cfg.seed = seed;
  return cfg;
}

/// Calibrated DST hyperparameters for the bench scale (ΔT spaced so rounds
/// have recovery room; ε sized so the exploration bonus is commensurate
/// with gradient magnitudes — see DESIGN.md).
inline train::DstParams bench_dst_params() {
  train::DstParams dst;
  dst.delta_t = 8;
  dst.drop_fraction = 0.2;
  dst.c = 1e-3;
  dst.eps = 0.1;
  return dst;
}

/// Model presets (width-scaled as documented in DESIGN.md).
inline models::VggConfig vgg19_preset(const data::SyntheticImageConfig& data,
                                      double width = 0.1) {
  models::VggConfig cfg;
  cfg.depth = 19;
  cfg.in_channels = data.channels;
  cfg.image_size = data.image_size;
  cfg.num_classes = data.num_classes;
  cfg.width_multiplier = width;
  return cfg;
}

inline models::ResNetConfig resnet50_preset(
    const data::SyntheticImageConfig& data, double width = 0.0625) {
  models::ResNetConfig cfg;
  cfg.depth = 50;
  cfg.in_channels = data.channels;
  cfg.image_size = data.image_size;
  cfg.num_classes = data.num_classes;
  cfg.width_multiplier = width;
  return cfg;
}

}  // namespace dstee::bench
