// Table III reproduction: GNN link prediction on a wiki-talk-like graph
// (Dense vs ADMM prune-from-dense vs DST-EE at 80/90/98% sparsity).
#include "gnn_common.hpp"

int main() {
  const auto env = dstee::bench::BenchEnv::resolve(2);
  auto cfg = dstee::graph::wiki_talk_config(env.scale);
  return dstee::bench::run_gnn_table("Table III", "wiki-talk", cfg,
                                     "bench_results/table3_wikitalk.csv");
}
