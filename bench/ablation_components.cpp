// Component ablations for the design choices DESIGN.md calls out:
//   1. growth policy: exploitation-only (RigL) vs unstructured exploration
//      (SET) vs coverage-only (c→∞) vs the balanced DST-EE score;
//   2. ε sensitivity of the acquisition function;
//   3. ΔT (update frequency) sweep;
//   4. ERK vs uniform sparsity distribution;
//   5. drop-fraction decay schedule (constant / cosine / linear).
#include "bench_common.hpp"
#include "data/synthetic_tabular.hpp"
#include "models/mlp.hpp"

namespace dstee {
namespace {

struct Variant {
  std::string group;
  std::string name;
  train::ClassificationConfig cfg;
  train::MeanStd acc;
  train::MeanStd exploration;
};

int run() {
  const bench::BenchEnv env = bench::BenchEnv::resolve(3);
  const std::size_t epochs = env.epochs_or(16);

  std::cout << "=== Ablations: DST-EE component and hyperparameter study "
               "(VGG-19-like, CIFAR-10-like, sparsity 0.95) ===\n"
            << "(epochs=" << epochs << ", seeds=" << env.seeds << ")\n\n";
  util::Timer timer;

  auto base_cfg = [&] {
    train::ClassificationConfig cfg;
    cfg.method = train::MethodKind::kDstEe;
    cfg.sparsity = 0.95;
    cfg.epochs = epochs;
    cfg.batch_size = 32;
    cfg.lr = 0.08;
    cfg.dst = bench::bench_dst_params();
    return cfg;
  };

  std::vector<Variant> variants;
  // 1. growth policy family
  {
    auto cfg = base_cfg();
    cfg.method = train::MethodKind::kRigl;
    variants.push_back({"growth", "exploitation-only (RigL)", cfg, {}, {}});
    cfg = base_cfg();
    cfg.method = train::MethodKind::kSet;
    variants.push_back({"growth", "random exploration (SET)", cfg, {}, {}});
    cfg = base_cfg();
    cfg.dst.c = 1e3;  // bonus dwarfs gradients → coverage-only growth
    variants.push_back({"growth", "coverage-only (c -> inf)", cfg, {}, {}});
    cfg = base_cfg();
    variants.push_back({"growth", "balanced DST-EE", cfg, {}, {}});
  }
  // 2. epsilon sensitivity
  for (const double eps : {1e-3, 1e-1, 1.0}) {
    auto cfg = base_cfg();
    cfg.dst.eps = eps;
    variants.push_back({"epsilon", "eps=" + util::format_sci(eps, 0), cfg,
                        {}, {}});
  }
  // 3. update frequency
  for (const std::size_t dt : {4, 8, 16, 32}) {
    auto cfg = base_cfg();
    cfg.dst.delta_t = dt;
    variants.push_back({"delta_t", "dT=" + std::to_string(dt), cfg, {}, {}});
  }
  // 4. sparsity distribution
  for (const auto kind :
       {sparse::DistributionKind::kErk, sparse::DistributionKind::kUniform,
        sparse::DistributionKind::kEr}) {
    auto cfg = base_cfg();
    cfg.distribution = kind;
    variants.push_back({"distribution", sparse::to_string(kind), cfg, {}, {}});
  }
  // 5. drop fraction α₀ (the decay schedule itself is fixed per method in
  // the registry; sweep the initial fraction instead).
  for (const double alpha : {0.1, 0.2, 0.4}) {
    auto cfg = base_cfg();
    cfg.dst.drop_fraction = alpha;
    variants.push_back({"drop_fraction", "alpha=" + util::format_fixed(alpha, 1),
                        cfg, {}, {}});
  }

  std::vector<std::function<void()>> jobs;
  for (auto& v : variants) {
    jobs.emplace_back([&v, &env] {
      for (std::int64_t seed = 1; seed <= env.seeds; ++seed) {
        const auto data_cfg = bench::cifar10_like(env, 5);
        const data::SyntheticImageDataset train_set(
            data_cfg, data::SyntheticImageDataset::Split::kTrain);
        const data::SyntheticImageDataset test_set(
            data_cfg, data::SyntheticImageDataset::Split::kTest);
        auto cfg = v.cfg;
        cfg.seed = static_cast<std::uint64_t>(seed) * 37 + 5;
        util::Rng rng(cfg.seed);
        models::Vgg model(bench::vgg19_preset(data_cfg, 0.10), rng);
        const auto result = train::run_classification(model, nullptr,
                                                      train_set, test_set,
                                                      cfg);
        v.acc.add(result.best_test_accuracy);
        v.exploration.add(result.exploration_rate);
      }
    });
  }
  bench::run_parallel(jobs);

  util::CsvWriter csv("bench_results/ablation_components.csv",
                      {"group", "variant", "accuracy_mean", "accuracy_std",
                       "exploration"});
  std::string current_group;
  util::Table table({"Group", "Variant", "Accuracy", "Exploration R"});
  for (const auto& v : variants) {
    if (v.group != current_group && !current_group.empty()) {
      table.add_separator();
    }
    current_group = v.group;
    table.add_row({v.group, v.name, bench::cell(v.acc),
                   util::format_fixed(v.exploration.mean(), 3)});
    csv.write_row({v.group, v.name, util::format_fixed(v.acc.mean(), 4),
                   util::format_fixed(v.acc.stddev(), 4),
                   util::format_fixed(v.exploration.mean(), 4)});
  }
  table.print();
  csv.flush();

  auto find = [&](const std::string& group,
                  const std::string& name) -> const Variant& {
    for (const auto& v : variants) {
      if (v.group == group && v.name == name) return v;
    }
    util::fail("variant not found: " + group + "/" + name);
  };

  std::cout << "\nShape checks:\n";
  int holds = 0, total = 0;
  auto check = [&](const std::string& what, bool ok) {
    ++total;
    holds += bench::shape_check(what, ok) ? 1 : 0;
  };
  const auto& balanced = find("growth", "balanced DST-EE");
  check("balanced DST-EE >= exploitation-only (RigL)",
        balanced.acc.mean() >=
            find("growth", "exploitation-only (RigL)").acc.mean() - 0.01);
  check("balanced DST-EE >= random exploration (SET)",
        balanced.acc.mean() >=
            find("growth", "random exploration (SET)").acc.mean() - 0.01);
  check("balanced DST-EE >= coverage-only (c -> inf)",
        balanced.acc.mean() >=
            find("growth", "coverage-only (c -> inf)").acc.mean() - 0.01);
  check("coverage-only explores the most",
        find("growth", "coverage-only (c -> inf)").exploration.mean() >=
            balanced.exploration.mean() - 1e-6);
  check("smaller eps -> more exploration (bonus saturates for N=0)",
        find("epsilon", "eps=1e-03").exploration.mean() >=
            find("epsilon", "eps=1e+00").exploration.mean() - 1e-6);
  check("ERK >= uniform at equal global sparsity (paper's init choice)",
        find("distribution", "erk").acc.mean() >=
            find("distribution", "uniform").acc.mean() - 0.01);
  check("moderate dT beats extreme dT=32 (too few updates)",
        std::max(find("delta_t", "dT=8").acc.mean(),
                 find("delta_t", "dT=16").acc.mean()) >=
            find("delta_t", "dT=32").acc.mean() - 0.01);
  std::cout << "\n" << holds << "/" << total
            << " shape checks hold (bench wall time "
            << util::format_fixed(timer.seconds(), 1) << "s)\n"
            << "CSV: bench_results/ablation_components.csv\n";
  return 0;
}

}  // namespace
}  // namespace dstee

int main() { return dstee::run(); }
