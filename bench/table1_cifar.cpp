// Table I reproduction: test accuracy of sparse VGG-19 and ResNet-50 on
// CIFAR-10-like / CIFAR-100-like data at sparsity {90, 95, 98}% for every
// method row in the paper (pruning-at-init, dense-to-sparse, DST), plus the
// paper's 250-epoch DST-EE row (here: 1.5× the epoch budget).
//
// Absolute numbers come from synthetic data on scaled-down models run for a
// few epochs, so individual cells carry noise; the SHAPE checks at the
// bottom therefore assert the paper's claims in aggregate (mean gap and
// win-rate across the model×dataset grid), which is also how the paper's
// conclusions are framed ("DST-EE outperforms SOTA sparse training
// methods" across the board, not per-cell).
#include <map>

#include "bench_common.hpp"

namespace dstee {
namespace {

using bench::BenchEnv;

struct Cell {
  std::string model, dataset;
  train::MethodKind method = train::MethodKind::kDense;
  double sparsity = 0.0;
  std::size_t epochs = 0;
  bool long_budget = false;
  train::MeanStd acc;
  train::MeanStd exploration;
};

void run_cell(Cell& cell, const data::SyntheticImageConfig& data_cfg,
              const BenchEnv& env) {
  for (std::int64_t seed = 1; seed <= env.seeds; ++seed) {
    const data::SyntheticImageDataset train_set(
        data_cfg, data::SyntheticImageDataset::Split::kTrain);
    const data::SyntheticImageDataset test_set(
        data_cfg, data::SyntheticImageDataset::Split::kTest);

    train::ClassificationConfig cfg;
    cfg.method = cell.method;
    cfg.sparsity = cell.method == train::MethodKind::kDense ? 0.0
                                                            : cell.sparsity;
    cfg.epochs = cell.epochs;
    cfg.batch_size = 32;
    cfg.lr = 0.08;
    cfg.dst = bench::bench_dst_params();
    cfg.seed = static_cast<std::uint64_t>(seed) * 1000 + 17;

    util::Rng rng(cfg.seed);
    train::ClassificationResult result;
    if (cell.model == "vgg19") {
      models::Vgg model(bench::vgg19_preset(data_cfg, 0.10), rng);
      result =
          train::run_classification(model, nullptr, train_set, test_set, cfg);
    } else {
      models::ResNet model(bench::resnet50_preset(data_cfg, 0.05), rng);
      result =
          train::run_classification(model, nullptr, train_set, test_set, cfg);
    }
    cell.acc.add(result.best_test_accuracy);
    cell.exploration.add(result.exploration_rate);
  }
}

int run() {
  const BenchEnv env = BenchEnv::resolve(2);
  const std::size_t epochs = env.epochs_or(16);
  const std::vector<double> sparsities{0.90, 0.95, 0.98};
  const std::vector<train::MethodKind> methods{
      train::MethodKind::kDense,   train::MethodKind::kSnip,
      train::MethodKind::kGrasp,   train::MethodKind::kSynFlow,
      train::MethodKind::kStr,     train::MethodKind::kSis,
      train::MethodKind::kDeepR,   train::MethodKind::kSet,
      train::MethodKind::kRigl,    train::MethodKind::kDstEe,
  };

  std::cout << "=== Table I: sparse VGG-19 / ResNet-50 on CIFAR-10-like and "
               "CIFAR-100-like data ===\n"
            << "(synthetic substitute data; epochs=" << epochs
            << ", seeds=" << env.seeds << ", scale=" << env.scale << ")\n\n";
  util::Timer timer;

  // Build the full cell grid (dense once per model/dataset).
  std::vector<Cell> cells;
  for (const std::string model : {"vgg19", "resnet50"}) {
    for (const std::string ds : {"cifar10", "cifar100"}) {
      Cell dense;
      dense.model = model;
      dense.dataset = ds;
      dense.method = train::MethodKind::kDense;
      dense.epochs = epochs;
      cells.push_back(dense);
      for (const auto method : methods) {
        if (method == train::MethodKind::kDense) continue;
        for (const double s : sparsities) {
          Cell c;
          c.model = model;
          c.dataset = ds;
          c.method = method;
          c.sparsity = s;
          c.epochs = epochs;
          cells.push_back(c);
        }
      }
      for (const double s : sparsities) {  // the paper's 250-epoch row
        Cell c;
        c.model = model;
        c.dataset = ds;
        c.method = train::MethodKind::kDstEe;
        c.sparsity = s;
        c.epochs = epochs + epochs / 2;
        c.long_budget = true;
        cells.push_back(c);
      }
    }
  }

  std::vector<std::function<void()>> jobs;
  jobs.reserve(cells.size());
  for (auto& cell : cells) {
    jobs.emplace_back([&cell, &env] {
      const auto data_cfg = cell.dataset == "cifar10"
                                ? bench::cifar10_like(env, 5)
                                : bench::cifar100_like(env, 7);
      run_cell(cell, data_cfg, env);
    });
  }
  bench::run_parallel(jobs);

  // ---- render tables + CSV ---------------------------------------------
  util::CsvWriter csv("bench_results/table1_cifar.csv",
                      {"model", "dataset", "method", "sparsity", "epochs",
                       "accuracy_mean", "accuracy_std", "exploration"});
  auto key = [](const Cell& c) {
    return c.model + "/" + c.dataset + "/" + train::to_string(c.method) +
           (c.long_budget ? "-long" : "") + "/" +
           util::format_fixed(c.sparsity, 2);
  };
  std::map<std::string, const Cell*> by_key;
  for (const auto& c : cells) by_key[key(c)] = &c;

  for (const std::string model : {"vgg19", "resnet50"}) {
    for (const std::string ds : {"cifar10", "cifar100"}) {
      std::cout << "--- " << (model == "vgg19" ? "VGG-19" : "ResNet-50")
                << " / "
                << (ds == "cifar10" ? "CIFAR-10-like" : "CIFAR-100-like")
                << " ---\n";
      util::Table table({"Method", "90%", "95%", "98%"});
      for (const auto& c : cells) {
        if (c.model != model || c.dataset != ds) continue;
        if (c.method == train::MethodKind::kDense) {
          table.add_row({"Dense", bench::cell(c.acc), bench::cell(c.acc),
                         bench::cell(c.acc)});
          csv.write_row({model, ds, "Dense", "0", std::to_string(c.epochs),
                         util::format_fixed(c.acc.mean(), 4),
                         util::format_fixed(c.acc.stddev(), 4),
                         util::format_fixed(c.exploration.mean(), 4)});
        }
      }
      for (const auto method : methods) {
        if (method == train::MethodKind::kDense) continue;
        std::vector<std::string> row{train::to_string(method)};
        for (const double s : sparsities) {
          const Cell& c = *by_key.at(model + "/" + ds + "/" +
                                     train::to_string(method) + "/" +
                                     util::format_fixed(s, 2));
          row.push_back(bench::cell(c.acc));
          csv.write_row({model, ds, train::to_string(method),
                         util::format_fixed(s, 2), std::to_string(c.epochs),
                         util::format_fixed(c.acc.mean(), 4),
                         util::format_fixed(c.acc.stddev(), 4),
                         util::format_fixed(c.exploration.mean(), 4)});
        }
        table.add_row(row);
      }
      std::vector<std::string> row{"DST-EE (1.5x epochs)"};
      for (const double s : sparsities) {
        const Cell& c = *by_key.at(model + "/" + ds + "/DST-EE-long/" +
                                   util::format_fixed(s, 2));
        row.push_back(bench::cell(c.acc));
        csv.write_row({model, ds, "DST-EE-long", util::format_fixed(s, 2),
                       std::to_string(c.epochs),
                       util::format_fixed(c.acc.mean(), 4),
                       util::format_fixed(c.acc.stddev(), 4), ""});
      }
      table.add_separator();
      table.add_row(row);
      table.print();
      std::cout << "\n";
    }
  }
  csv.flush();

  // ---- aggregate shape checks ------------------------------------------
  auto mean_of = [&](train::MethodKind m, double s,
                     bool long_budget = false) {
    double acc = 0.0;
    int n = 0;
    for (const std::string model : {"vgg19", "resnet50"}) {
      for (const std::string ds : {"cifar10", "cifar100"}) {
        acc += by_key
                   .at(model + "/" + ds + "/" + train::to_string(m) +
                       (long_budget ? "-long" : "") + "/" +
                       util::format_fixed(m == train::MethodKind::kDense
                                              ? 0.0
                                              : s,
                                          2))
                   ->acc.mean();
        ++n;
      }
    }
    return acc / n;
  };
  auto win_rate = [&](train::MethodKind a, train::MethodKind b) {
    int wins = 0, n = 0;
    for (const std::string model : {"vgg19", "resnet50"}) {
      for (const std::string ds : {"cifar10", "cifar100"}) {
        for (const double s : {0.90, 0.95, 0.98}) {
          const double aa = by_key
                                .at(model + "/" + ds + "/" +
                                    train::to_string(a) + "/" +
                                    util::format_fixed(s, 2))
                                ->acc.mean();
          const double bb = by_key
                                .at(model + "/" + ds + "/" +
                                    train::to_string(b) + "/" +
                                    util::format_fixed(s, 2))
                                ->acc.mean();
          if (aa >= bb - 1e-9) ++wins;
          ++n;
        }
      }
    }
    return static_cast<double>(wins) / n;
  };

  std::cout << "Shape checks (aggregate over the model x dataset grid):\n";
  int holds = 0, total = 0;
  auto check = [&](const std::string& what, bool ok) {
    ++total;
    holds += bench::shape_check(what, ok) ? 1 : 0;
  };
  for (const double s : sparsities) {
    const std::string tag = " @" + util::format_fixed(s, 2);
    check("mean DST-EE >= mean RigL" + tag,
          mean_of(train::MethodKind::kDstEe, s) >=
              mean_of(train::MethodKind::kRigl, s) - 0.005);
    check("mean DST-EE >= mean SET" + tag,
          mean_of(train::MethodKind::kDstEe, s) >=
              mean_of(train::MethodKind::kSet, s) - 0.005);
    check("mean DST-EE >= mean DeepR" + tag,
          mean_of(train::MethodKind::kDstEe, s) >=
              mean_of(train::MethodKind::kDeepR, s) - 0.005);
  }
  check("DST-EE win-rate vs RigL >= 50%",
        win_rate(train::MethodKind::kDstEe, train::MethodKind::kRigl) >= 0.5);
  check("DST-EE win-rate vs SET >= 50%",
        win_rate(train::MethodKind::kDstEe, train::MethodKind::kSet) >= 0.5);
  check("DST-EE win-rate vs DeepR >= 50%",
        win_rate(train::MethodKind::kDstEe, train::MethodKind::kDeepR) >=
            0.5);
  check("mean DST-EE >= mean SNIP @0.98 (static masks fade at extreme "
        "sparsity)",
        mean_of(train::MethodKind::kDstEe, 0.98) >=
            mean_of(train::MethodKind::kSnip, 0.98) - 0.005);
  check("longer budget helps DST-EE @0.90 (paper's 250-epoch row)",
        mean_of(train::MethodKind::kDstEe, 0.90, true) >=
            mean_of(train::MethodKind::kDstEe, 0.90) - 0.01);
  // Near-dense claim: DST-EE at 90% within a few points of dense.
  check("DST-EE @0.90 within 5 points of dense (paper: ~lossless at 90%)",
        mean_of(train::MethodKind::kDstEe, 0.90) >=
            mean_of(train::MethodKind::kDense, 0.0) - 0.05);

  std::cout << "\n" << holds << "/" << total
            << " shape checks hold (bench wall time "
            << util::format_fixed(timer.seconds(), 1) << "s)\n"
            << "CSV: bench_results/table1_cifar.csv\n";
  return 0;
}

}  // namespace
}  // namespace dstee

int main() { return dstee::run(); }
