// Table II reproduction: ResNet-50 on ImageNet-like data at sparsity
// {80, 90}% — Top-1 accuracy plus train/inference FLOPs as multiples of
// dense, for the full method column of the paper (Dense, SNIP, GraSP,
// DeepR, SNFS, DSR, SET, RigL, MEST, RigL-ITOP, DST-EE).
//
// FLOPs multiples are analytic (RigL's accounting convention, which the
// paper follows), so those columns are exact properties of the architecture
// + final layer densities; only the accuracy column rides on synthetic data.
#include <map>

#include "bench_common.hpp"

namespace dstee {
namespace {

using bench::BenchEnv;

struct Cell {
  train::MethodKind method = train::MethodKind::kDense;
  double sparsity = 0.0;
  train::MeanStd acc;
  double train_flops = 1.0;
  double infer_flops = 1.0;
};

int run() {
  const BenchEnv env = BenchEnv::resolve(2);
  const std::size_t epochs = env.epochs_or(14);
  const std::vector<double> sparsities{0.80, 0.90};
  const std::vector<train::MethodKind> methods{
      train::MethodKind::kDense, train::MethodKind::kSnip,
      train::MethodKind::kGrasp, train::MethodKind::kDeepR,
      train::MethodKind::kSnfs,  train::MethodKind::kDsr,
      train::MethodKind::kSet,   train::MethodKind::kRigl,
      train::MethodKind::kMest,  train::MethodKind::kRiglItop,
      train::MethodKind::kDstEe,
  };

  std::cout << "=== Table II: ResNet-50 on ImageNet-like data (Top-1 + "
               "FLOPs multiples of dense) ===\n"
            << "(synthetic substitute data; epochs=" << epochs
            << ", seeds=" << env.seeds << ", scale=" << env.scale << ")\n\n";
  util::Timer timer;

  std::vector<Cell> cells;
  cells.push_back({train::MethodKind::kDense, 0.0, {}, 1.0, 1.0});
  for (const auto method : methods) {
    if (method == train::MethodKind::kDense) continue;
    for (const double s : sparsities) cells.push_back({method, s, {}, 0, 0});
  }

  std::vector<std::function<void()>> jobs;
  for (auto& cell : cells) {
    jobs.emplace_back([&cell, &env, epochs] {
      for (std::int64_t seed = 1; seed <= env.seeds; ++seed) {
        const auto data_cfg = bench::imagenet_like(env, 11);
        const data::SyntheticImageDataset train_set(
            data_cfg, data::SyntheticImageDataset::Split::kTrain);
        const data::SyntheticImageDataset test_set(
            data_cfg, data::SyntheticImageDataset::Split::kTest);

        train::ClassificationConfig cfg;
        cfg.method = cell.method;
        cfg.sparsity = cell.sparsity;
        cfg.epochs = epochs;
        cfg.batch_size = 32;
        cfg.lr = 0.08;
        cfg.dst = bench::bench_dst_params();
        cfg.seed = static_cast<std::uint64_t>(seed) * 77 + 3;

        util::Rng rng(cfg.seed);
        models::ResNet model(bench::resnet50_preset(data_cfg, 0.05), rng);
        const sparse::FlopsModel fm = model.flops_model();
        const auto result =
            train::run_classification(model, &fm, train_set, test_set, cfg);
        cell.acc.add(result.best_test_accuracy);
        cell.train_flops = result.train_flops_multiple;
        cell.infer_flops = result.inference_flops_multiple;
      }
    });
  }
  bench::run_parallel(jobs);

  util::CsvWriter csv("bench_results/table2_imagenet.csv",
                      {"method", "sparsity", "accuracy_mean", "accuracy_std",
                       "train_flops_x", "inference_flops_x"});

  for (const double s : sparsities) {
    std::cout << "--- Sparsity " << util::format_fixed(s * 100, 0)
              << "% ---\n";
    util::Table table(
        {"Method", "Train FLOPs (xDense)", "Infer FLOPs (xDense)", "Top-1"});
    for (const auto& c : cells) {
      if (c.method != train::MethodKind::kDense && c.sparsity != s) continue;
      table.add_row({train::to_string(c.method),
                     util::format_multiple(c.train_flops),
                     util::format_multiple(c.infer_flops),
                     bench::cell(c.acc)});
      csv.write_row({train::to_string(c.method),
                     util::format_fixed(c.sparsity, 2),
                     util::format_fixed(c.acc.mean(), 4),
                     util::format_fixed(c.acc.stddev(), 4),
                     util::format_fixed(c.train_flops, 4),
                     util::format_fixed(c.infer_flops, 4)});
    }
    table.print();
    std::cout << "\n";
  }
  csv.flush();

  auto find = [&](train::MethodKind m, double s) -> const Cell& {
    for (const auto& c : cells) {
      if (c.method == m && (m == train::MethodKind::kDense ||
                            c.sparsity == s)) {
        return c;
      }
    }
    util::fail("cell not found");
  };

  std::cout << "Shape checks (paper's qualitative claims):\n";
  int holds = 0, total = 0;
  auto check = [&](const std::string& what, bool ok) {
    ++total;
    holds += bench::shape_check(what, ok) ? 1 : 0;
  };
  for (const double s : sparsities) {
    const std::string tag = " @" + util::format_fixed(s, 2);
    const auto& ee = find(train::MethodKind::kDstEe, s);
    const auto& rigl = find(train::MethodKind::kRigl, s);
    const auto& set = find(train::MethodKind::kSet, s);
    check("DST-EE accuracy >= RigL" + tag,
          ee.acc.mean() >= rigl.acc.mean() - 0.005);
    check("DST-EE accuracy >= SET" + tag,
          ee.acc.mean() >= set.acc.mean() - 0.005);
    // FLOPs shape: sparse training is far below dense; ERK multiples are
    // above (1 - sparsity) because ERK densifies cheap layers.
    check("sparse train FLOPs < 0.7x dense" + tag,
          ee.train_flops < 0.7);
    check("ERK inference multiple exceeds (1 - sparsity)" + tag,
          ee.infer_flops > (1.0 - s));
    // DSR/SNFS redistribution changes inference FLOPs away from RigL's.
    const auto& dsr = find(train::MethodKind::kDsr, s);
    check("DSR redistribution shifts inference FLOPs" + tag,
          std::abs(dsr.infer_flops - rigl.infer_flops) > 1e-4);
    // RigL-ITOP trains denser (higher train multiple) than plain RigL, as
    // in the paper's 0.42x vs 0.23x column.
    const auto& itop = find(train::MethodKind::kRiglItop, s);
    check("RigL-ITOP train FLOPs >= RigL train FLOPs" + tag,
          itop.train_flops >= rigl.train_flops - 1e-6);
  }
  // Gradient-scored growth pays a dense-backward surcharge over SET.
  check("RigL train FLOPs > SET train FLOPs @0.80",
        find(train::MethodKind::kRigl, 0.8).train_flops >
            find(train::MethodKind::kSet, 0.8).train_flops);

  std::cout << "\n" << holds << "/" << total
            << " shape checks hold (bench wall time "
            << util::format_fixed(timer.seconds(), 1) << "s)\n"
            << "CSV: bench_results/table2_imagenet.csv\n";
  return 0;
}

}  // namespace
}  // namespace dstee

int main() { return dstee::run(); }
