// Proposition 1 empirical check: DST-EE converges at rate O(1/√Q) in the
// number of mask-update rounds Q, up to a sparsity-dependent floor
// (the τ² mask-error term).
//
// Protocol: train the same model for increasing budgets (Q update rounds,
// ΔT fixed), recording ‖∇F(W⊙M)‖² at every update step; report the running
// average 1/Q Σ_q E‖∇F‖² as a function of Q and check it decays, and that
// higher sparsity (larger τ) leaves a higher floor.
#include "bench_common.hpp"
#include "data/dataloader.hpp"
#include "data/synthetic_tabular.hpp"
#include "methods/drop_policy.hpp"
#include "methods/dst_engine.hpp"
#include "methods/grow_policy.hpp"
#include "models/mlp.hpp"
#include "nn/losses.hpp"
#include "optim/lr_schedule.hpp"
#include "tensor/ops.hpp"
#include "optim/optimizer.hpp"

namespace dstee {
namespace {

// Average masked-gradient squared norm recorded at each update round.
std::vector<double> grad_norm_trace(double sparsity, std::size_t rounds,
                                    std::uint64_t seed) {
  data::SyntheticTabularConfig dcfg;
  dcfg.num_classes = 4;
  dcfg.features = 24;
  dcfg.train_per_class = 64;
  dcfg.test_per_class = 8;
  dcfg.class_separation = 2.5;
  dcfg.seed = 31;
  const data::SyntheticTabularDataset train_set(
      dcfg, data::SyntheticTabularDataset::Split::kTrain);

  util::Rng rng(seed);
  models::MlpConfig mcfg;
  mcfg.in_features = 24;
  mcfg.hidden = {64, 64};
  mcfg.out_features = 4;
  models::Mlp model(mcfg, rng);
  sparse::SparseModel smodel(model, sparsity,
                             sparse::DistributionKind::kErk, rng);
  optim::Sgd::Config sgd_cfg;
  sgd_cfg.lr = 0.02;
  sgd_cfg.momentum = 0.0;  // plain SGD matches the proposition's setting
  optim::Sgd optimizer(model.parameters(), sgd_cfg);

  const std::size_t delta_t = 8;
  const std::size_t total_iters = delta_t * (rounds + 1);
  data::DataLoader loader(train_set, 32, rng.fork("loader"));
  optim::ConstantLr schedule(0.02);  // fixed α as in the proposition

  methods::DstEngineConfig engine_cfg;
  engine_cfg.schedule.delta_t = delta_t;
  engine_cfg.schedule.total_iterations = total_iters;
  engine_cfg.schedule.stop_fraction = 1.0;
  engine_cfg.schedule.initial_drop_fraction = 0.2;
  engine_cfg.drop = std::make_unique<methods::MagnitudeDrop>();
  methods::DstEeGrow::Config ee;
  ee.c = 5e-3;
  ee.eps = 0.1;
  engine_cfg.grow = std::make_unique<methods::DstEeGrow>(ee);
  methods::DstEngine engine(smodel, optimizer, std::move(engine_cfg),
                            rng.fork("engine"));

  nn::SoftmaxCrossEntropy loss;
  std::vector<double> norms;
  std::size_t iteration = 0;
  while (iteration < total_iters) {
    if (!loader.has_next()) loader.start_epoch();
    const auto batch = loader.next_batch();
    model.zero_grad();
    loss.forward(model.forward(batch.examples), batch.labels);
    model.backward(loss.backward());
    const bool updated = engine.maybe_update(iteration, 0.02);
    smodel.apply_masks_to_grads();
    if (updated) {
      double norm_sq = 0.0;
      for (const auto& layer : smodel.layers()) {
        norm_sq += tensor::squared_norm(layer.param().grad);
      }
      norms.push_back(norm_sq);
    }
    optimizer.set_learning_rate(0.02);
    optimizer.step();
    smodel.apply_masks_to_values();
    ++iteration;
  }
  return norms;
}

int run() {
  const bench::BenchEnv env = bench::BenchEnv::resolve(3);
  std::cout << "=== Ablation: Proposition 1 convergence — running average "
               "of ||grad F(W.M)||^2 vs Q ===\n\n";
  util::Timer timer;

  const std::vector<std::size_t> budgets{4, 8, 16, 32, 64};
  const std::vector<double> sparsities{0.8, 0.95};

  struct Row {
    double sparsity;
    std::vector<double> avg_by_q;  // running average at each budget point
  };
  std::vector<Row> rows;
  for (const double s : sparsities) rows.push_back({s, {}});

  std::vector<std::function<void()>> jobs;
  for (auto& row : rows) {
    jobs.emplace_back([&row, &env, &budgets] {
      // One long run per seed; running averages read off its prefix.
      std::vector<std::vector<double>> traces;
      for (std::int64_t seed = 1; seed <= env.seeds; ++seed) {
        traces.push_back(grad_norm_trace(
            row.sparsity, budgets.back(),
            static_cast<std::uint64_t>(seed) * 7 + 1));
      }
      for (const std::size_t q : budgets) {
        double avg = 0.0;
        for (const auto& trace : traces) {
          double prefix = 0.0;
          const std::size_t n = std::min(q, trace.size());
          for (std::size_t i = 0; i < n; ++i) prefix += trace[i];
          avg += prefix / static_cast<double>(std::max<std::size_t>(1, n));
        }
        row.avg_by_q.push_back(avg / static_cast<double>(traces.size()));
      }
    });
  }
  bench::run_parallel(jobs);

  util::CsvWriter csv("bench_results/ablation_convergence.csv",
                      {"sparsity", "Q", "avg_grad_norm_sq"});
  util::Table table({"Sparsity", "Q=4", "Q=8", "Q=16", "Q=32", "Q=64"});
  for (const auto& row : rows) {
    std::vector<std::string> cells{util::format_fixed(row.sparsity, 2)};
    for (std::size_t i = 0; i < budgets.size(); ++i) {
      cells.push_back(util::format_sci(row.avg_by_q[i], 2));
      csv.write_row({util::format_fixed(row.sparsity, 2),
                     std::to_string(budgets[i]),
                     util::format_sci(row.avg_by_q[i], 6)});
    }
    table.add_row(cells);
  }
  table.print();
  csv.flush();

  std::cout << "\nShape checks:\n";
  int holds = 0, total = 0;
  auto check = [&](const std::string& what, bool ok) {
    ++total;
    holds += bench::shape_check(what, ok) ? 1 : 0;
  };
  for (const auto& row : rows) {
    check("running average decays with Q (sparsity " +
              util::format_fixed(row.sparsity, 2) + ")",
          row.avg_by_q.back() < row.avg_by_q.front());
    // O(1/√Q) means halving, not vanishing, across a 16x budget increase;
    // require at least a 1.5x reduction.
    check("decay is at least 1.5x across 16x more rounds (sparsity " +
              util::format_fixed(row.sparsity, 2) + ")",
          row.avg_by_q.front() / std::max(row.avg_by_q.back(), 1e-12) > 1.5);
  }
  std::cout << "\n" << holds << "/" << total
            << " shape checks hold (bench wall time "
            << util::format_fixed(timer.seconds(), 1) << "s)\n"
            << "CSV: bench_results/ablation_convergence.csv\n";
  return 0;
}

}  // namespace
}  // namespace dstee

int main() { return dstee::run(); }
