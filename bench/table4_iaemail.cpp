// Table IV reproduction: GNN link prediction on an ia-email-like graph
// (Dense vs ADMM prune-from-dense vs DST-EE at 80/90/98% sparsity). The
// paper's headline here: prune-from-dense collapses at 98% (67.18) while
// DST-EE holds (82.82).
#include "gnn_common.hpp"

int main() {
  const auto env = dstee::bench::BenchEnv::resolve(2);
  auto cfg = dstee::graph::ia_email_config(0.5 * env.scale);
  return dstee::bench::run_gnn_table("Table IV", "ia-email", cfg,
                                     "bench_results/table4_iaemail.csv");
}
