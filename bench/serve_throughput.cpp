// serve_throughput — dense eval forward vs. compiled-CSR forward, plus
// the runtime-pool scaling story.
//
// The deployment claim of the sparse-training story: once the topology is
// fixed, inference cost should track density. This bench sweeps sparsity
// (50–95%) × batch size on an MLP workload (CSR SpMM) and a VGG-style conv
// workload (CSR-over-im2col SpMM) and reports rows/second for the dense
// training-stack forward and the serve::CompiledNet CSR forward, plus the
// speedup. Rows land in bench_results/serve_throughput.csv with a
// `workload` column.
//
// Runtime sweeps follow: (1) intra-op SpMM on the persistent pool vs
// the retired per-call thread spawn at small batches, where spawn
// latency dominates the kernel — the reason the pool exists; (2)
// row-range partitioning; (3) epilogue fusion (fused vs unfused
// pipelines, equals-gated); (4) SIMD kernel-backend dispatch and int8
// quantized serving (equals-/top-1-gated against scalar fp32); (5)
// InferenceServer aggregate throughput across shard counts (replicated
// CompiledNets, round-robin routing); (6) observability overhead —
// tracing disabled vs armed-idle, gated at <= 2% throughput cost. All
// land in bench_results/serve_scaling.csv.
//
// DSTEE_SCALE scales the model width; DSTEE_SERVE_MIN_TIME (seconds, default
// 0.15) controls per-cell measurement time.
#include <atomic>
#include <cmath>
#include <future>

#include "bench_common.hpp"
#include "spawn_chunks.hpp"
#include "kernels/simd/backend.hpp"
#include "models/mlp.hpp"
#include "models/resnet.hpp"
#include "models/vgg.hpp"
#include "nn/conv2d.hpp"
#include "obs/trace.hpp"
#include "serve/compiled_net.hpp"
#include "serve/delta.hpp"
#include "serve/passes.hpp"
#include "serve/registry.hpp"
#include "serve/server.hpp"
#include "sparse/sparse_model.hpp"
#include "tensor/init.hpp"

namespace dstee {
namespace {

/// Rows/second of `fn` (which consumes `rows` rows per call), time-boxed.
double measure_rows_per_s(const std::function<void()>& fn, std::size_t rows,
                          double min_seconds) {
  fn();  // warmup
  util::Timer timer;
  std::size_t iters = 0;
  do {
    fn();
    ++iters;
  } while (timer.seconds() < min_seconds);
  return static_cast<double>(rows * iters) / timer.seconds();
}

struct SweepFlags {
  bool csr_wins_at_90 = true;
  bool csr_monotone = true;
};

/// One (model, sparsity) × batches sweep: correctness gate, then timing.
void sweep_batches(nn::Sequential& model, const serve::CompiledNet& net,
                   const tensor::Shape& sample_shape, double sparsity,
                   const std::vector<std::size_t>& batches,
                   const std::string& workload, double min_time,
                   util::Table& table, util::CsvWriter& csv,
                   SweepFlags& flags, double& prev_csr_rate_tail) {
  for (const std::size_t batch : batches) {
    tensor::Tensor x{sample_shape.prepended(batch)};
    util::Rng xrng(batch);
    tensor::fill_normal(x, xrng, 0.0f, 1.0f);

    // Correctness gate before timing anything.
    util::check(net.forward(x).allclose(model.forward(x), 1e-3f),
                "compiled forward diverged from dense eval forward");

    const double dense_rate =
        measure_rows_per_s([&] { model.forward(x); }, batch, min_time);
    const double csr_rate =
        measure_rows_per_s([&] { net.forward(x); }, batch, min_time);
    const double speedup = csr_rate / dense_rate;

    if (sparsity >= 0.9 && speedup <= 1.0) flags.csr_wins_at_90 = false;
    if (batch == batches.back()) {
      if (prev_csr_rate_tail > 0.0 && csr_rate < prev_csr_rate_tail * 0.8) {
        flags.csr_monotone = false;  // higher sparsity must not serve slower
      }
      prev_csr_rate_tail = csr_rate;
    }

    table.add_row({workload, util::format_fixed(sparsity, 2),
                   std::to_string(batch), util::format_fixed(dense_rate, 0),
                   util::format_fixed(csr_rate, 0),
                   util::format_fixed(speedup, 2) + "x",
                   util::format_fixed(net.density() * 100.0, 1) + "%"});
    csv.write_row({workload, util::format_fixed(sparsity, 4),
                   std::to_string(batch), util::format_fixed(dense_rate, 1),
                   util::format_fixed(csr_rate, 1),
                   util::format_fixed(speedup, 3),
                   std::to_string(net.total_nnz()),
                   util::format_fixed(net.density(), 4)});
  }
}

/// SpMM through the persistent pool vs. the retired per-call spawn, at
/// the small batches where a server actually lives. The spawn baseline
/// reproduces CsrMatrix::spmm's exact loop over the public CSR arrays so
/// only the fan-out mechanism differs.
void sweep_intra_op_pool(double min_time, util::CsvWriter& csv) {
  const std::size_t n = 512;
  const std::size_t intra = 4;
  util::Rng rng(29);
  tensor::Tensor w({n, n});
  tensor::fill_normal(w, rng, 0.0f, 1.0f);
  for (std::size_t i = 0; i < w.numel(); ++i) {
    if (!rng.bernoulli(0.1)) w[i] = 0.0f;
  }
  const sparse::CsrMatrix csr = sparse::CsrMatrix::from_dense(w);

  auto spawn_spmm = [&](const tensor::Tensor& x) {
    const std::size_t batch = x.dim(0);
    tensor::Tensor y({batch, csr.rows()});
    bench::spawn_chunks(csr.rows(), intra, [&](std::size_t r0,
                                                 std::size_t r1) {
      for (std::size_t b = 0; b < batch; ++b) {
        const float* xn = x.raw() + b * csr.cols();
        float* yn = y.raw() + b * csr.rows();
        for (std::size_t r = r0; r < r1; ++r) {
          float acc = 0.0f;
          for (std::size_t k = csr.row_ptr()[r]; k < csr.row_ptr()[r + 1];
               ++k) {
            acc += csr.values()[k] * xn[csr.col_idx()[k]];
          }
          yn[r] = acc;
        }
      }
    });
    return y;
  };

  std::cout << "intra-op fan-out: persistent pool vs per-call spawn "
            << "(512x512 @ 90% sparse, " << intra << " chunks)\n";
  util::Table table({"batch", "spawn rows/s", "pool rows/s", "speedup"});
  double speedup_product = 1.0;
  std::size_t cells = 0;
  for (const std::size_t batch : {1u, 2u, 4u, 8u}) {
    tensor::Tensor x({batch, n});
    util::Rng xrng(100 + batch);
    tensor::fill_normal(x, xrng, 0.0f, 1.0f);
    // Correctness first: both fan-outs must agree bit-for-bit.
    util::check(
        csr.spmm(x, runtime::IntraOp{intra, nullptr}).equals(spawn_spmm(x)),
        "pool and spawn SpMM diverged");
    const double spawn_rate =
        measure_rows_per_s([&] { spawn_spmm(x); }, batch, min_time);
    const double pool_rate = measure_rows_per_s(
        [&] { csr.spmm(x, runtime::IntraOp{intra, nullptr}); }, batch,
        min_time);
    const double speedup = pool_rate / spawn_rate;
    speedup_product *= speedup;
    ++cells;
    table.add_row({std::to_string(batch), util::format_fixed(spawn_rate, 0),
                   util::format_fixed(pool_rate, 0),
                   util::format_fixed(speedup, 2) + "x"});
    csv.write_row({"intra_op", "1", std::to_string(intra),
                   std::to_string(batch), util::format_fixed(spawn_rate, 1),
                   util::format_fixed(pool_rate, 1),
                   util::format_fixed(speedup, 3)});
  }
  std::cout << table.render() << "\n";
  const double mean_speedup =
      std::pow(speedup_product, 1.0 / static_cast<double>(cells));
  bench::shape_check(
      "persistent pool beats per-call spawn at batch <= 8 (geomean)",
      mean_speedup > 1.0);
}

/// Row-range partitioning (serve::PartitionRows): the ROADMAP's second
/// sharding step. The heaviest CSR ops split into k cost-balanced row
/// slices executed as one fan-out on the runtime pool, so a single
/// sample's biggest layers run on several workers at once — the batch-1
/// latency lever replication alone cannot pull. Two workloads:
///
///   partition_layer  the largest conv of a 90%-sparse VGG-19-at-width
///                    profile on its own, batch 1 — the acceptance metric
///   partition        a full 90%-sparse VGG-19, batch 1..8
///
/// k=1 rows are the unpartitioned baseline; every partitioned program is
/// gated bit-identical to it before timing.
void sweep_partition(const bench::BenchEnv& env, double min_time,
                     util::CsvWriter& csv) {
  const std::size_t hw =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  const std::vector<std::size_t> ways = {1, 2, 4};

  auto partitioned = [&](nn::Sequential& model,
                         const sparse::SparseModel& smodel,
                         const tensor::Shape& sample, std::size_t k,
                         double threshold) {
    serve::Compiler compiler;
    if (k >= 2) {
      serve::PartitionRowsOptions popts;
      popts.ways = k;
      popts.min_cost_share = threshold;
      popts.sample_shape = sample;
      compiler.add_pass(std::make_unique<serve::PartitionRows>(popts));
    }
    return compiler.compile(model, &smodel);
  };

  // --- largest layer alone, batch 1 ------------------------------------
  // VGG-19's heaviest op at this width profile: a 3x3 conv over the
  // widest stage, 90% sparse.
  const std::size_t ch = env.scaled(128, 32);
  util::Rng rng(53);
  nn::Sequential layer;
  layer.emplace<nn::Conv2d>(ch, ch, 3, 1, 1, rng);
  sparse::SparseModel layer_state(layer, 0.9,
                                  sparse::DistributionKind::kUniform, rng);
  layer.set_training(false);
  const tensor::Shape layer_sample({ch, 8, 8});
  tensor::Tensor lx{layer_sample.prepended(1)};
  util::Rng lrng(54);
  tensor::fill_normal(lx, lrng, 0.0f, 1.0f);

  std::cout << "row-range partitioning: largest layer (spconv " << ch
            << "->" << ch << " k3 @ 8x8, 90% sparse), batch 1, " << hw
            << " hw threads\n";
  util::Table layer_table({"partitions", "rows/s", "speedup"});
  double layer_base = 0.0, layer_best = 0.0;
  tensor::Tensor layer_ref;
  for (const std::size_t k : ways) {
    const serve::CompiledNet net =
        partitioned(layer, layer_state, layer_sample, k, 0.0);
    if (k == 1) {
      layer_ref = net.forward(lx);
    } else {
      util::check(net.forward(lx).equals(layer_ref),
                  "partitioned layer diverged from unpartitioned");
    }
    const double rate =
        measure_rows_per_s([&] { net.forward(lx); }, 1, min_time);
    if (k == 1) layer_base = rate;
    layer_best = std::max(layer_best, rate);
    layer_table.add_row({std::to_string(k), util::format_fixed(rate, 0),
                         util::format_fixed(rate / layer_base, 2) + "x"});
    csv.write_row({"partition_layer", std::to_string(k), "-", "1",
                   util::format_fixed(layer_base, 1),
                   util::format_fixed(rate, 1),
                   util::format_fixed(rate / layer_base, 3)});
  }
  std::cout << layer_table.render() << "\n";

  // --- whole VGG-19 ------------------------------------------------------
  models::VggConfig vcfg;
  vcfg.depth = 19;
  vcfg.image_size = 16;
  vcfg.num_classes = 10;
  vcfg.width_multiplier = 0.25 * env.scale;
  util::Rng vrng(57);
  models::Vgg vgg(vcfg, vrng);
  sparse::SparseModel vgg_state(vgg, 0.9, sparse::DistributionKind::kErk,
                                vrng);
  tensor::Tensor warm({2, 3, vcfg.image_size, vcfg.image_size});
  util::Rng wrng(58);
  tensor::fill_normal(warm, wrng, 0.0f, 1.0f);
  vgg.forward(warm);  // move BN stats off init so folding is non-trivial
  vgg.set_training(false);
  const tensor::Shape vgg_sample({3, vcfg.image_size, vcfg.image_size});

  std::cout << "row-range partitioning: VGG-19 @ "
            << vcfg.image_size << "x" << vcfg.image_size << " width x"
            << util::format_fixed(vcfg.width_multiplier, 2)
            << ", 90% sparse (split ops with >=10% FLOPs share)\n";
  util::Table net_table({"partitions", "batch", "rows/s", "speedup"});
  double net_base_b1 = 0.0, net_best_b1 = 0.0;
  const serve::CompiledNet vgg_baseline =
      partitioned(vgg, vgg_state, vgg_sample, 1, 0.10);
  for (const std::size_t k : ways) {
    const serve::CompiledNet net =
        k == 1 ? vgg_baseline.clone()
               : partitioned(vgg, vgg_state, vgg_sample, k, 0.10);
    for (const std::size_t batch : {std::size_t{1}, std::size_t{8}}) {
      tensor::Tensor x{vgg_sample.prepended(batch)};
      util::Rng xrng(60 + batch);
      tensor::fill_normal(x, xrng, 0.0f, 1.0f);
      util::check(net.forward(x).equals(vgg_baseline.forward(x)),
                  "partitioned VGG diverged from unpartitioned");
      const double rate =
          measure_rows_per_s([&] { net.forward(x); }, batch, min_time);
      double base = rate;
      if (batch == 1) {
        if (k == 1) net_base_b1 = rate;
        base = net_base_b1;
        net_best_b1 = std::max(net_best_b1, rate);
      }
      net_table.add_row({std::to_string(k), std::to_string(batch),
                         util::format_fixed(rate, 0),
                         batch == 1
                             ? util::format_fixed(rate / base, 2) + "x"
                             : "-"});
      csv.write_row({"partition", std::to_string(k), "-",
                     std::to_string(batch),
                     batch == 1 ? util::format_fixed(net_base_b1, 1) : "-",
                     util::format_fixed(rate, 1),
                     batch == 1 ? util::format_fixed(rate / base, 3) : "-"});
    }
  }
  std::cout << net_table.render() << "\n";

  if (hw >= 2) {
    bench::shape_check(
        "partitioning (k in {2,4}) improves batch-1 largest-layer latency",
        layer_best > layer_base);
    bench::shape_check(
        "partitioning (k in {2,4}) improves batch-1 VGG-19 latency",
        net_best_b1 > net_base_b1);
  } else {
    std::cout << "[skip] partition speedup checks need >= 2 hw threads\n";
  }
}

/// Epilogue fusion (serve::FuseEpilogue): the graph-fusion step. The
/// fused pipeline absorbs activation and residual-add nodes into the
/// producing CSR op's kernel epilogue, so each output element is biased,
/// added and activated in-register during the SpMM output loop instead
/// of in separate full passes over the output tensor. Two workloads:
///
///   fusion_mlp     90%-sparse MLP (ReLU epilogues on the hidden SpMMs)
///   fusion_resnet  90%-sparse ResNet-18 (conv ReLUs + residual adds)
///
/// Every fused program is gated bit-identical to the unfused default
/// pipeline before timing — fusion reorders no float ops, it only
/// removes tensor-wide passes. The fused batch-1 rate is the latency
/// claim: small batches are memory-pass-bound, so dropping a pass shows
/// up directly.
void sweep_fusion(const bench::BenchEnv& env, double min_time,
                  util::CsvWriter& csv) {
  constexpr const char* kFusedSpec =
      "elide-dropout,fold-bn,fuse-epilogue,free-after-last-use";
  const std::vector<std::size_t> batches = {1, 2, 4, 8};

  struct B1 {
    double unfused = 0.0;
    double fused = 0.0;
  };
  auto run_workload = [&](const std::string& workload,
                          nn::Sequential& model,
                          const sparse::SparseModel& smodel,
                          const tensor::Shape& sample) {
    const serve::CompiledNet unfused =
        serve::CompiledNet::compile(model, &smodel);
    serve::Compiler compiler;
    compiler.pipeline_from_spec(kFusedSpec);
    const serve::CompiledNet fused = compiler.compile(model, &smodel);
    util::check(fused.num_fused_ops() > 0,
                "fusion sweep workload produced no fused ops");

    std::cout << "epilogue fusion: " << workload << " ("
              << fused.num_fused_ops() << " fused ops, "
              << unfused.num_ops() - fused.num_ops()
              << " nodes removed)\n";
    util::Table table(
        {"batch", "unfused rows/s", "fused rows/s", "speedup"});
    B1 b1;
    for (const std::size_t batch : batches) {
      tensor::Tensor x{sample.prepended(batch)};
      util::Rng xrng(300 + batch);
      tensor::fill_normal(x, xrng, 0.0f, 1.0f);
      // Equals gate: fused must match unfused bit-for-bit, not just
      // approximately — fusion changes where ops run, never their order.
      util::check(fused.forward(x).equals(unfused.forward(x)),
                  "fused forward diverged from unfused");
      const double base =
          measure_rows_per_s([&] { unfused.forward(x); }, batch, min_time);
      const double rate =
          measure_rows_per_s([&] { fused.forward(x); }, batch, min_time);
      if (batch == 1) {
        b1.unfused = base;
        b1.fused = rate;
      }
      table.add_row({std::to_string(batch), util::format_fixed(base, 0),
                     util::format_fixed(rate, 0),
                     util::format_fixed(rate / base, 2) + "x"});
      csv.write_row({workload, "-", "-", std::to_string(batch),
                     util::format_fixed(base, 1), util::format_fixed(rate, 1),
                     util::format_fixed(rate / base, 3)});
    }
    std::cout << table.render() << "\n";
    return b1;
  };

  models::MlpConfig mcfg;
  mcfg.in_features = env.scaled(256, 32);
  mcfg.hidden = {env.scaled(512, 64), env.scaled(512, 64)};
  mcfg.out_features = 10;
  util::Rng mrng(61);
  models::Mlp mlp(mcfg, mrng);
  sparse::SparseModel mlp_state(mlp, 0.9, sparse::DistributionKind::kErk,
                                mrng);
  mlp.set_training(false);
  const B1 mlp_b1 = run_workload("fusion_mlp", mlp, mlp_state,
                                 tensor::Shape({mcfg.in_features}));

  models::ResNetConfig rcfg;
  rcfg.depth = 18;
  rcfg.image_size = 8;
  rcfg.num_classes = 10;
  rcfg.width_multiplier = 0.25 * env.scale;
  util::Rng rrng(62);
  models::ResNet resnet(rcfg, rrng);
  sparse::SparseModel resnet_state(resnet, 0.9,
                                   sparse::DistributionKind::kErk, rrng);
  tensor::Tensor warm({2, 3, rcfg.image_size, rcfg.image_size});
  util::Rng wrng(63);
  tensor::fill_normal(warm, wrng, 0.0f, 1.0f);
  resnet.forward(warm);  // move BN stats off init so folding is non-trivial
  resnet.set_training(false);
  const B1 res_b1 = run_workload(
      "fusion_resnet", resnet, resnet_state,
      tensor::Shape({3, rcfg.image_size, rcfg.image_size}));

  // Gate on the geomean across both workloads: one noisy cell on the
  // tiny scaled-down models must not flip the claim.
  const double geomean = std::sqrt((mlp_b1.fused / mlp_b1.unfused) *
                                   (res_b1.fused / res_b1.unfused));
  bench::shape_check(
      "epilogue fusion improves batch-1 latency (geomean, mlp+resnet)",
      geomean > 1.0);
}

/// Kernel-backend dispatch: the same 90%-sparse MLP served under every
/// backend this host supports (rows `kernel_backend`, backend name in the
/// shards column) and under the int8-quantized pipeline on the process
/// default backend (rows `kernel_int8`). Backend cells are equals-gated
/// against the scalar-bound net — backends are bit-identical by contract;
/// int8 cells are top-1-gated, since quantization rounds the weights.
void sweep_kernel_backend(const bench::BenchEnv& env, double min_time,
                          util::CsvWriter& csv) {
  models::MlpConfig cfg;
  cfg.in_features = env.scaled(256, 32);
  cfg.hidden = {env.scaled(512, 64), env.scaled(512, 64)};
  cfg.out_features = 10;
  util::Rng rng(71);
  models::Mlp model(cfg, rng);
  sparse::SparseModel smodel(model, 0.9, sparse::DistributionKind::kErk,
                             rng);
  model.set_training(false);

  const auto compile_with = [&](const std::string& backend) {
    serve::CompileOptions opts;
    opts.kernel_backend = backend;
    return serve::CompiledNet::compile(model, &smodel, opts);
  };
  const serve::CompiledNet scalar_net = compile_with("scalar");
  const std::vector<std::size_t> batches = {1, 8, 32};

  std::cout << "kernel backends: 90%-sparse MLP under every supported "
               "backend (scalar-gated)\n";
  util::Table table({"backend", "batch", "rows/s", "vs scalar"});
  std::vector<double> scalar_rates(batches.size(), 0.0);
  for (const std::string& name : kernels::simd::available_backends()) {
    const serve::CompiledNet net =
        name == "scalar" ? scalar_net.clone() : compile_with(name);
    for (std::size_t i = 0; i < batches.size(); ++i) {
      const std::size_t batch = batches[i];
      tensor::Tensor x({batch, cfg.in_features});
      util::Rng xrng(400 + batch);
      tensor::fill_normal(x, xrng, 0.0f, 1.0f);
      util::check(net.forward(x).equals(scalar_net.forward(x)),
                  "backend '" + name + "' diverged from scalar");
      const double rate =
          measure_rows_per_s([&] { net.forward(x); }, batch, min_time);
      if (name == "scalar") scalar_rates[i] = rate;
      const double speedup = rate / scalar_rates[i];
      table.add_row({name, std::to_string(batch),
                     util::format_fixed(rate, 0),
                     util::format_fixed(speedup, 2) + "x"});
      csv.write_row({"kernel_backend", name, "-", std::to_string(batch),
                     util::format_fixed(scalar_rates[i], 1),
                     util::format_fixed(rate, 1),
                     util::format_fixed(speedup, 3)});
    }
  }

  serve::Compiler quant;
  quant.pipeline_from_spec(
      "elide-dropout,fold-bn,fuse-epilogue,quantize:int8,"
      "free-after-last-use");
  const serve::CompiledNet qnet = quant.compile(model, &smodel);
  util::check(qnet.num_quantized_ops() > 0,
              "quantize pass produced no int8 ops");
  const auto top1 = [](const tensor::Tensor& logits, std::size_t batch) {
    const std::size_t classes = logits.numel() / batch;
    std::vector<std::size_t> out(batch, 0);
    for (std::size_t n = 0; n < batch; ++n) {
      for (std::size_t c = 1; c < classes; ++c) {
        if (logits[n * classes + c] > logits[n * classes + out[n]]) {
          out[n] = c;
        }
      }
    }
    return out;
  };
  for (std::size_t i = 0; i < batches.size(); ++i) {
    const std::size_t batch = batches[i];
    tensor::Tensor x({batch, cfg.in_features});
    util::Rng xrng(400 + batch);
    tensor::fill_normal(x, xrng, 0.0f, 1.0f);
    util::check(top1(qnet.forward(x), batch) ==
                    top1(scalar_net.forward(x), batch),
                "int8 serve changed a probe sample's top-1");
    const double rate =
        measure_rows_per_s([&] { qnet.forward(x); }, batch, min_time);
    table.add_row({"int8 (" +
                       std::string(kernels::simd::active_backend().name) +
                       ")",
                   std::to_string(batch), util::format_fixed(rate, 0),
                   util::format_fixed(rate / scalar_rates[i], 2) + "x"});
    csv.write_row({"kernel_int8", kernels::simd::active_backend().name, "-",
                   std::to_string(batch),
                   util::format_fixed(scalar_rates[i], 1),
                   util::format_fixed(rate, 1),
                   util::format_fixed(rate / scalar_rates[i], 3)});
  }
  std::cout << table.render() << "\n";
  std::cout << "int8 weight bytes: " << qnet.total_weight_bytes() << " vs "
            << scalar_net.total_weight_bytes() << " fp32 ("
            << util::format_fixed(
                   100.0 * static_cast<double>(qnet.total_weight_bytes()) /
                       static_cast<double>(scalar_net.total_weight_bytes()),
                   1)
            << "%)\n\n";
}

/// Closed-loop aggregate throughput of the sharded InferenceServer. Each
/// shard owns a replica and its own worker; shards are the scaling knob.
double measure_server_rps(const serve::CompiledNet& net,
                          const tensor::Shape& sample_shape,
                          std::size_t shards, std::size_t clients,
                          double seconds, serve::StatsSnapshot& out_stats) {
  serve::ServerConfig cfg;
  cfg.num_threads = 1;
  cfg.num_shards = shards;
  cfg.max_batch = 8;
  cfg.max_delay_ms = 0.2;
  serve::InferenceServer server(net, cfg);
  std::atomic<bool> stop{false};
  std::atomic<std::size_t> completed{0};
  auto client = [&](std::size_t id) {
    util::Rng crng(900 + id);
    while (!stop.load(std::memory_order_relaxed)) {
      tensor::Tensor sample(sample_shape);
      tensor::fill_normal(sample, crng, 0.0f, 1.0f);
      server.submit(std::move(sample)).get();
      completed.fetch_add(1, std::memory_order_relaxed);
    }
  };
  util::Timer wall;
  std::vector<std::thread> threads;
  for (std::size_t c = 0; c < clients; ++c) threads.emplace_back(client, c);
  while (wall.seconds() < seconds) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  stop.store(true);
  for (auto& t : threads) t.join();
  const double elapsed = wall.seconds();
  server.shutdown();
  out_stats = server.stats();
  return static_cast<double>(completed.load()) / elapsed;
}

void sweep_shards(const bench::BenchEnv& env, double min_time,
                  util::CsvWriter& csv) {
  models::MlpConfig cfg;
  cfg.in_features = env.scaled(256, 32);
  cfg.hidden = {env.scaled(512, 64), env.scaled(512, 64)};
  cfg.out_features = 10;
  util::Rng rng(41);
  models::Mlp model(cfg, rng);
  sparse::SparseModel smodel(model, 0.9, sparse::DistributionKind::kErk,
                             rng);
  model.set_training(false);
  const serve::CompiledNet net = serve::CompiledNet::compile(model, &smodel);

  const std::size_t hw =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  const double seconds = std::max(0.3, min_time * 3.0);
  const std::size_t clients = 8;

  std::cout << "sharded serving: aggregate closed-loop throughput ("
            << clients << " clients, 1 worker/shard, " << hw
            << " hw threads)\n";
  util::Table table({"shards", "req/s", "p50 ms", "p99 ms", "queue peak"});
  double rps_1 = 0.0, rps_n = 0.0;
  for (const std::size_t shards : {std::size_t{1}, std::size_t{2}}) {
    serve::StatsSnapshot stats;
    const double rps = measure_server_rps(
        net, tensor::Shape({cfg.in_features}), shards, clients, seconds,
        stats);
    if (shards == 1) rps_1 = rps;
    rps_n = rps;
    table.add_row({std::to_string(shards), util::format_fixed(rps, 0),
                   util::format_fixed(stats.latency_p50_ms, 3),
                   util::format_fixed(stats.latency_p99_ms, 3),
                   std::to_string(stats.queue_peak)});
    csv.write_row({"shards", std::to_string(shards), "1", "-",
                   util::format_fixed(rps_1, 1), util::format_fixed(rps, 1),
                   util::format_fixed(shards == 1 ? 1.0 : rps / rps_1, 3)});
  }
  std::cout << table.render() << "\n";
  if (hw >= 2) {
    bench::shape_check(
        "2 shards beat 1 shard in aggregate throughput (multi-core)",
        rps_n > rps_1);
  } else {
    std::cout << "[skip] shard-scaling check needs >= 2 hardware threads\n";
  }
}

/// One faked DST step on every layer of `state` — the delta payload the
/// hot-swap sweep publishes mid-run.
void hotswap_step(sparse::SparseModel& state) {
  for (std::size_t l = 0; l < state.num_layers(); ++l) {
    sparse::MaskedParameter& layer = state.layer(l);
    const std::vector<std::size_t> active = layer.mask().active_indices();
    const std::vector<std::size_t> inactive = layer.mask().inactive_indices();
    util::check(active.size() >= 2 && !inactive.empty(),
                "hotswap sweep model has no sparse headroom");
    layer.mask().deactivate(active[0]);
    layer.mask().activate(inactive[0]);
    layer.param().value[inactive[0]] = 0.125f;
    layer.param().value[active[1]] += 0.25f;
    layer.apply_mask_to_value();
  }
}

/// Tail latency under a mid-run hot swap: the same open-loop arrival
/// stream measured once without a swap (baseline) and once with a
/// sparse-delta swap published halfway through. The gate is the
/// zero-downtime claim in latency form: the swap window's p99 stays
/// within 2x of the steady-state p99 (plus a small absolute floor for
/// timer noise on the tiny scaled-down model).
void sweep_hotswap(const bench::BenchEnv& env, double min_time,
                   util::CsvWriter& csv) {
  models::MlpConfig cfg;
  cfg.in_features = env.scaled(256, 32);
  cfg.hidden = {env.scaled(512, 64), env.scaled(512, 64)};
  cfg.out_features = 10;
  const tensor::Shape sample_shape({cfg.in_features});
  constexpr std::uint64_t kSeed = 43;
  constexpr std::size_t kShards = 2;

  const auto make_registry = [&](serve::ModelRegistry& registry) {
    util::Rng rng(kSeed);
    auto module = std::make_unique<models::Mlp>(cfg, rng);
    auto state = std::make_unique<sparse::SparseModel>(
        *module, 0.9, sparse::DistributionKind::kErk, rng);
    module->set_training(false);
    serve::ModelOptions mopts;
    mopts.server.num_threads = 1;
    mopts.server.num_shards = kShards;
    mopts.server.max_batch = 8;
    mopts.server.max_delay_ms = 0.2;
    registry.add_model("m", std::move(module), std::move(state),
                       std::move(mopts));
  };

  // The delta: the registry's model (a pure function of the seed),
  // reconstructed out-of-band and advanced one DST step.
  const serve::CheckpointDelta delta = [&] {
    util::Rng brng(kSeed);
    models::Mlp base(cfg, brng);
    sparse::SparseModel base_state(base, 0.9,
                                   sparse::DistributionKind::kErk, brng);
    util::Rng nrng(kSeed);
    models::Mlp next(cfg, nrng);
    sparse::SparseModel next_state(next, 0.9,
                                   sparse::DistributionKind::kErk, nrng);
    hotswap_step(next_state);
    return serve::make_delta(base, &base_state, next, &next_state);
  }();

  // Calibrate the arrival rate to half of closed-loop capacity so the
  // open-loop phases run loaded but un-saturated — a saturated queue
  // would make p99 a function of overload, not of the swap.
  const double calibrated_rps = [&] {
    serve::ModelRegistry registry;
    make_registry(registry);
    std::atomic<bool> stop{false};
    std::atomic<std::size_t> done{0};
    std::vector<std::thread> clients;
    for (std::size_t c = 0; c < 4; ++c) {
      clients.emplace_back([&, c] {
        util::Rng crng(700 + c);
        while (!stop.load(std::memory_order_relaxed)) {
          tensor::Tensor sample(sample_shape);
          tensor::fill_normal(sample, crng, 0.0f, 1.0f);
          registry.submit("m", std::move(sample)).get();
          done.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
    util::Timer timer;
    while (timer.seconds() < std::max(0.15, min_time)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    stop.store(true);
    for (auto& t : clients) t.join();
    const double elapsed = timer.seconds();
    registry.shutdown();
    return static_cast<double>(done.load()) / elapsed;
  }();

  const double seconds = std::max(0.4, min_time * 3.0);
  const double rate = std::max(50.0, calibrated_rps * 0.5);
  const std::size_t total =
      std::max<std::size_t>(200, static_cast<std::size_t>(rate * seconds));
  const double interval_s = seconds / static_cast<double>(total);

  // One open-loop phase: fixed-interval arrivals; when `swap` is set, a
  // control-plane thread publishes the delta at the halfway arrival.
  const auto run_phase = [&](bool swap, serve::StatsSnapshot& stats,
                             serve::SwapReport& report) {
    serve::ModelRegistry registry;
    make_registry(registry);
    std::vector<std::future<tensor::Tensor>> futures;
    futures.reserve(total);
    std::thread swapper;
    util::Rng arng(800);
    util::Timer wall;
    for (std::size_t i = 0; i < total; ++i) {
      const double due = static_cast<double>(i) * interval_s;
      while (wall.seconds() < due) {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      }
      if (swap && i == total / 2) {
        swapper = std::thread(
            [&] { report = registry.apply_delta("m", delta); });
      }
      tensor::Tensor sample(sample_shape);
      tensor::fill_normal(sample, arng, 0.0f, 1.0f);
      futures.push_back(registry.submit("m", std::move(sample)));
    }
    for (auto& f : futures) f.get();
    if (swapper.joinable()) swapper.join();
    registry.shutdown();
    stats = registry.stats("m");
  };

  serve::StatsSnapshot base_stats, swap_stats;
  serve::SwapReport unused, report;
  run_phase(false, base_stats, unused);
  run_phase(true, swap_stats, report);
  const double base_p99 = base_stats.latency_p99_ms;
  const double swap_p99 = swap_stats.latency_p99_ms;

  std::cout << "hot swap under open-loop load (" << kShards << " shards, "
            << util::format_fixed(rate, 0) << " req/s, " << total
            << " requests/phase)\n";
  util::Table table({"phase", "completed", "p50 ms", "p99 ms", "swaps"});
  table.add_row({"no swap", std::to_string(base_stats.requests),
                 util::format_fixed(base_stats.latency_p50_ms, 3),
                 util::format_fixed(base_p99, 3),
                 std::to_string(base_stats.swap_count)});
  table.add_row({"swap mid-run", std::to_string(swap_stats.requests),
                 util::format_fixed(swap_stats.latency_p50_ms, 3),
                 util::format_fixed(swap_p99, 3),
                 std::to_string(swap_stats.swap_count)});
  std::cout << table.render() << "\n";
  // For the hotswap row the rate columns hold p99 ms (baseline, swap) and
  // `speedup` their ratio — same column reuse as the partition rows.
  csv.write_row({"hotswap", std::to_string(kShards), "1", "-",
                 util::format_fixed(base_p99, 3),
                 util::format_fixed(swap_p99, 3),
                 util::format_fixed(base_p99 > 0.0 ? swap_p99 / base_p99 : 1.0,
                                    3)});

  bench::shape_check("hot swap drops nothing (every arrival completed)",
                     swap_stats.requests == total);
  bench::shape_check("delta swap patched the plan without a full recompile",
                     swap_stats.swap_count == 1 && !report.full_recompile &&
                         report.patched_weight_nodes > 0);
  bench::shape_check("p99 with a mid-run swap stays within 2x of baseline",
                     swap_p99 <= base_p99 * 2.0 + 2.0);
}

/// Observability overhead: closed-loop server throughput with the trace
/// recorder fully disabled vs armed-but-idle (enabled with a sampling
/// period no request ever reaches, so every submit pays the sample()
/// check and every worker pays the enabled-path branches, but no span is
/// recorded). This is the tentpole's "disabled tracing is free" claim in
/// bench form: one relaxed atomic load per request must cost <= 2%
/// throughput. Reps alternate off/armed so machine drift hits both sides
/// equally; each side keeps its best of 3.
void sweep_obs_overhead(const bench::BenchEnv& env, double min_time,
                        util::CsvWriter& csv) {
  models::MlpConfig cfg;
  cfg.in_features = env.scaled(256, 32);
  cfg.hidden = {env.scaled(512, 64), env.scaled(512, 64)};
  cfg.out_features = 10;
  util::Rng rng(47);
  models::Mlp model(cfg, rng);
  sparse::SparseModel smodel(model, 0.9, sparse::DistributionKind::kErk,
                             rng);
  model.set_training(false);
  const serve::CompiledNet net = serve::CompiledNet::compile(model, &smodel);
  const tensor::Shape sample_shape({cfg.in_features});

  // Equals gate first: a fully TRACED request (sample_every = 1, spans
  // recorded end to end) returns the same bits as the direct forward.
  obs::trace().enable(1);
  {
    serve::ServerConfig scfg;
    scfg.num_threads = 1;
    scfg.max_batch = 8;
    scfg.max_delay_ms = 0.2;
    serve::InferenceServer server(net, scfg);
    tensor::Tensor x(sample_shape);
    util::Rng xrng(48);
    tensor::fill_normal(x, xrng, 0.0f, 1.0f);
    const tensor::Tensor got = server.submit(x).get();
    const tensor::Tensor expected =
        net.forward(x.reshaped(sample_shape.prepended(1)));
    util::check(got.equals(expected.reshaped(tensor::Shape({got.numel()}))),
                "traced request diverged from direct forward");
    server.shutdown();
  }
  obs::trace().disable();

  const double seconds = std::max(0.3, min_time * 2.0);
  constexpr int kReps = 3;
  double best_off = 0.0, best_armed = 0.0;
  for (int rep = 0; rep < kReps; ++rep) {
    serve::StatsSnapshot stats;
    obs::trace().disable();
    best_off = std::max(
        best_off, measure_server_rps(net, sample_shape, 1, 4, seconds,
                                     stats));
    obs::trace().enable(1u << 30);  // armed, but never actually samples
    best_armed = std::max(
        best_armed, measure_server_rps(net, sample_shape, 1, 4, seconds,
                                       stats));
  }
  obs::trace().disable();
  const double ratio = best_armed / best_off;

  std::cout << "observability overhead: tracing disabled vs armed-idle "
               "(closed loop, best of " << kReps << ")\n";
  util::Table table({"tracing", "req/s", "vs disabled"});
  table.add_row({"disabled", util::format_fixed(best_off, 0), "1.00x"});
  table.add_row({"armed idle", util::format_fixed(best_armed, 0),
                 util::format_fixed(ratio, 3) + "x"});
  std::cout << table.render() << "\n";
  csv.write_row({"obs_overhead", "1", "1", "-",
                 util::format_fixed(best_off, 1),
                 util::format_fixed(best_armed, 1),
                 util::format_fixed(ratio, 3)});

  bench::shape_check(
      "armed-idle tracing costs <= 2% closed-loop throughput (best-of-3)",
      ratio >= 0.98);
}

int run() {
  const bench::BenchEnv env = bench::BenchEnv::resolve();
  const double min_time = util::env_double("DSTEE_SERVE_MIN_TIME", 0.15);

  models::MlpConfig mcfg;
  mcfg.in_features = env.scaled(256, 32);
  mcfg.hidden = {env.scaled(512, 64), env.scaled(512, 64)};
  mcfg.out_features = 10;

  models::VggConfig vcfg;
  vcfg.depth = 11;
  vcfg.image_size = 16;
  vcfg.num_classes = 10;
  vcfg.width_multiplier = 0.25 * env.scale;

  std::cout << "serve_throughput: dense eval forward vs compiled CSR\n"
            << "  mlp workload:  " << mcfg.in_features << " -> "
            << mcfg.hidden[0] << " -> " << mcfg.hidden[1] << " -> "
            << mcfg.out_features << "\n"
            << "  conv workload: VGG-11 @ " << vcfg.image_size << "x"
            << vcfg.image_size << ", width x"
            << util::format_fixed(vcfg.width_multiplier, 2) << "\n\n";

  util::Table table({"workload", "sparsity", "batch", "dense rows/s",
                     "csr rows/s", "speedup", "density"});
  util::CsvWriter csv("bench_results/serve_throughput.csv",
                      {"workload", "sparsity", "batch", "dense_rows_per_s",
                       "csr_rows_per_s", "speedup", "nnz", "density"});

  SweepFlags mlp_flags;
  double prev_rate = 0.0;
  for (const double sparsity : {0.5, 0.8, 0.9, 0.95}) {
    util::Rng rng(17);
    models::Mlp model(mcfg, rng);
    sparse::SparseModel smodel(model, sparsity,
                               sparse::DistributionKind::kErk, rng);
    model.set_training(false);
    const serve::CompiledNet net =
        serve::CompiledNet::compile(model, &smodel);
    sweep_batches(model, net, tensor::Shape({mcfg.in_features}), sparsity,
                  {1, 8, 32}, "mlp", min_time, table, csv, mlp_flags,
                  prev_rate);
  }

  SweepFlags conv_flags;
  prev_rate = 0.0;
  const tensor::Shape image({3, vcfg.image_size, vcfg.image_size});
  for (const double sparsity : {0.5, 0.9, 0.95}) {
    util::Rng rng(23);
    models::Vgg model(vcfg, rng);
    sparse::SparseModel smodel(model, sparsity,
                               sparse::DistributionKind::kErk, rng);
    // Move BN running stats off init so folding is exercised for real.
    tensor::Tensor warm({4, 3, vcfg.image_size, vcfg.image_size});
    util::Rng wrng(5);
    tensor::fill_normal(warm, wrng, 0.0f, 1.0f);
    model.forward(warm);
    model.set_training(false);
    const serve::CompiledNet net =
        serve::CompiledNet::compile(model, &smodel);
    sweep_batches(model, net, image, sparsity, {1, 8}, "conv", min_time,
                  table, csv, conv_flags, prev_rate);
  }
  csv.flush();

  std::cout << table.render() << "\n";

  // Runtime scaling sweeps (pool vs spawn, row-range partitions, epilogue
  // fusion, shard replicas). For the partition rows, `shards` holds the
  // partition count; for the fusion rows, baseline is the unfused rate.
  util::CsvWriter scaling_csv(
      "bench_results/serve_scaling.csv",
      {"sweep", "shards", "intra_op", "batch", "baseline_rows_per_s",
       "rows_per_s", "speedup"});
  sweep_intra_op_pool(min_time, scaling_csv);
  sweep_partition(env, min_time, scaling_csv);
  sweep_fusion(env, min_time, scaling_csv);
  sweep_kernel_backend(env, min_time, scaling_csv);
  sweep_shards(env, min_time, scaling_csv);
  sweep_hotswap(env, min_time, scaling_csv);
  sweep_obs_overhead(env, min_time, scaling_csv);
  scaling_csv.flush();

  bench::shape_check(
      "compiled CSR beats dense eval forward at >=90% sparsity (mlp)",
      mlp_flags.csr_wins_at_90);
  bench::shape_check(
      "CSR throughput does not degrade as sparsity rises (mlp, batch 32)",
      mlp_flags.csr_monotone);
  bench::shape_check(
      "compiled CSR conv beats dense eval forward at >=90% sparsity",
      conv_flags.csr_wins_at_90);
  bench::shape_check(
      "CSR conv throughput does not degrade as sparsity rises (batch 8)",
      conv_flags.csr_monotone);
  std::cout << "\ncsv: bench_results/serve_throughput.csv\n";
  return 0;
}

}  // namespace
}  // namespace dstee

int main() {
  try {
    return dstee::run();
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
