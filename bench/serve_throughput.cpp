// serve_throughput — dense eval forward vs. compiled-CSR forward.
//
// The deployment claim of the sparse-training story: once the topology is
// fixed, inference cost should track density. This bench sweeps sparsity
// (50–95%) × batch size on an MLP workload (CSR SpMM) and a VGG-style conv
// workload (CSR-over-im2col SpMM) and reports rows/second for the dense
// training-stack forward and the serve::CompiledNet CSR forward, plus the
// speedup. Rows land in bench_results/serve_throughput.csv with a
// `workload` column.
//
// DSTEE_SCALE scales the model width; DSTEE_SERVE_MIN_TIME (seconds, default
// 0.15) controls per-cell measurement time.
#include "bench_common.hpp"
#include "models/mlp.hpp"
#include "models/vgg.hpp"
#include "serve/compiled_net.hpp"
#include "sparse/sparse_model.hpp"
#include "tensor/init.hpp"

namespace dstee {
namespace {

/// Rows/second of `fn` (which consumes `rows` rows per call), time-boxed.
double measure_rows_per_s(const std::function<void()>& fn, std::size_t rows,
                          double min_seconds) {
  fn();  // warmup
  util::Timer timer;
  std::size_t iters = 0;
  do {
    fn();
    ++iters;
  } while (timer.seconds() < min_seconds);
  return static_cast<double>(rows * iters) / timer.seconds();
}

struct SweepFlags {
  bool csr_wins_at_90 = true;
  bool csr_monotone = true;
};

/// One (model, sparsity) × batches sweep: correctness gate, then timing.
void sweep_batches(nn::Sequential& model, const serve::CompiledNet& net,
                   const tensor::Shape& sample_shape, double sparsity,
                   const std::vector<std::size_t>& batches,
                   const std::string& workload, double min_time,
                   util::Table& table, util::CsvWriter& csv,
                   SweepFlags& flags, double& prev_csr_rate_tail) {
  for (const std::size_t batch : batches) {
    tensor::Tensor x{sample_shape.prepended(batch)};
    util::Rng xrng(batch);
    tensor::fill_normal(x, xrng, 0.0f, 1.0f);

    // Correctness gate before timing anything.
    util::check(net.forward(x).allclose(model.forward(x), 1e-3f),
                "compiled forward diverged from dense eval forward");

    const double dense_rate =
        measure_rows_per_s([&] { model.forward(x); }, batch, min_time);
    const double csr_rate =
        measure_rows_per_s([&] { net.forward(x); }, batch, min_time);
    const double speedup = csr_rate / dense_rate;

    if (sparsity >= 0.9 && speedup <= 1.0) flags.csr_wins_at_90 = false;
    if (batch == batches.back()) {
      if (prev_csr_rate_tail > 0.0 && csr_rate < prev_csr_rate_tail * 0.8) {
        flags.csr_monotone = false;  // higher sparsity must not serve slower
      }
      prev_csr_rate_tail = csr_rate;
    }

    table.add_row({workload, util::format_fixed(sparsity, 2),
                   std::to_string(batch), util::format_fixed(dense_rate, 0),
                   util::format_fixed(csr_rate, 0),
                   util::format_fixed(speedup, 2) + "x",
                   util::format_fixed(net.density() * 100.0, 1) + "%"});
    csv.write_row({workload, util::format_fixed(sparsity, 4),
                   std::to_string(batch), util::format_fixed(dense_rate, 1),
                   util::format_fixed(csr_rate, 1),
                   util::format_fixed(speedup, 3),
                   std::to_string(net.total_nnz()),
                   util::format_fixed(net.density(), 4)});
  }
}

int run() {
  const bench::BenchEnv env = bench::BenchEnv::resolve();
  const double min_time = util::env_double("DSTEE_SERVE_MIN_TIME", 0.15);

  models::MlpConfig mcfg;
  mcfg.in_features = env.scaled(256, 32);
  mcfg.hidden = {env.scaled(512, 64), env.scaled(512, 64)};
  mcfg.out_features = 10;

  models::VggConfig vcfg;
  vcfg.depth = 11;
  vcfg.image_size = 16;
  vcfg.num_classes = 10;
  vcfg.width_multiplier = 0.25 * env.scale;

  std::cout << "serve_throughput: dense eval forward vs compiled CSR\n"
            << "  mlp workload:  " << mcfg.in_features << " -> "
            << mcfg.hidden[0] << " -> " << mcfg.hidden[1] << " -> "
            << mcfg.out_features << "\n"
            << "  conv workload: VGG-11 @ " << vcfg.image_size << "x"
            << vcfg.image_size << ", width x"
            << util::format_fixed(vcfg.width_multiplier, 2) << "\n\n";

  util::Table table({"workload", "sparsity", "batch", "dense rows/s",
                     "csr rows/s", "speedup", "density"});
  util::CsvWriter csv("bench_results/serve_throughput.csv",
                      {"workload", "sparsity", "batch", "dense_rows_per_s",
                       "csr_rows_per_s", "speedup", "nnz", "density"});

  SweepFlags mlp_flags;
  double prev_rate = 0.0;
  for (const double sparsity : {0.5, 0.8, 0.9, 0.95}) {
    util::Rng rng(17);
    models::Mlp model(mcfg, rng);
    sparse::SparseModel smodel(model, sparsity,
                               sparse::DistributionKind::kErk, rng);
    model.set_training(false);
    const serve::CompiledNet net =
        serve::CompiledNet::compile(model, &smodel);
    sweep_batches(model, net, tensor::Shape({mcfg.in_features}), sparsity,
                  {1, 8, 32}, "mlp", min_time, table, csv, mlp_flags,
                  prev_rate);
  }

  SweepFlags conv_flags;
  prev_rate = 0.0;
  const tensor::Shape image({3, vcfg.image_size, vcfg.image_size});
  for (const double sparsity : {0.5, 0.9, 0.95}) {
    util::Rng rng(23);
    models::Vgg model(vcfg, rng);
    sparse::SparseModel smodel(model, sparsity,
                               sparse::DistributionKind::kErk, rng);
    // Move BN running stats off init so folding is exercised for real.
    tensor::Tensor warm({4, 3, vcfg.image_size, vcfg.image_size});
    util::Rng wrng(5);
    tensor::fill_normal(warm, wrng, 0.0f, 1.0f);
    model.forward(warm);
    model.set_training(false);
    const serve::CompiledNet net =
        serve::CompiledNet::compile(model, &smodel);
    sweep_batches(model, net, image, sparsity, {1, 8}, "conv", min_time,
                  table, csv, conv_flags, prev_rate);
  }
  csv.flush();

  std::cout << table.render() << "\n";
  bench::shape_check(
      "compiled CSR beats dense eval forward at >=90% sparsity (mlp)",
      mlp_flags.csr_wins_at_90);
  bench::shape_check(
      "CSR throughput does not degrade as sparsity rises (mlp, batch 32)",
      mlp_flags.csr_monotone);
  bench::shape_check(
      "compiled CSR conv beats dense eval forward at >=90% sparsity",
      conv_flags.csr_wins_at_90);
  bench::shape_check(
      "CSR conv throughput does not degrade as sparsity rises (batch 8)",
      conv_flags.csr_monotone);
  std::cout << "\ncsv: bench_results/serve_throughput.csv\n";
  return 0;
}

}  // namespace
}  // namespace dstee

int main() {
  try {
    return dstee::run();
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
