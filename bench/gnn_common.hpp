// Shared harness for the two GNN link-prediction benches (Tables III/IV).
#pragma once

#include "bench_common.hpp"
#include "graph/generator.hpp"
#include "models/gnn.hpp"

namespace dstee::bench {

/// Runs the full Dense / prune-from-dense(ADMM) / DST-EE comparison on one
/// generated graph and prints the paper-style table + shape checks.
inline int run_gnn_table(const std::string& table_name,
                         const std::string& dataset_name,
                         const graph::PowerLawConfig& graph_cfg,
                         const std::string& csv_path) {
  const BenchEnv env = BenchEnv::resolve(2);
  const std::size_t dst_epochs = env.epochs_or(50);
  const std::size_t admm_epochs = std::max<std::size_t>(5, dst_epochs * 2 / 5);
  const std::vector<double> sparsities{0.80, 0.90, 0.98};

  std::cout << "=== " << table_name << ": GNN link prediction on "
            << dataset_name << "-like graph ===\n"
            << "(power-law synthetic graph, " << graph_cfg.num_nodes
            << " nodes; DST-EE " << dst_epochs << " epochs, ADMM 3x"
            << admm_epochs << " epochs, seeds=" << env.seeds << ")\n\n";
  util::Timer timer;

  const graph::Graph g = graph::generate_power_law(graph_cfg);
  const tensor::Tensor features = graph::structural_features(g, 32, 23);
  const graph::LinkSplit split = graph::split_links(g, 0.2, 29);

  struct Cell {
    train::LinkMethod method;
    double sparsity;
    train::MeanStd acc;
    train::MeanStd auc;
  };
  std::vector<Cell> cells;
  cells.push_back({train::LinkMethod::kDense, 0.0, {}, {}});
  for (const double s : sparsities) {
    cells.push_back({train::LinkMethod::kPruneFromDense, s, {}, {}});
    cells.push_back({train::LinkMethod::kDstEe, s, {}, {}});
  }

  std::vector<std::function<void()>> jobs;
  for (auto& cell : cells) {
    jobs.emplace_back([&cell, &env, &g, &features, &split, dst_epochs,
                       admm_epochs] {
      for (std::int64_t seed = 1; seed <= env.seeds; ++seed) {
        util::Rng rng(static_cast<std::uint64_t>(seed) * 131 + 7);
        models::GnnConfig gcfg;
        gcfg.in_features = 32;
        gcfg.hidden = 64;
        gcfg.embedding = 32;
        models::GnnLinkPredictor model(g, gcfg, rng);
        train::LinkConfig cfg;
        cfg.method = cell.method;
        cfg.sparsity = cell.sparsity;
        cfg.epochs = dst_epochs;
        cfg.admm_epochs_each = admm_epochs;
        cfg.dst.delta_t = 2;
        cfg.dst.c = 1e-2;
        cfg.dst.eps = 0.1;
        cfg.seed = static_cast<std::uint64_t>(seed) * 131 + 7;
        const auto result =
            train::run_link_prediction(model, features, split, cfg);
        cell.acc.add(result.best_test_accuracy);
        cell.auc.add(result.best_test_auc);
      }
    });
  }
  run_parallel(jobs);

  util::CsvWriter csv(csv_path, {"method", "sparsity", "accuracy_mean",
                                 "accuracy_std", "auc_mean"});
  auto method_name = [](train::LinkMethod m) -> std::string {
    switch (m) {
      case train::LinkMethod::kDense: return "Dense";
      case train::LinkMethod::kPruneFromDense: return "Prune-from-dense";
      case train::LinkMethod::kDstEe: return "DST-EE";
    }
    return "?";
  };

  util::Table table({"Method", "80%", "90%", "98%"});
  {
    const auto& dense = cells.front();
    table.add_row({"Dense", cell(dense.acc), cell(dense.acc),
                   cell(dense.acc)});
    csv.write_row({"Dense", "0", util::format_fixed(dense.acc.mean(), 4),
                   util::format_fixed(dense.acc.stddev(), 4),
                   util::format_fixed(dense.auc.mean(), 4)});
  }
  for (const auto method :
       {train::LinkMethod::kPruneFromDense, train::LinkMethod::kDstEe}) {
    std::vector<std::string> row{method_name(method)};
    for (const double s : sparsities) {
      for (const auto& c : cells) {
        if (c.method == method && c.sparsity == s) {
          row.push_back(cell(c.acc));
          csv.write_row({method_name(method), util::format_fixed(s, 2),
                         util::format_fixed(c.acc.mean(), 4),
                         util::format_fixed(c.acc.stddev(), 4),
                         util::format_fixed(c.auc.mean(), 4)});
        }
      }
    }
    table.add_row(row);
  }
  table.print();
  csv.flush();

  auto mean_acc = [&](train::LinkMethod m, double s) {
    for (const auto& c : cells) {
      if (c.method == m && (m == train::LinkMethod::kDense ||
                            c.sparsity == s)) {
        return c.acc.mean();
      }
    }
    util::fail("cell not found");
  };

  std::cout << "\nShape checks (paper's qualitative claims):\n";
  int holds = 0, total = 0;
  auto check = [&](const std::string& what, bool ok) {
    ++total;
    holds += shape_check(what, ok) ? 1 : 0;
  };
  for (const double s : sparsities) {
    check("DST-EE >= prune-from-dense @" + util::format_fixed(s, 2) +
              " (with fewer epochs)",
          mean_acc(train::LinkMethod::kDstEe, s) >=
              mean_acc(train::LinkMethod::kPruneFromDense, s) - 0.01);
  }
  check("DST-EE @0.80 within 2 points of dense (paper: above dense)",
        mean_acc(train::LinkMethod::kDstEe, 0.80) >=
            mean_acc(train::LinkMethod::kDense, 0.0) - 0.02);
  check("DST-EE degrades gracefully to 98% (no collapse)",
        mean_acc(train::LinkMethod::kDstEe, 0.98) >= 0.5);
  const double admm_drop = mean_acc(train::LinkMethod::kPruneFromDense, 0.80) -
                           mean_acc(train::LinkMethod::kPruneFromDense, 0.98);
  const double ee_drop = mean_acc(train::LinkMethod::kDstEe, 0.80) -
                         mean_acc(train::LinkMethod::kDstEe, 0.98);
  check("prune-from-dense loses more from 80%->98% than DST-EE",
        admm_drop >= ee_drop - 0.01);

  std::cout << "\n" << holds << "/" << total
            << " shape checks hold (bench wall time "
            << util::format_fixed(timer.seconds(), 1) << "s)\n"
            << "CSV: " << csv_path << "\n";
  return 0;
}

}  // namespace dstee::bench
