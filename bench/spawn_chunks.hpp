// The RETIRED per-call fan-out: spawns and joins std::threads inside the
// call, paying thread-start latency every time. It lives in bench/ (not
// src/) because it exists only as the baseline the serving benches compare
// the persistent runtime::Pool against — library code must never spawn raw
// threads (tools/dstee_lint's raw-thread rule enforces exactly that), and
// serve_throughput's sweep_intra_op_pool equality gate pins that this
// baseline partitions ranges bit-identically to Pool::run_chunks.
#pragma once

#include <algorithm>
#include <cstddef>
#include <thread>
#include <utility>
#include <vector>

namespace dstee::bench {

/// Splits [0, n) into ceil-div contiguous chunks, spawns one std::thread
/// per non-first chunk, runs the first chunk on the caller, joins. Same
/// partitioning contract as runtime::Pool::run_chunks (threads 0 =
/// hardware concurrency, chunk count never exceeds n, fn once per
/// non-empty chunk).
template <typename Fn>
void spawn_chunks(std::size_t n, std::size_t threads, Fn&& fn) {
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  threads = std::min(threads, std::max<std::size_t>(1, n));
  if (threads <= 1) {
    fn(0, n);
    return;
  }
  const std::size_t chunk = (n + threads - 1) / threads;
  std::vector<std::thread> workers;
  workers.reserve(threads - 1);
  for (std::size_t t = 1; t < threads; ++t) {
    const std::size_t b0 = std::min(n, t * chunk);
    const std::size_t b1 = std::min(n, b0 + chunk);
    if (b0 < b1) workers.emplace_back([&fn, b0, b1] { fn(b0, b1); });
  }
  fn(0, std::min(n, chunk));
  for (std::thread& w : workers) w.join();
}

}  // namespace dstee::bench
