// google-benchmark microbenchmarks for the kernels on the sparse-training
// hot path: matmul, im2col convolution, top-k selection, the DST-EE
// acquisition score, mask application, and a full engine update round.
#include <benchmark/benchmark.h>

#include <chrono>
#include <limits>
#include <memory>

#include "spawn_chunks.hpp"
#include "kernels/activations.hpp"
#include "kernels/epilogue.hpp"
#include "kernels/simd/backend.hpp"
#include "methods/drop_policy.hpp"
#include "methods/dst_engine.hpp"
#include "methods/grow_policy.hpp"
#include "models/mlp.hpp"
#include "nn/conv2d.hpp"
#include "optim/optimizer.hpp"
#include "sparse/csr.hpp"
#include "sparse/qcsr.hpp"
#include "sparse/sparse_model.hpp"
#include "tensor/init.hpp"
#include "tensor/matmul.hpp"
#include "tensor/ops.hpp"
#include "tensor/topk.hpp"
#include "util/rng.hpp"

namespace dstee {
namespace {

tensor::Tensor random_tensor(tensor::Shape shape, std::uint64_t seed) {
  tensor::Tensor t(std::move(shape));
  util::Rng rng(seed);
  tensor::fill_normal(t, rng, 0.0f, 1.0f);
  return t;
}

void BM_Matmul(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = random_tensor(tensor::Shape({n, n}), 1);
  const auto b = random_tensor(tensor::Shape({n, n}), 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::matmul(a, b));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * n * n * n));
}
BENCHMARK(BM_Matmul)->Arg(64)->Arg(128)->Arg(256);

void BM_MatmulNt(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = random_tensor(tensor::Shape({n, n}), 3);
  const auto b = random_tensor(tensor::Shape({n, n}), 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::matmul_nt(a, b));
  }
}
BENCHMARK(BM_MatmulNt)->Arg(128);

void BM_ConvForward(benchmark::State& state) {
  util::Rng rng(5);
  nn::Conv2d conv(16, 32, 3, 1, 1, rng);
  const auto x = random_tensor(tensor::Shape({8, 16, 16, 16}), 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv.forward(x));
  }
}
BENCHMARK(BM_ConvForward);

void BM_ConvBackward(benchmark::State& state) {
  util::Rng rng(7);
  nn::Conv2d conv(16, 32, 3, 1, 1, rng);
  const auto x = random_tensor(tensor::Shape({8, 16, 16, 16}), 8);
  const auto y = conv.forward(x);
  const auto g = random_tensor(y.shape(), 9);
  for (auto _ : state) {
    conv.zero_grad();
    benchmark::DoNotOptimize(conv.backward(g));
  }
}
BENCHMARK(BM_ConvBackward);

void BM_TopK(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto values = random_tensor(tensor::Shape({n}), 10);
  const std::size_t k = n / 10;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::topk_indices(values, k));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_TopK)->Arg(10000)->Arg(100000)->Arg(1000000);

void BM_DstEeScore(benchmark::State& state) {
  // Scoring one 512x512 layer (the acquisition function itself).
  util::Rng rng(11);
  models::MlpConfig cfg;
  cfg.in_features = 512;
  cfg.hidden = {};
  cfg.out_features = 512;
  models::Mlp model(cfg, rng);
  sparse::SparseModel smodel(model, 0.9, sparse::DistributionKind::kErk,
                             rng);
  auto& layer = smodel.layer(0);
  tensor::fill_normal(layer.param().grad, rng, 0.0f, 1.0f);
  methods::DstEeGrow::Config ee;
  methods::DstEeGrow grow(ee);
  util::Rng grow_rng(12);
  for (auto _ : state) {
    methods::GrowContext ctx{layer, 0, layer.param().grad, 1000, grow_rng};
    benchmark::DoNotOptimize(grow.scores(ctx));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(layer.numel()));
}
BENCHMARK(BM_DstEeScore);

void BM_MaskApply(benchmark::State& state) {
  util::Rng rng(13);
  const auto mask = sparse::Mask::random(tensor::Shape({1024, 1024}),
                                         1024 * 102, rng);
  auto values = random_tensor(tensor::Shape({1024, 1024}), 14);
  for (auto _ : state) {
    mask.apply_to(values);
    benchmark::DoNotOptimize(values.raw());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(values.numel()));
}
BENCHMARK(BM_MaskApply);

// Dense vs CSR matvec across densities — the deployment crossover that
// makes the paper's inference-FLOPs column real.
void BM_DenseMatvec(benchmark::State& state) {
  const std::size_t n = 1024;
  const auto w = random_tensor(tensor::Shape({n, n}), 21);
  const auto x = random_tensor(tensor::Shape({1, n}), 22);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::matmul_nt(x, w));
  }
}
BENCHMARK(BM_DenseMatvec);

void BM_CsrMatvec(benchmark::State& state) {
  const std::size_t n = 1024;
  const double density = static_cast<double>(state.range(0)) / 100.0;
  auto w = random_tensor(tensor::Shape({n, n}), 23);
  util::Rng rng(24);
  for (std::size_t i = 0; i < w.numel(); ++i) {
    if (!rng.bernoulli(density)) w[i] = 0.0f;
  }
  const auto csr = sparse::CsrMatrix::from_dense(w);
  const auto x = random_tensor(tensor::Shape({n}), 25);
  for (auto _ : state) {
    benchmark::DoNotOptimize(csr.matvec(x));
  }
  state.counters["density"] = csr.density();
}
BENCHMARK(BM_CsrMatvec)->Arg(2)->Arg(5)->Arg(10)->Arg(20)->Arg(50);

// Fused epilogue vs separate activation pass: the kernel-level half of
// the serve::FuseEpilogue story. Same SpMM, same float op order — the
// fused variant applies ReLU in-register in the output loop, the
// unfused one pays a second full pass over the output tensor.
void BM_SpmmFusedRelu(benchmark::State& state) {
  const std::size_t n = 1024;
  auto w = random_tensor(tensor::Shape({n, n}), 31);
  util::Rng rng(32);
  for (std::size_t i = 0; i < w.numel(); ++i) {
    if (!rng.bernoulli(0.1)) w[i] = 0.0f;
  }
  const auto csr = sparse::CsrMatrix::from_dense(w);
  const auto x = random_tensor(tensor::Shape({1, n}), 33);
  kernels::Epilogue ep;
  ep.has_act = true;
  ep.act = kernels::ActKind::kRelu;
  for (auto _ : state) {
    benchmark::DoNotOptimize(csr.spmm(x, {}, ep));
  }
  state.counters["density"] = csr.density();
}
BENCHMARK(BM_SpmmFusedRelu);

void BM_SpmmThenRelu(benchmark::State& state) {
  const std::size_t n = 1024;
  auto w = random_tensor(tensor::Shape({n, n}), 31);
  util::Rng rng(32);
  for (std::size_t i = 0; i < w.numel(); ++i) {
    if (!rng.bernoulli(0.1)) w[i] = 0.0f;
  }
  const auto csr = sparse::CsrMatrix::from_dense(w);
  const auto x = random_tensor(tensor::Shape({1, n}), 33);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernels::relu(csr.spmm(x)));
  }
  state.counters["density"] = csr.density();
}
BENCHMARK(BM_SpmmThenRelu);

// CSR-over-im2col conv kernel (serve::CompiledNet's ConvOp hot loop):
// one image's patch matrix against a masked [Cout, Cin·K·K] weight.
void BM_CsrSpmmCols(benchmark::State& state) {
  const std::size_t in_ch = 64, out_ch = 128, k = 3, res = 16;
  const double density = static_cast<double>(state.range(0)) / 100.0;
  auto w = random_tensor(tensor::Shape({out_ch, in_ch * k * k}), 26);
  util::Rng rng(27);
  for (std::size_t i = 0; i < w.numel(); ++i) {
    if (!rng.bernoulli(density)) w[i] = 0.0f;
  }
  const auto csr = sparse::CsrMatrix::from_dense(w);
  const auto cols =
      random_tensor(tensor::Shape({in_ch * k * k, res * res}), 28);
  tensor::Tensor out({out_ch, res * res});
  for (auto _ : state) {
    csr.spmm_cols_into(cols, out.raw());
    benchmark::DoNotOptimize(out.raw());
  }
  state.counters["density"] = csr.density();
}
BENCHMARK(BM_CsrSpmmCols)->Arg(5)->Arg(10)->Arg(50)->Arg(100);

// Kernel-backend dispatch: the same batched SpMM under the scalar
// reference and the AVX2 backend (and the int8-quantized variant).
// Args are {batch, fused}: fused == 1 runs the bias+ReLU epilogue in the
// kernel's output loop, the shape every hidden serve layer has after
// FuseEpilogue. AVX2 cells are equals-gated against scalar before timing
// — the backends are bit-identical by contract, so any mismatch is a
// kernel bug, not noise — and skip cleanly on non-AVX2 hosts.
sparse::CsrMatrix backend_bench_csr(std::size_t n, double density,
                                    std::uint64_t seed) {
  auto w = random_tensor(tensor::Shape({n, n}), seed);
  util::Rng rng(seed + 1);
  for (std::size_t i = 0; i < w.numel(); ++i) {
    if (!rng.bernoulli(density)) w[i] = 0.0f;
  }
  return sparse::CsrMatrix::from_dense(w);
}

void run_backend_spmm(benchmark::State& state,
                      const kernels::simd::KernelBackend* backend) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  const bool fused = state.range(1) != 0;
  const std::size_t n = 1024;
  const auto csr = backend_bench_csr(n, 0.1, 41);
  const auto x = random_tensor(tensor::Shape({batch, n}), 42);
  const auto bias = random_tensor(tensor::Shape({n}), 43);
  kernels::Epilogue ep;
  if (fused) {
    ep.bias = bias.raw();
    ep.has_act = true;
    ep.act = kernels::ActKind::kRelu;
  }
  if (backend->is_simd) {
    const auto& scalar = kernels::simd::scalar_backend();
    if (!csr.spmm(x, {}, ep, backend).equals(csr.spmm(x, {}, ep, &scalar))) {
      state.SkipWithError("SIMD spmm diverged from scalar reference");
      return;
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(csr.spmm(x, {}, ep, backend));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch * csr.nnz() * 2));
  state.counters["density"] = csr.density();
}

void BM_SpmmScalar(benchmark::State& state) {
  run_backend_spmm(state, &kernels::simd::scalar_backend());
}
BENCHMARK(BM_SpmmScalar)
    ->Args({1, 0})->Args({8, 0})->Args({32, 0})->Args({8, 1});

void BM_SpmmAvx2(benchmark::State& state) {
  const auto* avx2 = kernels::simd::avx2_backend();
  if (avx2 == nullptr) {
    state.SkipWithError("AVX2 backend unavailable on this host");
    return;
  }
  run_backend_spmm(state, avx2);
}
BENCHMARK(BM_SpmmAvx2)
    ->Args({1, 0})->Args({8, 0})->Args({32, 0})->Args({8, 1});

void BM_QSpmmInt8(benchmark::State& state) {
  // The int8 path under the process-active backend (CPUID pick or the
  // DSTEE_KERNEL_BACKEND override) — what a quantized serve replica runs.
  const auto batch = static_cast<std::size_t>(state.range(0));
  const bool fused = state.range(1) != 0;
  const std::size_t n = 1024;
  const auto q =
      sparse::QCsrMatrix::quantize(backend_bench_csr(n, 0.1, 41));
  const auto x = random_tensor(tensor::Shape({batch, n}), 42);
  const auto bias = random_tensor(tensor::Shape({n}), 43);
  kernels::Epilogue ep;
  if (fused) {
    ep.bias = bias.raw();
    ep.has_act = true;
    ep.act = kernels::ActKind::kRelu;
  }
  const auto& scalar = kernels::simd::scalar_backend();
  if (!q.spmm(x, {}, ep).equals(q.spmm(x, {}, ep, &scalar))) {
    state.SkipWithError("active-backend qspmm diverged from scalar");
    return;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(q.spmm(x, {}, ep));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch * q.nnz() * 2));
  state.counters["density"] = q.density();
}
BENCHMARK(BM_QSpmmInt8)
    ->Args({1, 0})->Args({8, 0})->Args({32, 0})->Args({8, 1});

// The PR's acceptance gate, self-measured: AVX2 must beat scalar by
// >= 1.5x on the batch-8 fp32 SpMM (the vector width's bread-and-butter
// shape). Reported as the `speedup_b8` counter; a shortfall fails the
// bench via SkipWithError. Skips cleanly where AVX2 does not exist.
void BM_SpmmAvx2SpeedupGate(benchmark::State& state) {
  const auto* avx2 = kernels::simd::avx2_backend();
  if (avx2 == nullptr) {
    state.SkipWithError("AVX2 backend unavailable on this host");
    return;
  }
  const std::size_t n = 1024;
  const auto csr = backend_bench_csr(n, 0.1, 41);
  const auto x = random_tensor(tensor::Shape({8, n}), 42);
  const auto best_seconds = [&](const kernels::simd::KernelBackend* be) {
    double best = std::numeric_limits<double>::infinity();
    for (int trial = 0; trial < 5; ++trial) {
      const auto t0 = std::chrono::steady_clock::now();
      for (int rep = 0; rep < 20; ++rep) {
        benchmark::DoNotOptimize(csr.spmm(x, {}, {}, be));
      }
      best = std::min(
          best, std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - t0).count());
    }
    return best;
  };
  (void)best_seconds(avx2);  // warm both code paths + caches
  const double scalar_s =
      best_seconds(&kernels::simd::scalar_backend());
  const double avx2_s = best_seconds(avx2);
  const double speedup = scalar_s / avx2_s;
  for (auto _ : state) {
    benchmark::DoNotOptimize(csr.spmm(x, {}, {}, avx2));
  }
  state.counters["speedup_b8"] = speedup;
  if (speedup < 1.5) {
    state.SkipWithError("AVX2 spmm below the 1.5x batch-8 gate vs scalar");
  }
}
BENCHMARK(BM_SpmmAvx2SpeedupGate);

// Fan-out mechanism overhead: the persistent runtime pool vs the retired
// per-call thread spawn, on a body small enough that dispatch dominates —
// the regime every batch<=8 serving SpMM lives in.
void BM_FanoutPool(benchmark::State& state) {
  const auto chunks = static_cast<std::size_t>(state.range(0));
  std::vector<float> data(4096, 1.0f);
  std::vector<float> sums(chunks + 1, 0.0f);
  for (auto _ : state) {
    runtime::default_pool().run_chunks(
        data.size(), chunks, [&](std::size_t b0, std::size_t b1) {
          float acc = 0.0f;
          for (std::size_t i = b0; i < b1; ++i) acc += data[i];
          sums[b0 / ((data.size() + chunks - 1) / chunks)] = acc;
        });
    benchmark::DoNotOptimize(sums.data());
  }
}
BENCHMARK(BM_FanoutPool)->Arg(2)->Arg(4);

void BM_FanoutSpawn(benchmark::State& state) {
  const auto chunks = static_cast<std::size_t>(state.range(0));
  std::vector<float> data(4096, 1.0f);
  std::vector<float> sums(chunks + 1, 0.0f);
  for (auto _ : state) {
    bench::spawn_chunks(
        data.size(), chunks, [&](std::size_t b0, std::size_t b1) {
          float acc = 0.0f;
          for (std::size_t i = b0; i < b1; ++i) acc += data[i];
          sums[b0 / ((data.size() + chunks - 1) / chunks)] = acc;
        });
    benchmark::DoNotOptimize(sums.data());
  }
}
BENCHMARK(BM_FanoutSpawn)->Arg(2)->Arg(4);

void BM_EngineUpdateRound(benchmark::State& state) {
  util::Rng rng(15);
  models::MlpConfig cfg;
  cfg.in_features = 256;
  cfg.hidden = {512, 512};
  cfg.out_features = 64;
  models::Mlp model(cfg, rng);
  sparse::SparseModel smodel(model, 0.9, sparse::DistributionKind::kErk,
                             rng);
  optim::Sgd::Config sgd_cfg;
  optim::Sgd optimizer(model.parameters(), sgd_cfg);
  methods::DstEngineConfig engine_cfg;
  engine_cfg.schedule.delta_t = 1;
  engine_cfg.schedule.total_iterations = 1u << 30;
  engine_cfg.schedule.stop_fraction = 1.0;
  engine_cfg.schedule.initial_drop_fraction = 0.3;
  engine_cfg.drop = std::make_unique<methods::MagnitudeDrop>();
  methods::DstEeGrow::Config ee;
  engine_cfg.grow = std::make_unique<methods::DstEeGrow>(ee);
  methods::DstEngine engine(smodel, optimizer, std::move(engine_cfg),
                            rng.fork("engine"));
  for (auto& layer : smodel.layers()) {
    tensor::fill_normal(layer.param().grad, rng, 0.0f, 1.0f);
  }
  std::size_t iteration = 1;
  for (auto _ : state) {
    engine.force_update(iteration++, 0.1);
  }
}
BENCHMARK(BM_EngineUpdateRound);

}  // namespace
}  // namespace dstee

BENCHMARK_MAIN();
