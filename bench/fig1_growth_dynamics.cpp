// Figure 1 reproduction: greedy gradient growth ignores inactive weights
// whose gradient is small NOW but which become important LATER.
//
// Instrumentation (one DST-EE training run with the engine observer):
//  * At every update round, each grown position is classified as
//    "greedy-grown" (its |gradient| ranks within the top-k of the inactive
//    pool — RigL would also have grown it) or "exploration-grown" (RigL
//    would have ignored it; only the coverage bonus selected it).
//  * At the end of training we measure, among surviving grown weights, how
//    many ended in the TOP HALF of their layer's active-magnitude ranking
//    ("became important", the paper's criterion for the red line).
//  * Two weight trajectories are printed — one exploration-grown ("red
//    line"), one greedy-grown ("blue line") — mirroring Fig. 1's plot.
//  * A per-layer table reports the fraction of eventually-important grown
//    weights that greedy growth would have ignored (the paper: ">90% in 12
//    of 16 conv layers").
#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "bench_common.hpp"
#include "data/dataloader.hpp"
#include "methods/dst_engine.hpp"
#include "methods/drop_policy.hpp"
#include "methods/grow_policy.hpp"
#include "nn/losses.hpp"
#include "optim/lr_schedule.hpp"
#include "optim/optimizer.hpp"
#include "tensor/ops.hpp"
#include "tensor/topk.hpp"

namespace dstee {
namespace {

struct GrownRecord {
  std::size_t layer = 0;
  std::size_t index = 0;
  std::size_t round = 0;
  double grad_mag = 0.0;
  bool greedy_would_grow = false;
};

int run() {
  const bench::BenchEnv env = bench::BenchEnv::resolve(1);
  const std::size_t epochs = env.epochs_or(16);

  std::cout << "=== Figure 1: greedy vs exploration growth dynamics ===\n"
            << "(VGG-19-like on CIFAR-10-like data, sparsity 0.95, DST-EE "
               "with per-round instrumentation)\n\n";
  util::Timer timer;

  const auto data_cfg = bench::cifar10_like(env, 5);
  const data::SyntheticImageDataset train_set(
      data_cfg, data::SyntheticImageDataset::Split::kTrain);
  const data::SyntheticImageDataset test_set(
      data_cfg, data::SyntheticImageDataset::Split::kTest);

  util::Rng rng(41);
  models::Vgg model(bench::vgg19_preset(data_cfg, 0.10), rng);
  sparse::SparseModel smodel(model, 0.95, sparse::DistributionKind::kErk,
                             rng);
  optim::Sgd::Config sgd_cfg;
  sgd_cfg.lr = 0.08;
  sgd_cfg.momentum = 0.9;
  optim::Sgd optimizer(model.parameters(), sgd_cfg);

  data::DataLoader loader(train_set, 32, rng.fork("loader"));
  const std::size_t total_iters = epochs * loader.batches_per_epoch();
  optim::CosineAnnealingLr schedule(0.08, total_iters);

  methods::DstEngineConfig engine_cfg;
  engine_cfg.schedule.delta_t = 8;
  engine_cfg.schedule.total_iterations = total_iters;
  engine_cfg.schedule.initial_drop_fraction = 0.2;
  engine_cfg.drop = std::make_unique<methods::MagnitudeDrop>();
  methods::DstEeGrow::Config ee;
  ee.c = 5e-3;
  ee.eps = 0.1;
  engine_cfg.grow = std::make_unique<methods::DstEeGrow>(ee);
  methods::DstEngine engine(smodel, optimizer, std::move(engine_cfg),
                            rng.fork("engine"));

  // ---- observer: classify every grown position --------------------------
  std::vector<GrownRecord> grown;
  engine.set_observer([&](const methods::UpdateObservation& obs) {
    // Greedy (RigL) would grow the top-|grows| gradient magnitudes among
    // the inactive pool (inactive = current mask == 0).
    const auto& layer = smodel.layer(obs.layer_index);
    tensor::Tensor eligible(layer.mask().tensor().shape());
    const auto& mask_t = layer.mask().tensor();
    for (std::size_t j = 0; j < mask_t.numel(); ++j) {
      eligible[j] = mask_t[j] == 0.0f ? 1.0f : 0.0f;
    }
    const tensor::Tensor grad_mag = tensor::abs(obs.dense_grad);
    const auto greedy = tensor::topk_indices_where(grad_mag, eligible,
                                                   obs.grows.size());
    const std::set<std::size_t> greedy_set(greedy.begin(), greedy.end());
    for (const std::size_t g : obs.grows) {
      GrownRecord rec;
      rec.layer = obs.layer_index;
      rec.index = g;
      rec.round = obs.round;
      rec.grad_mag = grad_mag[g];
      rec.greedy_would_grow = greedy_set.count(g) > 0;
      grown.push_back(rec);
    }
  });

  // ---- training loop with trajectory tracking ----------------------------
  // Round 1 starts from all-zero counters, where the exploration bonus is a
  // constant offset — DST-EE's round-1 picks coincide with greedy's. True
  // exploration growth appears from round 2 on, so trajectory candidates
  // are adopted from every round and the strongest of each class is shown.
  nn::SoftmaxCrossEntropy loss;
  struct Tracked {
    std::size_t layer = 0, index = 0;
    std::vector<float> magnitudes;
  };
  std::vector<Tracked> red_candidates, blue_candidates;
  std::set<std::pair<std::size_t, std::size_t>> tracked_keys;
  std::size_t adopted_records = 0;
  // Per-layer round-1 snapshot for the "ignored important weights" claim:
  // the greedy grow set and the inactive set at the first update.
  std::vector<std::set<std::size_t>> round1_greedy(smodel.num_layers());
  std::vector<std::vector<bool>> round1_inactive(smodel.num_layers());
  std::size_t iteration = 0;
  for (std::size_t epoch = 0; epoch < epochs; ++epoch) {
    loader.start_epoch();
    while (loader.has_next()) {
      const auto batch = loader.next_batch();
      model.zero_grad();
      loss.forward(model.forward(batch.examples), batch.labels);
      model.backward(loss.backward());
      engine.maybe_update(iteration, schedule.lr_at(iteration));
      // Adopt new trajectory candidates (up to 48 per class).
      for (; adopted_records < grown.size(); ++adopted_records) {
        const auto& rec = grown[adopted_records];
        auto& bucket =
            rec.greedy_would_grow ? blue_candidates : red_candidates;
        if (bucket.size() >= 48) continue;
        if (!tracked_keys.insert({rec.layer, rec.index}).second) continue;
        bucket.push_back({rec.layer, rec.index, {}});
      }
      smodel.apply_masks_to_grads();
      optimizer.set_learning_rate(schedule.lr_at(iteration));
      optimizer.step();
      smodel.apply_masks_to_values();
      for (auto* bucket : {&red_candidates, &blue_candidates}) {
        for (auto& t : *bucket) {
          t.magnitudes.push_back(
              std::fabs(smodel.layer(t.layer).param().value[t.index]));
        }
      }
      ++iteration;
    }
  }
  // Round-1 snapshot, reconstructed from the records (which store the
  // greedy classification made at observation time).
  for (const auto& rec : grown) {
    if (rec.round == 1 && rec.greedy_would_grow) {
      round1_greedy[rec.layer].insert(rec.index);
    }
  }

  // ---- final importance analysis -----------------------------------------
  // A grown weight "became important" if it is still active and sits in the
  // top half of its layer's active-magnitude ranking at the end.
  const std::size_t L = smodel.num_layers();
  std::vector<float> median_mag(L, 0.0f);
  for (std::size_t i = 0; i < L; ++i) {
    const auto& layer = smodel.layer(i);
    std::vector<float> mags;
    for (const auto idx : layer.mask().active_indices()) {
      mags.push_back(std::fabs(layer.param().value[idx]));
    }
    if (mags.empty()) continue;
    std::nth_element(mags.begin(), mags.begin() + mags.size() / 2,
                     mags.end());
    median_mag[i] = mags[mags.size() / 2];
  }

  struct LayerStats {
    std::size_t grown = 0;
    std::size_t exploration_grown = 0;
    std::size_t important = 0;   // grown weights that became important
    std::size_t important_ignored_by_round1_greedy = 0;
  };
  std::vector<LayerStats> per_layer(L);
  // First growth round per position (a position may be grown repeatedly).
  std::map<std::pair<std::size_t, std::size_t>, const GrownRecord*> first_grow;
  for (const auto& rec : grown) {
    auto key = std::make_pair(rec.layer, rec.index);
    if (!first_grow.count(key)) first_grow[key] = &rec;
    auto& st = per_layer[rec.layer];
    ++st.grown;
    if (!rec.greedy_would_grow) ++st.exploration_grown;
  }
  // Paper's Fig. 1a claim: weights that END UP important were, at the time
  // greedy growth had its chance (round 1), mostly OUTSIDE the greedy
  // top-k — i.e. greedy permanently ignores them.
  for (const auto& [key, rec] : first_grow) {
    const auto& layer = smodel.layer(rec->layer);
    const bool active = layer.mask().is_active(rec->index);
    const bool important =
        active && std::fabs(layer.param().value[rec->index]) >=
                      median_mag[rec->layer];
    if (!important) continue;
    auto& st = per_layer[rec->layer];
    ++st.important;
    if (round1_greedy[rec->layer].count(rec->index) == 0) {
      ++st.important_ignored_by_round1_greedy;
    }
  }

  util::CsvWriter csv("bench_results/fig1_growth_dynamics.csv",
                      {"layer", "grown", "exploration_grown", "important",
                       "important_ignored_by_round1_greedy"});
  util::Table table({"Layer", "Grown", "Explore-grown", "Became important",
                     "...ignored by greedy at round 1"});
  std::size_t layers_dominated = 0, layers_with_important = 0;
  std::size_t tot_imp = 0, tot_imp_ignored = 0;
  for (std::size_t i = 0; i < L; ++i) {
    const auto& st = per_layer[i];
    table.add_row({std::to_string(i), std::to_string(st.grown),
                   std::to_string(st.exploration_grown),
                   std::to_string(st.important),
                   std::to_string(st.important_ignored_by_round1_greedy)});
    csv.write_row({std::to_string(i), std::to_string(st.grown),
                   std::to_string(st.exploration_grown),
                   std::to_string(st.important),
                   std::to_string(st.important_ignored_by_round1_greedy)});
    if (st.important >= 10) {  // layers with enough mass to judge
      ++layers_with_important;
      if (st.important_ignored_by_round1_greedy * 10 >= st.important * 3) {
        ++layers_dominated;  // ≥30% ignored by round-1 greedy
      }
    }
    tot_imp += st.important;
    tot_imp_ignored += st.important_ignored_by_round1_greedy;
  }
  table.print();
  csv.flush();

  std::cout << "\nTrajectories (|w| per iteration after first growth; the "
               "strongest-finishing candidate of each class):\n";
  auto best_of = [](const std::vector<Tracked>& bucket) -> const Tracked* {
    const Tracked* best = nullptr;
    for (const auto& t : bucket) {
      if (t.magnitudes.empty()) continue;
      if (best == nullptr ||
          t.magnitudes.back() > best->magnitudes.back()) {
        best = &t;
      }
    }
    return best;
  };
  auto print_series = [&](const char* name, const Tracked* t) {
    std::cout << "  " << name;
    if (t == nullptr) {
      std::cout << ": none found\n";
      return;
    }
    std::cout << " (layer " << t->layer << ", idx " << t->index << "): ";
    const std::size_t step =
        std::max<std::size_t>(1, t->magnitudes.size() / 12);
    for (std::size_t i = 0; i < t->magnitudes.size(); i += step) {
      std::cout << util::format_sci(t->magnitudes[i], 1) << " ";
    }
    std::cout << "\n";
  };
  const Tracked* red = best_of(red_candidates);
  const Tracked* blue = best_of(blue_candidates);
  print_series("red  (exploration-grown, small gradient)", red);
  print_series("blue (greedy-grown, large gradient)", blue);

  std::cout << "\nShape checks (paper's qualitative claims):\n";
  int holds = 0, total = 0;
  auto check = [&](const std::string& what, bool ok) {
    ++total;
    holds += bench::shape_check(what, ok) ? 1 : 0;
  };
  check("some small-gradient (greedy-ignored) weights were grown",
        std::any_of(grown.begin(), grown.end(),
                    [](const GrownRecord& r) { return !r.greedy_would_grow; }));
  check("grown weights DO become important (Fig. 1b)", tot_imp > 0);
  // The paper reports >=90% ignored in 12/16 layers on the full 160-epoch
  // run, where round-1 growth is a negligible share of the final network;
  // at bench scale round-1-grown weights have the longest time to gain
  // magnitude, so the structural claim is asserted at a >=30% level and
  // the paper-level fraction is reported for reference.
  check("a substantial share (>=30%) of eventually-important grown weights "
        "was ignored by greedy growth at round 1, in most layers",
        layers_with_important > 0 &&
            2 * layers_dominated >= layers_with_important);
  std::cout << "  [info] overall ignored-important fraction: "
            << util::format_fixed(
                   tot_imp > 0 ? 100.0 * static_cast<double>(tot_imp_ignored) /
                                     static_cast<double>(tot_imp)
                               : 0.0,
                   1)
            << "% (paper reports >90% at full scale)\n";
  if (red != nullptr && !red->magnitudes.empty()) {
    check("the red-line weight grew to nonzero magnitude after being grown "
          "with a small gradient",
          red->magnitudes.back() > 0.0f);
  }
  std::cout << "\n" << holds << "/" << total
            << " shape checks hold (bench wall time "
            << util::format_fixed(timer.seconds(), 1) << "s)\n"
            << "CSV: bench_results/fig1_growth_dynamics.csv\n";
  return 0;
}

}  // namespace
}  // namespace dstee

int main() { return dstee::run(); }
