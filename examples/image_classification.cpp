// Image classification with a sparse VGG-19 — the workload the paper's
// introduction motivates (training convnets on resource-limited devices).
//
// Trains the same VGG-19-style network twice on a synthetic CIFAR-like
// dataset: once dense, once with DST-EE at 90% sparsity, and reports the
// accuracy cost of dropping 90% of the weights together with the analytic
// FLOPs savings.
//
// Build & run:  ./build/examples/image_classification
#include <iostream>

#include "data/synthetic_images.hpp"
#include "models/vgg.hpp"
#include "train/experiment.hpp"
#include "util/string_util.hpp"

int main() {
  using namespace dstee;

  data::SyntheticImageConfig data_cfg;
  data_cfg.num_classes = 8;
  data_cfg.image_size = 12;
  data_cfg.train_per_class = 60;
  data_cfg.test_per_class = 25;
  data_cfg.signal = 0.9;
  data_cfg.spatial_noise = 1.0;
  data_cfg.pixel_noise = 0.8;
  const data::SyntheticImageDataset train_set(
      data_cfg, data::SyntheticImageDataset::Split::kTrain);
  const data::SyntheticImageDataset test_set(
      data_cfg, data::SyntheticImageDataset::Split::kTest);

  models::VggConfig vgg_cfg;
  vgg_cfg.depth = 19;
  vgg_cfg.image_size = data_cfg.image_size;
  vgg_cfg.num_classes = data_cfg.num_classes;
  vgg_cfg.width_multiplier = 0.1;  // laptop-scale width

  auto run = [&](train::MethodKind method, double sparsity) {
    train::ClassificationConfig cfg;
    cfg.method = method;
    cfg.sparsity = sparsity;
    cfg.epochs = 16;
    cfg.batch_size = 32;
    cfg.lr = 0.08;
    cfg.dst.delta_t = 8;
    cfg.dst.drop_fraction = 0.2;
    cfg.dst.c = 5e-3;
    cfg.dst.eps = 0.1;
    cfg.seed = 17;
    util::Rng rng(cfg.seed);
    models::Vgg model(vgg_cfg, rng);
    const sparse::FlopsModel flops = model.flops_model();
    return train::run_classification(model, &flops, train_set, test_set,
                                     cfg);
  };

  std::cout << "training VGG-19 (width x0.1) on 8-class synthetic images\n\n";
  const auto dense = run(train::MethodKind::kDense, 0.0);
  std::cout << "dense:   best accuracy "
            << util::format_fixed(dense.best_test_accuracy * 100, 2)
            << "%, train FLOPs 1.00x, inference FLOPs 1.00x\n";

  const auto sparse90 = run(train::MethodKind::kDstEe, 0.9);
  std::cout << "DST-EE @90% sparsity: best accuracy "
            << util::format_fixed(sparse90.best_test_accuracy * 100, 2)
            << "%, train FLOPs "
            << util::format_multiple(sparse90.train_flops_multiple)
            << ", inference FLOPs "
            << util::format_multiple(sparse90.inference_flops_multiple)
            << "\n";
  std::cout << "  exploration rate R = "
            << util::format_fixed(sparse90.exploration_rate, 3)
            << " (fraction of all weights ever activated)\n"
            << "  topology updates: " << sparse90.topology_rounds.size()
            << " drop-and-grow rounds\n\n";

  const double gap =
      (dense.best_test_accuracy - sparse90.best_test_accuracy) * 100;
  std::cout << "accuracy cost of removing 90% of the weights: "
            << util::format_fixed(gap, 2) << " points, for "
            << util::format_fixed(
                   (1.0 - sparse90.train_flops_multiple) * 100, 0)
            << "% lower training compute.\n";
  return 0;
}
