// Quickstart: sparse-train an MLP with DST-EE in ~60 lines.
//
// Shows the full public-API surface a user needs:
//   1. build a model and an optimizer;
//   2. wrap them in a core::DstEeSession (this sparsifies the model);
//   3. call session.on_iteration_end(...) after backward and
//      session.after_optimizer_step() after the optimizer step.
//
// Build & run:  ./build/examples/quickstart
#include <iostream>

#include "core/dst_ee.hpp"
#include "data/dataloader.hpp"
#include "data/synthetic_tabular.hpp"
#include "models/mlp.hpp"
#include "nn/losses.hpp"
#include "optim/lr_schedule.hpp"
#include "optim/optimizer.hpp"
#include "train/metrics.hpp"

int main() {
  using namespace dstee;

  // A small 4-class Gaussian-cluster classification task.
  data::SyntheticTabularConfig data_cfg;
  data_cfg.num_classes = 4;
  data_cfg.features = 32;
  data_cfg.train_per_class = 128;
  data_cfg.test_per_class = 64;
  const data::SyntheticTabularDataset train_set(
      data_cfg, data::SyntheticTabularDataset::Split::kTrain);
  const data::SyntheticTabularDataset test_set(
      data_cfg, data::SyntheticTabularDataset::Split::kTest);

  // Model + optimizer, exactly as for dense training.
  util::Rng rng(7);
  models::MlpConfig model_cfg;
  model_cfg.in_features = 32;
  model_cfg.hidden = {128, 128};
  model_cfg.out_features = 4;
  models::Mlp model(model_cfg, rng);

  optim::Sgd::Config sgd_cfg;
  sgd_cfg.lr = 0.1;
  sgd_cfg.momentum = 0.9;
  optim::Sgd optimizer(model.parameters(), sgd_cfg);

  // DST-EE at 95% sparsity: 5% of the weights are nonzero at every step.
  const std::size_t epochs = 20;
  data::DataLoader loader(train_set, 32, rng.fork("loader"));
  const std::size_t total_iters = epochs * loader.batches_per_epoch();

  core::DstEeConfig ee;
  ee.sparsity = 0.95;
  ee.delta_t = 16;   // drop-and-grow every 16 iterations
  ee.c = 5e-3;       // exploration coefficient (Eq. 1 of the paper)
  core::DstEeSession session(model, optimizer, ee, total_iters, /*seed=*/7);

  std::cout << "training a " << ee.sparsity * 100 << "% sparse MLP ("
            << session.sparse_model().total_active() << " of "
            << session.sparse_model().total_weights()
            << " weights active)\n";

  optim::CosineAnnealingLr schedule(sgd_cfg.lr, total_iters);
  nn::SoftmaxCrossEntropy loss;
  std::size_t iteration = 0;
  for (std::size_t epoch = 0; epoch < epochs; ++epoch) {
    loader.start_epoch();
    double loss_sum = 0.0;
    std::size_t batches = 0;
    while (loader.has_next()) {
      const auto batch = loader.next_batch();
      model.zero_grad();
      loss_sum += loss.forward(model.forward(batch.examples), batch.labels);
      model.backward(loss.backward());

      const double lr = schedule.lr_at(iteration);
      session.on_iteration_end(iteration, lr);  // drop-and-grow + mask grads
      optimizer.set_learning_rate(lr);
      optimizer.step();
      session.after_optimizer_step();           // keep masked weights at 0
      ++iteration;
      ++batches;
    }
    if (epoch % 5 == 4 || epoch + 1 == epochs) {
      std::cout << "epoch " << epoch + 1 << ": train loss "
                << loss_sum / batches << ", exploration R = "
                << session.exploration_rate() << "\n";
    }
  }

  // Evaluate.
  model.set_training(false);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < test_set.size(); ++i) {
    const auto logits = model.forward(test_set.batch({i}));
    const auto labels = test_set.batch_labels({i});
    if (train::accuracy(logits, labels) > 0.5) ++correct;
  }
  std::cout << "test accuracy: "
            << 100.0 * static_cast<double>(correct) /
                   static_cast<double>(test_set.size())
            << "% at sparsity " << session.sparsity() * 100 << "%\n";
  return 0;
}
