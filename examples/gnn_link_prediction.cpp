// GNN link prediction with sparse training — the paper's §V-B workload.
//
// Builds a power-law graph (ia-email-like), splits edges into train/test,
// trains a two-layer GCN link predictor three ways (dense, ADMM
// prune-from-dense, DST-EE) and reports best accuracy and AUC.
//
// Build & run:  ./build/examples/gnn_link_prediction
#include <iostream>

#include "graph/generator.hpp"
#include "models/gnn.hpp"
#include "train/experiment.hpp"
#include "util/string_util.hpp"

int main() {
  using namespace dstee;

  const auto graph_cfg = graph::ia_email_config(0.5);
  const graph::Graph g = graph::generate_power_law(graph_cfg);
  const tensor::Tensor features = graph::structural_features(g, 32, 23);
  const graph::LinkSplit split = graph::split_links(g, /*holdout=*/0.2, 29);

  std::cout << "graph: " << g.num_nodes() << " nodes, " << g.num_edges()
            << " edges; " << split.train_pairs.size()
            << " training pairs, " << split.test_pairs.size()
            << " held-out pairs\n\n";

  auto run = [&](train::LinkMethod method, double sparsity,
                 const char* name) {
    util::Rng rng(31);
    models::GnnConfig gcfg;
    gcfg.in_features = 32;
    gcfg.hidden = 64;
    gcfg.embedding = 32;
    models::GnnLinkPredictor model(g, gcfg, rng);
    train::LinkConfig cfg;
    cfg.method = method;
    cfg.sparsity = sparsity;
    cfg.epochs = 50;           // paper: best model over 50 epochs
    cfg.admm_epochs_each = 20; // paper: 20 + 20 + 20 epochs
    cfg.dst.delta_t = 2;
    cfg.dst.c = 1e-2;
    cfg.dst.eps = 0.1;
    const auto result = train::run_link_prediction(model, features, split,
                                                   cfg);
    std::cout << name << ": best accuracy "
              << util::format_fixed(result.best_test_accuracy * 100, 2)
              << "%, best AUC "
              << util::format_fixed(result.best_test_auc, 3)
              << " (achieved sparsity "
              << util::format_fixed(result.achieved_sparsity * 100, 1)
              << "%)\n";
    return result;
  };

  run(train::LinkMethod::kDense, 0.0,
      "dense                         ");
  run(train::LinkMethod::kPruneFromDense, 0.9,
      "ADMM prune-from-dense @90%    ");
  run(train::LinkMethod::kDstEe, 0.9,
      "DST-EE sparse training @90%   ");

  std::cout << "\nThe sparse-from-scratch DST-EE model needs no dense "
               "pretraining phase and\nstill matches or beats the "
               "prune-from-dense pipeline (Tables III/IV).\n";
  return 0;
}
