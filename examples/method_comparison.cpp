// Sparse-training method leaderboard on one fixed task.
//
// Runs every method in the library's registry — static pruning at init,
// dense-to-sparse schedules, and all the drop-and-grow variants — on the
// same synthetic image-classification task at 95% sparsity, then prints a
// leaderboard with accuracy and exploration rate. A compact way to see the
// whole methods/ registry exercised through one public entry point.
//
// Build & run:  ./build/examples/method_comparison
#include <algorithm>
#include <iostream>
#include <vector>

#include "data/synthetic_images.hpp"
#include "models/vgg.hpp"
#include "train/experiment.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

int main() {
  using namespace dstee;

  data::SyntheticImageConfig data_cfg;
  data_cfg.num_classes = 8;
  data_cfg.image_size = 12;
  data_cfg.train_per_class = 60;
  data_cfg.test_per_class = 25;
  data_cfg.signal = 0.9;
  data_cfg.spatial_noise = 1.0;
  data_cfg.pixel_noise = 0.8;
  const data::SyntheticImageDataset train_set(
      data_cfg, data::SyntheticImageDataset::Split::kTrain);
  const data::SyntheticImageDataset test_set(
      data_cfg, data::SyntheticImageDataset::Split::kTest);

  const std::vector<std::string> methods{
      "dense", "snip",  "grasp", "synflow", "magnitude", "random", "str",
      "sis",   "deepr", "set",   "rigl",    "mest",      "snfs",   "dsr",
      "rigl-itop", "dst-ee", "gap"};

  struct Entry {
    std::string name;
    double accuracy = 0.0;
    double exploration = 0.0;
    double sparsity = 0.0;
  };
  std::vector<Entry> leaderboard;

  std::cout << "comparing " << methods.size()
            << " methods at 95% sparsity (VGG-19 x0.1, 16 epochs)...\n";
  for (const auto& name : methods) {
    train::ClassificationConfig cfg;
    cfg.method = train::parse_method(name);
    cfg.sparsity = cfg.method == train::MethodKind::kDense ? 0.0 : 0.95;
    cfg.epochs = 16;
    cfg.batch_size = 32;
    cfg.lr = 0.08;
    cfg.dst.delta_t = 8;
    cfg.dst.drop_fraction = 0.2;
    cfg.dst.c = 5e-3;
    cfg.dst.eps = 0.1;
    cfg.seed = 23;
    util::Rng rng(cfg.seed);
    models::VggConfig vgg_cfg;
    vgg_cfg.depth = 19;
    vgg_cfg.image_size = data_cfg.image_size;
    vgg_cfg.num_classes = data_cfg.num_classes;
    vgg_cfg.width_multiplier = 0.1;
    models::Vgg model(vgg_cfg, rng);
    const auto result =
        train::run_classification(model, nullptr, train_set, test_set, cfg);
    leaderboard.push_back({train::to_string(cfg.method),
                           result.best_test_accuracy,
                           result.exploration_rate,
                           result.achieved_sparsity});
    std::cout << "  " << train::to_string(cfg.method) << " done\n";
  }

  std::sort(leaderboard.begin(), leaderboard.end(),
            [](const Entry& a, const Entry& b) {
              return a.accuracy > b.accuracy;
            });

  util::Table table({"#", "Method", "Best accuracy", "Exploration R",
                     "Sparsity"});
  for (std::size_t i = 0; i < leaderboard.size(); ++i) {
    const auto& e = leaderboard[i];
    table.add_row({std::to_string(i + 1), e.name,
                   util::format_fixed(e.accuracy * 100, 2) + "%",
                   util::format_fixed(e.exploration, 3),
                   util::format_fixed(e.sparsity * 100, 1) + "%"});
  }
  std::cout << "\n";
  table.print();
  return 0;
}
