// FLOPs-model tests (Table II's ×dense columns depend on these).
#include <gtest/gtest.h>

#include "sparse/distribution.hpp"
#include "sparse/flops.hpp"
#include "tensor/shape.hpp"
#include "util/check.hpp"

namespace dstee {
namespace {

TEST(Flops, ConvFormula) {
  sparse::FlopsModel fm;
  // 3→16 channels, 3x3 kernel, stride 1, pad 1 on 8x8 → out 8x8.
  fm.add_conv("c", 3, 16, 3, 1, 1, 8, 8);
  const auto& l = fm.layer(0);
  EXPECT_EQ(l.params, 16u * 3u * 9u);
  EXPECT_DOUBLE_EQ(l.dense_flops, 2.0 * 64.0 * (16.0 * 3.0 * 9.0));
}

TEST(Flops, ConvStrideShrinksOutput) {
  sparse::FlopsModel a, b;
  a.add_conv("c", 4, 4, 3, 1, 1, 8, 8);
  b.add_conv("c", 4, 4, 3, 2, 1, 8, 8);
  EXPECT_GT(a.dense_forward_flops(), b.dense_forward_flops());
}

TEST(Flops, LinearFormula) {
  sparse::FlopsModel fm;
  fm.add_linear("fc", 128, 10);
  EXPECT_DOUBLE_EQ(fm.dense_forward_flops(), 2.0 * 1280.0);
}

TEST(Flops, FixedLayersNotScaledByDensity) {
  sparse::FlopsModel fm;
  fm.add_linear("fc", 100, 100);
  fm.add_fixed("bn", 500.0);
  const double dense = fm.dense_forward_flops();
  const double sparse10 = fm.sparse_forward_flops({0.1});
  EXPECT_DOUBLE_EQ(dense, 2.0 * 10000.0 + 500.0);
  EXPECT_DOUBLE_EQ(sparse10, 0.1 * 2.0 * 10000.0 + 500.0);
}

TEST(Flops, DensityOneMatchesDense) {
  sparse::FlopsModel fm;
  fm.add_conv("c", 3, 8, 3, 1, 1, 16, 16);
  fm.add_linear("fc", 8, 4);
  EXPECT_DOUBLE_EQ(fm.sparse_forward_flops({1.0, 1.0}),
                   fm.dense_forward_flops());
}

TEST(Flops, SparseScalesLinearlyWithDensity) {
  sparse::FlopsModel fm;
  fm.add_linear("fc", 64, 64);
  EXPECT_DOUBLE_EQ(fm.sparse_forward_flops({0.5}),
                   0.5 * fm.dense_forward_flops());
}

TEST(Flops, TrainingIsThreeTimesForward) {
  sparse::FlopsModel fm;
  fm.add_linear("fc", 32, 32);
  const std::vector<double> d{0.2};
  EXPECT_DOUBLE_EQ(fm.sparse_training_flops(d),
                   3.0 * fm.sparse_forward_flops(d));
}

TEST(Flops, DenseGradAmortizationBounds) {
  sparse::FlopsModel fm;
  fm.add_conv("c", 3, 8, 3, 1, 1, 8, 8);
  fm.add_linear("fc", 8, 4);
  const std::vector<double> d{0.1, 0.1};
  const double sparse_step = fm.sparse_training_flops(d);
  // Dense grads every step >= amortized every 100 >= plain sparse.
  const double every1 = fm.training_flops_with_dense_grad(d, 1);
  const double every100 = fm.training_flops_with_dense_grad(d, 100);
  const double never = fm.training_flops_with_dense_grad(d, 0);
  EXPECT_GT(every1, every100);
  EXPECT_GT(every100, sparse_step);
  EXPECT_DOUBLE_EQ(never, sparse_step);
}

TEST(Flops, AmortizationApproachesSparseAsIntervalGrows) {
  sparse::FlopsModel fm;
  fm.add_linear("fc", 256, 256);
  const std::vector<double> d{0.1};
  const double sparse_step = fm.sparse_training_flops(d);
  const double far = fm.training_flops_with_dense_grad(d, 100000);
  EXPECT_NEAR(far / sparse_step, 1.0, 1e-2);
}

TEST(Flops, DensityCountMismatchThrows) {
  sparse::FlopsModel fm;
  fm.add_linear("fc", 8, 8);
  EXPECT_THROW(fm.sparse_forward_flops({0.5, 0.5}), util::CheckError);
  EXPECT_THROW(fm.sparse_forward_flops({1.5}), util::CheckError);
}

TEST(Flops, NumSparsifiableExcludesFixed) {
  sparse::FlopsModel fm;
  fm.add_linear("a", 4, 4);
  fm.add_fixed("bn", 10.0);
  fm.add_linear("b", 4, 4);
  EXPECT_EQ(fm.num_sparsifiable(), 2u);
  EXPECT_EQ(fm.num_layers(), 3u);
}

TEST(Flops, ErkBeatsUniformInferenceFlopsAtSameSparsity) {
  // ERK puts more density in cheap layers relative to uniform, so its
  // FLOPs multiple is HIGHER than (1 - sparsity) on conv nets — this is
  // why the paper reports 0.23x at 80% sparsity rather than 0.20x.
  sparse::FlopsModel fm;
  fm.add_conv("c1", 3, 64, 3, 1, 1, 32, 32);
  fm.add_conv("c2", 64, 128, 3, 1, 1, 16, 16);
  fm.add_linear("fc", 128, 10);
  const std::vector<tensor::Shape> shapes{tensor::Shape({64, 3, 3, 3}),
                                          tensor::Shape({128, 64, 3, 3}),
                                          tensor::Shape({10, 128})};
  const auto erk =
      sparse::layer_densities(shapes, 0.8, sparse::DistributionKind::kErk);
  const double erk_mult =
      fm.sparse_forward_flops(erk) / fm.dense_forward_flops();
  EXPECT_GT(erk_mult, 0.2);
  EXPECT_LT(erk_mult, 0.6);
}

}  // namespace
}  // namespace dstee
