// Static pruners (SNIP/GraSP/SynFlow/magnitude/random), GMP and ADMM tests.
#include <gtest/gtest.h>

#include "methods/admm.hpp"
#include "methods/gmp.hpp"
#include "methods/static_pruners.hpp"
#include "models/mlp.hpp"
#include "nn/losses.hpp"
#include "sparse/stats.hpp"
#include "test_helpers.hpp"
#include "util/check.hpp"

namespace dstee {
namespace {

struct PrunerHarness {
  explicit PrunerHarness(std::uint64_t seed = 3)
      : rng(seed),
        model(make_cfg(), rng),
        smodel(model, 0.0, sparse::DistributionKind::kErk, rng) {}

  static models::MlpConfig make_cfg() {
    models::MlpConfig cfg;
    cfg.in_features = 12;
    cfg.hidden = {24, 24};
    cfg.out_features = 4;
    return cfg;
  }

  // One forward/backward on random data, for SNIP/GraSP scoring.
  void eval_grads() {
    const auto x = testing::random_tensor(tensor::Shape({8, 12}), 77);
    const std::vector<std::size_t> labels{0, 1, 2, 3, 0, 1, 2, 3};
    nn::SoftmaxCrossEntropy loss;
    loss.forward(model.forward(x), labels);
    model.backward(loss.backward());
  }

  util::Rng rng;
  models::Mlp model;
  sparse::SparseModel smodel;
};

methods::StaticPruneConfig prune_cfg(double sparsity,
                                     bool global_topk = false) {
  methods::StaticPruneConfig cfg;
  cfg.sparsity = sparsity;
  cfg.distribution = sparse::DistributionKind::kErk;
  cfg.global_topk = global_topk;
  return cfg;
}

TEST(StaticPruners, MagnitudeKeepsLargestWeights) {
  PrunerHarness h;
  auto& p = h.smodel.layer(0).param();
  for (std::size_t i = 0; i < p.value.numel(); ++i) {
    p.value[i] = static_cast<float>(i);  // strictly increasing magnitude
  }
  methods::prune_magnitude(h.smodel, prune_cfg(0.9));
  // The kept indices of layer 0 must be the largest ones.
  const auto active = h.smodel.layer(0).mask().active_indices();
  const std::size_t n = p.value.numel();
  for (const auto idx : active) {
    EXPECT_GE(idx, n - active.size());
  }
  EXPECT_NEAR(h.smodel.global_sparsity(), 0.9, 0.01);
  EXPECT_EQ(sparse::validate_invariants(h.smodel), "");
}

TEST(StaticPruners, RandomAchievesTargetAndIsSeedStable) {
  PrunerHarness a(5), b(5);
  methods::prune_random(a.smodel, prune_cfg(0.8), a.rng);
  methods::prune_random(b.smodel, prune_cfg(0.8), b.rng);
  EXPECT_NEAR(a.smodel.global_sparsity(), 0.8, 0.01);
  for (std::size_t i = 0; i < a.smodel.num_layers(); ++i) {
    EXPECT_EQ(a.smodel.layer(i).mask().hamming_distance(
                  b.smodel.layer(i).mask()),
              0u);
  }
}

TEST(StaticPruners, SnipKeepsHighSensitivityWeights) {
  PrunerHarness h;
  methods::prune_snip(h.model, h.smodel, [&] { h.eval_grads(); },
                      prune_cfg(0.9));
  EXPECT_NEAR(h.smodel.global_sparsity(), 0.9, 0.01);
  EXPECT_EQ(sparse::validate_invariants(h.smodel), "");
}

TEST(StaticPruners, GraspRunsAndHitsSparsity) {
  PrunerHarness h;
  methods::prune_grasp(h.model, h.smodel, [&] { h.eval_grads(); },
                       prune_cfg(0.95));
  EXPECT_NEAR(h.smodel.global_sparsity(), 0.95, 0.01);
}

TEST(StaticPruners, SynFlowIsDataFreeAndRestoresWeights) {
  PrunerHarness h;
  // Snapshot weights to verify sign restoration.
  std::vector<tensor::Tensor> before;
  for (std::size_t i = 0; i < h.smodel.num_layers(); ++i) {
    before.push_back(h.smodel.layer(i).param().value);
  }
  methods::prune_synflow(h.model, h.smodel, tensor::Shape({12}),
                         prune_cfg(0.9), /*rounds=*/5);
  EXPECT_NEAR(h.smodel.global_sparsity(), 0.9, 0.01);
  // Surviving weights keep their original (signed) values.
  for (std::size_t i = 0; i < h.smodel.num_layers(); ++i) {
    const auto& layer = h.smodel.layer(i);
    for (const auto idx : layer.mask().active_indices()) {
      EXPECT_EQ(layer.param().value[idx], before[i][idx]);
    }
  }
}

TEST(StaticPruners, GlobalTopKKeepsAtLeastOnePerLayer) {
  PrunerHarness h;
  // Make layer 2's weights tiny so global top-k would empty it.
  auto& p = h.smodel.layer(2).param();
  for (std::size_t i = 0; i < p.value.numel(); ++i) p.value[i] *= 1e-6f;
  methods::prune_magnitude(h.smodel, prune_cfg(0.98, /*global=*/true));
  for (std::size_t i = 0; i < h.smodel.num_layers(); ++i) {
    EXPECT_GE(h.smodel.layer(i).num_active(), 1u);
  }
}

TEST(StaticPruners, InstallMasksValidatesShapes) {
  PrunerHarness h;
  std::vector<tensor::Tensor> bad_scores;
  bad_scores.emplace_back(tensor::Shape({2, 2}));
  EXPECT_THROW(
      methods::install_masks_from_scores(h.smodel, bad_scores, prune_cfg(0.5)),
      util::CheckError);
}

TEST(StaticPruners, CountersResetToNewMask) {
  PrunerHarness h;
  methods::prune_magnitude(h.smodel, prune_cfg(0.9));
  for (std::size_t i = 0; i < h.smodel.num_layers(); ++i) {
    const auto& layer = h.smodel.layer(i);
    for (std::size_t j = 0; j < layer.counter().numel(); ++j) {
      EXPECT_EQ(layer.counter()[j], layer.mask().tensor()[j]);
    }
  }
}

TEST(Gmp, SparsityRampEndpointsAndMonotonicity) {
  methods::GmpConfig cfg;
  cfg.final_sparsity = 0.9;
  cfg.start_iteration = 100;
  cfg.end_iteration = 900;
  cfg.frequency = 50;
  methods::GradualMagnitudePruner gmp(cfg);
  EXPECT_DOUBLE_EQ(gmp.sparsity_at(0), 0.0);
  EXPECT_DOUBLE_EQ(gmp.sparsity_at(100), 0.0);
  EXPECT_DOUBLE_EQ(gmp.sparsity_at(900), 0.9);
  EXPECT_DOUBLE_EQ(gmp.sparsity_at(5000), 0.9);
  double prev = 0.0;
  for (std::size_t t = 100; t <= 900; t += 40) {
    const double s = gmp.sparsity_at(t);
    EXPECT_GE(s, prev);
    prev = s;
  }
  // Cubic ramp: half-way progress should exceed half the final sparsity.
  EXPECT_GT(gmp.sparsity_at(500), 0.45);
}

TEST(Gmp, MaybePruneFiresOnFrequency) {
  PrunerHarness h;
  methods::GmpConfig cfg;
  cfg.final_sparsity = 0.8;
  cfg.start_iteration = 0;
  cfg.end_iteration = 100;
  cfg.frequency = 10;
  methods::GradualMagnitudePruner gmp(cfg);
  EXPECT_FALSE(gmp.maybe_prune(h.smodel, 5));
  EXPECT_TRUE(gmp.maybe_prune(h.smodel, 50));
  EXPECT_GT(h.smodel.global_sparsity(), 0.4);
  EXPECT_TRUE(gmp.maybe_prune(h.smodel, 100));
  EXPECT_NEAR(h.smodel.global_sparsity(), 0.8, 0.01);
  EXPECT_FALSE(gmp.maybe_prune(h.smodel, 101));
}

TEST(Gmp, InvalidConfigsThrow) {
  methods::GmpConfig cfg;
  cfg.final_sparsity = 0.9;
  cfg.start_iteration = 10;
  cfg.end_iteration = 10;
  EXPECT_THROW(methods::GradualMagnitudePruner{cfg}, util::CheckError);
  cfg.end_iteration = 20;
  cfg.frequency = 0;
  EXPECT_THROW(methods::GradualMagnitudePruner{cfg}, util::CheckError);
}

TEST(Admm, PenaltyGradientIsRhoScaledViolation) {
  PrunerHarness h;
  methods::AdmmConfig cfg;
  cfg.rho = 0.5;
  cfg.sparsity = 0.5;
  methods::AdmmPruner admm(h.smodel, cfg);
  for (auto& layer : h.smodel.layers()) layer.param().zero_grad();
  admm.add_penalty_gradients(h.smodel);
  // Z = top-k projection of W, U = 0 → gradient = rho·(W − Z): zero on the
  // kept (largest) entries, rho·w on pruned-away entries.
  const auto& p = h.smodel.layer(0).param();
  std::size_t nonzero = 0;
  for (std::size_t i = 0; i < p.grad.numel(); ++i) {
    if (p.grad[i] != 0.0f) {
      ++nonzero;
      EXPECT_NEAR(p.grad[i], 0.5f * p.value[i], 1e-5f);
    }
  }
  EXPECT_GT(nonzero, 0u);
}

TEST(Admm, ConstraintViolationShrinksUnderPenaltySteps) {
  PrunerHarness h;
  methods::AdmmConfig cfg;
  cfg.rho = 1.0;
  cfg.sparsity = 0.8;
  cfg.projection_interval = 5;
  methods::AdmmPruner admm(h.smodel, cfg);
  const double v0 = admm.constraint_violation(h.smodel);
  // Pure penalty dynamics: W ← W − lr·rho·(W − Z + U).
  for (std::size_t t = 1; t <= 50; ++t) {
    for (auto& layer : h.smodel.layers()) layer.param().zero_grad();
    admm.add_penalty_gradients(h.smodel);
    for (auto& layer : h.smodel.layers()) {
      auto& p = layer.param();
      for (std::size_t i = 0; i < p.value.numel(); ++i) {
        p.value[i] -= 0.1f * p.grad[i];
      }
    }
    admm.maybe_update_duals(h.smodel, t);
  }
  EXPECT_LT(admm.constraint_violation(h.smodel), v0);
}

TEST(Admm, FinalizeInstallsExactSparsity) {
  PrunerHarness h;
  methods::AdmmConfig cfg;
  cfg.sparsity = 0.9;
  methods::AdmmPruner admm(h.smodel, cfg);
  admm.finalize_mask(h.smodel);
  EXPECT_NEAR(h.smodel.global_sparsity(), 0.9, 0.01);
  EXPECT_EQ(sparse::validate_invariants(h.smodel), "");
}

TEST(Admm, DualUpdateFiresOnInterval) {
  PrunerHarness h;
  methods::AdmmConfig cfg;
  cfg.projection_interval = 10;
  methods::AdmmPruner admm(h.smodel, cfg);
  EXPECT_FALSE(admm.maybe_update_duals(h.smodel, 5));
  EXPECT_TRUE(admm.maybe_update_duals(h.smodel, 10));
}

TEST(Admm, InvalidConfigThrows) {
  PrunerHarness h;
  methods::AdmmConfig cfg;
  cfg.rho = 0.0;
  EXPECT_THROW(methods::AdmmPruner(h.smodel, cfg), util::CheckError);
  cfg.rho = 1.0;
  cfg.sparsity = 0.0;
  EXPECT_THROW(methods::AdmmPruner(h.smodel, cfg), util::CheckError);
}

}  // namespace
}  // namespace dstee
