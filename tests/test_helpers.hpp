// Shared test utilities: finite-difference gradient checking and tensor
// construction helpers.
#pragma once

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <vector>

#include "nn/module.hpp"
#include "tensor/init.hpp"
#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace dstee::testing {

/// Random tensor with entries ~ N(0, 1) from a fixed-seed stream.
inline tensor::Tensor random_tensor(tensor::Shape shape,
                                    std::uint64_t seed = 42,
                                    float stddev = 1.0f) {
  tensor::Tensor t(std::move(shape));
  util::Rng rng(seed);
  tensor::fill_normal(t, rng, 0.0f, stddev);
  return t;
}

/// Scalar probe loss L = Σ p_i · y_i with fixed random projection p, so a
/// single backward pass checks every output path.
struct ProbeLoss {
  tensor::Tensor projection;

  explicit ProbeLoss(const tensor::Shape& output_shape,
                     std::uint64_t seed = 1234)
      : projection(random_tensor(output_shape, seed, 0.5f)) {}

  double value(const tensor::Tensor& y) const {
    double acc = 0.0;
    for (std::size_t i = 0; i < y.numel(); ++i) {
      acc += static_cast<double>(projection[i]) * y[i];
    }
    return acc;
  }

  tensor::Tensor grad() const { return projection; }
};

/// Central-difference gradient of `loss_of_x` at x[index].
inline double numeric_derivative(
    const std::function<double(const tensor::Tensor&)>& loss_of_x,
    tensor::Tensor x, std::size_t index, float eps = 1e-3f) {
  const float saved = x[index];
  x[index] = saved + eps;
  const double plus = loss_of_x(x);
  x[index] = saved - eps;
  const double minus = loss_of_x(x);
  return (plus - minus) / (2.0 * static_cast<double>(eps));
}

/// Checks a module's input gradient and all parameter gradients against
/// central differences on the probe loss. `samples` entries per tensor are
/// probed (spread deterministically) to keep runtime bounded.
inline void check_module_gradients(nn::Module& module,
                                   const tensor::Tensor& input,
                                   double tol = 5e-2,
                                   std::size_t samples = 12,
                                   float eps = 1e-2f) {
  module.zero_grad();
  const tensor::Tensor output = module.forward(input);
  const ProbeLoss probe(output.shape());
  const tensor::Tensor grad_input = module.backward(probe.grad());

  // --- input gradient ---
  auto loss_from_input = [&](const tensor::Tensor& x) {
    return probe.value(module.forward(x));
  };
  const std::size_t in_n = input.numel();
  const std::size_t in_step = std::max<std::size_t>(1, in_n / samples);
  for (std::size_t i = 0; i < in_n; i += in_step) {
    const double expected = numeric_derivative(loss_from_input, input, i, eps);
    EXPECT_NEAR(grad_input[i], expected,
                tol * std::max(1.0, std::fabs(expected)))
        << "input gradient mismatch at flat index " << i;
  }

  // Re-run forward/backward so analytic parameter grads correspond to the
  // unperturbed input (loss_from_input above overwrote layer caches).
  module.zero_grad();
  module.forward(input);
  module.backward(probe.grad());

  // --- parameter gradients ---
  for (nn::Parameter* param : module.parameters()) {
    const std::size_t n = param->value.numel();
    const std::size_t step = std::max<std::size_t>(1, n / samples);
    for (std::size_t i = 0; i < n; i += step) {
      const float saved = param->value[i];
      param->value[i] = saved + eps;
      const double plus = probe.value(module.forward(input));
      param->value[i] = saved - eps;
      const double minus = probe.value(module.forward(input));
      param->value[i] = saved;
      const double expected =
          (plus - minus) / (2.0 * static_cast<double>(eps));
      EXPECT_NEAR(param->grad[i], expected,
                  tol * std::max(1.0, std::fabs(expected)))
          << "gradient mismatch for " << param->name << " at flat index "
          << i;
    }
  }
  // Restore caches to a consistent state.
  module.zero_grad();
  module.forward(input);
}

/// Statistical variant for composite blocks ending in ReLU after
/// BatchNorm: BN centers pre-activations at zero, so a ±ε perturbation
/// flips ReLU masks on a few elements and corrupts those FD estimates even
/// when the analytic gradient is exact. Routing bugs (missing skip path,
/// wrong mask) corrupt essentially ALL entries, so requiring most probes to
/// match still catches them.
inline void check_module_gradients_tolerant(nn::Module& module,
                                            const tensor::Tensor& input,
                                            double tol = 0.1,
                                            std::size_t samples = 16,
                                            float eps = 5e-3f,
                                            double max_outlier_frac = 0.25) {
  module.zero_grad();
  const tensor::Tensor output = module.forward(input);
  const ProbeLoss probe(output.shape());
  const tensor::Tensor grad_input = module.backward(probe.grad());

  std::size_t checked = 0, outliers = 0;
  auto probe_entry = [&](float analytic, double expected) {
    ++checked;
    if (std::fabs(analytic - expected) >
        tol * std::max(1.0, std::fabs(expected))) {
      ++outliers;
    }
  };

  auto loss_from_input = [&](const tensor::Tensor& x) {
    return probe.value(module.forward(x));
  };
  const std::size_t in_step =
      std::max<std::size_t>(1, input.numel() / samples);
  for (std::size_t i = 0; i < input.numel(); i += in_step) {
    probe_entry(grad_input[i],
                numeric_derivative(loss_from_input, input, i, eps));
  }

  module.zero_grad();
  module.forward(input);
  module.backward(probe.grad());
  for (nn::Parameter* param : module.parameters()) {
    const std::size_t step =
        std::max<std::size_t>(1, param->value.numel() / samples);
    for (std::size_t i = 0; i < param->value.numel(); i += step) {
      const float saved = param->value[i];
      param->value[i] = saved + eps;
      const double plus = probe.value(module.forward(input));
      param->value[i] = saved - eps;
      const double minus = probe.value(module.forward(input));
      param->value[i] = saved;
      probe_entry(param->grad[i],
                  (plus - minus) / (2.0 * static_cast<double>(eps)));
    }
  }
  ASSERT_GT(checked, 0u);
  EXPECT_LE(static_cast<double>(outliers) / static_cast<double>(checked),
            max_outlier_frac)
      << outliers << " of " << checked << " probed gradients disagree";
  module.zero_grad();
  module.forward(input);
}

}  // namespace dstee::testing
