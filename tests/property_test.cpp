// Property-based tests: randomized sweeps over the library's core
// invariants. Each property is checked across a grid of random
// configurations rather than hand-picked cases.
#include <gtest/gtest.h>

#include <memory>

#include "methods/drop_policy.hpp"
#include "methods/dst_engine.hpp"
#include "methods/grow_policy.hpp"
#include "models/mlp.hpp"
#include "optim/lr_schedule.hpp"
#include "optim/optimizer.hpp"
#include "sparse/csr.hpp"
#include "sparse/distribution.hpp"
#include "sparse/sparse_model.hpp"
#include "sparse/stats.hpp"
#include "tensor/matmul.hpp"
#include "tensor/topk.hpp"
#include "test_helpers.hpp"
#include "util/check.hpp"

namespace dstee {
namespace {

using testing::random_tensor;

// ---- mask algebra ----------------------------------------------------------

class MaskProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MaskProperties, RandomMaskInvariants) {
  util::Rng rng(GetParam());
  const std::size_t rows = 2 + rng.uniform_index(20);
  const std::size_t cols = 2 + rng.uniform_index(20);
  const std::size_t numel = rows * cols;
  const std::size_t active = rng.uniform_index(numel + 1);
  const auto mask =
      sparse::Mask::random(tensor::Shape({rows, cols}), active, rng);

  // Exact count, complementary partitions, density consistency.
  EXPECT_EQ(mask.num_active(), active);
  EXPECT_EQ(mask.active_indices().size() + mask.inactive_indices().size(),
            numel);
  EXPECT_NEAR(mask.density(),
              static_cast<double>(active) / static_cast<double>(numel),
              1e-12);
  // apply_to is idempotent.
  auto t = random_tensor(tensor::Shape({rows, cols}), GetParam() + 1);
  mask.apply_to(t);
  auto t2 = t;
  mask.apply_to(t2);
  EXPECT_TRUE(t.equals(t2));
  // Self-distance zero; distance symmetric.
  const auto other =
      sparse::Mask::random(tensor::Shape({rows, cols}), active, rng);
  EXPECT_EQ(mask.hamming_distance(mask), 0u);
  EXPECT_EQ(mask.hamming_distance(other), other.hamming_distance(mask));
}

INSTANTIATE_TEST_SUITE_P(Seeds, MaskProperties,
                         ::testing::Range<std::uint64_t>(1, 17));

// ---- ERK distribution ------------------------------------------------------

class ErkProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ErkProperties, DensitiesValidAndBudgetExact) {
  util::Rng rng(GetParam() * 31);
  // Random plausible layer stack.
  std::vector<tensor::Shape> shapes;
  const std::size_t layers = 2 + rng.uniform_index(6);
  for (std::size_t i = 0; i < layers; ++i) {
    if (rng.bernoulli(0.5)) {
      shapes.push_back(tensor::Shape({8 + rng.uniform_index(64),
                                      8 + rng.uniform_index(64)}));
    } else {
      shapes.push_back(tensor::Shape({4 + rng.uniform_index(32),
                                      4 + rng.uniform_index(32), 3, 3}));
    }
  }
  const double sparsity = rng.uniform(0.3, 0.99);
  for (const auto kind :
       {sparse::DistributionKind::kUniform, sparse::DistributionKind::kEr,
        sparse::DistributionKind::kErk}) {
    const auto densities = sparse::layer_densities(shapes, sparsity, kind);
    for (const double d : densities) {
      EXPECT_GE(d, 0.0);
      EXPECT_LE(d, 1.0);
    }
    const auto counts = sparse::layer_active_counts(shapes, sparsity, kind);
    std::size_t total = 0, active = 0;
    for (std::size_t i = 0; i < shapes.size(); ++i) {
      total += shapes[i].numel();
      active += counts[i];
      EXPECT_GE(counts[i], 1u);
      EXPECT_LE(counts[i], shapes[i].numel());
    }
    const auto target = static_cast<std::size_t>(
        std::llround((1.0 - sparsity) * static_cast<double>(total)));
    EXPECT_EQ(active, target) << sparse::to_string(kind);
  }
}

TEST_P(ErkProperties, DensityMonotoneInSparsity) {
  util::Rng rng(GetParam() * 77);
  const std::vector<tensor::Shape> shapes{
      tensor::Shape({32, 16, 3, 3}), tensor::Shape({64, 32, 3, 3}),
      tensor::Shape({10, 64})};
  const double s_low = rng.uniform(0.3, 0.6);
  const double s_high = rng.uniform(0.7, 0.98);
  const auto low =
      sparse::layer_active_counts(shapes, s_low, sparse::DistributionKind::kErk);
  const auto high = sparse::layer_active_counts(
      shapes, s_high, sparse::DistributionKind::kErk);
  std::size_t low_total = 0, high_total = 0;
  for (const auto c : low) low_total += c;
  for (const auto c : high) high_total += c;
  EXPECT_GT(low_total, high_total);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ErkProperties,
                         ::testing::Range<std::uint64_t>(1, 13));

// ---- top-k -----------------------------------------------------------------

class TopKProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TopKProperties, SelectionDominatesComplement) {
  util::Rng rng(GetParam() * 13);
  const std::size_t n = 10 + rng.uniform_index(500);
  const std::size_t k = 1 + rng.uniform_index(n);
  const auto values = random_tensor(tensor::Shape({n}), GetParam() * 13 + 1);
  const auto top = tensor::topk_indices(values, k);
  EXPECT_EQ(top.size(), k);
  // min of selected >= max of unselected.
  std::vector<bool> chosen(n, false);
  float min_sel = std::numeric_limits<float>::infinity();
  for (const auto i : top) {
    chosen[i] = true;
    min_sel = std::min(min_sel, values[i]);
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (!chosen[i]) {
      EXPECT_LE(values[i], min_sel);
    }
  }
  // bottom-k is top-k of the negated tensor.
  const auto bottom = tensor::bottomk_indices(values, k);
  auto negated = values;
  for (std::size_t i = 0; i < n; ++i) negated[i] = -negated[i];
  const auto top_neg = tensor::topk_indices(negated, k);
  EXPECT_EQ(bottom, top_neg);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TopKProperties,
                         ::testing::Range<std::uint64_t>(1, 21));

// ---- CSR round trips --------------------------------------------------------

class CsrProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CsrProperties, RoundTripAndMatvecFuzz) {
  util::Rng rng(GetParam() * 101);
  const std::size_t rows = 1 + rng.uniform_index(40);
  const std::size_t cols = 1 + rng.uniform_index(40);
  auto dense = random_tensor(tensor::Shape({rows, cols}), GetParam());
  const double density = rng.uniform(0.0, 1.0);
  for (std::size_t i = 0; i < dense.numel(); ++i) {
    if (!rng.bernoulli(density)) dense[i] = 0.0f;
  }
  const auto csr = sparse::CsrMatrix::from_dense(dense);
  EXPECT_TRUE(csr.to_dense().equals(dense));
  const auto x = random_tensor(tensor::Shape({cols}), GetParam() + 5);
  const auto y = csr.matvec(x);
  const auto y_ref =
      tensor::matmul(dense, x.reshaped(tensor::Shape({cols, 1})));
  for (std::size_t r = 0; r < rows; ++r) {
    EXPECT_NEAR(y[r], y_ref[r], 1e-3f);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CsrProperties,
                         ::testing::Range<std::uint64_t>(1, 17));

// ---- engine invariants under random configurations --------------------------

class EngineFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EngineFuzz, InvariantsHoldUnderRandomConfig) {
  util::Rng cfg_rng(GetParam() * 991);
  models::MlpConfig mcfg;
  mcfg.in_features = 8 + cfg_rng.uniform_index(24);
  mcfg.hidden = {8 + cfg_rng.uniform_index(48),
                 8 + cfg_rng.uniform_index(48)};
  mcfg.out_features = 2 + cfg_rng.uniform_index(8);
  util::Rng rng(GetParam());
  models::Mlp model(mcfg, rng);
  const double sparsity = cfg_rng.uniform(0.3, 0.97);
  const auto dist = static_cast<sparse::DistributionKind>(
      cfg_rng.uniform_index(3));
  sparse::SparseModel smodel(model, sparsity, dist, rng);
  optim::Sgd::Config sgd_cfg;
  optim::Sgd optimizer(model.parameters(), sgd_cfg);

  methods::DstEngineConfig ecfg;
  ecfg.schedule.delta_t = 1 + cfg_rng.uniform_index(20);
  ecfg.schedule.total_iterations = 10000;
  ecfg.schedule.stop_fraction = 1.0;
  ecfg.schedule.initial_drop_fraction = cfg_rng.uniform(0.05, 0.6);
  ecfg.drop = std::make_unique<methods::MagnitudeDrop>();
  methods::DstEeGrow::Config ee;
  ee.c = cfg_rng.uniform(1e-5, 1e-1);
  ee.eps = cfg_rng.uniform(1e-4, 1.0);
  ecfg.grow = std::make_unique<methods::DstEeGrow>(ee);
  ecfg.redistribute_across_layers = cfg_rng.bernoulli(0.3);
  methods::DstEngine engine(smodel, optimizer, std::move(ecfg),
                            rng.fork("engine"));

  const std::size_t active_before = smodel.total_active();
  double prev_r = engine.exploration().exploration_rate();
  for (std::size_t round = 1; round <= 8; ++round) {
    util::Rng grad_rng(round * 7 + GetParam());
    for (auto& layer : smodel.layers()) {
      tensor::fill_normal(layer.param().grad, grad_rng, 0.0f, 1.0f);
    }
    engine.force_update(round * 10, 0.1);
    // P1: global active count preserved.
    EXPECT_EQ(smodel.total_active(), active_before);
    // P2: binary masks, masked weights zero, counters integral.
    EXPECT_EQ(sparse::validate_invariants(smodel), "");
    // P3: exploration rate non-decreasing.
    const double r = engine.exploration().exploration_rate();
    EXPECT_GE(r, prev_r - 1e-12);
    prev_r = r;
    // P4: drops == grows each round.
    const auto& stats = engine.log().rounds().back();
    EXPECT_EQ(stats.dropped, stats.grown);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineFuzz,
                         ::testing::Range<std::uint64_t>(1, 13));

// ---- LR schedule properties --------------------------------------------------

class ScheduleProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ScheduleProperties, CosineBoundedAndMonotone) {
  util::Rng rng(GetParam() * 7);
  const double base = rng.uniform(1e-4, 1.0);
  const std::size_t total = 10 + rng.uniform_index(10000);
  const double floor = base * rng.uniform(0.0, 0.5);
  optim::CosineAnnealingLr sched(base, total, floor);
  double prev = sched.lr_at(0);
  EXPECT_NEAR(prev, base, 1e-12);
  for (std::size_t t = 1; t <= total; t += std::max<std::size_t>(1, total / 37)) {
    const double lr = sched.lr_at(t);
    EXPECT_LE(lr, prev + 1e-12);
    EXPECT_GE(lr, floor - 1e-12);
    prev = lr;
  }
  EXPECT_NEAR(sched.lr_at(total), floor, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScheduleProperties,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace dstee
