// Cross-module integration tests: the paper's qualitative claims at
// unit-test scale (fast versions of the bench assertions).
#include <gtest/gtest.h>

#include "data/synthetic_images.hpp"
#include "data/synthetic_tabular.hpp"
#include "graph/generator.hpp"
#include "models/mlp.hpp"
#include "models/vgg.hpp"
#include "train/experiment.hpp"
#include "util/check.hpp"

namespace dstee {
namespace {

data::SyntheticTabularConfig tab_cfg(std::uint64_t seed) {
  data::SyntheticTabularConfig cfg;
  cfg.num_classes = 4;
  cfg.features = 24;
  cfg.train_per_class = 48;
  cfg.test_per_class = 24;
  cfg.class_separation = 2.5;
  cfg.noise = 1.0;
  cfg.seed = seed;
  return cfg;
}

train::ClassificationConfig exp_cfg(train::MethodKind method, double sparsity,
                                    std::uint64_t seed) {
  train::ClassificationConfig cfg;
  cfg.method = method;
  cfg.sparsity = sparsity;
  cfg.epochs = 6;
  cfg.batch_size = 32;
  cfg.dst.delta_t = 3;
  cfg.dst.c = 5e-3;
  cfg.seed = seed;
  return cfg;
}

double run_method(train::MethodKind method, double sparsity,
                  std::uint64_t seed, double* exploration = nullptr) {
  const data::SyntheticTabularDataset train_set(
      tab_cfg(77), data::SyntheticTabularDataset::Split::kTrain);
  const data::SyntheticTabularDataset test_set(
      tab_cfg(77), data::SyntheticTabularDataset::Split::kTest);
  util::Rng rng(seed);
  models::MlpConfig mcfg;
  mcfg.in_features = 24;
  mcfg.hidden = {64, 64};
  mcfg.out_features = 4;
  models::Mlp model(mcfg, rng);
  const auto result = train::run_classification(
      model, nullptr, train_set, test_set, exp_cfg(method, sparsity, seed));
  if (exploration != nullptr) *exploration = result.exploration_rate;
  return result.best_test_accuracy;
}

TEST(Integration, DstEeCoverageExceedsRigLCoverage) {
  // Mechanism claim of the paper: the UCB bonus yields strictly more weight
  // coverage than greedy gradient growth under the same budget.
  double r_rigl = 0.0, r_ee = 0.0;
  run_method(train::MethodKind::kRigl, 0.9, 5, &r_rigl);
  run_method(train::MethodKind::kDstEe, 0.9, 5, &r_ee);
  EXPECT_GT(r_ee, r_rigl);
}

TEST(Integration, DynamicMethodsTrainAtExtremeSparsity) {
  // At 98% sparsity the model must still learn (paper trains at 98%).
  const double acc = run_method(train::MethodKind::kDstEe, 0.98, 6);
  EXPECT_GT(acc, 0.3);  // chance is 0.25
}

TEST(Integration, DstEeAveragesAtLeastAsWellAsSet) {
  // Averaged over seeds, DST-EE ≥ SET (paper's Table I ordering). Averaging
  // keeps this robust at unit-test scale.
  double ee = 0.0, set = 0.0;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    ee += run_method(train::MethodKind::kDstEe, 0.9, seed);
    set += run_method(train::MethodKind::kSet, 0.9, seed);
  }
  EXPECT_GE(ee, set - 0.02 * 3);  // allow tiny noise margin
}

TEST(Integration, VggTrainsOnSyntheticImages) {
  data::SyntheticImageConfig icfg;
  icfg.num_classes = 4;
  icfg.image_size = 8;
  icfg.train_per_class = 12;
  icfg.test_per_class = 6;
  icfg.seed = 5;
  const data::SyntheticImageDataset train_set(
      icfg, data::SyntheticImageDataset::Split::kTrain);
  const data::SyntheticImageDataset test_set(
      icfg, data::SyntheticImageDataset::Split::kTest);
  util::Rng rng(9);
  models::VggConfig vcfg;
  vcfg.depth = 11;
  vcfg.in_channels = 3;
  vcfg.image_size = 8;
  vcfg.num_classes = 4;
  vcfg.width_multiplier = 0.125;
  models::Vgg model(vcfg, rng);

  train::ClassificationConfig cfg;
  cfg.method = train::MethodKind::kDstEe;
  cfg.sparsity = 0.8;
  cfg.epochs = 3;
  cfg.batch_size = 16;
  cfg.dst.delta_t = 2;
  cfg.lr = 0.05;
  const auto result =
      train::run_classification(model, nullptr, train_set, test_set, cfg);
  EXPECT_NEAR(result.achieved_sparsity, 0.8, 0.05);
  EXPECT_FALSE(result.history.empty());
  EXPECT_LT(result.history.back().train_loss,
            result.history.front().train_loss + 1.0);
}

TEST(Integration, GnnDstEeSurvivesExtremeSparsityBetterThanAdmm) {
  // Table IV's headline: at 98% sparsity prune-from-dense collapses on the
  // ia-email-like graph while DST-EE holds up.
  const auto g = graph::generate_power_law(graph::ia_email_config(0.15, 7));
  const auto features = graph::structural_features(g, 24, 7);
  const auto split = graph::split_links(g, 0.2, 7);

  auto run = [&](train::LinkMethod method) {
    util::Rng rng(31);
    models::GnnConfig gcfg;
    gcfg.in_features = 24;
    gcfg.hidden = 48;
    gcfg.embedding = 24;
    models::GnnLinkPredictor model(g, gcfg, rng);
    train::LinkConfig cfg;
    cfg.method = method;
    cfg.sparsity = 0.98;
    cfg.epochs = 50;
    cfg.admm_epochs_each = 20;
    cfg.dst.delta_t = 2;
    cfg.dst.c = 1e-2;
    return train::run_link_prediction(model, features, split, cfg)
        .best_test_accuracy;
  };
  const double ee = run(train::LinkMethod::kDstEe);
  const double admm = run(train::LinkMethod::kPruneFromDense);
  // DST-EE must at least match a coin flip and must not collapse below the
  // ADMM-pruned model (the paper's Table IV shows it far ahead at 98%).
  EXPECT_GE(ee, 0.5);
  EXPECT_GE(ee, admm - 0.05);
}

TEST(Integration, ConvergenceLossTrendsDownOverRounds) {
  // Proposition 1 sanity: average loss decreases across mask-update rounds.
  const data::SyntheticTabularDataset train_set(
      tab_cfg(88), data::SyntheticTabularDataset::Split::kTrain);
  const data::SyntheticTabularDataset test_set(
      tab_cfg(88), data::SyntheticTabularDataset::Split::kTest);
  util::Rng rng(10);
  models::MlpConfig mcfg;
  mcfg.in_features = 24;
  mcfg.hidden = {64};
  mcfg.out_features = 4;
  models::Mlp model(mcfg, rng);
  train::ClassificationConfig cfg = exp_cfg(train::MethodKind::kDstEe, 0.9, 10);
  cfg.epochs = 8;
  const auto result =
      train::run_classification(model, nullptr, train_set, test_set, cfg);
  // First-epoch loss vs last-epoch loss.
  EXPECT_LT(result.history.back().train_loss,
            result.history.front().train_loss);
}

TEST(Integration, FailureInjectionWrongInputShapeSurfacesCleanly) {
  util::Rng rng(11);
  models::MlpConfig mcfg;
  models::Mlp model(mcfg, rng);
  tensor::Tensor wrong({2, 3});
  EXPECT_THROW(model.forward(wrong), util::CheckError);
}

}  // namespace
}  // namespace dstee
