// ModelRegistry tests: multi-tenant serving, RCU hot swap under load
// (zero dropped requests, outputs from exactly one version), sparse
// delta end-to-end, admission control, manual scaling and the pure
// autoscaler policy.
#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "models/mlp.hpp"
#include "obs/metrics.hpp"
#include "serve/compiled_net.hpp"
#include "serve/delta.hpp"
#include "serve/registry.hpp"
#include "sparse/sparse_model.hpp"
#include "test_helpers.hpp"
#include "util/check.hpp"

namespace dstee {
namespace {

using testing::random_tensor;

models::MlpConfig reg_cfg() {
  models::MlpConfig cfg;
  cfg.in_features = 12;
  cfg.hidden = {24, 16};
  cfg.out_features = 5;
  return cfg;
}

/// A model + sparse state, a pure function of the seed: build it twice
/// and you get bit-identical twins — the property the hot-swap tests use
/// to construct deltas and expected outputs out-of-band.
struct SeededModel {
  explicit SeededModel(std::uint64_t seed)
      : rng(seed), model(reg_cfg(), rng),
        state(model, 0.9, sparse::DistributionKind::kErk, rng) {
    model.set_training(false);
  }

  /// Transfers ownership of a freshly built twin into the registry.
  static void add_to(serve::ModelRegistry& registry, const std::string& name,
                     std::uint64_t seed, serve::ModelOptions options = {}) {
    util::Rng rng(seed);
    auto module = std::make_unique<models::Mlp>(reg_cfg(), rng);
    auto state = std::make_unique<sparse::SparseModel>(
        *module, 0.9, sparse::DistributionKind::kErk, rng);
    module->set_training(false);
    registry.add_model(name, std::move(module), std::move(state),
                       std::move(options));
  }

  util::Rng rng;
  models::Mlp model;
  sparse::SparseModel state;
};

/// One faked DST step on every layer: flip a mask position each way and
/// jitter a couple of surviving values.
void perturb(sparse::SparseModel& state) {
  for (std::size_t l = 0; l < state.num_layers(); ++l) {
    sparse::MaskedParameter& layer = state.layer(l);
    const std::vector<std::size_t> active = layer.mask().active_indices();
    const std::vector<std::size_t> inactive = layer.mask().inactive_indices();
    ASSERT_GE(active.size(), 3u);
    ASSERT_GE(inactive.size(), 1u);
    layer.mask().deactivate(active[0]);
    layer.mask().activate(inactive[0]);
    layer.param().value[inactive[0]] = 0.125f;
    layer.param().value[active[1]] += 0.25f;
    layer.param().value[active[2]] -= 0.125f;
    layer.apply_mask_to_value();
  }
}

/// The delta from seed `seed`'s state to its perturbed successor.
serve::CheckpointDelta step_delta(std::uint64_t seed) {
  SeededModel base(seed);
  SeededModel next(seed);
  perturb(next.state);
  return serve::make_delta(base.model, &base.state, next.model,
                           &next.state);
}

/// What the model of seed `seed` (optionally perturbed) answers for
/// `sample`, as the rank-1 row the server hands back.
tensor::Tensor expected_row(std::uint64_t seed, const tensor::Tensor& sample,
                            bool perturbed) {
  SeededModel m(seed);
  if (perturbed) perturb(m.state);
  const auto net = serve::CompiledNet::compile(m.model, &m.state);
  const tensor::Tensor out =
      net.forward(sample.reshaped(tensor::Shape({1, 12})));
  return out.reshaped(tensor::Shape({out.numel()}));
}

TEST(Registry, ServesTwoModelsTheirOwnAnswers) {
  serve::ModelRegistry registry;
  SeededModel::add_to(registry, "a", 5);
  SeededModel::add_to(registry, "b", 6);
  EXPECT_EQ(registry.num_models(), 2u);
  EXPECT_TRUE(registry.has_model("a"));
  EXPECT_FALSE(registry.has_model("c"));

  const auto x = random_tensor(tensor::Shape({12}), 7);
  const tensor::Tensor got_a = registry.submit("a", x).get();
  const tensor::Tensor got_b = registry.submit("b", x).get();
  EXPECT_TRUE(got_a.equals(expected_row(5, x, false)));
  EXPECT_TRUE(got_b.equals(expected_row(6, x, false)));
  EXPECT_FALSE(got_a.equals(got_b));
  registry.shutdown();
}

TEST(Registry, UnknownAndDuplicateNamesThrow) {
  serve::ModelRegistry registry;
  SeededModel::add_to(registry, "a", 5);
  EXPECT_THROW(registry.submit("nope", random_tensor(tensor::Shape({12}), 1)),
               util::CheckError);
  EXPECT_THROW(registry.stats("nope"), util::CheckError);
  EXPECT_THROW(SeededModel::add_to(registry, "a", 9), util::CheckError);
  util::Rng rng(1);
  EXPECT_THROW(registry.add_model(
                   "", std::make_unique<models::Mlp>(reg_cfg(), rng), nullptr),
               util::CheckError);
}

TEST(Registry, HotSwapUnderLoadDropsNothingAndServesExactlyOneVersion) {
  // The acceptance test for zero-downtime swap: concurrent submitters
  // hammer one model with a fixed sample while the main thread applies a
  // sparse delta. EVERY submitted request must complete, and every
  // answer must be bit-identical to the output of exactly one of the two
  // versions — never a blend, never an error.
  constexpr std::uint64_t kSeed = 21;
  constexpr std::size_t kClients = 4;
  constexpr std::size_t kWarmup = 5;    // per client, before the swap
  constexpr std::size_t kAfter = 40;    // per client, after swap starts

  serve::ModelOptions mopts;
  mopts.server.num_threads = 2;
  mopts.server.num_shards = 2;
  mopts.server.max_batch = 8;
  mopts.server.max_delay_ms = 0.2;
  serve::ModelRegistry registry;
  SeededModel::add_to(registry, "m", kSeed, mopts);

  const auto x = random_tensor(tensor::Shape({12}), 9);
  const tensor::Tensor v0 = expected_row(kSeed, x, false);
  const tensor::Tensor v1 = expected_row(kSeed, x, true);
  ASSERT_FALSE(v0.equals(v1));  // the step must actually move the output

  std::atomic<std::size_t> v0_seen{0}, v1_seen{0}, other_seen{0};
  std::atomic<std::size_t> completed{0};
  const auto classify = [&](const tensor::Tensor& row) {
    completed.fetch_add(1);
    if (row.equals(v0)) {
      v0_seen.fetch_add(1);
    } else if (row.equals(v1)) {
      v1_seen.fetch_add(1);
    } else {
      other_seen.fetch_add(1);
    }
  };

  std::atomic<std::size_t> warmed{0};
  std::atomic<bool> swapped{false};
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      for (std::size_t i = 0; i < kWarmup; ++i) {
        classify(registry.submit("m", x).get());
      }
      warmed.fetch_add(1);
      while (!swapped.load()) std::this_thread::yield();
      for (std::size_t i = 0; i < kAfter; ++i) {
        classify(registry.submit("m", x).get());
      }
    });
  }
  while (warmed.load() < kClients) std::this_thread::yield();
  const serve::SwapReport report =
      registry.apply_delta("m", step_delta(kSeed));
  swapped.store(true);
  for (auto& t : clients) t.join();
  registry.shutdown();

  EXPECT_FALSE(report.full_recompile);
  EXPECT_EQ(report.patched_weight_nodes, 3u);  // every layer stepped
  EXPECT_EQ(report.swap_epoch, 1u);
  EXPECT_EQ(completed.load(), kClients * (kWarmup + kAfter));
  EXPECT_EQ(other_seen.load(), 0u);  // no blended / torn outputs, ever
  EXPECT_GE(v0_seen.load(), kClients * kWarmup);  // pre-swap answers
  EXPECT_GE(v1_seen.load(), kClients * kAfter);   // post-swap answers
  const serve::StatsSnapshot s = registry.stats("m");
  EXPECT_EQ(s.requests, completed.load());
  EXPECT_EQ(s.swap_count, 1u);
}

TEST(Registry, DeltaSwapUpdatesStateHashAndAnswers) {
  constexpr std::uint64_t kSeed = 33;
  serve::ModelRegistry registry;
  SeededModel::add_to(registry, "m", kSeed);

  const serve::CheckpointDelta delta = step_delta(kSeed);
  EXPECT_EQ(registry.state_hash("m"), delta.base_hash);

  const auto x = random_tensor(tensor::Shape({12}), 3);
  EXPECT_TRUE(registry.submit("m", x).get().equals(
      expected_row(kSeed, x, false)));

  const serve::SwapReport report = registry.apply_delta("m", delta);
  EXPECT_FALSE(report.full_recompile);
  EXPECT_EQ(registry.state_hash("m"), delta.result_hash);
  EXPECT_TRUE(registry.submit("m", x).get().equals(
      expected_row(kSeed, x, true)));

  // The same delta cannot apply twice: the base moved.
  EXPECT_THROW(registry.apply_delta("m", delta), util::CheckError);
  registry.shutdown();
}

TEST(Registry, AdmissionControlShedsBeyondQuota) {
  serve::ModelOptions mopts;
  mopts.server.num_threads = 1;
  mopts.server.max_batch = 64;
  mopts.server.max_delay_ms = 1000.0;  // the queue builds, nothing flushes
  mopts.server.queue_quota = 4;
  serve::ModelRegistry registry;
  SeededModel::add_to(registry, "m", 5, mopts);

  std::vector<std::future<tensor::Tensor>> accepted;
  std::size_t shed = 0;
  for (int i = 0; i < 20; ++i) {
    auto f = registry.try_submit("m", random_tensor(tensor::Shape({12}), i));
    if (f) {
      accepted.push_back(std::move(*f));
    } else {
      ++shed;
    }
  }
  EXPECT_GE(shed, 1u);  // quota 4 cannot absorb a burst of 20
  for (auto& f : accepted) {
    EXPECT_EQ(f.get().numel(), 5u);  // everything accepted completes
  }
  registry.shutdown();
  const serve::StatsSnapshot s = registry.stats("m");
  EXPECT_EQ(s.shed_total, shed);
  EXPECT_EQ(s.requests + s.shed_total, 20u);  // no request vanished
}

TEST(Registry, ScaleModelClampsAndKeepsServing) {
  serve::ModelOptions mopts;
  mopts.server.num_shards = 1;
  mopts.server.max_shards = 3;
  serve::ModelRegistry registry;
  SeededModel::add_to(registry, "m", 5, mopts);
  EXPECT_EQ(registry.num_active_shards("m"), 1u);

  EXPECT_EQ(registry.scale_model("m", 2), 2u);
  EXPECT_EQ(registry.scale_model("m", 99), 3u);  // clamped to max_shards
  const auto x = random_tensor(tensor::Shape({12}), 4);
  EXPECT_TRUE(registry.submit("m", x).get().equals(
      expected_row(5, x, false)));  // grown shards serve the same version
  EXPECT_EQ(registry.scale_model("m", 0), 1u);  // clamped to one
  EXPECT_TRUE(registry.submit("m", x).get().equals(
      expected_row(5, x, false)));
  registry.shutdown();
}

TEST(Registry, AutoscaleTargetPolicy) {
  serve::AutoscalerConfig cfg;
  cfg.min_shards = 1;
  cfg.max_shards = 4;
  cfg.queue_high = 8.0;
  cfg.queue_low = 1.0;
  cfg.shrink_patience = 3;
  std::size_t streak = 0;

  // Hot queue grows by one and resets the cold streak.
  streak = 2;
  EXPECT_EQ(serve::autoscale_target(cfg, 2, 10.0, 0.0, streak), 3u);
  EXPECT_EQ(streak, 0u);
  // Growth clamps at max_shards.
  EXPECT_EQ(serve::autoscale_target(cfg, 4, 50.0, 0.0, streak), 4u);
  // Neutral load holds and resets the streak.
  streak = 2;
  EXPECT_EQ(serve::autoscale_target(cfg, 2, 4.0, 0.0, streak), 2u);
  EXPECT_EQ(streak, 0u);
  // Cold polls shrink only after the patience threshold.
  EXPECT_EQ(serve::autoscale_target(cfg, 3, 0.0, 0.0, streak), 3u);
  EXPECT_EQ(serve::autoscale_target(cfg, 3, 0.0, 0.0, streak), 3u);
  EXPECT_EQ(serve::autoscale_target(cfg, 3, 0.0, 0.0, streak), 2u);
  EXPECT_EQ(streak, 0u);
  // Shrink clamps at min_shards.
  streak = 2;
  EXPECT_EQ(serve::autoscale_target(cfg, 1, 0.0, 0.0, streak), 1u);
  // The p99 signal grows even when the queue looks calm.
  cfg.p99_high_ms = 5.0;
  streak = 0;
  EXPECT_EQ(serve::autoscale_target(cfg, 2, 0.0, 9.0, streak), 3u);
  // ... and a calm p99 below the bound still allows queue-based shrink.
  streak = 2;
  EXPECT_EQ(serve::autoscale_target(cfg, 3, 0.0, 1.0, streak), 2u);
}

TEST(Registry, AutoscalerGrowsUnderQueueBuildup) {
  serve::ModelOptions mopts;
  mopts.server.num_threads = 1;
  mopts.server.num_shards = 1;
  mopts.server.max_shards = 3;
  mopts.server.max_batch = 64;
  mopts.server.max_delay_ms = 50.0;  // slow flush: the queue builds
  mopts.autoscaler.enabled = true;
  mopts.autoscaler.interval_ms = 5.0;
  mopts.autoscaler.queue_high = 2.0;
  // Never shrink back during the test: the watcher loop below must be able
  // to observe the grown state no matter how the polls interleave.
  mopts.autoscaler.shrink_patience = 100000;
  serve::ModelRegistry registry;
  SeededModel::add_to(registry, "m", 5, mopts);

  std::vector<std::future<tensor::Tensor>> futures;
  for (int i = 0; i < 48; ++i) {
    futures.push_back(
        registry.submit("m", random_tensor(tensor::Shape({12}), i)));
  }
  // The poller needs a couple of intervals to observe the depth and grow.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (registry.num_active_shards("m") < 2 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_GE(registry.num_active_shards("m"), 2u);
  for (auto& f : futures) EXPECT_EQ(f.get().numel(), 5u);
  registry.shutdown();
}

TEST(Registry, RemoveModelEvictsCountsAndAllowsReAdd) {
  obs::MetricsRegistry metrics;
  serve::ModelRegistry registry(&metrics);
  SeededModel::add_to(registry, "a", 5);
  SeededModel::add_to(registry, "b", 6);
  const auto x = random_tensor(tensor::Shape({12}), 7);
  EXPECT_TRUE(
      registry.submit("a", x).get().equals(expected_row(5, x, false)));

  registry.remove_model("a");
  EXPECT_EQ(registry.num_models(), 1u);
  EXPECT_FALSE(registry.has_model("a"));
  EXPECT_EQ(registry.model_names(), std::vector<std::string>{"b"});
  EXPECT_THROW(registry.submit("a", x), util::CheckError);
  EXPECT_THROW(registry.stats("a"), util::CheckError);
  EXPECT_THROW(registry.remove_model("a"), util::CheckError);  // only once
  EXPECT_EQ(metrics.counter("dstee_model_evictions_total").value(), 1u);
  // The surviving tenant is untouched.
  EXPECT_TRUE(
      registry.submit("b", x).get().equals(expected_row(6, x, false)));

  // The evicted name is reusable: a fresh slot serves the NEW weights.
  SeededModel::add_to(registry, "a", 9);
  EXPECT_TRUE(registry.has_model("a"));
  EXPECT_EQ(registry.num_models(), 2u);
  EXPECT_TRUE(
      registry.submit("a", x).get().equals(expected_row(9, x, false)));
  registry.remove_model("a");
  EXPECT_EQ(metrics.counter("dstee_model_evictions_total").value(), 2u);
  registry.shutdown();
}

TEST(Registry, RemoveModelDrainsInFlightRequests) {
  // Eviction decommissions via server shutdown, which drains the queue:
  // every request submitted BEFORE remove_model completes with the right
  // answer — eviction sheds capacity, not accepted work.
  serve::ModelOptions mopts;
  mopts.server.max_delay_ms = 20.0;  // slow flush so a queue builds
  mopts.server.max_batch = 4;
  serve::ModelRegistry registry;
  SeededModel::add_to(registry, "a", 5, mopts);
  const auto x = random_tensor(tensor::Shape({12}), 8);
  const auto expected = expected_row(5, x, false);
  std::vector<std::future<tensor::Tensor>> futures;
  for (int i = 0; i < 32; ++i) futures.push_back(registry.submit("a", x));
  registry.remove_model("a");
  for (auto& f : futures) EXPECT_TRUE(f.get().equals(expected));
  registry.shutdown();
}

}  // namespace
}  // namespace dstee
